#include "im2col/dense_im2col.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

ConvShape
smallShape(int batch = 1, int c = 3, int hw = 8, int oc = 4,
           int kernel = 3, int stride = 1, int pad = 1)
{
    ConvShape shape;
    shape.batch = batch;
    shape.in_c = c;
    shape.in_h = shape.in_w = hw;
    shape.out_c = oc;
    shape.kernel = kernel;
    shape.stride = stride;
    shape.pad = pad;
    return shape;
}

TEST(DenseIm2col, LoweredGemmEqualsDirectConv)
{
    Rng rng(161);
    ConvShape shape = smallShape();
    Tensor4d input = randomSparseTensor(1, 3, 8, 8, 0.4, rng);
    Matrix<float> weights = randomSparseMatrix(4, 27, 0.3, rng);

    Matrix<float> lowered = im2colExplicit(input, shape);
    Matrix<float> d =
        refGemm(lowered, flattenWeightsTransposed(weights));
    Tensor4d via_gemm = foldLoweredOutput(d, shape);
    Tensor4d direct = refConv2d(input, weights, shape.params());

    for (int n = 0; n < 1; ++n)
        for (int c = 0; c < 4; ++c)
            for (int h = 0; h < 8; ++h)
                for (int w = 0; w < 8; ++w)
                    EXPECT_NEAR(via_gemm.at(n, c, h, w),
                                direct.at(n, c, h, w), 1e-4);
}

TEST(DenseIm2col, OuterFriendlyProducesSameMatrix)
{
    Rng rng(162);
    for (int stride : {1, 2}) {
        ConvShape shape = smallShape(2, 3, 9, 4, 3, stride, 1);
        Tensor4d input = randomSparseTensor(2, 3, 9, 9, 0.5, rng);
        Matrix<float> row_major = im2colExplicit(input, shape);
        Matrix<float> col_major = im2colOuterFriendly(input, shape);
        EXPECT_EQ(maxAbsDiff(row_major, col_major), 0.0)
            << "stride=" << stride;
    }
}

TEST(DenseIm2col, PaddingRowsAreZero)
{
    ConvShape shape = smallShape(1, 1, 4, 1, 3, 1, 1);
    Tensor4d input(1, 1, 4, 4);
    for (float &v : input.data())
        v = 1.0f;
    Matrix<float> lowered = im2colExplicit(input, shape);
    // Top-left output pixel: kernel positions (0,*) and (*,0) fall in
    // the padding and must be zero.
    EXPECT_FLOAT_EQ(lowered.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(lowered.at(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(lowered.at(0, 3), 0.0f);
    EXPECT_FLOAT_EQ(lowered.at(0, 4), 1.0f); // center
}

TEST(DenseIm2col, SparsityIsPreservedApproximately)
{
    // im2col replicates elements, so the lowered matrix's density
    // matches the input's (padding shifts it slightly down).
    Rng rng(163);
    ConvShape shape = smallShape(1, 8, 16, 8, 3, 1, 1);
    Tensor4d input = randomSparseTensor(1, 8, 16, 16, 0.7, rng);
    Matrix<float> lowered = im2colExplicit(input, shape);
    EXPECT_NEAR(lowered.sparsity(), 0.7, 0.05);
}

TEST(DenseIm2col, FoldUnfoldRoundTrip)
{
    Rng rng(164);
    ConvShape shape = smallShape();
    Matrix<float> d = randomSparseMatrix(
        static_cast<int>(shape.loweredRows()), shape.out_c, 0.3, rng);
    Tensor4d folded = foldLoweredOutput(d, shape);
    int row = 0;
    for (int oh = 0; oh < shape.outH(); ++oh)
        for (int ow = 0; ow < shape.outW(); ++ow, ++row)
            for (int oc = 0; oc < shape.out_c; ++oc)
                EXPECT_FLOAT_EQ(folded.at(0, oc, oh, ow),
                                d.at(row, oc));
}

class DenseIm2colSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(DenseIm2colSweep, GemmEqualsDirectConv)
{
    const auto [kernel, stride, pad] = GetParam();
    Rng rng(static_cast<uint64_t>(kernel * 100 + stride * 10 + pad));
    ConvShape shape = smallShape(2, 4, 11, 3, kernel, stride, pad);
    if (shape.outH() <= 0)
        GTEST_SKIP();
    Tensor4d input = randomSparseTensor(2, 4, 11, 11, 0.5, rng);
    Matrix<float> weights =
        randomSparseMatrix(3, 4 * kernel * kernel, 0.4, rng);
    Tensor4d via_gemm = foldLoweredOutput(
        refGemm(im2colExplicit(input, shape),
                flattenWeightsTransposed(weights)),
        shape);
    Tensor4d direct = refConv2d(input, weights, shape.params());
    double worst = 0.0;
    for (size_t i = 0; i < direct.size(); ++i)
        worst = std::max(worst,
                         static_cast<double>(std::fabs(
                             via_gemm.data()[i] - direct.data()[i])));
    EXPECT_LT(worst, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, DenseIm2colSweep,
    ::testing::Values(std::tuple{1, 1, 0}, std::tuple{3, 1, 1},
                      std::tuple{3, 2, 1}, std::tuple{5, 1, 2},
                      std::tuple{5, 2, 0}, std::tuple{7, 2, 3}));

} // namespace
} // namespace dstc
