/**
 * @file
 * The CLI validation layer (dstc_sim's flag vocabulary): malformed,
 * out-of-range and unknown flags must be *returned* as errors, never
 * exit the process from an accessor, and the typed accessors must be
 * total functions after validation.
 */
#include "common/cli_flags.h"

#include <gtest/gtest.h>

namespace dstc {
namespace {

CliArgs
parse(std::vector<std::string> tokens,
      const std::set<std::string> &boolean_flags = {"a100", "batched",
                                                    "explicit"})
{
    std::vector<char *> argv = {const_cast<char *>("dstc_sim")};
    for (auto &t : tokens)
        argv.push_back(t.data());
    return parseCliArgs(static_cast<int>(argv.size()), argv.data(),
                        boolean_flags);
}

TEST(CliFlags, ParsesPositionalsAndFlags)
{
    CliArgs args = parse({"gemm", "64", "64", "64", "--a-sparsity",
                          "0.7", "--batched"});
    ASSERT_EQ(args.positional.size(), 4u);
    EXPECT_EQ(args.positional[0], "gemm");
    EXPECT_TRUE(args.hasFlag("batched"));
    EXPECT_DOUBLE_EQ(args.flagD("a-sparsity", 0.0), 0.7);
    EXPECT_DOUBLE_EQ(args.flagD("b-sparsity", 0.25), 0.25);
}

TEST(CliFlags, BooleanFlagsDoNotConsumeTokens)
{
    CliArgs args = parse({"--a100", "model", "resnet18"});
    ASSERT_EQ(args.positional.size(), 2u);
    EXPECT_EQ(args.positional[0], "model");
    EXPECT_TRUE(args.hasFlag("a100"));
    EXPECT_EQ(args.flag("a100", "x"), "");
}

TEST(CliFlags, UnknownFlagFailsValidation)
{
    CliArgs args = parse({"conv", "--in-c", "8", "--typo", "3"});
    EXPECT_FALSE(args.validateFlags("conv", {"in-c"}, {}, {"in-c"}));
    EXPECT_TRUE(args.validateFlags("conv", {"in-c", "typo"}, {},
                                   {"in-c", "typo"}));
}

TEST(CliFlags, IntegerOutOfIntRangeIsRejectedNotExited)
{
    // The old flagI accessor would std::exit(2) on this; now the
    // validation layer reports it and the accessor stays total.
    CliArgs args = parse({"conv", "--hw", "99999999999"});
    EXPECT_FALSE(args.validateFlags("conv", {"hw"}, {}, {"hw"}));
    EXPECT_EQ(args.flagI("hw", -1), -1);
}

TEST(CliFlags, IntegerMustBeWholeDecimal)
{
    EXPECT_FALSE(parse({"x", "--seed", "1e3"})
                     .validateFlags("x", {"seed"}, {}, {}, {"seed"}));
    EXPECT_FALSE(parse({"x", "--hw", "12.5"})
                     .validateFlags("x", {"hw"}, {}, {"hw"}));
    EXPECT_FALSE(parse({"x", "--hw", "abc"})
                     .validateFlags("x", {"hw"}, {}, {"hw"}));
    EXPECT_TRUE(parse({"x", "--hw", "28"})
                    .validateFlags("x", {"hw"}, {}, {"hw"}));
}

TEST(CliFlags, UnsignedRejectsNegativeAndOverflow)
{
    EXPECT_FALSE(parse({"x", "--seed", "-3"})
                     .validateFlags("x", {"seed"}, {}, {}, {"seed"}));
    EXPECT_FALSE(
        parse({"x", "--seed", "99999999999999999999999"})
            .validateFlags("x", {"seed"}, {}, {}, {"seed"}));
    CliArgs ok = parse({"x", "--seed", "12345678901"});
    EXPECT_TRUE(ok.validateFlags("x", {"seed"}, {}, {}, {"seed"}));
    EXPECT_EQ(ok.flagU64("seed", 0), 12345678901ull);
}

TEST(CliFlags, NumericMustBeFinite)
{
    EXPECT_FALSE(parse({"x", "--wsp", "nan"})
                     .validateFlags("x", {"wsp"}, {"wsp"}));
    EXPECT_FALSE(parse({"x", "--wsp", "0.7x"})
                     .validateFlags("x", {"wsp"}, {"wsp"}));
    EXPECT_FALSE(parse({"x", "--wsp"})
                     .validateFlags("x", {"wsp"}, {"wsp"}));
    EXPECT_TRUE(parse({"x", "--wsp", "0.75"})
                    .validateFlags("x", {"wsp"}, {"wsp"}));
}

TEST(CliFlags, ValuelessValueFlagFailsInsteadOfDefaulting)
{
    // "--hw --out-c 4": --hw refuses to consume the next flag token
    // and must fail validation, not silently read as the default.
    CliArgs args = parse({"conv", "--hw", "--out-c", "4"});
    EXPECT_FALSE(args.validateFlags("conv", {"hw", "out-c"}, {},
                                    {"hw", "out-c"}));
}

TEST(CliFlags, StrayPositionalsAreRejected)
{
    CliArgs args = parse({"backends", "stray"});
    EXPECT_TRUE(args.checkPositionals("backends", 2));
    EXPECT_FALSE(args.checkPositionals("backends", 1));
}

TEST(CliFlags, AccessorsAfterValidationAreExact)
{
    CliArgs args = parse({"conv", "--in-c", "64", "--hw", "28",
                          "--wsp", "0.9", "--seed", "7"});
    ASSERT_TRUE(args.validateFlags("conv",
                                   {"in-c", "hw", "wsp", "seed"},
                                   {"wsp"}, {"in-c", "hw"},
                                   {"seed"}));
    EXPECT_EQ(args.flagI("in-c", 0), 64);
    EXPECT_EQ(args.flagI("hw", 0), 28);
    EXPECT_DOUBLE_EQ(args.flagD("wsp", 0.0), 0.9);
    EXPECT_EQ(args.flagU64("seed", 1), 7u);
    EXPECT_EQ(args.flagI("absent", 42), 42);
}

TEST(CliFlags, RangeHelpersReturnInsteadOfExiting)
{
    EXPECT_TRUE(checkSparsityFlag("wsp", 0.0));
    EXPECT_TRUE(checkSparsityFlag("wsp", 1.0));
    EXPECT_FALSE(checkSparsityFlag("wsp", -0.1));
    EXPECT_FALSE(checkSparsityFlag("wsp", 1.5));
    EXPECT_TRUE(checkClusterFlag("cluster", 1.0));
    EXPECT_FALSE(checkClusterFlag("cluster", 0.5));
}

TEST(CliFlags, ChoiceHelperValidatesVocabulary)
{
    const std::vector<std::string> policies = {"deadline", "cost",
                                               "rr"};
    EXPECT_TRUE(checkChoiceFlag("policy", "deadline", policies));
    EXPECT_TRUE(checkChoiceFlag("policy", "rr", policies));
    EXPECT_FALSE(checkChoiceFlag("policy", "shard", policies));
    EXPECT_FALSE(checkChoiceFlag("policy", "", policies));
    EXPECT_FALSE(checkChoiceFlag("policy", "Deadline", policies));
}

TEST(CliFlags, PositiveHelperRejectsZeroAndNegative)
{
    EXPECT_TRUE(checkPositiveFlag("rate", 400.0));
    EXPECT_TRUE(checkPositiveFlag("rate", 1e-6));
    EXPECT_FALSE(checkPositiveFlag("rate", 0.0));
    EXPECT_FALSE(checkPositiveFlag("rate", -3.0));
}

TEST(CliFlags, ServeVocabularyValidates)
{
    // The serve command's flag vocabulary, exactly as dstc_sim
    // declares it: good invocations validate, malformed values are
    // returned as errors.
    const std::set<std::string> known = {
        "devices",    "policy",     "admission",    "pattern",
        "rate",       "duration",   "depth",        "microbatch",
        "method",     "seed",       "faults",       "fault-seed",
        "retry",      "retry-budget", "backoff",    "hedge",
        "no-failover", "no-degrade"};
    const std::set<std::string> numeric = {"rate", "duration",
                                           "backoff"};
    const std::set<std::string> integer = {"depth", "microbatch",
                                           "retry-budget"};
    const std::set<std::string> u64 = {"seed", "fault-seed"};
    const std::set<std::string> booleans = {
        "a100", "batched", "explicit", "retry", "hedge",
        "no-failover", "no-degrade"};
    CliArgs good = parse({"serve", "mix", "--rate", "800",
                          "--duration", "1.5", "--depth", "64",
                          "--policy", "deadline", "--faults",
                          "crash@500:d1", "--retry", "--retry-budget",
                          "4", "--backoff", "12.5", "--hedge",
                          "--fault-seed", "9"},
                         booleans);
    EXPECT_TRUE(good.validateFlags("serve", known, numeric, integer,
                                   u64));
    EXPECT_TRUE(good.checkPositionals("serve", 2));
    EXPECT_TRUE(good.hasFlag("retry"));
    EXPECT_TRUE(good.hasFlag("hedge"));
    EXPECT_FALSE(good.hasFlag("no-failover"));
    EXPECT_EQ(good.flag("faults", ""), "crash@500:d1");
    EXPECT_EQ(good.flagI("retry-budget", 0), 4);
    EXPECT_DOUBLE_EQ(good.flagD("backoff", 0.0), 12.5);
    EXPECT_EQ(good.flagU64("fault-seed", 0), 9u);

    CliArgs bad_rate = parse({"serve", "mix", "--rate", "fast"});
    EXPECT_FALSE(bad_rate.validateFlags("serve", known, numeric,
                                        integer, u64));
    CliArgs bad_depth = parse({"serve", "mix", "--depth", "1e3"});
    EXPECT_FALSE(bad_depth.validateFlags("serve", known, numeric,
                                         integer, u64));
    CliArgs unknown = parse({"serve", "mix", "--qos", "gold"});
    EXPECT_FALSE(unknown.validateFlags("serve", known, numeric,
                                       integer, u64));
    // New fault flags: values must validate like any other flag.
    CliArgs bad_budget =
        parse({"serve", "mix", "--retry-budget", "two"}, booleans);
    EXPECT_FALSE(bad_budget.validateFlags("serve", known, numeric,
                                          integer, u64));
    CliArgs bad_backoff =
        parse({"serve", "mix", "--backoff", "soon"}, booleans);
    EXPECT_FALSE(bad_backoff.validateFlags("serve", known, numeric,
                                           integer, u64));
    CliArgs bad_fseed =
        parse({"serve", "mix", "--fault-seed", "-1"}, booleans);
    EXPECT_FALSE(bad_fseed.validateFlags("serve", known, numeric,
                                         integer, u64));
    // Boolean recovery flags never consume the next token.
    CliArgs boolish =
        parse({"serve", "mix", "--retry", "--rate", "500"}, booleans);
    EXPECT_TRUE(boolish.validateFlags("serve", known, numeric,
                                      integer, u64));
    EXPECT_DOUBLE_EQ(boolish.flagD("rate", 0.0), 500.0);
}

TEST(CliFlags, FaultSpecRejectionIsAnExitTwoPath)
{
    // The CLI's --faults handling goes through FaultSpec::parse,
    // which returns an error message instead of exiting; the helper
    // contract mirrored here is "false + non-empty message".
    // (dstc_sim maps that to exit code 2 — covered by the CI smoke.)
    EXPECT_TRUE(checkChoiceFlag("admission", "reject",
                                {"reject", "shed"}));
    EXPECT_FALSE(checkPositiveFlag("retry-budget", 0.0));
    EXPECT_FALSE(checkPositiveFlag("backoff", -1.0));
}

} // namespace
} // namespace dstc
