/**
 * @file
 * Method::Hybrid tests: the density-partitioned composer must be
 * bitwise indistinguishable from the single backend it routes each
 * tile class to — degenerate uniform requests collapse to a pure
 * single-backend run (stats included), split requests reproduce each
 * class's row stripes exactly as the routed backend computes them on
 * the full request (row stripes depend only on their own A rows plus
 * the shared B), and everything is invariant to worker counts and
 * pinned-threshold edge cases.
 */
#include "core/hybrid.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/session.h"
#include "model/pruning.h"
#include "session_test_util.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

void
expectStatsBitwiseEqual(const KernelStats &a, const KernelStats &b,
                        const std::string &context)
{
    EXPECT_DOUBLE_EQ(a.compute_us, b.compute_us) << context;
    EXPECT_DOUBLE_EQ(a.memory_us, b.memory_us) << context;
    EXPECT_DOUBLE_EQ(a.dram_bytes, b.dram_bytes) << context;
    EXPECT_DOUBLE_EQ(a.launch_us, b.launch_us) << context;
    EXPECT_EQ(a.bound, b.bound) << context;
    EXPECT_EQ(a.mix.hmma, b.mix.hmma) << context;
    EXPECT_EQ(a.mix.ohmma_issued, b.mix.ohmma_issued) << context;
    EXPECT_EQ(a.mix.ohmma_skipped, b.mix.ohmma_skipped) << context;
    EXPECT_EQ(a.mix.bohmma, b.mix.bohmma) << context;
    EXPECT_EQ(a.mix.popc, b.mix.popc) << context;
    EXPECT_EQ(a.warp_tiles, b.warp_tiles) << context;
    EXPECT_EQ(a.warp_tiles_skipped, b.warp_tiles_skipped) << context;
    EXPECT_EQ(a.merge_cycles, b.merge_cycles) << context;
}

/**
 * A striped A operand: even 32-row tile groups near-dense, odd
 * groups near-empty — the non-uniform checkpoint pattern the hybrid
 * partition exists for.
 */
Matrix<float>
stripedA(int m, int k, double dense_density, double sparse_density,
         Rng &rng)
{
    Matrix<float> a(m, k);
    for (int r = 0; r < m; ++r) {
        const double density =
            (r / 32) % 2 == 0 ? dense_density : sparse_density;
        for (int c = 0; c < k; ++c) {
            if (rng.bernoulli(density)) {
                const float v = rng.uniformFloat(-1.0f, 1.0f);
                a.at(r, c) = (v == 0.0f) ? 0.5f : v;
            }
        }
    }
    return a;
}

KernelRequest
hybridRequest(const Matrix<float> &a, const Matrix<float> &b,
              double threshold = -1.0)
{
    KernelRequest req = KernelRequest::gemm(a, b);
    req.method = Method::Hybrid;
    req.hybrid_options.threshold = threshold;
    return req;
}

PlanContext
sessionContext(Session &session)
{
    PlanContext ctx;
    ctx.cfg = &session.config();
    ctx.cache = &session.encodingCache();
    ctx.registry = &session.registry();
    return ctx;
}

/** Rows [g*32, g*32+32) of the class's groups, compared bitwise
 *  between the hybrid output and a full-request single-backend
 *  output (row-stripe independence makes this exact). */
void
expectClassRowsMatch(const HybridClass &cls, const Matrix<float> &hyb,
                     const Matrix<float> &pure)
{
    for (int g : cls.groups) {
        const int r0 = g * 32;
        const int r1 = std::min(hyb.rows(), r0 + 32);
        for (int r = r0; r < r1; ++r)
            for (int c = 0; c < hyb.cols(); ++c)
                ASSERT_EQ(hyb.at(r, c), pure.at(r, c))
                    << "group " << g << " row " << r << " col " << c
                    << " (" << methodToken(cls.method) << ")";
    }
}

TEST(HybridTest, AllDenseDegeneratesToPureDense)
{
    Rng rng(7);
    Matrix<float> a = randomSparseMatrix(256, 128, 0.0, rng);
    Matrix<float> b = randomSparseMatrix(128, 128, 0.0, rng);

    Session hybrid_session;
    const HybridSplit split = planHybridSplit(
        hybridRequest(a, b), sessionContext(hybrid_session));
    ASSERT_EQ(split.classes.size(), 1u);
    EXPECT_EQ(split.classes[0].method, Method::Dense);
    EXPECT_DOUBLE_EQ(split.threshold, -1.0);

    KernelReport hyb = hybrid_session.run(hybridRequest(a, b));
    EXPECT_EQ(hyb.method, Method::Hybrid);
    EXPECT_EQ(hyb.backend, "hybrid-partition");

    Session dense_session;
    KernelRequest pure = KernelRequest::gemm(a, b);
    pure.method = Method::Dense;
    KernelReport ref = dense_session.run(pure);

    expectStatsBitwiseEqual(hyb.stats, ref.stats, "all-dense");
    ASSERT_NE(hyb.d, nullptr);
    ASSERT_NE(ref.d, nullptr);
    EXPECT_TRUE(*hyb.d == *ref.d);
}

TEST(HybridTest, AllSparseDegeneratesToPureDualSparse)
{
    Rng rng(11);
    Matrix<float> a = randomSparseMatrix(512, 256, 0.9, rng);
    Matrix<float> b = randomSparseMatrix(256, 256, 0.9, rng);

    Session session;
    const HybridSplit split = planHybridSplit(
        hybridRequest(a, b), sessionContext(session));
    ASSERT_EQ(split.classes.size(), 1u);
    EXPECT_EQ(split.classes[0].method, Method::DualSparse);

    KernelReport hyb = session.run(hybridRequest(a, b));

    Session dual_session;
    KernelReport ref = testutil::spgemm(dual_session, a, b);

    expectStatsBitwiseEqual(hyb.stats, ref.stats, "all-sparse");
    ASSERT_NE(hyb.d, nullptr);
    EXPECT_TRUE(*hyb.d == *ref.d);
}

TEST(HybridTest, SingleTileMatrixIsOneClass)
{
    Rng rng(13);
    Matrix<float> a = randomSparseMatrix(16, 48, 0.5, rng);
    Matrix<float> b = randomSparseMatrix(48, 24, 0.5, rng);

    Session session;
    const HybridSplit split = planHybridSplit(
        hybridRequest(a, b), sessionContext(session));
    ASSERT_EQ(split.classes.size(), 1u);
    EXPECT_EQ(split.classes[0].groups, std::vector<int>{0});

    KernelReport hyb = session.run(hybridRequest(a, b));
    ASSERT_NE(hyb.d, nullptr);
    EXPECT_LT(maxAbsDiff(*hyb.d, refGemmFp16(a, b)), 1e-4);

    Session pure_session;
    KernelRequest pure = KernelRequest::gemm(a, b);
    pure.method = split.classes[0].method;
    KernelReport ref = pure_session.run(pure);
    expectStatsBitwiseEqual(hyb.stats, ref.stats, "single-tile");
    EXPECT_TRUE(*hyb.d == *ref.d);
}

TEST(HybridTest, PinnedThresholdSplitMatchesPerClassReferences)
{
    Rng rng(17);
    Matrix<float> a = stripedA(256, 128, 0.85, 0.05, rng);
    Matrix<float> b = randomSparseMatrix(128, 96, 0.5, rng);

    Session session;
    const KernelRequest req = hybridRequest(a, b, 0.5);
    const HybridSplit split =
        planHybridSplit(req, sessionContext(session));
    ASSERT_EQ(split.classes.size(), 2u);
    EXPECT_DOUBLE_EQ(split.threshold, 0.5);
    // Stripe layout: odd groups (near-empty) below the cut, even
    // groups (near-dense) at or above it.
    EXPECT_EQ(split.classes[0].groups,
              (std::vector<int>{1, 3, 5, 7}));
    EXPECT_EQ(split.classes[1].groups,
              (std::vector<int>{0, 2, 4, 6}));
    // The point of the composer: the two classes route differently.
    EXPECT_NE(split.classes[0].method, split.classes[1].method);

    KernelReport hyb = session.run(req);
    ASSERT_NE(hyb.d, nullptr);
    EXPECT_EQ(hyb.stats.name.rfind("hybrid[", 0), 0u)
        << hyb.stats.name;

    // Each class's row stripes must be bitwise what its routed
    // backend computes for the full request.
    for (const HybridClass &cls : split.classes) {
        Session pure_session;
        KernelRequest pure = KernelRequest::gemm(a, b);
        pure.method = cls.method;
        KernelReport ref = pure_session.run(pure);
        ASSERT_NE(ref.d, nullptr) << methodToken(cls.method);
        expectClassRowsMatch(cls, *hyb.d, *ref.d);
    }
}

TEST(HybridTest, PinnedThresholdEmptyClassCollapsesToOneClass)
{
    Rng rng(19);
    Matrix<float> a = stripedA(128, 64, 0.8, 0.1, rng);
    Matrix<float> b = randomSparseMatrix(64, 64, 0.4, rng);

    Session session;
    // Threshold 0: every group has density >= 0 (the low class is
    // empty). Threshold above 1: every group lands low.
    for (double t : {0.0, 1.5}) {
        const HybridSplit split = planHybridSplit(
            hybridRequest(a, b, t), sessionContext(session));
        ASSERT_EQ(split.classes.size(), 1u) << "threshold " << t;
        EXPECT_EQ(split.classes[0].groups.size(), 4u)
            << "threshold " << t;

        KernelReport hyb = session.run(hybridRequest(a, b, t));
        Session pure_session;
        KernelRequest pure = KernelRequest::gemm(a, b);
        pure.method = split.classes[0].method;
        KernelReport ref = pure_session.run(pure);
        expectStatsBitwiseEqual(hyb.stats, ref.stats,
                                "pinned-degenerate");
        ASSERT_NE(hyb.d, nullptr);
        EXPECT_TRUE(*hyb.d == *ref.d);
    }
}

TEST(HybridTest, ConformantBAdmitsAmpereRouting)
{
    Rng rng(23);
    Matrix<float> a = stripedA(256, 128, 0.9, 0.04, rng);
    Matrix<float> b =
        prune2of4(randomSparseMatrix(128, 96, 0.0, rng));
    ASSERT_TRUE(conformant2of4(b));

    Session session;
    const KernelRequest req = hybridRequest(a, b, 0.5);
    const HybridSplit split =
        planHybridSplit(req, sessionContext(session));
    ASSERT_EQ(split.classes.size(), 2u);
    // The 2:4 path dominates dense on the near-dense class once its
    // prune is the identity.
    EXPECT_EQ(split.classes[1].method, Method::AmpereSparse);

    KernelReport hyb = session.run(req);
    ASSERT_NE(hyb.d, nullptr);
    for (const HybridClass &cls : split.classes) {
        Session pure_session;
        KernelRequest pure = KernelRequest::gemm(a, b);
        pure.method = cls.method;
        KernelReport ref = pure_session.run(pure);
        ASSERT_NE(ref.d, nullptr);
        expectClassRowsMatch(cls, *hyb.d, *ref.d);
    }

    // Identity prune: the ampere-routed stripes equal the exact
    // FP16 product of the *unpruned* operands.
    EXPECT_LT(maxAbsDiff(*hyb.d, refGemmFp16(a, b)), 1e-4);

    // A non-conformant B keeps ampere out.
    Matrix<float> dense_b = randomSparseMatrix(128, 96, 0.0, rng);
    ASSERT_FALSE(conformant2of4(dense_b));
    const HybridSplit no_ampere =
        planHybridSplit(hybridRequest(a, dense_b, 0.5),
                        sessionContext(session));
    for (const HybridClass &cls : no_ampere.classes)
        EXPECT_NE(cls.method, Method::AmpereSparse);
}

TEST(HybridTest, WorkerCountInvariance)
{
    Rng rng(29);
    Matrix<float> a = stripedA(256, 128, 0.85, 0.05, rng);
    Matrix<float> b = randomSparseMatrix(128, 96, 0.5, rng);

    Session serial_session;
    KernelRequest serial_req = hybridRequest(a, b, 0.5);
    serial_req.withResources({.compute_workers = 1});
    KernelReport serial = serial_session.run(serial_req);

    SessionOptions opts;
    opts.resources.encode_workers = 4;
    Session pooled_session(opts);
    KernelRequest pooled_req = hybridRequest(a, b, 0.5);
    pooled_req.withResources({.compute_workers = 4});
    KernelReport pooled = pooled_session.run(pooled_req);

    expectStatsBitwiseEqual(serial.stats, pooled.stats, "workers");
    ASSERT_NE(serial.d, nullptr);
    ASSERT_NE(pooled.d, nullptr);
    EXPECT_TRUE(*serial.d == *pooled.d);
}

TEST(HybridTest, SyntheticClusteredRequestSplitsDeterministically)
{
    KernelRequest req = KernelRequest::gemm(1024, 512, 512, 0.6, 0.5);
    req.method = Method::Hybrid;
    req.a_cluster = 8.0;
    req.seed = 33;

    Session s1, s2;
    KernelReport r1 = s1.run(req);
    KernelReport r2 = s2.run(req);
    expectStatsBitwiseEqual(r1.stats, r2.stats, "synthetic");
    EXPECT_EQ(r1.stats.name, r2.stats.name);
    EXPECT_GT(r1.timeUs(), 0.0);

    const HybridSplit split =
        planHybridSplit(req, sessionContext(s1));
    EXPECT_GT(split.total_estimated_us, 0.0);
    // The split, whatever the cost model chose, is what ran.
    std::string expected = "hybrid[";
    for (size_t i = 0; i < split.classes.size(); ++i) {
        if (i)
            expected += '+';
        expected += methodToken(split.classes[i].method);
        expected += ':';
        expected +=
            std::to_string(split.classes[i].groups.size());
    }
    expected += ']';
    EXPECT_EQ(r1.stats.name, expected);
}

TEST(HybridTest, PreEncodedPairDelegatesToDualSparse)
{
    Rng rng(37);
    Matrix<float> a = randomSparseMatrix(128, 96, 0.7, rng);
    Matrix<float> b = randomSparseMatrix(96, 64, 0.6, rng);
    TwoLevelBitmapMatrix enc_a =
        TwoLevelBitmapMatrix::encode(a, 32, 32, Major::Col);
    TwoLevelBitmapMatrix enc_b =
        TwoLevelBitmapMatrix::encode(b, 32, 32, Major::Row);

    Session hybrid_session;
    KernelRequest req;
    req.kind = KernelRequest::Kind::Gemm;
    req.method = Method::Hybrid;
    req.m = a.rows();
    req.n = b.cols();
    req.k = a.cols();
    req.a_encoded = &enc_a;
    req.b_encoded = &enc_b;
    KernelReport hyb = hybrid_session.run(req);
    EXPECT_EQ(hyb.method, Method::Hybrid);

    Session dual_session;
    KernelReport ref =
        testutil::spgemmEncoded(dual_session, enc_a, enc_b);
    expectStatsBitwiseEqual(hyb.stats, ref.stats, "pre-encoded");
    ASSERT_NE(hyb.d, nullptr);
    ASSERT_NE(ref.d, nullptr);
    EXPECT_TRUE(*hyb.d == *ref.d);
}

TEST(HybridTest, HybridSupportsGemmOnly)
{
    Session session;
    const Backend *hybrid = session.registry().find(Method::Hybrid);
    ASSERT_NE(hybrid, nullptr);
    EXPECT_TRUE(hybrid->supports(KernelRequest::gemm(64, 64, 64)));
    ConvShape shape;
    shape.in_c = 32;
    shape.in_h = shape.in_w = 14;
    shape.out_c = 32;
    EXPECT_FALSE(hybrid->supports(KernelRequest::conv(shape)));
    EXPECT_TRUE(
        hybrid->exact(KernelRequest::gemm(64, 64, 64, 0.5, 0.5)));
}

} // namespace
} // namespace dstc
