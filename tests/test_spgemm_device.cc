#include "gemm/spgemm_device.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/sparsity_gen.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

class SpGemmDeviceTest : public ::testing::Test
{
  protected:
    GpuConfig cfg_ = GpuConfig::v100();
    SpGemmDevice device_{cfg_};
};

TEST_F(SpGemmDeviceTest, FunctionalMatchesReference)
{
    Rng rng(121);
    Matrix<float> a = randomSparseMatrix(96, 64, 0.6, rng);
    Matrix<float> b = randomSparseMatrix(64, 96, 0.7, rng);
    SpGemmResult r = device_.multiply(a, b);
    EXPECT_LT(maxAbsDiff(r.d, refGemmFp16(a, b)), 1e-5);
}

TEST_F(SpGemmDeviceTest, NonTileAlignedShapes)
{
    Rng rng(122);
    Matrix<float> a = randomSparseMatrix(45, 50, 0.5, rng);
    Matrix<float> b = randomSparseMatrix(50, 39, 0.5, rng);
    SpGemmResult r = device_.multiply(a, b);
    EXPECT_LT(maxAbsDiff(r.d, refGemmFp16(a, b)), 1e-5);
}

TEST_F(SpGemmDeviceTest, TwoLevelSkipsEmptyTiles)
{
    // Clustered inputs leave many warp tiles empty.
    Rng rng(123);
    Matrix<float> a = clusteredSparseMatrix(128, 128, 0.95, 32, 16, rng);
    Matrix<float> b = clusteredSparseMatrix(128, 128, 0.95, 32, 16, rng);

    SpGemmOptions with_skip;
    with_skip.functional = false;
    SpGemmOptions without_skip = with_skip;
    without_skip.two_level = false;

    KernelStats skipped = device_.multiply(a, b, with_skip).stats;
    KernelStats unskipped = device_.multiply(a, b, without_skip).stats;
    EXPECT_GT(skipped.warp_tiles_skipped, 0);
    EXPECT_EQ(unskipped.warp_tiles_skipped, 0);
    EXPECT_LE(skipped.warp_tiles, unskipped.warp_tiles);
    // Skipping never hurts and the result is the same computation.
    EXPECT_LE(skipped.compute_us, unskipped.compute_us + 1e-9);
}

TEST_F(SpGemmDeviceTest, TwoLevelSkipDoesNotChangeResult)
{
    Rng rng(124);
    Matrix<float> a = clusteredSparseMatrix(96, 96, 0.9, 32, 8, rng);
    Matrix<float> b = clusteredSparseMatrix(96, 96, 0.9, 32, 8, rng);
    SpGemmOptions no_skip;
    no_skip.two_level = false;
    EXPECT_LT(maxAbsDiff(device_.multiply(a, b).d,
                         device_.multiply(a, b, no_skip).d),
              1e-9);
}

TEST_F(SpGemmDeviceTest, SparserIsFaster)
{
    Rng rng(125);
    double prev = 1e30;
    for (double sparsity : {0.0, 0.5, 0.9, 0.99}) {
        Matrix<float> a = randomSparseMatrix(256, 256, sparsity, rng);
        Matrix<float> b = randomSparseMatrix(256, 256, sparsity, rng);
        SpGemmOptions opts;
        opts.functional = false;
        KernelStats stats = device_.multiply(a, b, opts).stats;
        EXPECT_LT(stats.compute_us, prev);
        prev = stats.compute_us;
    }
}

TEST_F(SpGemmDeviceTest, ProfilePathMatchesFunctionalPath)
{
    Rng rng(126);
    Matrix<float> a = randomSparseMatrix(128, 96, 0.7, rng);
    Matrix<float> b = randomSparseMatrix(96, 128, 0.5, rng);

    SpGemmOptions opts;
    opts.functional = false;
    KernelStats full = device_.multiply(a, b, opts).stats;

    KernelStats profiled = device_.timeFromProfiles(
        SparsityProfile::fromMatrixA(a, 32),
        SparsityProfile::fromMatrixB(b, 32), opts);

    EXPECT_EQ(full.mix.ohmma_issued, profiled.mix.ohmma_issued);
    EXPECT_EQ(full.mix.ohmma_skipped, profiled.mix.ohmma_skipped);
    EXPECT_EQ(full.mix.bohmma, profiled.mix.bohmma);
    EXPECT_EQ(full.warp_tiles, profiled.warp_tiles);
    EXPECT_EQ(full.warp_tiles_skipped, profiled.warp_tiles_skipped);
    EXPECT_NEAR(full.compute_us, profiled.compute_us,
                full.compute_us * 0.02 + 1e-6);
}

TEST_F(SpGemmDeviceTest, StatsBreakdownIsConsistent)
{
    Rng rng(127);
    Matrix<float> a = randomSparseMatrix(64, 64, 0.5, rng);
    Matrix<float> b = randomSparseMatrix(64, 64, 0.5, rng);
    KernelStats stats = device_.multiply(a, b).stats;
    EXPECT_GT(stats.compute_us, 0.0);
    EXPECT_GT(stats.memory_us, 0.0);
    EXPECT_GT(stats.dram_bytes, 0.0);
    EXPECT_GE(stats.timeUs(),
              std::max(stats.compute_us, stats.memory_us));
    EXPECT_EQ(stats.warp_tiles + stats.warp_tiles_skipped, 2 * 2 * 2);
}

TEST_F(SpGemmDeviceTest, KIsAccumulatedAcrossChunks)
{
    // K spanning several 32-chunks exercises the k-loop seams.
    Rng rng(128);
    Matrix<float> a = randomSparseMatrix(32, 200, 0.6, rng);
    Matrix<float> b = randomSparseMatrix(200, 32, 0.6, rng);
    SpGemmResult r = device_.multiply(a, b);
    EXPECT_LT(maxAbsDiff(r.d, refGemmFp16(a, b)), 1e-5);
}

TEST_F(SpGemmDeviceTest, EncodedEntryPointMatchesDenseEntryPoint)
{
    // Encode-once / multiply-many path: identical results and
    // identical statistics to the convenience overload.
    Rng rng(130);
    Matrix<float> a = randomSparseMatrix(80, 70, 0.6, rng);
    Matrix<float> b = randomSparseMatrix(70, 90, 0.6, rng);
    SpGemmOptions opts;
    TwoLevelBitmapMatrix a_enc = TwoLevelBitmapMatrix::encode(
        a, opts.tile_m, opts.tile_k, Major::Col);
    TwoLevelBitmapMatrix b_enc = TwoLevelBitmapMatrix::encode(
        b, opts.tile_k, opts.tile_n, Major::Row);

    SpGemmResult via_dense = device_.multiply(a, b, opts);
    SpGemmResult via_encoded =
        device_.multiplyEncoded(a_enc, b_enc, opts);
    EXPECT_EQ(maxAbsDiff(via_dense.d, via_encoded.d), 0.0);
    EXPECT_EQ(via_dense.stats.mix.ohmma_issued,
              via_encoded.stats.mix.ohmma_issued);
    EXPECT_DOUBLE_EQ(via_dense.stats.timeUs(),
                     via_encoded.stats.timeUs());
    // And the encoded operands can be reused.
    SpGemmResult again = device_.multiplyEncoded(a_enc, b_enc, opts);
    EXPECT_EQ(maxAbsDiff(again.d, via_encoded.d), 0.0);
}

TEST_F(SpGemmDeviceTest, ZeroMatrixProducesZero)
{
    Matrix<float> a(64, 64);
    Rng rng(129);
    Matrix<float> b = randomSparseMatrix(64, 64, 0.3, rng);
    SpGemmResult r = device_.multiply(a, b);
    EXPECT_EQ(r.d.nnz(), 0);
    EXPECT_EQ(r.stats.mix.ohmma_issued, 0);
    EXPECT_EQ(r.stats.warp_tiles, 0);
}

struct DeviceSweepParam
{
    int m, k, n;
    double sa, sb;
};

class SpGemmDeviceSweep
    : public ::testing::TestWithParam<DeviceSweepParam>
{
};

TEST_P(SpGemmDeviceSweep, FunctionalCorrectness)
{
    const auto &p = GetParam();
    Rng rng(static_cast<uint64_t>(p.m * 31 + p.k * 17 + p.n));
    GpuConfig cfg = GpuConfig::v100();
    SpGemmDevice device(cfg);
    Matrix<float> a = randomSparseMatrix(p.m, p.k, p.sa, rng);
    Matrix<float> b = randomSparseMatrix(p.k, p.n, p.sb, rng);
    SpGemmResult r = device.multiply(a, b);
    EXPECT_LT(maxAbsDiff(r.d, refGemmFp16(a, b)), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpGemmDeviceSweep,
    ::testing::Values(DeviceSweepParam{32, 32, 32, 0.5, 0.5},
                      DeviceSweepParam{64, 32, 96, 0.0, 0.9},
                      DeviceSweepParam{33, 65, 31, 0.7, 0.2},
                      DeviceSweepParam{128, 128, 64, 0.95, 0.95},
                      DeviceSweepParam{16, 16, 16, 0.3, 0.3},
                      DeviceSweepParam{1, 100, 1, 0.5, 0.5},
                      DeviceSweepParam{100, 1, 100, 0.2, 0.8}));

/** Two KernelStats must agree bit-for-bit. */
void
expectIdenticalStats(const KernelStats &a, const KernelStats &b)
{
    EXPECT_EQ(a.mix.ohmma_issued, b.mix.ohmma_issued);
    EXPECT_EQ(a.mix.ohmma_skipped, b.mix.ohmma_skipped);
    EXPECT_EQ(a.mix.bohmma, b.mix.bohmma);
    EXPECT_EQ(a.mix.popc, b.mix.popc);
    EXPECT_EQ(a.warp_tiles, b.warp_tiles);
    EXPECT_EQ(a.warp_tiles_skipped, b.warp_tiles_skipped);
    EXPECT_EQ(a.merge_cycles, b.merge_cycles);
    EXPECT_DOUBLE_EQ(a.compute_us, b.compute_us);
    EXPECT_DOUBLE_EQ(a.memory_us, b.memory_us);
    EXPECT_DOUBLE_EQ(a.dram_bytes, b.dram_bytes);
    EXPECT_DOUBLE_EQ(a.timeUs(), b.timeUs());
}

/**
 * The parallel tile loop must be bitwise deterministic: one worker
 * and many workers produce the identical D matrix and identical
 * stats (per-tile outcomes reduce in tile order, and the merge cost
 * model is a pure function of its inputs).
 */
TEST_F(SpGemmDeviceTest, ParallelTileLoopIsDeterministic)
{
    Rng rng(131);
    Matrix<float> a = randomSparseMatrix(150, 100, 0.8, rng);
    Matrix<float> b = randomSparseMatrix(100, 170, 0.6, rng);

    SpGemmOptions serial;
    serial.num_workers = 1;
    SpGemmResult base = device_.multiply(a, b, serial);

    for (int workers : {0, 2, 5}) {
        SpGemmOptions opts;
        opts.num_workers = workers;
        SpGemmResult r = device_.multiply(a, b, opts);
        EXPECT_EQ(r.d.data(), base.d.data())
            << "workers=" << workers;
        expectIdenticalStats(r.stats, base.stats);
    }
}

TEST_F(SpGemmDeviceTest, ParallelDeterminismWithDetailedMerge)
{
    Rng rng(132);
    Matrix<float> a = randomSparseMatrix(96, 64, 0.7, rng);
    Matrix<float> b = randomSparseMatrix(64, 96, 0.7, rng);
    SpGemmOptions serial;
    serial.num_workers = 1;
    serial.detailed_merge = true;
    SpGemmOptions pooled = serial;
    pooled.num_workers = 0;
    SpGemmResult s = device_.multiply(a, b, serial);
    SpGemmResult p = device_.multiply(a, b, pooled);
    EXPECT_EQ(s.d.data(), p.d.data());
    expectIdenticalStats(s.stats, p.stats);
}

TEST_F(SpGemmDeviceTest, ProfileTimingPathIsDeterministicAcrossWorkers)
{
    Rng rng(133);
    SparsityProfile a = SparsityProfile::randomA(256, 192, 32, 0.2,
                                                 2.0, rng);
    SparsityProfile b = SparsityProfile::randomA(224, 192, 32, 0.3,
                                                 1.0, rng);
    SpGemmOptions serial;
    serial.num_workers = 1;
    SpGemmOptions pooled;
    pooled.num_workers = 0;
    expectIdenticalStats(device_.timeFromProfiles(a, b, serial),
                         device_.timeFromProfiles(a, b, pooled));
}

TEST_F(SpGemmDeviceTest, WordPipelineMatchesScalarReferencePipeline)
{
    // Device-level equivalence: the word-parallel pipeline writing
    // straight into D reproduces the seed flow (scalar warp path +
    // staging accumulator + copy-out) bit-for-bit.
    Rng rng(134);
    Matrix<float> a = randomSparseMatrix(90, 70, 0.75, rng);
    Matrix<float> b = randomSparseMatrix(70, 85, 0.5, rng);
    SpGemmOptions opts;
    TwoLevelBitmapMatrix a_enc = TwoLevelBitmapMatrix::encode(
        a, opts.tile_m, opts.tile_k, Major::Col);
    TwoLevelBitmapMatrix b_enc = TwoLevelBitmapMatrix::encode(
        b, opts.tile_k, opts.tile_n, Major::Row);

    // The seed pipeline, reproduced with computeTileScalar.
    SpGemmWarpEngine engine(cfg_);
    Matrix<float> d_ref(90, 85);
    for (int ti = 0; ti < a_enc.numTileRows(); ++ti) {
        for (int tj = 0; tj < b_enc.numTileCols(); ++tj) {
            const int rows = std::min(32, 90 - ti * 32);
            const int cols = std::min(32, 85 - tj * 32);
            Matrix<float> accum(rows, cols);
            for (int tk = 0; tk < a_enc.numTileCols(); ++tk) {
                if (!a_enc.tileNonEmpty(ti, tk) ||
                    !b_enc.tileNonEmpty(tk, tj))
                    continue;
                engine.computeTileScalar(a_enc.tile(ti, tk),
                                         b_enc.tile(tk, tj), &accum);
            }
            for (int r = 0; r < rows; ++r)
                for (int c = 0; c < cols; ++c)
                    d_ref.at(ti * 32 + r, tj * 32 + c) =
                        accum.at(r, c);
        }
    }

    SpGemmResult r = device_.multiplyEncoded(a_enc, b_enc, opts);
    EXPECT_EQ(r.d.data(), d_ref.data());
}

} // namespace
} // namespace dstc
