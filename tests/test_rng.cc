#include "common/rng.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dstc {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntInBound)
{
    Rng rng(6);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(7);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng rng(8);
    const int n = 100000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng rng(0);
    // Must not get stuck at zero.
    uint64_t x = rng.next();
    uint64_t y = rng.next();
    EXPECT_TRUE(x != 0 || y != 0);
    EXPECT_NE(x, y);
}

} // namespace
} // namespace dstc
