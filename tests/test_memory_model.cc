#include "timing/memory_model.h"

#include <gtest/gtest.h>

namespace dstc {
namespace {

TEST(MemoryModel, DramTimeScalesLinearly)
{
    MemoryModel mem(GpuConfig::v100());
    EXPECT_DOUBLE_EQ(mem.dramTimeUs(0.0), 0.0);
    const double t1 = mem.dramTimeUs(1e6);
    const double t2 = mem.dramTimeUs(2e6);
    EXPECT_NEAR(t2, 2.0 * t1, 1e-9);
    // 1 MB at ~700 GB/s is ~1.4 us.
    EXPECT_GT(t1, 1.0);
    EXPECT_LT(t1, 2.0);
}

TEST(MemoryModel, GemmTrafficIncludesAllOperands)
{
    MemoryModel mem(GpuConfig::v100());
    const double traffic =
        mem.gemmTrafficBytes(128, 128, 1000.0, 2000.0, 3000.0);
    // Resident stripes: inputs move once (plus the 15% residue),
    // the output exactly once.
    EXPECT_DOUBLE_EQ(traffic, 1000.0 * 1.15 + 2000.0 * 1.15 + 3000.0);
}

TEST(MemoryModel, OversizedStripesPayReReads)
{
    MemoryModel mem(GpuConfig::v100());
    // 256 MB operands: a single stripe (256MB/32 = 8 MB) exceeds the
    // L2 share, so the sweep re-reads it, damped by the hit rate.
    const double resident =
        mem.gemmTrafficBytes(4096, 4096, 1e6, 1e6, 1e6);
    const double thrashing =
        mem.gemmTrafficBytes(4096, 4096, 256e6, 256e6, 1e6);
    EXPECT_DOUBLE_EQ(resident, 1e6 * 1.15 * 2 + 1e6);
    // Per byte, the thrashing case moves more than the resident one.
    EXPECT_GT(thrashing / 256.0, resident);
    // But the L2 damps it far below the no-cache worst case.
    const double worst = 256e6 * 32 * 2 + 1e6;
    EXPECT_LT(thrashing, worst / 3.0);
}

TEST(MemoryModel, ExplicitIm2colPaysInflation)
{
    MemoryModel mem(GpuConfig::v100());
    const double input = 1e6, weights = 1e5, output = 5e5;
    const double implicit =
        mem.convTrafficBytes(input, weights, output, 9.0, false);
    const double explicit_traffic =
        mem.convTrafficBytes(input, weights, output, 9.0, true);
    // Explicit materializes the lowered matrix: write + read of
    // inflation x input on top of everything else.
    EXPECT_GT(explicit_traffic, implicit + 2 * 9.0 * input - input);
    EXPECT_LT(implicit, 2.0 * input + weights + output);
}

TEST(MemoryModel, V100PeakNumbersAreSane)
{
    GpuConfig cfg = GpuConfig::v100();
    // 40960 FP16 MACs per cycle (Sec. II-B / V-A1).
    EXPECT_DOUBLE_EQ(cfg.peakMacsPerCycle(), 40960.0);
    // 125 TFLOPS peak = 2 * MACs * clock.
    EXPECT_NEAR(2.0 * cfg.peakMacsPerCycle() * cfg.clock_ghz * 1e9,
                125e12, 1e12);
    EXPECT_EQ(cfg.totalSubcores(), 320);
}

} // namespace
} // namespace dstc
