#include "timing/merge_model.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "timing/accum_buffer.h"

namespace dstc {
namespace {

TEST(MergeModel, ZeroWorkIsFree)
{
    MergeCostModel model(128, true);
    EXPECT_DOUBLE_EQ(model.tileCycles(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(model.tileCycles(100, 0), 0.0);
    EXPECT_DOUBLE_EQ(model.perInstrCycles(0), 0.0);
}

TEST(MergeModel, SingleAccessIsOneCycle)
{
    MergeCostModel model(128, false);
    EXPECT_DOUBLE_EQ(model.perInstrCycles(1), 1.0);
}

TEST(MergeModel, CollectorApproachesBankThroughput)
{
    MergeCostModel model(128, true);
    // 12800 accesses over 128 banks: 100 cycles mean load plus the
    // max-bank tail and the finite-window margin.
    const double cycles = model.tileCycles(12800, 100);
    EXPECT_GE(cycles, 100.0);
    EXPECT_LE(cycles, 160.0);
}

TEST(MergeModel, SerialCostsExceedCollector)
{
    MergeCostModel with_oc(128, true);
    MergeCostModel without_oc(128, false);
    EXPECT_LT(with_oc.tileCycles(2048, 64),
              without_oc.tileCycles(2048, 64));
}

TEST(MergeModel, MonotonicInAccesses)
{
    MergeCostModel model(128, false);
    double prev = 0.0;
    for (int64_t accesses = 64; accesses <= 8192; accesses *= 2) {
        const double c = model.tileCycles(accesses, 64);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(MergeModel, MemoRegistryStaysBounded)
{
    // Sweep far more bank counts than the registry bound: the
    // process-shared memo registry must evict (FIFO) instead of
    // growing without limit.
    for (int banks = 1; banks <= 64; ++banks)
        MergeCostModel model(banks, false);
    EXPECT_LE(MergeCostModel::memoRegistryEntries(),
              MergeCostModel::kMemoRegistryBound);

    // A model alive across evictions keeps its own memo and stays
    // usable; values are pure in (banks, accesses), so a re-created
    // model for an evicted bank count reproduces them exactly.
    MergeCostModel survivor(3, false);
    const double before = survivor.perInstrCycles(20);
    for (int banks = 100; banks <= 140; ++banks)
        MergeCostModel model(banks, false);
    EXPECT_DOUBLE_EQ(survivor.perInstrCycles(20), before);
    EXPECT_DOUBLE_EQ(MergeCostModel(3, false).perInstrCycles(20),
                     before);
    EXPECT_LE(MergeCostModel::memoRegistryEntries(),
              MergeCostModel::kMemoRegistryBound);
}

/** The analytic model must track the exact bank simulator. */
class MergeModelValidation
    : public ::testing::TestWithParam<std::tuple<int, int, bool>>
{
};

TEST_P(MergeModelValidation, TracksExactSimulator)
{
    const auto [instrs, accesses_per_instr, collector] = GetParam();
    const int banks = 128;
    Rng rng(1000 + instrs * 13 + accesses_per_instr);

    MergeTrace trace;
    int64_t total = 0;
    for (int i = 0; i < instrs; ++i) {
        std::vector<int> addrs;
        // Distinct positions within a 32x32 tile, like a real
        // partial-matrix scatter.
        std::vector<int> pool(1024);
        for (int p = 0; p < 1024; ++p)
            pool[p] = p;
        for (int j = 0; j < accesses_per_instr; ++j) {
            int pick = j + static_cast<int>(rng.uniformInt(1024 - j));
            std::swap(pool[j], pool[pick]);
            addrs.push_back(pool[j]);
        }
        total += accesses_per_instr;
        trace.instr_addrs.push_back(std::move(addrs));
    }

    AccumBufferSim sim(banks, collector, 8);
    MergeCostModel model(banks, collector);
    const double exact = static_cast<double>(sim.simulateSparse(trace));
    const double approx = model.tileCycles(total, instrs);
    // 35% tolerance + 4-cycle slack for pipeline ramp effects.
    EXPECT_NEAR(approx, exact, exact * 0.35 + 4.0)
        << "instrs=" << instrs << " n=" << accesses_per_instr
        << " oc=" << collector;
}

INSTANTIATE_TEST_SUITE_P(
    TraceShapes, MergeModelValidation,
    ::testing::Combine(::testing::Values(4, 16, 64),
                       ::testing::Values(8, 32, 128),
                       ::testing::Bool()));

} // namespace
} // namespace dstc
