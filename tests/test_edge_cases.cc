/**
 * @file
 * Cross-cutting edge cases: configurations the main suites do not
 * reach — rectangular feature maps, non-default tiling options,
 * FP16 extreme values flowing through the kernels, and degenerate
 * shapes.
 */
#include <gtest/gtest.h>

#include "common/fp16.h"
#include "common/rng.h"
#include "im2col/dense_im2col.h"
#include "session_test_util.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

TEST(EdgeCases, RectangularFeatureMapConv)
{
    // in_h != in_w exercises the row/column bookkeeping of every
    // im2col variant through the executor.
    Rng rng(301);
    Session session;
    ConvShape shape;
    shape.in_c = 3;
    shape.in_h = 7;
    shape.in_w = 19;
    shape.out_c = 5;
    shape.kernel = 3;
    shape.pad = 1;
    Tensor4d input(1, 3, 7, 19);
    for (float &v : input.data())
        v = rng.bernoulli(0.5) ? rng.uniformFloat(-1.0f, 1.0f) : 0.0f;
    Matrix<float> weights = randomSparseMatrix(5, 27, 0.5, rng);
    Tensor4d golden = refConv2d(input, weights, shape.params());
    for (ConvMethod method : {ConvMethod::DenseExplicit,
                              ConvMethod::DualSparseImplicit}) {
        KernelReport r =
            testutil::conv(session, input, weights, shape, method);
        double worst = 0.0;
        for (size_t i = 0; i < golden.size(); ++i)
            worst = std::max(worst, static_cast<double>(std::fabs(
                                        r.output->data()[i] -
                                        golden.data()[i])));
        EXPECT_LT(worst, 2e-2) << convMethodName(method);
    }
}

TEST(EdgeCases, WideThinAndTallSkinnyGemm)
{
    Rng rng(302);
    Session session;
    for (auto [m, k, n] : {std::tuple{1, 257, 95},
                           std::tuple{95, 3, 200},
                           std::tuple{200, 129, 1}}) {
        Matrix<float> a = randomSparseMatrix(m, k, 0.5, rng);
        Matrix<float> b = randomSparseMatrix(k, n, 0.5, rng);
        KernelReport r = testutil::spgemm(session, a, b);
        EXPECT_LT(maxAbsDiff(*r.d, refGemmFp16(a, b)), 1e-5)
            << m << "x" << k << "x" << n;
    }
}

TEST(EdgeCases, NonDefaultTileKMatchesDefault)
{
    // Timing options must not change functional results, and the
    // instruction totals are tiling-invariant (the k loop covers the
    // same non-zeros regardless of chunking).
    Rng rng(303);
    Session session;
    Matrix<float> a = randomSparseMatrix(96, 160, 0.7, rng);
    Matrix<float> b = randomSparseMatrix(160, 96, 0.7, rng);
    SpGemmOptions defaults;
    SpGemmOptions chunked;
    chunked.tile_k = 64;
    KernelReport r1 = testutil::spgemm(session, a, b, defaults);
    KernelReport r2 = testutil::spgemm(session, a, b, chunked);
    EXPECT_LT(maxAbsDiff(*r1.d, *r2.d), 1e-9);
    EXPECT_EQ(r1.stats.mix.ohmma_issued, r2.stats.mix.ohmma_issued);
    EXPECT_EQ(r1.stats.mix.bohmma, r2.stats.mix.bohmma);
}

TEST(EdgeCases, SparseOutputOptionOnlyAffectsMemory)
{
    Rng rng(304);
    Session session;
    Matrix<float> a = randomSparseMatrix(128, 128, 0.95, rng);
    Matrix<float> b = randomSparseMatrix(128, 128, 0.95, rng);
    SpGemmOptions dense_out;
    dense_out.functional = false;
    SpGemmOptions sparse_out = dense_out;
    sparse_out.sparse_output = true;
    KernelStats d = testutil::spgemm(session, a, b, dense_out).stats;
    KernelStats s =
        testutil::spgemm(session, a, b, sparse_out).stats;
    EXPECT_DOUBLE_EQ(d.compute_us, s.compute_us);
    EXPECT_LE(s.dram_bytes, d.dram_bytes);
}

TEST(EdgeCases, Fp16ExtremeValuesThroughSpGemm)
{
    // Values at the edge of FP16 range survive the encode /
    // condense / multiply pipeline like the reference.
    Session session;
    Matrix<float> a(32, 32), b(32, 32);
    a.at(0, 0) = 65504.0f;   // max finite half
    a.at(1, 1) = -65504.0f;
    a.at(2, 2) = 6.1e-5f;    // near the subnormal boundary
    b.at(0, 0) = 0.5f;
    b.at(1, 1) = 2.0f;       // -65504 * 2 overflows to -inf in FP32? no
    b.at(2, 2) = 1.0f;
    KernelReport r = testutil::spgemm(session, a, b);
    Matrix<float> golden = refGemmFp16(a, b);
    EXPECT_EQ(r.d->at(0, 0), golden.at(0, 0));
    EXPECT_EQ(r.d->at(1, 1), golden.at(1, 1));
    EXPECT_EQ(r.d->at(2, 2), golden.at(2, 2));
}

TEST(EdgeCases, KernelLargerThanPaddedInput)
{
    // 5x5 kernel over a 4x4 input with pad 2: windows consist mostly
    // of padding.
    Rng rng(305);
    Session session;
    ConvShape shape;
    shape.in_c = 2;
    shape.in_h = shape.in_w = 4;
    shape.out_c = 3;
    shape.kernel = 5;
    shape.pad = 2;
    Tensor4d input = randomSparseTensor(1, 2, 4, 4, 0.3, rng);
    Matrix<float> weights = randomSparseMatrix(3, 50, 0.2, rng);
    Tensor4d golden = refConv2d(input, weights, shape.params());
    KernelReport r = testutil::conv(session, input, weights, shape,
                                    ConvMethod::DualSparseImplicit);
    double worst = 0.0;
    for (size_t i = 0; i < golden.size(); ++i)
        worst = std::max(worst,
                         static_cast<double>(std::fabs(
                             r.output->data()[i] - golden.data()[i])));
    EXPECT_LT(worst, 2e-2);
}

TEST(EdgeCases, BatchGreaterThanOne)
{
    Rng rng(306);
    Session session;
    ConvShape shape;
    shape.batch = 3;
    shape.in_c = 4;
    shape.in_h = shape.in_w = 9;
    shape.out_c = 6;
    shape.kernel = 3;
    shape.pad = 1;
    Tensor4d input = randomSparseTensor(3, 4, 9, 9, 0.5, rng);
    Matrix<float> weights = randomSparseMatrix(6, 36, 0.6, rng);
    Tensor4d golden = refConv2d(input, weights, shape.params());
    KernelReport r = testutil::conv(session, input, weights, shape,
                                    ConvMethod::DualSparseImplicit);
    double worst = 0.0;
    for (size_t i = 0; i < golden.size(); ++i)
        worst = std::max(worst,
                         static_cast<double>(std::fabs(
                             r.output->data()[i] - golden.data()[i])));
    EXPECT_LT(worst, 2e-2);
}

TEST(EdgeCases, OneByOneConvIsPureGemm)
{
    // kernel=1, pad=0: the lowered matrix is the flattened input,
    // and all methods reduce to plain (Sp)GEMM.
    Rng rng(307);
    Session session;
    ConvShape shape;
    shape.in_c = 8;
    shape.in_h = shape.in_w = 6;
    shape.out_c = 4;
    shape.kernel = 1;
    shape.pad = 0;
    Tensor4d input = randomSparseTensor(1, 8, 6, 6, 0.6, rng);
    Matrix<float> weights = randomSparseMatrix(4, 8, 0.4, rng);
    EXPECT_NEAR(shape.inflation(), 1.0, 1e-9);
    Tensor4d golden = refConv2d(input, weights, shape.params());
    KernelReport r = testutil::conv(session, input, weights, shape,
                                    ConvMethod::DualSparseImplicit);
    double worst = 0.0;
    for (size_t i = 0; i < golden.size(); ++i)
        worst = std::max(worst,
                         static_cast<double>(std::fabs(
                             r.output->data()[i] - golden.data()[i])));
    EXPECT_LT(worst, 2e-2);
}

} // namespace
} // namespace dstc
