#include "core/session.h"

#include <gtest/gtest.h>

#include <vector>

#include "baselines/cutlass_like.h"
#include "common/rng.h"
#include "gemm/spgemm_device.h"
#include "hwmodel/area_power.h"
#include "model/runner.h"
#include "session_test_util.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

void
expectStatsBitwiseEqual(const KernelStats &a, const KernelStats &b,
                        const std::string &context)
{
    EXPECT_DOUBLE_EQ(a.compute_us, b.compute_us) << context;
    EXPECT_DOUBLE_EQ(a.memory_us, b.memory_us) << context;
    EXPECT_DOUBLE_EQ(a.dram_bytes, b.dram_bytes) << context;
    EXPECT_DOUBLE_EQ(a.launch_us, b.launch_us) << context;
    EXPECT_EQ(a.bound, b.bound) << context;
    EXPECT_EQ(a.mix.hmma, b.mix.hmma) << context;
    EXPECT_EQ(a.mix.ohmma_issued, b.mix.ohmma_issued) << context;
    EXPECT_EQ(a.mix.ohmma_skipped, b.mix.ohmma_skipped) << context;
    EXPECT_EQ(a.mix.bohmma, b.mix.bohmma) << context;
    EXPECT_EQ(a.mix.popc, b.mix.popc) << context;
    EXPECT_EQ(a.warp_tiles, b.warp_tiles) << context;
    EXPECT_EQ(a.warp_tiles_skipped, b.warp_tiles_skipped) << context;
    EXPECT_EQ(a.merge_cycles, b.merge_cycles) << context;
}

/** A mixed bag of GEMM and conv requests across all methods. */
std::vector<KernelRequest>
mixedRequests()
{
    std::vector<KernelRequest> requests;
    uint64_t seed = 1;
    for (Method method : {Method::DualSparse, Method::Dense,
                          Method::ZhuSparse, Method::AmpereSparse,
                          Method::CusparseLike, Method::Auto}) {
        KernelRequest req =
            KernelRequest::gemm(256, 256, 256, 0.6, 0.8);
        req.method = method;
        req.seed = seed++;
        requests.push_back(req);
    }
    ConvShape shape;
    shape.in_c = 32;
    shape.in_h = shape.in_w = 14;
    shape.out_c = 64;
    for (Method method :
         {Method::DualSparse, Method::Dense, Method::ZhuSparse}) {
        KernelRequest req = KernelRequest::conv(shape, 0.7, 0.5);
        req.method = method;
        req.seed = seed++;
        requests.push_back(req);
    }
    return requests;
}

TEST(SessionTest, RunMatchesDeviceModels)
{
    // The plan-execute front end is plumbing, not math: a Session
    // run must reproduce the underlying device models bitwise.
    Session session;
    Rng rng(301);
    SparsityProfile pa =
        SparsityProfile::randomA(512, 512, 32, 0.3, 1.0, rng);
    SparsityProfile pb =
        SparsityProfile::randomA(512, 512, 32, 0.3, 1.0, rng);

    KernelRequest req = KernelRequest::gemm(pa, pb);
    req.method = Method::DualSparse;
    SpGemmDevice device(session.config());
    expectStatsBitwiseEqual(session.run(req).stats,
                            device.timeFromProfiles(pa, pb, {}),
                            "timeFromProfiles");

    KernelRequest dense = KernelRequest::gemm(2048, 1024, 512);
    dense.method = Method::Dense;
    expectStatsBitwiseEqual(session.run(dense).stats,
                            cutlassGemm(session.config(), 2048, 1024,
                                        512),
                            "cutlassGemm");
}

TEST(SessionTest, SubmitReturnsFuture)
{
    Session session;
    KernelRequest req = KernelRequest::gemm(512, 512, 512, 0.5, 0.5);
    req.method = Method::DualSparse;
    std::future<KernelReport> future = session.submit(req);
    KernelReport report = future.get();
    EXPECT_GT(report.timeUs(), 0.0);
    EXPECT_EQ(report.method, Method::DualSparse);
}

TEST(SessionTest, SubmitBatchMatchesSerialBitwise)
{
    // The core batching guarantee: submitBatch over N requests is
    // statistically indistinguishable from running them serially.
    Session serial_session;
    std::vector<KernelReport> serial;
    for (const KernelRequest &req : mixedRequests())
        serial.push_back(serial_session.run(req));

    Session batch_session;
    std::vector<std::future<KernelReport>> futures =
        batch_session.submitBatch(mixedRequests());
    ASSERT_EQ(futures.size(), serial.size());
    for (size_t i = 0; i < futures.size(); ++i) {
        KernelReport batched = futures[i].get();
        expectStatsBitwiseEqual(batched.stats, serial[i].stats,
                                "request " + std::to_string(i));
        EXPECT_EQ(batched.method, serial[i].method);
        EXPECT_EQ(batched.backend, serial[i].backend);
    }
}

TEST(SessionTest, RepeatedBatchesAreDeterministic)
{
    Session session;
    std::vector<KernelReport> first =
        session.runBatch(mixedRequests());
    std::vector<KernelReport> second =
        session.runBatch(mixedRequests());
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i)
        expectStatsBitwiseEqual(first[i].stats, second[i].stats,
                                "request " + std::to_string(i));
}

TEST(SessionTest, SingleThreadedSessionMatchesParallel)
{
    SessionOptions one_thread;
    one_thread.num_threads = 1;
    Session single(one_thread);
    Session parallel;
    std::vector<KernelReport> a = single.runBatch(mixedRequests());
    std::vector<KernelReport> b = parallel.runBatch(mixedRequests());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        expectStatsBitwiseEqual(a[i].stats, b[i].stats,
                                "request " + std::to_string(i));
}

TEST(SessionTest, FunctionalGemmThroughSession)
{
    Session session;
    Rng rng(302);
    Matrix<float> a = randomSparseMatrix(64, 64, 0.6, rng);
    Matrix<float> b = randomSparseMatrix(64, 64, 0.6, rng);
    KernelRequest req = KernelRequest::gemm(a, b);
    req.method = Method::DualSparse;
    KernelReport report = session.run(req);
    ASSERT_NE(report.d, nullptr);
    EXPECT_LT(maxAbsDiff(*report.d, refGemmFp16(a, b)), 1e-5);
}

TEST(SessionTest, FunctionalBatchKeepsOperandsStraight)
{
    // Functional requests in one batch: each future must return its
    // own product, not a neighbor's.
    Session session;
    Rng rng(303);
    std::vector<Matrix<float>> as, bs;
    for (int i = 0; i < 4; ++i) {
        as.push_back(randomSparseMatrix(48, 48, 0.5, rng));
        bs.push_back(randomSparseMatrix(48, 48, 0.5, rng));
    }
    std::vector<KernelRequest> requests;
    for (int i = 0; i < 4; ++i) {
        KernelRequest req = KernelRequest::gemm(as[i], bs[i]);
        req.method = Method::DualSparse;
        requests.push_back(req);
    }
    std::vector<KernelReport> reports =
        session.runBatch(std::move(requests));
    for (int i = 0; i < 4; ++i) {
        ASSERT_NE(reports[i].d, nullptr);
        EXPECT_LT(maxAbsDiff(*reports[i].d, refGemmFp16(as[i], bs[i])),
                  1e-5)
            << i;
    }
}

TEST(SessionTest, BatchedModelMatchesSerialRunner)
{
    // Acceptance: a batched full-model run produces stats identical
    // to the serial ModelRunner run.
    for (const DnnModel &model : {makeResnet18(), makeBertBase()}) {
        Session session;
        ModelRunner runner(session);
        ModelRunResult serial =
            runner.run(model, ModelMethod::DualSparseImplicit, 3);
        ModelRunResult batched =
            runner.runBatched(model, ModelMethod::DualSparseImplicit,
                              3);
        ASSERT_EQ(serial.layers.size(), batched.layers.size());
        for (size_t i = 0; i < serial.layers.size(); ++i) {
            EXPECT_EQ(serial.layers[i].name, batched.layers[i].name);
            expectStatsBitwiseEqual(serial.layers[i].stats,
                                    batched.layers[i].stats,
                                    model.name + "/" +
                                        serial.layers[i].name);
        }
        EXPECT_DOUBLE_EQ(serial.totalTimeUs(), batched.totalTimeUs());
    }
}

TEST(SessionTest, ConfigPropagatesToBackends)
{
    GpuConfig tiny = GpuConfig::v100();
    tiny.num_sms = 8;
    Session small(tiny);
    Session big;
    EXPECT_EQ(small.config().num_sms, 8);
    KernelRequest req = KernelRequest::gemm(2048, 2048, 2048);
    req.method = Method::Dense;
    const double small_t = small.run(req).stats.compute_us;
    const double big_t = big.run(req).stats.compute_us;
    EXPECT_NEAR(small_t / big_t, 10.0, 0.5);
}

TEST(SessionTest, NonDefaultTileKFlowsThroughRequests)
{
    // The K-chunk depth is the tunable tiling knob (the 32x32 warp
    // tile itself is fixed by the architecture); tile_k variants
    // must flow through synthesis, caching and execution.
    Session session;
    KernelRequest req = KernelRequest::gemm(256, 256, 256, 0.9, 0.9);
    req.method = Method::DualSparse;
    req.a_cluster = req.b_cluster = 8.0;
    req.gemm_options.functional = false;
    KernelReport shallow, deep;
    req.gemm_options.tile_k = 8;
    shallow = session.run(req);
    req.gemm_options.tile_k = 64;
    deep = session.run(req);
    EXPECT_GT(shallow.timeUs(), 0.0);
    EXPECT_GT(deep.timeUs(), 0.0);
    // Shallower K-chunks skip more empty tiles on clustered inputs.
    EXPECT_GE(shallow.stats.warp_tiles_skipped,
              deep.stats.warp_tiles_skipped);

    // Functional operands with a custom K-chunk depth.
    Rng rng(41);
    Matrix<float> a = randomSparseMatrix(128, 128, 0.6, rng);
    Matrix<float> b = randomSparseMatrix(128, 128, 0.6, rng);
    KernelRequest freq = KernelRequest::gemm(a, b);
    freq.method = Method::DualSparse;
    freq.gemm_options.tile_k = 64;
    auto plan = session.plan(freq);
    EXPECT_GT(plan->estimatedTimeUs(), 0.0);
    KernelReport functional = plan->execute();
    ASSERT_NE(functional.d, nullptr);
    EXPECT_LT(maxAbsDiff(*functional.d, refGemmFp16(a, b)), 1e-5);
}

TEST(SessionTest, PlanExposesEstimateBeforeExecution)
{
    Session session;
    KernelRequest req = KernelRequest::gemm(512, 512, 512, 0.8, 0.8);
    req.method = Method::DualSparse;
    auto plan = session.plan(req);
    const double estimate = plan->estimatedTimeUs();
    EXPECT_GT(estimate, 0.0);
    KernelReport report = plan->execute();
    EXPECT_DOUBLE_EQ(report.timeUs(), estimate);
    EXPECT_DOUBLE_EQ(report.planned_us, estimate);
}

// -- the paper's anchors, Session-native (formerly test_engine.cc) --

TEST(SessionAnchors, DenseBaselineAnchors)
{
    Session session;
    KernelStats dense =
        testutil::denseGemmTime(session, 4096, 4096, 4096);
    // Real V100 CUTLASS FP16 TC time for 4096^3 is ~1.2-1.5 ms.
    EXPECT_GT(dense.timeUs(), 1000.0);
    EXPECT_LT(dense.timeUs(), 2000.0);
}

TEST(SessionAnchors, DualSideBeatsAllBaselinesAtModerateSparsity)
{
    // A 70%/70% dual-sparse problem: ours should beat CUTLASS, the
    // fixed-rate sparse tensor core, and cuSparse (Fig. 21 region).
    Session session;
    Rng rng(223);
    const int n = 1024;
    SparsityProfile pa =
        SparsityProfile::randomA(n, n, 32, 0.3, 1.0, rng);
    SparsityProfile pb =
        SparsityProfile::randomA(n, n, 32, 0.3, 1.0, rng);
    const double ours = testutil::spgemmTime(session, pa, pb).timeUs();
    const double dense =
        testutil::denseGemmTime(session, n, n, n).timeUs();
    const double zhu =
        testutil::zhuGemmTime(session, n, n, n, 0.7).timeUs();
    const double cusparse =
        testutil::cusparseTime(session, n, n, n, 0.3, 0.3).timeUs();
    EXPECT_LT(ours, dense);
    EXPECT_LT(ours, zhu);
    EXPECT_LT(ours, cusparse);
}

TEST(SessionAnchors, ConvTimeOrderingAcrossMethods)
{
    Session session;
    ConvShape shape;
    shape.in_c = 64;
    shape.in_h = shape.in_w = 28;
    shape.out_c = 64;
    shape.kernel = 3;
    shape.pad = 1;
    const double dense_exp =
        testutil::convTime(session, shape, ConvMethod::DenseExplicit,
                           0.8, 0.6)
            .timeUs();
    const double dense_imp =
        testutil::convTime(session, shape, ConvMethod::DenseImplicit,
                           0.8, 0.6)
            .timeUs();
    const double dual =
        testutil::convTime(session, shape,
                           ConvMethod::DualSparseImplicit, 0.8, 0.6)
            .timeUs();
    EXPECT_LT(dense_imp, dense_exp);
    EXPECT_LT(dual, dense_imp);
}

TEST(SessionAnchors, HardwareOverheadExposed)
{
    Session session;
    OverheadReport report = estimateOverhead(session.config());
    EXPECT_NEAR(report.totalAreaMm2(), 12.846, 0.6);
}

TEST(SessionAnchors, A100PresetIsFasterOnMemoryBoundPoints)
{
    Session v100;
    Session a100(GpuConfig::a100Like());
    Rng rng(226);
    SparsityProfile a =
        SparsityProfile::randomA(4096, 4096, 32, 0.001, 8.0, rng);
    SparsityProfile b =
        SparsityProfile::randomA(4096, 4096, 32, 0.01, 8.0, rng);
    KernelStats v100_stats = testutil::spgemmTime(v100, a, b);
    KernelStats a100_stats = testutil::spgemmTime(a100, a, b);
    // The high-sparsity point is memory bound on the V100; the
    // A100-class memory system must shrink it.
    EXPECT_EQ(v100_stats.bound, Bound::Memory);
    EXPECT_LT(a100_stats.memory_us, v100_stats.memory_us);
    EXPECT_LT(a100_stats.timeUs(), v100_stats.timeUs());
}

TEST(SessionAnchors, FutureGpuPresetIsFasterStill)
{
    // The future-GPU preset must extend the same gradient the
    // A100-class preset starts — that speed spread is what the
    // cluster scheduler's heterogeneous placement exploits.
    Session v100;
    Session future(GpuConfig::futureGpu());
    Rng rng(227);
    SparsityProfile a =
        SparsityProfile::randomA(4096, 4096, 32, 0.001, 8.0, rng);
    SparsityProfile b =
        SparsityProfile::randomA(4096, 4096, 32, 0.01, 8.0, rng);
    EXPECT_LT(testutil::spgemmTime(future, a, b).timeUs(),
              testutil::spgemmTime(v100, a, b).timeUs());
    EXPECT_LT(testutil::denseGemmTime(future, 2048, 2048, 2048)
                  .timeUs(),
              testutil::denseGemmTime(v100, 2048, 2048, 2048)
                  .timeUs());
}

} // namespace
} // namespace dstc
