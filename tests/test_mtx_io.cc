/**
 * @file
 * Matrix Market loader gate: every accepted header variant loads to
 * the exact dense matrix (mirroring, duplicate summing, pattern
 * values), and every malformed input fails with a "name:line:
 * message" diagnostic instead of a crash or a silently wrong matrix
 * — the property the CLI's exit-2 contract rests on.
 */
#include "sparse/mtx_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dstc {
namespace {

Matrix<float>
load(const std::string &text)
{
    std::istringstream in(text);
    Matrix<float> m;
    std::string error;
    EXPECT_TRUE(loadMatrixMarket(in, "test.mtx", &m, &error)) << error;
    return m;
}

/** Expect failure whose diagnostic contains @p fragment. */
void
expectError(const std::string &text, const std::string &fragment)
{
    std::istringstream in(text);
    Matrix<float> m;
    std::string error;
    ASSERT_FALSE(loadMatrixMarket(in, "test.mtx", &m, &error))
        << "accepted: " << text;
    EXPECT_NE(error.find("test.mtx:"), std::string::npos) << error;
    EXPECT_NE(error.find(fragment), std::string::npos)
        << "diagnostic '" << error << "' lacks '" << fragment << "'";
}

TEST(MtxIo, RealGeneral)
{
    const Matrix<float> m = load("%%MatrixMarket matrix coordinate "
                                 "real general\n"
                                 "3 4 3\n"
                                 "1 1 2.5\n"
                                 "3 4 -1\n"
                                 "2 2 0.5\n");
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 4);
    EXPECT_EQ(m.nnz(), 3);
    EXPECT_EQ(m.at(0, 0), 2.5f);
    EXPECT_EQ(m.at(2, 3), -1.0f);
    EXPECT_EQ(m.at(1, 1), 0.5f);
}

TEST(MtxIo, CommentsAndBlankLines)
{
    const Matrix<float> m = load("%%MatrixMarket matrix coordinate "
                                 "real general\n"
                                 "% header comment\n"
                                 "\n"
                                 "2 2 2\n"
                                 "% entry comment\n"
                                 "1 2 1\n"
                                 "\n"
                                 "2 1 3\n");
    EXPECT_EQ(m.at(0, 1), 1.0f);
    EXPECT_EQ(m.at(1, 0), 3.0f);
}

TEST(MtxIo, PatternSymmetricMirrors)
{
    const Matrix<float> m = load("%%MatrixMarket matrix coordinate "
                                 "pattern symmetric\n"
                                 "3 3 2\n"
                                 "2 1\n"
                                 "3 3\n");
    EXPECT_EQ(m.at(1, 0), 1.0f); // pattern loads as 1.0
    EXPECT_EQ(m.at(0, 1), 1.0f); // mirrored
    EXPECT_EQ(m.at(2, 2), 1.0f); // diagonal mirrors onto itself once
    EXPECT_EQ(m.nnz(), 3);
}

TEST(MtxIo, IntegerField)
{
    const Matrix<float> m = load("%%MatrixMarket matrix coordinate "
                                 "integer general\n"
                                 "2 2 1\n"
                                 "2 2 -7\n");
    EXPECT_EQ(m.at(1, 1), -7.0f);
}

TEST(MtxIo, SkewSymmetricNegatesMirror)
{
    const Matrix<float> m = load("%%MatrixMarket matrix coordinate "
                                 "real skew-symmetric\n"
                                 "3 3 1\n"
                                 "3 1 2\n");
    EXPECT_EQ(m.at(2, 0), 2.0f);
    EXPECT_EQ(m.at(0, 2), -2.0f);
}

TEST(MtxIo, DuplicateEntriesSum)
{
    const Matrix<float> m = load("%%MatrixMarket matrix coordinate "
                                 "real general\n"
                                 "2 2 3\n"
                                 "1 1 1.5\n"
                                 "1 1 2\n"
                                 "2 1 1\n");
    EXPECT_EQ(m.at(0, 0), 3.5f);
    EXPECT_EQ(m.nnz(), 2);
}

TEST(MtxIo, CaseInsensitiveHeaderTokens)
{
    const Matrix<float> m = load("%%MatrixMarket MATRIX Coordinate "
                                 "Real General\n"
                                 "1 1 1\n"
                                 "1 1 4\n");
    EXPECT_EQ(m.at(0, 0), 4.0f);
}

TEST(MtxIo, MalformedInputsFailWithDiagnostics)
{
    expectError("", "empty file");
    expectError("%%NotMatrixMarket matrix coordinate real general\n",
                "not a MatrixMarket file");
    expectError("%%MatrixMarket vector coordinate real general\n",
                "unsupported object");
    expectError("%%MatrixMarket matrix array real general\n",
                "unsupported format");
    expectError("%%MatrixMarket matrix coordinate complex general\n",
                "unsupported field");
    expectError("%%MatrixMarket matrix coordinate real hermitian\n",
                "unsupported symmetry");
    expectError("%%MatrixMarket matrix coordinate real general\n"
                "% only comments\n",
                "before the size line");
    expectError("%%MatrixMarket matrix coordinate real general\n"
                "3 oops 1\n",
                "malformed size line");
    expectError("%%MatrixMarket matrix coordinate real general\n"
                "3 3 1 junk\n",
                "trailing token");
    expectError("%%MatrixMarket matrix coordinate real general\n"
                "0 3 0\n",
                "invalid dimensions");
    expectError("%%MatrixMarket matrix coordinate real general\n"
                "100000 100000 1\n"
                "1 1 1\n",
                "too large to densify");
    expectError("%%MatrixMarket matrix coordinate real symmetric\n"
                "2 3 1\n"
                "1 1 1\n",
                "square");
    expectError("%%MatrixMarket matrix coordinate real general\n"
                "3 3 2\n"
                "1 1 1\n",
                "1 of 2 entries");
    expectError("%%MatrixMarket matrix coordinate real general\n"
                "3 3 1\n"
                "1 nope 1\n",
                "malformed entry");
    expectError("%%MatrixMarket matrix coordinate real general\n"
                "3 3 1\n"
                "1 1\n",
                "missing its value");
    expectError("%%MatrixMarket matrix coordinate pattern general\n"
                "3 3 1\n"
                "1 1 1\n",
                "trailing token");
    expectError("%%MatrixMarket matrix coordinate real general\n"
                "3 3 1\n"
                "4 1 1\n",
                "outside the declared");
    expectError("%%MatrixMarket matrix coordinate real general\n"
                "3 3 1\n"
                "0 1 1\n",
                "outside the declared");
    expectError("%%MatrixMarket matrix coordinate real "
                "skew-symmetric\n"
                "3 3 1\n"
                "2 2 1\n",
                "no diagonal");
}

TEST(MtxIo, FileVariantRoundTripAndOpenFailure)
{
    const char *path = "test_mtx_io_tmp.mtx";
    {
        std::ofstream f(path);
        f << "%%MatrixMarket matrix coordinate real general\n"
             "2 2 1\n"
             "2 1 9\n";
    }
    Matrix<float> m;
    std::string error;
    ASSERT_TRUE(loadMatrixMarket(std::string(path), &m, &error))
        << error;
    EXPECT_EQ(m.at(1, 0), 9.0f);
    std::remove(path);

    ASSERT_FALSE(loadMatrixMarket(std::string("no/such/file.mtx"),
                                  &m, &error));
    EXPECT_NE(error.find("cannot open file"), std::string::npos)
        << error;
    EXPECT_NE(error.find("no/such/file.mtx:0:"), std::string::npos)
        << error;
}

} // namespace
} // namespace dstc
