#include "baselines/zhu_sparse_tc.h"

#include <gtest/gtest.h>

#include "baselines/cutlass_like.h"
#include "common/rng.h"
#include "model/pruning.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

TEST(ZhuSparseTc, FixedSpeedupOverDense)
{
    GpuConfig cfg = GpuConfig::v100();
    const double dense = cutlassGemm(cfg, 4096, 4096, 4096).timeUs();
    const double zhu =
        zhuGemm(cfg, 4096, 4096, 4096, 0.75).timeUs();
    // Fig. 21: a fixed ~1.86x line regardless of actual sparsity.
    EXPECT_NEAR(dense / zhu, kZhuEffectiveSpeedup, 0.25);
}

TEST(ZhuSparseTc, CannotExploitExtraSparsity)
{
    GpuConfig cfg = GpuConfig::v100();
    const double at75 = zhuGemm(cfg, 2048, 2048, 2048, 0.75).timeUs();
    const double at95 = zhuGemm(cfg, 2048, 2048, 2048, 0.95).timeUs();
    EXPECT_DOUBLE_EQ(at75, at95); // hard format limit (Sec. VI-D)
}

TEST(ZhuSparseTc, FunctionalEqualsDenseOnPrunedWeights)
{
    Rng rng(151);
    Matrix<float> a = randomSparseMatrix(32, 32, 0.0, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.0, rng);
    Matrix<float> pruned = vectorWisePrune(b, 16, kZhuPruneRatio);
    EXPECT_LT(maxAbsDiff(zhuGemmFunctional(a, b),
                         refGemmFp16(a, pruned)),
              1e-6);
    // The pruned operand really is 75% sparse.
    EXPECT_NEAR(pruned.sparsity(), kZhuPruneRatio, 0.01);
}

TEST(ZhuSparseTc, WeightTrafficIsCondensed)
{
    GpuConfig cfg = GpuConfig::v100();
    KernelStats zhu = zhuGemm(cfg, 512, 512, 4096, 0.75);
    KernelStats dense = cutlassGemm(cfg, 512, 512, 4096);
    EXPECT_LT(zhu.dram_bytes, dense.dram_bytes);
}

} // namespace
} // namespace dstc
