#include "sparse/serialize.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dstc {
namespace {

TEST(Serialize, BitmapRoundTrip)
{
    Rng rng(181);
    for (Major major : {Major::Row, Major::Col}) {
        Matrix<float> m = randomSparseMatrix(37, 53, 0.7, rng);
        BitmapMatrix bm = BitmapMatrix::encode(m, major);
        std::stringstream stream;
        saveBitmap(bm, stream);
        auto loaded = loadBitmap(stream);
        ASSERT_TRUE(loaded.has_value());
        EXPECT_EQ(loaded->decode(), m);
        EXPECT_EQ(loaded->major(), major);
    }
}

TEST(Serialize, CsrRoundTrip)
{
    Rng rng(182);
    Matrix<float> m = randomSparseMatrix(64, 48, 0.85, rng);
    CsrMatrix csr = CsrMatrix::encode(m);
    std::stringstream stream;
    saveCsr(csr, stream);
    auto loaded = loadCsr(stream);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->decode(), m);
}

TEST(Serialize, EmptyMatricesRoundTrip)
{
    Matrix<float> zero(5, 9);
    std::stringstream s1, s2;
    saveBitmap(BitmapMatrix::encode(zero, Major::Col), s1);
    saveCsr(CsrMatrix::encode(zero), s2);
    ASSERT_TRUE(loadBitmap(s1).has_value());
    ASSERT_TRUE(loadCsr(s2).has_value());
    EXPECT_EQ(loadBitmap(s1), std::nullopt); // stream exhausted
}

TEST(Serialize, RejectsBadMagic)
{
    std::stringstream stream;
    stream.write("NOPE", 4);
    EXPECT_EQ(loadBitmap(stream), std::nullopt);
    std::stringstream stream2;
    stream2.write("NOPE", 4);
    EXPECT_EQ(loadCsr(stream2), std::nullopt);
}

TEST(Serialize, RejectsTruncatedPayload)
{
    Rng rng(183);
    Matrix<float> m = randomSparseMatrix(16, 16, 0.5, rng);
    std::stringstream stream;
    saveBitmap(BitmapMatrix::encode(m, Major::Row), stream);
    std::string bytes = stream.str();
    // Chop off the tail of the triplet payload.
    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
    EXPECT_EQ(loadBitmap(truncated), std::nullopt);
}

TEST(Serialize, RejectsCrossFormatLoads)
{
    Rng rng(184);
    Matrix<float> m = randomSparseMatrix(8, 8, 0.5, rng);
    std::stringstream stream;
    saveCsr(CsrMatrix::encode(m), stream);
    EXPECT_EQ(loadBitmap(stream), std::nullopt);
}

TEST(Serialize, RejectsOutOfRangeIndices)
{
    // Hand-build a bitmap container whose coordinate exceeds dims.
    std::stringstream stream;
    auto w32 = [&](uint32_t v) {
        stream.write(reinterpret_cast<const char *>(&v), 4);
    };
    w32(0x44425431); // magic
    w32(4);          // rows
    w32(4);          // cols
    w32(0);          // row-major
    w32(1);          // nnz
    w32(9);          // r out of range
    w32(0);
    float v = 1.0f;
    stream.write(reinterpret_cast<const char *>(&v), 4);
    EXPECT_EQ(loadBitmap(stream), std::nullopt);
}

TEST(Serialize, LargeMatrixRoundTrip)
{
    Rng rng(185);
    Matrix<float> m = randomSparseMatrix(300, 200, 0.95, rng);
    std::stringstream stream;
    saveBitmap(BitmapMatrix::encode(m, Major::Col), stream);
    auto loaded = loadBitmap(stream);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->decode(), m);
}

} // namespace
} // namespace dstc
