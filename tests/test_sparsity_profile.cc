#include "gemm/sparsity_profile.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparse/two_level.h"

namespace dstc {
namespace {

TEST(SparsityProfile, FromMatrixACountsColumnsPerTileRow)
{
    Matrix<float> a(64, 3);
    a.at(0, 0) = 1;
    a.at(31, 0) = 1;
    a.at(32, 0) = 1;
    a.at(63, 2) = 1;
    SparsityProfile p = SparsityProfile::fromMatrixA(a, 32);
    EXPECT_EQ(p.groups(), 2);
    EXPECT_EQ(p.k(), 3);
    EXPECT_EQ(p.count(0, 0), 2);
    EXPECT_EQ(p.count(1, 0), 1);
    EXPECT_EQ(p.count(0, 2), 0);
    EXPECT_EQ(p.count(1, 2), 1);
    EXPECT_EQ(p.totalNnz(), 4);
}

TEST(SparsityProfile, FromMatrixBCountsRowsPerTileCol)
{
    Matrix<float> b(3, 64);
    b.at(0, 0) = 1;
    b.at(0, 40) = 1;
    b.at(2, 33) = 1;
    SparsityProfile p = SparsityProfile::fromMatrixB(b, 32);
    EXPECT_EQ(p.groups(), 2);
    EXPECT_EQ(p.count(0, 0), 1);
    EXPECT_EQ(p.count(1, 0), 1);
    EXPECT_EQ(p.count(1, 2), 1);
    EXPECT_EQ(p.count(0, 2), 0);
}

TEST(SparsityProfile, TileNnzAggregatesKChunks)
{
    Matrix<float> a(32, 64);
    for (int kk = 0; kk < 40; ++kk)
        a.at(kk % 32, kk) = 1.0f;
    SparsityProfile p = SparsityProfile::fromMatrixA(a, 32);
    EXPECT_EQ(p.tileNnz(0, 0, 32), 32);
    EXPECT_EQ(p.tileNnz(0, 1, 32), 8);
    EXPECT_EQ(p.totalNnz(), 40);
}

TEST(SparsityProfile, DenseProfile)
{
    SparsityProfile p = SparsityProfile::denseA(70, 5, 32);
    EXPECT_EQ(p.groups(), 3);
    EXPECT_EQ(p.count(0, 0), 32);
    EXPECT_EQ(p.count(1, 4), 32);
    EXPECT_EQ(p.count(2, 0), 6); // 70 - 64 edge rows
    EXPECT_EQ(p.totalNnz(), 70 * 5);
}

TEST(SparsityProfile, RandomHitsTargetDensity)
{
    Rng rng(101);
    SparsityProfile p =
        SparsityProfile::randomA(1024, 256, 32, 0.3, 1.0, rng);
    const double measured =
        static_cast<double>(p.totalNnz()) / (1024.0 * 256.0);
    EXPECT_NEAR(measured, 0.3, 0.01);
}

TEST(SparsityProfile, ClusteringPreservesDensityButConcentrates)
{
    Rng rng(102);
    SparsityProfile uniform =
        SparsityProfile::randomA(2048, 512, 32, 0.1, 1.0, rng);
    SparsityProfile clustered =
        SparsityProfile::randomA(2048, 512, 32, 0.1, 4.0, rng);
    const double total = 2048.0 * 512.0;
    EXPECT_NEAR(uniform.totalNnz() / total, 0.1, 0.01);
    EXPECT_NEAR(clustered.totalNnz() / total, 0.1, 0.01);
    // Clustered pattern has many more completely empty lines.
    auto empty_lines = [](const SparsityProfile &p) {
        int64_t empties = 0;
        for (int g = 0; g < p.groups(); ++g)
            for (int64_t kk = 0; kk < p.k(); ++kk)
                empties += p.count(g, kk) == 0;
        return empties;
    };
    EXPECT_GT(empty_lines(clustered), empty_lines(uniform) * 2);
}

TEST(SparsityProfile, EncodedBytesMatchTwoLevelEncoding)
{
    Rng rng(103);
    Matrix<float> a = randomSparseMatrix(128, 128, 0.8, rng);
    SparsityProfile p = SparsityProfile::fromMatrixA(a, 32);
    TwoLevelBitmapMatrix tl =
        TwoLevelBitmapMatrix::encode(a, 32, 32, Major::Col);
    const double profile_bytes =
        static_cast<double>(p.encodedBytes(32));
    const double exact_bytes = static_cast<double>(tl.encodedBytes());
    EXPECT_NEAR(profile_bytes, exact_bytes, exact_bytes * 0.05);
}

TEST(SparsityProfile, FromLoweredMatchesDecodedMatrix)
{
    Rng rng(104);
    Tensor4d input = randomSparseTensor(1, 3, 12, 12, 0.5, rng);
    ConvShape shape;
    shape.batch = 1;
    shape.in_c = 3;
    shape.in_h = shape.in_w = 12;
    shape.out_c = 8;
    shape.kernel = 3;
    shape.pad = 1;
    BitmapFeatureMap fmap = BitmapFeatureMap::encode(input);
    LoweredFeatureMap lfm = im2colFromBitmap(fmap, shape);
    SparsityProfile from_lowered =
        SparsityProfile::fromLowered(lfm, 32);
    SparsityProfile from_dense =
        SparsityProfile::fromMatrixA(lfm.decode(), 32);
    ASSERT_EQ(from_lowered.groups(), from_dense.groups());
    ASSERT_EQ(from_lowered.k(), from_dense.k());
    for (int g = 0; g < from_lowered.groups(); ++g)
        for (int64_t kk = 0; kk < from_lowered.k(); ++kk)
            EXPECT_EQ(from_lowered.count(g, kk),
                      from_dense.count(g, kk))
                << "g=" << g << " k=" << kk;
}

TEST(SparsityProfileTest, FromEncodedMatchesFromMatrix)
{
    // The profiles read off a two-level encoding (packing-offset
    // counts, no decode) must equal the element-wise extraction from
    // the matrix the encoding came from — including ragged edges.
    Rng rng(93);
    for (auto [m, k, n] : {std::tuple{96, 128, 64},
                           std::tuple{95, 67, 33},
                           std::tuple{32, 32, 32}}) {
        Matrix<float> a = randomSparseMatrix(m, k, 0.7, rng);
        Matrix<float> b = randomSparseMatrix(k, n, 0.85, rng);
        TwoLevelBitmapMatrix a_enc =
            TwoLevelBitmapMatrix::encode(a, 32, 32, Major::Col);
        TwoLevelBitmapMatrix b_enc =
            TwoLevelBitmapMatrix::encode(b, 32, 32, Major::Row);
        SparsityProfile ea = SparsityProfile::fromEncodedA(a_enc);
        SparsityProfile ma = SparsityProfile::fromMatrixA(a, 32);
        SparsityProfile eb = SparsityProfile::fromEncodedB(b_enc);
        SparsityProfile mb = SparsityProfile::fromMatrixB(b, 32);
        ASSERT_EQ(ea.groups(), ma.groups());
        ASSERT_EQ(ea.k(), ma.k());
        ASSERT_EQ(ea.extent(), ma.extent());
        ASSERT_EQ(eb.groups(), mb.groups());
        ASSERT_EQ(eb.k(), mb.k());
        ASSERT_EQ(eb.extent(), mb.extent());
        for (int g = 0; g < ea.groups(); ++g)
            for (int64_t kk = 0; kk < ea.k(); ++kk)
                EXPECT_EQ(ea.count(g, kk), ma.count(g, kk))
                    << "A g=" << g << " k=" << kk;
        for (int g = 0; g < eb.groups(); ++g)
            for (int64_t kk = 0; kk < eb.k(); ++kk)
                EXPECT_EQ(eb.count(g, kk), mb.count(g, kk))
                    << "B g=" << g << " k=" << kk;
    }
}

} // namespace
} // namespace dstc
