/**
 * @file
 * Method::Auto estimate-vs-actual tests. Auto ranks candidate
 * backends by plan-stage estimates; for functional dual-sparse
 * requests the estimate is profile-based (statistical intersection
 * counts) while execution walks the real bitmap intersections — so
 * there is a genuine gap to quantify. These tests pin its magnitude
 * across the sparsity grid and assert it never misranks the
 * candidates at the current backend crossovers.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/session.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

/** The functional request of one (a_sparsity, b_sparsity) point. */
KernelRequest
pointRequest(const Matrix<float> &a, const Matrix<float> &b,
             Method method)
{
    KernelRequest req = KernelRequest::gemm(a, b);
    req.method = method;
    req.gemm_options.functional = false; // stats are what we compare
    return req;
}

TEST(AutoEstimateTest, EstimateIsRecordedInTheReport)
{
    // Auto dispatch computes the winning plan's estimate before
    // executing; the report must carry it (planned_us) so serving
    // layers can audit scheduler decisions after the fact.
    Session session;
    KernelRequest req = KernelRequest::gemm(512, 512, 512, 0.7, 0.9);
    req.method = Method::Auto;
    KernelReport report = session.run(req);
    EXPECT_GT(report.planned_us, 0.0);
    EXPECT_NE(report.method, Method::Auto);

    // For the analytic timing paths the estimate *is* the run.
    EXPECT_DOUBLE_EQ(report.planned_us, report.timeUs());
}

TEST(AutoEstimateTest, FunctionalDualSparseGapAcrossSparsityGrid)
{
    // Quantify the profile-estimate vs bitmap-actual gap of the
    // functional dual-sparse path over the sparsity grid. The
    // outer-product datapath computes every (a-nonzero x b-nonzero)
    // pair of a k-line, so the instruction mix is a pure function of
    // the per-line popcounts — which the extracted profiles carry
    // exactly. The default dense write-back therefore has *zero*
    // gap: the plan-stage estimate is exact, and Auto's ranking of
    // functional dual-sparse requests is as trustworthy as its
    // analytic ones.
    Session session;
    Rng rng(501);
    for (double sa : {0.0, 0.5, 0.8, 0.95}) {
        for (double sb : {0.5, 0.8, 0.9, 0.99}) {
            Matrix<float> a = randomSparseMatrix(256, 256, sa, rng);
            Matrix<float> b = randomSparseMatrix(256, 256, sb, rng);
            KernelRequest req =
                pointRequest(a, b, Method::DualSparse);
            auto plan = session.plan(req);
            const double estimate = plan->estimatedTimeUs();
            KernelReport report = plan->execute();
            const double actual = report.timeUs();
            ASSERT_GT(actual, 0.0);
            const double gap =
                std::fabs(estimate - actual) / actual;
            EXPECT_LT(gap, 1e-9)
                << "a_sp=" << sa << " b_sp=" << sb << " estimate="
                << estimate << " actual=" << actual;
            // The recorded planned_us is the ranking estimate.
            EXPECT_DOUBLE_EQ(report.planned_us, estimate);
        }
    }
}

TEST(AutoEstimateTest, SparseOutputEstimateStaysExactToo)
{
    // sparse_output engages the one statistical term — the
    // output-nnz model sizing the bitmap-encoded write-back — but
    // execution and estimation deliberately share that model (both
    // derive p_cell_zero from the same per-line popcounts), so even
    // here the plan-stage estimate must reproduce the actual stats.
    // If either side ever switches to real product density, this
    // pins the moment the gap opens.
    Session session;
    Rng rng(503);
    for (double sp : {0.9, 0.95, 0.99}) {
        Matrix<float> a = randomSparseMatrix(256, 256, sp, rng);
        Matrix<float> b = randomSparseMatrix(256, 256, sp, rng);
        KernelRequest req = pointRequest(a, b, Method::DualSparse);
        req.gemm_options.sparse_output = true;
        auto plan = session.plan(req);
        const double estimate = plan->estimatedTimeUs();
        const double actual = plan->execute().timeUs();
        ASSERT_GT(actual, 0.0);
        EXPECT_LT(std::fabs(estimate - actual) / actual, 1e-9)
            << "sparsity=" << sp << " estimate=" << estimate
            << " actual=" << actual;
    }
}

TEST(AutoEstimateTest, PreEncodedEstimateIsExactWithoutRunning)
{
    // Pre-encoded requests estimate from profiles read off the
    // encodings (SparsityProfile::fromEncodedA/B) — the derived
    // counts are exact, so the estimate equals the executed stats,
    // and cost-ranking (Auto, cluster placement) never has to run
    // the kernel to price one.
    Session session;
    Rng rng(504);
    Matrix<float> a = randomSparseMatrix(128, 128, 0.8, rng);
    Matrix<float> b = randomSparseMatrix(128, 128, 0.9, rng);
    SpGemmOptions opts;
    opts.functional = false;
    TwoLevelBitmapMatrix a_enc = TwoLevelBitmapMatrix::encode(
        a, opts.tile_m, opts.tile_k, Major::Col);
    TwoLevelBitmapMatrix b_enc = TwoLevelBitmapMatrix::encode(
        b, opts.tile_k, opts.tile_n, Major::Row);
    KernelRequest req;
    req.kind = KernelRequest::Kind::Gemm;
    req.method = Method::DualSparse;
    req.m = a_enc.rows();
    req.n = b_enc.cols();
    req.k = a_enc.cols();
    req.a_encoded = &a_enc;
    req.b_encoded = &b_enc;
    req.gemm_options = opts;
    auto plan = session.plan(req);
    const double estimate = plan->estimatedTimeUs();
    const double actual = plan->execute().timeUs();
    ASSERT_GT(actual, 0.0);
    EXPECT_LT(std::fabs(estimate - actual) / actual, 1e-9)
        << "estimate=" << estimate << " actual=" << actual;
}

TEST(AutoEstimateTest, NoMisrankingAtBackendCrossovers)
{
    // Walk the grid through the dense/dual/cusparse crossover
    // region; at every point the backend Auto picks by estimate must
    // be (near-)optimal by *actual* executed time: its actual time
    // within 5% of the best candidate's actual time. This is the
    // contract that keeps the estimate gap harmless — Auto may only
    // be wrong where being wrong costs nothing.
    Session session;
    Rng rng(502);
    const std::vector<Method> exact_candidates = {
        Method::DualSparse, Method::Dense, Method::CusparseLike};
    for (double sa : {0.0, 0.5, 0.9, 0.99}) {
        for (double sb : {0.0, 0.7, 0.9, 0.99}) {
            Matrix<float> a = randomSparseMatrix(192, 192, sa, rng);
            Matrix<float> b = randomSparseMatrix(192, 192, sb, rng);

            KernelReport auto_report =
                session.run(pointRequest(a, b, Method::Auto));

            double best_actual = 0.0;
            double chosen_actual = 0.0;
            for (Method method : exact_candidates) {
                const double actual =
                    session.run(pointRequest(a, b, method)).timeUs();
                if (best_actual == 0.0 || actual < best_actual)
                    best_actual = actual;
                if (method == auto_report.method)
                    chosen_actual = actual;
            }
            ASSERT_GT(chosen_actual, 0.0)
                << "Auto picked a non-candidate backend";
            EXPECT_LE(chosen_actual, best_actual * 1.05)
                << "a_sp=" << sa << " b_sp=" << sb << " picked "
                << methodName(auto_report.method) << " ("
                << chosen_actual << " us) but best actual is "
                << best_actual << " us";
        }
    }
}

} // namespace
} // namespace dstc
