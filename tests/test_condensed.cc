#include "sparse/condensed.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dstc {
namespace {

TEST(Condensed, PacksNonZerosToFront)
{
    Matrix<float> m(4, 2);
    m.at(1, 0) = 5.0f;
    m.at(3, 0) = 7.0f;
    BitmapMatrix bm = BitmapMatrix::encode(m, Major::Col);
    CondensedMatrix cm = CondensedMatrix::fromBitmap(bm, 8);
    EXPECT_EQ(cm.numLines(), 2);
    EXPECT_EQ(cm.lineNnz(0), 2);
    ASSERT_EQ(cm.line(0).size(), 8u); // padded to the chunk
    EXPECT_FLOAT_EQ(cm.line(0)[0], 5.0f);
    EXPECT_FLOAT_EQ(cm.line(0)[1], 7.0f);
    EXPECT_FLOAT_EQ(cm.line(0)[2], 0.0f);
}

TEST(Condensed, EmptyLineHasNoChunks)
{
    Matrix<float> m(8, 3);
    m.at(0, 1) = 1.0f;
    BitmapMatrix bm = BitmapMatrix::encode(m, Major::Col);
    CondensedMatrix cm = CondensedMatrix::fromBitmap(bm, 8);
    EXPECT_EQ(cm.lineChunks(0), 0);
    EXPECT_EQ(cm.lineChunks(1), 1);
    EXPECT_EQ(cm.lineChunks(2), 0);
    EXPECT_EQ(cm.totalChunks(), 1);
    EXPECT_TRUE(cm.line(0).empty());
}

TEST(Condensed, ChunkArithmeticMatchesCeil)
{
    Rng rng(41);
    Matrix<float> m = randomSparseMatrix(32, 16, 0.4, rng);
    BitmapMatrix bm = BitmapMatrix::encode(m, Major::Col);
    CondensedMatrix cm = CondensedMatrix::fromBitmap(bm, 8);
    int expected_total = 0;
    for (int j = 0; j < 16; ++j) {
        int nnz = bm.lineNnz(j);
        EXPECT_EQ(cm.lineChunks(j), (nnz + 7) / 8);
        expected_total += (nnz + 7) / 8;
        // Padding is always zero, payload in source order.
        auto vals = bm.lineValues(j);
        for (size_t i = 0; i < cm.line(j).size(); ++i) {
            if (i < vals.size())
                EXPECT_FLOAT_EQ(cm.line(j)[i], vals[i]);
            else
                EXPECT_FLOAT_EQ(cm.line(j)[i], 0.0f);
        }
    }
    EXPECT_EQ(cm.totalChunks(), expected_total);
}

TEST(Condensed, BSideChunkOf16)
{
    Rng rng(42);
    Matrix<float> m = randomSparseMatrix(8, 32, 0.5, rng);
    BitmapMatrix bm = BitmapMatrix::encode(m, Major::Row);
    CondensedMatrix cm = CondensedMatrix::fromBitmap(bm, 16);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(cm.line(i).size() % 16, 0u);
        EXPECT_EQ(cm.lineChunks(i), (bm.lineNnz(i) + 15) / 16);
    }
}

TEST(Condensed, FullyDenseLinePadsToItself)
{
    Matrix<float> m(8, 1, 1.0f);
    BitmapMatrix bm = BitmapMatrix::encode(m, Major::Col);
    CondensedMatrix cm = CondensedMatrix::fromBitmap(bm, 8);
    EXPECT_EQ(cm.line(0).size(), 8u);
    EXPECT_EQ(cm.lineChunks(0), 1);
}

} // namespace
} // namespace dstc
