/**
 * @file
 * Session-request one-liners shared by the test suites: each helper
 * builds the KernelRequest a test point needs and runs it through
 * the plan-execute API (the test-side sibling of
 * bench/session_util.h). Functional helpers return the full
 * KernelReport so call sites can read values (`*report.d`,
 * `*report.output`) and stats from one run.
 */
#ifndef DSTC_TESTS_SESSION_TEST_UTIL_H
#define DSTC_TESTS_SESSION_TEST_UTIL_H

#include "core/method_map.h"
#include "core/session.h"

namespace dstc {
namespace testutil {

/** Dual-side SpGEMM over concrete operands (functional + timed). */
inline KernelReport
spgemm(Session &session, const Matrix<float> &a,
       const Matrix<float> &b, const SpGemmOptions &options = {})
{
    KernelRequest req =
        KernelRequest::gemm(a, b).withMethod(Method::DualSparse);
    req.gemm_options = options;
    return session.run(req);
}

/** Dual-side SpGEMM over pre-encoded two-level operands. */
inline KernelReport
spgemmEncoded(Session &session, const TwoLevelBitmapMatrix &a,
              const TwoLevelBitmapMatrix &b,
              const SpGemmOptions &options = {})
{
    KernelRequest req;
    req.kind = KernelRequest::Kind::Gemm;
    req.method = Method::DualSparse;
    req.m = a.rows();
    req.n = b.cols();
    req.k = a.cols();
    req.a_encoded = &a;
    req.b_encoded = &b;
    req.gemm_options = options;
    return session.run(req);
}

/** Dual-side SpGEMM, timing only, from popcount profiles. */
inline KernelStats
spgemmTime(Session &session, const SparsityProfile &a,
           const SparsityProfile &b,
           const SpGemmOptions &options = {})
{
    KernelRequest req =
        KernelRequest::gemm(a, b).withMethod(Method::DualSparse);
    req.gemm_options = options;
    return session.run(req).stats;
}

/** Functional convolution under any Fig. 22 strategy. */
inline KernelReport
conv(Session &session, const Tensor4d &input,
     const Matrix<float> &weights, const ConvShape &shape,
     ConvMethod method)
{
    KernelRequest req = KernelRequest::conv(input, weights, shape);
    splitConvMethod(method, &req.method, &req.lowering);
    return session.run(req);
}

/** Convolution timing from shape + sparsity operating point. */
inline KernelStats
convTime(Session &session, const ConvShape &shape, ConvMethod method,
         double weight_sparsity, double act_sparsity,
         uint64_t seed = 1, double weight_cluster = 1.0,
         double act_cluster = 1.0)
{
    KernelRequest req =
        KernelRequest::conv(shape, weight_sparsity, act_sparsity)
            .withSeed(seed)
            .withClusters(act_cluster, weight_cluster);
    splitConvMethod(method, &req.method, &req.lowering);
    return session.run(req).stats;
}

/** CUTLASS-like dense GEMM time. */
inline KernelStats
denseGemmTime(Session &session, int64_t m, int64_t n, int64_t k,
              DataType dtype = DataType::Fp16)
{
    return session
        .run(KernelRequest::gemm(m, n, k)
                 .withMethod(Method::Dense)
                 .withDataType(dtype))
        .stats;
}

/** Vector-wise sparse TC [72] GEMM time. */
inline KernelStats
zhuGemmTime(Session &session, int64_t m, int64_t n, int64_t k,
            double weight_sparsity)
{
    return session
        .run(KernelRequest::gemm(m, n, k, 0.0, weight_sparsity)
                 .withMethod(Method::ZhuSparse))
        .stats;
}

/** cuSPARSE-like CSR SpGEMM expected time at given densities. */
inline KernelStats
cusparseTime(Session &session, int64_t m, int64_t n, int64_t k,
             double density_a, double density_b)
{
    return session
        .run(KernelRequest::gemm(m, n, k, 1.0 - density_a,
                                 1.0 - density_b)
                 .withMethod(Method::CusparseLike))
        .stats;
}

} // namespace testutil
} // namespace dstc

#endif // DSTC_TESTS_SESSION_TEST_UTIL_H
