#include "tensor/reference.h"

#include <gtest/gtest.h>

#include "common/fp16.h"

namespace dstc {
namespace {

TEST(RefGemm, HandComputed2x2)
{
    Matrix<float> a(2, 2), b(2, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    a.at(1, 0) = 3;
    a.at(1, 1) = 4;
    b.at(0, 0) = 5;
    b.at(0, 1) = 6;
    b.at(1, 0) = 7;
    b.at(1, 1) = 8;
    Matrix<float> d = refGemm(a, b);
    EXPECT_FLOAT_EQ(d.at(0, 0), 19);
    EXPECT_FLOAT_EQ(d.at(0, 1), 22);
    EXPECT_FLOAT_EQ(d.at(1, 0), 43);
    EXPECT_FLOAT_EQ(d.at(1, 1), 50);
}

TEST(RefGemm, BiasAccumulates)
{
    Matrix<float> a(1, 1), b(1, 1), c(1, 1);
    a.at(0, 0) = 2;
    b.at(0, 0) = 3;
    c.at(0, 0) = 10;
    EXPECT_FLOAT_EQ(refGemm(a, b, &c).at(0, 0), 16);
}

TEST(RefGemm, IdentityIsNeutral)
{
    Rng rng(4);
    Matrix<float> a = randomSparseMatrix(9, 9, 0.4, rng);
    Matrix<float> eye(9, 9);
    for (int i = 0; i < 9; ++i)
        eye.at(i, i) = 1.0f;
    EXPECT_LT(maxAbsDiff(refGemm(a, eye), a), 1e-6);
    EXPECT_LT(maxAbsDiff(refGemm(eye, a), a), 1e-6);
}

TEST(RefGemmFp16, QuantizesOperands)
{
    Matrix<float> a(1, 1), b(1, 1);
    a.at(0, 0) = 1.0f + 0x1.0p-13f; // rounds to 1.0 in FP16
    b.at(0, 0) = 1.0f;
    EXPECT_FLOAT_EQ(refGemmFp16(a, b).at(0, 0), 1.0f);
    EXPECT_GT(refGemm(a, b).at(0, 0), 1.0f);
}

TEST(ConvOutDim, Formulas)
{
    EXPECT_EQ(convOutDim(5, 3, 1, 0), 3);
    EXPECT_EQ(convOutDim(5, 3, 1, 1), 5);
    EXPECT_EQ(convOutDim(224, 7, 2, 3), 112);
    EXPECT_EQ(convOutDim(56, 3, 2, 1), 28);
}

TEST(RefConv2d, HandComputed1Channel)
{
    // 3x3 input, 2x2 kernel of ones => each output is the window sum.
    Tensor4d input(1, 1, 3, 3);
    float v = 1.0f;
    for (int h = 0; h < 3; ++h)
        for (int w = 0; w < 3; ++w)
            input.at(0, 0, h, w) = v++;
    Matrix<float> weights(1, 4, 1.0f);
    Conv2dParams params{1, 1, 2, 1, 0};
    Tensor4d out = refConv2d(input, weights, params);
    EXPECT_EQ(out.h(), 2);
    EXPECT_EQ(out.w(), 2);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1 + 2 + 4 + 5);
    EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 5 + 6 + 8 + 9);
}

TEST(RefConv2d, PaddingZeros)
{
    Tensor4d input(1, 1, 1, 1);
    input.at(0, 0, 0, 0) = 3.0f;
    Matrix<float> weights(1, 9, 1.0f);
    Conv2dParams params{1, 1, 3, 1, 1};
    Tensor4d out = refConv2d(input, weights, params);
    EXPECT_EQ(out.h(), 1);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 3.0f);
}

TEST(RefConv2d, MultiChannelMultiBatch)
{
    Rng rng(21);
    Tensor4d input = randomSparseTensor(2, 3, 5, 5, 0.3, rng);
    Matrix<float> weights = randomSparseMatrix(4, 3 * 3 * 3, 0.2, rng);
    Conv2dParams params{3, 4, 3, 1, 1};
    Tensor4d out = refConv2d(input, weights, params);
    EXPECT_EQ(out.n(), 2);
    EXPECT_EQ(out.c(), 4);
    EXPECT_EQ(out.h(), 5);
    EXPECT_EQ(out.w(), 5);
    // Spot-check one output against a scalar recomputation.
    float acc = 0.0f;
    for (int ic = 0; ic < 3; ++ic)
        for (int kh = 0; kh < 3; ++kh)
            for (int kw = 0; kw < 3; ++kw) {
                int ih = 2 + kh - 1, iw = 2 + kw - 1;
                acc += input.at(1, ic, ih, iw) *
                       weights.at(2, (ic * 3 + kh) * 3 + kw);
            }
    EXPECT_NEAR(out.at(1, 2, 2, 2), acc, 1e-5);
}

TEST(RefConv2d, StrideTwo)
{
    Rng rng(22);
    Tensor4d input = randomSparseTensor(1, 2, 8, 8, 0.5, rng);
    Matrix<float> weights = randomSparseMatrix(3, 2 * 3 * 3, 0.0, rng);
    Conv2dParams params{2, 3, 3, 2, 1};
    Tensor4d out = refConv2d(input, weights, params);
    EXPECT_EQ(out.h(), 4);
    EXPECT_EQ(out.w(), 4);
}

} // namespace
} // namespace dstc
