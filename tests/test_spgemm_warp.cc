#include "gemm/spgemm_warp.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

class SpGemmWarpTest : public ::testing::Test
{
  protected:
    GpuConfig cfg_ = GpuConfig::v100();
    SpGemmWarpEngine engine_{cfg_};
};

TEST_F(SpGemmWarpTest, FunctionalMatchesReference)
{
    Rng rng(111);
    Matrix<float> a = randomSparseMatrix(32, 32, 0.6, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.6, rng);
    BitmapMatrix a_bm = BitmapMatrix::encode(a, Major::Col);
    BitmapMatrix b_bm = BitmapMatrix::encode(b, Major::Row);
    Matrix<float> accum(32, 32);
    engine_.computeTile(a_bm, b_bm, &accum);
    EXPECT_LT(maxAbsDiff(accum, refGemmFp16(a, b)), 1e-6);
}

TEST_F(SpGemmWarpTest, AccumulatesOntoExistingValues)
{
    Rng rng(112);
    Matrix<float> a = randomSparseMatrix(32, 32, 0.5, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.5, rng);
    Matrix<float> c = randomSparseMatrix(32, 32, 0.0, rng);
    Matrix<float> accum = c;
    engine_.computeTile(BitmapMatrix::encode(a, Major::Col),
                        BitmapMatrix::encode(b, Major::Row), &accum);
    EXPECT_LT(maxAbsDiff(accum, refGemmFp16(a, b, &c)), 1e-6);
}

TEST_F(SpGemmWarpTest, InstructionCountsMatchPopcountFormula)
{
    Rng rng(113);
    Matrix<float> a = randomSparseMatrix(32, 32, 0.7, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.4, rng);
    BitmapMatrix a_bm = BitmapMatrix::encode(a, Major::Col);
    BitmapMatrix b_bm = BitmapMatrix::encode(b, Major::Row);
    WarpTileResult r = engine_.computeTile(a_bm, b_bm, nullptr);

    int64_t expected_issued = 0, expected_bohmma = 0,
            expected_macs = 0;
    for (int k = 0; k < 32; ++k) {
        const int na = a_bm.lineNnz(k);
        const int nb = b_bm.lineNnz(k);
        if (na == 0 || nb == 0)
            continue;
        ++expected_bohmma;
        expected_issued += enabledOhmmas(na, nb);
        expected_macs += static_cast<int64_t>(na) * nb;
    }
    EXPECT_EQ(r.mix.ohmma_issued, expected_issued);
    EXPECT_EQ(r.mix.bohmma, expected_bohmma);
    EXPECT_EQ(r.macs, expected_macs);
    EXPECT_EQ(r.merge_accesses, expected_macs);
    // Two POPCs per surviving k-step; empty steps are compacted.
    EXPECT_EQ(r.mix.popc, 2 * expected_bohmma);
    EXPECT_EQ(r.issue_cycles, expected_issued + expected_bohmma);
    EXPECT_EQ(r.scalar_cycles, expected_bohmma + 2);
}

TEST_F(SpGemmWarpTest, TimeTileAgreesWithComputeTile)
{
    Rng rng(114);
    Matrix<float> a = randomSparseMatrix(32, 32, 0.8, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.3, rng);
    BitmapMatrix a_bm = BitmapMatrix::encode(a, Major::Col);
    BitmapMatrix b_bm = BitmapMatrix::encode(b, Major::Row);
    WarpTileResult full = engine_.computeTile(a_bm, b_bm, nullptr);

    std::vector<std::pair<int, int>> popcs;
    for (int k = 0; k < 32; ++k)
        popcs.emplace_back(a_bm.lineNnz(k), b_bm.lineNnz(k));
    WarpTileResult timed = engine_.timeTile(popcs);

    EXPECT_EQ(full.mix.ohmma_issued, timed.mix.ohmma_issued);
    EXPECT_EQ(full.mix.ohmma_skipped, timed.mix.ohmma_skipped);
    EXPECT_EQ(full.mix.bohmma, timed.mix.bohmma);
    EXPECT_EQ(full.issue_cycles, timed.issue_cycles);
    EXPECT_EQ(full.scalar_cycles, timed.scalar_cycles);
    EXPECT_EQ(full.merge_accesses, timed.merge_accesses);
    EXPECT_EQ(full.merge_cycles, timed.merge_cycles);
}

TEST_F(SpGemmWarpTest, DenseTileIssuesEverything)
{
    Rng rng(115);
    Matrix<float> a = randomSparseMatrix(32, 32, 0.0, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.0, rng);
    WarpTileResult r =
        engine_.computeTile(BitmapMatrix::encode(a, Major::Col),
                            BitmapMatrix::encode(b, Major::Row),
                            nullptr);
    EXPECT_EQ(r.mix.ohmma_issued, 32 * 8);
    EXPECT_EQ(r.mix.ohmma_skipped, 0);
    EXPECT_EQ(r.macs, 32768);
}

TEST_F(SpGemmWarpTest, EmptyTileIsFree)
{
    Matrix<float> zero(32, 32);
    Rng rng(116);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.2, rng);
    WarpTileResult r =
        engine_.computeTile(BitmapMatrix::encode(zero, Major::Col),
                            BitmapMatrix::encode(b, Major::Row),
                            nullptr);
    EXPECT_EQ(r.issue_cycles, 0);
    EXPECT_EQ(r.merge_cycles, 0);
    EXPECT_EQ(r.macs, 0);
    // Only the per-tile occupancy-AND floor remains. (At device
    // level the warp-bitmap skips the tile before even this is
    // paid.)
    EXPECT_EQ(r.cycles(), 2);
    EXPECT_EQ(r.scalar_cycles, 2);
}

TEST_F(SpGemmWarpTest, SparserInputsIssueFewerCycles)
{
    Rng rng(117);
    int64_t prev = INT64_MAX;
    for (double sparsity : {0.0, 0.5, 0.9, 0.99}) {
        Matrix<float> a = randomSparseMatrix(32, 32, sparsity, rng);
        Matrix<float> b = randomSparseMatrix(32, 32, sparsity, rng);
        WarpTileResult r = engine_.computeTile(
            BitmapMatrix::encode(a, Major::Col),
            BitmapMatrix::encode(b, Major::Row), nullptr);
        EXPECT_LE(r.issue_cycles, prev);
        prev = r.issue_cycles;
    }
}

TEST_F(SpGemmWarpTest, DetailedMergeCloseToModel)
{
    Rng rng(118);
    Matrix<float> a = randomSparseMatrix(32, 32, 0.4, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.4, rng);
    BitmapMatrix a_bm = BitmapMatrix::encode(a, Major::Col);
    BitmapMatrix b_bm = BitmapMatrix::encode(b, Major::Row);
    WarpTileResult modeled =
        engine_.computeTile(a_bm, b_bm, nullptr, false);
    WarpTileResult detailed =
        engine_.computeTile(a_bm, b_bm, nullptr, true);
    EXPECT_NEAR(static_cast<double>(modeled.merge_cycles),
                static_cast<double>(detailed.merge_cycles),
                static_cast<double>(detailed.merge_cycles) * 0.5 + 8.0);
}

TEST_F(SpGemmWarpTest, PartialTileDimensions)
{
    Rng rng(119);
    Matrix<float> a = randomSparseMatrix(20, 12, 0.4, rng);
    Matrix<float> b = randomSparseMatrix(12, 25, 0.4, rng);
    Matrix<float> accum(20, 25);
    engine_.computeTile(BitmapMatrix::encode(a, Major::Col),
                        BitmapMatrix::encode(b, Major::Row), &accum);
    EXPECT_LT(maxAbsDiff(accum, refGemmFp16(a, b)), 1e-6);
}

class WarpSparsitySweep
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(WarpSparsitySweep, FunctionalAcrossSparsities)
{
    const auto [sa, sb] = GetParam();
    Rng rng(static_cast<uint64_t>(sa * 100 + sb * 10) + 7);
    GpuConfig cfg = GpuConfig::v100();
    SpGemmWarpEngine engine(cfg);
    Matrix<float> a = randomSparseMatrix(32, 32, sa, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, sb, rng);
    Matrix<float> accum(32, 32);
    engine.computeTile(BitmapMatrix::encode(a, Major::Col),
                       BitmapMatrix::encode(b, Major::Row), &accum);
    EXPECT_LT(maxAbsDiff(accum, refGemmFp16(a, b)), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sparsities, WarpSparsitySweep,
    ::testing::Values(std::pair{0.0, 0.0}, std::pair{0.0, 0.99},
                      std::pair{0.99, 0.0}, std::pair{0.5, 0.5},
                      std::pair{0.9, 0.9}, std::pair{1.0, 0.5},
                      std::pair{0.25, 0.75}));

/** Every field of two WarpTileResults must agree exactly. */
void
expectIdenticalResults(const WarpTileResult &word,
                       const WarpTileResult &scalar)
{
    EXPECT_EQ(word.mix.hmma, scalar.mix.hmma);
    EXPECT_EQ(word.mix.ohmma_issued, scalar.mix.ohmma_issued);
    EXPECT_EQ(word.mix.ohmma_skipped, scalar.mix.ohmma_skipped);
    EXPECT_EQ(word.mix.bohmma, scalar.mix.bohmma);
    EXPECT_EQ(word.mix.popc, scalar.mix.popc);
    EXPECT_EQ(word.issue_cycles, scalar.issue_cycles);
    EXPECT_EQ(word.merge_accesses, scalar.merge_accesses);
    EXPECT_EQ(word.merge_cycles, scalar.merge_cycles);
    EXPECT_EQ(word.scalar_cycles, scalar.scalar_cycles);
    EXPECT_EQ(word.macs, scalar.macs);
    EXPECT_EQ(word.cycles(), scalar.cycles());
}

struct EquivalenceParam
{
    int m, k, n;
    double sa, sb;
    bool detailed;
};

class WordScalarEquivalence
    : public ::testing::TestWithParam<EquivalenceParam>
{
};

/**
 * The word-parallel path must reproduce the seed per-element path
 * bit-for-bit: identical accumulator contents (the FP32 sums, not
 * just close), identical instruction mix, and identical cycle
 * accounting under both merge models.
 */
TEST_P(WordScalarEquivalence, BitwiseIdenticalToScalarReference)
{
    const auto &p = GetParam();
    Rng rng(static_cast<uint64_t>(p.m * 977 + p.k * 31 + p.n) +
            static_cast<uint64_t>(p.sa * 100));
    GpuConfig cfg = GpuConfig::v100();
    SpGemmWarpEngine engine(cfg);
    Matrix<float> a = randomSparseMatrix(p.m, p.k, p.sa, rng);
    Matrix<float> b = randomSparseMatrix(p.k, p.n, p.sb, rng);
    BitmapMatrix a_bm = BitmapMatrix::encode(a, Major::Col);
    BitmapMatrix b_bm = BitmapMatrix::encode(b, Major::Row);

    Matrix<float> accum_word(p.m, p.n);
    Matrix<float> accum_scalar(p.m, p.n);
    WarpTileResult word =
        engine.computeTile(a_bm, b_bm, &accum_word, p.detailed);
    WarpTileResult scalar = engine.computeTileScalar(
        a_bm, b_bm, &accum_scalar, p.detailed);

    expectIdenticalResults(word, scalar);
    EXPECT_EQ(accum_word.data(), accum_scalar.data()); // bitwise

    // Timing-only calls (null accumulator) agree too.
    expectIdenticalResults(
        engine.computeTile(a_bm, b_bm, nullptr, p.detailed),
        engine.computeTileScalar(a_bm, b_bm, nullptr, p.detailed));
}

INSTANTIATE_TEST_SUITE_P(
    SparsitiesAndEdges, WordScalarEquivalence,
    ::testing::Values(
        EquivalenceParam{32, 32, 32, 0.0, 0.0, false},
        EquivalenceParam{32, 32, 32, 0.5, 0.5, false},
        EquivalenceParam{32, 32, 32, 0.9, 0.9, false},
        EquivalenceParam{32, 32, 32, 0.95, 0.7, true},
        EquivalenceParam{32, 32, 32, 0.9, 0.9, true},
        EquivalenceParam{20, 12, 25, 0.4, 0.4, false}, // odd edges
        EquivalenceParam{20, 12, 25, 0.4, 0.4, true},
        EquivalenceParam{1, 7, 31, 0.6, 0.2, false},
        EquivalenceParam{31, 1, 1, 0.3, 0.8, true},
        EquivalenceParam{32, 32, 32, 1.0, 0.5, false}));

TEST_F(SpGemmWarpTest, ScratchArenaIsReusableAcrossTiles)
{
    // One arena serves many tiles of different shapes; results match
    // the per-call convenience overload exactly.
    Rng rng(210);
    WarpScratch scratch;
    for (auto [m, k, n] :
         {std::tuple{32, 32, 32}, std::tuple{8, 20, 30},
          std::tuple{32, 5, 17}}) {
        Matrix<float> a = randomSparseMatrix(m, k, 0.5, rng);
        Matrix<float> b = randomSparseMatrix(k, n, 0.5, rng);
        BitmapMatrix a_bm = BitmapMatrix::encode(a, Major::Col);
        BitmapMatrix b_bm = BitmapMatrix::encode(b, Major::Row);
        Matrix<float> via_arena(m, n);
        Matrix<float> via_overload(m, n);
        WarpTileResult r1 =
            engine_.computeTile(a_bm, b_bm, via_arena.data().data(),
                                n, false, scratch);
        WarpTileResult r2 =
            engine_.computeTile(a_bm, b_bm, &via_overload);
        expectIdenticalResults(r1, r2);
        EXPECT_EQ(via_arena.data(), via_overload.data());
    }
}

TEST_F(SpGemmWarpTest, StridedAccumulatorWritesOnlyItsRegion)
{
    // A 32x32 tile accumulating into the middle of a larger matrix
    // through the leading dimension: surroundings stay untouched.
    Rng rng(211);
    Matrix<float> a = randomSparseMatrix(32, 32, 0.6, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.6, rng);
    BitmapMatrix a_bm = BitmapMatrix::encode(a, Major::Col);
    BitmapMatrix b_bm = BitmapMatrix::encode(b, Major::Row);

    const int ld = 96;
    Matrix<float> big(64, ld, 7.0f);
    for (int r = 16; r < 48; ++r)
        for (int c = 40; c < 72; ++c)
            big.at(r, c) = 0.0f;
    WarpScratch scratch;
    engine_.computeTile(a_bm, b_bm,
                        big.data().data() + 16 * ld + 40, ld, false,
                        scratch);

    Matrix<float> expect(32, 32);
    engine_.computeTile(a_bm, b_bm, &expect);
    for (int r = 0; r < 64; ++r)
        for (int c = 0; c < ld; ++c) {
            const bool inside =
                r >= 16 && r < 48 && c >= 40 && c < 72;
            EXPECT_EQ(big.at(r, c),
                      inside ? expect.at(r - 16, c - 40) : 7.0f)
                << "r=" << r << " c=" << c;
        }
}

} // namespace
} // namespace dstc
