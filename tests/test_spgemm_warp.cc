#include "gemm/spgemm_warp.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

class SpGemmWarpTest : public ::testing::Test
{
  protected:
    GpuConfig cfg_ = GpuConfig::v100();
    SpGemmWarpEngine engine_{cfg_};
};

TEST_F(SpGemmWarpTest, FunctionalMatchesReference)
{
    Rng rng(111);
    Matrix<float> a = randomSparseMatrix(32, 32, 0.6, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.6, rng);
    BitmapMatrix a_bm = BitmapMatrix::encode(a, Major::Col);
    BitmapMatrix b_bm = BitmapMatrix::encode(b, Major::Row);
    Matrix<float> accum(32, 32);
    engine_.computeTile(a_bm, b_bm, &accum);
    EXPECT_LT(maxAbsDiff(accum, refGemmFp16(a, b)), 1e-6);
}

TEST_F(SpGemmWarpTest, AccumulatesOntoExistingValues)
{
    Rng rng(112);
    Matrix<float> a = randomSparseMatrix(32, 32, 0.5, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.5, rng);
    Matrix<float> c = randomSparseMatrix(32, 32, 0.0, rng);
    Matrix<float> accum = c;
    engine_.computeTile(BitmapMatrix::encode(a, Major::Col),
                        BitmapMatrix::encode(b, Major::Row), &accum);
    EXPECT_LT(maxAbsDiff(accum, refGemmFp16(a, b, &c)), 1e-6);
}

TEST_F(SpGemmWarpTest, InstructionCountsMatchPopcountFormula)
{
    Rng rng(113);
    Matrix<float> a = randomSparseMatrix(32, 32, 0.7, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.4, rng);
    BitmapMatrix a_bm = BitmapMatrix::encode(a, Major::Col);
    BitmapMatrix b_bm = BitmapMatrix::encode(b, Major::Row);
    WarpTileResult r = engine_.computeTile(a_bm, b_bm, nullptr);

    int64_t expected_issued = 0, expected_bohmma = 0,
            expected_macs = 0;
    for (int k = 0; k < 32; ++k) {
        const int na = a_bm.lineNnz(k);
        const int nb = b_bm.lineNnz(k);
        if (na == 0 || nb == 0)
            continue;
        ++expected_bohmma;
        expected_issued += enabledOhmmas(na, nb);
        expected_macs += static_cast<int64_t>(na) * nb;
    }
    EXPECT_EQ(r.mix.ohmma_issued, expected_issued);
    EXPECT_EQ(r.mix.bohmma, expected_bohmma);
    EXPECT_EQ(r.macs, expected_macs);
    EXPECT_EQ(r.merge_accesses, expected_macs);
    // Two POPCs per surviving k-step; empty steps are compacted.
    EXPECT_EQ(r.mix.popc, 2 * expected_bohmma);
    EXPECT_EQ(r.issue_cycles, expected_issued + expected_bohmma);
    EXPECT_EQ(r.scalar_cycles, expected_bohmma + 2);
}

TEST_F(SpGemmWarpTest, TimeTileAgreesWithComputeTile)
{
    Rng rng(114);
    Matrix<float> a = randomSparseMatrix(32, 32, 0.8, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.3, rng);
    BitmapMatrix a_bm = BitmapMatrix::encode(a, Major::Col);
    BitmapMatrix b_bm = BitmapMatrix::encode(b, Major::Row);
    WarpTileResult full = engine_.computeTile(a_bm, b_bm, nullptr);

    std::vector<std::pair<int, int>> popcs;
    for (int k = 0; k < 32; ++k)
        popcs.emplace_back(a_bm.lineNnz(k), b_bm.lineNnz(k));
    WarpTileResult timed = engine_.timeTile(popcs);

    EXPECT_EQ(full.mix.ohmma_issued, timed.mix.ohmma_issued);
    EXPECT_EQ(full.mix.ohmma_skipped, timed.mix.ohmma_skipped);
    EXPECT_EQ(full.mix.bohmma, timed.mix.bohmma);
    EXPECT_EQ(full.issue_cycles, timed.issue_cycles);
    EXPECT_EQ(full.scalar_cycles, timed.scalar_cycles);
    EXPECT_EQ(full.merge_accesses, timed.merge_accesses);
    EXPECT_EQ(full.merge_cycles, timed.merge_cycles);
}

TEST_F(SpGemmWarpTest, DenseTileIssuesEverything)
{
    Rng rng(115);
    Matrix<float> a = randomSparseMatrix(32, 32, 0.0, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.0, rng);
    WarpTileResult r =
        engine_.computeTile(BitmapMatrix::encode(a, Major::Col),
                            BitmapMatrix::encode(b, Major::Row),
                            nullptr);
    EXPECT_EQ(r.mix.ohmma_issued, 32 * 8);
    EXPECT_EQ(r.mix.ohmma_skipped, 0);
    EXPECT_EQ(r.macs, 32768);
}

TEST_F(SpGemmWarpTest, EmptyTileIsFree)
{
    Matrix<float> zero(32, 32);
    Rng rng(116);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.2, rng);
    WarpTileResult r =
        engine_.computeTile(BitmapMatrix::encode(zero, Major::Col),
                            BitmapMatrix::encode(b, Major::Row),
                            nullptr);
    EXPECT_EQ(r.issue_cycles, 0);
    EXPECT_EQ(r.merge_cycles, 0);
    EXPECT_EQ(r.macs, 0);
    // Only the per-tile occupancy-AND floor remains. (At device
    // level the warp-bitmap skips the tile before even this is
    // paid.)
    EXPECT_EQ(r.cycles(), 2);
    EXPECT_EQ(r.scalar_cycles, 2);
}

TEST_F(SpGemmWarpTest, SparserInputsIssueFewerCycles)
{
    Rng rng(117);
    int64_t prev = INT64_MAX;
    for (double sparsity : {0.0, 0.5, 0.9, 0.99}) {
        Matrix<float> a = randomSparseMatrix(32, 32, sparsity, rng);
        Matrix<float> b = randomSparseMatrix(32, 32, sparsity, rng);
        WarpTileResult r = engine_.computeTile(
            BitmapMatrix::encode(a, Major::Col),
            BitmapMatrix::encode(b, Major::Row), nullptr);
        EXPECT_LE(r.issue_cycles, prev);
        prev = r.issue_cycles;
    }
}

TEST_F(SpGemmWarpTest, DetailedMergeCloseToModel)
{
    Rng rng(118);
    Matrix<float> a = randomSparseMatrix(32, 32, 0.4, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, 0.4, rng);
    BitmapMatrix a_bm = BitmapMatrix::encode(a, Major::Col);
    BitmapMatrix b_bm = BitmapMatrix::encode(b, Major::Row);
    WarpTileResult modeled =
        engine_.computeTile(a_bm, b_bm, nullptr, false);
    WarpTileResult detailed =
        engine_.computeTile(a_bm, b_bm, nullptr, true);
    EXPECT_NEAR(static_cast<double>(modeled.merge_cycles),
                static_cast<double>(detailed.merge_cycles),
                static_cast<double>(detailed.merge_cycles) * 0.5 + 8.0);
}

TEST_F(SpGemmWarpTest, PartialTileDimensions)
{
    Rng rng(119);
    Matrix<float> a = randomSparseMatrix(20, 12, 0.4, rng);
    Matrix<float> b = randomSparseMatrix(12, 25, 0.4, rng);
    Matrix<float> accum(20, 25);
    engine_.computeTile(BitmapMatrix::encode(a, Major::Col),
                        BitmapMatrix::encode(b, Major::Row), &accum);
    EXPECT_LT(maxAbsDiff(accum, refGemmFp16(a, b)), 1e-6);
}

class WarpSparsitySweep
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(WarpSparsitySweep, FunctionalAcrossSparsities)
{
    const auto [sa, sb] = GetParam();
    Rng rng(static_cast<uint64_t>(sa * 100 + sb * 10) + 7);
    GpuConfig cfg = GpuConfig::v100();
    SpGemmWarpEngine engine(cfg);
    Matrix<float> a = randomSparseMatrix(32, 32, sa, rng);
    Matrix<float> b = randomSparseMatrix(32, 32, sb, rng);
    Matrix<float> accum(32, 32);
    engine.computeTile(BitmapMatrix::encode(a, Major::Col),
                       BitmapMatrix::encode(b, Major::Row), &accum);
    EXPECT_LT(maxAbsDiff(accum, refGemmFp16(a, b)), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sparsities, WarpSparsitySweep,
    ::testing::Values(std::pair{0.0, 0.0}, std::pair{0.0, 0.99},
                      std::pair{0.99, 0.0}, std::pair{0.5, 0.5},
                      std::pair{0.9, 0.9}, std::pair{1.0, 0.5},
                      std::pair{0.25, 0.75}));

} // namespace
} // namespace dstc
