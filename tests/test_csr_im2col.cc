#include "im2col/csr_im2col.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "im2col/dense_im2col.h"

namespace dstc {
namespace {

ConvShape
makeShape(int c, int hw, int kernel, int stride, int pad)
{
    ConvShape shape;
    shape.batch = 1;
    shape.in_c = c;
    shape.in_h = shape.in_w = hw;
    shape.out_c = 4;
    shape.kernel = kernel;
    shape.stride = stride;
    shape.pad = pad;
    return shape;
}

TEST(CsrIm2col, MatchesDenseIm2col)
{
    Rng rng(171);
    ConvShape shape = makeShape(3, 10, 3, 1, 1);
    Tensor4d input = randomSparseTensor(1, 3, 10, 10, 0.6, rng);
    CsrFeatureMap fmap = CsrFeatureMap::encode(input);
    Matrix<float> from_csr = im2colFromCsr(fmap, shape);
    Matrix<float> from_dense = im2colExplicit(input, shape);
    EXPECT_EQ(maxAbsDiff(from_csr, from_dense), 0.0);
}

TEST(CsrIm2col, CountsDataDependentProbes)
{
    Rng rng(172);
    ConvShape shape = makeShape(2, 8, 3, 1, 1);

    Tensor4d dense_in = randomSparseTensor(1, 2, 8, 8, 0.0, rng);
    Tensor4d sparse_in = randomSparseTensor(1, 2, 8, 8, 0.9, rng);

    int64_t probes_dense = 0, probes_sparse = 0;
    im2colFromCsr(CsrFeatureMap::encode(dense_in), shape,
                  &probes_dense);
    im2colFromCsr(CsrFeatureMap::encode(sparse_in), shape,
                  &probes_sparse);
    // The dense feature map forces long row scans; the sparse one is
    // cheap. This is the Table III mechanism.
    EXPECT_GT(probes_dense, 5 * probes_sparse);
    EXPECT_GT(probes_sparse, 0);
}

TEST(CsrIm2col, StrideTwo)
{
    Rng rng(173);
    ConvShape shape = makeShape(2, 9, 3, 2, 1);
    Tensor4d input = randomSparseTensor(1, 2, 9, 9, 0.5, rng);
    EXPECT_EQ(maxAbsDiff(im2colFromCsr(CsrFeatureMap::encode(input),
                                       shape),
                         im2colExplicit(input, shape)),
              0.0);
}

TEST(CsrIm2col, AllZeroInput)
{
    ConvShape shape = makeShape(1, 6, 3, 1, 0);
    Tensor4d input(1, 1, 6, 6);
    Matrix<float> lowered =
        im2colFromCsr(CsrFeatureMap::encode(input), shape);
    EXPECT_EQ(lowered.nnz(), 0);
}

} // namespace
} // namespace dstc
