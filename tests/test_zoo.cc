#include "model/zoo.h"

#include <gtest/gtest.h>

namespace dstc {
namespace {

TEST(Zoo, FiveModelsInPaperOrder)
{
    auto models = allModels();
    ASSERT_EQ(models.size(), 5u);
    EXPECT_EQ(models[0].name, "VGG-16");
    EXPECT_EQ(models[1].name, "ResNet-18");
    EXPECT_EQ(models[2].name, "Mask R-CNN");
    EXPECT_EQ(models[3].name, "BERT-base encoder");
    EXPECT_EQ(models[4].name, "RNN");
}

TEST(Zoo, TableIIMetadata)
{
    auto models = allModels();
    EXPECT_EQ(models[0].pruning, "AGP");
    EXPECT_EQ(models[3].pruning, "MP");
    EXPECT_EQ(models[0].dataset, "ImageNet");
    EXPECT_EQ(models[2].dataset, "COCO");
    EXPECT_EQ(models[3].dataset, "SQuAD");
    EXPECT_EQ(models[4].dataset, "WikiText-2");
}

TEST(Zoo, CnnModelsHaveConvLayers)
{
    for (const auto &model : {makeVgg16(), makeResnet18()}) {
        EXPECT_FALSE(model.conv_layers.empty()) << model.name;
        EXPECT_TRUE(model.gemm_layers.empty()) << model.name;
    }
    EXPECT_FALSE(makeMaskRcnn().conv_layers.empty());
}

TEST(Zoo, NlpModelsAreGemmOnly)
{
    for (const auto &model : {makeBertBase(), makeRnnLM()}) {
        EXPECT_TRUE(model.conv_layers.empty()) << model.name;
        EXPECT_FALSE(model.gemm_layers.empty()) << model.name;
    }
}

TEST(Zoo, AllLayerShapesAreValid)
{
    for (const auto &model : allModels()) {
        for (const auto &layer : model.conv_layers) {
            EXPECT_GT(layer.shape.outH(), 0) << layer.name;
            EXPECT_GT(layer.shape.loweredRows(), 0) << layer.name;
            EXPECT_GE(layer.weight_sparsity, 0.0);
            EXPECT_LT(layer.weight_sparsity, 1.0);
            EXPECT_GE(layer.act_sparsity, 0.0);
            EXPECT_LT(layer.act_sparsity, 1.0);
        }
        for (const auto &layer : model.gemm_layers) {
            EXPECT_GT(layer.m, 0) << layer.name;
            EXPECT_GT(layer.n, 0) << layer.name;
            EXPECT_GT(layer.k, 0) << layer.name;
        }
    }
}

TEST(Zoo, NlpWeightsAreSparserThanCnnWeights)
{
    // BERT (movement pruning) and the RNN exceed 90% weight
    // sparsity; their activations are near-dense (Sec. VI-A/D).
    for (const auto &layer : makeBertBase().gemm_layers) {
        EXPECT_GE(layer.weight_sparsity, 0.9) << layer.name;
        EXPECT_LE(layer.act_sparsity, 0.2) << layer.name;
    }
    for (const auto &layer : makeRnnLM().gemm_layers)
        EXPECT_GE(layer.weight_sparsity, 0.9) << layer.name;
}

TEST(Zoo, Vgg16ShapesMatchArchitecture)
{
    auto vgg = makeVgg16();
    const auto &first = vgg.conv_layers.front();
    EXPECT_EQ(first.shape.in_c, 3);
    EXPECT_EQ(first.shape.in_h, 224);
    const auto &last = vgg.conv_layers.back();
    EXPECT_EQ(last.shape.in_c, 512);
    EXPECT_EQ(last.shape.in_h, 14);
}

TEST(Zoo, ResnetDownsamplesWithStride)
{
    auto resnet = makeResnet18();
    EXPECT_EQ(resnet.conv_layers.front().shape.stride, 2); // conv1 7x7/2
    bool any_strided_3x3 = false;
    for (const auto &layer : resnet.conv_layers)
        any_strided_3x3 |= layer.shape.kernel == 3 &&
                           layer.shape.stride == 2;
    EXPECT_TRUE(any_strided_3x3);
}

} // namespace
} // namespace dstc
