#include "isa/isa.h"

#include <gtest/gtest.h>

namespace dstc {
namespace {

TEST(Isa, IssueCyclesMatchSecV)
{
    // A 16x16x16 WMMA = 16 HMMA.884 in 32 cycles; a 16x16x16 OWMMA =
    // 32 OHMMA.8161 in 32 cycles (Sec. V-A2).
    EXPECT_EQ(16 * issueCycles(Opcode::HMMA_884), 32);
    EXPECT_EQ(32 * issueCycles(Opcode::OHMMA_8161), 32);
    EXPECT_EQ(issueCycles(Opcode::BOHMMA_32321), 1);
    EXPECT_EQ(issueCycles(Opcode::POPC), 0); // scalar pipe
}

TEST(Isa, MnemonicsMatchFig14)
{
    EXPECT_STREQ(mnemonic(Opcode::OHMMA_8161),
                 "HMMA.OHMMA.8161.F32.F32");
    EXPECT_STREQ(mnemonic(Opcode::BOHMMA_32321),
                 "HMMA.BOHMMA.32321.B32.B32");
}

TEST(Isa, DisassemblyShowsPredication)
{
    Instruction enabled{Opcode::OHMMA_8161, true, 4, 2, 1};
    Instruction squashed{Opcode::OHMMA_8161, false, 4, 3, 1};
    EXPECT_NE(enabled.disassemble().find("@p1"), std::string::npos);
    EXPECT_NE(squashed.disassemble().find("@p0"), std::string::npos);
    EXPECT_NE(enabled.disassemble().find("a_chunk=2"),
              std::string::npos);
}

TEST(Isa, MixCountsPredication)
{
    WarpProgram prog;
    prog.append({Opcode::POPC, true, 0, 0, 0});
    prog.append({Opcode::BOHMMA_32321, true, 0, 0, 0});
    prog.append({Opcode::OHMMA_8161, true, 0, 0, 0});
    prog.append({Opcode::OHMMA_8161, false, 0, 1, 0});
    prog.append({Opcode::OHMMA_8161, false, 0, 2, 0});
    InstructionMix mix = prog.mix();
    EXPECT_EQ(mix.popc, 1);
    EXPECT_EQ(mix.bohmma, 1);
    EXPECT_EQ(mix.ohmma_issued, 1);
    EXPECT_EQ(mix.ohmma_skipped, 2);
    // Squashed instructions cost no tensor cycles.
    EXPECT_EQ(mix.tensorCycles(), 2);
}

TEST(Isa, MixAccumulates)
{
    InstructionMix a, b;
    a.ohmma_issued = 3;
    a.bohmma = 1;
    b.ohmma_issued = 5;
    b.ohmma_skipped = 2;
    b.hmma = 4;
    a += b;
    EXPECT_EQ(a.ohmma_issued, 8);
    EXPECT_EQ(a.ohmma_skipped, 2);
    EXPECT_EQ(a.hmma, 4);
    EXPECT_EQ(a.tensorCycles(), 8 + 1 + 4 * 2);
}

TEST(Isa, ProgramDisassembleLineCount)
{
    WarpProgram prog;
    for (int i = 0; i < 5; ++i)
        prog.append({Opcode::OHMMA_8161, i % 2 == 0,
                     static_cast<int16_t>(i), 0, 0});
    std::string text = prog.disassemble();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

} // namespace
} // namespace dstc
