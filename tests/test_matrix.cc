#include "tensor/matrix.h"

#include <gtest/gtest.h>

namespace dstc {
namespace {

TEST(Matrix, ConstructAndIndex)
{
    Matrix<float> m(3, 4, 1.5f);
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 4);
    EXPECT_EQ(m.size(), 12u);
    EXPECT_FLOAT_EQ(m.at(2, 3), 1.5f);
    m.at(1, 2) = -2.0f;
    EXPECT_FLOAT_EQ(m(1, 2), -2.0f);
}

TEST(Matrix, DefaultIsEmpty)
{
    Matrix<float> m;
    EXPECT_EQ(m.rows(), 0);
    EXPECT_EQ(m.cols(), 0);
    EXPECT_EQ(m.size(), 0u);
}

TEST(Matrix, NnzAndSparsity)
{
    Matrix<float> m(2, 5);
    EXPECT_EQ(m.nnz(), 0);
    m.at(0, 0) = 1.0f;
    m.at(1, 4) = -1.0f;
    EXPECT_EQ(m.nnz(), 2);
    EXPECT_DOUBLE_EQ(m.sparsity(), 0.8);
}

TEST(Matrix, Transpose)
{
    Matrix<float> m(2, 3);
    int v = 0;
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 3; ++c)
            m.at(r, c) = static_cast<float>(v++);
    Matrix<float> t = m.transpose();
    EXPECT_EQ(t.rows(), 3);
    EXPECT_EQ(t.cols(), 2);
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 3; ++c)
            EXPECT_FLOAT_EQ(t.at(c, r), m.at(r, c));
    // Double transpose is identity.
    EXPECT_EQ(t.transpose(), m);
}

TEST(Matrix, Fill)
{
    Matrix<float> m(4, 4, 3.0f);
    m.fill(0.0f);
    EXPECT_EQ(m.nnz(), 0);
}

TEST(Matrix, RandomSparseHitsTarget)
{
    Rng rng(17);
    Matrix<float> m = randomSparseMatrix(200, 200, 0.7, rng);
    EXPECT_NEAR(m.sparsity(), 0.7, 0.02);
    // No element the generator placed can be exactly zero-valued yet
    // counted as a non-zero.
    for (float v : m.data())
        EXPECT_TRUE(v == 0.0f || std::fabs(v) > 0.0f);
}

TEST(Matrix, RandomSparseExtremes)
{
    Rng rng(18);
    EXPECT_EQ(randomSparseMatrix(50, 50, 1.0, rng).nnz(), 0);
    EXPECT_EQ(randomSparseMatrix(50, 50, 0.0, rng).nnz(), 2500);
}

TEST(Matrix, MaxAbsDiff)
{
    Matrix<float> a(2, 2), b(2, 2);
    a.at(0, 0) = 1.0f;
    b.at(0, 0) = 1.5f;
    b.at(1, 1) = -0.25f;
    EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 0.5);
    EXPECT_DOUBLE_EQ(maxAbsDiff(a, a), 0.0);
}

class MatrixSizeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(MatrixSizeSweep, TransposeRoundTrip)
{
    Rng rng(GetParam());
    Matrix<float> m =
        randomSparseMatrix(GetParam(), GetParam() + 3, 0.5, rng);
    EXPECT_EQ(m.transpose().transpose(), m);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixSizeSweep,
                         ::testing::Values(1, 2, 7, 16, 33, 64, 100));

} // namespace
} // namespace dstc
