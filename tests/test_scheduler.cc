#include "timing/scheduler.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dstc {
namespace {

TEST(Scheduler, EmptyWorkIsZero)
{
    EXPECT_EQ(lptMakespan({}, 4), 0);
    EXPECT_EQ(balancedLoad({}, 4), 0);
}

TEST(Scheduler, SingleUnitSums)
{
    EXPECT_EQ(lptMakespan({3, 5, 7}, 1), 15);
}

TEST(Scheduler, PerfectSplit)
{
    EXPECT_EQ(lptMakespan({4, 4, 4, 4}, 4), 4);
    EXPECT_EQ(lptMakespan({4, 4, 4, 4}, 2), 8);
}

TEST(Scheduler, LptBeatsNaiveOnSkew)
{
    // One giant item dominates; makespan equals it.
    EXPECT_EQ(lptMakespan({100, 1, 1, 1, 1}, 4), 100);
}

TEST(Scheduler, BoundsHold)
{
    Rng rng(81);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<int64_t> work;
        int64_t total = 0, biggest = 0;
        const int n = 50 + static_cast<int>(rng.uniformInt(200));
        for (int i = 0; i < n; ++i) {
            int64_t w = 1 + static_cast<int64_t>(rng.uniformInt(1000));
            work.push_back(w);
            total += w;
            biggest = std::max(biggest, w);
        }
        const int units = 1 + static_cast<int>(rng.uniformInt(16));
        const int64_t makespan = lptMakespan(work, units);
        // Lower bounds: average load and the biggest item.
        EXPECT_GE(makespan, (total + units - 1) / units);
        EXPECT_GE(makespan, biggest);
        // LPT's 4/3 guarantee.
        EXPECT_LE(makespan,
                  (total / units) * 4 / 3 + biggest + 1);
        EXPECT_EQ(balancedLoad(work, units),
                  (total + units - 1) / units);
    }
}

TEST(Scheduler, MoreUnitsNeverSlower)
{
    Rng rng(82);
    std::vector<int64_t> work;
    for (int i = 0; i < 100; ++i)
        work.push_back(1 + static_cast<int64_t>(rng.uniformInt(50)));
    int64_t prev = lptMakespan(work, 1);
    for (int units = 2; units <= 64; units *= 2) {
        int64_t now = lptMakespan(work, units);
        EXPECT_LE(now, prev);
        prev = now;
    }
}

} // namespace
} // namespace dstc
