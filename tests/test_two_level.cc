#include "sparse/two_level.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/sparsity_gen.h"

namespace dstc {
namespace {

TEST(TwoLevel, EncodeDecodeExactTiles)
{
    Rng rng(51);
    Matrix<float> m = randomSparseMatrix(64, 64, 0.6, rng);
    TwoLevelBitmapMatrix tl =
        TwoLevelBitmapMatrix::encode(m, 32, 32, Major::Col);
    EXPECT_EQ(tl.numTileRows(), 2);
    EXPECT_EQ(tl.numTileCols(), 2);
    EXPECT_EQ(tl.decode(), m);
    EXPECT_EQ(tl.nnz(), m.nnz());
}

TEST(TwoLevel, PartialEdgeTiles)
{
    Rng rng(52);
    Matrix<float> m = randomSparseMatrix(50, 70, 0.5, rng);
    TwoLevelBitmapMatrix tl =
        TwoLevelBitmapMatrix::encode(m, 32, 32, Major::Row);
    EXPECT_EQ(tl.numTileRows(), 2);
    EXPECT_EQ(tl.numTileCols(), 3);
    EXPECT_EQ(tl.tile(1, 2).rows(), 18);
    EXPECT_EQ(tl.tile(1, 2).cols(), 6);
    EXPECT_EQ(tl.decode(), m);
}

TEST(TwoLevel, WarpBitmapMarksEmptyTiles)
{
    Matrix<float> m(64, 64);
    m.at(0, 0) = 1.0f;   // tile (0,0)
    m.at(40, 50) = 2.0f; // tile (1,1)
    TwoLevelBitmapMatrix tl =
        TwoLevelBitmapMatrix::encode(m, 32, 32, Major::Col);
    EXPECT_TRUE(tl.tileNonEmpty(0, 0));
    EXPECT_FALSE(tl.tileNonEmpty(0, 1));
    EXPECT_FALSE(tl.tileNonEmpty(1, 0));
    EXPECT_TRUE(tl.tileNonEmpty(1, 1));
    EXPECT_EQ(tl.nonEmptyTiles(), 2);
    EXPECT_EQ(tl.tileNnz(0, 0), 1);
    EXPECT_EQ(tl.tileNnz(0, 1), 0);
}

TEST(TwoLevel, TileMajorOrderPropagates)
{
    Matrix<float> m(4, 4);
    m.at(0, 1) = 1.0f;
    m.at(2, 1) = 2.0f;
    TwoLevelBitmapMatrix tl =
        TwoLevelBitmapMatrix::encode(m, 4, 4, Major::Col);
    // Column-major tile: line 1 is column 1 with both values.
    const BitmapMatrix &tile = tl.tile(0, 0);
    EXPECT_EQ(tile.major(), Major::Col);
    ASSERT_EQ(tile.lineValues(1).size(), 2u);
    EXPECT_FLOAT_EQ(tile.lineValues(1)[0], 1.0f);
    EXPECT_FLOAT_EQ(tile.lineValues(1)[1], 2.0f);
}

TEST(TwoLevel, EmptyTilesCostOnlyWarpBits)
{
    // Clustered matrix: most tiles empty, so the two-level encoding
    // is far smaller than the one-level bitmap floor (Sec. VI-D).
    Rng rng(53);
    Matrix<float> m =
        clusteredSparseMatrix(256, 256, 0.99, 32, 50.0, rng);
    TwoLevelBitmapMatrix tl =
        TwoLevelBitmapMatrix::encode(m, 32, 32, Major::Col);
    BitmapMatrix one = BitmapMatrix::encode(m, Major::Col);
    EXPECT_LT(tl.encodedBytes(), one.encodedBytes());
    EXPECT_EQ(tl.decode(), m);
}

TEST(TwoLevel, AllZeroMatrix)
{
    Matrix<float> m(40, 40);
    TwoLevelBitmapMatrix tl =
        TwoLevelBitmapMatrix::encode(m, 32, 32, Major::Row);
    EXPECT_EQ(tl.nonEmptyTiles(), 0);
    EXPECT_EQ(tl.nnz(), 0);
    EXPECT_EQ(tl.decode(), m);
}

struct TwoLevelParam
{
    int rows, cols, tile_r, tile_c;
    double sparsity;
};

class TwoLevelSweep : public ::testing::TestWithParam<TwoLevelParam>
{
};

TEST_P(TwoLevelSweep, RoundTripAndCounts)
{
    const auto &p = GetParam();
    Rng rng(static_cast<uint64_t>(p.rows * 7 + p.cols));
    Matrix<float> m =
        randomSparseMatrix(p.rows, p.cols, p.sparsity, rng);
    TwoLevelBitmapMatrix tl =
        TwoLevelBitmapMatrix::encode(m, p.tile_r, p.tile_c, Major::Col);
    EXPECT_EQ(tl.decode(), m);
    EXPECT_EQ(tl.nnz(), m.nnz());
    // Warp-bit consistency: non-empty iff the tile has values.
    for (int tr = 0; tr < tl.numTileRows(); ++tr)
        for (int tc = 0; tc < tl.numTileCols(); ++tc)
            EXPECT_EQ(tl.tileNonEmpty(tr, tc), tl.tileNnz(tr, tc) > 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TwoLevelSweep,
    ::testing::Values(TwoLevelParam{32, 32, 32, 32, 0.5},
                      TwoLevelParam{31, 33, 32, 32, 0.5},
                      TwoLevelParam{100, 100, 32, 32, 0.9},
                      TwoLevelParam{64, 96, 16, 16, 0.2},
                      TwoLevelParam{96, 64, 32, 16, 0.97},
                      TwoLevelParam{1, 1, 32, 32, 0.0}));

} // namespace
} // namespace dstc
