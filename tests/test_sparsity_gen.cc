#include "model/sparsity_gen.h"

#include <gtest/gtest.h>

namespace dstc {
namespace {

TEST(SparsityGen, UniformHitsTarget)
{
    Rng rng(201);
    Matrix<float> m = uniformSparseMatrix(256, 256, 0.8, rng);
    EXPECT_NEAR(m.sparsity(), 0.8, 0.01);
}

TEST(SparsityGen, ClusteredPreservesGlobalSparsity)
{
    Rng rng(202);
    for (double cluster : {1.0, 2.0, 8.0, 32.0}) {
        Matrix<float> m =
            clusteredSparseMatrix(512, 512, 0.9, 32, cluster, rng);
        EXPECT_NEAR(m.sparsity(), 0.9, 0.015) << "cluster=" << cluster;
    }
}

TEST(SparsityGen, ClusteredConcentratesInBlocks)
{
    Rng rng(203);
    Matrix<float> m =
        clusteredSparseMatrix(512, 512, 0.9, 32, 8.0, rng);
    // Count empty 32x32 blocks: clustering should empty most.
    int empty_blocks = 0, total_blocks = 0;
    for (int br = 0; br < 512; br += 32) {
        for (int bc = 0; bc < 512; bc += 32) {
            ++total_blocks;
            bool any = false;
            for (int r = br; r < br + 32 && !any; ++r)
                for (int c = bc; c < bc + 32 && !any; ++c)
                    any = m.at(r, c) != 0.0f;
            empty_blocks += !any;
        }
    }
    EXPECT_GT(static_cast<double>(empty_blocks) / total_blocks, 0.5);

    // A uniform matrix at the same sparsity has no empty blocks.
    Matrix<float> u = uniformSparseMatrix(512, 512, 0.9, rng);
    int uniform_empty = 0;
    for (int br = 0; br < 512; br += 32)
        for (int bc = 0; bc < 512; bc += 32) {
            bool any = false;
            for (int r = br; r < br + 32 && !any; ++r)
                for (int c = bc; c < bc + 32 && !any; ++c)
                    any = u.at(r, c) != 0.0f;
            uniform_empty += !any;
        }
    EXPECT_EQ(uniform_empty, 0);
}

TEST(SparsityGen, ReluMatrixSparsityAndSign)
{
    Rng rng(204);
    for (double target : {0.3, 0.5, 0.8, 0.95}) {
        Matrix<float> m = reluActivationMatrix(200, 200, target, rng);
        EXPECT_NEAR(m.sparsity(), target, 0.02) << target;
        for (float v : m.data())
            EXPECT_GE(v, 0.0f); // post-ReLU values are non-negative
    }
}

TEST(SparsityGen, ReluTensorSparsity)
{
    Rng rng(205);
    Tensor4d t = reluActivationTensor(2, 16, 28, 28, 0.6, rng);
    EXPECT_NEAR(t.sparsity(), 0.6, 0.02);
}

TEST(SparsityGen, ReluExtremes)
{
    Rng rng(206);
    Matrix<float> dense = reluActivationMatrix(50, 50, 0.0, rng);
    EXPECT_EQ(dense.nnz(), 2500);
    Matrix<float> empty = reluActivationMatrix(50, 50, 1.0, rng);
    EXPECT_EQ(empty.nnz(), 0);
}

} // namespace
} // namespace dstc
