#include "core/engine.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

class EngineTest : public ::testing::Test
{
  protected:
    DstcEngine engine_;
};

TEST_F(EngineTest, SpgemmFunctional)
{
    Rng rng(221);
    Matrix<float> a = randomSparseMatrix(64, 64, 0.6, rng);
    Matrix<float> b = randomSparseMatrix(64, 64, 0.6, rng);
    SpGemmResult r = engine_.spgemm(a, b);
    EXPECT_LT(maxAbsDiff(r.d, refGemmFp16(a, b)), 1e-5);
}

TEST_F(EngineTest, SpgemmTimeFromProfiles)
{
    Rng rng(222);
    SparsityProfile a =
        SparsityProfile::randomA(512, 512, 32, 0.3, 1.0, rng);
    SparsityProfile b =
        SparsityProfile::randomA(512, 512, 32, 0.3, 1.0, rng);
    KernelStats stats = engine_.spgemmTime(a, b);
    EXPECT_GT(stats.timeUs(), 0.0);
    EXPECT_GT(stats.mix.ohmma_issued, 0);
}

TEST_F(EngineTest, DenseBaselineAnchors)
{
    KernelStats dense = engine_.denseGemmTime(4096, 4096, 4096);
    // Real V100 CUTLASS FP16 TC time for 4096^3 is ~1.2-1.5 ms.
    EXPECT_GT(dense.timeUs(), 1000.0);
    EXPECT_LT(dense.timeUs(), 2000.0);
}

TEST_F(EngineTest, DualSideBeatsAllBaselinesAtModerateSparsity)
{
    // A 70%/70% dual-sparse problem: ours should beat CUTLASS, the
    // fixed-rate sparse tensor core, and cuSparse (Fig. 21 region).
    Rng rng(223);
    const int n = 1024;
    SparsityProfile pa =
        SparsityProfile::randomA(n, n, 32, 0.3, 1.0, rng);
    SparsityProfile pb =
        SparsityProfile::randomA(n, n, 32, 0.3, 1.0, rng);
    const double ours = engine_.spgemmTime(pa, pb).timeUs();
    const double dense = engine_.denseGemmTime(n, n, n).timeUs();
    const double zhu = engine_.zhuGemmTime(n, n, n, 0.7).timeUs();
    const double cusparse =
        engine_.cusparseTime(n, n, n, 0.3, 0.3).timeUs();
    EXPECT_LT(ours, dense);
    EXPECT_LT(ours, zhu);
    EXPECT_LT(ours, cusparse);
}

TEST_F(EngineTest, ConvFunctionalMatchesReference)
{
    Rng rng(224);
    ConvShape shape;
    shape.in_c = 8;
    shape.in_h = shape.in_w = 12;
    shape.out_c = 8;
    shape.kernel = 3;
    shape.pad = 1;
    Tensor4d input = randomSparseTensor(1, 8, 12, 12, 0.5, rng);
    Matrix<float> weights = randomSparseMatrix(8, 72, 0.6, rng);
    ConvResult r = engine_.conv(input, weights, shape,
                                ConvMethod::DualSparseImplicit);
    Tensor4d golden = refConv2d(input, weights, shape.params());
    double worst = 0.0;
    for (size_t i = 0; i < golden.size(); ++i)
        worst = std::max(worst,
                         static_cast<double>(std::fabs(
                             r.output.data()[i] - golden.data()[i])));
    EXPECT_LT(worst, 2e-2);
}

TEST_F(EngineTest, ConvTimeOrderingAcrossMethods)
{
    ConvShape shape;
    shape.in_c = 64;
    shape.in_h = shape.in_w = 28;
    shape.out_c = 64;
    shape.kernel = 3;
    shape.pad = 1;
    const double dense_exp =
        engine_.convTime(shape, ConvMethod::DenseExplicit, 0.8, 0.6)
            .timeUs();
    const double dense_imp =
        engine_.convTime(shape, ConvMethod::DenseImplicit, 0.8, 0.6)
            .timeUs();
    const double dual =
        engine_
            .convTime(shape, ConvMethod::DualSparseImplicit, 0.8, 0.6)
            .timeUs();
    EXPECT_LT(dense_imp, dense_exp);
    EXPECT_LT(dual, dense_imp);
}

TEST_F(EngineTest, HardwareOverheadExposed)
{
    OverheadReport report = engine_.hardwareOverhead();
    EXPECT_NEAR(report.totalAreaMm2(), 12.846, 0.6);
}

TEST_F(EngineTest, A100PresetIsFasterOnMemoryBoundPoints)
{
    DstcEngine a100(GpuConfig::a100Like());
    Rng rng(226);
    SparsityProfile a =
        SparsityProfile::randomA(4096, 4096, 32, 0.001, 8.0, rng);
    SparsityProfile b =
        SparsityProfile::randomA(4096, 4096, 32, 0.01, 8.0, rng);
    KernelStats v100_stats = engine_.spgemmTime(a, b);
    KernelStats a100_stats = a100.spgemmTime(a, b);
    // The high-sparsity point is memory bound on the V100; the
    // A100-class memory system must shrink it.
    EXPECT_EQ(v100_stats.bound, Bound::Memory);
    EXPECT_LT(a100_stats.memory_us, v100_stats.memory_us);
    EXPECT_LT(a100_stats.timeUs(), v100_stats.timeUs());
}

TEST_F(EngineTest, CustomConfigPropagates)
{
    GpuConfig tiny = GpuConfig::v100();
    tiny.num_sms = 8;
    DstcEngine small(tiny);
    EXPECT_EQ(small.config().num_sms, 8);
    // A tenth of the SMs => ~10x the dense compute time.
    const double big_t =
        engine_.denseGemmTime(2048, 2048, 2048).compute_us;
    const double small_t =
        small.denseGemmTime(2048, 2048, 2048).compute_us;
    EXPECT_NEAR(small_t / big_t, 10.0, 0.5);
}

} // namespace
} // namespace dstc
