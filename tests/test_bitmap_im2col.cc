#include "im2col/bitmap_im2col.h"

#include <gtest/gtest.h>

#include "common/fp16.h"
#include "common/rng.h"
#include "im2col/dense_im2col.h"

namespace dstc {
namespace {

ConvShape
makeShape(int batch, int c, int hw, int kernel, int stride, int pad)
{
    ConvShape shape;
    shape.batch = batch;
    shape.in_c = c;
    shape.in_h = shape.in_w = hw;
    shape.out_c = 4;
    shape.kernel = kernel;
    shape.stride = stride;
    shape.pad = pad;
    return shape;
}

TEST(BitmapIm2col, MatchesDenseIm2col)
{
    Rng rng(181);
    ConvShape shape = makeShape(1, 3, 10, 3, 1, 1);
    Tensor4d input = randomSparseTensor(1, 3, 10, 10, 0.6, rng);
    BitmapFeatureMap fmap = BitmapFeatureMap::encode(input);
    LoweredFeatureMap lfm = im2colFromBitmap(fmap, shape);
    EXPECT_EQ(maxAbsDiff(lfm.decode(), im2colExplicit(input, shape)),
              0.0);
}

TEST(BitmapIm2col, WideFeatureMapCrossesWordBoundaries)
{
    // in_w = 100 > 64 exercises the two-word extraction path.
    Rng rng(182);
    ConvShape shape = makeShape(1, 2, 100, 3, 1, 1);
    Tensor4d input = randomSparseTensor(1, 2, 100, 100, 0.5, rng);
    LoweredFeatureMap lfm =
        im2colFromBitmap(BitmapFeatureMap::encode(input), shape);
    EXPECT_EQ(maxAbsDiff(lfm.decode(), im2colExplicit(input, shape)),
              0.0);
}

TEST(BitmapIm2col, StridedWordGatherMatchesScalarGather)
{
    // The word-parallel strided deinterleave against the retained
    // per-bit gather, at the lowering level: column bitmaps, values
    // and the FP16 mirror must agree exactly, and both must equal
    // the dense explicit lowering. hw = 70 crosses the word
    // boundary; stride 3 exercises a non-power-of-two phase advance.
    Rng rng(188);
    for (int stride : {2, 3}) {
        for (int pad : {0, 1, 2}) {
            ConvShape shape = makeShape(2, 3, 70, 5, stride, pad);
            Tensor4d input =
                randomSparseTensor(2, 3, 70, 70, 0.6, rng);
            BitmapFeatureMap fmap = BitmapFeatureMap::encode(input);
            LoweredFeatureMap word =
                im2colFromBitmap(fmap, shape, true, 1, true);
            LoweredFeatureMap scalar =
                im2colFromBitmap(fmap, shape, true, 1, false);
            ASSERT_EQ(word.cols, scalar.cols);
            for (int j = 0; j < word.cols; ++j) {
                EXPECT_EQ(word.columns[j].bits,
                          scalar.columns[j].bits)
                    << "stride " << stride << " pad " << pad
                    << " col " << j;
                EXPECT_EQ(word.columns[j].values,
                          scalar.columns[j].values)
                    << "stride " << stride << " pad " << pad
                    << " col " << j;
                EXPECT_EQ(word.columns[j].values_fp16,
                          scalar.columns[j].values_fp16)
                    << "stride " << stride << " pad " << pad
                    << " col " << j;
            }
            EXPECT_EQ(maxAbsDiff(word.decode(),
                                 im2colExplicit(input, shape)),
                      0.0)
                << "stride " << stride << " pad " << pad;
        }
    }
}

TEST(BitmapIm2col, RegisterOpsAreCounted)
{
    Rng rng(183);
    ConvShape shape = makeShape(1, 2, 16, 3, 1, 1);
    Tensor4d input = randomSparseTensor(1, 2, 16, 16, 0.5, rng);
    LoweredFeatureMap lfm =
        im2colFromBitmap(BitmapFeatureMap::encode(input), shape);
    EXPECT_GT(lfm.register_ops, 0);
    // Word-level cost: far fewer ops than lowered elements.
    EXPECT_LT(lfm.register_ops,
              static_cast<int64_t>(lfm.rows) * lfm.cols);
}

TEST(BitmapIm2col, SkipValuesModeKeepsBitmaps)
{
    Rng rng(184);
    ConvShape shape = makeShape(1, 2, 12, 3, 1, 1);
    Tensor4d input = randomSparseTensor(1, 2, 12, 12, 0.4, rng);
    BitmapFeatureMap fmap = BitmapFeatureMap::encode(input);
    LoweredFeatureMap with_values = im2colFromBitmap(fmap, shape, true);
    LoweredFeatureMap bits_only = im2colFromBitmap(fmap, shape, false);
    ASSERT_EQ(with_values.cols, bits_only.cols);
    for (int j = 0; j < with_values.cols; ++j) {
        EXPECT_EQ(with_values.columns[j].bits, bits_only.columns[j].bits);
        EXPECT_TRUE(bits_only.columns[j].values.empty());
    }
    EXPECT_EQ(with_values.totalNnz(), bits_only.totalNnz());
}

TEST(BitmapIm2col, ColumnNnzMatchesLoweredMatrix)
{
    Rng rng(185);
    ConvShape shape = makeShape(1, 3, 9, 3, 1, 1);
    Tensor4d input = randomSparseTensor(1, 3, 9, 9, 0.7, rng);
    LoweredFeatureMap lfm =
        im2colFromBitmap(BitmapFeatureMap::encode(input), shape);
    Matrix<float> dense = im2colExplicit(input, shape);
    for (int j = 0; j < lfm.cols; ++j) {
        int expected = 0;
        for (int r = 0; r < lfm.rows; ++r)
            expected += dense.at(r, j) != 0.0f;
        EXPECT_EQ(lfm.columnNnz(j), expected) << "col " << j;
    }
}

TEST(BitmapIm2col, EncodedBytesTrackSparsity)
{
    Rng rng(186);
    Tensor4d dense_in = randomSparseTensor(1, 4, 16, 16, 0.0, rng);
    Tensor4d sparse_in = randomSparseTensor(1, 4, 16, 16, 0.9, rng);
    EXPECT_GT(BitmapFeatureMap::encode(dense_in).encodedBytes(),
              BitmapFeatureMap::encode(sparse_in).encodedBytes());
}

TEST(BitmapIm2col, AllZeroInput)
{
    ConvShape shape = makeShape(1, 1, 8, 3, 1, 1);
    Tensor4d input(1, 1, 8, 8);
    LoweredFeatureMap lfm =
        im2colFromBitmap(BitmapFeatureMap::encode(input), shape);
    EXPECT_EQ(lfm.totalNnz(), 0);
    EXPECT_EQ(lfm.decode().nnz(), 0);
}

TEST(BitmapIm2col, ValuesCarryEncodeTimeFp16Mirror)
{
    Rng rng(187);
    ConvShape shape = makeShape(1, 2, 10, 3, 1, 1);
    Tensor4d input = randomSparseTensor(1, 2, 10, 10, 0.5, rng);
    LoweredFeatureMap lfm =
        im2colFromBitmap(BitmapFeatureMap::encode(input), shape);
    for (int j = 0; j < lfm.cols; ++j) {
        const LoweredColumn &col = lfm.columns[j];
        ASSERT_EQ(col.values_fp16.size(), col.values.size());
        for (size_t i = 0; i < col.values.size(); ++i)
            EXPECT_EQ(col.values_fp16[i],
                      roundToFp16(col.values[i]));
    }
}

TEST(BitmapIm2col, ParallelLoweringIsBitwiseIdentical)
{
    Rng rng(188);
    ConvShape shape = makeShape(2, 3, 20, 3, 2, 1);
    Tensor4d input = randomSparseTensor(2, 3, 20, 20, 0.6, rng);
    BitmapFeatureMap fmap = BitmapFeatureMap::encode(input);
    LoweredFeatureMap serial = im2colFromBitmap(fmap, shape, true, 1);
    for (int workers : {0, 3, 8}) {
        LoweredFeatureMap par =
            im2colFromBitmap(fmap, shape, true, workers);
        ASSERT_EQ(par.cols, serial.cols);
        EXPECT_EQ(par.register_ops, serial.register_ops)
            << "workers=" << workers;
        for (int j = 0; j < serial.cols; ++j) {
            EXPECT_EQ(par.columns[j].bits, serial.columns[j].bits);
            EXPECT_EQ(par.columns[j].values,
                      serial.columns[j].values);
            EXPECT_EQ(par.columns[j].values_fp16,
                      serial.columns[j].values_fp16);
        }
    }
}

/** Structural equality of two two-level encodings, tile by tile. */
void
expectTwoLevelIdentical(const TwoLevelBitmapMatrix &a,
                        const TwoLevelBitmapMatrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    ASSERT_EQ(a.numTileRows(), b.numTileRows());
    ASSERT_EQ(a.numTileCols(), b.numTileCols());
    EXPECT_EQ(a.encodedBytes(), b.encodedBytes());
    for (int tr = 0; tr < a.numTileRows(); ++tr) {
        for (int tc = 0; tc < a.numTileCols(); ++tc) {
            EXPECT_EQ(a.tileNonEmpty(tr, tc), b.tileNonEmpty(tr, tc));
            const BitmapMatrix &ta = a.tile(tr, tc);
            const BitmapMatrix &tb = b.tile(tr, tc);
            ASSERT_EQ(ta.rows(), tb.rows()) << tr << "," << tc;
            ASSERT_EQ(ta.cols(), tb.cols()) << tr << "," << tc;
            ASSERT_EQ(ta.nnz(), tb.nnz()) << tr << "," << tc;
            for (int line = 0; line < ta.numLines(); ++line) {
                ASSERT_EQ(ta.lineNnz(line), tb.lineNnz(line));
                const auto va = ta.lineValues(line);
                const auto vb = tb.lineValues(line);
                const auto fa = ta.lineValuesFp16(line);
                const auto fb = tb.lineValuesFp16(line);
                for (int i = 0; i < ta.lineNnz(line); ++i) {
                    EXPECT_EQ(va[i], vb[i]);
                    EXPECT_EQ(fa[i], fb[i]);
                }
                const auto wa = ta.lineBits(line);
                const auto wb = tb.lineBits(line);
                ASSERT_EQ(wa.size(), wb.size());
                for (size_t w = 0; w < wa.size(); ++w)
                    EXPECT_EQ(wa[w], wb[w]);
            }
        }
    }
}

TEST(BitmapIm2col, ToTwoLevelMatchesDenseEncode)
{
    Rng rng(189);
    // 40x40 planes give M = 1600 lowered rows (> 64-bit words per
    // column) and K = 27 (a clipped k-edge tile at tile_k 32).
    ConvShape shape = makeShape(1, 3, 40, 3, 1, 1);
    Tensor4d input = randomSparseTensor(1, 3, 40, 40, 0.7, rng);
    LoweredFeatureMap lfm =
        im2colFromBitmap(BitmapFeatureMap::encode(input), shape);
    TwoLevelBitmapMatrix direct = lfm.toTwoLevel(32, 32);
    TwoLevelBitmapMatrix via_dense = TwoLevelBitmapMatrix::encode(
        lfm.decode(), 32, 32, Major::Col);
    expectTwoLevelIdentical(direct, via_dense);
    EXPECT_EQ(maxAbsDiff(direct.decode(), lfm.decode()), 0.0);

    // Worker partitioning of the tiler changes nothing.
    expectTwoLevelIdentical(lfm.toTwoLevel(32, 32, 4), via_dense);
    // Non-square tiling (deeper K chunks) round-trips too.
    expectTwoLevelIdentical(
        lfm.toTwoLevel(32, 16),
        TwoLevelBitmapMatrix::encode(lfm.decode(), 32, 16,
                                     Major::Col));
}

TEST(BitmapIm2col, EncodePlaneMatchesMatrixEncode)
{
    Rng rng(190);
    Tensor4d input = randomSparseTensor(1, 1, 9, 70, 0.5, rng);
    BitmapFeatureMap fmap = BitmapFeatureMap::encode(input);
    Matrix<float> plane(9, 70);
    for (int h = 0; h < 9; ++h)
        for (int w = 0; w < 70; ++w)
            plane.at(h, w) = input.at(0, 0, h, w);
    BitmapMatrix expected = BitmapMatrix::encode(plane, Major::Row);
    const BitmapMatrix &got = fmap.plane(0, 0);
    ASSERT_EQ(got.nnz(), expected.nnz());
    EXPECT_EQ(maxAbsDiff(got.decode(), expected.decode()), 0.0);
    for (int line = 0; line < expected.numLines(); ++line) {
        const auto wa = got.lineBits(line);
        const auto wb = expected.lineBits(line);
        ASSERT_EQ(wa.size(), wb.size());
        for (size_t w = 0; w < wa.size(); ++w)
            EXPECT_EQ(wa[w], wb[w]);
        const auto fa = got.lineValuesFp16(line);
        const auto fb = expected.lineValuesFp16(line);
        for (size_t i = 0; i < fa.size(); ++i)
            EXPECT_EQ(fa[i], fb[i]);
    }
}

struct BitmapIm2colParam
{
    int batch, c, hw, kernel, stride, pad;
    double sparsity;
};

class BitmapIm2colSweep
    : public ::testing::TestWithParam<BitmapIm2colParam>
{
};

TEST_P(BitmapIm2colSweep, AlwaysMatchesDense)
{
    const auto &p = GetParam();
    Rng rng(static_cast<uint64_t>(p.hw * 100 + p.kernel * 10 +
                                  p.stride));
    ConvShape shape =
        makeShape(p.batch, p.c, p.hw, p.kernel, p.stride, p.pad);
    if (shape.outH() <= 0)
        GTEST_SKIP();
    Tensor4d input =
        randomSparseTensor(p.batch, p.c, p.hw, p.hw, p.sparsity, rng);
    LoweredFeatureMap lfm =
        im2colFromBitmap(BitmapFeatureMap::encode(input), shape);
    EXPECT_EQ(maxAbsDiff(lfm.decode(), im2colExplicit(input, shape)),
              0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BitmapIm2colSweep,
    ::testing::Values(
        BitmapIm2colParam{1, 1, 6, 3, 1, 0, 0.5},
        BitmapIm2colParam{1, 3, 8, 3, 1, 1, 0.0},
        BitmapIm2colParam{1, 3, 8, 3, 1, 1, 0.95},
        BitmapIm2colParam{2, 2, 12, 5, 1, 2, 0.6},
        BitmapIm2colParam{1, 2, 15, 3, 2, 1, 0.5},
        BitmapIm2colParam{1, 4, 7, 7, 2, 3, 0.3},
        BitmapIm2colParam{2, 1, 70, 3, 1, 1, 0.7},
        BitmapIm2colParam{1, 1, 5, 1, 1, 0, 0.4}));

} // namespace
} // namespace dstc
