#include "im2col/bitmap_im2col.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "im2col/dense_im2col.h"

namespace dstc {
namespace {

ConvShape
makeShape(int batch, int c, int hw, int kernel, int stride, int pad)
{
    ConvShape shape;
    shape.batch = batch;
    shape.in_c = c;
    shape.in_h = shape.in_w = hw;
    shape.out_c = 4;
    shape.kernel = kernel;
    shape.stride = stride;
    shape.pad = pad;
    return shape;
}

TEST(BitmapIm2col, MatchesDenseIm2col)
{
    Rng rng(181);
    ConvShape shape = makeShape(1, 3, 10, 3, 1, 1);
    Tensor4d input = randomSparseTensor(1, 3, 10, 10, 0.6, rng);
    BitmapFeatureMap fmap = BitmapFeatureMap::encode(input);
    LoweredFeatureMap lfm = im2colFromBitmap(fmap, shape);
    EXPECT_EQ(maxAbsDiff(lfm.decode(), im2colExplicit(input, shape)),
              0.0);
}

TEST(BitmapIm2col, WideFeatureMapCrossesWordBoundaries)
{
    // in_w = 100 > 64 exercises the two-word extraction path.
    Rng rng(182);
    ConvShape shape = makeShape(1, 2, 100, 3, 1, 1);
    Tensor4d input = randomSparseTensor(1, 2, 100, 100, 0.5, rng);
    LoweredFeatureMap lfm =
        im2colFromBitmap(BitmapFeatureMap::encode(input), shape);
    EXPECT_EQ(maxAbsDiff(lfm.decode(), im2colExplicit(input, shape)),
              0.0);
}

TEST(BitmapIm2col, RegisterOpsAreCounted)
{
    Rng rng(183);
    ConvShape shape = makeShape(1, 2, 16, 3, 1, 1);
    Tensor4d input = randomSparseTensor(1, 2, 16, 16, 0.5, rng);
    LoweredFeatureMap lfm =
        im2colFromBitmap(BitmapFeatureMap::encode(input), shape);
    EXPECT_GT(lfm.register_ops, 0);
    // Word-level cost: far fewer ops than lowered elements.
    EXPECT_LT(lfm.register_ops,
              static_cast<int64_t>(lfm.rows) * lfm.cols);
}

TEST(BitmapIm2col, SkipValuesModeKeepsBitmaps)
{
    Rng rng(184);
    ConvShape shape = makeShape(1, 2, 12, 3, 1, 1);
    Tensor4d input = randomSparseTensor(1, 2, 12, 12, 0.4, rng);
    BitmapFeatureMap fmap = BitmapFeatureMap::encode(input);
    LoweredFeatureMap with_values = im2colFromBitmap(fmap, shape, true);
    LoweredFeatureMap bits_only = im2colFromBitmap(fmap, shape, false);
    ASSERT_EQ(with_values.cols, bits_only.cols);
    for (int j = 0; j < with_values.cols; ++j) {
        EXPECT_EQ(with_values.columns[j].bits, bits_only.columns[j].bits);
        EXPECT_TRUE(bits_only.columns[j].values.empty());
    }
    EXPECT_EQ(with_values.totalNnz(), bits_only.totalNnz());
}

TEST(BitmapIm2col, ColumnNnzMatchesLoweredMatrix)
{
    Rng rng(185);
    ConvShape shape = makeShape(1, 3, 9, 3, 1, 1);
    Tensor4d input = randomSparseTensor(1, 3, 9, 9, 0.7, rng);
    LoweredFeatureMap lfm =
        im2colFromBitmap(BitmapFeatureMap::encode(input), shape);
    Matrix<float> dense = im2colExplicit(input, shape);
    for (int j = 0; j < lfm.cols; ++j) {
        int expected = 0;
        for (int r = 0; r < lfm.rows; ++r)
            expected += dense.at(r, j) != 0.0f;
        EXPECT_EQ(lfm.columnNnz(j), expected) << "col " << j;
    }
}

TEST(BitmapIm2col, EncodedBytesTrackSparsity)
{
    Rng rng(186);
    Tensor4d dense_in = randomSparseTensor(1, 4, 16, 16, 0.0, rng);
    Tensor4d sparse_in = randomSparseTensor(1, 4, 16, 16, 0.9, rng);
    EXPECT_GT(BitmapFeatureMap::encode(dense_in).encodedBytes(),
              BitmapFeatureMap::encode(sparse_in).encodedBytes());
}

TEST(BitmapIm2col, AllZeroInput)
{
    ConvShape shape = makeShape(1, 1, 8, 3, 1, 1);
    Tensor4d input(1, 1, 8, 8);
    LoweredFeatureMap lfm =
        im2colFromBitmap(BitmapFeatureMap::encode(input), shape);
    EXPECT_EQ(lfm.totalNnz(), 0);
    EXPECT_EQ(lfm.decode().nnz(), 0);
}

struct BitmapIm2colParam
{
    int batch, c, hw, kernel, stride, pad;
    double sparsity;
};

class BitmapIm2colSweep
    : public ::testing::TestWithParam<BitmapIm2colParam>
{
};

TEST_P(BitmapIm2colSweep, AlwaysMatchesDense)
{
    const auto &p = GetParam();
    Rng rng(static_cast<uint64_t>(p.hw * 100 + p.kernel * 10 +
                                  p.stride));
    ConvShape shape =
        makeShape(p.batch, p.c, p.hw, p.kernel, p.stride, p.pad);
    if (shape.outH() <= 0)
        GTEST_SKIP();
    Tensor4d input =
        randomSparseTensor(p.batch, p.c, p.hw, p.hw, p.sparsity, rng);
    LoweredFeatureMap lfm =
        im2colFromBitmap(BitmapFeatureMap::encode(input), shape);
    EXPECT_EQ(maxAbsDiff(lfm.decode(), im2colExplicit(input, shape)),
              0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BitmapIm2colSweep,
    ::testing::Values(
        BitmapIm2colParam{1, 1, 6, 3, 1, 0, 0.5},
        BitmapIm2colParam{1, 3, 8, 3, 1, 1, 0.0},
        BitmapIm2colParam{1, 3, 8, 3, 1, 1, 0.95},
        BitmapIm2colParam{2, 2, 12, 5, 1, 2, 0.6},
        BitmapIm2colParam{1, 2, 15, 3, 2, 1, 0.5},
        BitmapIm2colParam{1, 4, 7, 7, 2, 3, 0.3},
        BitmapIm2colParam{2, 1, 70, 3, 1, 1, 0.7},
        BitmapIm2colParam{1, 1, 5, 1, 1, 0, 0.4}));

} // namespace
} // namespace dstc
