/**
 * @file
 * Fault-injection and recovery tests: fault scenarios must be exactly
 * as deterministic as healthy runs (same seed + script = identical
 * ServingStats for any worker count), every *completed* request must
 * still replay bitwise on a fresh serial Session, and the recovery
 * policies — retry, failover, hedging, graceful degradation — must
 * behave as documented, including the degenerate whole-fleet-dead
 * case.
 */
#include "serve/faults.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/serving.h"

namespace dstc {
namespace {

/** Same shape as test_serve's pool: distinct operating points plus a
 *  repeated shape so micro-batching stays in play under faults. */
std::vector<KernelRequest>
testPool()
{
    std::vector<KernelRequest> pool;
    for (int i = 0; i < 4; ++i) {
        KernelRequest req = KernelRequest::gemm(
            128 << (i % 2), 128, 128, 0.5 + 0.1 * i, 0.7);
        req.method = Method::DualSparse;
        req.seed = 10 + static_cast<uint64_t>(i);
        pool.push_back(req);
    }
    return pool;
}

ServingOptions
baseOptions()
{
    ServingOptions opts;
    opts.arrivals.rate_rpms = 400.0;
    opts.arrivals.duration_ms = 1.0;
    opts.arrivals.seed = 5;
    return opts;
}

// ---------------------------------------------------------------- //
// FaultSpec parsing

TEST(FaultSpecTest, ParsesEveryTokenKind)
{
    FaultSpec spec;
    std::string error;
    ASSERT_TRUE(FaultSpec::parse(
        "crash@500:d1;slow@200+400x2.5:d0;transient:p0.05;"
        "randcrash:2",
        &spec, &error))
        << error;
    ASSERT_EQ(spec.events.size(), 2u);
    EXPECT_EQ(spec.events[0].kind, FaultKind::Crash);
    EXPECT_EQ(spec.events[0].device, 1u);
    EXPECT_EQ(spec.events[0].time_us, 500.0);
    EXPECT_EQ(spec.events[1].kind, FaultKind::Slowdown);
    EXPECT_EQ(spec.events[1].device, 0u);
    EXPECT_EQ(spec.events[1].time_us, 200.0);
    EXPECT_EQ(spec.events[1].duration_us, 400.0);
    EXPECT_EQ(spec.events[1].factor, 2.5);
    EXPECT_EQ(spec.transient_prob, 0.05);
    EXPECT_EQ(spec.random_crashes, 2);
    EXPECT_FALSE(spec.empty());
}

TEST(FaultSpecTest, MalformedSpecsFailWithMessage)
{
    // The serialize.h contract: every malformed input is an error
    // with a message, never a silent default.
    for (const char *bad :
         {"", ";", "bogus", "crash@:d0", "crash@-5:d0", "crash@100",
          "crash@100:x0", "crash@100:d", "crash@100:d1x",
          "slow@100x2:d0", "slow@100+0x2:d0", "slow@100+50x0.5:d0",
          "slow@100+50:d0", "transient:0.5", "transient:p",
          "transient:p1.0", "transient:p-0.1", "transient:pfoo",
          "randcrash:", "randcrash:-1", "randcrash:1.5",
          "crash@100:d0;;crash@200:d1", "crash@1e:d0"}) {
        FaultSpec spec;
        std::string error;
        EXPECT_FALSE(FaultSpec::parse(bad, &spec, &error))
            << "accepted: '" << bad << "'";
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(FaultSpecTest, EmptySpecIsEmpty)
{
    FaultSpec spec;
    EXPECT_TRUE(spec.empty());
    FaultSpec zero;
    std::string error;
    ASSERT_TRUE(FaultSpec::parse("transient:p0", &zero, &error));
    EXPECT_TRUE(zero.empty()); // p = 0 injects nothing
}

// ---------------------------------------------------------------- //
// FaultInjector

TEST(FaultInjectorTest, EventsAreSortedAndFleetFiltered)
{
    FaultSpec spec;
    std::string error;
    ASSERT_TRUE(FaultSpec::parse(
        "crash@900:d0;slow@100+50x2:d1;crash@400:d7", &spec,
        &error));
    // d7 is outside a 2-device fleet: dropped, not an error (scripts
    // are fleet-size agnostic).
    const FaultInjector injector(spec, 2, 1000.0, 1);
    ASSERT_EQ(injector.events().size(), 2u);
    EXPECT_EQ(injector.events()[0].time_us, 100.0);
    EXPECT_EQ(injector.events()[1].time_us, 900.0);
}

TEST(FaultInjectorTest, RandomCrashesAreSeededAndInWindow)
{
    FaultSpec spec;
    std::string error;
    ASSERT_TRUE(FaultSpec::parse("randcrash:3", &spec, &error));
    const FaultInjector a(spec, 4, 1000.0, 42);
    const FaultInjector b(spec, 4, 1000.0, 42);
    const FaultInjector c(spec, 4, 1000.0, 43);
    ASSERT_EQ(a.events().size(), 3u);
    ASSERT_EQ(b.events().size(), 3u);
    bool differs = false;
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(a.events()[i].time_us, b.events()[i].time_us);
        EXPECT_EQ(a.events()[i].device, b.events()[i].device);
        EXPECT_GE(a.events()[i].time_us, 0.0);
        EXPECT_LT(a.events()[i].time_us, 1000.0);
        EXPECT_LT(a.events()[i].device, 4u);
        if (a.events()[i].time_us != c.events()[i].time_us ||
            a.events()[i].device != c.events()[i].device)
            differs = true;
    }
    EXPECT_TRUE(differs); // a different seed draws different crashes
}

TEST(FaultInjectorTest, TransientDrawIsAPureFunction)
{
    FaultSpec spec;
    std::string error;
    ASSERT_TRUE(FaultSpec::parse("transient:p0.3", &spec, &error));
    const FaultInjector a(spec, 2, 1000.0, 7);
    const FaultInjector b(spec, 2, 1000.0, 7);
    int failures = 0;
    bool attempt_matters = false, device_matters = false;
    for (int64_t id = 0; id < 200; ++id) {
        EXPECT_EQ(a.transientFails(id, 1, 0),
                  b.transientFails(id, 1, 0));
        failures += a.transientFails(id, 1, 0) ? 1 : 0;
        if (a.transientFails(id, 1, 0) != a.transientFails(id, 2, 0))
            attempt_matters = true;
        if (a.transientFails(id, 1, 0) != a.transientFails(id, 1, 1))
            device_matters = true;
    }
    // p = 0.3 over 200 draws: loose bounds, deterministic outcome.
    EXPECT_GT(failures, 20);
    EXPECT_LT(failures, 120);
    EXPECT_TRUE(attempt_matters); // retries re-draw
    EXPECT_TRUE(device_matters);  // hedge arms draw independently

    FaultSpec never;
    ASSERT_TRUE(FaultSpec::parse("transient:p0", &never, &error));
    const FaultInjector none(never, 2, 1000.0, 7);
    for (int64_t id = 0; id < 50; ++id)
        EXPECT_FALSE(none.transientFails(id, 1, 0));
}

// ---------------------------------------------------------------- //
// HealthTracker

TEST(HealthTrackerTest, CrashesArePermanentAndCounted)
{
    HealthTracker health(3);
    EXPECT_EQ(health.aliveCount(), 3u);
    EXPECT_TRUE(health.alive(1));
    health.markCrashed(1, 250.0);
    EXPECT_FALSE(health.alive(1));
    EXPECT_EQ(health.aliveCount(), 2u);
    EXPECT_EQ(health.crashTimeUs(1), 250.0);
    EXPECT_GT(health.crashTimeUs(0), 1e30); // +inf while alive
}

TEST(HealthTrackerTest, SlowdownWindowsMultiply)
{
    HealthTracker health(1);
    health.addSlowdown(0, 100.0, 200.0, 2.0); // [100, 300)
    health.addSlowdown(0, 200.0, 200.0, 3.0); // [200, 400)
    EXPECT_EQ(health.slowdownFactor(0, 50.0), 1.0);
    EXPECT_EQ(health.slowdownFactor(0, 150.0), 2.0);
    EXPECT_EQ(health.slowdownFactor(0, 250.0), 6.0); // overlap
    EXPECT_EQ(health.slowdownFactor(0, 350.0), 3.0);
    EXPECT_EQ(health.slowdownFactor(0, 400.0), 1.0); // half-open
}

// ---------------------------------------------------------------- //
// ServingEngine under faults

ServingOptions
faultedOptions(const std::string &spec, size_t devices)
{
    ServingOptions opts = baseOptions();
    for (size_t d = 0; d < devices; ++d)
        opts.devices.push_back(d % 2 ? GpuConfig::futureGpu()
                                     : GpuConfig::v100());
    std::string error;
    EXPECT_TRUE(FaultSpec::parse(spec, &opts.faults, &error))
        << error;
    return opts;
}

TEST(FaultServingTest, FaultedStatsAreDeterministicForAnyWorkers)
{
    // The tentpole pin: same seed + script = bitwise-identical stats
    // across worker counts {1, 4} x device counts {1, 2, 4}, with
    // every recovery policy engaged at once.
    for (size_t devices : {1u, 2u, 4u}) {
        ServingOptions opts = faultedOptions(
            "crash@600:d1;slow@100+300x2:d0;transient:p0.05;"
            "randcrash:1",
            devices);
        opts.arrivals.rate_rpms = 900.0;
        opts.retry = true;
        opts.hedge = true;
        opts.num_threads = 1;
        opts.resources.encode_workers = 1;
        ServingEngine serial(opts, testPool());
        const ServingStats reference = serial.run().stats;
        EXPECT_GT(reference.offered, 0);
        opts.num_threads = 4;
        opts.resources.encode_workers = 4;
        ServingEngine pooled(opts, testPool());
        EXPECT_TRUE(pooled.run().stats == reference)
            << devices << " devices";
    }
}

TEST(FaultServingTest, CompletedRequestsReplayBitwiseUnderFaults)
{
    // The serving determinism contract survives every fault class:
    // completed requests executed on a crashed-then-failed-over,
    // slowed, retried or hedged timeline still replay bit for bit.
    for (size_t devices : {2u, 4u}) {
        ServingOptions opts = faultedOptions(
            "crash@500:d0;slow@200+300x3:d1;transient:p0.04",
            devices);
        opts.arrivals.rate_rpms = 800.0;
        opts.retry = true;
        opts.hedge = true;
        ServingEngine engine(opts, testPool());
        ServingResult result = engine.run();
        EXPECT_GT(result.stats.completed, 0) << devices;
        EXPECT_TRUE(engine.replayMatchesSerial(result)) << devices;
    }
}

TEST(FaultServingTest, AccountingIdentityHoldsUnderFaults)
{
    ServingOptions opts = faultedOptions(
        "crash@400:d1;transient:p0.1", 2);
    opts.arrivals.rate_rpms = 1200.0;
    opts.retry = true;
    opts.retry_budget = 2;
    ServingEngine engine(opts, testPool());
    const ServingStats stats = engine.run().stats;
    // Every admitted request ends exactly one way.
    EXPECT_EQ(stats.completed + stats.shed + stats.dropped +
                  stats.faults.lost,
              stats.admitted);
    int64_t class_lost = 0;
    for (const ClassStats &cls : stats.per_class)
        class_lost += cls.lost;
    EXPECT_EQ(class_lost, stats.faults.lost);
    EXPECT_GE(stats.faults.availability, 0.0);
    EXPECT_LE(stats.faults.availability, 1.0);
}

TEST(FaultServingTest, WholeFleetCrashAtZeroDegeneratesGracefully)
{
    // Crash everything at t = 0: the run must terminate (no hang),
    // complete nothing, refuse every arrival, and stay deterministic.
    for (size_t devices : {1u, 2u}) {
        std::string spec = "crash@0:d0";
        for (size_t d = 1; d < devices; ++d)
            spec += ";crash@0:d" + std::to_string(d);
        ServingOptions opts = faultedOptions(spec, devices);
        opts.retry = true;
        opts.hedge = true;
        ServingEngine a(opts, testPool());
        ServingEngine b(opts, testPool());
        const ServingStats sa = a.run().stats;
        EXPECT_GT(sa.offered, 0);
        EXPECT_EQ(sa.completed, 0);
        EXPECT_EQ(sa.rejected, sa.offered);
        EXPECT_EQ(sa.faults.crashes,
                  static_cast<int64_t>(devices));
        EXPECT_TRUE(sa == b.run().stats);
    }
}

TEST(FaultServingTest, TransientOnlyWithRetryLosesNothing)
{
    // The hard gate: under transient-only faults with retry on, no
    // request is ever lost (the budget covers the failure rate).
    ServingOptions opts = faultedOptions("transient:p0.1", 2);
    opts.arrivals.rate_rpms = 800.0;
    opts.retry = true;
    opts.retry_budget = 6;
    ServingEngine engine(opts, testPool());
    const ServingStats stats = engine.run().stats;
    EXPECT_GT(stats.faults.transient_failures, 0);
    EXPECT_GT(stats.faults.retries, 0);
    EXPECT_EQ(stats.faults.lost, 0);
    EXPECT_EQ(stats.faults.availability, 1.0);
    int64_t recovered = 0;
    for (const ClassStats &cls : stats.per_class)
        recovered += cls.recovered;
    EXPECT_GT(recovered, 0);
}

TEST(FaultServingTest, WithoutRetryTransientsLoseRequests)
{
    ServingOptions opts = faultedOptions("transient:p0.1", 2);
    opts.arrivals.rate_rpms = 800.0;
    opts.retry = false;
    ServingEngine engine(opts, testPool());
    const ServingStats stats = engine.run().stats;
    EXPECT_GT(stats.faults.lost, 0);
    EXPECT_EQ(stats.faults.lost, stats.faults.transient_failures);
    EXPECT_LT(stats.faults.availability, 1.0);
}

TEST(FaultServingTest, FailoverDrainsCrashedDeviceLosslessly)
{
    ServingOptions opts = faultedOptions("crash@300:d1", 2);
    opts.arrivals.rate_rpms = 1500.0; // a real backlog at the crash
    ServingEngine with(opts, testPool());
    const ServingStats recovered = with.run().stats;
    EXPECT_EQ(recovered.faults.lost, 0);
    EXPECT_GT(recovered.faults.failovers, 0);

    opts.failover = false;
    opts.degrade = false;
    ServingEngine without(opts, testPool());
    const ServingStats lost = without.run().stats;
    EXPECT_GT(lost.faults.lost, 0);
    EXPECT_EQ(lost.faults.failovers, 0);
    // The gated property: recovery turns lost work into goodput.
    EXPECT_GE(recovered.goodput_rpms, lost.goodput_rpms);
}

TEST(FaultServingTest, CrashedDeviceReceivesNoFurtherWork)
{
    ServingOptions opts = faultedOptions("crash@200:d0", 2);
    opts.arrivals.rate_rpms = 1000.0;
    ServingEngine engine(opts, testPool());
    ServingResult result = engine.run();
    for (const ServeOutcome &o : result.outcomes)
        if (o.device == 0)
            EXPECT_LE(o.start_us, 200.0) << "dispatched after crash";
    EXPECT_TRUE(engine.replayMatchesSerial(result));
}

TEST(FaultServingTest, SlowdownRoutesWorkAroundTheSlowDevice)
{
    // An extreme slowdown window on d0: the cost/deadline placement
    // sees the scaled estimate and shifts load to d1 relative to the
    // healthy run.
    ServingOptions healthy_opts = baseOptions();
    healthy_opts.devices = {GpuConfig::v100(), GpuConfig::v100()};
    healthy_opts.arrivals.rate_rpms = 600.0;
    ServingEngine healthy(healthy_opts, testPool());
    const ServingStats before = healthy.run().stats;

    ServingOptions opts = faultedOptions("slow@0+1000x20:d0", 2);
    opts.devices = {GpuConfig::v100(), GpuConfig::v100()};
    opts.arrivals.rate_rpms = 600.0;
    ServingEngine slowed(opts, testPool());
    const ServingStats after = slowed.run().stats;
    EXPECT_EQ(after.faults.slowdowns, 1);
    EXPECT_LT(after.placed_per_device[0], before.placed_per_device[0]);
    EXPECT_GT(after.placed_per_device[1], before.placed_per_device[1]);
}

TEST(FaultServingTest, HedgingDuplicatesInteractiveDispatches)
{
    ServingOptions opts = faultedOptions("transient:p0.05", 2);
    opts.arrivals.rate_rpms = 300.0; // idle capacity to hedge into
    opts.retry = true;
    opts.hedge = true;
    ServingEngine engine(opts, testPool());
    ServingResult result = engine.run();
    const FaultRecoveryStats &fr = result.stats.faults;
    EXPECT_GT(fr.hedges, 0);
    EXPECT_LE(fr.hedge_wins, fr.hedges);
    EXPECT_LE(fr.hedges_cancelled, fr.hedges);
    int64_t hedged_outcomes = 0;
    for (const ServeOutcome &o : result.outcomes) {
        if (!o.hedged)
            continue;
        ++hedged_outcomes;
        // Only the interactive class hedges, and only the winning
        // arm completes.
        EXPECT_EQ(o.deadline_class, DeadlineClass::Interactive);
    }
    // At most one arm of each hedge completes; every cancelled loser
    // implies a winner that did.
    EXPECT_LE(hedged_outcomes, fr.hedges);
    EXPECT_GE(hedged_outcomes, fr.hedges_cancelled);
    EXPECT_TRUE(engine.replayMatchesSerial(result));
}

TEST(FaultServingTest, DegradationShedsBatchClassFirst)
{
    // Crash one of two devices with a tight queue under ShedOldest:
    // with degradation the shrunken bound evicts batch-class work
    // before interactive work.
    ServingOptions opts = faultedOptions("crash@200:d1", 2);
    opts.admission = AdmissionPolicy::ShedOldest;
    opts.queue_depth = 16;
    opts.arrivals.rate_rpms = 2500.0;
    opts.degrade = true;
    ServingEngine engine(opts, testPool());
    const ServingStats stats = engine.run().stats;
    ASSERT_GT(stats.shed, 0);
    const ClassStats &interactive =
        stats.per_class[static_cast<int>(DeadlineClass::Interactive)];
    const ClassStats &batch =
        stats.per_class[static_cast<int>(DeadlineClass::Batch)];
    // The batch class pays disproportionately: every batch arrival
    // sheds before any interactive one once degradation is on.
    EXPECT_GT(batch.shed, 0);
    if (interactive.offered > 0 && batch.offered > 0)
        EXPECT_GE(static_cast<double>(batch.shed) / batch.offered,
                  static_cast<double>(interactive.shed) /
                      interactive.offered);
}

TEST(FaultServingTest, FaultSeedZeroDerivesFromArrivalSeed)
{
    // fault_seed = 0 must still be fully deterministic (derived), and
    // an explicit different fault seed must change the random draws.
    ServingOptions opts = faultedOptions("randcrash:1", 4);
    opts.arrivals.rate_rpms = 900.0;
    ServingEngine a(opts, testPool());
    ServingEngine b(opts, testPool());
    const ServingStats sa = a.run().stats;
    EXPECT_TRUE(sa == b.run().stats);
    EXPECT_EQ(sa.faults.crashes, 1);
}

} // namespace
} // namespace dstc
