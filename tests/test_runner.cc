#include "model/runner.h"

#include <gtest/gtest.h>

namespace dstc {
namespace {

class RunnerTest : public ::testing::Test
{
  protected:
    Session session_;
    ModelRunner runner_{session_};
};

TEST_F(RunnerTest, RunsEveryLayerOfEveryModel)
{
    for (const auto &model : allModels()) {
        ModelRunResult result =
            runner_.run(model, ModelMethod::DualSparseImplicit);
        EXPECT_EQ(result.layers.size(),
                  model.conv_layers.size() + model.gemm_layers.size())
            << model.name;
        EXPECT_GT(result.totalTimeUs(), 0.0) << model.name;
        for (const auto &layer : result.layers)
            EXPECT_GT(layer.stats.timeUs(), 0.0)
                << model.name << "/" << layer.name;
    }
}

TEST_F(RunnerTest, DeterministicPerSeed)
{
    DnnModel model = makeResnet18();
    ModelRunResult a =
        runner_.run(model, ModelMethod::DualSparseImplicit, 5);
    ModelRunResult b =
        runner_.run(model, ModelMethod::DualSparseImplicit, 5);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (size_t i = 0; i < a.layers.size(); ++i)
        EXPECT_DOUBLE_EQ(a.layers[i].stats.timeUs(),
                         b.layers[i].stats.timeUs());
}

TEST_F(RunnerTest, MethodOrderingOnCnns)
{
    // The paper's full-model ordering: Dual < SingleImplicit <
    // DenseImplicit in time (Fig. 22).
    for (const auto &model : {makeVgg16(), makeResnet18()}) {
        const double dense =
            runner_.run(model, ModelMethod::DenseImplicit)
                .totalTimeUs();
        const double single =
            runner_.run(model, ModelMethod::SingleSparseImplicit)
                .totalTimeUs();
        const double dual =
            runner_.run(model, ModelMethod::DualSparseImplicit)
                .totalTimeUs();
        EXPECT_LT(dual, single) << model.name;
        EXPECT_LT(single, dense) << model.name;
    }
}

TEST_F(RunnerTest, FullModelSpeedupInPaperBand)
{
    // Fig. 22: Dual Sparse Implicit averages ~4.4x over Dense
    // Implicit on the CNNs; allow a generous band around it.
    DnnModel model = makeVgg16();
    const double dense =
        runner_.run(model, ModelMethod::DenseImplicit).totalTimeUs();
    const double dual =
        runner_.run(model, ModelMethod::DualSparseImplicit)
            .totalTimeUs();
    EXPECT_GT(dense / dual, 2.0);
    EXPECT_LT(dense / dual, 10.0);
}

TEST_F(RunnerTest, GemmModelsUseThreeDistinctMethods)
{
    DnnModel bert = makeBertBase();
    const double dense =
        runner_.run(bert, ModelMethod::DenseImplicit).totalTimeUs();
    const double single =
        runner_.run(bert, ModelMethod::SingleSparseImplicit)
            .totalTimeUs();
    const double dual =
        runner_.run(bert, ModelMethod::DualSparseImplicit)
            .totalTimeUs();
    EXPECT_LT(single, dense);
    EXPECT_LT(dual, single);
}

TEST(ModelMethodNames, MatchLegend)
{
    EXPECT_STREQ(modelMethodName(ModelMethod::DualSparseImplicit),
                 "Dual Sparse Implicit");
    EXPECT_STREQ(modelMethodName(ModelMethod::DenseExplicit),
                 "Dense Explicit");
    EXPECT_STREQ(modelMethodName(ModelMethod::Auto), "Auto");
}

TEST_F(RunnerTest, LayerRequestsCoverEveryLayer)
{
    DnnModel model = makeMaskRcnn();
    std::vector<KernelRequest> requests = ModelRunner::layerRequests(
        model, ModelMethod::DualSparseImplicit, 7);
    EXPECT_EQ(requests.size(),
              model.conv_layers.size() + model.gemm_layers.size());
    for (const auto &req : requests)
        EXPECT_EQ(req.method, Method::DualSparse) << req.tag;
}

TEST_F(RunnerTest, AutoMethodRunsAndBeatsOrMatchesDual)
{
    // Auto picks per layer, so the full model can only be as fast or
    // faster than any single fixed strategy.
    DnnModel model = makeResnet18();
    const double dual =
        runner_.run(model, ModelMethod::DualSparseImplicit)
            .totalTimeUs();
    ModelRunResult auto_run = runner_.run(model, ModelMethod::Auto);
    EXPECT_LE(auto_run.totalTimeUs(), dual * 1.0001);
    for (const auto &layer : auto_run.layers)
        EXPECT_FALSE(layer.backend.empty()) << layer.name;
}

TEST_F(RunnerTest, ShardedModelMatchesSerialRunner)
{
    // runSharded over a homogeneous cluster must reproduce the
    // serial single-Session run layer for layer.
    ClusterOptions opts;
    opts.devices = {GpuConfig::v100(), GpuConfig::v100()};
    Cluster cluster(opts);
    ModelRunResult serial =
        runner_.run(makeRnnLM(), ModelMethod::DualSparseImplicit, 9);
    ModelRunResult sharded = ModelRunner::runSharded(
        cluster, makeRnnLM(), ModelMethod::DualSparseImplicit, 9);
    ASSERT_EQ(serial.layers.size(), sharded.layers.size());
    for (size_t i = 0; i < serial.layers.size(); ++i) {
        EXPECT_EQ(serial.layers[i].name, sharded.layers[i].name);
        EXPECT_DOUBLE_EQ(serial.layers[i].stats.timeUs(),
                         sharded.layers[i].stats.timeUs());
        EXPECT_GE(sharded.layers[i].device, 0);
        EXPECT_LT(sharded.layers[i].device, 2);
    }
    EXPECT_DOUBLE_EQ(serial.totalTimeUs(), sharded.totalTimeUs());
}

} // namespace
} // namespace dstc
