#include "common/table.h"

#include <gtest/gtest.h>

namespace dstc {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable table;
    table.setHeader({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"longer", "22"});
    const std::string out = table.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header rule present.
    EXPECT_NE(out.find("---"), std::string::npos);
    // All data rows start at column 0 and values align.
    EXPECT_NE(out.find("a       1"), std::string::npos);
    EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(TextTable, EmptyTableRendersEmpty)
{
    TextTable table;
    EXPECT_EQ(table.render(), "");
}

TEST(TextTable, RaggedRowsTolerated)
{
    TextTable table;
    table.setHeader({"a", "b", "c"});
    table.addRow({"1"});
    table.addRow({"1", "2", "3", "4"});
    const std::string out = table.render();
    EXPECT_NE(out.find("4"), std::string::npos);
}

TEST(Format, Doubles)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(1.0, 0), "1");
    EXPECT_EQ(fmtSpeedup(4.378), "4.38x");
    EXPECT_EQ(fmtSpeedup(0.5, 1), "0.5x");
}

} // namespace
} // namespace dstc
