/**
 * @file
 * The DataType axis end to end: QuantSpec semantics, per-datatype
 * error bounds against the FP32 reference, the bitwise-determinism
 * guarantees of the quantized paths (worker counts, backends,
 * golden model), and EncodingCache isolation across datatypes.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/datatype.h"
#include "core/session.h"
#include "gemm/dense_gemm.h"
#include "gemm/spgemm_device.h"
#include "tensor/matrix.h"
#include "tensor/reference.h"
#include "timing/gpu_config.h"

namespace dstc {
namespace {

constexpr DataType kAllTypes[] = {DataType::Fp32, DataType::Fp16,
                                  DataType::Bf16, DataType::Int8,
                                  DataType::Int4};

QuantSpec
specOf(DataType dtype, const Matrix<float> &m)
{
    return QuantSpec::forValues(dtype, m.data().data(),
                                m.data().size());
}

// ---------------------------------------------------------------
// QuantSpec / datatype unit semantics
// ---------------------------------------------------------------

TEST(DataTypeSpec, TokenRoundTrip)
{
    for (DataType dtype : kAllTypes) {
        DataType parsed;
        ASSERT_TRUE(parseDataType(dataTypeToken(dtype), &parsed))
            << dataTypeToken(dtype);
        EXPECT_EQ(parsed, dtype);
    }
    DataType parsed;
    EXPECT_FALSE(parseDataType("fp64", &parsed));
    EXPECT_FALSE(parseDataType("", &parsed));
}

TEST(DataTypeSpec, PackedBytes)
{
    // int4 nibble-packs: 3 values round up to 2 bytes.
    EXPECT_EQ(dataTypePackedBytes(DataType::Int4, 3), 2u);
    EXPECT_EQ(dataTypePackedBytes(DataType::Int4, 2), 1u);
    EXPECT_EQ(dataTypePackedBytes(DataType::Int8, 3), 3u);
    EXPECT_EQ(dataTypePackedBytes(DataType::Fp16, 3), 6u);
    EXPECT_EQ(dataTypePackedBytes(DataType::Fp32, 1), 4u);
    EXPECT_EQ(dataTypePackedBytes(DataType::Int4, 0), 0u);
}

TEST(DataTypeSpec, Bf16Rounding)
{
    // 1.0 + 2^-9 rounds down (nearest-even on an 8-bit mantissa);
    // 1.0 + 3 * 2^-9 rounds up to 1 + 2^-7.
    EXPECT_EQ(roundToBf16(1.0f + 0x1p-9f), 1.0f);
    EXPECT_EQ(roundToBf16(1.0f + 3 * 0x1p-9f), 1.0f + 0x1p-7f);
    // Exactly representable values survive.
    EXPECT_EQ(roundToBf16(-2.5f), -2.5f);
    EXPECT_EQ(roundToBf16(0.0f), 0.0f);
    // Inf stays Inf, NaN stays NaN.
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(roundToBf16(inf), inf);
    EXPECT_TRUE(std::isnan(
        roundToBf16(std::numeric_limits<float>::quiet_NaN())));
}

TEST(DataTypeSpec, IntegerApplyClampsAndRounds)
{
    QuantSpec s{DataType::Int8, 0.5f};
    EXPECT_EQ(s.apply(1.0f), 2.0f);   // 1.0 / 0.5
    EXPECT_EQ(s.apply(-1.25f), -2.0f); // rint half-to-even
    EXPECT_EQ(s.apply(1000.0f), 127.0f);
    EXPECT_EQ(s.apply(-1000.0f), -127.0f);
    EXPECT_EQ(s.apply(0.0f), 0.0f);

    QuantSpec s4{DataType::Int4, 1.0f};
    EXPECT_EQ(s4.apply(100.0f), 7.0f);
    EXPECT_EQ(s4.apply(-100.0f), -7.0f);
}

TEST(DataTypeSpec, ForMaxAbsMapsToLargestCode)
{
    const QuantSpec s8 = QuantSpec::forMaxAbs(DataType::Int8, 6.35f);
    EXPECT_FLOAT_EQ(s8.scale, 6.35f / 127.0f);
    EXPECT_EQ(s8.apply(6.35f), 127.0f);

    const QuantSpec s4 = QuantSpec::forMaxAbs(DataType::Int4, 14.0f);
    EXPECT_FLOAT_EQ(s4.scale, 2.0f);
    EXPECT_EQ(s4.apply(14.0f), 7.0f);

    // All-zero operands keep scale 1 (no division by zero).
    EXPECT_FLOAT_EQ(
        QuantSpec::forMaxAbs(DataType::Int8, 0.0f).scale, 1.0f);
    // Floating datatypes ignore max_abs.
    EXPECT_FLOAT_EQ(
        QuantSpec::forMaxAbs(DataType::Fp16, 100.0f).scale, 1.0f);
}

TEST(DataTypeSpec, OutputScaleDefersIntegerScales)
{
    QuantSpec a{DataType::Int8, 0.25f};
    QuantSpec b{DataType::Int8, 0.5f};
    EXPECT_FLOAT_EQ(QuantSpec::outputScale(a, b), 0.125f);
    QuantSpec f16{DataType::Fp16, 1.0f};
    EXPECT_FLOAT_EQ(QuantSpec::outputScale(f16, f16), 1.0f);
}

// ---------------------------------------------------------------
// Accuracy: each datatype's output against the FP32 reference
// ---------------------------------------------------------------

double
errorBound(DataType dtype)
{
    // k = 96 at ~50% density: ~48 products of values in [-1, 1).
    // Bounds are per-element worst cases with generous headroom; the
    // ordering (int4 >> int8 ~ bf16 >> fp16 >> fp32) is the claim.
    switch (dtype) {
      case DataType::Fp32:
        return 1e-4; // accumulation-order noise only
      case DataType::Fp16:
        return 0.05;
      case DataType::Bf16:
        return 0.5;
      case DataType::Int8:
        return 1.0;
      case DataType::Int4:
        return 10.0;
    }
    return 0.0;
}

TEST(DataTypeAccuracy, ErrorBoundedAgainstFp32Reference)
{
    Rng rng(7);
    const Matrix<float> a = randomSparseMatrix(96, 96, 0.5, rng);
    const Matrix<float> b = randomSparseMatrix(96, 96, 0.5, rng);
    const Matrix<float> ref = refGemm(a, b);

    SpGemmDevice spgemm((GpuConfig()));
    for (DataType dtype : kAllTypes) {
        SpGemmOptions opts;
        opts.functional = true;
        opts.dtype = dtype;
        const Matrix<float> d = spgemm.multiply(a, b, opts).d;
        EXPECT_LT(maxAbsDiff(d, ref), errorBound(dtype))
            << dataTypeToken(dtype);
        // The datapath must not be a silent FP32 passthrough: every
        // narrowed type shows *some* rounding on random data.
        if (dtype != DataType::Fp32)
            EXPECT_GT(maxAbsDiff(d, ref), 0.0) << dataTypeToken(dtype);
    }
}

// ---------------------------------------------------------------
// Bitwise determinism of the quantized paths
// ---------------------------------------------------------------

TEST(DataTypeDeterminism, IntegerResultsInvariantToWorkerCount)
{
    Rng rng(11);
    const Matrix<float> a = randomSparseMatrix(128, 96, 0.9, rng);
    const Matrix<float> b = randomSparseMatrix(96, 128, 0.9, rng);

    SpGemmDevice spgemm((GpuConfig()));
    for (DataType dtype : {DataType::Int8, DataType::Int4}) {
        SpGemmOptions serial;
        serial.functional = true;
        serial.dtype = dtype;
        serial.num_workers = 1;
        const Matrix<float> want = spgemm.multiply(a, b, serial).d;

        for (int workers : {2, 4, 0}) {
            SpGemmOptions opts = serial;
            opts.num_workers = workers;
            const Matrix<float> got = spgemm.multiply(a, b, opts).d;
            EXPECT_TRUE(got == want)
                << dataTypeToken(dtype) << " diverged at num_workers="
                << workers;
        }
    }
}

TEST(DataTypeDeterminism, DenseEqualsDualSparseForIntegers)
{
    Rng rng(13);
    const Matrix<float> a = randomSparseMatrix(96, 64, 0.5, rng);
    const Matrix<float> b = randomSparseMatrix(64, 96, 0.5, rng);

    const GpuConfig cfg;
    SpGemmDevice spgemm(cfg);
    DenseGemmDevice dense(cfg);
    for (DataType dtype : {DataType::Int8, DataType::Int4}) {
        SpGemmOptions opts;
        opts.functional = true;
        opts.dtype = dtype;
        const Matrix<float> dual = spgemm.multiply(a, b, opts).d;
        const Matrix<float> d =
            dense.multiply(a, b, false, specOf(dtype, a),
                           specOf(dtype, b))
                .d;
        EXPECT_TRUE(d == dual) << dataTypeToken(dtype);
    }
}

TEST(DataTypeDeterminism, IntegerEngineMatchesGoldenModelBitwise)
{
    // Integer code products accumulate exactly in FP32 (< 2^24), so
    // the engine's tile order and the golden model's increasing-k
    // order reach the same sums bit for bit; the deferred sa * sb
    // multiply is then identical on both sides.
    Rng rng(17);
    const Matrix<float> a = randomSparseMatrix(96, 96, 0.7, rng);
    const Matrix<float> b = randomSparseMatrix(96, 96, 0.7, rng);

    SpGemmDevice spgemm((GpuConfig()));
    for (DataType dtype : {DataType::Int8, DataType::Int4}) {
        SpGemmOptions opts;
        opts.functional = true;
        opts.dtype = dtype;
        const Matrix<float> d = spgemm.multiply(a, b, opts).d;
        const Matrix<float> ref =
            refGemmQuant(a, b, specOf(dtype, a), specOf(dtype, b));
        EXPECT_EQ(maxAbsDiff(d, ref), 0.0) << dataTypeToken(dtype);
    }
}

// ---------------------------------------------------------------
// EncodingCache isolation across datatypes
// ---------------------------------------------------------------

TEST(DataTypeCache, NoCollisionAcrossDataTypes)
{
    Rng rng(19);
    const Matrix<float> a = randomSparseMatrix(96, 96, 0.6, rng);
    const Matrix<float> b = randomSparseMatrix(96, 96, 0.6, rng);

    const auto request = [&](DataType dtype) {
        return KernelRequest::gemm(a, b)
            .withMethod(Method::DualSparse)
            .withDataType(dtype);
    };

    // Fresh single-datatype sessions give the uncontaminated answers.
    Matrix<float> want16, want8;
    {
        Session s;
        want16 = *s.run(request(DataType::Fp16)).d;
    }
    {
        Session s;
        want8 = *s.run(request(DataType::Int8)).d;
    }
    ASSERT_FALSE(want16 == want8); // distinct datapaths on this data

    // One shared session: the int8 run must not be served the fp16
    // encodings (a key collision would hand it fp16 value lanes).
    Session shared;
    const KernelReport r16 = shared.run(request(DataType::Fp16));
    EXPECT_FALSE(r16.encode_cache_hit);
    const KernelReport r8 = shared.run(request(DataType::Int8));
    EXPECT_FALSE(r8.encode_cache_hit)
        << "int8 request hit the fp16 cache entry";
    EXPECT_TRUE(*r16.d == want16);
    EXPECT_TRUE(*r8.d == want8);

    // Same datatype still caches: a repeat int8 run hits and stays
    // bitwise identical.
    const KernelReport r8again = shared.run(request(DataType::Int8));
    EXPECT_TRUE(r8again.encode_cache_hit);
    EXPECT_TRUE(*r8again.d == want8);
}

} // namespace
} // namespace dstc
