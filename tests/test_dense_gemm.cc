#include "gemm/dense_gemm.h"

#include <gtest/gtest.h>

#include "baselines/cutlass_like.h"
#include "common/rng.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

class DenseGemmTest : public ::testing::Test
{
  protected:
    GpuConfig cfg_ = GpuConfig::v100();
    DenseGemmDevice device_{cfg_};
};

TEST_F(DenseGemmTest, FunctionalMatchesReference)
{
    Rng rng(131);
    Matrix<float> a = randomSparseMatrix(48, 32, 0.2, rng);
    Matrix<float> b = randomSparseMatrix(32, 48, 0.2, rng);
    DenseGemmResult inner = device_.multiply(a, b, false);
    DenseGemmResult outer = device_.multiply(a, b, true);
    EXPECT_LT(maxAbsDiff(inner.d, refGemmFp16(a, b)), 1e-5);
    EXPECT_EQ(maxAbsDiff(inner.d, outer.d), 0.0);
}

TEST_F(DenseGemmTest, NonAlignedShapes)
{
    Rng rng(132);
    Matrix<float> a = randomSparseMatrix(17, 23, 0.1, rng);
    Matrix<float> b = randomSparseMatrix(23, 29, 0.1, rng);
    EXPECT_LT(maxAbsDiff(device_.multiply(a, b).d, refGemmFp16(a, b)),
              1e-5);
}

TEST_F(DenseGemmTest, TimeScalesWithWork)
{
    KernelStats small = device_.timeOnly(1024, 1024, 1024);
    KernelStats big = device_.timeOnly(4096, 4096, 4096);
    // 64x the MACs => ~64x compute time.
    EXPECT_NEAR(big.compute_us / small.compute_us, 64.0, 6.0);
}

TEST_F(DenseGemmTest, V100PeakThroughputAnchor)
{
    // 4096^3 at 80% of 125 TFLOPS peak: ~1.37 ms compute.
    KernelStats stats = device_.timeOnly(4096, 4096, 4096);
    EXPECT_GT(stats.compute_us, 1000.0);
    EXPECT_LT(stats.compute_us, 1800.0);
    EXPECT_EQ(stats.bound, Bound::Compute);
}

TEST_F(DenseGemmTest, SmallProblemsAreMemoryOrLaunchBound)
{
    KernelStats stats = device_.timeOnly(64, 64, 64);
    EXPECT_LT(stats.compute_us, 1.0);
    EXPECT_GT(stats.timeUs(), stats.compute_us);
}

TEST(CutlassLike, WrapsDenseTiming)
{
    GpuConfig cfg = GpuConfig::v100();
    KernelStats a = cutlassGemm(cfg, 2048, 2048, 2048);
    DenseGemmDevice device(cfg);
    KernelStats b = device.timeOnly(2048, 2048, 2048);
    EXPECT_DOUBLE_EQ(a.timeUs(), b.timeUs());
    EXPECT_EQ(a.name, "cutlass");
}

} // namespace
} // namespace dstc
