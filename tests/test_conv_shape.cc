#include "im2col/conv_shape.h"

#include <gtest/gtest.h>

namespace dstc {
namespace {

ConvShape
resnetLayer()
{
    // The Table III layer: fmap 56x56, filter 3x3, 128 channels.
    ConvShape shape;
    shape.batch = 1;
    shape.in_c = 128;
    shape.in_h = shape.in_w = 56;
    shape.out_c = 128;
    shape.kernel = 3;
    shape.stride = 1;
    shape.pad = 1;
    return shape;
}

TEST(ConvShape, LoweredDims)
{
    ConvShape shape = resnetLayer();
    EXPECT_EQ(shape.outH(), 56);
    EXPECT_EQ(shape.outW(), 56);
    EXPECT_EQ(shape.loweredRows(), 56 * 56);
    EXPECT_EQ(shape.loweredCols(), 128 * 9);
    EXPECT_EQ(shape.inputElems(), 128 * 56 * 56);
    EXPECT_EQ(shape.outputElems(), 128 * 56 * 56);
}

TEST(ConvShape, InflationNearKernelSquared)
{
    ConvShape shape = resnetLayer();
    EXPECT_NEAR(shape.inflation(), 9.0, 0.01);
}

TEST(ConvShape, StridedShapes)
{
    ConvShape shape;
    shape.in_c = 3;
    shape.in_h = shape.in_w = 224;
    shape.out_c = 64;
    shape.kernel = 7;
    shape.stride = 2;
    shape.pad = 3;
    EXPECT_EQ(shape.outH(), 112);
    EXPECT_EQ(shape.loweredRows(), 112 * 112);
    EXPECT_EQ(shape.loweredCols(), 3 * 49);
}

TEST(ConvShape, MacsMatchLoweredGemm)
{
    ConvShape shape = resnetLayer();
    EXPECT_EQ(shape.macs(),
              shape.loweredRows() * shape.loweredCols() * 128);
}

TEST(ConvShape, BatchScalesRows)
{
    ConvShape shape = resnetLayer();
    shape.batch = 4;
    EXPECT_EQ(shape.loweredRows(), 4 * 56 * 56);
}

TEST(ConvShape, StrDescribes)
{
    EXPECT_NE(resnetLayer().str().find("128x128x3x3"),
              std::string::npos);
}

} // namespace
} // namespace dstc
