#include "isa/trace.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dstc {
namespace {

TEST(Trace, ListsEverySet)
{
    Rng rng(191);
    Matrix<float> a = randomSparseMatrix(32, 8, 0.5, rng);
    Matrix<float> b = randomSparseMatrix(8, 32, 0.5, rng);
    TileTrace trace =
        traceWarpTile(BitmapMatrix::encode(a, Major::Col),
                      BitmapMatrix::encode(b, Major::Row));
    for (int set = 0; set < 8; ++set)
        EXPECT_NE(trace.listing.find("// set " + std::to_string(set)),
                  std::string::npos);
    EXPECT_NE(trace.listing.find("// totals:"), std::string::npos);
}

TEST(Trace, Fig15ExampleAnnotations)
{
    // Column with 20 non-zeros, row with 12: 3/8 OHMMAs enabled.
    Matrix<float> a(32, 1), b(1, 32);
    for (int i = 0; i < 20; ++i)
        a.at(i, 0) = 1.0f;
    for (int i = 0; i < 12; ++i)
        b.at(0, i) = 1.0f;
    TileTrace trace =
        traceWarpTile(BitmapMatrix::encode(a, Major::Col),
                      BitmapMatrix::encode(b, Major::Row));
    EXPECT_NE(trace.listing.find("POPC(Av)=20"), std::string::npos);
    EXPECT_NE(trace.listing.find("POPC(Bv)=12"), std::string::npos);
    EXPECT_NE(trace.listing.find("3/8 OHMMAs enabled"),
              std::string::npos);
    EXPECT_EQ(trace.mix.ohmma_issued, 3);
    EXPECT_EQ(trace.mix.ohmma_skipped, 5);
}

TEST(Trace, CompactedSetsAreMarked)
{
    Matrix<float> a(32, 2), b(2, 32);
    a.at(0, 0) = 1.0f; // k=0 has A data...
    b.at(1, 0) = 1.0f; // ...but only k=1 has B data: both compacted
    TileTrace trace =
        traceWarpTile(BitmapMatrix::encode(a, Major::Col),
                      BitmapMatrix::encode(b, Major::Row));
    EXPECT_NE(trace.listing.find("compacted away"), std::string::npos);
    EXPECT_EQ(trace.mix.ohmma_issued, 0);
    EXPECT_EQ(trace.program.size(), 0u);
}

TEST(Trace, MixMatchesProgram)
{
    Rng rng(192);
    Matrix<float> a = randomSparseMatrix(32, 16, 0.7, rng);
    Matrix<float> b = randomSparseMatrix(16, 32, 0.3, rng);
    TileTrace trace =
        traceWarpTile(BitmapMatrix::encode(a, Major::Col),
                      BitmapMatrix::encode(b, Major::Row));
    InstructionMix recomputed = trace.program.mix();
    EXPECT_EQ(trace.mix.ohmma_issued, recomputed.ohmma_issued);
    EXPECT_EQ(trace.mix.bohmma, recomputed.bohmma);
    EXPECT_EQ(trace.mix.popc, recomputed.popc);
}

} // namespace
} // namespace dstc
