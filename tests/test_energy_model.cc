#include "hwmodel/energy_model.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "session_test_util.h"

namespace dstc {
namespace {

class EnergyTest : public ::testing::Test
{
  protected:
    GpuConfig cfg_ = GpuConfig::v100();
    EnergyParams params_ = EnergyParams::v100_12nm();
};

TEST_F(EnergyTest, DenseEnergyScalesWithWork)
{
    EnergyReport small =
        denseGemmEnergy(1024, 1024, 1024, params_, cfg_);
    EnergyReport big = denseGemmEnergy(4096, 4096, 4096, params_, cfg_);
    EXPECT_NEAR(big.compute_uj / small.compute_uj, 64.0, 1.0);
    EXPECT_GT(big.totalUj(), small.totalUj());
}

TEST_F(EnergyTest, DenseEnergyMagnitudeIsSane)
{
    // 4096^3 at ~1.1 pJ/MAC is ~75 mJ of math; with DRAM and static
    // draw the kernel should land in the 60-200 mJ band (V100 at
    // 250 W running ~1.4 ms is ~350 mJ wall, and the model charges
    // only the GEMM-related parts).
    EnergyReport report =
        denseGemmEnergy(4096, 4096, 4096, params_, cfg_);
    EXPECT_GT(report.totalUj(), 60e3);
    EXPECT_LT(report.totalUj(), 300e3);
}

TEST_F(EnergyTest, SparsitySavesEnergy)
{
    Session session(cfg_);
    Rng rng(171);
    SparsityProfile a =
        SparsityProfile::randomA(2048, 2048, 32, 0.2, 1.0, rng);
    SparsityProfile b =
        SparsityProfile::randomA(2048, 2048, 32, 0.2, 1.0, rng);
    KernelStats sparse_stats = testutil::spgemmTime(session, a, b);
    EnergyReport sparse_energy =
        estimateEnergy(sparse_stats, params_, cfg_);
    EnergyReport dense_energy =
        denseGemmEnergy(2048, 2048, 2048, params_, cfg_);
    EXPECT_LT(sparse_energy.totalUj(), dense_energy.totalUj());
}

TEST_F(EnergyTest, BitmapOverheadIsCharged)
{
    // The dual-side kernel pays for BOHMMA/POPC/merge energy that a
    // dense kernel does not have; on a fully dense input it must
    // therefore cost more energy than the dense kernel.
    Session session(cfg_);
    SparsityProfile a = SparsityProfile::denseA(1024, 1024, 32);
    SparsityProfile b =
        SparsityProfile::denseA(1024, 1024, 32); // N-side full too
    KernelStats stats = testutil::spgemmTime(session, a, b);
    EnergyReport ours = estimateEnergy(stats, params_, cfg_);
    EnergyReport dense =
        denseGemmEnergy(1024, 1024, 1024, params_, cfg_);
    EXPECT_GT(ours.compute_uj + ours.merge_uj, dense.compute_uj);
}

TEST_F(EnergyTest, BreakdownPartsAreNonNegative)
{
    Session session(cfg_);
    Rng rng(172);
    SparsityProfile a =
        SparsityProfile::randomA(512, 512, 32, 0.1, 4.0, rng);
    SparsityProfile b =
        SparsityProfile::randomA(512, 512, 32, 0.1, 4.0, rng);
    EnergyReport report =
        estimateEnergy(testutil::spgemmTime(session, a, b), params_, cfg_);
    EXPECT_GE(report.compute_uj, 0.0);
    EXPECT_GE(report.merge_uj, 0.0);
    EXPECT_GE(report.dram_uj, 0.0);
    EXPECT_GE(report.static_uj, 0.0);
    EXPECT_GT(report.totalUj(), 0.0);
}

} // namespace
} // namespace dstc
