#include "timing/accum_buffer.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dstc {
namespace {

MergeTrace
singleInstr(std::vector<int> addrs)
{
    MergeTrace trace;
    trace.instr_addrs.push_back(std::move(addrs));
    return trace;
}

TEST(AccumBuffer, DenseModeIsOnePerInstruction)
{
    AccumBufferSim sim(128, true, 8);
    EXPECT_EQ(sim.simulateDense(0), 0);
    EXPECT_EQ(sim.simulateDense(17), 17);
}

TEST(AccumBuffer, ConflictFreeInstructionTakesOneCycle)
{
    AccumBufferSim sim(4, false, 8);
    EXPECT_EQ(sim.simulateSparse(singleInstr({0, 1, 2, 3})), 1);
}

TEST(AccumBuffer, FullConflictSerializes)
{
    AccumBufferSim sim(4, false, 8);
    // All four accesses on bank 0 -> 4 cycles.
    EXPECT_EQ(sim.simulateSparse(singleInstr({0, 4, 8, 12})), 4);
}

TEST(AccumBuffer, WithoutCollectorSumsMaxLoads)
{
    AccumBufferSim sim(4, false, 8);
    MergeTrace trace;
    trace.instr_addrs.push_back({0, 4});    // bank 0 twice -> 2
    trace.instr_addrs.push_back({1, 2, 3}); // conflict-free -> 1
    EXPECT_EQ(sim.simulateSparse(trace), 3);
}

TEST(AccumBuffer, CollectorOverlapsAcrossInstructions)
{
    // Fig. 19: two instructions that conflict internally but are
    // disjoint across banks finish faster with the collector.
    AccumBufferSim with_oc(4, true, 8);
    AccumBufferSim without_oc(4, false, 8);
    MergeTrace trace;
    trace.instr_addrs.push_back({0, 4, 8}); // bank 0 x3
    trace.instr_addrs.push_back({1, 5, 9}); // bank 1 x3
    trace.instr_addrs.push_back({2, 6, 10}); // bank 2 x3
    EXPECT_EQ(without_oc.simulateSparse(trace), 9);
    // All three fit the collector window, so the three banks drain
    // their per-bank loads fully in parallel.
    EXPECT_EQ(with_oc.simulateSparse(trace), 3);
}

TEST(AccumBuffer, CollectorNeverSlower)
{
    Rng rng(71);
    for (int trial = 0; trial < 50; ++trial) {
        MergeTrace trace;
        const int instrs = 1 + static_cast<int>(rng.uniformInt(12));
        for (int i = 0; i < instrs; ++i) {
            std::vector<int> addrs;
            const int n = static_cast<int>(rng.uniformInt(64));
            for (int j = 0; j < n; ++j)
                addrs.push_back(
                    static_cast<int>(rng.uniformInt(1024)));
            trace.instr_addrs.push_back(std::move(addrs));
        }
        AccumBufferSim with_oc(32, true, 8);
        AccumBufferSim without_oc(32, false, 8);
        EXPECT_LE(with_oc.simulateSparse(trace),
                  without_oc.simulateSparse(trace));
    }
}

TEST(AccumBuffer, ThroughputLowerBoundHolds)
{
    // No schedule can beat total_accesses / banks cycles.
    Rng rng(72);
    MergeTrace trace;
    for (int i = 0; i < 20; ++i) {
        std::vector<int> addrs;
        for (int j = 0; j < 40; ++j)
            addrs.push_back(static_cast<int>(rng.uniformInt(1024)));
        trace.instr_addrs.push_back(std::move(addrs));
    }
    AccumBufferSim sim(16, true, 8);
    const int64_t cycles = sim.simulateSparse(trace);
    EXPECT_GE(cycles, trace.totalAccesses() / 16);
}

TEST(AccumBuffer, EmptyTraceIsFree)
{
    AccumBufferSim sim(32, true, 8);
    MergeTrace trace;
    trace.instr_addrs.push_back({});
    EXPECT_EQ(sim.simulateSparse(trace), 0);
    EXPECT_EQ(sim.simulateSparse(MergeTrace{}), 0);
}

TEST(AccumBuffer, WindowOneDegeneratesToSerial)
{
    Rng rng(73);
    MergeTrace trace;
    for (int i = 0; i < 10; ++i) {
        std::vector<int> addrs;
        const int n = 1 + static_cast<int>(rng.uniformInt(30));
        for (int j = 0; j < n; ++j)
            addrs.push_back(static_cast<int>(rng.uniformInt(256)));
        trace.instr_addrs.push_back(std::move(addrs));
    }
    AccumBufferSim window1(8, true, 1);
    AccumBufferSim serial(8, false, 8);
    EXPECT_EQ(window1.simulateSparse(trace),
              serial.simulateSparse(trace));
}

} // namespace
} // namespace dstc
