/**
 * @file
 * Equivalence gate of the word-parallel operand encoders: for every
 * shape (ragged included), major, tiling and worker count, the word
 * encoders must reproduce the element-wise references bit for bit —
 * bitmap words, packed values, the FP16 mirror, line offsets, warp
 * bits and profile counts alike. The scalar encode stays in the
 * library solely as this ground truth.
 */
#include "sparse/word_encode.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gemm/sparsity_profile.h"
#include "model/sparsity_gen.h"

namespace dstc {
namespace {

/** Bit-for-bit comparison of two one-level bitmap encodings. */
void
expectBitmapIdentical(const BitmapMatrix &a, const BitmapMatrix &b,
                      const char *label)
{
    ASSERT_EQ(a.rows(), b.rows()) << label;
    ASSERT_EQ(a.cols(), b.cols()) << label;
    ASSERT_EQ(a.major(), b.major()) << label;
    ASSERT_EQ(a.nnz(), b.nnz()) << label;
    for (int line = 0; line < a.numLines(); ++line) {
        const auto wa = a.lineBits(line);
        const auto wb = b.lineBits(line);
        ASSERT_EQ(wa.size(), wb.size()) << label;
        for (size_t w = 0; w < wa.size(); ++w)
            ASSERT_EQ(wa[w], wb[w])
                << label << " line " << line << " word " << w;
        const auto va = a.lineValues(line);
        const auto vb = b.lineValues(line);
        const auto fa = a.lineValuesFp16(line);
        const auto fb = b.lineValuesFp16(line);
        ASSERT_EQ(va.size(), vb.size()) << label << " line " << line;
        for (size_t i = 0; i < va.size(); ++i) {
            ASSERT_EQ(va[i], vb[i])
                << label << " line " << line << " value " << i;
            ASSERT_EQ(fa[i], fb[i])
                << label << " line " << line << " fp16 " << i;
        }
    }
}

/** Bit-for-bit comparison of two two-level encodings. */
void
expectTwoLevelIdentical(const TwoLevelBitmapMatrix &a,
                        const TwoLevelBitmapMatrix &b,
                        const char *label)
{
    ASSERT_EQ(a.rows(), b.rows()) << label;
    ASSERT_EQ(a.cols(), b.cols()) << label;
    ASSERT_EQ(a.numTileRows(), b.numTileRows()) << label;
    ASSERT_EQ(a.numTileCols(), b.numTileCols()) << label;
    ASSERT_EQ(a.nonEmptyTiles(), b.nonEmptyTiles()) << label;
    ASSERT_EQ(a.nnz(), b.nnz()) << label;
    ASSERT_EQ(a.encodedBytes(), b.encodedBytes()) << label;
    for (int tr = 0; tr < a.numTileRows(); ++tr) {
        for (int tc = 0; tc < a.numTileCols(); ++tc) {
            ASSERT_EQ(a.tileNonEmpty(tr, tc), b.tileNonEmpty(tr, tc))
                << label << " tile " << tr << "," << tc;
            expectBitmapIdentical(a.tile(tr, tc), b.tile(tr, tc),
                                  label);
        }
    }
}

TEST(WordEncode, BitmapMatchesScalarBothMajors)
{
    Rng rng(731);
    // Ragged shapes straddling the 64-bit word boundary both ways.
    const int dims[][2] = {{64, 64}, {50, 70}, {1, 129},
                           {127, 1}, {65, 33}, {96, 100}};
    for (const auto &d : dims) {
        for (double sp : {0.0, 0.5, 0.95}) {
            Matrix<float> m =
                randomSparseMatrix(d[0], d[1], sp, rng);
            expectBitmapIdentical(wordEncodeBitmap(m, Major::Col),
                                  BitmapMatrix::encode(m, Major::Col),
                                  "col");
            expectBitmapIdentical(wordEncodeBitmap(m, Major::Row),
                                  BitmapMatrix::encode(m, Major::Row),
                                  "row");
        }
    }
}

TEST(WordEncode, TwoLevelMatchesScalarRaggedShapes)
{
    Rng rng(732);
    // Non-multiple-of-32 extents exercise clipped edge tiles on both
    // axes; tile_k = 16 exercises the non-32 chunk extraction.
    struct Case
    {
        int rows, cols, tile_r, tile_c;
    } cases[] = {{64, 64, 32, 32},  {50, 70, 32, 32},
                 {33, 95, 32, 16},  {100, 31, 32, 32},
                 {70, 70, 16, 64},  {129, 65, 32, 32}};
    for (const auto &c : cases) {
        Matrix<float> m =
            randomSparseMatrix(c.rows, c.cols, 0.8, rng);
        expectTwoLevelIdentical(
            wordEncodeTwoLevel(m, c.tile_r, c.tile_c, Major::Col),
            TwoLevelBitmapMatrix::encode(m, c.tile_r, c.tile_c,
                                         Major::Col),
            "col");
        expectTwoLevelIdentical(
            wordEncodeTwoLevel(m, c.tile_r, c.tile_c, Major::Row),
            TwoLevelBitmapMatrix::encode(m, c.tile_r, c.tile_c,
                                         Major::Row),
            "row");
    }
}

TEST(WordEncode, TwoLevelIdenticalForAnyWorkerCount)
{
    Rng rng(733);
    Matrix<float> m = randomSparseMatrix(127, 130, 0.9, rng);
    TwoLevelBitmapMatrix ref =
        TwoLevelBitmapMatrix::encode(m, 32, 32, Major::Col);
    for (int workers : {0, 1, 2, 4, 7}) {
        expectTwoLevelIdentical(
            wordEncodeTwoLevel(m, 32, 32, Major::Col, workers), ref,
            ("workers=" + std::to_string(workers)).c_str());
    }
}

TEST(WordEncode, ClusteredAndDegenerateInputs)
{
    Rng rng(734);
    Matrix<float> clustered =
        clusteredSparseMatrix(96, 96, 0.9, 32, 4.0, rng);
    expectTwoLevelIdentical(
        wordEncodeTwoLevel(clustered, 32, 32, Major::Row),
        TwoLevelBitmapMatrix::encode(clustered, 32, 32, Major::Row),
        "clustered");

    Matrix<float> zero(40, 50);
    expectTwoLevelIdentical(
        wordEncodeTwoLevel(zero, 32, 32, Major::Col),
        TwoLevelBitmapMatrix::encode(zero, 32, 32, Major::Col),
        "all-zero");

    Matrix<float> dense = randomSparseMatrix(48, 48, 0.0, rng);
    expectTwoLevelIdentical(
        wordEncodeTwoLevel(dense, 32, 32, Major::Col),
        TwoLevelBitmapMatrix::encode(dense, 32, 32, Major::Col),
        "fully-dense");
}

TEST(WordEncode, ProfilesMatchScalarExtraction)
{
    Rng rng(735);
    for (const auto &d :
         std::initializer_list<std::pair<int, int>>{
             {64, 64}, {50, 70}, {33, 129}}) {
        Matrix<float> m =
            randomSparseMatrix(d.first, d.second, 0.7, rng);
        SparsityProfile wa = SparsityProfile::fromMatrixAWord(m, 32);
        SparsityProfile sa = SparsityProfile::fromMatrixA(m, 32);
        ASSERT_EQ(wa.groups(), sa.groups());
        ASSERT_EQ(wa.k(), sa.k());
        ASSERT_EQ(wa.extent(), sa.extent());
        for (int g = 0; g < sa.groups(); ++g)
            for (int64_t kk = 0; kk < sa.k(); ++kk)
                ASSERT_EQ(wa.count(g, kk), sa.count(g, kk))
                    << "A g=" << g << " k=" << kk;

        SparsityProfile wb = SparsityProfile::fromMatrixBWord(m, 32);
        SparsityProfile sb = SparsityProfile::fromMatrixB(m, 32);
        ASSERT_EQ(wb.groups(), sb.groups());
        ASSERT_EQ(wb.extent(), sb.extent());
        for (int g = 0; g < sb.groups(); ++g)
            for (int64_t kk = 0; kk < sb.k(); ++kk)
                ASSERT_EQ(wb.count(g, kk), sb.count(g, kk))
                    << "B g=" << g << " k=" << kk;
    }
}

TEST(WordEncode, ProfilesRecordTrueExtents)
{
    Rng rng(736);
    Matrix<float> a = randomSparseMatrix(50, 40, 0.5, rng);
    EXPECT_EQ(SparsityProfile::fromMatrixA(a, 32).extent(), 50);
    EXPECT_EQ(SparsityProfile::fromMatrixB(a, 32).extent(), 40);
    SparsityProfile synth =
        SparsityProfile::randomA(100, 64, 32, 0.5, 1.0, rng);
    EXPECT_EQ(synth.extent(), 100);
    EXPECT_EQ(synth.groups(), 4);
    // Legacy construction stays tile-aligned.
    EXPECT_EQ(SparsityProfile(3, 8, 32).extent(), 96);
}

TEST(WordEncode, WordNnzMatchesElementCount)
{
    Rng rng(737);
    for (int n : {0, 1, 63, 64, 65, 1000}) {
        std::vector<float> v(static_cast<size_t>(n));
        int64_t expect = 0;
        for (auto &x : v) {
            x = rng.bernoulli(0.5)
                    ? 0.0f
                    : rng.uniformFloat(-1.0f, 1.0f);
            expect += x != 0.0f;
        }
        EXPECT_EQ(wordNnz(v.data(), v.size()), expect) << n;
    }
    Matrix<float> m = randomSparseMatrix(37, 53, 0.8, rng);
    EXPECT_EQ(wordSparsity(m), m.sparsity());
}

} // namespace
} // namespace dstc
