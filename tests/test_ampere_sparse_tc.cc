#include "baselines/ampere_sparse_tc.h"

#include <gtest/gtest.h>

#include "baselines/cutlass_like.h"
#include "baselines/zhu_sparse_tc.h"
#include "common/rng.h"
#include "model/pruning.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

TEST(AmpereSparseTc, FixedSpeedupOverDense)
{
    GpuConfig cfg = GpuConfig::v100();
    const double dense = cutlassGemm(cfg, 4096, 4096, 4096).timeUs();
    const double ampere =
        ampereGemm(cfg, 4096, 4096, 4096, 0.5).timeUs();
    EXPECT_NEAR(dense / ampere, kAmpereEffectiveSpeedup, 0.25);
}

TEST(AmpereSparseTc, CannotExploitExtraSparsity)
{
    GpuConfig cfg = GpuConfig::v100();
    EXPECT_DOUBLE_EQ(ampereGemm(cfg, 2048, 2048, 2048, 0.5).timeUs(),
                     ampereGemm(cfg, 2048, 2048, 2048, 0.9).timeUs());
}

TEST(AmpereSparseTc, FunctionalEqualsDenseOnPrunedWeights)
{
    Rng rng(161);
    Matrix<float> a = randomSparseMatrix(24, 24, 0.0, rng);
    Matrix<float> b = randomSparseMatrix(24, 24, 0.0, rng);
    Matrix<float> pruned = prune2of4(b);
    EXPECT_LT(maxAbsDiff(ampereGemmFunctional(a, b),
                         refGemmFp16(a, pruned)),
              1e-6);
    EXPECT_NEAR(pruned.sparsity(), kAmperePruneRatio, 1e-9);
}

TEST(AmpereSparseTc, MidwayBetweenDenseAndVectorWise)
{
    // 2:4 exploits less sparsity than the vector-wise 75% design:
    // its fixed speedup sits between dense and Zhu's on compute-
    // bound shapes.
    GpuConfig cfg = GpuConfig::v100();
    const double dense = cutlassGemm(cfg, 4096, 4096, 4096).timeUs();
    const double ampere =
        ampereGemm(cfg, 4096, 4096, 4096, 0.5).timeUs();
    const double zhu = zhuGemm(cfg, 4096, 4096, 4096, 0.75).timeUs();
    EXPECT_LT(ampere, dense);
    EXPECT_GT(ampere, zhu);
}

} // namespace
} // namespace dstc
