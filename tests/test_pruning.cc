#include "model/pruning.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dstc {
namespace {

TEST(Agp, ScheduleEndpoints)
{
    EXPECT_DOUBLE_EQ(agpSparsity(0.0, 0.9, 0, 100), 0.0);
    EXPECT_DOUBLE_EQ(agpSparsity(0.0, 0.9, 100, 100), 0.9);
    EXPECT_DOUBLE_EQ(agpSparsity(0.2, 0.8, 0, 10), 0.2);
}

TEST(Agp, ScheduleIsMonotoneAndFrontLoaded)
{
    double prev = -1.0;
    for (int t = 0; t <= 50; ++t) {
        const double s = agpSparsity(0.0, 0.9, t, 50);
        EXPECT_GE(s, prev);
        prev = s;
    }
    // Cubic ramp: more than half the sparsity in the first quarter.
    EXPECT_GT(agpSparsity(0.0, 0.9, 13, 50), 0.45);
}

TEST(Magnitude, HitsExactSparsity)
{
    Rng rng(211);
    Matrix<float> w = randomSparseMatrix(64, 64, 0.0, rng);
    for (double target : {0.25, 0.5, 0.75, 0.9}) {
        Matrix<float> pruned = magnitudePrune(w, target);
        // Exact up to the integer element count.
        EXPECT_NEAR(pruned.sparsity(), target,
                    1.0 / static_cast<double>(w.size()));
    }
}

TEST(Magnitude, RemovesSmallestFirst)
{
    Matrix<float> w(1, 4);
    w.at(0, 0) = 0.1f;
    w.at(0, 1) = -0.9f;
    w.at(0, 2) = 0.5f;
    w.at(0, 3) = -0.2f;
    Matrix<float> pruned = magnitudePrune(w, 0.5);
    EXPECT_EQ(pruned.at(0, 0), 0.0f);
    EXPECT_EQ(pruned.at(0, 3), 0.0f);
    EXPECT_EQ(pruned.at(0, 1), -0.9f);
    EXPECT_EQ(pruned.at(0, 2), 0.5f);
}

TEST(Magnitude, MasksAreNested)
{
    // Pruning further never resurrects a zeroed weight.
    Rng rng(212);
    Matrix<float> w = randomSparseMatrix(32, 32, 0.0, rng);
    Matrix<float> p50 = magnitudePrune(w, 0.5);
    Matrix<float> p80 = magnitudePrune(p50, 0.8);
    for (int r = 0; r < 32; ++r)
        for (int c = 0; c < 32; ++c)
            if (p50.at(r, c) == 0.0f)
                EXPECT_EQ(p80.at(r, c), 0.0f);
}

TEST(VectorWise, EachVectorKeepsQuota)
{
    Rng rng(213);
    Matrix<float> w = randomSparseMatrix(8, 64, 0.0, rng);
    Matrix<float> pruned = vectorWisePrune(w, 16, 0.75);
    for (int r = 0; r < 8; ++r) {
        for (int v0 = 0; v0 < 64; v0 += 16) {
            int nnz = 0;
            for (int c = v0; c < v0 + 16; ++c)
                nnz += pruned.at(r, c) != 0.0f;
            EXPECT_EQ(nnz, 4); // 25% of 16
        }
    }
    EXPECT_NEAR(pruned.sparsity(), 0.75, 1e-9);
}

TEST(VectorWise, KeepsLargestMagnitudes)
{
    Matrix<float> w(1, 4);
    w.at(0, 0) = 0.9f;
    w.at(0, 1) = 0.1f;
    w.at(0, 2) = -0.8f;
    w.at(0, 3) = 0.2f;
    Matrix<float> pruned = vectorWisePrune(w, 4, 0.5);
    EXPECT_EQ(pruned.at(0, 0), 0.9f);
    EXPECT_EQ(pruned.at(0, 2), -0.8f);
    EXPECT_EQ(pruned.at(0, 1), 0.0f);
    EXPECT_EQ(pruned.at(0, 3), 0.0f);
}

TEST(Prune2of4, QuadInvariant)
{
    Rng rng(214);
    Matrix<float> w = randomSparseMatrix(16, 32, 0.0, rng);
    Matrix<float> pruned = prune2of4(w);
    for (int r = 0; r < 16; ++r) {
        for (int v0 = 0; v0 < 32; v0 += 4) {
            int nnz = 0;
            for (int c = v0; c < v0 + 4; ++c)
                nnz += pruned.at(r, c) != 0.0f;
            EXPECT_EQ(nnz, 2);
        }
    }
    EXPECT_NEAR(pruned.sparsity(), 0.5, 1e-9);
}

TEST(AgpPrune, ReachesFinalSparsity)
{
    Rng rng(215);
    Matrix<float> w = randomSparseMatrix(48, 48, 0.0, rng);
    Matrix<float> pruned = agpPrune(w, 0.9, 10);
    EXPECT_NEAR(pruned.sparsity(), 0.9, 0.01);
}

} // namespace
} // namespace dstc
