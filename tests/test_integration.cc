/**
 * @file
 * Cross-module integration tests: end-to-end flows exactly as the
 * benchmarks and examples run them, on sizes small enough to verify
 * functionally.
 */
#include <sstream>

#include <gtest/gtest.h>

#include "baselines/zhu_sparse_tc.h"
#include "common/rng.h"
#include "model/pruning.h"
#include "model/sparsity_gen.h"
#include "model/zoo.h"
#include "session_test_util.h"
#include "sparse/serialize.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

TEST(Integration, PrunedGemmEndToEnd)
{
    // AGP-prune a weight matrix, generate ReLU activations, run the
    // full dual-side SpGEMM, and check against the reference.
    Rng rng(231);
    Session session;
    Matrix<float> weights = randomSparseMatrix(96, 96, 0.0, rng);
    Matrix<float> pruned = agpPrune(weights, 0.85, 8);
    Matrix<float> acts = reluActivationMatrix(96, 96, 0.55, rng);

    KernelReport r = testutil::spgemm(session, acts, pruned);
    EXPECT_LT(maxAbsDiff(*r.d, refGemmFp16(acts, pruned)), 1e-5);
    EXPECT_GT(r.stats.mix.ohmma_skipped, 0);

    // And it is faster than the dense run of the same shape.
    SpGemmOptions timing;
    timing.functional = false;
    const double sparse_t =
        testutil::spgemm(session, acts, pruned, timing).stats.compute_us;
    Matrix<float> dense_a = randomSparseMatrix(96, 96, 0.0, rng);
    Matrix<float> dense_b = randomSparseMatrix(96, 96, 0.0, rng);
    const double dense_t =
        testutil::spgemm(session, dense_a, dense_b, timing)
            .stats.compute_us;
    EXPECT_LT(sparse_t, dense_t);
}

TEST(Integration, ConvLayerFromModelZoo)
{
    // Functional check on a scaled-down zoo layer; the timing claim
    // is asserted at the layer's real size via the timing-only path
    // (toy 16-channel shapes are launch-grain noise, not the paper's
    // operating regime).
    Rng rng(232);
    Session session;
    const ConvLayerSpec real_layer = makeResnet18().conv_layers[1];
    ConvShape shape = real_layer.shape;
    shape.in_h = shape.in_w = 14; // shrink for functional checking
    shape.in_c = 16;
    shape.out_c = 16;

    Tensor4d input = reluActivationTensor(1, 16, 14, 14, 0.5, rng);
    Matrix<float> weights = magnitudePrune(
        randomSparseMatrix(16, 16 * 9, 0.0, rng), 0.7);
    Tensor4d golden = refConv2d(input, weights, shape.params());

    for (ConvMethod method :
         {ConvMethod::DenseImplicit, ConvMethod::DualSparseImplicit}) {
        KernelReport r =
            testutil::conv(session, input, weights, shape, method);
        double worst = 0.0;
        for (size_t i = 0; i < golden.size(); ++i)
            worst = std::max(worst, static_cast<double>(std::fabs(
                                        r.output->data()[i] -
                                        golden.data()[i])));
        EXPECT_LT(worst, 2e-2) << convMethodName(method);
    }

    const double dense_time =
        testutil::convTime(session, real_layer.shape,
                           ConvMethod::DenseImplicit,
                           real_layer.weight_sparsity,
                           real_layer.act_sparsity, 3,
                           real_layer.weight_cluster,
                           real_layer.act_cluster)
            .timeUs();
    const double dual_time =
        testutil::convTime(session, real_layer.shape,
                           ConvMethod::DualSparseImplicit,
                           real_layer.weight_sparsity,
                           real_layer.act_sparsity, 3,
                           real_layer.weight_cluster,
                           real_layer.act_cluster)
            .timeUs();
    EXPECT_LT(dual_time, dense_time);
}

TEST(Integration, Fig21PointMatchesHeadline)
{
    // One Fig. 21 point at full size: A 0% / B 99% sparsity, ours vs
    // CUTLASS. The paper reports a clear multi-x win; our model
    // should land in the same regime (see EXPERIMENTS.md).
    Rng rng(233);
    Session session;
    SparsityProfile a =
        SparsityProfile::denseA(2048, 2048, 32);
    SparsityProfile b =
        SparsityProfile::randomA(2048, 2048, 32, 0.01, 1.0, rng);
    const double ours = testutil::spgemmTime(session, a, b).timeUs();
    const double dense =
        testutil::denseGemmTime(session, 2048, 2048, 2048).timeUs();
    EXPECT_GT(dense / ours, 3.0);
    EXPECT_LT(dense / ours, 25.0);
}

TEST(Integration, ZhuBaselineFunctionalPipeline)
{
    // Vector-prune weights into Zhu's format and validate the single
    // sparse explicit conv path computes that model's convolution.
    Rng rng(234);
    Session session;
    ConvShape shape;
    shape.in_c = 8;
    shape.in_h = shape.in_w = 10;
    shape.out_c = 8;
    shape.kernel = 3;
    shape.pad = 1;
    Tensor4d input = reluActivationTensor(1, 8, 10, 10, 0.4, rng);
    Matrix<float> weights = vectorWisePrune(
        randomSparseMatrix(8, 72, 0.0, rng), 16, kZhuPruneRatio);
    KernelReport r = testutil::conv(session, input, weights, shape,
                                    ConvMethod::SingleSparseExplicit);
    Tensor4d golden = refConv2d(input, weights, shape.params());
    double worst = 0.0;
    for (size_t i = 0; i < golden.size(); ++i)
        worst = std::max(worst,
                         static_cast<double>(std::fabs(
                             r.output->data()[i] - golden.data()[i])));
    EXPECT_LT(worst, 2e-2);
}

TEST(Integration, TwoLevelBitmapHelpsClusteredHighSparsity)
{
    // Sec. VI-D: for very sparse matrices the warp-bitmap lets whole
    // warps be skipped; verify the ablation direction end to end.
    // Large enough that every sub-core is saturated, so the skipped
    // tiles' occupancy-check work would otherwise show up in the
    // makespan.
    Rng rng(235);
    Session session;
    Matrix<float> a =
        clusteredSparseMatrix(2048, 2048, 0.97, 32, 24.0, rng);
    Matrix<float> b =
        clusteredSparseMatrix(2048, 2048, 0.97, 32, 24.0, rng);
    SpGemmOptions with_skip;
    with_skip.functional = false;
    SpGemmOptions no_skip = with_skip;
    no_skip.two_level = false;
    const double skip_t =
        testutil::spgemm(session, a, b, with_skip).stats.compute_us;
    const double noskip_t =
        testutil::spgemm(session, a, b, no_skip).stats.compute_us;
    EXPECT_LT(skip_t, noskip_t);
}

TEST(Integration, DeploymentFlowSerializeEncodeMultiply)
{
    // The offline-weights workflow: prune, serialize the bitmap
    // checkpoint, reload it elsewhere, re-encode two-level, and run
    // the encoded-operand SpGEMM across several "inference" batches.
    Rng rng(237);
    Session session;
    Matrix<float> weights =
        agpPrune(randomSparseMatrix(64, 96, 0.0, rng), 0.8, 6);

    std::stringstream checkpoint;
    saveBitmap(BitmapMatrix::encode(weights, Major::Row), checkpoint);
    auto restored = loadBitmap(checkpoint);
    ASSERT_TRUE(restored.has_value());
    Matrix<float> reloaded = restored->decode();
    EXPECT_EQ(reloaded, weights);

    SpGemmOptions opts;
    TwoLevelBitmapMatrix b_enc = TwoLevelBitmapMatrix::encode(
        reloaded, opts.tile_k, opts.tile_n, Major::Row);
    for (int batch = 0; batch < 3; ++batch) {
        Matrix<float> acts = reluActivationMatrix(96, 64, 0.5, rng);
        TwoLevelBitmapMatrix a_enc = TwoLevelBitmapMatrix::encode(
            acts, opts.tile_m, opts.tile_k, Major::Col);
        KernelReport r =
            testutil::spgemmEncoded(session, a_enc, b_enc, opts);
        EXPECT_LT(maxAbsDiff(*r.d, refGemmFp16(acts, weights)), 1e-5)
            << "batch " << batch;
    }
}

TEST(Integration, BertLayerGemmOrdering)
{
    // A BERT FFN layer shape: single-sparse is capped; ours exploits
    // the >90% weight sparsity (Fig. 22 BERT panel).
    Rng rng(236);
    Session session;
    const auto layer = makeBertBase().gemm_layers[2]; // ffn-1
    SparsityProfile a = SparsityProfile::randomA(
        layer.m, layer.k, 32, 1.0 - layer.act_sparsity,
        layer.act_cluster, rng);
    SparsityProfile b = SparsityProfile::randomA(
        layer.n, layer.k, 32, 1.0 - layer.weight_sparsity,
        layer.weight_cluster, rng);
    const double ours = testutil::spgemmTime(session, a, b).timeUs();
    const double dense =
        testutil::denseGemmTime(session, layer.m, layer.n, layer.k)
            .timeUs();
    const double zhu =
        testutil::zhuGemmTime(session, layer.m, layer.n, layer.k,
                              layer.weight_sparsity)
            .timeUs();
    EXPECT_LT(ours, zhu);
    EXPECT_LT(zhu, dense);
}

} // namespace
} // namespace dstc
