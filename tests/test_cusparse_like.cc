#include "baselines/cusparse_like.h"

#include <gtest/gtest.h>

#include "baselines/cutlass_like.h"
#include "common/rng.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

TEST(CsrGemm, FunctionalMatchesReference)
{
    Rng rng(141);
    Matrix<float> a = randomSparseMatrix(40, 30, 0.8, rng);
    Matrix<float> b = randomSparseMatrix(30, 50, 0.7, rng);
    CsrMatrix d = csrGemm(CsrMatrix::encode(a), CsrMatrix::encode(b));
    EXPECT_LT(maxAbsDiff(d.decode(), refGemm(a, b)), 1e-4);
}

TEST(CsrGemm, EmptyOperands)
{
    Matrix<float> zero(8, 8);
    Rng rng(142);
    Matrix<float> b = randomSparseMatrix(8, 8, 0.5, rng);
    CsrMatrix d =
        csrGemm(CsrMatrix::encode(zero), CsrMatrix::encode(b));
    EXPECT_EQ(d.nnz(), 0);
}

TEST(CusparseTime, MatchesCountedTrace)
{
    GpuConfig cfg = GpuConfig::v100();
    Rng rng(143);
    Matrix<float> a = randomSparseMatrix(64, 64, 0.9, rng);
    Matrix<float> b = randomSparseMatrix(64, 64, 0.9, rng);
    const KernelStats counted =
        cusparseGemmTime(cfg, CsrMatrix::encode(a),
                         CsrMatrix::encode(b));
    EXPECT_GT(counted.timeUs(), 0.0);
}

TEST(CusparseTime, PaperCrossoverShape)
{
    // The paper's observations for 4096^3 with B at 99% sparsity
    // (Sec. VI-C): ~1.75x slower than dense at A=90%, break-even
    // around A~95%, only ~1.67x faster at A=99.9%.
    GpuConfig cfg = GpuConfig::v100();
    const double dense_us = cutlassGemm(cfg, 4096, 4096, 4096).timeUs();

    const double t90 =
        cusparseGemmTimeExpected(cfg, 4096, 4096, 4096, 0.10, 0.01)
            .timeUs();
    const double t95 =
        cusparseGemmTimeExpected(cfg, 4096, 4096, 4096, 0.05, 0.01)
            .timeUs();
    const double t999 =
        cusparseGemmTimeExpected(cfg, 4096, 4096, 4096, 0.001, 0.01)
            .timeUs();

    EXPECT_GT(t90 / dense_us, 1.4); // clearly slower than dense
    EXPECT_LT(t90 / dense_us, 2.2);
    EXPECT_NEAR(t95 / dense_us, 1.0, 0.35); // near break-even
    EXPECT_GT(dense_us / t999, 1.2); // faster, but modestly
    EXPECT_LT(dense_us / t999, 2.4);
}

TEST(CusparseTime, MonotonicInDensity)
{
    GpuConfig cfg = GpuConfig::v100();
    double prev = 0.0;
    for (double density : {0.001, 0.01, 0.05, 0.1, 0.5}) {
        const double t = cusparseGemmTimeExpected(cfg, 2048, 2048,
                                                  2048, density, 0.01)
                             .timeUs();
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(CusparseTime, ExpectedModelTracksCountedModel)
{
    GpuConfig cfg = GpuConfig::v100();
    Rng rng(144);
    const double da = 0.05, db = 0.05;
    Matrix<float> a = randomSparseMatrix(512, 512, 1.0 - da, rng);
    Matrix<float> b = randomSparseMatrix(512, 512, 1.0 - db, rng);
    const double counted =
        cusparseGemmTime(cfg, CsrMatrix::encode(a),
                         CsrMatrix::encode(b))
            .timeUs();
    const double expected =
        cusparseGemmTimeExpected(cfg, 512, 512, 512, da, db).timeUs();
    EXPECT_NEAR(expected, counted, counted * 0.2);
}

} // namespace
} // namespace dstc
