#include "core/encoding_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/session.h"
#include "sparse/csr.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

TEST(CacheKeyTest, DistinctInputsDistinctKeys)
{
    EXPECT_NE(CacheKey("a").value(), CacheKey("b").value());
    EXPECT_NE(CacheKey("k").i64(1).value(),
              CacheKey("k").i64(2).value());
    EXPECT_NE(CacheKey("k").f64(0.5).value(),
              CacheKey("k").f64(0.25).value());
    // Tag/field boundaries are terminated: "ab"+"c" != "a"+"bc".
    EXPECT_NE(CacheKey("ab").str("c").value(),
              CacheKey("a").str("bc").value());

    Matrix<float> m1(4, 4), m2(4, 4);
    m2.at(3, 3) = 1.0f;
    EXPECT_NE(CacheKey("m").matrix(m1).value(),
              CacheKey("m").matrix(m2).value());
    EXPECT_EQ(CacheKey("m").matrix(m1).value(),
              CacheKey("m").matrix(m1).value());
}

TEST(EncodingCacheTest, BuildsOnceThenHits)
{
    EncodingCache cache;
    int builds = 0;
    auto build = [&builds] {
        ++builds;
        return 42;
    };

    bool hit = true;
    auto first = cache.getOrBuild<int>(1, build, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(*first, 42);
    EXPECT_EQ(builds, 1);

    auto second = cache.getOrBuild<int>(1, build, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(first.get(), second.get()); // same shared object

    EXPECT_EQ(cache.counters().hits, 1);
    EXPECT_EQ(cache.counters().misses, 1);
    EXPECT_EQ(cache.entries(), 1u);

    cache.clear();
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.counters().hits, 0);
    cache.getOrBuild<int>(1, build, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(builds, 2);
}

TEST(EncodingCacheTest, CapacityBoundsEntriesLru)
{
    EncodingCache cache(4);
    EXPECT_EQ(cache.capacity(), 4u);
    for (uint64_t k = 0; k < 10; ++k)
        cache.getOrBuild<uint64_t>(k, [k] { return k; });
    EXPECT_LE(cache.entries(), 4u);
    EXPECT_EQ(cache.counters().evictions, 6);

    // Least-recently-used entries were evicted and rebuild; newest
    // still hit.
    bool hit = true;
    cache.getOrBuild<uint64_t>(0, [] { return uint64_t{0}; }, &hit);
    EXPECT_FALSE(hit);
    cache.getOrBuild<uint64_t>(9, [] { return uint64_t{9}; }, &hit);
    EXPECT_TRUE(hit);
}

TEST(EncodingCacheTest, HitsRefreshLruRecency)
{
    EncodingCache cache(3);
    for (uint64_t k = 1; k <= 3; ++k)
        cache.getOrBuild<uint64_t>(k, [k] { return k; });

    // Touch the oldest entry, then insert two new keys: the
    // refreshed entry survives while the untouched ones evict.
    cache.getOrBuild<uint64_t>(1, [] { return uint64_t{1}; });
    cache.getOrBuild<uint64_t>(4, [] { return uint64_t{4}; });
    cache.getOrBuild<uint64_t>(5, [] { return uint64_t{5}; });

    bool hit = false;
    cache.getOrBuild<uint64_t>(1, [] { return uint64_t{1}; }, &hit);
    EXPECT_TRUE(hit) << "refreshed entry was evicted";
    cache.getOrBuild<uint64_t>(2, [] { return uint64_t{2}; }, &hit);
    EXPECT_FALSE(hit) << "stale entry should have been evicted";
}

TEST(EncodingCacheTest, ByteBoundEvictsUntilUnderBudget)
{
    // Values report their footprint via encodedBytes(); CSR matrices
    // do. Bound the cache to ~2.5 of them.
    Rng rng(23);
    Matrix<float> dense = randomSparseMatrix(64, 64, 0.5, rng);
    const size_t one = CsrMatrix::encode(dense).encodedBytes();
    EncodingCache cache(1024, one * 5 / 2);

    for (uint64_t k = 0; k < 4; ++k)
        cache.getOrBuild<CsrMatrix>(
            k, [&] { return CsrMatrix::encode(dense); });
    EXPECT_LE(cache.totalBytes(), one * 5 / 2);
    EXPECT_EQ(cache.entries(), 2u);
    EXPECT_EQ(cache.counters().evictions, 2);

    // The newest entries are the survivors.
    bool hit = false;
    cache.getOrBuild<CsrMatrix>(
        3, [&] { return CsrMatrix::encode(dense); }, &hit);
    EXPECT_TRUE(hit);
    cache.getOrBuild<CsrMatrix>(
        0, [&] { return CsrMatrix::encode(dense); }, &hit);
    EXPECT_FALSE(hit);
}

TEST(EncodingCacheTest, OversizedSingleValueIsStillCached)
{
    // A value bigger than the whole byte budget caches anyway (the
    // bound sheds history, it never refuses work).
    Rng rng(24);
    Matrix<float> dense = randomSparseMatrix(64, 64, 0.2, rng);
    EncodingCache cache(1024, 16);
    bool hit = true;
    cache.getOrBuild<CsrMatrix>(
        7, [&] { return CsrMatrix::encode(dense); }, &hit);
    EXPECT_FALSE(hit);
    cache.getOrBuild<CsrMatrix>(
        7, [&] { return CsrMatrix::encode(dense); }, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(cache.entries(), 1u);
}

TEST(EncodingCacheTest, SessionHonorsByteBound)
{
    SessionOptions options;
    options.cache_capacity_bytes = 1; // evict everything evictable
    Session session(options);
    EXPECT_EQ(session.encodingCache().capacityBytes(), 1u);

    Rng rng(25);
    Matrix<float> a = randomSparseMatrix(64, 64, 0.7, rng);
    Matrix<float> b = randomSparseMatrix(64, 64, 0.7, rng);
    KernelRequest req = KernelRequest::gemm(a, b);
    req.method = Method::DualSparse;
    session.run(req);
    // With a 1-byte budget at most the newest (uncharged/last) entry
    // survives per insertion round.
    EXPECT_LE(session.encodingCache().entries(), 2u);
    EXPECT_GT(session.encodingCache().counters().evictions, 0);
}

TEST(EncodingCacheTest, ConcurrentLookupsBuildOnce)
{
    EncodingCache cache;
    std::atomic<int> builds{0};
    std::vector<std::thread> threads;
    std::vector<std::shared_ptr<const int>> results(8);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            results[t] = cache.getOrBuild<int>(7, [&builds] {
                ++builds;
                return 99;
            });
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(builds.load(), 1);
    for (const auto &r : results)
        EXPECT_EQ(*r, 99);
}

TEST(EncodingCacheTest, RepeatedSyntheticRequestHitsCache)
{
    Session session;
    KernelRequest req = KernelRequest::gemm(512, 512, 512, 0.7, 0.8);
    req.method = Method::DualSparse;

    KernelReport first = session.run(req);
    EXPECT_FALSE(first.encode_cache_hit);
    KernelReport second = session.run(req);
    EXPECT_TRUE(second.encode_cache_hit);
    // The cached profiles are the same objects, so the stats match
    // exactly.
    EXPECT_DOUBLE_EQ(first.timeUs(), second.timeUs());
    EXPECT_EQ(first.stats.mix.ohmma_issued,
              second.stats.mix.ohmma_issued);
    EXPECT_GE(session.encodingCache().counters().hits, 1);
}

TEST(EncodingCacheTest, DifferentOperatingPointsMissCache)
{
    Session session;
    KernelRequest req = KernelRequest::gemm(512, 512, 512, 0.7, 0.8);
    req.method = Method::DualSparse;
    session.run(req);

    KernelRequest other = req;
    other.seed = 2;
    EXPECT_FALSE(session.run(other).encode_cache_hit);
    other = req;
    other.b_sparsity = 0.9;
    EXPECT_FALSE(session.run(other).encode_cache_hit);
}

TEST(EncodingCacheTest, FunctionalOperandEncodingsAreReused)
{
    Session session;
    Rng rng(17);
    Matrix<float> a = randomSparseMatrix(128, 128, 0.7, rng);
    Matrix<float> b = randomSparseMatrix(128, 128, 0.7, rng);
    KernelRequest req = KernelRequest::gemm(a, b);
    req.method = Method::DualSparse;

    KernelReport first = session.run(req);
    KernelReport second = session.run(req);
    EXPECT_FALSE(first.encode_cache_hit);
    EXPECT_TRUE(second.encode_cache_hit);
    EXPECT_DOUBLE_EQ(first.timeUs(), second.timeUs());
    EXPECT_LT(maxAbsDiff(*second.d, refGemmFp16(a, b)), 1e-4);

    // The same operand content in a *different* Matrix object also
    // hits: keys are content hashes, not pointers.
    Matrix<float> a_copy = a;
    Matrix<float> b_copy = b;
    KernelRequest copy_req = KernelRequest::gemm(a_copy, b_copy);
    copy_req.method = Method::DualSparse;
    EXPECT_TRUE(session.run(copy_req).encode_cache_hit);
}

TEST(EncodingCacheTest, ConvEncodingReusedAcrossRepeatedLayers)
{
    Session session;
    ConvShape shape;
    shape.in_c = 32;
    shape.in_h = shape.in_w = 14;
    shape.out_c = 32;
    KernelRequest req = KernelRequest::conv(shape, 0.8, 0.6);
    req.method = Method::DualSparse;

    EXPECT_FALSE(session.run(req).encode_cache_hit);
    EXPECT_TRUE(session.run(req).encode_cache_hit);

    // Same shape under a different strategy encodes separately.
    KernelRequest dense = req;
    dense.method = Method::Dense;
    EXPECT_FALSE(session.run(dense).encode_cache_hit);
}

} // namespace
} // namespace dstc
