/**
 * @file
 * SpMM (sparse A x dense B) equivalence and selection gates:
 *
 *  - the word-parallel narrow-tile encoder is bitwise-pinned to the
 *    scalar NarrowTileMatrix::encode for every worker count, ragged
 *    and degenerate shapes included, and decode() round-trips;
 *  - every functional SpMM path — narrow kernel, wide kernel, the
 *    cusparse-like CSR baseline — is bitwise identical to the scalar
 *    refSpmmNarrow reference across shapes, worker counts and
 *    datatypes (the dense backend is error-bounded only: its
 *    accumulation order differs);
 *  - plan-stage Auto format selection never picks a format more than
 *    5% worse than the better one (by construction it picks the
 *    exact minimum: estimate and execution share one cost routine);
 *  - the 32-wide profile aggregation the selection runs on equals a
 *    direct tile-32 profile of the same matrix;
 *  - hybrid SpMM dispatch partitions at strip granularity and stays
 *    within float tolerance of the reference.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/gemm_operands.h"
#include "core/session.h"
#include "gemm/spmm_device.h"
#include "sparse/word_encode.h"
#include "tensor/matrix.h"

namespace dstc {
namespace {

/** Bit-for-bit comparison of two narrow-tile encodings. */
void
expectNarrowIdentical(const NarrowTileMatrix &a,
                      const NarrowTileMatrix &b, const char *label)
{
    ASSERT_EQ(a.rows(), b.rows()) << label;
    ASSERT_EQ(a.cols(), b.cols()) << label;
    ASSERT_EQ(a.numStrips(), b.numStrips()) << label;
    ASSERT_EQ(a.wordsPerStrip(), b.wordsPerStrip()) << label;
    ASSERT_EQ(a.numVectors(), b.numVectors()) << label;
    ASSERT_EQ(a.nnz(), b.nnz()) << label;
    ASSERT_EQ(a.encodedBytes(), b.encodedBytes()) << label;
    for (int s = 0; s < a.numStrips(); ++s) {
        ASSERT_EQ(a.stripOffset(s), b.stripOffset(s)) << label;
        ASSERT_EQ(a.stripNnz(s), b.stripNnz(s)) << label;
        for (int w = 0; w < a.wordsPerStrip(); ++w)
            ASSERT_EQ(a.stripWord(s, w), b.stripWord(s, w))
                << label << " strip " << s << " word " << w;
    }
    for (int64_t v = 0; v < a.numVectors(); ++v) {
        ASSERT_EQ(a.vectorMask(v), b.vectorMask(v))
            << label << " vector " << v;
        const auto va = a.vectorValues(v);
        const auto vb = b.vectorValues(v);
        const auto qa = a.vectorValuesQuant(v);
        const auto qb = b.vectorValuesQuant(v);
        ASSERT_EQ(va.size(), vb.size()) << label;
        for (size_t i = 0; i < va.size(); ++i) {
            ASSERT_EQ(va[i], vb[i]) << label << " vector " << v;
            ASSERT_EQ(qa[i], qb[i]) << label << " vector " << v;
        }
    }
}

void
expectMatricesEqual(const Matrix<float> &x, const Matrix<float> &y,
                    const char *label)
{
    ASSERT_EQ(x.rows(), y.rows()) << label;
    ASSERT_EQ(x.cols(), y.cols()) << label;
    for (int r = 0; r < x.rows(); ++r)
        for (int c = 0; c < x.cols(); ++c)
            ASSERT_EQ(x.at(r, c), y.at(r, c))
                << label << " at (" << r << ", " << c << ")";
}

/** Edge-structure zoo: empty rows/cols, all-empty strips, degenerate
 *  and non-multiple-of-8/32 shapes. */
std::vector<std::pair<std::string, Matrix<float>>>
edgeMatrices()
{
    Rng rng(0x90e);
    std::vector<std::pair<std::string, Matrix<float>>> zoo;
    zoo.emplace_back("ultra-sparse 64x96",
                     randomSparseMatrix(64, 96, 0.99, rng));
    zoo.emplace_back("ragged 33x65",
                     randomSparseMatrix(33, 65, 0.9, rng));
    zoo.emplace_back("row-vector 1x37",
                     randomSparseMatrix(1, 37, 0.5, rng));
    zoo.emplace_back("col-vector 37x1",
                     randomSparseMatrix(37, 1, 0.5, rng));
    zoo.emplace_back("all-zero 40x40", Matrix<float>(40, 40));

    // Alternating all-empty 8-row strips, plus empty columns: the
    // level-1 word scan must skip whole strips and whole vectors.
    Matrix<float> striped(48, 64);
    for (int r = 0; r < 48; ++r) {
        if ((r / 8) % 2)
            continue;
        for (int c = 0; c < 64; c += 3) // columns 1, 2 mod 3 empty
            striped.at(r, c) = rng.uniformFloat(-1.0f, 1.0f);
    }
    zoo.emplace_back("empty strips + empty cols", std::move(striped));

    // One lone entry in the last, clipped strip of a ragged shape.
    Matrix<float> lone(27, 50);
    lone.at(26, 49) = 1.25f;
    zoo.emplace_back("lone entry in clipped strip", std::move(lone));
    return zoo;
}

TEST(NarrowTile, WordEncoderMatchesScalarEveryWorkerCount)
{
    for (const auto &[label, a] : edgeMatrices()) {
        const NarrowTileMatrix scalar = NarrowTileMatrix::encode(a);
        for (int workers : {1, 2, 4, 7}) {
            const NarrowTileMatrix word =
                wordEncodeNarrowTile(a, workers);
            expectNarrowIdentical(scalar, word, label.c_str());
        }
        expectMatricesEqual(a, scalar.decode(), label.c_str());
    }
}

TEST(NarrowTile, IntegerSpecQuantizesValueLane)
{
    Rng rng(7);
    const Matrix<float> a = randomSparseMatrix(16, 40, 0.8, rng);
    const QuantSpec spec = QuantSpec::forValues(
        DataType::Int8, a.data().data(), a.data().size());
    const NarrowTileMatrix scalar = NarrowTileMatrix::encode(a, spec);
    for (int workers : {2, 7})
        expectNarrowIdentical(scalar,
                              wordEncodeNarrowTile(a, workers, spec),
                              "int8 spec");
    EXPECT_EQ(scalar.spec(), spec);
    // Quantized lane actually differs from the raw one somewhere.
    bool differs = false;
    for (int64_t v = 0; v < scalar.numVectors() && !differs; ++v) {
        const auto raw = scalar.vectorValues(v);
        const auto q = scalar.vectorValuesQuant(v);
        for (size_t i = 0; i < raw.size(); ++i)
            differs = differs || raw[i] != q[i];
    }
    EXPECT_TRUE(differs);
}

/** All functional backends on one request; narrow result returned. */
void
expectSpmmBitwiseSet(Session &session, const Matrix<float> &a,
                     const Matrix<float> &b, DataType dtype,
                     const char *label)
{
    const Matrix<float> ref = refSpmmNarrow(a, b, dtype);
    const KernelReport narrow =
        session.run(KernelRequest::spmm(a, b)
                        .withMethod(Method::DualSparse)
                        .withSpmmFormat(SpmmFormat::Narrow)
                        .withDataType(dtype));
    ASSERT_TRUE(narrow.d) << label;
    expectMatricesEqual(ref, *narrow.d, label);
    EXPECT_EQ(narrow.stats.name, "dstc_spmm_narrow") << label;

    const KernelReport wide =
        session.run(KernelRequest::spmm(a, b)
                        .withMethod(Method::DualSparse)
                        .withSpmmFormat(SpmmFormat::Wide)
                        .withDataType(dtype));
    ASSERT_TRUE(wide.d) << label;
    expectMatricesEqual(ref, *wide.d, label);
    EXPECT_EQ(wide.stats.name, "dstc_spmm_wide") << label;

    const KernelReport csr =
        session.run(KernelRequest::spmm(a, b)
                        .withMethod(Method::CusparseLike)
                        .withDataType(dtype));
    ASSERT_TRUE(csr.d) << label;
    expectMatricesEqual(ref, *csr.d, label);
}

TEST(Spmm, BackendsBitwiseEqualAcrossEdgeShapes)
{
    Session session;
    Rng rng(0x5133);
    for (const auto &[label, a] : edgeMatrices()) {
        const Matrix<float> b =
            randomSparseMatrix(a.cols(), 5, 0.0, rng);
        expectSpmmBitwiseSet(session, a, b, DataType::Fp16,
                             label.c_str());
    }
}

TEST(Spmm, IntegerDatatypesStayBitwise)
{
    Session session;
    Rng rng(0xd7);
    const Matrix<float> a = randomSparseMatrix(64, 128, 0.97, rng);
    const Matrix<float> b = randomSparseMatrix(128, 8, 0.0, rng);
    for (DataType dtype :
         {DataType::Int8, DataType::Int4, DataType::Bf16})
        expectSpmmBitwiseSet(session, a, b, dtype,
                             dataTypeToken(dtype));
}

TEST(Spmm, NarrowKernelBitwiseStableAcrossWorkers)
{
    Session session;
    Rng rng(0xab);
    const Matrix<float> a = randomSparseMatrix(96, 160, 0.98, rng);
    const Matrix<float> b = randomSparseMatrix(160, 16, 0.0, rng);
    const Matrix<float> ref = refSpmmNarrow(a, b, DataType::Fp16);
    for (int w : {1, 2, 4, 7}) {
        ExecutionResources res;
        res.compute_workers = w;
        res.encode_workers = w;
        const KernelReport r =
            session.run(KernelRequest::spmm(a, b)
                            .withMethod(Method::DualSparse)
                            .withSpmmFormat(SpmmFormat::Narrow)
                            .withResources(res));
        ASSERT_TRUE(r.d) << "workers " << w;
        expectMatricesEqual(ref, *r.d, "worker sweep");
    }
}

TEST(Spmm, DenseBackendErrorBounded)
{
    Session session;
    Rng rng(0x3c);
    const Matrix<float> a = randomSparseMatrix(48, 64, 0.95, rng);
    const Matrix<float> b = randomSparseMatrix(64, 8, 0.0, rng);
    const Matrix<float> ref = refSpmmNarrow(a, b, DataType::Fp16);
    const KernelReport dense = session.run(
        KernelRequest::spmm(a, b).withMethod(Method::Dense));
    ASSERT_TRUE(dense.d);
    for (int r = 0; r < ref.rows(); ++r)
        for (int c = 0; c < ref.cols(); ++c)
            EXPECT_NEAR(ref.at(r, c), dense.d->at(r, c), 5e-2)
                << "(" << r << ", " << c << ")";
}

TEST(Spmm, AggregatedProfileMatchesDirectTile32Profile)
{
    Rng rng(0x77);
    for (int rows : {32, 40, 57, 128}) {
        const Matrix<float> a =
            randomSparseMatrix(rows, 96, 0.95, rng);
        const SparsityProfile a8 =
            SparsityProfile::fromMatrixAWord(a, 8);
        const SparsityProfile a32 = aggregateSpmmProfile(a8);
        const SparsityProfile direct =
            SparsityProfile::fromMatrixAWord(a, 32);
        ASSERT_EQ(a32.groups(), direct.groups()) << rows;
        ASSERT_EQ(a32.k(), direct.k()) << rows;
        ASSERT_EQ(a32.extent(), direct.extent()) << rows;
        for (int g = 0; g < a32.groups(); ++g)
            for (int64_t kk = 0; kk < a32.k(); ++kk)
                ASSERT_EQ(a32.count(g, kk), direct.count(g, kk))
                    << rows << " group " << g << " k " << kk;
    }
}

TEST(Spmm, AutoSelectionWithinFivePercentOfBestFormat)
{
    Session session;
    Rng rng(0xfe);
    // Concrete matrices on both sides of the crossover, plus the
    // synthetic profile flavor — selection must track the minimum
    // of the two forced-format estimates everywhere.
    std::vector<std::pair<std::string, Matrix<float>>> operands;
    operands.emplace_back("ultra-sparse",
                          randomSparseMatrix(512, 512, 0.995, rng));
    operands.emplace_back("moderate",
                          randomSparseMatrix(512, 512, 0.7, rng));
    for (const auto &[label, a] : operands) {
        const Matrix<float> b =
            randomSparseMatrix(a.cols(), 32, 0.0, rng);
        double t[3] = {0, 0, 0};
        const SpmmFormat formats[3] = {SpmmFormat::Auto,
                                       SpmmFormat::Narrow,
                                       SpmmFormat::Wide};
        for (int i = 0; i < 3; ++i)
            t[i] = session
                       .run(KernelRequest::spmm(a, b)
                                .withMethod(Method::DualSparse)
                                .withSpmmFormat(formats[i])
                                .withFunctional(false))
                       .timeUs();
        EXPECT_LE(t[0], 1.05 * std::min(t[1], t[2])) << label;
    }
    for (double sparsity : {0.999, 0.99, 0.95, 0.8}) {
        double t[3] = {0, 0, 0};
        const SpmmFormat formats[3] = {SpmmFormat::Auto,
                                       SpmmFormat::Narrow,
                                       SpmmFormat::Wide};
        for (int i = 0; i < 3; ++i)
            t[i] = session
                       .run(KernelRequest::spmm(512, 32, 512,
                                                sparsity)
                                .withMethod(Method::DualSparse)
                                .withSpmmFormat(formats[i])
                                .withSeed(11))
                       .timeUs();
        EXPECT_LE(t[0], 1.05 * std::min(t[1], t[2]))
            << "sparsity " << sparsity;
    }
}

TEST(Spmm, PlanEstimateMatchesExecutedTime)
{
    Session session;
    Rng rng(0x21);
    const Matrix<float> a = randomSparseMatrix(256, 256, 0.99, rng);
    const Matrix<float> b = randomSparseMatrix(256, 32, 0.0, rng);
    // Method::Auto computes the plan-stage estimate; at 99% sparsity
    // the dual-sparse SpMM wins the dispatch. Estimate and execution
    // fold the same per-strip counts through one shared routine, so
    // the planning estimate is exact, not approximate.
    const KernelReport r =
        session.run(KernelRequest::spmm(a, b));
    EXPECT_EQ(r.method, Method::DualSparse);
    EXPECT_GT(r.planned_us, 0.0);
    EXPECT_NEAR(r.planned_us, r.timeUs(), 1e-9);
}

TEST(Spmm, HybridPartitionsAtStripGranularity)
{
    Session session;
    Rng rng(0x8d);
    // Dense 8-row strips alternating with near-empty ones: the split
    // must route the dense strips off the dual-sparse kernel without
    // ever cutting through a strip.
    const int m = 128, k = 256, n = 16;
    Matrix<float> a(m, k);
    for (int r = 0; r < m; ++r) {
        const double density = (r / 8) % 2 ? 0.005 : 0.6;
        for (int c = 0; c < k; ++c)
            if (rng.bernoulli(density)) {
                const float v = rng.uniformFloat(-1.0f, 1.0f);
                a.at(r, c) = (v == 0.0f) ? 0.5f : v;
            }
    }
    const Matrix<float> b = randomSparseMatrix(k, n, 0.0, rng);
    const KernelReport hyb = session.run(
        KernelRequest::spmm(a, b).withMethod(Method::Hybrid));
    ASSERT_TRUE(hyb.d);
    EXPECT_NE(hyb.stats.name.find("hybrid"), std::string::npos)
        << hyb.stats.name;
    // Classes may route to the dense backend, whose accumulation
    // order differs — float tolerance, not bitwise.
    const Matrix<float> ref = refSpmmNarrow(a, b, DataType::Fp16);
    for (int r = 0; r < m; ++r)
        for (int c = 0; c < n; ++c)
            EXPECT_NEAR(ref.at(r, c), hyb.d->at(r, c), 5e-2)
                << "(" << r << ", " << c << ")";
}

} // namespace
} // namespace dstc
