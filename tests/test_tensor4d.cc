#include "tensor/tensor4d.h"

#include <gtest/gtest.h>

namespace dstc {
namespace {

TEST(Tensor4d, ConstructAndIndex)
{
    Tensor4d t(2, 3, 4, 5);
    EXPECT_EQ(t.n(), 2);
    EXPECT_EQ(t.c(), 3);
    EXPECT_EQ(t.h(), 4);
    EXPECT_EQ(t.w(), 5);
    EXPECT_EQ(t.size(), 120u);
    t.at(1, 2, 3, 4) = 7.0f;
    EXPECT_FLOAT_EQ(t.at(1, 2, 3, 4), 7.0f);
    EXPECT_FLOAT_EQ(t.at(0, 0, 0, 0), 0.0f);
}

TEST(Tensor4d, NchwLayoutIsContiguous)
{
    Tensor4d t(1, 2, 2, 2);
    float v = 0.0f;
    for (int c = 0; c < 2; ++c)
        for (int h = 0; h < 2; ++h)
            for (int w = 0; w < 2; ++w)
                t.at(0, c, h, w) = v++;
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_FLOAT_EQ(t.data()[i], static_cast<float>(i));
}

TEST(Tensor4d, Sparsity)
{
    Tensor4d t(1, 1, 2, 2);
    EXPECT_DOUBLE_EQ(t.sparsity(), 1.0);
    t.at(0, 0, 0, 0) = 1.0f;
    EXPECT_DOUBLE_EQ(t.sparsity(), 0.75);
}

TEST(Tensor4d, RandomSparseHitsTarget)
{
    Rng rng(9);
    Tensor4d t = randomSparseTensor(2, 8, 32, 32, 0.6, rng);
    EXPECT_NEAR(t.sparsity(), 0.6, 0.02);
}

} // namespace
} // namespace dstc
