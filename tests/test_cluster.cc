/**
 * @file
 * Cluster determinism and placement tests: the sharded multi-device
 * front end must keep the PR 2-4 contract — every report bitwise
 * identical to serial single-Session execution on the placed
 * device's config — for every device count, policy and worker
 * count, while the cost-model scheduler actually exploits
 * heterogeneous device speed.
 */
#include "core/cluster.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

void
expectStatsBitwiseEqual(const KernelStats &a, const KernelStats &b,
                        const std::string &context)
{
    EXPECT_DOUBLE_EQ(a.compute_us, b.compute_us) << context;
    EXPECT_DOUBLE_EQ(a.memory_us, b.memory_us) << context;
    EXPECT_DOUBLE_EQ(a.dram_bytes, b.dram_bytes) << context;
    EXPECT_DOUBLE_EQ(a.launch_us, b.launch_us) << context;
    EXPECT_EQ(a.bound, b.bound) << context;
    EXPECT_EQ(a.mix.hmma, b.mix.hmma) << context;
    EXPECT_EQ(a.mix.ohmma_issued, b.mix.ohmma_issued) << context;
    EXPECT_EQ(a.mix.ohmma_skipped, b.mix.ohmma_skipped) << context;
    EXPECT_EQ(a.mix.bohmma, b.mix.bohmma) << context;
    EXPECT_EQ(a.mix.popc, b.mix.popc) << context;
    EXPECT_EQ(a.warp_tiles, b.warp_tiles) << context;
    EXPECT_EQ(a.warp_tiles_skipped, b.warp_tiles_skipped) << context;
    EXPECT_EQ(a.merge_cycles, b.merge_cycles) << context;
}

/** A mixed bag of GEMM and conv requests across methods (the same
 *  shape of workload test_session.cc batches). */
std::vector<KernelRequest>
mixedRequests()
{
    std::vector<KernelRequest> requests;
    uint64_t seed = 1;
    for (Method method : {Method::DualSparse, Method::Dense,
                          Method::ZhuSparse, Method::AmpereSparse,
                          Method::CusparseLike, Method::Auto,
                          Method::Hybrid}) {
        KernelRequest req =
            KernelRequest::gemm(256, 256, 256, 0.6, 0.8);
        req.method = method;
        req.seed = seed++;
        requests.push_back(req);
    }
    // A hybrid request whose groups really differ in density
    // (clustered pattern), so the composer's split path rides
    // through every placement/worker/replay pin below.
    KernelRequest hybrid =
        KernelRequest::gemm(512, 256, 256, 0.55, 0.5);
    hybrid.method = Method::Hybrid;
    hybrid.a_cluster = 8.0;
    hybrid.seed = seed++;
    requests.push_back(hybrid);
    ConvShape shape;
    shape.in_c = 32;
    shape.in_h = shape.in_w = 14;
    shape.out_c = 64;
    for (Method method :
         {Method::DualSparse, Method::Dense, Method::ZhuSparse}) {
        KernelRequest req = KernelRequest::conv(shape, 0.7, 0.5);
        req.method = method;
        req.seed = seed++;
        requests.push_back(req);
    }
    return requests;
}

constexpr PlacementPolicy kAllPolicies[] = {
    PlacementPolicy::CostModel, PlacementPolicy::RoundRobin,
    PlacementPolicy::StaticShard};

TEST(ClusterTest, EveryPolicyDeviceCountAndWorkerCountIsBitwise)
{
    // The acceptance grid: device counts {1, 2, 4} x all three
    // policies x worker counts {1, 4}, every report bitwise
    // identical to serial single-Session execution.
    Session serial_session;
    std::vector<KernelReport> serial;
    for (const KernelRequest &req : mixedRequests())
        serial.push_back(serial_session.run(req));

    for (size_t devices : {1u, 2u, 4u}) {
        for (PlacementPolicy policy : kAllPolicies) {
            for (int workers : {1, 4}) {
                ClusterOptions opts;
                opts.devices.assign(devices, GpuConfig::v100());
                opts.policy = policy;
                opts.num_threads = workers;
                Cluster cluster(opts);
                std::vector<KernelReport> reports =
                    cluster.runBatch(mixedRequests());
                ASSERT_EQ(reports.size(), serial.size());
                for (size_t i = 0; i < reports.size(); ++i) {
                    const std::string context =
                        std::to_string(devices) + " devices, " +
                        placementPolicyToken(policy) + ", " +
                        std::to_string(workers) + " workers, req " +
                        std::to_string(i);
                    expectStatsBitwiseEqual(reports[i].stats,
                                            serial[i].stats, context);
                    EXPECT_EQ(reports[i].method, serial[i].method)
                        << context;
                    EXPECT_EQ(reports[i].backend, serial[i].backend)
                        << context;
                    EXPECT_GE(reports[i].device, 0) << context;
                    EXPECT_LT(reports[i].device,
                              static_cast<int>(devices))
                        << context;
                }
            }
        }
    }
}

TEST(ClusterTest, HeterogeneousReportsMatchPlacedDeviceSerially)
{
    // On a mixed-config cluster every report must be reproducible by
    // a fresh single Session with the placed device's GpuConfig.
    ClusterOptions opts;
    opts.devices = {GpuConfig::v100(), GpuConfig::a100Like(),
                    GpuConfig::futureGpu()};
    for (PlacementPolicy policy : kAllPolicies) {
        opts.policy = policy;
        Cluster cluster(opts);
        std::vector<KernelRequest> requests = mixedRequests();
        std::vector<KernelReport> reports =
            cluster.runBatch(mixedRequests());
        ASSERT_EQ(reports.size(), requests.size());
        for (size_t i = 0; i < reports.size(); ++i) {
            ASSERT_GE(reports[i].device, 0);
            ASSERT_LT(reports[i].device, 3);
            Session reference(
                cluster.deviceConfig(reports[i].device));
            KernelReport serial = reference.run(requests[i]);
            expectStatsBitwiseEqual(
                reports[i].stats, serial.stats,
                std::string(placementPolicyToken(policy)) +
                    ", req " + std::to_string(i));
            EXPECT_EQ(reports[i].backend, serial.backend);
        }
    }
}

TEST(ClusterTest, PlacementIsDeterministic)
{
    // Placement is a pure function of the submission sequence: the
    // worker count, repeated runs and a fresh cluster all see the
    // same schedule.
    for (PlacementPolicy policy : kAllPolicies) {
        std::vector<std::vector<int>> schedules;
        for (int workers : {1, 4, 1}) {
            ClusterOptions opts;
            opts.devices = {GpuConfig::v100(), GpuConfig::futureGpu(),
                            GpuConfig::a100Like()};
            opts.policy = policy;
            opts.num_threads = workers;
            Cluster cluster(opts);
            std::vector<int> schedule;
            for (const KernelReport &report :
                 cluster.runBatch(mixedRequests()))
                schedule.push_back(report.device);
            schedules.push_back(std::move(schedule));
        }
        EXPECT_EQ(schedules[0], schedules[1])
            << placementPolicyToken(policy);
        EXPECT_EQ(schedules[0], schedules[2])
            << placementPolicyToken(policy);
    }
}

TEST(ClusterTest, CostModelShiftsLoadToTheFasterDevice)
{
    // 12 identical timing requests on {V100, future-GPU}: the ETF
    // queue must hand the faster device the larger share, and beat
    // round-robin's simulated makespan.
    std::vector<KernelRequest> requests;
    for (int i = 0; i < 12; ++i)
        requests.push_back(
            KernelRequest::gemm(1024, 1024, 1024, 0.7, 0.9));

    auto makespan = [](const std::vector<KernelReport> &reports) {
        double device_us[2] = {0.0, 0.0};
        for (const KernelReport &r : reports)
            device_us[r.device] += r.stats.timeUs();
        return std::max(device_us[0], device_us[1]);
    };

    ClusterOptions opts;
    opts.devices = {GpuConfig::v100(), GpuConfig::futureGpu()};
    opts.policy = PlacementPolicy::CostModel;
    Cluster cost(opts);
    std::vector<KernelReport> cost_reports = cost.runBatch(requests);
    EXPECT_GT(cost.load(1).placed, cost.load(0).placed);
    EXPECT_GT(cost.load(1).estimated_busy_us, 0.0);

    opts.policy = PlacementPolicy::RoundRobin;
    Cluster rr(opts);
    std::vector<KernelReport> rr_reports = rr.runBatch(requests);
    EXPECT_EQ(rr.load(0).placed, rr.load(1).placed);
    EXPECT_LT(makespan(cost_reports), makespan(rr_reports));
}

TEST(ClusterTest, StaticShardIsStableAcrossClustersAndOrder)
{
    // The shard key is structural: the same request lands on the
    // same device in any cluster of the same size, regardless of
    // submission order or what else is in the batch.
    ClusterOptions opts;
    opts.devices = {GpuConfig::v100(), GpuConfig::v100(),
                    GpuConfig::v100()};
    opts.policy = PlacementPolicy::StaticShard;
    Cluster first(opts);
    Cluster second(opts);

    std::vector<KernelRequest> forward = mixedRequests();
    std::vector<KernelRequest> reversed(forward.rbegin(),
                                        forward.rend());
    std::vector<KernelReport> a = first.runBatch(forward);
    std::vector<KernelReport> b = second.runBatch(reversed);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].device, b[a.size() - 1 - i].device)
            << "request " << i;
}

TEST(ClusterTest, SchedulerAccountingIsConsistent)
{
    ClusterOptions opts;
    opts.devices = {GpuConfig::v100(), GpuConfig::a100Like()};
    Cluster cluster(opts);
    const size_t n = mixedRequests().size();
    cluster.runBatch(mixedRequests());
    int64_t placed = 0, completed = 0;
    for (size_t d = 0; d < cluster.numDevices(); ++d) {
        DeviceLoad load = cluster.load(d);
        placed += load.placed;
        completed += load.completed;
        EXPECT_GE(load.completed, 0);
        EXPECT_EQ(load.placed, load.completed) << "device " << d;
    }
    EXPECT_EQ(placed, static_cast<int64_t>(n));
    EXPECT_EQ(completed, static_cast<int64_t>(n));
}

TEST(ClusterTest, EstimatesAreConfigKeyedInTheSharedCache)
{
    // The cluster-estimate cache family folds the device's machine
    // parameters into its key (CacheKey::gpuConfig): the same
    // request estimated on two configs must yield two distinct
    // cached values — a key collision would silently hand device 1
    // device 0's estimate and corrupt placement.
    ClusterOptions opts;
    opts.devices = {GpuConfig::v100(), GpuConfig::futureGpu()};
    Cluster cluster(opts);
    KernelRequest req = KernelRequest::gemm(512, 512, 512, 0.8, 0.9);
    req.method = Method::DualSparse;
    const double v100_us = cluster.estimateOn(0, req);
    const double future_us = cluster.estimateOn(1, req);
    EXPECT_GT(v100_us, 0.0);
    EXPECT_GT(future_us, 0.0);
    EXPECT_NE(v100_us, future_us);
    EXPECT_LT(future_us, v100_us); // the faster machine estimates less
    // Cached: re-asking must reproduce the per-config values.
    EXPECT_DOUBLE_EQ(cluster.estimateOn(0, req), v100_us);
    EXPECT_DOUBLE_EQ(cluster.estimateOn(1, req), future_us);

    // Identical configs fold to identical keys: a homogeneous pair
    // estimates once and shares the entry.
    ClusterOptions same;
    same.devices = {GpuConfig::v100(), GpuConfig::v100()};
    Cluster homogeneous(same);
    const double first = homogeneous.estimateOn(0, req);
    const auto before = homogeneous.encodingCache().counters();
    EXPECT_DOUBLE_EQ(homogeneous.estimateOn(1, req), first);
    const auto after = homogeneous.encodingCache().counters();
    EXPECT_EQ(before.misses, after.misses);
    EXPECT_GT(after.hits, before.hits);
}

TEST(ClusterTest, SharedCacheDeduplicatesEncodingsAcrossDevices)
{
    // One functional operand pair submitted across a heterogeneous
    // cluster: the two-level encodings are pure in the operand
    // contents, so whichever device encodes first, the others hit.
    Rng rng(401);
    Matrix<float> a = randomSparseMatrix(96, 96, 0.7, rng);
    Matrix<float> b = randomSparseMatrix(96, 96, 0.7, rng);
    ClusterOptions opts;
    opts.devices = {GpuConfig::v100(), GpuConfig::futureGpu()};
    opts.policy = PlacementPolicy::RoundRobin; // one per device
    Cluster cluster(opts);
    std::vector<KernelRequest> requests;
    for (int i = 0; i < 2; ++i) {
        KernelRequest req = KernelRequest::gemm(a, b);
        req.method = Method::DualSparse;
        requests.push_back(req);
    }
    std::vector<KernelReport> reports =
        cluster.runBatch(std::move(requests));
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_NE(reports[0].device, reports[1].device);
    // Both computed the same product (values are machine-independent).
    ASSERT_NE(reports[0].d, nullptr);
    ASSERT_NE(reports[1].d, nullptr);
    EXPECT_LT(maxAbsDiff(*reports[0].d, refGemmFp16(a, b)), 1e-5);
    EXPECT_EQ(reports[0].d->data(), reports[1].d->data());
    // And at least one request was served encodings from the cache.
    EXPECT_TRUE(reports[0].encode_cache_hit ||
                reports[1].encode_cache_hit);
}

TEST(ClusterTest, DestructionDrainsOutstandingSubmits)
{
    // Destroying a Cluster with un-consumed futures must drain the
    // queued work while the sessions and scheduler are still alive
    // (the pool is declared last for exactly this), and the futures
    // must stay valid afterwards.
    std::vector<std::future<KernelReport>> orphans;
    {
        ClusterOptions opts;
        opts.devices = {GpuConfig::v100(), GpuConfig::v100()};
        opts.num_threads = 2;
        Cluster cluster(opts);
        for (uint64_t seed = 1; seed <= 4; ++seed) {
            KernelRequest req =
                KernelRequest::gemm(256, 256, 256, 0.6, 0.8);
            req.method = Method::DualSparse;
            req.seed = seed;
            orphans.push_back(cluster.submit(req));
        }
    } // ~Cluster with work possibly still queued
    for (auto &future : orphans)
        EXPECT_GT(future.get().timeUs(), 0.0);
}

TEST(ClusterTest, EmptyBatchIsANoOp)
{
    ClusterOptions opts;
    opts.devices = {GpuConfig::v100(), GpuConfig::v100()};
    Cluster cluster(opts);
    EXPECT_TRUE(cluster.submitBatch({}).empty());
    EXPECT_TRUE(cluster.runBatch({}).empty());
    for (size_t d = 0; d < cluster.numDevices(); ++d) {
        EXPECT_EQ(cluster.load(d).placed, 0);
        EXPECT_EQ(cluster.load(d).completed, 0);
    }
}

TEST(ClusterTest, SubmitBatchFuturesAreIndexAligned)
{
    // Functional requests with distinct operands: each future must
    // return its own product (the test_session.cc guarantee, lifted
    // to the cluster).
    Rng rng(402);
    std::vector<Matrix<float>> as, bs;
    for (int i = 0; i < 4; ++i) {
        as.push_back(randomSparseMatrix(48, 48, 0.5, rng));
        bs.push_back(randomSparseMatrix(48, 48, 0.5, rng));
    }
    ClusterOptions opts;
    opts.devices = {GpuConfig::v100(), GpuConfig::a100Like()};
    Cluster cluster(opts);
    std::vector<KernelRequest> requests;
    for (int i = 0; i < 4; ++i) {
        KernelRequest req = KernelRequest::gemm(as[i], bs[i]);
        req.method = Method::DualSparse;
        requests.push_back(req);
    }
    std::vector<KernelReport> reports =
        cluster.runBatch(std::move(requests));
    for (int i = 0; i < 4; ++i) {
        ASSERT_NE(reports[i].d, nullptr);
        EXPECT_LT(maxAbsDiff(*reports[i].d, refGemmFp16(as[i], bs[i])),
                  1e-5)
            << i;
    }
}

} // namespace
} // namespace dstc
