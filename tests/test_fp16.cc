#include "common/fp16.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dstc {
namespace {

TEST(Fp16, KnownBitPatterns)
{
    EXPECT_EQ(floatToHalfBits(0.0f), 0x0000);
    EXPECT_EQ(floatToHalfBits(-0.0f), 0x8000);
    EXPECT_EQ(floatToHalfBits(1.0f), 0x3c00);
    EXPECT_EQ(floatToHalfBits(-1.0f), 0xbc00);
    EXPECT_EQ(floatToHalfBits(2.0f), 0x4000);
    EXPECT_EQ(floatToHalfBits(0.5f), 0x3800);
    EXPECT_EQ(floatToHalfBits(65504.0f), 0x7bff); // max finite half
}

TEST(Fp16, Overflow)
{
    EXPECT_EQ(floatToHalfBits(65536.0f), 0x7c00); // +inf
    EXPECT_EQ(floatToHalfBits(-65536.0f), 0xfc00);
    EXPECT_EQ(floatToHalfBits(std::numeric_limits<float>::infinity()),
              0x7c00);
}

TEST(Fp16, NanStaysNan)
{
    const uint16_t bits =
        floatToHalfBits(std::numeric_limits<float>::quiet_NaN());
    EXPECT_TRUE(std::isnan(halfBitsToFloat(bits)));
}

TEST(Fp16, SubnormalHalves)
{
    // Smallest positive subnormal half: 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(floatToHalfBits(tiny), 0x0001);
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x0001), tiny);
    // Largest subnormal: (1023/1024) * 2^-14.
    const float big_sub = std::ldexp(1023.0f / 1024.0f, -14);
    EXPECT_EQ(floatToHalfBits(big_sub), 0x03ff);
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x03ff), big_sub);
    // Below half the smallest subnormal flushes to zero.
    EXPECT_EQ(floatToHalfBits(std::ldexp(1.0f, -26)), 0x0000);
}

TEST(Fp16, RoundToNearestEven)
{
    // 1 + 2^-11 rounds to 1.0 (ties to even mantissa).
    EXPECT_EQ(floatToHalfBits(1.0f + std::ldexp(1.0f, -11)), 0x3c00);
    // 1 + 3*2^-11 rounds up to 1 + 2^-10.
    EXPECT_EQ(floatToHalfBits(1.0f + 3 * std::ldexp(1.0f, -11)),
              0x3c02);
}

TEST(Fp16, AllHalfBitPatternsRoundTrip)
{
    // Every finite half converts to float and back exactly.
    for (uint32_t bits = 0; bits < 0x10000; ++bits) {
        const uint16_t h = static_cast<uint16_t>(bits);
        const uint32_t exp = (h >> 10) & 0x1f;
        if (exp == 0x1f)
            continue; // inf/NaN handled elsewhere
        const float f = halfBitsToFloat(h);
        EXPECT_EQ(floatToHalfBits(f), h) << "bits=" << bits;
    }
}

TEST(Fp16, RoundTripIsIdempotent)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const float x = rng.uniformFloat(-100.0f, 100.0f);
        const float once = roundToFp16(x);
        EXPECT_EQ(roundToFp16(once), once);
        // Rounding error is bounded by half an ulp (~2^-11 relative).
        EXPECT_NEAR(once, x, std::fabs(x) * 0x1.0p-10 + 1e-7f);
    }
}

TEST(Fp16, ClassInterface)
{
    Fp16 h(3.140625f); // exactly representable
    EXPECT_FLOAT_EQ(h.toFloat(), 3.140625f);
    EXPECT_EQ(Fp16::fromBits(h.bits()), h);
    EXPECT_EQ(Fp16().toFloat(), 0.0f);
}

} // namespace
} // namespace dstc
