/**
 * @file
 * Shared-cache Session tests: multiple Sessions over different
 * GpuConfigs sharing one EncodingCache (and one worker pool) — the
 * mode a Cluster builds its per-device Sessions in. Encodings must
 * dedup across devices, config-dependent keys must never collide
 * across configs, the LRU/byte bounds must hold under concurrent
 * submission, and each Session must count its own hit rate.
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/cluster.h"
#include "core/session.h"
#include "core/thread_pool.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

/** Synthetic timing requests over a few repeated operating points. */
std::vector<KernelRequest>
repeatedPoints()
{
    std::vector<KernelRequest> requests;
    for (int round = 0; round < 3; ++round) {
        for (uint64_t seed : {1, 2, 3}) {
            KernelRequest req =
                KernelRequest::gemm(256, 256, 256, 0.7, 0.9);
            req.method = Method::DualSparse;
            req.seed = seed;
            requests.push_back(req);
        }
    }
    return requests;
}

TEST(SharedCacheTest, ConcurrentSessionsShareEncodingsAndStayExact)
{
    // Two Sessions, two configs, one cache and one pool; both batch
    // the same requests concurrently. Results must be bitwise
    // identical to private-cache solo Sessions of the same configs,
    // and the shared cache must have built each encoding once.
    EncodingCache cache;
    ThreadPool pool(4);
    SessionOptions v100_opts;
    v100_opts.shared_cache = &cache;
    v100_opts.shared_pool = &pool;
    SessionOptions future_opts = v100_opts;
    future_opts.config = GpuConfig::futureGpu();
    Session v100(v100_opts);
    Session future(future_opts);

    auto v100_futures = v100.submitBatch(repeatedPoints());
    auto future_futures = future.submitBatch(repeatedPoints());

    Session v100_solo;
    Session future_solo(GpuConfig::futureGpu());
    std::vector<KernelRequest> requests = repeatedPoints();
    for (size_t i = 0; i < requests.size(); ++i) {
        KernelReport shared_report = v100_futures[i].get();
        KernelReport solo_report = v100_solo.run(requests[i]);
        EXPECT_DOUBLE_EQ(shared_report.stats.timeUs(),
                         solo_report.stats.timeUs())
            << "v100 req " << i;
        shared_report = future_futures[i].get();
        solo_report = future_solo.run(requests[i]);
        EXPECT_DOUBLE_EQ(shared_report.stats.timeUs(),
                         solo_report.stats.timeUs())
            << "future req " << i;
    }

    // 3 distinct operating points; profile synthesis is config-
    // independent, so 18 requests -> 3 profile builds, rest hits.
    EncodingCache::Counters counters = cache.counters();
    EXPECT_EQ(counters.misses, 3);
    EXPECT_EQ(counters.hits, 15);

    // Per-device hit accounting: both sessions ran 9 requests, and
    // between them 15 of the 18 were cache-served.
    Session::RequestCounters v100_counters = v100.requestCounters();
    Session::RequestCounters future_counters =
        future.requestCounters();
    EXPECT_EQ(v100_counters.requests, 9);
    EXPECT_EQ(future_counters.requests, 9);
    EXPECT_EQ(v100_counters.encode_cache_hits +
                  future_counters.encode_cache_hits,
              15);
    // Each session repeated its own points twice after first sight,
    // so each saw at least 6 hits itself.
    EXPECT_GE(v100_counters.encode_cache_hits, 6);
    EXPECT_GE(future_counters.encode_cache_hits, 6);
}

TEST(SharedCacheTest, NoCrossConfigKeyCollisions)
{
    // CacheKey::gpuConfig must separate configs: identical payload,
    // different machines, different digests (and v100() must equal
    // itself field for field).
    KernelRequest req = KernelRequest::gemm(128, 128, 128, 0.5, 0.5);
    const uint64_t digest = requestShardKey(req);
    const uint64_t v100_key = CacheKey("probe")
                                  .u64(digest)
                                  .gpuConfig(GpuConfig::v100())
                                  .value();
    const uint64_t v100_again = CacheKey("probe")
                                    .u64(digest)
                                    .gpuConfig(GpuConfig::v100())
                                    .value();
    const uint64_t a100_key = CacheKey("probe")
                                  .u64(digest)
                                  .gpuConfig(GpuConfig::a100Like())
                                  .value();
    const uint64_t future_key = CacheKey("probe")
                                    .u64(digest)
                                    .gpuConfig(GpuConfig::futureGpu())
                                    .value();
    EXPECT_EQ(v100_key, v100_again);
    EXPECT_NE(v100_key, a100_key);
    EXPECT_NE(v100_key, future_key);
    EXPECT_NE(a100_key, future_key);

    // End to end: the same request through two shared-cache Sessions
    // of different configs must time differently — config-correct
    // results prove no config-dependent value was reused across
    // configs.
    EncodingCache cache;
    SessionOptions opts;
    opts.shared_cache = &cache;
    Session v100(opts);
    opts.config = GpuConfig::futureGpu();
    Session future(opts);
    KernelRequest timing =
        KernelRequest::gemm(1024, 1024, 1024, 0.8, 0.8);
    timing.method = Method::DualSparse;
    const double v100_us = v100.run(timing).stats.timeUs();
    const double future_us = future.run(timing).stats.timeUs();
    EXPECT_GT(v100_us, future_us);
    // ... while the (config-independent) profile pair was shared:
    // one miss, one hit across the two sessions.
    EXPECT_EQ(cache.counters().misses, 1);
    EXPECT_EQ(cache.counters().hits, 1);
}

TEST(SharedCacheTest, LruAndByteBoundsHoldUnderConcurrentBatches)
{
    // A deliberately tiny shared cache under two concurrent batches:
    // the entry bound and byte bound must hold once the batches
    // drain, and evictions must be counted.
    EncodingCache cache(4, 64 * 1024);
    ThreadPool pool(4);
    SessionOptions opts;
    opts.shared_cache = &cache;
    opts.shared_pool = &pool;
    Session a(opts);
    opts.config = GpuConfig::a100Like();
    Session b(opts);

    std::vector<KernelRequest> requests;
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        KernelRequest req =
            KernelRequest::gemm(512, 512, 512, 0.6, 0.8);
        req.method = Method::DualSparse;
        req.seed = seed;
        requests.push_back(req);
    }
    auto a_futures = a.submitBatch(requests);
    auto b_futures = b.submitBatch(requests);
    for (auto &f : a_futures)
        f.get();
    for (auto &f : b_futures)
        f.get();

    EXPECT_LE(cache.entries(), 4u);
    EXPECT_LE(cache.totalBytes(), 64u * 1024u);
    EXPECT_GT(cache.counters().evictions, 0);
    EXPECT_EQ(a.requestCounters().requests, 12);
    EXPECT_EQ(b.requestCounters().requests, 12);
}

TEST(SharedCacheTest, SharedPoolIsReusedNotOwned)
{
    // Sessions in shared-pool mode must enqueue on the caller's pool
    // (no private pool spawn) and survive interleaved submits.
    EncodingCache cache;
    ThreadPool pool(2);
    SessionOptions opts;
    opts.shared_pool = &pool;
    opts.shared_cache = &cache;
    opts.num_threads = 99; // must be ignored in shared-pool mode
    Session first(opts);
    Session second(opts);
    std::vector<std::future<KernelReport>> futures;
    for (int i = 0; i < 6; ++i) {
        KernelRequest req = KernelRequest::gemm(128, 128, 128, 0.5,
                                                0.5);
        req.method = Method::DualSparse;
        req.seed = static_cast<uint64_t>(i);
        futures.push_back((i % 2 ? second : first).submit(req));
    }
    for (auto &f : futures)
        EXPECT_GT(f.get().timeUs(), 0.0);
}

} // namespace
} // namespace dstc
