#include "core/kernel_registry.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/session.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

class KernelRegistryTest : public ::testing::Test
{
  protected:
    KernelRequest
    convRequest() const
    {
        ConvShape shape;
        shape.in_c = 32;
        shape.in_h = shape.in_w = 14;
        shape.out_c = 32;
        KernelRequest req = KernelRequest::conv(shape, 0.7, 0.5);
        return req;
    }

    Session session_;
};

TEST_F(KernelRegistryTest, DefaultRegistryEnumeratesSixBackends)
{
    const KernelRegistry &registry = session_.registry();
    ASSERT_EQ(registry.backends().size(), 6u);

    std::set<Method> methods;
    std::set<std::string> names;
    for (const auto &backend : registry.backends()) {
        methods.insert(backend->method());
        names.insert(backend->name());
    }
    const std::set<Method> expected_methods = {
        Method::DualSparse,   Method::Dense,
        Method::ZhuSparse,    Method::AmpereSparse,
        Method::CusparseLike, Method::Hybrid};
    EXPECT_EQ(methods, expected_methods);
    const std::set<std::string> expected_names = {
        "dual-sparse",  "dense-cutlass", "zhu-vectorwise",
        "ampere-2to4",  "cusparse-like", "hybrid-partition"};
    EXPECT_EQ(names, expected_names);
}

TEST_F(KernelRegistryTest, FindByMethod)
{
    const KernelRegistry &registry = session_.registry();
    for (Method m : {Method::DualSparse, Method::Dense,
                     Method::ZhuSparse, Method::AmpereSparse,
                     Method::CusparseLike}) {
        const Backend *backend = registry.find(m);
        ASSERT_NE(backend, nullptr) << methodName(m);
        EXPECT_EQ(backend->method(), m);
    }
    EXPECT_EQ(registry.find(Method::Auto), nullptr);
}

TEST_F(KernelRegistryTest, SupportMatrix)
{
    const KernelRegistry &registry = session_.registry();
    KernelRequest gemm = KernelRequest::gemm(64, 64, 64);
    KernelRequest conv = convRequest();

    for (const auto &backend : registry.backends())
        EXPECT_TRUE(backend->supports(gemm)) << backend->name();

    // GEMM-only baselines reject convolution.
    EXPECT_FALSE(registry.find(Method::AmpereSparse)->supports(conv));
    EXPECT_FALSE(registry.find(Method::CusparseLike)->supports(conv));
    EXPECT_TRUE(registry.find(Method::DualSparse)->supports(conv));
    EXPECT_TRUE(registry.find(Method::Dense)->supports(conv));
    EXPECT_TRUE(registry.find(Method::ZhuSparse)->supports(conv));

    // The dual-side design has no explicit-im2col variant.
    conv.lowering = Lowering::Explicit;
    EXPECT_FALSE(registry.find(Method::DualSparse)->supports(conv));
    EXPECT_TRUE(registry.find(Method::Dense)->supports(conv));
}

TEST_F(KernelRegistryTest, GemmCandidatesExcludeLossyBackends)
{
    // Auto means "fastest way to compute this exact product", so the
    // structurally pruning baselines are never candidates for GEMM.
    KernelRequest gemm = KernelRequest::gemm(256, 256, 256, 0.9, 0.9);
    std::set<Method> methods;
    for (const Backend *backend :
         session_.registry().candidates(gemm))
        methods.insert(backend->method());
    const std::set<Method> expected = {
        Method::DualSparse, Method::Dense, Method::CusparseLike};
    EXPECT_EQ(methods, expected);
}

TEST_F(KernelRegistryTest, PreEncodedOperandsOnlyRouteToDualSparse)
{
    // Two-level encoded operands are only consumable by the
    // dual-sparse kernel; every other backend must reject them so
    // Auto can never pick a plan that would drop the operands.
    Matrix<float> dense(64, 64);
    TwoLevelBitmapMatrix enc =
        TwoLevelBitmapMatrix::encode(dense, 32, 32, Major::Col);
    TwoLevelBitmapMatrix enc_b =
        TwoLevelBitmapMatrix::encode(dense, 32, 32, Major::Row);
    KernelRequest req;
    req.kind = KernelRequest::Kind::Gemm;
    req.m = req.n = req.k = 64;
    req.a_encoded = &enc;
    req.b_encoded = &enc_b;
    for (const auto &backend : session_.registry().backends()) {
        // The hybrid composer also accepts the pair — it routes every
        // class of such a request to the dual-sparse kernel.
        const bool consumes =
            backend->method() == Method::DualSparse ||
            backend->method() == Method::Hybrid;
        EXPECT_EQ(backend->supports(req), consumes)
            << backend->name();
    }
}

TEST_F(KernelRegistryTest, ExplicitConvAutoExcludesForcedPruneTiming)
{
    // The explicit Single Sparse strategy's timing presumes the
    // fixed 75% weight prune, so Auto (exact dispatch) must not
    // consider it; only the dense backend remains for explicit
    // lowering.
    KernelRequest req = convRequest();
    req.lowering = Lowering::Explicit;
    std::set<Method> methods;
    for (const Backend *backend : session_.registry().candidates(req))
        methods.insert(backend->method());
    EXPECT_EQ(methods, std::set<Method>{Method::Dense});

    // Implicit lowering keeps Single Sparse (it times the weights'
    // actual sparsity) alongside dual and dense.
    req.lowering = Lowering::Implicit;
    methods.clear();
    for (const Backend *backend : session_.registry().candidates(req))
        methods.insert(backend->method());
    const std::set<Method> implicit_expected = {
        Method::DualSparse, Method::Dense, Method::ZhuSparse};
    EXPECT_EQ(methods, implicit_expected);
}

TEST_F(KernelRegistryTest, AutoPicksProfiledWinner)
{
    // Plan each candidate explicitly and check Auto agrees with the
    // fastest estimate.
    KernelRequest req = KernelRequest::gemm(1024, 1024, 1024, 0.7,
                                            0.7);
    double best_us = 0.0;
    Method best_method = Method::Auto;
    for (const Backend *backend : session_.registry().candidates(req)) {
        KernelRequest explicit_req = req;
        explicit_req.method = backend->method();
        const double us = session_.run(explicit_req).timeUs();
        if (best_method == Method::Auto || us < best_us) {
            best_us = us;
            best_method = backend->method();
        }
    }

    req.method = Method::Auto;
    KernelReport report = session_.run(req);
    EXPECT_EQ(report.method, best_method);
    EXPECT_DOUBLE_EQ(report.timeUs(), best_us);
}

TEST_F(KernelRegistryTest, AutoPrefersDualSparseAtHighSparsity)
{
    // The Fig. 21 region where the dual-side design dominates all
    // exact baselines.
    KernelRequest req = KernelRequest::gemm(1024, 1024, 1024, 0.7,
                                            0.7);
    req.method = Method::Auto;
    KernelReport report = session_.run(req);
    EXPECT_EQ(report.method, Method::DualSparse);
    EXPECT_EQ(report.backend, "dual-sparse");
    EXPECT_GT(report.planned_us, 0.0);
}

TEST_F(KernelRegistryTest, AutoPrefersDenseWhenOperandsAreDense)
{
    KernelRequest req = KernelRequest::gemm(1024, 1024, 1024);
    req.method = Method::Auto;
    KernelReport report = session_.run(req);
    EXPECT_EQ(report.method, Method::Dense);
}

TEST_F(KernelRegistryTest, AutoDispatchesConvRequests)
{
    KernelRequest req = convRequest();
    req.method = Method::Auto;
    KernelReport report = session_.run(req);
    EXPECT_GT(report.timeUs(), 0.0);
    // All conv strategies compute the same convolution, so lossy
    // backends stay in the conv candidate set.
    std::set<Method> allowed = {Method::DualSparse, Method::Dense,
                                Method::ZhuSparse};
    EXPECT_TRUE(allowed.count(report.method));
}

TEST_F(KernelRegistryTest, AutoFunctionalGemmMatchesReference)
{
    Rng rng(31);
    Matrix<float> a = randomSparseMatrix(96, 96, 0.6, rng);
    Matrix<float> b = randomSparseMatrix(96, 96, 0.6, rng);
    KernelRequest req = KernelRequest::gemm(a, b);
    req.method = Method::Auto;
    KernelReport report = session_.run(req);
    ASSERT_NE(report.d, nullptr);
    // Whatever backend won, the product must be the exact one.
    EXPECT_LT(maxAbsDiff(*report.d, refGemmFp16(a, b)), 1e-4);
    EXPECT_NE(report.method, Method::ZhuSparse);
    EXPECT_NE(report.method, Method::AmpereSparse);
}

TEST_F(KernelRegistryTest, RegisteringSameMethodReplaces)
{
    KernelRegistry registry = KernelRegistry::withDefaultBackends();
    const Backend *before = registry.find(Method::Dense);
    registry.registerBackend(makeDenseBackend());
    EXPECT_EQ(registry.backends().size(), 6u);
    EXPECT_NE(registry.find(Method::Dense), before);
}

TEST_F(KernelRegistryTest, ExplicitMethodReportsItsBackend)
{
    KernelRequest req = KernelRequest::gemm(256, 256, 256, 0.5, 0.9);
    req.method = Method::AmpereSparse;
    KernelReport report = session_.run(req);
    EXPECT_EQ(report.method, Method::AmpereSparse);
    EXPECT_EQ(report.backend, "ampere-2to4");
    EXPECT_GT(report.timeUs(), 0.0);
}

} // namespace
} // namespace dstc
