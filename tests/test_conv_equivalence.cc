/**
 * @file
 * Equivalence gate of the word-parallel convolution pipeline: for
 * every ConvMethod and worker count, ConvExecutor::run must
 * reproduce the retained scalar reference (runScalar) bit for bit —
 * output values, cycle/instruction stats and traffic alike. This is
 * what lets the bench and CI treat runScalar as the ground truth the
 * fast path may never drift from.
 */
#include "conv/spconv.h"

#include <cstring>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/session.h"
#include "model/sparsity_gen.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

const ConvMethod kAllMethods[] = {
    ConvMethod::DenseExplicit,
    ConvMethod::DenseImplicit,
    ConvMethod::SingleSparseExplicit,
    ConvMethod::SingleSparseImplicit,
    ConvMethod::DualSparseImplicit,
};

/** Bitwise comparison of two stats records (no tolerance). */
void
expectStatsIdentical(const KernelStats &a, const KernelStats &b,
                     const char *label)
{
    EXPECT_EQ(a.name, b.name) << label;
    EXPECT_EQ(a.mix.hmma, b.mix.hmma) << label;
    EXPECT_EQ(a.mix.ohmma_issued, b.mix.ohmma_issued) << label;
    EXPECT_EQ(a.mix.ohmma_skipped, b.mix.ohmma_skipped) << label;
    EXPECT_EQ(a.mix.bohmma, b.mix.bohmma) << label;
    EXPECT_EQ(a.mix.popc, b.mix.popc) << label;
    EXPECT_EQ(a.warp_tiles, b.warp_tiles) << label;
    EXPECT_EQ(a.warp_tiles_skipped, b.warp_tiles_skipped) << label;
    EXPECT_EQ(a.merge_cycles, b.merge_cycles) << label;
    // Doubles compared bitwise: the two paths must run the same
    // arithmetic, not merely land close.
    EXPECT_EQ(std::memcmp(&a.compute_us, &b.compute_us,
                          sizeof(double)),
              0)
        << label << " compute " << a.compute_us << " vs "
        << b.compute_us;
    EXPECT_EQ(std::memcmp(&a.memory_us, &b.memory_us, sizeof(double)),
              0)
        << label;
    EXPECT_EQ(std::memcmp(&a.dram_bytes, &b.dram_bytes,
                          sizeof(double)),
              0)
        << label;
    EXPECT_EQ(std::memcmp(&a.launch_us, &b.launch_us, sizeof(double)),
              0)
        << label;
    EXPECT_EQ(a.bound, b.bound) << label;
}

/** Bitwise comparison of two output tensors. */
void
expectOutputIdentical(const Tensor4d &a, const Tensor4d &b,
                      const char *label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                          a.size() * sizeof(float)),
              0)
        << label;
}

class ConvEquivalenceTest : public ::testing::Test
{
  protected:
    GpuConfig cfg_ = GpuConfig::v100();
    ConvExecutor executor_{cfg_};

    ConvShape
    shape(int c, int hw, int oc, int kernel = 3, int stride = 1,
          int pad = 1, int batch = 1) const
    {
        ConvShape s;
        s.batch = batch;
        s.in_c = c;
        s.in_h = s.in_w = hw;
        s.out_c = oc;
        s.kernel = kernel;
        s.stride = stride;
        s.pad = pad;
        return s;
    }
};

TEST_F(ConvEquivalenceTest, WordPathMatchesScalarForAllMethods)
{
    Rng rng(411);
    ConvShape s = shape(8, 18, 12);
    Tensor4d input =
        reluActivationTensor(1, 8, 18, 18, 0.6, rng);
    Matrix<float> weights = randomSparseMatrix(12, 72, 0.8, rng);

    for (ConvMethod method : kAllMethods) {
        for (int workers : {1, 4}) {
            ConvOptions opts;
            opts.num_workers = workers;
            ConvResult fast =
                executor_.run(input, weights, s, method, opts);
            ConvResult ref =
                executor_.runScalar(input, weights, s, method, opts);
            const std::string label =
                std::string(convMethodName(method)) + " workers=" +
                std::to_string(workers);
            expectOutputIdentical(fast.output, ref.output,
                                  label.c_str());
            expectStatsIdentical(fast.stats, ref.stats,
                                 label.c_str());
        }
    }
}

TEST_F(ConvEquivalenceTest, StridedPaddedBatchedShapesMatch)
{
    Rng rng(412);
    // Strided window (the bit-by-bit gather path), pad 2, batch 2,
    // output width crossing the 64-bit word boundary.
    ConvShape s = shape(3, 70, 5, 5, 2, 2, 2);
    Tensor4d input = reluActivationTensor(2, 3, 70, 70, 0.7, rng);
    Matrix<float> weights = randomSparseMatrix(5, 75, 0.6, rng);

    for (ConvMethod method :
         {ConvMethod::SingleSparseImplicit,
          ConvMethod::DualSparseImplicit}) {
        for (int workers : {1, 4}) {
            ConvOptions opts;
            opts.num_workers = workers;
            ConvResult fast =
                executor_.run(input, weights, s, method, opts);
            ConvResult ref =
                executor_.runScalar(input, weights, s, method, opts);
            expectOutputIdentical(fast.output, ref.output,
                                  convMethodName(method));
            expectStatsIdentical(fast.stats, ref.stats,
                                 convMethodName(method));
        }
    }
}

TEST_F(ConvEquivalenceTest, StrideByPadGridMatchesScalar)
{
    // The word-parallel strided deinterleave (stride mask + PEXT +
    // rank-by-running-popcount) against the per-bit probe gather the
    // scalar reference retains: every stride x pad combination must
    // agree bit for bit, outputs and stats alike, for every worker
    // count. in_w = 29 puts window ends astride the 64-bit word
    // boundary once the kernel offsets shift them.
    Rng rng(416);
    for (int stride : {2, 3}) {
        for (int pad : {0, 1}) {
            ConvShape s = shape(4, 29, 6, 3, stride, pad);
            Tensor4d input =
                reluActivationTensor(1, 4, 29, 29, 0.7, rng);
            Matrix<float> weights =
                randomSparseMatrix(6, 36, 0.8, rng);
            for (ConvMethod method :
                 {ConvMethod::SingleSparseImplicit,
                  ConvMethod::DualSparseImplicit}) {
                for (int workers : {1, 4}) {
                    ConvOptions opts;
                    opts.num_workers = workers;
                    ConvResult fast = executor_.run(input, weights,
                                                    s, method, opts);
                    ConvResult ref = executor_.runScalar(
                        input, weights, s, method, opts);
                    const std::string label =
                        std::string(convMethodName(method)) +
                        " stride=" + std::to_string(stride) +
                        " pad=" + std::to_string(pad) +
                        " workers=" + std::to_string(workers);
                    expectOutputIdentical(fast.output, ref.output,
                                          label.c_str());
                    expectStatsIdentical(fast.stats, ref.stats,
                                         label.c_str());
                }
            }
        }
    }
}

TEST_F(ConvEquivalenceTest, WorkerCountDoesNotChangeResults)
{
    Rng rng(413);
    ConvShape s = shape(6, 20, 10);
    Tensor4d input = reluActivationTensor(1, 6, 20, 20, 0.85, rng);
    Matrix<float> weights = randomSparseMatrix(10, 54, 0.9, rng);

    ConvOptions serial;
    serial.num_workers = 1;
    ConvResult base = executor_.run(input, weights, s,
                                    ConvMethod::DualSparseImplicit,
                                    serial);
    for (int workers : {0, 2, 4, 7}) {
        ConvOptions opts;
        opts.num_workers = workers;
        ConvResult r = executor_.run(
            input, weights, s, ConvMethod::DualSparseImplicit, opts);
        const std::string label =
            "workers=" + std::to_string(workers);
        expectOutputIdentical(r.output, base.output, label.c_str());
        expectStatsIdentical(r.stats, base.stats, label.c_str());
    }
}

TEST_F(ConvEquivalenceTest, OutputStillMatchesDirectConvolution)
{
    Rng rng(414);
    ConvShape s = shape(4, 12, 6);
    Tensor4d input = reluActivationTensor(1, 4, 12, 12, 0.5, rng);
    Matrix<float> weights = randomSparseMatrix(6, 36, 0.7, rng);
    Tensor4d golden = refConv2d(input, weights, s.params());

    ConvResult r = executor_.run(input, weights, s,
                                 ConvMethod::DualSparseImplicit);
    double worst = 0.0;
    for (size_t i = 0; i < golden.size(); ++i)
        worst = std::max(worst,
                         static_cast<double>(std::fabs(
                             r.output.data()[i] - golden.data()[i])));
    EXPECT_LT(worst, 2e-2);
}

TEST_F(ConvEquivalenceTest, SessionConvRequestHonorsWorkerKnob)
{
    Rng rng(415);
    ConvShape s = shape(4, 14, 8);
    Tensor4d input = reluActivationTensor(1, 4, 14, 14, 0.6, rng);
    Matrix<float> weights = randomSparseMatrix(8, 36, 0.8, rng);

    Session session(cfg_);
    KernelRequest req = KernelRequest::conv(input, weights, s)
                            .withMethod(Method::DualSparse);
    req.withResources({.compute_workers = 1});
    KernelReport serial = session.run(req);
    req.withResources({.compute_workers = 4});
    KernelReport pooled = session.run(req);
    ASSERT_TRUE(serial.output && pooled.output);
    expectOutputIdentical(*serial.output, *pooled.output, "session");
    expectStatsIdentical(serial.stats, pooled.stats, "session");
}

} // namespace
} // namespace dstc
