/**
 * @file
 * Serving-subsystem tests: the open-loop front end must keep the
 * cluster determinism contract — same seed, same ServingStats; every
 * executed report bitwise identical to a serial single-Session
 * replay — under every policy, device count and worker count, while
 * admission control, work stealing, micro-batching and the EDF
 * overload guard behave as documented.
 */
#include "serve/serving.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace dstc {
namespace {

/** A small mixed pool: distinct operating points (distinct batch
 *  keys) plus one repeated shape (shared batch key). */
std::vector<KernelRequest>
testPool()
{
    std::vector<KernelRequest> pool;
    for (int i = 0; i < 4; ++i) {
        KernelRequest req = KernelRequest::gemm(
            128 << (i % 2), 128, 128, 0.5 + 0.1 * i, 0.7);
        req.method = Method::DualSparse;
        req.seed = 10 + static_cast<uint64_t>(i);
        pool.push_back(req);
    }
    // A density-partitioned hybrid request in the mix: the replay
    // and worker-invariance pins below must hold when a request's
    // backend is itself a composer (clustered synthetic pattern, so
    // its groups actually differ in density).
    KernelRequest hybrid =
        KernelRequest::gemm(256, 128, 128, 0.6, 0.5);
    hybrid.method = Method::Hybrid;
    hybrid.a_cluster = 8.0;
    hybrid.seed = 21;
    pool.push_back(hybrid);
    ConvShape shape;
    shape.in_c = 32;
    shape.in_h = shape.in_w = 14;
    shape.out_c = 32;
    KernelRequest conv = KernelRequest::conv(shape, 0.8, 0.6);
    conv.method = Method::DualSparse;
    conv.seed = 3;
    pool.push_back(conv);
    return pool;
}

ServingOptions
baseOptions()
{
    ServingOptions opts;
    opts.arrivals.rate_rpms = 300.0;
    opts.arrivals.duration_ms = 1.0;
    opts.arrivals.seed = 5;
    return opts;
}

// ---------------------------------------------------------------- //
// ArrivalGenerator

TEST(ArrivalTest, SameOptionsSameSequence)
{
    ArrivalOptions opts;
    opts.rate_rpms = 500.0;
    opts.duration_ms = 2.0;
    opts.pool_size = 7;
    opts.seed = 42;
    for (TrafficPattern pattern :
         {TrafficPattern::Poisson, TrafficPattern::Bursty}) {
        opts.pattern = pattern;
        const std::vector<Arrival> a =
            ArrivalGenerator(opts).generate();
        const std::vector<Arrival> b =
            ArrivalGenerator(opts).generate();
        ASSERT_EQ(a.size(), b.size());
        ASSERT_FALSE(a.empty());
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].id, b[i].id);
            EXPECT_EQ(a[i].time_us, b[i].time_us); // bitwise
            EXPECT_EQ(a[i].deadline_class, b[i].deadline_class);
            EXPECT_EQ(a[i].pool_index, b[i].pool_index);
        }
    }
}

TEST(ArrivalTest, SequenceIsWellFormed)
{
    ArrivalOptions opts;
    opts.rate_rpms = 800.0;
    opts.duration_ms = 3.0;
    opts.pool_size = 5;
    opts.pattern = TrafficPattern::Bursty;
    const std::vector<Arrival> arrivals =
        ArrivalGenerator(opts).generate();
    ASSERT_FALSE(arrivals.empty());
    double prev = -1.0;
    for (size_t i = 0; i < arrivals.size(); ++i) {
        EXPECT_EQ(arrivals[i].id, static_cast<int64_t>(i));
        EXPECT_GT(arrivals[i].time_us, prev);
        EXPECT_LT(arrivals[i].time_us, opts.duration_ms * 1e3);
        EXPECT_LT(arrivals[i].pool_index, opts.pool_size);
        prev = arrivals[i].time_us;
    }
}

TEST(ArrivalTest, DifferentSeedsDiffer)
{
    ArrivalOptions opts;
    opts.rate_rpms = 500.0;
    opts.duration_ms = 1.0;
    opts.seed = 1;
    const std::vector<Arrival> a = ArrivalGenerator(opts).generate();
    opts.seed = 2;
    const std::vector<Arrival> b = ArrivalGenerator(opts).generate();
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
    EXPECT_TRUE(a.size() != b.size() ||
                a.front().time_us != b.front().time_us);
}

TEST(ArrivalTest, MeanRateTracksRequestForBothPatterns)
{
    ArrivalOptions opts;
    opts.rate_rpms = 1000.0;
    opts.duration_ms = 40.0; // long window so the mean converges
    for (TrafficPattern pattern :
         {TrafficPattern::Poisson, TrafficPattern::Bursty}) {
        opts.pattern = pattern;
        const size_t n = ArrivalGenerator(opts).generate().size();
        const double rate = n / opts.duration_ms;
        EXPECT_NEAR(rate, opts.rate_rpms, 0.15 * opts.rate_rpms)
            << trafficPatternToken(pattern);
    }
}

TEST(ArrivalTest, ZeroDurationYieldsNoArrivals)
{
    ArrivalOptions opts;
    opts.duration_ms = 0.0;
    EXPECT_TRUE(ArrivalGenerator(opts).generate().empty());
}

// ---------------------------------------------------------------- //
// ServingQueue

QueuedRequest
makeQueued(int64_t id, size_t device, double deadline_us,
           uint64_t key = 0)
{
    QueuedRequest q;
    q.id = id;
    q.device = device;
    q.deadline_us = deadline_us;
    q.estimate_us = 1.0;
    q.batch_key = key;
    return q;
}

TEST(ServingQueueTest, RejectPolicyRefusesAtBound)
{
    ServingQueue queue(2, 2, AdmissionPolicy::Reject);
    EXPECT_EQ(queue.admit(makeQueued(0, 0, 10.0), nullptr),
              ServingQueue::Admit::Admitted);
    EXPECT_EQ(queue.admit(makeQueued(1, 1, 10.0), nullptr),
              ServingQueue::Admit::Admitted);
    EXPECT_EQ(queue.admit(makeQueued(2, 0, 10.0), nullptr),
              ServingQueue::Admit::Rejected);
    EXPECT_EQ(queue.totalDepth(), 2u);
}

TEST(ServingQueueTest, ShedPolicyEvictsGlobalOldest)
{
    ServingQueue queue(2, 2, AdmissionPolicy::ShedOldest);
    ASSERT_EQ(queue.admit(makeQueued(0, 1, 10.0), nullptr),
              ServingQueue::Admit::Admitted);
    ASSERT_EQ(queue.admit(makeQueued(1, 0, 10.0), nullptr),
              ServingQueue::Admit::Admitted);
    std::vector<QueuedRequest> shed;
    EXPECT_EQ(queue.admit(makeQueued(2, 0, 10.0), &shed),
              ServingQueue::Admit::Admitted);
    ASSERT_EQ(shed.size(), 1u);
    EXPECT_EQ(shed[0].id, 0); // oldest anywhere, not per-device
    EXPECT_EQ(queue.totalDepth(), 2u);
    EXPECT_TRUE(queue.empty(1));
}

TEST(ServingQueueTest, EdfAndFifoPopOrders)
{
    ServingQueue queue(1, 8, AdmissionPolicy::Reject);
    queue.admit(makeQueued(0, 0, 30.0), nullptr);
    queue.admit(makeQueued(1, 0, 10.0), nullptr);
    queue.admit(makeQueued(2, 0, 20.0), nullptr);
    EXPECT_EQ(queue.pop(0, /*edf=*/true)->id, 1); // earliest deadline
    EXPECT_EQ(queue.pop(0, /*edf=*/true)->id, 2);
    queue.admit(makeQueued(3, 0, 1.0), nullptr);
    EXPECT_EQ(queue.pop(0, /*edf=*/false)->id, 0); // FIFO ignores it
    EXPECT_EQ(queue.pop(0, /*edf=*/false)->id, 3);
    EXPECT_FALSE(queue.pop(0, false).has_value());
}

TEST(ServingQueueTest, BatchMatesMatchKeyOnly)
{
    ServingQueue queue(1, 8, AdmissionPolicy::Reject);
    queue.admit(makeQueued(0, 0, 10.0, 7), nullptr);
    queue.admit(makeQueued(1, 0, 10.0, 9), nullptr);
    queue.admit(makeQueued(2, 0, 5.0, 7), nullptr);
    queue.admit(makeQueued(3, 0, 8.0, 7), nullptr);
    const std::vector<QueuedRequest> mates =
        queue.popBatchMates(0, 7, 2, /*edf=*/true);
    ASSERT_EQ(mates.size(), 2u);
    EXPECT_EQ(mates[0].id, 2); // earliest deadline among key 7
    EXPECT_EQ(mates[1].id, 3);
    EXPECT_EQ(queue.depth(0), 2u); // ids 0 (key 7) and 1 (key 9)
}

TEST(ServingQueueTest, StealTakesLeastUrgentFromDeepestQueue)
{
    ServingQueue queue(3, 16, AdmissionPolicy::Reject);
    queue.admit(makeQueued(0, 1, 50.0), nullptr);
    queue.admit(makeQueued(1, 2, 90.0), nullptr);
    queue.admit(makeQueued(2, 2, 20.0), nullptr);
    size_t donor = 99;
    const std::optional<QueuedRequest> stolen =
        queue.steal(0, &donor);
    ASSERT_TRUE(stolen.has_value());
    EXPECT_EQ(donor, 2u);        // deepest queue
    EXPECT_EQ(stolen->id, 1);    // its latest deadline
    EXPECT_EQ(stolen->device, 0u); // rewritten to the thief
    EXPECT_EQ(queue.depth(2), 1u);
    EXPECT_FALSE(queue.steal(1, nullptr)
                     .has_value() &&
                 queue.totalDepth() == 0);
}

TEST(ServingQueueTest, ZeroDepthBoundClampsToOne)
{
    // depth 0 would deadlock admission entirely; the queue clamps
    // both the constructor and setDepthBound to >= 1.
    ServingQueue queue(1, 0, AdmissionPolicy::Reject);
    EXPECT_EQ(queue.depthBound(), 1u);
    EXPECT_EQ(queue.admit(makeQueued(0, 0, 10.0), nullptr),
              ServingQueue::Admit::Admitted);
    EXPECT_EQ(queue.admit(makeQueued(1, 0, 10.0), nullptr),
              ServingQueue::Admit::Rejected);
    queue.setDepthBound(0);
    EXPECT_EQ(queue.depthBound(), 1u);
}

TEST(ServingQueueTest, EmptyQueueEdgeCases)
{
    ServingQueue queue(2, 4, AdmissionPolicy::ShedOldest);
    // Every extraction on an empty queue is a clean miss, not a
    // crash or a phantom entry.
    EXPECT_FALSE(queue.pop(0, true).has_value());
    EXPECT_FALSE(queue.pop(0, false).has_value());
    EXPECT_FALSE(queue.steal(0, nullptr).has_value());
    EXPECT_TRUE(queue.popBatchMates(0, 7, 3, true).empty());
    EXPECT_TRUE(queue.drainDevice(0).empty());
    EXPECT_EQ(queue.totalDepth(), 0u);
    std::vector<QueuedRequest> shed;
    queue.shedExcess(&shed); // nothing above the bound
    EXPECT_TRUE(shed.empty());
}

TEST(ServingQueueTest, SingleElementShedAndSteal)
{
    ServingQueue queue(2, 1, AdmissionPolicy::ShedOldest);
    ASSERT_EQ(queue.admit(makeQueued(0, 0, 10.0), nullptr),
              ServingQueue::Admit::Admitted);
    // Stealing the lone entry hands it to the thief for immediate
    // dispatch — it leaves the queue entirely.
    size_t donor = 99;
    const std::optional<QueuedRequest> stolen =
        queue.steal(1, &donor);
    ASSERT_TRUE(stolen.has_value());
    EXPECT_EQ(donor, 0u);
    EXPECT_EQ(stolen->device, 1u);
    EXPECT_EQ(queue.totalDepth(), 0u);
    EXPECT_TRUE(queue.empty(0));
    // Shedding at bound 1 evicts the lone entry for the newcomer.
    ASSERT_EQ(queue.admit(makeQueued(1, 0, 10.0), nullptr),
              ServingQueue::Admit::Admitted);
    std::vector<QueuedRequest> shed;
    EXPECT_EQ(queue.admit(makeQueued(2, 0, 10.0), &shed),
              ServingQueue::Admit::Admitted);
    ASSERT_EQ(shed.size(), 1u);
    EXPECT_EQ(shed[0].id, 1);
    EXPECT_EQ(queue.totalDepth(), 1u);
}

TEST(ServingQueueTest, BatchMatesGoneAfterDrain)
{
    // A batch head must not pull mates that a crash drain already
    // removed from the device.
    ServingQueue queue(2, 8, AdmissionPolicy::Reject);
    queue.admit(makeQueued(0, 0, 10.0, 7), nullptr);
    queue.admit(makeQueued(1, 0, 12.0, 7), nullptr);
    queue.admit(makeQueued(2, 1, 14.0, 7), nullptr);
    const std::vector<QueuedRequest> drained = queue.drainDevice(0);
    ASSERT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[0].id, 0); // id order
    EXPECT_EQ(drained[1].id, 1);
    EXPECT_TRUE(queue.popBatchMates(0, 7, 4, true).empty());
    EXPECT_EQ(queue.depth(1), 1u); // the other device keeps its entry
    EXPECT_EQ(queue.totalDepth(), 1u);
}

TEST(ServingQueueTest, ShedExcessEvictsBatchClassFirst)
{
    ServingQueue queue(1, 8, AdmissionPolicy::ShedOldest);
    QueuedRequest interactive = makeQueued(0, 0, 10.0);
    interactive.deadline_class = DeadlineClass::Interactive;
    QueuedRequest batch = makeQueued(1, 0, 90.0);
    batch.deadline_class = DeadlineClass::Batch;
    QueuedRequest standard = makeQueued(2, 0, 50.0);
    standard.deadline_class = DeadlineClass::Standard;
    queue.admit(interactive, nullptr);
    queue.admit(batch, nullptr);
    queue.admit(standard, nullptr);
    queue.setShedBatchFirst(true);
    queue.setDepthBound(1);
    std::vector<QueuedRequest> shed;
    queue.shedExcess(&shed);
    // Victim order under degradation: batch, then standard; the
    // oldest (interactive, id 0) survives despite being oldest.
    ASSERT_EQ(shed.size(), 2u);
    EXPECT_EQ(shed[0].id, 1);
    EXPECT_EQ(shed[1].id, 2);
    EXPECT_EQ(queue.totalDepth(), 1u);
    EXPECT_EQ(queue.pop(0, false)->id, 0);
}

// ---------------------------------------------------------------- //
// ServingEngine

TEST(ServingEngineTest, SameSeedSameStats)
{
    for (ServePolicy policy :
         {ServePolicy::Deadline, ServePolicy::CostModel,
          ServePolicy::RoundRobin}) {
        ServingOptions opts = baseOptions();
        opts.policy = policy;
        opts.devices = {GpuConfig::v100(), GpuConfig::futureGpu()};
        ServingEngine a(opts, testPool());
        ServingEngine b(opts, testPool());
        const ServingStats sa = a.run().stats;
        const ServingStats sb = b.run().stats;
        EXPECT_GT(sa.offered, 0);
        EXPECT_TRUE(sa == sb) << servePolicyToken(policy);
    }
}

TEST(ServingEngineTest, ReplayIsBitwiseAcrossPoliciesAndDevices)
{
    // The acceptance pin: >= 2 policies x device counts {1, 2, 4},
    // every executed report bitwise identical to a serial
    // single-Session replay on the placed device's config.
    for (ServePolicy policy :
         {ServePolicy::Deadline, ServePolicy::CostModel,
          ServePolicy::RoundRobin}) {
        for (size_t devices : {1u, 2u, 4u}) {
            ServingOptions opts = baseOptions();
            opts.policy = policy;
            for (size_t d = 0; d < devices; ++d)
                opts.devices.push_back(
                    d % 2 ? GpuConfig::futureGpu()
                          : GpuConfig::v100());
            ServingEngine engine(opts, testPool());
            ServingResult result = engine.run();
            EXPECT_GT(result.stats.completed, 0)
                << servePolicyToken(policy) << " x" << devices;
            EXPECT_TRUE(engine.replayMatchesSerial(result))
                << servePolicyToken(policy) << " x" << devices;
        }
    }
}

TEST(ServingEngineTest, StatsAreWorkerCountInvariant)
{
    // The virtual clock is host-serial: thread-pool width and encode
    // workers must not change a single stat (work stealing included).
    for (size_t devices : {1u, 2u, 4u}) {
        ServingOptions opts = baseOptions();
        opts.policy = ServePolicy::Deadline; // stealing enabled
        for (size_t d = 0; d < devices; ++d)
            opts.devices.push_back(GpuConfig::v100());
        opts.num_threads = 1;
        opts.resources.encode_workers = 1;
        ServingEngine serial(opts, testPool());
        const ServingStats reference = serial.run().stats;
        opts.num_threads = 4;
        opts.resources.encode_workers = 4;
        ServingEngine pooled(opts, testPool());
        EXPECT_TRUE(pooled.run().stats == reference)
            << devices << " devices";
    }
}

TEST(ServingEngineTest, OutcomesAreOrderedAndAccounted)
{
    ServingOptions opts = baseOptions();
    opts.devices = {GpuConfig::v100(), GpuConfig::v100()};
    ServingEngine engine(opts, testPool());
    const ServingResult result = engine.run();
    const ServingStats &stats = result.stats;
    ASSERT_EQ(static_cast<int64_t>(result.outcomes.size()),
              stats.completed);
    int64_t prev = -1;
    for (const ServeOutcome &o : result.outcomes) {
        EXPECT_GT(o.id, prev);
        prev = o.id;
        EXPECT_GE(o.start_us, o.arrival_us);
        EXPECT_GT(o.finish_us, o.start_us);
        EXPECT_EQ(o.met_deadline, o.finish_us <= o.deadline_us);
    }
    // Everything admitted is eventually executed, shed, dropped or
    // (under faults — none here) lost.
    EXPECT_EQ(stats.admitted, stats.offered - stats.rejected);
    EXPECT_EQ(stats.completed + stats.shed + stats.dropped +
                  stats.faults.lost,
              stats.admitted);
    EXPECT_EQ(stats.faults.lost, 0);
    EXPECT_EQ(stats.faults.availability, 1.0);
    int64_t placed = 0;
    for (int64_t p : stats.placed_per_device)
        placed += p;
    EXPECT_EQ(placed, stats.admitted);
}

TEST(ServingEngineTest, SingleDeviceOverloadAppliesBackpressure)
{
    ServingOptions opts = baseOptions();
    opts.devices = {GpuConfig::v100()};
    opts.policy = ServePolicy::CostModel; // no infeasible-drop guard
    opts.queue_depth = 4;
    opts.arrivals.rate_rpms = 4000.0; // far beyond one V100
    ServingEngine engine(opts, testPool());
    const ServingStats stats = engine.run().stats;
    EXPECT_GT(stats.rejected, 0);
    EXPECT_EQ(stats.admitted, stats.offered - stats.rejected);
    EXPECT_EQ(stats.completed, stats.admitted); // nothing lost
    EXPECT_LT(stats.slo_attainment, 1.0);
}

TEST(ServingEngineTest, ShedAdmissionPrefersFreshWork)
{
    ServingOptions opts = baseOptions();
    opts.devices = {GpuConfig::v100()};
    opts.policy = ServePolicy::CostModel;
    opts.admission = AdmissionPolicy::ShedOldest;
    opts.queue_depth = 4;
    opts.arrivals.rate_rpms = 4000.0;
    ServingEngine engine(opts, testPool());
    const ServingStats stats = engine.run().stats;
    EXPECT_EQ(stats.rejected, 0); // shed admits everything
    EXPECT_GT(stats.shed, 0);
    EXPECT_EQ(stats.completed + stats.shed, stats.admitted);
}

TEST(ServingEngineTest, DeadlinePolicyDropsInfeasibleUnderOverload)
{
    ServingOptions opts = baseOptions();
    opts.devices = {GpuConfig::v100()};
    opts.policy = ServePolicy::Deadline;
    opts.arrivals.rate_rpms = 4000.0;
    ServingEngine engine(opts, testPool());
    const ServingStats stats = engine.run().stats;
    EXPECT_GT(stats.dropped, 0);
    // The guard exists to keep the served work on time: the miss
    // rate must stay far below the saturated FIFO policies'.
    EXPECT_LT(stats.deadline_miss_rate, 0.2);
    EXPECT_EQ(stats.completed + stats.shed + stats.dropped,
              stats.admitted);
}

TEST(ServingEngineTest, MicroBatchingAmortizesDispatchOverhead)
{
    // A single-shape pool: every queued request is batch-compatible,
    // so micro-batching pays one dispatch overhead per batch instead
    // of one per request — strictly earlier completions.
    std::vector<KernelRequest> pool = {testPool()[0]};
    ServingOptions opts = baseOptions();
    opts.devices = {GpuConfig::v100()};
    opts.arrivals.rate_rpms = 2000.0;
    opts.dispatch_overhead_us = 5.0;
    opts.microbatch = 1;
    ServingEngine unbatched(opts, pool);
    const ServingStats without = unbatched.run().stats;
    opts.microbatch = 8;
    ServingEngine batched(opts, pool);
    const ServingStats with = batched.run().stats;
    EXPECT_EQ(without.microbatches, 0);
    EXPECT_GT(with.microbatches, 0);
    EXPECT_GT(with.microbatched, with.microbatches);
    EXPECT_GT(with.goodput_rpms, without.goodput_rpms);
}

TEST(ServingEngineTest, DeadlineClassesOrderDeadlines)
{
    ServingOptions opts = baseOptions();
    ServingEngine engine(opts, testPool());
    const double interactive = engine.deadlineFor(
        DeadlineClass::Interactive, 100.0, 10.0);
    const double standard =
        engine.deadlineFor(DeadlineClass::Standard, 100.0, 10.0);
    const double batch =
        engine.deadlineFor(DeadlineClass::Batch, 100.0, 10.0);
    EXPECT_LT(interactive, standard);
    EXPECT_LT(standard, batch);
    EXPECT_GT(interactive, 100.0); // always after the arrival
}

TEST(ServingEngineTest, ZeroDurationRunIsEmpty)
{
    ServingOptions opts = baseOptions();
    opts.arrivals.duration_ms = 0.0;
    ServingEngine engine(opts, testPool());
    const ServingResult result = engine.run();
    EXPECT_EQ(result.stats.offered, 0);
    EXPECT_EQ(result.stats.completed, 0);
    EXPECT_TRUE(result.outcomes.empty());
    EXPECT_EQ(result.stats.latency.count, 0);
    EXPECT_TRUE(engine.replayMatchesSerial(result));
}

TEST(ServingEngineTest, WorkStealingOnlyUnderDeadlinePolicy)
{
    ServingOptions opts = baseOptions();
    opts.devices = {GpuConfig::v100(), GpuConfig::futureGpu()};
    opts.arrivals.rate_rpms = 1500.0;
    opts.policy = ServePolicy::RoundRobin;
    ServingEngine rr(opts, testPool());
    EXPECT_EQ(rr.run().stats.steals, 0);
    opts.policy = ServePolicy::CostModel;
    ServingEngine cost(opts, testPool());
    EXPECT_EQ(cost.run().stats.steals, 0);
}

} // namespace
} // namespace dstc
