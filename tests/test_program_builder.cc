#include "isa/program_builder.h"

#include <gtest/gtest.h>

#include "common/bitutil.h"

namespace dstc {
namespace {

TEST(ProgramBuilder, Fig15Example)
{
    // POPC results 20 (A column) and 12 (B row) enable exactly
    // OHMMA 0/2/4 of the 8-instruction set.
    EXPECT_EQ(enabledOhmmas(20, 12), 3);
    WarpProgram prog;
    buildSpWmmaSet(prog, 4, 20, 12);
    std::vector<int> enabled_indices;
    int ohmma_idx = 0;
    for (const auto &instr : prog.instructions()) {
        if (instr.op != Opcode::OHMMA_8161)
            continue;
        if (instr.predicate)
            enabled_indices.push_back(ohmma_idx);
        ++ohmma_idx;
    }
    EXPECT_EQ(ohmma_idx, 8);
    EXPECT_EQ(enabled_indices, (std::vector<int>{0, 2, 4}));
}

TEST(ProgramBuilder, EnabledOhmmaQuantization)
{
    // A side quantizes to <0,25,50,75,100%>, B side to <0,50,100%>.
    EXPECT_EQ(enabledOhmmas(0, 32), 0);
    EXPECT_EQ(enabledOhmmas(32, 0), 0);
    EXPECT_EQ(enabledOhmmas(1, 1), 1);
    EXPECT_EQ(enabledOhmmas(8, 16), 1);
    EXPECT_EQ(enabledOhmmas(9, 16), 2);
    EXPECT_EQ(enabledOhmmas(32, 16), 4);
    EXPECT_EQ(enabledOhmmas(32, 17), 8);
    EXPECT_EQ(enabledOhmmas(32, 32), 8);
}

TEST(ProgramBuilder, EmptyOperandSkipsEverything)
{
    WarpProgram prog;
    buildSpWmmaSet(prog, 0, 0, 20);
    // The k-step is compacted away outright: nothing is emitted, not
    // even the POPCs (the per-tile occupancy AND found it empty).
    EXPECT_EQ(prog.size(), 0u);
    EXPECT_EQ(prog.mix().tensorCycles(), 0);
}

TEST(ProgramBuilder, DenseSetIssuesAllEight)
{
    WarpProgram prog;
    buildSpWmmaSet(prog, 0, 32, 32);
    InstructionMix mix = prog.mix();
    EXPECT_EQ(mix.bohmma, 1);
    EXPECT_EQ(mix.ohmma_issued, 8);
    EXPECT_EQ(mix.ohmma_skipped, 0);
}

TEST(ProgramBuilder, FullSpWmmaStructure)
{
    std::vector<std::pair<int, int>> popcs(16, {32, 32});
    WarpProgram prog = buildSpWmma(popcs);
    InstructionMix mix = prog.mix();
    EXPECT_EQ(mix.popc, 32);
    EXPECT_EQ(mix.bohmma, 16);
    EXPECT_EQ(mix.ohmma_issued, 128);
    // Dense 32x32x16 via SpWMMA: 128 OHMMA + 16 BOHMMA cycles.
    EXPECT_EQ(mix.tensorCycles(), 144);
}

TEST(ProgramBuilder, DenseOwmmaMatchesDenseWmmaThroughput)
{
    // Same warp tile, same cycles: the OTC conversion is
    // performance-neutral on dense data (Sec. V-A).
    WarpProgram owmma = buildDenseOwmma(16); // 32x32x16
    WarpProgram wmma = buildDenseWmma(32, 32, 16);
    EXPECT_EQ(owmma.mix().tensorCycles(), wmma.mix().tensorCycles());
}

TEST(ProgramBuilder, SkippedFractionTracksSparsity)
{
    // Half-empty operands skip at least half the OHMMAs.
    std::vector<std::pair<int, int>> popcs(16, {8, 16});
    WarpProgram prog = buildSpWmma(popcs);
    InstructionMix mix = prog.mix();
    EXPECT_EQ(mix.ohmma_issued, 16);  // 1 per set
    EXPECT_EQ(mix.ohmma_skipped, 112);
}

class EnabledOhmmaProperty
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(EnabledOhmmaProperty, MatchesCeilFormula)
{
    const auto [na, nb] = GetParam();
    const int expected =
        (na == 0 || nb == 0) ? 0 : ceilDiv(na, 8) * ceilDiv(nb, 16);
    EXPECT_EQ(enabledOhmmas(na, nb), expected);
    // Consistency with the built program.
    WarpProgram prog;
    buildSpWmmaSet(prog, 0, na, nb);
    EXPECT_EQ(prog.mix().ohmma_issued, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllQuadrants, EnabledOhmmaProperty,
    ::testing::Values(std::pair{0, 0}, std::pair{0, 16}, std::pair{7, 1},
                      std::pair{8, 15}, std::pair{15, 16},
                      std::pair{16, 17}, std::pair{24, 31},
                      std::pair{25, 32}, std::pair{32, 32},
                      std::pair{1, 32}, std::pair{32, 1}));

} // namespace
} // namespace dstc
