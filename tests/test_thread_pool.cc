#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dstc {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(&pool, 1000, 4, [&](int64_t i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForSerialFallbacks)
{
    // Null pool and max_workers=1 both run the plain serial loop.
    std::vector<int> order;
    parallelFor(nullptr, 5, 8,
                [&](int64_t i) { order.push_back(static_cast<int>(i)); });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));

    ThreadPool pool(4);
    order.clear();
    parallelFor(&pool, 5, 1,
                [&](int64_t i) { order.push_back(static_cast<int>(i)); });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForZeroAndOneItems)
{
    ThreadPool pool(2);
    int calls = 0;
    parallelFor(&pool, 0, 4, [&](int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(&pool, 1, 4, [&](int64_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForNestsInsidePoolJobs)
{
    // A parallelFor issued from inside a job of the same pool must
    // complete even when every worker is busy: the calling thread
    // participates in its own loop.
    ThreadPool pool(2);
    std::atomic<int64_t> total{0};
    std::vector<std::atomic<int>> done(4);
    for (int j = 0; j < 4; ++j) {
        pool.enqueue([&, j] {
            parallelFor(&pool, 100, 2,
                        [&](int64_t i) { total.fetch_add(i); });
            done[static_cast<size_t>(j)].store(1);
        });
    }
    // Outer parallelFor on the same (busy) pool also finishes.
    parallelFor(&pool, 100, 2, [&](int64_t i) { total.fetch_add(i); });
    for (auto &d : done)
        while (!d.load())
            std::this_thread::yield();
    EXPECT_EQ(total.load(), 5 * (99 * 100 / 2));
}

TEST(ThreadPool, ConcurrentParallelForsFromManyThreads)
{
    ThreadPool pool(3);
    std::atomic<int64_t> total{0};
    std::vector<std::thread> callers;
    for (int t = 0; t < 4; ++t)
        callers.emplace_back([&] {
            parallelFor(&pool, 500, 3,
                        [&](int64_t i) { total.fetch_add(i + 1); });
        });
    for (auto &c : callers)
        c.join();
    EXPECT_EQ(total.load(), 4 * (500 * 501 / 2));
}

TEST(ThreadPool, SharedPoolIsSingletonAndSized)
{
    ThreadPool &a = sharedThreadPool();
    ThreadPool &b = sharedThreadPool();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.numThreads(), 1);
}

} // namespace
} // namespace dstc
