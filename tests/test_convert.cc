#include "sparse/convert.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dstc {
namespace {

TEST(Convert, BitmapCsrRoundTrip)
{
    Rng rng(61);
    Matrix<float> m = randomSparseMatrix(25, 35, 0.7, rng);
    BitmapMatrix bm = BitmapMatrix::encode(m, Major::Col);
    CsrMatrix csr = bitmapToCsr(bm);
    EXPECT_EQ(csr.decode(), m);
    BitmapMatrix back = csrToBitmap(csr, Major::Row);
    EXPECT_EQ(back.decode(), m);
    EXPECT_EQ(back.major(), Major::Row);
}

TEST(Convert, LineNnzProfile)
{
    Matrix<float> m(3, 4);
    m.at(0, 0) = 1;
    m.at(0, 1) = 2;
    m.at(2, 3) = 3;
    BitmapMatrix bm = BitmapMatrix::encode(m, Major::Row);
    EXPECT_EQ(lineNnzProfile(bm), (std::vector<int>{2, 0, 1}));
}

TEST(Convert, ChunkHistogram)
{
    // 32-long columns; chunk 8 quantizes to 0..4 chunks, i.e. the
    // <0,25,50,75,100%> occupancy levels of Sec. III-B3.
    Matrix<float> m(32, 3);
    for (int r = 0; r < 9; ++r)
        m.at(r, 0) = 1.0f; // 9 nnz -> 2 chunks
    m.at(0, 2) = 1.0f;     // 1 nnz -> 1 chunk
    BitmapMatrix bm = BitmapMatrix::encode(m, Major::Col);
    auto hist = chunkHistogram(bm, 8);
    ASSERT_EQ(hist.size(), 5u);
    EXPECT_EQ(hist[0], 1); // empty column
    EXPECT_EQ(hist[1], 1);
    EXPECT_EQ(hist[2], 1);
    EXPECT_EQ(hist[3], 0);
    EXPECT_EQ(hist[4], 0);
}

TEST(Convert, HistogramTotalsMatchLines)
{
    Rng rng(62);
    Matrix<float> m = randomSparseMatrix(64, 48, 0.4, rng);
    BitmapMatrix bm = BitmapMatrix::encode(m, Major::Col);
    auto hist = chunkHistogram(bm, 8);
    int total = 0;
    for (int h : hist)
        total += h;
    EXPECT_EQ(total, bm.numLines());
}

} // namespace
} // namespace dstc
