#include "common/bitutil.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dstc {
namespace {

TEST(BitUtil, Popcount64)
{
    EXPECT_EQ(popcount64(0), 0);
    EXPECT_EQ(popcount64(1), 1);
    EXPECT_EQ(popcount64(~uint64_t{0}), 64);
    EXPECT_EQ(popcount64(0xf0f0f0f0f0f0f0f0ull), 32);
}

TEST(BitUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 8), 0);
    EXPECT_EQ(ceilDiv(1, 8), 1);
    EXPECT_EQ(ceilDiv(8, 8), 1);
    EXPECT_EQ(ceilDiv(9, 8), 2);
    EXPECT_EQ(ceilDiv<int64_t>(4096, 32), 128);
}

TEST(BitUtil, AlignUp)
{
    EXPECT_EQ(alignUp(0, 16), 0);
    EXPECT_EQ(alignUp(1, 16), 16);
    EXPECT_EQ(alignUp(16, 16), 16);
    EXPECT_EQ(alignUp(17, 16), 32);
}

TEST(BitUtil, LowMask)
{
    EXPECT_EQ(lowMask64(0), 0u);
    EXPECT_EQ(lowMask64(1), 1u);
    EXPECT_EQ(lowMask64(8), 0xffu);
    EXPECT_EQ(lowMask64(64), ~uint64_t{0});
}

TEST(BitUtil, SetGetClearBit)
{
    std::vector<uint64_t> bits(4, 0);
    setBit(bits, 0);
    setBit(bits, 63);
    setBit(bits, 64);
    setBit(bits, 255);
    EXPECT_TRUE(getBit(bits, 0));
    EXPECT_TRUE(getBit(bits, 63));
    EXPECT_TRUE(getBit(bits, 64));
    EXPECT_TRUE(getBit(bits, 255));
    EXPECT_FALSE(getBit(bits, 1));
    EXPECT_FALSE(getBit(bits, 128));
    clearBit(bits, 64);
    EXPECT_FALSE(getBit(bits, 64));
}

TEST(BitUtil, PopcountRangeBasics)
{
    std::vector<uint64_t> bits(4, 0);
    for (size_t i = 0; i < 256; i += 2)
        setBit(bits, i);
    EXPECT_EQ(popcountRange(bits, 0, 256), 128);
    EXPECT_EQ(popcountRange(bits, 0, 0), 0);
    EXPECT_EQ(popcountRange(bits, 0, 1), 1);
    EXPECT_EQ(popcountRange(bits, 1, 2), 0);
    EXPECT_EQ(popcountRange(bits, 0, 64), 32);
    EXPECT_EQ(popcountRange(bits, 63, 65), 1);
    EXPECT_EQ(popcountRange(bits, 10, 10), 0);
}

TEST(BitUtil, PopcountRangeMatchesNaive)
{
    Rng rng(7);
    std::vector<uint64_t> bits(8, 0);
    for (size_t i = 0; i < 512; ++i)
        if (rng.bernoulli(0.3))
            setBit(bits, i);
    for (int trial = 0; trial < 200; ++trial) {
        size_t lo = rng.uniformInt(512);
        size_t hi = lo + rng.uniformInt(512 - lo + 1);
        int expected = 0;
        for (size_t i = lo; i < hi; ++i)
            expected += getBit(bits, i);
        EXPECT_EQ(popcountRange(bits, lo, hi), expected)
            << "lo=" << lo << " hi=" << hi;
    }
}

TEST(BitUtil, ForEachSetBitMatchesNaive)
{
    Rng rng(11);
    std::vector<uint64_t> bits(8, 0);
    std::vector<size_t> expected;
    for (size_t i = 0; i < 512; ++i) {
        if (rng.bernoulli(0.2))
            setBit(bits, i);
    }
    for (int trial = 0; trial < 100; ++trial) {
        size_t lo = rng.uniformInt(512);
        size_t hi = lo + rng.uniformInt(512 - lo + 1);
        expected.clear();
        for (size_t i = lo; i < hi; ++i)
            if (getBit(bits, i))
                expected.push_back(i);
        std::vector<size_t> got;
        forEachSetBit(bits, lo, hi,
                      [&](size_t pos) { got.push_back(pos); });
        EXPECT_EQ(got, expected) << "lo=" << lo << " hi=" << hi;
    }
}

TEST(BitUtil, ForEachSetBitEmptyRange)
{
    std::vector<uint64_t> bits(2, ~uint64_t{0});
    int count = 0;
    forEachSetBit(bits, 5, 5, [&](size_t) { ++count; });
    EXPECT_EQ(count, 0);
}

TEST(BitUtil, StrideMask)
{
    EXPECT_EQ(strideMask64(0, 1), ~uint64_t{0});
    EXPECT_EQ(strideMask64(3, 1), ~uint64_t{0} << 3);
    EXPECT_EQ(strideMask64(0, 2), 0x5555555555555555ull);
    EXPECT_EQ(strideMask64(1, 2), 0xaaaaaaaaaaaaaaaaull);
    EXPECT_EQ(strideMask64(1, 3), 0x2492492492492492ull);
    EXPECT_EQ(strideMask64(63, 7), uint64_t{1} << 63);
    // Every set bit is congruent to the phase mod the stride.
    for (int stride = 1; stride <= 8; ++stride)
        for (int phase = 0; phase < stride; ++phase) {
            uint64_t mask = strideMask64(phase, stride);
            for (int b = 0; b < 64; ++b)
                EXPECT_EQ((mask >> b) & 1,
                          static_cast<uint64_t>(b >= phase &&
                                                (b - phase) %
                                                        stride ==
                                                    0))
                    << "stride=" << stride << " phase=" << phase
                    << " bit=" << b;
        }
}

/** Per-bit reference of the PEXT compaction. */
static uint64_t
pextReference(uint64_t value, uint64_t mask)
{
    uint64_t out = 0;
    int k = 0;
    for (int b = 0; b < 64; ++b)
        if ((mask >> b) & 1)
            out |= ((value >> b) & 1) << k++;
    return out;
}

TEST(BitUtil, Pext64MatchesPerBitReference)
{
    Rng rng(91);
    EXPECT_EQ(pext64(0b10110100ull, 0b11110000ull), 0b1011ull);
    EXPECT_EQ(pext64(~uint64_t{0}, 0), 0u);
    EXPECT_EQ(pext64(~uint64_t{0}, ~uint64_t{0}), ~uint64_t{0});
    for (int trial = 0; trial < 200; ++trial) {
        const uint64_t value = rng.next();
        // Mix random masks with the stride masks the gather uses.
        const uint64_t mask =
            (trial & 1)
                ? rng.next()
                : strideMask64(trial % 5, 1 + trial % 7);
        EXPECT_EQ(pext64(value, mask), pextReference(value, mask))
            << "value=" << value << " mask=" << mask;
        Pext64 fixed(mask);
        EXPECT_EQ(fixed.apply(value), pextReference(value, mask));
        EXPECT_EQ(fixed.mask(), mask);
    }
}

TEST(BitUtil, Transpose64x64)
{
    Rng rng(92);
    uint64_t a[64], ref[64];
    for (int i = 0; i < 64; ++i)
        a[i] = ref[i] = rng.next();
    transpose64x64(a);
    for (int r = 0; r < 64; ++r)
        for (int c = 0; c < 64; ++c)
            EXPECT_EQ((a[c] >> r) & 1, (ref[r] >> c) & 1)
                << "r=" << r << " c=" << c;
    // Transposing twice is the identity.
    transpose64x64(a);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a[i], ref[i]);
}

TEST(BitUtil, PackNonzeroBits)
{
    Rng rng(93);
    float vals[64];
    for (int trial = 0; trial < 20; ++trial) {
        for (float &v : vals)
            v = rng.bernoulli(0.5)
                    ? 0.0f
                    : rng.uniformFloat(-2.0f, 2.0f);
        // -0.0 must read as zero, like the element-wise compare.
        vals[trial % 64] = -0.0f;
        for (int span : {64, 63, 33, 1}) {
            uint64_t expect = 0;
            for (int b = 0; b < span; ++b)
                expect |= static_cast<uint64_t>(vals[b] != 0.0f)
                          << b;
            EXPECT_EQ(packNonzeroBits(vals, span), expect)
                << "span=" << span;
        }
    }
}

} // namespace
} // namespace dstc
