#include "common/bitutil.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dstc {
namespace {

TEST(BitUtil, Popcount64)
{
    EXPECT_EQ(popcount64(0), 0);
    EXPECT_EQ(popcount64(1), 1);
    EXPECT_EQ(popcount64(~uint64_t{0}), 64);
    EXPECT_EQ(popcount64(0xf0f0f0f0f0f0f0f0ull), 32);
}

TEST(BitUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 8), 0);
    EXPECT_EQ(ceilDiv(1, 8), 1);
    EXPECT_EQ(ceilDiv(8, 8), 1);
    EXPECT_EQ(ceilDiv(9, 8), 2);
    EXPECT_EQ(ceilDiv<int64_t>(4096, 32), 128);
}

TEST(BitUtil, AlignUp)
{
    EXPECT_EQ(alignUp(0, 16), 0);
    EXPECT_EQ(alignUp(1, 16), 16);
    EXPECT_EQ(alignUp(16, 16), 16);
    EXPECT_EQ(alignUp(17, 16), 32);
}

TEST(BitUtil, LowMask)
{
    EXPECT_EQ(lowMask64(0), 0u);
    EXPECT_EQ(lowMask64(1), 1u);
    EXPECT_EQ(lowMask64(8), 0xffu);
    EXPECT_EQ(lowMask64(64), ~uint64_t{0});
}

TEST(BitUtil, SetGetClearBit)
{
    std::vector<uint64_t> bits(4, 0);
    setBit(bits, 0);
    setBit(bits, 63);
    setBit(bits, 64);
    setBit(bits, 255);
    EXPECT_TRUE(getBit(bits, 0));
    EXPECT_TRUE(getBit(bits, 63));
    EXPECT_TRUE(getBit(bits, 64));
    EXPECT_TRUE(getBit(bits, 255));
    EXPECT_FALSE(getBit(bits, 1));
    EXPECT_FALSE(getBit(bits, 128));
    clearBit(bits, 64);
    EXPECT_FALSE(getBit(bits, 64));
}

TEST(BitUtil, PopcountRangeBasics)
{
    std::vector<uint64_t> bits(4, 0);
    for (size_t i = 0; i < 256; i += 2)
        setBit(bits, i);
    EXPECT_EQ(popcountRange(bits, 0, 256), 128);
    EXPECT_EQ(popcountRange(bits, 0, 0), 0);
    EXPECT_EQ(popcountRange(bits, 0, 1), 1);
    EXPECT_EQ(popcountRange(bits, 1, 2), 0);
    EXPECT_EQ(popcountRange(bits, 0, 64), 32);
    EXPECT_EQ(popcountRange(bits, 63, 65), 1);
    EXPECT_EQ(popcountRange(bits, 10, 10), 0);
}

TEST(BitUtil, PopcountRangeMatchesNaive)
{
    Rng rng(7);
    std::vector<uint64_t> bits(8, 0);
    for (size_t i = 0; i < 512; ++i)
        if (rng.bernoulli(0.3))
            setBit(bits, i);
    for (int trial = 0; trial < 200; ++trial) {
        size_t lo = rng.uniformInt(512);
        size_t hi = lo + rng.uniformInt(512 - lo + 1);
        int expected = 0;
        for (size_t i = lo; i < hi; ++i)
            expected += getBit(bits, i);
        EXPECT_EQ(popcountRange(bits, lo, hi), expected)
            << "lo=" << lo << " hi=" << hi;
    }
}

TEST(BitUtil, ForEachSetBitMatchesNaive)
{
    Rng rng(11);
    std::vector<uint64_t> bits(8, 0);
    std::vector<size_t> expected;
    for (size_t i = 0; i < 512; ++i) {
        if (rng.bernoulli(0.2))
            setBit(bits, i);
    }
    for (int trial = 0; trial < 100; ++trial) {
        size_t lo = rng.uniformInt(512);
        size_t hi = lo + rng.uniformInt(512 - lo + 1);
        expected.clear();
        for (size_t i = lo; i < hi; ++i)
            if (getBit(bits, i))
                expected.push_back(i);
        std::vector<size_t> got;
        forEachSetBit(bits, lo, hi,
                      [&](size_t pos) { got.push_back(pos); });
        EXPECT_EQ(got, expected) << "lo=" << lo << " hi=" << hi;
    }
}

TEST(BitUtil, ForEachSetBitEmptyRange)
{
    std::vector<uint64_t> bits(2, ~uint64_t{0});
    int count = 0;
    forEachSetBit(bits, 5, 5, [&](size_t) { ++count; });
    EXPECT_EQ(count, 0);
}

} // namespace
} // namespace dstc
