#include "sparse/bitmap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/fp16.h"
#include "common/rng.h"

namespace dstc {
namespace {

Matrix<float>
sample3x4()
{
    // 0 5 0 1
    // 2 0 0 0
    // 0 0 3 4
    Matrix<float> m(3, 4);
    m.at(0, 1) = 5;
    m.at(0, 3) = 1;
    m.at(1, 0) = 2;
    m.at(2, 2) = 3;
    m.at(2, 3) = 4;
    return m;
}

TEST(Bitmap, EncodeDecodeRowMajor)
{
    Matrix<float> m = sample3x4();
    BitmapMatrix bm = BitmapMatrix::encode(m, Major::Row);
    EXPECT_EQ(bm.rows(), 3);
    EXPECT_EQ(bm.cols(), 4);
    EXPECT_EQ(bm.nnz(), 5);
    EXPECT_EQ(bm.numLines(), 3);
    EXPECT_EQ(bm.lineLength(), 4);
    EXPECT_EQ(bm.decode(), m);
}

TEST(Bitmap, EncodeDecodeColMajor)
{
    Matrix<float> m = sample3x4();
    BitmapMatrix bm = BitmapMatrix::encode(m, Major::Col);
    EXPECT_EQ(bm.numLines(), 4);
    EXPECT_EQ(bm.lineLength(), 3);
    EXPECT_EQ(bm.decode(), m);
}

TEST(Bitmap, BitsMatchPattern)
{
    Matrix<float> m = sample3x4();
    BitmapMatrix bm = BitmapMatrix::encode(m, Major::Row);
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 4; ++c)
            EXPECT_EQ(bm.bit(r, c), m.at(r, c) != 0.0f);
}

TEST(Bitmap, LineValuesPackedInOrder)
{
    BitmapMatrix bm = BitmapMatrix::encode(sample3x4(), Major::Row);
    auto row0 = bm.lineValues(0);
    ASSERT_EQ(row0.size(), 2u);
    EXPECT_FLOAT_EQ(row0[0], 5);
    EXPECT_FLOAT_EQ(row0[1], 1);

    BitmapMatrix bmc = BitmapMatrix::encode(sample3x4(), Major::Col);
    auto col3 = bmc.lineValues(3);
    ASSERT_EQ(col3.size(), 2u);
    EXPECT_FLOAT_EQ(col3[0], 1);
    EXPECT_FLOAT_EQ(col3[1], 4);
}

TEST(Bitmap, LinePopcountAndRangeValues)
{
    BitmapMatrix bm = BitmapMatrix::encode(sample3x4(), Major::Row);
    EXPECT_EQ(bm.lineNnz(0), 2);
    EXPECT_EQ(bm.linePopcount(0, 0, 2), 1);
    EXPECT_EQ(bm.linePopcount(0, 2, 4), 1);
    auto vals = bm.lineValuesRange(0, 2, 4);
    ASSERT_EQ(vals.size(), 1u);
    EXPECT_FLOAT_EQ(vals[0], 1);
}

TEST(Bitmap, LinePositions)
{
    BitmapMatrix bm = BitmapMatrix::encode(sample3x4(), Major::Row);
    EXPECT_EQ(bm.linePositions(0, 0, 4), (std::vector<int>{1, 3}));
    EXPECT_EQ(bm.linePositions(0, 2, 4), (std::vector<int>{3}));
    EXPECT_EQ(bm.linePositions(1, 1, 4), (std::vector<int>{}));
}

TEST(Bitmap, ValueAt)
{
    Matrix<float> m = sample3x4();
    for (Major major : {Major::Row, Major::Col}) {
        BitmapMatrix bm = BitmapMatrix::encode(m, major);
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 4; ++c)
                EXPECT_FLOAT_EQ(bm.valueAt(r, c), m.at(r, c));
    }
}

TEST(Bitmap, EncodedBytesShrinkWithSparsity)
{
    Rng rng(12);
    Matrix<float> dense = randomSparseMatrix(64, 64, 0.0, rng);
    Matrix<float> sparse = randomSparseMatrix(64, 64, 0.9, rng);
    BitmapMatrix bd = BitmapMatrix::encode(dense, Major::Row);
    BitmapMatrix bs = BitmapMatrix::encode(sparse, Major::Row);
    EXPECT_GT(bd.encodedBytes(), bs.encodedBytes());
    // Bitmap floor: bits never go away.
    EXPECT_GE(bs.encodedBytes(), static_cast<size_t>(64 * 64 / 8));
}

TEST(Bitmap, EmptyAndFullMatrices)
{
    Matrix<float> zero(5, 7);
    BitmapMatrix bz = BitmapMatrix::encode(zero, Major::Col);
    EXPECT_EQ(bz.nnz(), 0);
    EXPECT_EQ(bz.decode(), zero);
    EXPECT_DOUBLE_EQ(bz.sparsity(), 1.0);

    Matrix<float> full(5, 7, 2.0f);
    BitmapMatrix bf = BitmapMatrix::encode(full, Major::Row);
    EXPECT_EQ(bf.nnz(), 35);
    EXPECT_DOUBLE_EQ(bf.sparsity(), 0.0);
    EXPECT_EQ(bf.decode(), full);
}

TEST(Bitmap, WideLinesCrossWordBoundaries)
{
    Rng rng(13);
    // 200-wide lines span four 64-bit words.
    Matrix<float> m = randomSparseMatrix(3, 200, 0.5, rng);
    BitmapMatrix bm = BitmapMatrix::encode(m, Major::Row);
    EXPECT_EQ(bm.decode(), m);
    for (int lo = 0; lo < 200; lo += 37) {
        int hi = std::min(200, lo + 50);
        int expected = 0;
        for (int c = lo; c < hi; ++c)
            expected += m.at(1, c) != 0.0f;
        EXPECT_EQ(bm.linePopcount(1, lo, hi), expected);
    }
}

struct BitmapSweepParam
{
    int rows, cols;
    double sparsity;
    Major major;
};

class BitmapSweep : public ::testing::TestWithParam<BitmapSweepParam>
{
};

TEST_P(BitmapSweep, RoundTrip)
{
    const auto &p = GetParam();
    Rng rng(static_cast<uint64_t>(p.rows * 1000 + p.cols));
    Matrix<float> m =
        randomSparseMatrix(p.rows, p.cols, p.sparsity, rng);
    BitmapMatrix bm = BitmapMatrix::encode(m, p.major);
    EXPECT_EQ(bm.decode(), m);
    EXPECT_EQ(bm.nnz(), m.nnz());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BitmapSweep,
    ::testing::Values(BitmapSweepParam{1, 1, 0.5, Major::Row},
                      BitmapSweepParam{32, 32, 0.0, Major::Col},
                      BitmapSweepParam{32, 32, 1.0, Major::Row},
                      BitmapSweepParam{33, 65, 0.3, Major::Col},
                      BitmapSweepParam{128, 17, 0.9, Major::Row},
                      BitmapSweepParam{7, 300, 0.7, Major::Col},
                      BitmapSweepParam{64, 64, 0.99, Major::Row}));

TEST(Bitmap, ScratchVariantsMatchAllocatingOnes)
{
    Rng rng(42);
    // 300-wide lines span several 64-bit words, with ragged edges.
    Matrix<float> m = randomSparseMatrix(7, 300, 0.6, rng);
    BitmapMatrix bm = BitmapMatrix::encode(m, Major::Row);
    std::vector<int> pos(bm.lineLength());
    std::vector<float> vals(bm.lineLength());
    for (int line = 0; line < bm.numLines(); ++line) {
        for (auto [lo, hi] : {std::pair{0, 300}, std::pair{5, 190},
                              std::pair{64, 128}, std::pair{63, 65},
                              std::pair{17, 17}}) {
            const auto expect_pos = bm.linePositions(line, lo, hi);
            const int n =
                bm.linePositionsInto(line, lo, hi, pos.data());
            ASSERT_EQ(n, static_cast<int>(expect_pos.size()));
            EXPECT_TRUE(std::equal(expect_pos.begin(),
                                   expect_pos.end(), pos.begin()));

            const auto expect_vals = bm.lineValuesRange(line, lo, hi);
            const int nv =
                bm.lineValuesRangeInto(line, lo, hi, vals.data());
            ASSERT_EQ(nv, static_cast<int>(expect_vals.size()));
            EXPECT_TRUE(std::equal(expect_vals.begin(),
                                   expect_vals.end(), vals.begin()));
        }
    }
}

TEST(Bitmap, Fp16ValuesArePreRounded)
{
    Rng rng(43);
    Matrix<float> m = randomSparseMatrix(16, 16, 0.5, rng);
    BitmapMatrix bm = BitmapMatrix::encode(m, Major::Col);
    for (int line = 0; line < bm.numLines(); ++line) {
        const auto raw = bm.lineValues(line);
        const auto rounded = bm.lineValuesFp16(line);
        ASSERT_EQ(raw.size(), rounded.size());
        for (size_t i = 0; i < raw.size(); ++i)
            EXPECT_EQ(rounded[i], roundToFp16(raw[i]));
    }
}

TEST(Bitmap, AndPrimitivesMatchNaiveIntersection)
{
    Rng rng(44);
    Matrix<float> ma = randomSparseMatrix(4, 200, 0.7, rng);
    Matrix<float> mb = randomSparseMatrix(4, 200, 0.4, rng);
    BitmapMatrix a = BitmapMatrix::encode(ma, Major::Row);
    BitmapMatrix b = BitmapMatrix::encode(mb, Major::Row);
    std::vector<int> pos(200);
    for (int line = 0; line < 4; ++line) {
        std::vector<int> expect;
        for (int c = 0; c < 200; ++c)
            if (ma.at(line, c) != 0.0f && mb.at(line, c) != 0.0f)
                expect.push_back(c);
        EXPECT_EQ(andPopcount(a.lineBits(line), b.lineBits(line)),
                  static_cast<int>(expect.size()));
        const int n = andPositionsInto(a.lineBits(line),
                                       b.lineBits(line), pos.data());
        ASSERT_EQ(n, static_cast<int>(expect.size()));
        EXPECT_TRUE(
            std::equal(expect.begin(), expect.end(), pos.begin()));
    }
}

TEST(Bitmap, AndPrimitivesToleratiesMismatchedSpans)
{
    // Missing words are treated as zero: intersecting a 2-word line
    // with a 1-word line only sees the shared prefix.
    std::vector<uint64_t> longer = {~uint64_t{0}, ~uint64_t{0}};
    std::vector<uint64_t> shorter = {uint64_t{0b1011}};
    EXPECT_EQ(andPopcount(longer, shorter), 3);
    std::vector<int> pos(4);
    EXPECT_EQ(andPositionsInto(longer, shorter, pos.data()), 3);
    EXPECT_EQ(pos[0], 0);
    EXPECT_EQ(pos[1], 1);
    EXPECT_EQ(pos[2], 3);
}

} // namespace
} // namespace dstc
