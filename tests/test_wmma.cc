#include "gemm/wmma.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

TEST(Wmma, InnerMatchesReferenceFp16)
{
    Rng rng(91);
    Matrix<float> a = randomSparseMatrix(16, 16, 0.3, rng);
    Matrix<float> b = randomSparseMatrix(16, 16, 0.3, rng);
    EXPECT_EQ(maxAbsDiff(wmmaInner(a, b), refGemmFp16(a, b)), 0.0);
}

TEST(Wmma, OuterEqualsInnerBitwise)
{
    // The FEDP -> FEOP swap preserves dense semantics exactly
    // (Sec. V-A1): same products, same accumulation order.
    Rng rng(92);
    for (int trial = 0; trial < 20; ++trial) {
        Matrix<float> a = randomSparseMatrix(16, 16, 0.2, rng);
        Matrix<float> b = randomSparseMatrix(16, 16, 0.2, rng);
        Matrix<float> c = randomSparseMatrix(16, 16, 0.5, rng);
        Matrix<float> inner = wmmaInner(a, b, &c);
        Matrix<float> outer = wmmaOuter(a, b, &c);
        EXPECT_EQ(maxAbsDiff(inner, outer), 0.0) << "trial " << trial;
    }
}

TEST(Wmma, AccumulatorAdds)
{
    Matrix<float> a(2, 2), b(2, 2), c(2, 2, 100.0f);
    a.at(0, 0) = 1;
    b.at(0, 0) = 2;
    Matrix<float> d = wmmaOuter(a, b, &c);
    EXPECT_FLOAT_EQ(d.at(0, 0), 102.0f);
    EXPECT_FLOAT_EQ(d.at(1, 1), 100.0f);
}

TEST(Wmma, OperandsAreFp16Quantized)
{
    Matrix<float> a(1, 1), b(1, 1);
    a.at(0, 0) = 1.0f + 0x1.0p-13f; // not representable in FP16
    b.at(0, 0) = 1.0f;
    EXPECT_FLOAT_EQ(wmmaInner(a, b).at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(wmmaOuter(a, b).at(0, 0), 1.0f);
}

class WmmaShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, double>>
{
};

TEST_P(WmmaShapeSweep, InnerOuterAgreeOnAllShapes)
{
    const auto [m, n, k, sparsity] = GetParam();
    Rng rng(static_cast<uint64_t>(m * 100 + n * 10 + k));
    Matrix<float> a = randomSparseMatrix(m, k, sparsity, rng);
    Matrix<float> b = randomSparseMatrix(k, n, sparsity, rng);
    EXPECT_EQ(maxAbsDiff(wmmaInner(a, b), wmmaOuter(a, b)), 0.0);
    EXPECT_EQ(maxAbsDiff(wmmaOuter(a, b), refGemmFp16(a, b)), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WmmaShapeSweep,
    ::testing::Values(std::tuple{1, 1, 1, 0.0},
                      std::tuple{4, 4, 4, 0.5},
                      std::tuple{8, 16, 1, 0.3},
                      std::tuple{16, 16, 16, 0.0},
                      std::tuple{16, 16, 16, 0.9},
                      std::tuple{5, 7, 9, 0.4},
                      std::tuple{32, 8, 24, 0.6}));

} // namespace
} // namespace dstc
