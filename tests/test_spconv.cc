#include "conv/spconv.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/sparsity_gen.h"
#include "tensor/reference.h"

namespace dstc {
namespace {

class SpConvTest : public ::testing::Test
{
  protected:
    GpuConfig cfg_ = GpuConfig::v100();
    ConvExecutor executor_{cfg_};

    ConvShape
    shape(int c = 4, int hw = 10, int oc = 6, int kernel = 3,
          int stride = 1, int pad = 1) const
    {
        ConvShape s;
        s.batch = 1;
        s.in_c = c;
        s.in_h = s.in_w = hw;
        s.out_c = oc;
        s.kernel = kernel;
        s.stride = stride;
        s.pad = pad;
        return s;
    }
};

TEST_F(SpConvTest, AllMethodsComputeTheSameConvolution)
{
    Rng rng(191);
    ConvShape s = shape();
    Tensor4d input = reluActivationTensor(1, 4, 10, 10, 0.5, rng);
    Matrix<float> weights = randomSparseMatrix(6, 36, 0.7, rng);
    Tensor4d golden = refConv2d(input, weights, s.params());

    for (ConvMethod method :
         {ConvMethod::DenseExplicit, ConvMethod::DenseImplicit,
          ConvMethod::SingleSparseExplicit,
          ConvMethod::SingleSparseImplicit,
          ConvMethod::DualSparseImplicit}) {
        ConvResult r = executor_.run(input, weights, s, method);
        double worst = 0.0;
        for (size_t i = 0; i < golden.size(); ++i)
            worst = std::max(worst, static_cast<double>(std::fabs(
                                        r.output.data()[i] -
                                        golden.data()[i])));
        EXPECT_LT(worst, 2e-2) << convMethodName(method);
        EXPECT_GT(r.stats.timeUs(), 0.0);
    }
}

TEST_F(SpConvTest, DualSparseBeatsDenseAtHighSparsity)
{
    Rng rng(192);
    ConvShape s = shape(32, 28, 32);
    Tensor4d input = reluActivationTensor(1, 32, 28, 28, 0.7, rng);
    Matrix<float> weights = randomSparseMatrix(32, 32 * 9, 0.85, rng);

    const double dense =
        executor_.run(input, weights, s, ConvMethod::DenseImplicit)
            .stats.timeUs();
    const double dual =
        executor_
            .run(input, weights, s, ConvMethod::DualSparseImplicit)
            .stats.timeUs();
    EXPECT_GT(dense / dual, 1.3);
}

TEST_F(SpConvTest, ImplicitBeatsExplicitOnDense)
{
    // cuDNN's headline: implicit im2col avoids the lowered-matrix
    // round trip through DRAM.
    KernelStats exp_stats = executor_.timeOnly(
        shape(64, 56, 64), ConvMethod::DenseExplicit, 0.0, 0.0);
    KernelStats imp_stats = executor_.timeOnly(
        shape(64, 56, 64), ConvMethod::DenseImplicit, 0.0, 0.0);
    EXPECT_LT(imp_stats.timeUs(), exp_stats.timeUs());
    EXPECT_LT(imp_stats.dram_bytes, exp_stats.dram_bytes);
}

TEST_F(SpConvTest, SingleSparseImplicitIgnoresActivationSparsity)
{
    ConvShape s = shape(64, 28, 64);
    KernelStats dense_act = executor_.timeOnly(
        s, ConvMethod::SingleSparseImplicit, 0.8, 0.0, 7);
    KernelStats sparse_act = executor_.timeOnly(
        s, ConvMethod::SingleSparseImplicit, 0.8, 0.9, 7);
    // Same seed, same weights: activation sparsity must not matter.
    EXPECT_NEAR(dense_act.timeUs(), sparse_act.timeUs(),
                dense_act.timeUs() * 0.01);
}

TEST_F(SpConvTest, DualSparseExploitsBothSides)
{
    ConvShape s = shape(64, 28, 64);
    const double weight_only =
        executor_
            .timeOnly(s, ConvMethod::DualSparseImplicit, 0.8, 0.0, 7)
            .timeUs();
    const double both =
        executor_
            .timeOnly(s, ConvMethod::DualSparseImplicit, 0.8, 0.6, 7)
            .timeUs();
    EXPECT_LT(both, weight_only);
}

TEST_F(SpConvTest, TimeOnlyIsDeterministicPerSeed)
{
    ConvShape s = shape(16, 14, 16);
    const double a =
        executor_
            .timeOnly(s, ConvMethod::DualSparseImplicit, 0.7, 0.5, 3)
            .timeUs();
    const double b =
        executor_
            .timeOnly(s, ConvMethod::DualSparseImplicit, 0.7, 0.5, 3)
            .timeUs();
    EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(SpConvTest, StridedAndPaddedConvRunsAllMethods)
{
    Rng rng(193);
    ConvShape s = shape(3, 11, 5, 3, 2, 1);
    Tensor4d input = reluActivationTensor(1, 3, 11, 11, 0.4, rng);
    Matrix<float> weights = randomSparseMatrix(5, 27, 0.5, rng);
    Tensor4d golden = refConv2d(input, weights, s.params());
    ConvResult r =
        executor_.run(input, weights, s, ConvMethod::DualSparseImplicit);
    double worst = 0.0;
    for (size_t i = 0; i < golden.size(); ++i)
        worst = std::max(worst, static_cast<double>(std::fabs(
                                    r.output.data()[i] -
                                    golden.data()[i])));
    EXPECT_LT(worst, 2e-2);
}

TEST_F(SpConvTest, MethodNamesMatchLegend)
{
    EXPECT_STREQ(convMethodName(ConvMethod::DenseImplicit),
                 "Dense Implicit");
    EXPECT_STREQ(convMethodName(ConvMethod::DualSparseImplicit),
                 "Dual Sparse Implicit");
}

} // namespace
} // namespace dstc
