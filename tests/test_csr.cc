#include "sparse/csr.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dstc {
namespace {

TEST(Csr, EncodeDecode)
{
    Rng rng(31);
    Matrix<float> m = randomSparseMatrix(20, 30, 0.8, rng);
    CsrMatrix csr = CsrMatrix::encode(m);
    EXPECT_EQ(csr.rows(), 20);
    EXPECT_EQ(csr.cols(), 30);
    EXPECT_EQ(csr.nnz(), m.nnz());
    EXPECT_EQ(csr.decode(), m);
}

TEST(Csr, RowPtrIsMonotonicPrefixSum)
{
    Rng rng(32);
    Matrix<float> m = randomSparseMatrix(15, 15, 0.5, rng);
    CsrMatrix csr = CsrMatrix::encode(m);
    ASSERT_EQ(csr.rowPtr().size(), 16u);
    EXPECT_EQ(csr.rowPtr()[0], 0);
    for (int r = 0; r < 15; ++r) {
        EXPECT_LE(csr.rowPtr()[r], csr.rowPtr()[r + 1]);
        EXPECT_EQ(csr.rowNnz(r),
                  csr.rowPtr()[r + 1] - csr.rowPtr()[r]);
    }
    EXPECT_EQ(csr.rowPtr()[15], csr.nnz());
}

TEST(Csr, ColIdxSortedWithinRow)
{
    Rng rng(33);
    Matrix<float> m = randomSparseMatrix(10, 40, 0.6, rng);
    CsrMatrix csr = CsrMatrix::encode(m);
    for (int r = 0; r < 10; ++r)
        for (int i = csr.rowPtr()[r] + 1; i < csr.rowPtr()[r + 1]; ++i)
            EXPECT_LT(csr.colIdx()[i - 1], csr.colIdx()[i]);
}

TEST(Csr, ValueAtMatchesDense)
{
    Rng rng(34);
    Matrix<float> m = randomSparseMatrix(12, 12, 0.7, rng);
    CsrMatrix csr = CsrMatrix::encode(m);
    for (int r = 0; r < 12; ++r)
        for (int c = 0; c < 12; ++c)
            EXPECT_FLOAT_EQ(csr.valueAt(r, c), m.at(r, c));
}

TEST(Csr, ValueAtCountsProbes)
{
    Matrix<float> m(1, 8);
    m.at(0, 2) = 1.0f;
    m.at(0, 5) = 2.0f;
    CsrMatrix csr = CsrMatrix::encode(m);
    int64_t probes = 0;
    csr.valueAt(0, 5, &probes);
    EXPECT_EQ(probes, 2); // scanned col 2 then col 5
    probes = 0;
    csr.valueAt(0, 0, &probes);
    EXPECT_EQ(probes, 1); // first index already past target
}

TEST(Csr, EmptyMatrix)
{
    Matrix<float> m(4, 4);
    CsrMatrix csr = CsrMatrix::encode(m);
    EXPECT_EQ(csr.nnz(), 0);
    EXPECT_EQ(csr.decode(), m);
    EXPECT_EQ(csr.valueAt(2, 2), 0.0f);
}

TEST(Csr, EncodedBytesTrackNnz)
{
    Rng rng(35);
    Matrix<float> sparse = randomSparseMatrix(50, 50, 0.95, rng);
    Matrix<float> dense = randomSparseMatrix(50, 50, 0.0, rng);
    EXPECT_LT(CsrMatrix::encode(sparse).encodedBytes(),
              CsrMatrix::encode(dense).encodedBytes());
}

} // namespace
} // namespace dstc
