#include "hwmodel/area_power.h"

#include <gtest/gtest.h>

namespace dstc {
namespace {

TEST(AreaPower, TableIVNumbers)
{
    OverheadReport report = estimateOverhead(GpuConfig::v100());
    ASSERT_EQ(report.components.size(), 3u);

    const auto &adders = report.components[0];
    const auto &collector = report.components[1];
    const auto &buffer = report.components[2];

    EXPECT_EQ(adders.name, "Float Point Adders");
    EXPECT_NEAR(adders.area_mm2, 0.121, 0.01);
    EXPECT_NEAR(adders.power_w, 2.35, 0.1);

    EXPECT_EQ(collector.name, "Accumulation Operand Collector");
    EXPECT_NEAR(collector.area_mm2, 1.51, 0.1);
    EXPECT_NEAR(collector.power_w, 0.46, 0.05);

    EXPECT_EQ(buffer.name, "Shared Accumulation Buffer");
    EXPECT_NEAR(buffer.area_mm2, 11.215, 0.5);
    EXPECT_NEAR(buffer.power_w, 1.08, 0.1);

    // Totals: 12.846 mm^2 = 1.5% of the 815 mm^2 die; 3.89 W = 1.6%
    // of the 250 W TDP.
    EXPECT_NEAR(report.totalAreaMm2(), 12.846, 0.6);
    EXPECT_NEAR(report.totalPowerW(), 3.89, 0.2);
    EXPECT_NEAR(report.areaFraction(), 0.015, 0.002);
    EXPECT_NEAR(report.powerFraction(), 0.016, 0.002);
}

TEST(AreaPower, ScalesWithMachineSize)
{
    GpuConfig half = GpuConfig::v100();
    half.num_sms = 40;
    OverheadReport full_report = estimateOverhead(GpuConfig::v100());
    OverheadReport half_report = estimateOverhead(half);
    EXPECT_NEAR(half_report.totalAreaMm2(),
                full_report.totalAreaMm2() / 2.0,
                full_report.totalAreaMm2() * 0.05);
}

TEST(AreaPower, BufferGrowsWithCapacity)
{
    GpuConfig big = GpuConfig::v100();
    big.accum_bytes = 8192;
    EXPECT_GT(estimateOverhead(big).components[2].area_mm2,
              estimateOverhead(GpuConfig::v100())
                  .components[2]
                  .area_mm2 * 1.8);
}

TEST(AreaPower, NodeScaling)
{
    EXPECT_DOUBLE_EQ(nodeAreaScale(22, 22), 1.0);
    EXPECT_NEAR(nodeAreaScale(22, 12), 0.2975, 0.001);
    EXPECT_GT(nodeAreaScale(12, 22), 1.0);
}

TEST(AreaPower, SramAreaMonotonicInBanks)
{
    EXPECT_GT(sramAreaMm2(100, 256, 12), sramAreaMm2(100, 128, 12));
    EXPECT_GT(sramAreaMm2(100, 128, 12), sramAreaMm2(100, 32, 12));
}

} // namespace
} // namespace dstc
