/**
 * @file
 * Scalar reference of the warp-tile kernel, compiled into the
 * test-only `dstc_reference` library (the shipped `dstc` library
 * carries the word-parallel path alone). The equivalence tests and
 * bench/micro_spgemm link this target to keep the bitwise pin:
 * computeTile == computeTileScalar for every tile and datatype.
 */
#include "gemm/spgemm_warp.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/logging.h"
#include "isa/program_builder.h"

namespace dstc {

namespace {

void
checkTilePair(const BitmapMatrix &a_tile, const BitmapMatrix &b_tile,
              const SpWmmaShape &shape)
{
    DSTC_ASSERT(a_tile.major() == Major::Col,
                "A tile must be column-major encoded");
    DSTC_ASSERT(b_tile.major() == Major::Row,
                "B tile must be row-major encoded");
    DSTC_ASSERT(a_tile.cols() == b_tile.rows(), "k mismatch: ",
                a_tile.cols(), " vs ", b_tile.rows());
    DSTC_ASSERT(a_tile.rows() <= shape.m && b_tile.cols() <= shape.n,
                "warp tile exceeds SpWMMA shape");
}

} // namespace

WarpTileResult
SpGemmWarpEngine::computeTileScalar(const BitmapMatrix &a_tile,
                                    const BitmapMatrix &b_tile,
                                    Matrix<float> *accum,
                                    bool detailed_merge,
                                    const QuantSpec &spec_a,
                                    const QuantSpec &spec_b) const
{
    checkTilePair(a_tile, b_tile, shape_);
    const int m = a_tile.rows();
    const int n = b_tile.cols();
    const int k = a_tile.cols();
    if (accum) {
        DSTC_ASSERT(accum->rows() == m && accum->cols() == n);
    }

    WarpProgram prog;
    MergeTrace trace;
    WarpTileResult result;

    for (int step = 0; step < k; ++step) {
        // The hardware POPCs the A-column / B-row bitmaps (Fig. 15).
        const int popc_a = a_tile.lineNnz(step);
        const int popc_b = b_tile.lineNnz(step);
        buildSpWmmaSet(prog, step, popc_a, popc_b, shape_);
        if (popc_a == 0 || popc_b == 0)
            continue;

        const auto pos_a = a_tile.linePositions(step, 0, m);
        const auto pos_b = b_tile.linePositions(step, 0, n);
        const auto val_a = a_tile.lineValues(step);
        const auto val_b = b_tile.lineValues(step);

        // multiply-value on the condensed operands: each OHMMA covers
        // an (8 x 16) chunk pair; non-padding products scatter into
        // the tile at the positions the multiply-bitmap recovers.
        // Quantization happens here, per consumed value — the word
        // path reads the pre-quantized encode-time lane instead, and
        // the pin proves the two agree bit for bit.
        for (int ac = 0; ac < ceilDiv(popc_a, shape_.a_chunk); ++ac) {
            for (int bc = 0; bc < ceilDiv(popc_b, shape_.b_chunk);
                 ++bc) {
                std::vector<int> addrs;
                const int a_lo = ac * shape_.a_chunk;
                const int a_hi =
                    std::min(popc_a, a_lo + shape_.a_chunk);
                const int b_lo = bc * shape_.b_chunk;
                const int b_hi =
                    std::min(popc_b, b_lo + shape_.b_chunk);
                for (int ia = a_lo; ia < a_hi; ++ia) {
                    const float av = spec_a.apply(val_a[ia]);
                    for (int ib = b_lo; ib < b_hi; ++ib) {
                        if (accum) {
                            accum->at(pos_a[ia], pos_b[ib]) +=
                                av * spec_b.apply(val_b[ib]);
                        }
                        addrs.push_back(pos_a[ia] * n + pos_b[ib]);
                        ++result.macs;
                    }
                }
                result.merge_accesses +=
                    static_cast<int64_t>(addrs.size());
                trace.instr_addrs.push_back(std::move(addrs));
            }
        }
    }

    result.mix = prog.mix();
    result.issue_cycles = result.mix.tensorCycles();
    // Scalar pipe: one slot per surviving (non-compacted) k-step for
    // the POPC/predicate work, plus the per-tile occupancy-bitmap
    // AND that drives the k-compaction.
    result.scalar_cycles = result.mix.bohmma + 2;
    if (detailed_merge) {
        AccumBufferSim sim(cfg_.accum_banks, cfg_.operand_collector,
                           cfg_.collector_window);
        result.merge_cycles = sim.simulateSparse(trace);
    } else {
        result.merge_cycles = static_cast<int64_t>(
            merge_model_.tileCycles(result.merge_accesses,
                                    result.mix.ohmma_issued));
    }
    return result;
}

} // namespace dstc
