/**
 * @file
 * Scalar narrow-tile SpMM reference, compiled into the test-only
 * `dstc_reference` library: the scalar NarrowTileMatrix::encode plus
 * a serial strip-major multiply in the word path's exact
 * accumulation order (ascending column within each strip, ascending
 * row within each vector). The equivalence tests and
 * bench/micro_spmm pin SpmmDevice::multiplyNarrow bitwise to this
 * for every worker count and datatype.
 */
#include "gemm/spmm_device.h"

#include "common/logging.h"

namespace dstc {

Matrix<float>
refSpmmNarrow(const Matrix<float> &a, const Matrix<float> &b,
              DataType dtype)
{
    DSTC_ASSERT(a.cols() == b.rows(), "SpMM dims: ", a.rows(), "x",
                a.cols(), " * ", b.rows(), "x", b.cols());
    const QuantSpec spec_a = QuantSpec::forValues(
        dtype, a.data().data(), a.data().size());
    const QuantSpec spec_b = QuantSpec::forValues(
        dtype, b.data().data(), b.data().size());
    const NarrowTileMatrix a_enc = NarrowTileMatrix::encode(a, spec_a);

    const int64_t m = a.rows(), k = a.cols(), n = b.cols();
    std::vector<float> bq(static_cast<size_t>(k) * n);
    const float *bsrc = b.data().data();
    for (size_t i = 0; i < bq.size(); ++i)
        bq[i] = spec_b.apply(bsrc[i]);

    Matrix<float> d(static_cast<int>(m), static_cast<int>(n));
    float *d_base = d.data().data();
    for (int s = 0; s < a_enc.numStrips(); ++s) {
        const int64_t r0 =
            static_cast<int64_t>(s) * NarrowTileMatrix::kStripRows;
        int64_t v = a_enc.stripOffset(s);
        for (int w = 0; w < a_enc.wordsPerStrip(); ++w) {
            uint64_t word = a_enc.stripWord(s, w);
            const int64_t c_base = static_cast<int64_t>(w) << 6;
            while (word) {
                const int64_t c = c_base + std::countr_zero(word);
                word &= word - 1;
                uint8_t mask = a_enc.vectorMask(v);
                const float *vals =
                    a_enc.vectorValuesQuant(v).data();
                const float *brow =
                    bq.data() + static_cast<size_t>(c) * n;
                while (mask) {
                    const int j = std::countr_zero(
                        static_cast<uint32_t>(mask));
                    mask = static_cast<uint8_t>(mask & (mask - 1));
                    const float x = *vals++;
                    float *drow =
                        d_base + static_cast<size_t>(r0 + j) * n;
                    for (int64_t cn = 0; cn < n; ++cn)
                        drow[cn] += x * brow[cn];
                }
                ++v;
            }
        }
    }

    const float out_scale = QuantSpec::outputScale(spec_a, spec_b);
    if (out_scale != 1.0f)
        for (float &x : d.data())
            x *= out_scale;
    return d;
}

} // namespace dstc
