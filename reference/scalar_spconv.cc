/**
 * @file
 * Scalar reference of the convolution pipeline, compiled into the
 * test-only `dstc_reference` library. The conv equivalence tests and
 * bench/micro_spconv link this target to keep the bitwise pin:
 * ConvExecutor::run == runScalar (outputs and stats) for every
 * method, shape and worker count. Non-implicit-sparse methods
 * delegate to the lowered baseline path in the shipped library —
 * production and reference share that one definition.
 */
#include "conv/spconv.h"

#include "common/logging.h"
#include "gemm/spgemm_device.h"
#include "im2col/dense_im2col.h"
#include "tensor/reference.h"

namespace dstc {

namespace {

bool
isImplicitSparse(ConvMethod method)
{
    return method == ConvMethod::SingleSparseImplicit ||
           method == ConvMethod::DualSparseImplicit;
}

} // namespace

ConvResult
ConvExecutor::runScalar(const Tensor4d &input,
                        const Matrix<float> &weights,
                        const ConvShape &shape, ConvMethod method,
                        const ConvOptions &options) const
{
    // The explicit / dense-implicit baselines ARE the scalar path;
    // the library executes them through runLowered.
    if (!isImplicitSparse(method))
        return runLowered(input, weights, shape, method, options);

    DSTC_ASSERT(weights.rows() == shape.out_c &&
                weights.cols() == shape.loweredCols(),
                "weights must be out_c x (in_c*k*k)");

    const Matrix<float> wt = flattenWeightsTransposed(weights);

    // The reference lowering keeps the per-bit strided gather
    // (word_strided = false): run()'s word-parallel deinterleave is
    // pinned against this path bit for bit.
    BitmapFeatureMap fmap = BitmapFeatureMap::encode(input);
    LoweredFeatureMap lfm =
        im2colFromBitmap(fmap, shape, true, 1, false);
    Matrix<float> lowered = lfm.decode();
    const double input_bytes =
        static_cast<double>(fmap.encodedBytes());

    // Functional GEMM through the dense-operand entry (per-element
    // profile + re-encode inside), matching run()'s direct re-tile.
    SpGemmDevice spgemm(cfg_);
    SpGemmOptions opts;
    opts.functional = true;
    opts.num_workers = options.num_workers;
    Matrix<float> d = spgemm.multiply(lowered, wt, opts).d;

    // Timing from the actual data's sparsity.
    SparsityProfile a_profile =
        method == ConvMethod::DualSparseImplicit
            ? SparsityProfile::fromMatrixA(lowered, 32)
            : SparsityProfile::denseA(shape.loweredRows(),
                                      shape.loweredCols(), 32);
    SparsityProfile b_profile = SparsityProfile::fromMatrixB(wt, 32);
    const double weight_bytes =
        static_cast<double>(b_profile.encodedBytes(32));

    ConvResult result;
    result.stats = timeGemmPhase(shape, method, &a_profile, &b_profile,
                                 input_bytes, weight_bytes);
    result.output = foldLoweredOutput(d, shape);
    return result;
}

} // namespace dstc
