/**
 * @file
 * AGP pruning sweep: prune one weight matrix along the cubic AGP
 * schedule and watch the dual-side SpGEMM speedup grow with
 * sparsity — the end-to-end pruning -> acceleration loop a model
 * owner would run with this library.
 *
 * Build & run:  ./build/examples/pruning_sweep
 */
#include <cstdio>

#include "core/engine.h"
#include "common/rng.h"
#include "model/pruning.h"
#include "model/sparsity_gen.h"

int
main()
{
    using namespace dstc;
    DstcEngine engine;
    Rng rng(7);

    const int n = 1024;
    Matrix<float> dense_weights = randomSparseMatrix(n, n, 0.0, rng);
    Matrix<float> activations = reluActivationMatrix(n, n, 0.5, rng);
    const double dense_us = engine.denseGemmTime(n, n, n).timeUs();

    std::printf("AGP schedule to 95%% sparsity over 10 steps, "
                "%dx%dx%d GEMM, activations 50%% sparse\n\n",
                n, n, n);
    std::printf("%6s %10s %12s %10s\n", "step", "sparsity",
                "time (us)", "speedup");

    SpGemmOptions timing_only;
    timing_only.functional = false;

    for (int step = 0; step <= 10; ++step) {
        const double target = agpSparsity(0.0, 0.95, step, 10);
        Matrix<float> pruned = magnitudePrune(dense_weights, target);
        KernelStats stats =
            engine.spgemm(activations, pruned, timing_only).stats;
        std::printf("%6d %9.1f%% %12.1f %9.2fx\n", step,
                    pruned.sparsity() * 100.0, stats.timeUs(),
                    dense_us / stats.timeUs());
    }

    std::printf("\nThe cubic AGP ramp prunes aggressively early; the "
                "dual-side design converts every additional increment "
                "of sparsity into time, with no 50%%/75%% format "
                "cliff.\n");
    return 0;
}
