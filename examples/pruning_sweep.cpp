/**
 * @file
 * AGP pruning sweep: prune one weight matrix along the cubic AGP
 * schedule and watch the dual-side SpGEMM speedup grow with
 * sparsity — the end-to-end pruning -> acceleration loop a model
 * owner would run with this library.
 *
 * The activation operand never changes across the sweep, so its
 * two-level encoding is built once and served from the session's
 * EncodingCache for the remaining ten steps.
 *
 * Build & run:  ./build/examples/pruning_sweep
 */
#include <cstdio>

#include "common/rng.h"
#include "core/session.h"
#include "model/pruning.h"
#include "model/sparsity_gen.h"

int
main()
{
    using namespace dstc;
    Session session;
    Rng rng(7);

    const int n = 1024;
    Matrix<float> dense_weights = randomSparseMatrix(n, n, 0.0, rng);
    Matrix<float> activations = reluActivationMatrix(n, n, 0.5, rng);

    KernelRequest dense_req =
        KernelRequest::gemm(n, n, n).withMethod(Method::Dense);
    const double dense_us = session.run(dense_req).timeUs();

    std::printf("AGP schedule to 95%% sparsity over 10 steps, "
                "%dx%dx%d GEMM, activations 50%% sparse\n\n",
                n, n, n);
    std::printf("%6s %10s %12s %10s %7s\n", "step", "sparsity",
                "time (us)", "speedup", "cache");

    for (int step = 0; step <= 10; ++step) {
        const double target = agpSparsity(0.0, 0.95, step, 10);
        Matrix<float> pruned = magnitudePrune(dense_weights, target);
        KernelRequest req = KernelRequest::gemm(activations, pruned)
                                .withMethod(Method::DualSparse)
                                .withFunctional(false);
        KernelReport report = session.run(req);
        std::printf("%6d %9.1f%% %12.1f %9.2fx %7s\n", step,
                    pruned.sparsity() * 100.0, report.timeUs(),
                    dense_us / report.timeUs(),
                    report.encode_cache_hit ? "hit" : "miss");
    }

    const EncodingCache::Counters counters =
        session.encodingCache().counters();
    std::printf("\nencoding cache: %lld hits / %lld misses (the "
                "activation encoding is reused across all steps)\n",
                static_cast<long long>(counters.hits),
                static_cast<long long>(counters.misses));
    std::printf("\nThe cubic AGP ramp prunes aggressively early; the "
                "dual-side design converts every additional increment "
                "of sparsity into time, with no 50%%/75%% format "
                "cliff.\n");
    return 0;
}
