/**
 * @file
 * BERT-base encoder layer on the dual-side sparse Tensor Core: all
 * four GEMMs of one transformer block with movement-pruned weights,
 * comparing Dense / Single Sparse / Dual Sparse execution — the
 * Fig. 22 BERT workflow at full layer scale, submitted as one
 * batched Session workload (12 kernels, one submitBatch call).
 *
 * Build & run:  ./build/examples/bert_encoder
 */
#include <cstdio>
#include <vector>

#include "core/session.h"
#include "model/zoo.h"

int
main()
{
    using namespace dstc;
    Session session;
    DnnModel bert = makeBertBase();

    std::printf("BERT-base encoder block, seq len 128, movement-pruned "
                "weights (Table II)\n\n");
    std::printf("%-10s %-16s %10s %14s %13s\n", "layer", "m x n x k",
                "dense(us)", "single(x)", "dual(x)");

    // One request per (layer, method); the whole block runs as a
    // single batch on the session's worker pool.
    const std::vector<Method> methods = {Method::Dense,
                                         Method::ZhuSparse,
                                         Method::DualSparse};
    std::vector<KernelRequest> requests;
    uint64_t seed = 2024;
    for (const auto &layer : bert.gemm_layers) {
        for (Method method : methods) {
            // Movement pruning concentrates the surviving weights
            // into whole heads/neurons, so the pattern is clustered.
            KernelRequest req =
                KernelRequest::gemm(layer.m, layer.n, layer.k,
                                    layer.act_sparsity,
                                    layer.weight_sparsity)
                    .withMethod(method)
                    .withClusters(layer.act_cluster,
                                  layer.weight_cluster)
                    .withSeed(seed)
                    .withTag(layer.name);
            requests.push_back(std::move(req));
        }
        ++seed;
    }
    std::vector<KernelReport> reports =
        session.runBatch(std::move(requests));

    double dense_total = 0.0, single_total = 0.0, dual_total = 0.0;
    size_t idx = 0;
    for (const auto &layer : bert.gemm_layers) {
        const double dense = reports[idx++].timeUs();
        const double single = reports[idx++].timeUs();
        const double dual = reports[idx++].timeUs();
        dense_total += dense;
        single_total += single;
        dual_total += dual;
        std::printf("%-10s %4lld x %4lld x %4lld %10.1f %13.2fx %12.2fx\n",
                    layer.name.c_str(), static_cast<long long>(layer.m),
                    static_cast<long long>(layer.n),
                    static_cast<long long>(layer.k), dense,
                    dense / single, dense / dual);
    }

    std::printf("\nfull block: dense %.1f us | single sparse %.2fx | "
                "dual sparse %.2fx\n",
                dense_total, dense_total / single_total,
                dense_total / dual_total);
    std::printf("\nThe Single Sparse baseline is capped by its fixed "
                "75%% pruning format, while the >90%% movement-pruned "
                "weights let the dual-side design keep scaling "
                "(Sec. VI-D).\n");
    return 0;
}
