/**
 * @file
 * BERT-base encoder layer on the dual-side sparse Tensor Core: all
 * four GEMMs of one transformer block with movement-pruned weights,
 * comparing Dense / Single Sparse / Dual Sparse execution — the
 * Fig. 22 BERT workflow at full layer scale.
 *
 * Build & run:  ./build/examples/bert_encoder
 */
#include <cstdio>

#include "core/engine.h"
#include "common/rng.h"
#include "model/zoo.h"

int
main()
{
    using namespace dstc;
    DstcEngine engine;
    DnnModel bert = makeBertBase();

    std::printf("BERT-base encoder block, seq len 128, movement-pruned "
                "weights (Table II)\n\n");
    std::printf("%-10s %-16s %10s %14s %13s\n", "layer", "m x n x k",
                "dense(us)", "single(x)", "dual(x)");

    double dense_total = 0.0, single_total = 0.0, dual_total = 0.0;
    Rng rng(2024);
    for (const auto &layer : bert.gemm_layers) {
        const double dense =
            engine.denseGemmTime(layer.m, layer.n, layer.k).timeUs();
        const double single =
            engine
                .zhuGemmTime(layer.m, layer.n, layer.k,
                             layer.weight_sparsity)
                .timeUs();
        // Movement pruning concentrates the surviving weights into
        // whole heads/neurons, so the weight pattern is clustered.
        SparsityProfile acts = SparsityProfile::randomA(
            layer.m, layer.k, 32, 1.0 - layer.act_sparsity,
            layer.act_cluster, rng);
        SparsityProfile wts = SparsityProfile::randomA(
            layer.n, layer.k, 32, 1.0 - layer.weight_sparsity,
            layer.weight_cluster, rng);
        const double dual = engine.spgemmTime(acts, wts).timeUs();

        dense_total += dense;
        single_total += single;
        dual_total += dual;
        std::printf("%-10s %4lld x %4lld x %4lld %10.1f %13.2fx %12.2fx\n",
                    layer.name.c_str(), static_cast<long long>(layer.m),
                    static_cast<long long>(layer.n),
                    static_cast<long long>(layer.k), dense,
                    dense / single, dense / dual);
    }

    std::printf("\nfull block: dense %.1f us | single sparse %.2fx | "
                "dual sparse %.2fx\n",
                dense_total, dense_total / single_total,
                dense_total / dual_total);
    std::printf("\nThe Single Sparse baseline is capped by its fixed "
                "75%% pruning format, while the >90%% movement-pruned "
                "weights let the dual-side design keep scaling "
                "(Sec. VI-D).\n");
    return 0;
}
