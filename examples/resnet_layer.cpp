/**
 * @file
 * Sparse convolution of a ResNet-style layer under all five
 * execution strategies of the paper's Fig. 22 — the SpCONV workflow:
 * ReLU activations -> bitmap feature map -> implicit sparse im2col
 * -> dual-side SpGEMM.
 *
 * Build & run:  ./build/examples/resnet_layer
 */
#include <cstdio>

#include "core/engine.h"
#include "common/rng.h"
#include "model/pruning.h"
#include "model/sparsity_gen.h"
#include "tensor/reference.h"

int
main()
{
    using namespace dstc;
    DstcEngine engine;

    // A mid-network ResNet block conv: 64ch 28x28, 3x3, AGP-pruned
    // weights at 75%, post-ReLU activations at ~55% sparsity.
    ConvShape shape;
    shape.in_c = 64;
    shape.in_h = shape.in_w = 28;
    shape.out_c = 64;
    shape.kernel = 3;
    shape.pad = 1;

    Rng rng(99);
    Tensor4d input = reluActivationTensor(1, 64, 28, 28, 0.55, rng);
    Matrix<float> weights = agpPrune(
        randomSparseMatrix(64, 64 * 9, 0.0, rng), 0.75, 8);

    std::printf("layer: %s\n", shape.str().c_str());
    std::printf("activation sparsity: %.1f%%, weight sparsity: "
                "%.1f%%\n\n",
                input.sparsity() * 100.0, weights.sparsity() * 100.0);

    Tensor4d golden = refConv2d(input, weights, shape.params());
    double dense_implicit_us = 0.0;
    for (ConvMethod method :
         {ConvMethod::DenseExplicit, ConvMethod::DenseImplicit,
          ConvMethod::SingleSparseExplicit,
          ConvMethod::SingleSparseImplicit,
          ConvMethod::DualSparseImplicit}) {
        ConvResult r = engine.conv(input, weights, shape, method);
        double err = 0.0;
        for (size_t i = 0; i < golden.size(); ++i)
            err = std::max(err, static_cast<double>(std::fabs(
                                    r.output.data()[i] -
                                    golden.data()[i])));
        if (method == ConvMethod::DenseImplicit)
            dense_implicit_us = r.stats.timeUs();
        std::printf("%-24s %9.1f us  (err %.1e)%s\n",
                    convMethodName(method), r.stats.timeUs(), err,
                    dense_implicit_us > 0.0 && method ==
                        ConvMethod::DualSparseImplicit
                        ? "  <- dual-side sparsity"
                        : "");
    }

    ConvResult dual = engine.conv(input, weights, shape,
                                  ConvMethod::DualSparseImplicit);
    std::printf("\nspeedup over Dense Implicit: %.2fx\n",
                dense_implicit_us / dual.stats.timeUs());
    return 0;
}
