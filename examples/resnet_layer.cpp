/**
 * @file
 * Sparse convolution of a ResNet-style layer under all five
 * execution strategies of the paper's Fig. 22 — the SpCONV workflow:
 * ReLU activations -> bitmap feature map -> implicit sparse im2col
 * -> dual-side SpGEMM — each strategy a KernelRequest on one
 * Session.
 *
 * Build & run:  ./build/examples/resnet_layer
 */
#include <cstdio>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/session.h"
#include "model/pruning.h"
#include "model/sparsity_gen.h"
#include "tensor/reference.h"

int
main()
{
    using namespace dstc;
    Session session;

    // A mid-network ResNet block conv: 64ch 28x28, 3x3, AGP-pruned
    // weights at 75%, post-ReLU activations at ~55% sparsity.
    ConvShape shape;
    shape.in_c = 64;
    shape.in_h = shape.in_w = 28;
    shape.out_c = 64;
    shape.kernel = 3;
    shape.pad = 1;

    Rng rng(99);
    Tensor4d input = reluActivationTensor(1, 64, 28, 28, 0.55, rng);
    Matrix<float> weights = agpPrune(
        randomSparseMatrix(64, 64 * 9, 0.0, rng), 0.75, 8);

    std::printf("layer: %s\n", shape.str().c_str());
    std::printf("activation sparsity: %.1f%%, weight sparsity: "
                "%.1f%%\n\n",
                input.sparsity() * 100.0, weights.sparsity() * 100.0);

    Tensor4d golden = refConv2d(input, weights, shape.params());
    const std::vector<std::pair<Method, Lowering>> strategies = {
        {Method::Dense, Lowering::Explicit},
        {Method::Dense, Lowering::Implicit},
        {Method::ZhuSparse, Lowering::Explicit},
        {Method::ZhuSparse, Lowering::Implicit},
        {Method::DualSparse, Lowering::Implicit}};

    double dense_implicit_us = 0.0, dual_us = 0.0;
    for (const auto &[method, lowering] : strategies) {
        KernelRequest req = KernelRequest::conv(input, weights, shape)
                                .withMethod(method)
                                .withLowering(lowering);
        KernelReport r = session.run(req);
        double err = 0.0;
        for (size_t i = 0; i < golden.size(); ++i)
            err = std::max(err, static_cast<double>(std::fabs(
                                    r.output->data()[i] -
                                    golden.data()[i])));
        const bool is_dual = method == Method::DualSparse;
        if (method == Method::Dense && lowering == Lowering::Implicit)
            dense_implicit_us = r.timeUs();
        if (is_dual)
            dual_us = r.timeUs();
        std::printf("%-24s %9.1f us  (err %.1e)%s\n",
                    r.stats.name.c_str(), r.timeUs(), err,
                    is_dual ? "  <- dual-side sparsity" : "");
    }

    std::printf("\nspeedup over Dense Implicit: %.2fx\n",
                dense_implicit_us / dual_us);
    return 0;
}
