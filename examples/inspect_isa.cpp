/**
 * @file
 * ISA inspection: compile a sparse warp tile into the predicated
 * SpWMMA instruction stream and print the Fig. 17-style listing —
 * including the paper's running example (POPC 20/12 enabling
 * OHMMA 0/2/4 of the set, Fig. 15).
 *
 * Build & run:  ./build/examples/inspect_isa
 */
#include <cstdio>

#include "common/rng.h"
#include "isa/trace.h"
#include "tensor/matrix.h"

int
main()
{
    using namespace dstc;

    // The Fig. 15 example: an Av column with 20 non-zeros crossing a
    // Bv row with 12.
    {
        Matrix<float> a(32, 1), b(1, 32);
        for (int i = 0; i < 20; ++i)
            a.at(i, 0) = 0.5f + i;
        for (int i = 0; i < 12; ++i)
            b.at(0, i) = 1.0f + i;
        TileTrace trace =
            traceWarpTile(BitmapMatrix::encode(a, Major::Col),
                          BitmapMatrix::encode(b, Major::Row));
        std::printf("== Fig. 15 example (popc 20 x 12) ==\n%s\n",
                    trace.listing.c_str());
    }

    // A random sparse 32x32x4 warp tile.
    {
        Rng rng(15);
        Matrix<float> a = randomSparseMatrix(32, 4, 0.7, rng);
        Matrix<float> b = randomSparseMatrix(4, 32, 0.6, rng);
        TileTrace trace =
            traceWarpTile(BitmapMatrix::encode(a, Major::Col),
                          BitmapMatrix::encode(b, Major::Row));
        std::printf("== Random 32x32x4 warp tile (A 70%% / B 60%% "
                    "sparse) ==\n%s",
                    trace.listing.c_str());
    }
    return 0;
}
