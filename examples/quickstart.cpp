/**
 * @file
 * Quickstart for the Session / KernelRegistry API: multiply two
 * sparse matrices on the dual-side sparse Tensor Core model, verify
 * against a reference, let Method::Auto pick the backend, and
 * inspect the timing breakdown.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "common/rng.h"
#include "core/session.h"
#include "tensor/reference.h"

int
main()
{
    using namespace dstc;

    // 1. A session over the V100 machine model. It owns the kernel
    //    registry (the five backends), the encoding cache and the
    //    worker pool.
    Session session;

    // 2. Two sparse operands: 70%-sparse activations x 80%-sparse
    //    weights, 512x512x512.
    Rng rng(1234);
    Matrix<float> activations = randomSparseMatrix(512, 512, 0.70, rng);
    Matrix<float> weights = randomSparseMatrix(512, 512, 0.80, rng);

    // 3. Run the dual-side SpGEMM (functional + timed).
    KernelRequest req = KernelRequest::gemm(activations, weights)
                            .withMethod(Method::DualSparse);
    KernelReport result = session.run(req);

    // 4. Verify the functional result against the FP16 reference.
    const double err =
        maxAbsDiff(*result.d, refGemmFp16(activations, weights));
    std::printf("max |error| vs reference: %.2e  (%s)\n", err,
                err < 1e-4 ? "OK" : "FAIL");

    // 5. Compare with the dense tensor-core baseline through the
    //    same API.
    KernelRequest dense_req =
        KernelRequest::gemm(512, 512, 512).withMethod(Method::Dense);
    const double dense_us = session.run(dense_req).timeUs();
    const KernelStats &stats = result.stats;
    std::printf("\n-- timing --\n");
    std::printf("dual-side SpGEMM : %8.1f us (%s bound)\n",
                stats.timeUs(),
                stats.bound == Bound::Compute ? "compute" : "memory");
    std::printf("dense (CUTLASS)  : %8.1f us\n", dense_us);
    std::printf("speedup          : %8.2fx\n",
                dense_us / stats.timeUs());

    // 6. Or let the registry decide: Method::Auto plans every exact
    //    backend and picks the profiled winner.
    KernelRequest auto_req = KernelRequest::gemm(activations, weights)
                                 .withMethod(Method::Auto);
    KernelReport chosen = session.run(auto_req);
    std::printf("\nMethod::Auto picked: %s (%.1f us; operand "
                "encodings %s)\n",
                chosen.backend.c_str(), chosen.timeUs(),
                chosen.encode_cache_hit ? "reused from cache"
                                        : "freshly encoded");

    std::printf("\n-- instruction mix --\n");
    std::printf("OHMMA issued  : %lld\n",
                static_cast<long long>(stats.mix.ohmma_issued));
    std::printf("OHMMA skipped : %lld (predication, Fig. 15)\n",
                static_cast<long long>(stats.mix.ohmma_skipped));
    std::printf("BOHMMA        : %lld (bitmap products)\n",
                static_cast<long long>(stats.mix.bohmma));
    std::printf("warp tiles    : %lld run, %lld skipped by the "
                "warp-bitmap\n",
                static_cast<long long>(stats.warp_tiles),
                static_cast<long long>(stats.warp_tiles_skipped));
    return err < 1e-4 ? 0 : 1;
}
