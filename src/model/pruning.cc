#include "model/pruning.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/logging.h"

namespace dstc {

double
agpSparsity(double initial, double final_sparsity, int step,
            int total_steps)
{
    DSTC_ASSERT(total_steps > 0);
    DSTC_ASSERT(step >= 0 && step <= total_steps);
    const double progress =
        static_cast<double>(step) / static_cast<double>(total_steps);
    const double ramp = 1.0 - std::pow(1.0 - progress, 3.0);
    return initial + (final_sparsity - initial) * ramp;
}

Matrix<float>
magnitudePrune(const Matrix<float> &weights, double sparsity)
{
    DSTC_ASSERT(sparsity >= 0.0 && sparsity <= 1.0);
    const size_t total = weights.size();
    const size_t to_zero = static_cast<size_t>(
        std::llround(sparsity * static_cast<double>(total)));
    if (to_zero == 0)
        return weights;

    std::vector<size_t> order(total);
    std::iota(order.begin(), order.end(), size_t{0});
    const auto &data = weights.data();
    std::nth_element(order.begin(), order.begin() + (to_zero - 1),
                     order.end(), [&](size_t x, size_t y) {
                         float ax = std::fabs(data[x]);
                         float ay = std::fabs(data[y]);
                         return ax != ay ? ax < ay : x < y;
                     });
    Matrix<float> pruned = weights;
    for (size_t i = 0; i < to_zero; ++i)
        pruned.data()[order[i]] = 0.0f;
    return pruned;
}

Matrix<float>
vectorWisePrune(const Matrix<float> &weights, int vec_len, double ratio)
{
    DSTC_ASSERT(vec_len > 0);
    DSTC_ASSERT(ratio >= 0.0 && ratio < 1.0);
    Matrix<float> pruned = weights;
    const int keep_per_vec = std::max(
        1, static_cast<int>(std::lround(vec_len * (1.0 - ratio))));
    std::vector<int> idx;
    for (int r = 0; r < weights.rows(); ++r) {
        for (int v0 = 0; v0 < weights.cols(); v0 += vec_len) {
            const int v1 = std::min(weights.cols(), v0 + vec_len);
            const int len = v1 - v0;
            const int keep = std::min(
                len, len == vec_len
                         ? keep_per_vec
                         : std::max(1, static_cast<int>(std::lround(
                                           len * (1.0 - ratio)))));
            idx.resize(len);
            std::iota(idx.begin(), idx.end(), 0);
            std::nth_element(
                idx.begin(), idx.begin() + keep, idx.end(),
                [&](int x, int y) {
                    return std::fabs(weights.at(r, v0 + x)) >
                           std::fabs(weights.at(r, v0 + y));
                });
            for (int i = keep; i < len; ++i)
                pruned.at(r, v0 + idx[i]) = 0.0f;
        }
    }
    return pruned;
}

Matrix<float>
prune2of4(const Matrix<float> &weights)
{
    Matrix<float> pruned = weights;
    for (int r = 0; r < weights.rows(); ++r) {
        for (int v0 = 0; v0 + 4 <= weights.cols(); v0 += 4) {
            // Keep the two largest magnitudes of the quad.
            int idx[4] = {0, 1, 2, 3};
            std::sort(std::begin(idx), std::end(idx), [&](int x, int y) {
                return std::fabs(weights.at(r, v0 + x)) >
                       std::fabs(weights.at(r, v0 + y));
            });
            pruned.at(r, v0 + idx[2]) = 0.0f;
            pruned.at(r, v0 + idx[3]) = 0.0f;
        }
    }
    return pruned;
}

Matrix<float>
agpPrune(const Matrix<float> &weights, double final_sparsity, int steps)
{
    Matrix<float> current = weights;
    for (int s = 1; s <= steps; ++s)
        current = magnitudePrune(
            current, agpSparsity(0.0, final_sparsity, s, steps));
    return current;
}

} // namespace dstc
