#include "model/runner.h"

#include "common/logging.h"
#include "core/method_map.h"

namespace dstc {

namespace {

// ModelMethod is ConvMethod plus Auto, declared in the same order so
// the shared strategy table serves both vocabularies. These pin the
// mirroring — reorder either enum and the build tells you.
static_assert(static_cast<int>(ModelMethod::DenseExplicit) ==
              static_cast<int>(ConvMethod::DenseExplicit));
static_assert(static_cast<int>(ModelMethod::DenseImplicit) ==
              static_cast<int>(ConvMethod::DenseImplicit));
static_assert(static_cast<int>(ModelMethod::SingleSparseExplicit) ==
              static_cast<int>(ConvMethod::SingleSparseExplicit));
static_assert(static_cast<int>(ModelMethod::SingleSparseImplicit) ==
              static_cast<int>(ConvMethod::SingleSparseImplicit));
static_assert(static_cast<int>(ModelMethod::DualSparseImplicit) ==
              static_cast<int>(ConvMethod::DualSparseImplicit));

/** The conv strategy a non-Auto model method names. */
ConvMethod
modelConvMethod(ModelMethod method)
{
    DSTC_ASSERT(method != ModelMethod::Auto);
    return static_cast<ConvMethod>(method);
}

} // namespace

const char *
modelMethodName(ModelMethod method)
{
    return method == ModelMethod::Auto
               ? "Auto"
               : convMethodName(modelConvMethod(method));
}

double
ModelRunResult::totalTimeUs() const
{
    double total = 0.0;
    for (const auto &layer : layers)
        total += layer.stats.timeUs();
    return total;
}

namespace {

/** Registry method + lowering of a model-level strategy. */
void
splitModelMethod(ModelMethod method, Method *out_method,
                 Lowering *out_lowering)
{
    if (method == ModelMethod::Auto) {
        *out_method = Method::Auto;
        *out_lowering = Lowering::Implicit;
        return;
    }
    splitConvMethod(modelConvMethod(method), out_method,
                    out_lowering);
}

} // namespace

std::vector<KernelRequest>
ModelRunner::layerRequests(const DnnModel &model, ModelMethod method,
                           uint64_t seed, DataType dtype)
{
    Method registry_method;
    Lowering lowering;
    splitModelMethod(method, &registry_method, &lowering);

    std::vector<KernelRequest> requests;
    requests.reserve(model.conv_layers.size() +
                     model.gemm_layers.size());

    for (const auto &layer : model.conv_layers) {
        KernelRequest req = KernelRequest::conv(
            layer.shape, layer.weight_sparsity, layer.act_sparsity);
        req.method = registry_method;
        req.lowering = lowering;
        req.b_cluster = layer.weight_cluster;
        req.a_cluster = layer.act_cluster;
        req.seed = seed++;
        req.tag = layer.name;
        requests.push_back(std::move(req));
    }
    for (const auto &layer : model.gemm_layers) {
        KernelRequest req = KernelRequest::gemm(
            layer.m, layer.n, layer.k, layer.act_sparsity,
            layer.weight_sparsity);
        req.method = registry_method;
        req.a_cluster = layer.act_cluster;
        req.b_cluster = layer.weight_cluster;
        req.seed = seed++;
        req.tag = layer.name;
        // Conv layers above stay on the FP16 datapath; the datatype
        // axis applies to the GEMM layers only.
        req.withDataType(dtype);
        requests.push_back(std::move(req));
    }
    return requests;
}

ModelRunResult
ModelRunner::run(const DnnModel &model, ModelMethod method,
                 uint64_t seed, DataType dtype) const
{
    ModelRunResult result;
    result.model = model.name;
    result.method = method;
    for (const KernelRequest &req :
         layerRequests(model, method, seed, dtype)) {
        KernelReport report = session_.run(req);
        result.layers.push_back(
            {report.tag, report.stats, report.backend});
    }
    return result;
}

ModelRunResult
ModelRunner::runBatched(const DnnModel &model, ModelMethod method,
                        uint64_t seed, DataType dtype) const
{
    ModelRunResult result;
    result.model = model.name;
    result.method = method;
    for (KernelReport &report : session_.runBatch(
             layerRequests(model, method, seed, dtype))) {
        result.layers.push_back({std::move(report.tag), report.stats,
                                 std::move(report.backend)});
    }
    return result;
}

ModelRunResult
ModelRunner::runSharded(Cluster &cluster, const DnnModel &model,
                        ModelMethod method, uint64_t seed,
                        DataType dtype)
{
    ModelRunResult result;
    result.model = model.name;
    result.method = method;
    for (KernelReport &report : cluster.runBatch(
             layerRequests(model, method, seed, dtype))) {
        result.layers.push_back({std::move(report.tag), report.stats,
                                 std::move(report.backend),
                                 report.device});
    }
    return result;
}

} // namespace dstc
