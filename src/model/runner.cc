#include "model/runner.h"

#include "common/logging.h"

namespace dstc {

const char *
modelMethodName(ModelMethod method)
{
    switch (method) {
      case ModelMethod::DenseExplicit:
        return "Dense Explicit";
      case ModelMethod::DenseImplicit:
        return "Dense Implicit";
      case ModelMethod::SingleSparseExplicit:
        return "Single Sparse Explicit";
      case ModelMethod::SingleSparseImplicit:
        return "Single Sparse Implicit";
      case ModelMethod::DualSparseImplicit:
        return "Dual Sparse Implicit";
      case ModelMethod::Auto:
        return "Auto";
    }
    panic("unknown model method");
}

double
ModelRunResult::totalTimeUs() const
{
    double total = 0.0;
    for (const auto &layer : layers)
        total += layer.stats.timeUs();
    return total;
}

namespace {

/** Registry method + lowering of a model-level strategy. */
void
splitModelMethod(ModelMethod method, Method *out_method,
                 Lowering *out_lowering)
{
    *out_lowering = Lowering::Implicit;
    switch (method) {
      case ModelMethod::DenseExplicit:
        *out_method = Method::Dense;
        *out_lowering = Lowering::Explicit;
        return;
      case ModelMethod::DenseImplicit:
        *out_method = Method::Dense;
        return;
      case ModelMethod::SingleSparseExplicit:
        *out_method = Method::ZhuSparse;
        *out_lowering = Lowering::Explicit;
        return;
      case ModelMethod::SingleSparseImplicit:
        *out_method = Method::ZhuSparse;
        return;
      case ModelMethod::DualSparseImplicit:
        *out_method = Method::DualSparse;
        return;
      case ModelMethod::Auto:
        *out_method = Method::Auto;
        return;
    }
    panic("unknown model method");
}

} // namespace

std::vector<KernelRequest>
ModelRunner::layerRequests(const DnnModel &model, ModelMethod method,
                           uint64_t seed)
{
    Method registry_method;
    Lowering lowering;
    splitModelMethod(method, &registry_method, &lowering);

    std::vector<KernelRequest> requests;
    requests.reserve(model.conv_layers.size() +
                     model.gemm_layers.size());

    for (const auto &layer : model.conv_layers) {
        KernelRequest req = KernelRequest::conv(
            layer.shape, layer.weight_sparsity, layer.act_sparsity);
        req.method = registry_method;
        req.lowering = lowering;
        req.b_cluster = layer.weight_cluster;
        req.a_cluster = layer.act_cluster;
        req.seed = seed++;
        req.tag = layer.name;
        requests.push_back(std::move(req));
    }
    for (const auto &layer : model.gemm_layers) {
        KernelRequest req = KernelRequest::gemm(
            layer.m, layer.n, layer.k, layer.act_sparsity,
            layer.weight_sparsity);
        req.method = registry_method;
        req.a_cluster = layer.act_cluster;
        req.b_cluster = layer.weight_cluster;
        req.seed = seed++;
        req.tag = layer.name;
        requests.push_back(std::move(req));
    }
    return requests;
}

ModelRunResult
ModelRunner::run(const DnnModel &model, ModelMethod method,
                 uint64_t seed) const
{
    ModelRunResult result;
    result.model = model.name;
    result.method = method;
    for (const KernelRequest &req :
         layerRequests(model, method, seed)) {
        KernelReport report = session_.run(req);
        result.layers.push_back(
            {report.tag, report.stats, report.backend});
    }
    return result;
}

ModelRunResult
ModelRunner::runBatched(const DnnModel &model, ModelMethod method,
                        uint64_t seed) const
{
    ModelRunResult result;
    result.model = model.name;
    result.method = method;
    for (KernelReport &report :
         session_.runBatch(layerRequests(model, method, seed))) {
        result.layers.push_back({std::move(report.tag), report.stats,
                                 std::move(report.backend)});
    }
    return result;
}

} // namespace dstc
