#include "model/runner.h"

#include "common/logging.h"

namespace dstc {

const char *
modelMethodName(ModelMethod method)
{
    switch (method) {
      case ModelMethod::DenseExplicit:
        return "Dense Explicit";
      case ModelMethod::DenseImplicit:
        return "Dense Implicit";
      case ModelMethod::SingleSparseExplicit:
        return "Single Sparse Explicit";
      case ModelMethod::SingleSparseImplicit:
        return "Single Sparse Implicit";
      case ModelMethod::DualSparseImplicit:
        return "Dual Sparse Implicit";
    }
    panic("unknown model method");
}

double
ModelRunResult::totalTimeUs() const
{
    double total = 0.0;
    for (const auto &layer : layers)
        total += layer.stats.timeUs();
    return total;
}

namespace {

ConvMethod
toConvMethod(ModelMethod method)
{
    switch (method) {
      case ModelMethod::DenseExplicit:
        return ConvMethod::DenseExplicit;
      case ModelMethod::DenseImplicit:
        return ConvMethod::DenseImplicit;
      case ModelMethod::SingleSparseExplicit:
        return ConvMethod::SingleSparseExplicit;
      case ModelMethod::SingleSparseImplicit:
        return ConvMethod::SingleSparseImplicit;
      case ModelMethod::DualSparseImplicit:
        return ConvMethod::DualSparseImplicit;
    }
    panic("unknown model method");
}

} // namespace

KernelStats
ModelRunner::runGemmLayer(const GemmLayerSpec &layer, ModelMethod method,
                          uint64_t seed) const
{
    switch (method) {
      case ModelMethod::DenseExplicit:
      case ModelMethod::DenseImplicit:
        return engine_.denseGemmTime(layer.m, layer.n, layer.k);
      case ModelMethod::SingleSparseExplicit:
      case ModelMethod::SingleSparseImplicit:
        return engine_.zhuGemmTime(layer.m, layer.n, layer.k,
                                   layer.weight_sparsity);
      case ModelMethod::DualSparseImplicit: {
        Rng rng(seed);
        SparsityProfile acts = SparsityProfile::randomA(
            layer.m, layer.k, 32, 1.0 - layer.act_sparsity,
            layer.act_cluster, rng);
        SparsityProfile weights = SparsityProfile::randomA(
            layer.n, layer.k, 32, 1.0 - layer.weight_sparsity,
            layer.weight_cluster, rng);
        return engine_.spgemmTime(acts, weights);
      }
    }
    panic("unknown model method");
}

ModelRunResult
ModelRunner::run(const DnnModel &model, ModelMethod method,
                 uint64_t seed) const
{
    ModelRunResult result;
    result.model = model.name;
    result.method = method;

    for (const auto &layer : model.conv_layers) {
        KernelStats stats = engine_.convTime(
            layer.shape, toConvMethod(method), layer.weight_sparsity,
            layer.act_sparsity, seed, layer.weight_cluster,
            layer.act_cluster);
        result.layers.push_back({layer.name, stats});
        ++seed;
    }
    for (const auto &layer : model.gemm_layers) {
        result.layers.push_back(
            {layer.name, runGemmLayer(layer, method, seed)});
        ++seed;
    }
    return result;
}

} // namespace dstc
