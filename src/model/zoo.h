/**
 * @file
 * The five evaluated DNN workloads (Table II): layer shapes and
 * per-layer weight/activation sparsities.
 *
 * Shapes follow the published architectures (VGG-16, ResNet-18,
 * Mask R-CNN's ResNet-50-FPN backbone, BERT-base, and the paper's
 * 2+4-layer LSTM language model). Sparsity ratios are representative
 * of the paper's pruning setups — AGP for the CNNs/RNN, movement
 * pruning for BERT, natural post-ReLU activation sparsity for the
 * CNNs and near-dense activations for BERT/RNN (Sec. VI-A) — since
 * the figure-embedded per-layer numbers are not machine-readable
 * from the text (see EXPERIMENTS.md).
 */
#ifndef DSTC_MODEL_ZOO_H
#define DSTC_MODEL_ZOO_H

#include <string>
#include <vector>

#include "im2col/conv_shape.h"

namespace dstc {

/** One convolution layer instance with its sparsity operating point. */
struct ConvLayerSpec
{
    std::string name;
    ConvShape shape;
    double weight_sparsity = 0.0;
    double act_sparsity = 0.0;
    /**
     * Non-zero clustering factors (>= 1): how strongly pruning / the
     * image structure concentrates the non-zeros into regions. AGP
     * kills whole filters and channels, and feature maps are
     * spatially correlated, so neither pattern is uniform Bernoulli
     * (this is the Fig. 6 effect).
     */
    double weight_cluster = 4.0;
    double act_cluster = 2.0;
};

/** One GEMM layer instance (M x K activations times K x N weights). */
struct GemmLayerSpec
{
    std::string name;
    int64_t m = 0;
    int64_t n = 0;
    int64_t k = 0;
    double weight_sparsity = 0.0;
    double act_sparsity = 0.0;
    /** See ConvLayerSpec; movement pruning kills whole heads and
     *  neurons, so BERT/RNN weights are strongly clustered. */
    double weight_cluster = 12.0;
    double act_cluster = 1.0;
};

/** A full workload: either conv layers (CNNs) or GEMM layers. */
struct DnnModel
{
    std::string name;
    std::string pruning;  ///< Table II "Pruning Scheme"
    std::string dataset;  ///< Table II "Dataset"
    std::string accuracy; ///< Table II "Accuracy"
    std::vector<ConvLayerSpec> conv_layers;
    std::vector<GemmLayerSpec> gemm_layers;
};

DnnModel makeVgg16();
DnnModel makeResnet18();
DnnModel makeMaskRcnn();
DnnModel makeBertBase();
DnnModel makeRnnLM();

/** All five models in the paper's order. */
std::vector<DnnModel> allModels();

} // namespace dstc

#endif // DSTC_MODEL_ZOO_H
