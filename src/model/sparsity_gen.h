/**
 * @file
 * Workload synthesis: sparsity-pattern generators standing in for
 * the paper's pruned checkpoints and measured activations. The
 * accelerator only observes patterns (density + spatial
 * distribution), so these generators are the data substrate of the
 * evaluation (see DESIGN.md, substitutions).
 */
#ifndef DSTC_MODEL_SPARSITY_GEN_H
#define DSTC_MODEL_SPARSITY_GEN_H

#include "common/rng.h"
#include "tensor/matrix.h"
#include "tensor/tensor4d.h"

namespace dstc {

/** Uniform Bernoulli pattern: each element zero with p = sparsity. */
Matrix<float> uniformSparseMatrix(int rows, int cols, double sparsity,
                                  Rng &rng);

/**
 * Clustered pattern: non-zeros concentrated in a fraction of
 * @p block x @p block blocks. @p cluster >= 1 scales the local
 * density inside active blocks (1 = uniform); the complement of
 * blocks is entirely zero, preserving the global sparsity. This is
 * the uneven distribution that lets warp tiling exceed the fixed
 * quantized ratios (Fig. 6).
 */
Matrix<float> clusteredSparseMatrix(int rows, int cols, double sparsity,
                                    int block, double cluster, Rng &rng);

/**
 * ReLU-like activations: relu(x + mu) over standard normal draws,
 * with the bias mu chosen so P(zero) = sparsity. Produces the
 * one-sided value distribution of post-ReLU feature maps.
 */
Matrix<float> reluActivationMatrix(int rows, int cols, double sparsity,
                                   Rng &rng);

/** NCHW variant of reluActivationMatrix. */
Tensor4d reluActivationTensor(int n, int c, int h, int w,
                              double sparsity, Rng &rng);

} // namespace dstc

#endif // DSTC_MODEL_SPARSITY_GEN_H
