/**
 * @file
 * Weight pruning algorithms used to produce the sparse models of
 * Table II: the AGP schedule (Zhu & Gupta) with magnitude pruning,
 * the vector-wise structural pruning of the Sparse Tensor Core
 * baseline, and Ampere's 2:4 pattern for reference.
 */
#ifndef DSTC_MODEL_PRUNING_H
#define DSTC_MODEL_PRUNING_H

#include "tensor/matrix.h"

namespace dstc {

/**
 * Automated Gradual Pruning schedule: the target sparsity after
 * @p step of @p total_steps pruning steps, ramping cubically from
 * @p initial to @p final_sparsity.
 */
double agpSparsity(double initial, double final_sparsity, int step,
                   int total_steps);

/**
 * Magnitude pruning: zero the smallest-|w| elements until the matrix
 * reaches @p sparsity (global threshold, ties broken by index).
 */
Matrix<float> magnitudePrune(const Matrix<float> &weights,
                             double sparsity);

/**
 * Vector-wise structural pruning [Zhu et al., MICRO'19]: split every
 * row into @p vec_len-element vectors and keep only the largest
 * (1 - ratio) fraction of each vector.
 */
Matrix<float> vectorWisePrune(const Matrix<float> &weights, int vec_len,
                              double ratio);

/** Ampere-style 2:4 pruning: keep the 2 largest of every 4 in a row. */
Matrix<float> prune2of4(const Matrix<float> &weights);

/**
 * Run the full AGP schedule on @p weights: @p steps rounds of
 * magnitude pruning following the cubic ramp to @p final_sparsity.
 * Returns the final pruned weights (intermediate masks are
 * monotonically nested, which the tests verify).
 */
Matrix<float> agpPrune(const Matrix<float> &weights,
                       double final_sparsity, int steps);

} // namespace dstc

#endif // DSTC_MODEL_PRUNING_H
