#include "model/zoo.h"

namespace dstc {

namespace {

ConvLayerSpec
conv(std::string name, int in_c, int hw, int out_c, int kernel,
     int stride, int pad, double wsp, double asp)
{
    ConvLayerSpec spec;
    spec.name = std::move(name);
    spec.shape.batch = 1;
    spec.shape.in_c = in_c;
    spec.shape.in_h = hw;
    spec.shape.in_w = hw;
    spec.shape.out_c = out_c;
    spec.shape.kernel = kernel;
    spec.shape.stride = stride;
    spec.shape.pad = pad;
    spec.weight_sparsity = wsp;
    spec.act_sparsity = asp;
    return spec;
}

GemmLayerSpec
gemm(std::string name, int64_t m, int64_t n, int64_t k, double wsp,
     double asp)
{
    return {std::move(name), m, n, k, wsp, asp};
}

} // namespace

DnnModel
makeVgg16()
{
    DnnModel model;
    model.name = "VGG-16";
    model.pruning = "AGP";
    model.dataset = "ImageNet";
    model.accuracy = "88.86% (top 5)";
    // Representative layers (the paper also selects a subset; the
    // remaining layers repeat these shapes). AGP prunes later layers
    // harder; ReLU activation sparsity grows with depth.
    model.conv_layers = {
        conv("conv1_1", 3, 224, 64, 3, 1, 1, 0.30, 0.00),
        conv("conv1_2", 64, 224, 64, 3, 1, 1, 0.50, 0.45),
        conv("conv2_1", 64, 112, 128, 3, 1, 1, 0.60, 0.50),
        conv("conv2_2", 128, 112, 128, 3, 1, 1, 0.65, 0.55),
        conv("conv3_1", 128, 56, 256, 3, 1, 1, 0.70, 0.55),
        conv("conv3_3", 256, 56, 256, 3, 1, 1, 0.75, 0.60),
        conv("conv4_1", 256, 28, 512, 3, 1, 1, 0.80, 0.65),
        conv("conv4_3", 512, 28, 512, 3, 1, 1, 0.85, 0.70),
        conv("conv5_1", 512, 14, 512, 3, 1, 1, 0.90, 0.75),
        conv("conv5_3", 512, 14, 512, 3, 1, 1, 0.90, 0.80),
    };
    return model;
}

DnnModel
makeResnet18()
{
    DnnModel model;
    model.name = "ResNet-18";
    model.pruning = "AGP";
    model.dataset = "ImageNet";
    model.accuracy = "86.46% (top 5)";
    model.conv_layers = {
        conv("conv1", 3, 224, 64, 7, 2, 3, 0.30, 0.00),
        conv("layer2-1", 64, 56, 64, 3, 1, 1, 0.60, 0.45),
        conv("layer2-2", 64, 56, 64, 3, 1, 1, 0.65, 0.50),
        conv("layer3-1", 64, 56, 128, 3, 2, 1, 0.70, 0.50),
        conv("layer3-2", 128, 28, 128, 3, 1, 1, 0.70, 0.55),
        conv("layer4-1", 128, 28, 256, 3, 2, 1, 0.75, 0.55),
        conv("layer4-2", 256, 14, 256, 3, 1, 1, 0.80, 0.60),
        conv("layer5-1", 256, 14, 512, 3, 2, 1, 0.85, 0.60),
        conv("layer5-2", 512, 7, 512, 3, 1, 1, 0.85, 0.65),
        conv("layer5-4", 512, 7, 512, 3, 1, 1, 0.85, 0.65),
    };
    return model;
}

DnnModel
makeMaskRcnn()
{
    DnnModel model;
    model.name = "Mask R-CNN";
    model.pruning = "AGP";
    model.dataset = "COCO";
    model.accuracy = "35.2 (AP)";
    // ResNet-50-FPN backbone stages on an 800x1216 input, plus the
    // FPN lateral/output convolutions and the box head.
    model.conv_layers = {
        conv("res2-3x3", 64, 200, 64, 3, 1, 1, 0.50, 0.45),
        conv("res3-3x3", 128, 100, 128, 3, 1, 1, 0.60, 0.50),
        conv("res4-3x3", 256, 50, 256, 3, 1, 1, 0.70, 0.55),
        conv("res5-3x3", 512, 25, 512, 3, 1, 1, 0.80, 0.60),
        conv("fpn-p3", 256, 100, 256, 3, 1, 1, 0.70, 0.50),
        conv("fpn-p4", 256, 50, 256, 3, 1, 1, 0.70, 0.55),
        conv("mask-head", 256, 14, 256, 3, 1, 1, 0.65, 0.55),
    };
    // Box head fully-connected layers run as GEMMs (1000 RoIs).
    model.gemm_layers = {
        gemm("box-fc1", 1000, 1024, 12544, 0.80, 0.55),
        gemm("box-fc2", 1000, 1024, 1024, 0.80, 0.60),
    };
    return model;
}

DnnModel
makeBertBase()
{
    DnnModel model;
    model.name = "BERT-base encoder";
    model.pruning = "MP";
    model.dataset = "SQuAD";
    model.accuracy = "83.3 (F1)";
    // Sequence length 384 (SQuAD). Movement pruning reaches >90%
    // weight sparsity; activations are effectively dense (GELU,
    // Sec. VI-A).
    model.gemm_layers = {
        gemm("attn-qkv", 384, 2304, 768, 0.92, 0.05),
        gemm("attn-out", 384, 768, 768, 0.93, 0.05),
        gemm("ffn-1", 384, 3072, 768, 0.94, 0.05),
        gemm("ffn-2", 384, 768, 3072, 0.95, 0.10),
    };
    return model;
}

DnnModel
makeRnnLM()
{
    DnnModel model;
    model.name = "RNN";
    model.pruning = "AGP";
    model.dataset = "WikiText-2";
    model.accuracy = "85.7 (ppl)";
    // 2-layer LSTM encoder + 4-layer LSTM decoder, hidden 1500,
    // gates fused into one GEMM per layer step; 64 batched tokens.
    const int hidden = 1500;
    model.gemm_layers = {
        gemm("enc-l0", 64, 4 * hidden, 2 * hidden, 0.90, 0.05),
        gemm("enc-l1", 64, 4 * hidden, 2 * hidden, 0.91, 0.10),
        gemm("dec-l0", 64, 4 * hidden, 2 * hidden, 0.92, 0.10),
        gemm("dec-l1", 64, 4 * hidden, 2 * hidden, 0.92, 0.10),
        gemm("dec-l2", 64, 4 * hidden, 2 * hidden, 0.93, 0.10),
        gemm("dec-l3", 64, 4 * hidden, 2 * hidden, 0.93, 0.10),
    };
    return model;
}

std::vector<DnnModel>
allModels()
{
    return {makeVgg16(), makeResnet18(), makeMaskRcnn(), makeBertBase(),
            makeRnnLM()};
}

} // namespace dstc
