#include "model/sparsity_gen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dstc {

Matrix<float>
uniformSparseMatrix(int rows, int cols, double sparsity, Rng &rng)
{
    return randomSparseMatrix(rows, cols, sparsity, rng);
}

Matrix<float>
clusteredSparseMatrix(int rows, int cols, double sparsity, int block,
                      double cluster, Rng &rng)
{
    DSTC_ASSERT(sparsity >= 0.0 && sparsity <= 1.0);
    DSTC_ASSERT(block > 0 && cluster >= 1.0);
    const double density = 1.0 - sparsity;
    const double local = std::min(1.0, density * cluster);
    const double p_active = local > 0.0 ? density / local : 0.0;

    Matrix<float> m(rows, cols);
    for (int br = 0; br < rows; br += block) {
        for (int bc = 0; bc < cols; bc += block) {
            if (!rng.bernoulli(p_active))
                continue;
            const int r1 = std::min(rows, br + block);
            const int c1 = std::min(cols, bc + block);
            for (int r = br; r < r1; ++r) {
                for (int c = bc; c < c1; ++c) {
                    if (rng.bernoulli(local)) {
                        float v = rng.uniformFloat(-1.0f, 1.0f);
                        m.at(r, c) = (v == 0.0f) ? 0.5f : v;
                    }
                }
            }
        }
    }
    return m;
}

namespace {

/**
 * Inverse standard-normal CDF (Acklam's rational approximation,
 * relative error < 1.2e-9) — used to place the ReLU threshold.
 */
double
inverseNormalCdf(double p)
{
    DSTC_ASSERT(p > 0.0 && p < 1.0);
    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};
    const double plow = 0.02425;
    double q, r;
    if (p < plow) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                 c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= 1.0 - plow) {
        q = p - 0.5;
        r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r +
                 a[4]) * r + a[5]) * q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r +
                 b[4]) * r + 1.0);
    }
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                 q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

float
reluDraw(double sparsity, Rng &rng)
{
    // relu(x - t) with t = Phi^-1(sparsity): P(output == 0) matches.
    if (sparsity <= 0.0)
        return static_cast<float>(std::fabs(rng.normal())) + 1e-3f;
    if (sparsity >= 1.0)
        return 0.0f;
    const double t = inverseNormalCdf(sparsity);
    const double x = rng.normal() - t;
    return x > 0.0 ? static_cast<float>(x) : 0.0f;
}

} // namespace

Matrix<float>
reluActivationMatrix(int rows, int cols, double sparsity, Rng &rng)
{
    Matrix<float> m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m.at(r, c) = reluDraw(sparsity, rng);
    return m;
}

Tensor4d
reluActivationTensor(int n, int c, int h, int w, double sparsity,
                     Rng &rng)
{
    Tensor4d t(n, c, h, w);
    for (float &v : t.data())
        v = reluDraw(sparsity, rng);
    return t;
}

} // namespace dstc
