/**
 * @file
 * Whole-model execution: run every layer of a DnnModel under a
 * chosen strategy and aggregate per-layer and full-model statistics.
 * This is the library API behind the Fig. 22 panels; the benches are
 * thin printers over it.
 *
 * A model run is a batch of KernelRequests — one per layer — built
 * by layerRequests() and executed on a Session either serially
 * (run()), on the worker pool (runBatched()), or data-parallel
 * across the devices of a Cluster (runSharded()). All paths produce
 * bitwise-identical statistics for the device each layer ran on.
 */
#ifndef DSTC_MODEL_RUNNER_H
#define DSTC_MODEL_RUNNER_H

#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/session.h"
#include "model/zoo.h"

namespace dstc {

/** Execution strategy at model granularity. */
enum class ModelMethod
{
    DenseExplicit,        ///< conv layers only
    DenseImplicit,        ///< dense GEMM for GEMM layers
    SingleSparseExplicit, ///< Sparse TC [72] (+ explicit im2col)
    SingleSparseImplicit, ///< our im2col, weight sparsity only
    DualSparseImplicit,   ///< the full dual-side design
    Auto,                 ///< per-layer registry dispatch
};

const char *modelMethodName(ModelMethod method);

/** Per-layer outcome of a model run. */
struct LayerResult
{
    std::string name;
    KernelStats stats;

    /** The backend that executed the layer (informative under
     *  ModelMethod::Auto). */
    std::string backend;

    /** Cluster device the layer was placed on (-1 for single-device
     *  Session runs). */
    int device = -1;
};

/** Aggregated outcome of a model run. */
struct ModelRunResult
{
    std::string model;
    ModelMethod method;
    std::vector<LayerResult> layers;

    /** Sum of layer kernel times. */
    double totalTimeUs() const;
};

/** Runs model zoo workloads on a Session (timing-only). */
class ModelRunner
{
  public:
    explicit ModelRunner(Session &session) : session_(session) {}

    /**
     * The per-layer KernelRequests of @p model under @p method.
     * Deterministic for a given @p seed; sparsity patterns follow
     * each layer's (sparsity, cluster) operating point. @p dtype sets
     * the datatype of every GEMM layer; conv layers always run the
     * FP16 datapath (the conv pipeline has no quantized lowering).
     */
    static std::vector<KernelRequest>
    layerRequests(const DnnModel &model, ModelMethod method,
                  uint64_t seed = 1,
                  DataType dtype = DataType::Fp16);

    /** Time every layer of @p model under @p method, serially. */
    ModelRunResult run(const DnnModel &model, ModelMethod method,
                       uint64_t seed = 1,
                       DataType dtype = DataType::Fp16) const;

    /**
     * Same as run(), executed as one submitBatch() on the session's
     * worker pool. Statistics are bitwise identical to run().
     */
    ModelRunResult runBatched(const DnnModel &model, ModelMethod method,
                              uint64_t seed = 1,
                              DataType dtype = DataType::Fp16) const;

    /**
     * Data-parallel layer execution over a Cluster: the layer batch
     * is placed across the cluster's devices by its scheduler and
     * executed concurrently. Each LayerResult records its placed
     * device, and its stats are bitwise identical to running that
     * layer serially on a single Session with that device's config
     * (on a homogeneous cluster, identical to run()).
     */
    static ModelRunResult runSharded(Cluster &cluster,
                                     const DnnModel &model,
                                     ModelMethod method,
                                     uint64_t seed = 1,
                                     DataType dtype = DataType::Fp16);

  private:
    Session &session_;
};

} // namespace dstc

#endif // DSTC_MODEL_RUNNER_H
