/**
 * @file
 * Whole-model execution: run every layer of a DnnModel under a
 * chosen strategy and aggregate per-layer and full-model statistics.
 * This is the library API behind the Fig. 22 panels; the benches are
 * thin printers over it.
 *
 * A model run is a batch of KernelRequests — one per layer — built
 * by layerRequests() and executed on a Session either serially
 * (run()) or on the worker pool (runBatched()). The two paths
 * produce bitwise-identical statistics.
 */
#ifndef DSTC_MODEL_RUNNER_H
#define DSTC_MODEL_RUNNER_H

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/session.h"
#include "model/zoo.h"

namespace dstc {

/** Execution strategy at model granularity. */
enum class ModelMethod
{
    DenseExplicit,        ///< conv layers only
    DenseImplicit,        ///< dense GEMM for GEMM layers
    SingleSparseExplicit, ///< Sparse TC [72] (+ explicit im2col)
    SingleSparseImplicit, ///< our im2col, weight sparsity only
    DualSparseImplicit,   ///< the full dual-side design
    Auto,                 ///< per-layer registry dispatch
};

const char *modelMethodName(ModelMethod method);

/** Per-layer outcome of a model run. */
struct LayerResult
{
    std::string name;
    KernelStats stats;

    /** The backend that executed the layer (informative under
     *  ModelMethod::Auto). */
    std::string backend;
};

/** Aggregated outcome of a model run. */
struct ModelRunResult
{
    std::string model;
    ModelMethod method;
    std::vector<LayerResult> layers;

    /** Sum of layer kernel times. */
    double totalTimeUs() const;
};

/** Runs model zoo workloads on a Session (timing-only). */
class ModelRunner
{
  public:
    explicit ModelRunner(Session &session) : session_(session) {}

    /** @deprecated Construct from the engine's Session instead. */
    explicit ModelRunner(DstcEngine &engine)
        : session_(engine.session())
    {
    }

    /**
     * The per-layer KernelRequests of @p model under @p method.
     * Deterministic for a given @p seed; sparsity patterns follow
     * each layer's (sparsity, cluster) operating point.
     */
    static std::vector<KernelRequest>
    layerRequests(const DnnModel &model, ModelMethod method,
                  uint64_t seed = 1);

    /** Time every layer of @p model under @p method, serially. */
    ModelRunResult run(const DnnModel &model, ModelMethod method,
                       uint64_t seed = 1) const;

    /**
     * Same as run(), executed as one submitBatch() on the session's
     * worker pool. Statistics are bitwise identical to run().
     */
    ModelRunResult runBatched(const DnnModel &model, ModelMethod method,
                              uint64_t seed = 1) const;

  private:
    Session &session_;
};

} // namespace dstc

#endif // DSTC_MODEL_RUNNER_H
