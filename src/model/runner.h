/**
 * @file
 * Whole-model execution: run every layer of a DnnModel under a
 * chosen strategy and aggregate per-layer and full-model statistics.
 * This is the library API behind the Fig. 22 panels; the benches are
 * thin printers over it.
 */
#ifndef DSTC_MODEL_RUNNER_H
#define DSTC_MODEL_RUNNER_H

#include <string>
#include <vector>

#include "conv/spconv.h"
#include "core/engine.h"
#include "model/zoo.h"

namespace dstc {

/** Execution strategy at model granularity. */
enum class ModelMethod
{
    DenseExplicit,        ///< conv layers only
    DenseImplicit,        ///< dense GEMM for GEMM layers
    SingleSparseExplicit, ///< Sparse TC [72] (+ explicit im2col)
    SingleSparseImplicit, ///< our im2col, weight sparsity only
    DualSparseImplicit,   ///< the full dual-side design
};

const char *modelMethodName(ModelMethod method);

/** Per-layer outcome of a model run. */
struct LayerResult
{
    std::string name;
    KernelStats stats;
};

/** Aggregated outcome of a model run. */
struct ModelRunResult
{
    std::string model;
    ModelMethod method;
    std::vector<LayerResult> layers;

    /** Sum of layer kernel times. */
    double totalTimeUs() const;
};

/** Runs model zoo workloads on the engine (timing-only). */
class ModelRunner
{
  public:
    explicit ModelRunner(const DstcEngine &engine) : engine_(engine) {}

    /**
     * Time every layer of @p model under @p method. Deterministic
     * for a given @p seed; sparsity patterns follow each layer's
     * (sparsity, cluster) operating point.
     */
    ModelRunResult run(const DnnModel &model, ModelMethod method,
                       uint64_t seed = 1) const;

  private:
    KernelStats runGemmLayer(const GemmLayerSpec &layer,
                             ModelMethod method, uint64_t seed) const;

    const DstcEngine &engine_;
};

} // namespace dstc

#endif // DSTC_MODEL_RUNNER_H
