/**
 * @file
 * Dense row-major matrix used as the golden representation throughout
 * the library. Sparse formats encode from / decode to this type.
 */
#ifndef DSTC_TENSOR_MATRIX_H
#define DSTC_TENSOR_MATRIX_H

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace dstc {

/** Dense row-major matrix over an arithmetic element type. */
template <typename T>
class Matrix
{
  public:
    Matrix() : rows_(0), cols_(0) {}

    Matrix(int rows, int cols, T init = T{})
        : rows_(rows), cols_(cols),
          data_(static_cast<size_t>(rows) * cols, init)
    {
        DSTC_ASSERT(rows >= 0 && cols >= 0);
    }

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    size_t size() const { return data_.size(); }

    T &
    at(int r, int c)
    {
        DSTC_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                    "r=", r, " c=", c, " dims=", rows_, "x", cols_);
        return data_[static_cast<size_t>(r) * cols_ + c];
    }

    const T &
    at(int r, int c) const
    {
        DSTC_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                    "r=", r, " c=", c, " dims=", rows_, "x", cols_);
        return data_[static_cast<size_t>(r) * cols_ + c];
    }

    T &operator()(int r, int c) { return at(r, c); }
    const T &operator()(int r, int c) const { return at(r, c); }

    const std::vector<T> &data() const { return data_; }
    std::vector<T> &data() { return data_; }

    void
    fill(T value)
    {
        std::fill(data_.begin(), data_.end(), value);
    }

    /** Number of non-zero elements. */
    int
    nnz() const
    {
        int count = 0;
        for (const T &v : data_)
            if (v != T{})
                ++count;
        return count;
    }

    /** Fraction of zero elements in [0, 1]. */
    double
    sparsity() const
    {
        if (data_.empty())
            return 0.0;
        return 1.0 - static_cast<double>(nnz()) /
                         static_cast<double>(data_.size());
    }

    Matrix<T>
    transpose() const
    {
        Matrix<T> out(cols_, rows_);
        for (int r = 0; r < rows_; ++r)
            for (int c = 0; c < cols_; ++c)
                out.at(c, r) = at(r, c);
        return out;
    }

    bool operator==(const Matrix<T> &other) const = default;

  private:
    int rows_;
    int cols_;
    std::vector<T> data_;
};

/**
 * A random dense matrix with entries uniform in [-1, 1) and a given
 * zero fraction (uniform Bernoulli sparsity pattern).
 */
inline Matrix<float>
randomSparseMatrix(int rows, int cols, double sparsity, Rng &rng)
{
    Matrix<float> m(rows, cols);
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (!rng.bernoulli(sparsity)) {
                float v = rng.uniformFloat(-1.0f, 1.0f);
                // A drawn value of exactly 0 would silently change the
                // pattern; nudge it away.
                m.at(r, c) = (v == 0.0f) ? 0.5f : v;
            }
        }
    }
    return m;
}

/** Largest absolute element-wise difference between two matrices. */
inline double
maxAbsDiff(const Matrix<float> &a, const Matrix<float> &b)
{
    DSTC_ASSERT(a.rows() == b.rows() && a.cols() == b.cols());
    double worst = 0.0;
    for (int r = 0; r < a.rows(); ++r)
        for (int c = 0; c < a.cols(); ++c)
            worst = std::max(
                worst, static_cast<double>(std::fabs(a.at(r, c) - b.at(r, c))));
    return worst;
}

} // namespace dstc

#endif // DSTC_TENSOR_MATRIX_H
