/**
 * @file
 * Golden-model kernels: straightforward GEMM and direct convolution.
 *
 * Every accelerated path in the library (SpGEMM, SpCONV, all im2col
 * variants, all baselines) is validated against these in the tests.
 */
#ifndef DSTC_TENSOR_REFERENCE_H
#define DSTC_TENSOR_REFERENCE_H

#include "common/datatype.h"
#include "tensor/matrix.h"
#include "tensor/tensor4d.h"

namespace dstc {

/** Parameters of a 2-D convolution (square kernel, symmetric padding). */
struct Conv2dParams
{
    int in_channels = 1;
    int out_channels = 1;
    int kernel = 3;
    int stride = 1;
    int pad = 0;
};

/** D = A x B + C in FP32. C may be empty (treated as zero). */
Matrix<float> refGemm(const Matrix<float> &a, const Matrix<float> &b,
                      const Matrix<float> *c = nullptr);

/**
 * D = A x B + C where A and B are quantized through FP16 before the
 * multiply (the Tensor Core datapath) and accumulation stays FP32.
 */
Matrix<float> refGemmFp16(const Matrix<float> &a, const Matrix<float> &b,
                          const Matrix<float> *c = nullptr);

/**
 * D = A x B where the operands quantize through arbitrary QuantSpecs
 * (the datatype-general golden model). Accumulation is FP32 over the
 * quantized values in increasing-k order; integer specs accumulate
 * raw codes and apply the deferred sa * sb output scale once at the
 * end — the exact contract of every quantized backend.
 */
Matrix<float> refGemmQuant(const Matrix<float> &a,
                           const Matrix<float> &b,
                           const QuantSpec &spec_a,
                           const QuantSpec &spec_b);

/**
 * Direct (no im2col) 2-D convolution of an NCHW input with OIHW
 * weights. @p weights is (out_channels) x (in_channels*kernel*kernel)
 * with the inner dimension ordered (c, kh, kw).
 */
Tensor4d refConv2d(const Tensor4d &input, const Matrix<float> &weights,
                   const Conv2dParams &params);

/** Output spatial size of a convolution dimension. */
inline int
convOutDim(int in, int kernel, int stride, int pad)
{
    return (in + 2 * pad - kernel) / stride + 1;
}

} // namespace dstc

#endif // DSTC_TENSOR_REFERENCE_H
