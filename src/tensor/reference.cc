#include "tensor/reference.h"

#include "common/fp16.h"

namespace dstc {

Matrix<float>
refGemm(const Matrix<float> &a, const Matrix<float> &b,
        const Matrix<float> *c)
{
    DSTC_ASSERT(a.cols() == b.rows(), "GEMM dims: ", a.rows(), "x",
                a.cols(), " * ", b.rows(), "x", b.cols());
    Matrix<float> d(a.rows(), b.cols());
    for (int i = 0; i < a.rows(); ++i) {
        for (int k = 0; k < a.cols(); ++k) {
            float av = a.at(i, k);
            if (av == 0.0f)
                continue;
            for (int j = 0; j < b.cols(); ++j)
                d.at(i, j) += av * b.at(k, j);
        }
    }
    if (c) {
        DSTC_ASSERT(c->rows() == d.rows() && c->cols() == d.cols());
        for (int i = 0; i < d.rows(); ++i)
            for (int j = 0; j < d.cols(); ++j)
                d.at(i, j) += c->at(i, j);
    }
    return d;
}

Matrix<float>
refGemmFp16(const Matrix<float> &a, const Matrix<float> &b,
            const Matrix<float> *c)
{
    DSTC_ASSERT(a.cols() == b.rows());
    // Quantize B once up front: rounding is a pure per-element
    // function, so hoisting it out of the row loop leaves every
    // product and the accumulation order bit-identical while cutting
    // a.rows() redundant conversions per B element.
    Matrix<float> bh(b.rows(), b.cols());
    for (int k = 0; k < b.rows(); ++k)
        for (int j = 0; j < b.cols(); ++j)
            bh.at(k, j) = roundToFp16(b.at(k, j));
    Matrix<float> d(a.rows(), b.cols());
    for (int i = 0; i < a.rows(); ++i) {
        for (int k = 0; k < a.cols(); ++k) {
            float av = roundToFp16(a.at(i, k));
            if (av == 0.0f)
                continue;
            for (int j = 0; j < b.cols(); ++j)
                d.at(i, j) += av * bh.at(k, j);
        }
    }
    if (c) {
        DSTC_ASSERT(c->rows() == d.rows() && c->cols() == d.cols());
        for (int i = 0; i < d.rows(); ++i)
            for (int j = 0; j < d.cols(); ++j)
                d.at(i, j) += c->at(i, j);
    }
    return d;
}

Matrix<float>
refGemmQuant(const Matrix<float> &a, const Matrix<float> &b,
             const QuantSpec &spec_a, const QuantSpec &spec_b)
{
    DSTC_ASSERT(a.cols() == b.rows());
    // Same shape as refGemmFp16 with QuantSpec::apply as the
    // quantizer; the skip test reads the quantized A value, so codes
    // rounding to 0 contribute nothing (matching the engines, where
    // a zero lane value multiplies out to zero).
    Matrix<float> bh(b.rows(), b.cols());
    for (int k = 0; k < b.rows(); ++k)
        for (int j = 0; j < b.cols(); ++j)
            bh.at(k, j) = spec_b.apply(b.at(k, j));
    Matrix<float> d(a.rows(), b.cols());
    for (int i = 0; i < a.rows(); ++i) {
        for (int k = 0; k < a.cols(); ++k) {
            float av = spec_a.apply(a.at(i, k));
            if (av == 0.0f)
                continue;
            for (int j = 0; j < b.cols(); ++j)
                d.at(i, j) += av * bh.at(k, j);
        }
    }
    const float out_scale = QuantSpec::outputScale(spec_a, spec_b);
    if (out_scale != 1.0f) {
        for (float &v : d.data())
            v *= out_scale;
    }
    return d;
}

Tensor4d
refConv2d(const Tensor4d &input, const Matrix<float> &weights,
          const Conv2dParams &params)
{
    DSTC_ASSERT(input.c() == params.in_channels);
    DSTC_ASSERT(weights.rows() == params.out_channels);
    DSTC_ASSERT(weights.cols() ==
                params.in_channels * params.kernel * params.kernel);

    const int out_h =
        convOutDim(input.h(), params.kernel, params.stride, params.pad);
    const int out_w =
        convOutDim(input.w(), params.kernel, params.stride, params.pad);
    DSTC_ASSERT(out_h > 0 && out_w > 0, "conv output collapsed");

    Tensor4d out(input.n(), params.out_channels, out_h, out_w);
    for (int n = 0; n < input.n(); ++n) {
        for (int oc = 0; oc < params.out_channels; ++oc) {
            for (int oh = 0; oh < out_h; ++oh) {
                for (int ow = 0; ow < out_w; ++ow) {
                    float acc = 0.0f;
                    for (int ic = 0; ic < params.in_channels; ++ic) {
                        for (int kh = 0; kh < params.kernel; ++kh) {
                            for (int kw = 0; kw < params.kernel; ++kw) {
                                int ih = oh * params.stride + kh -
                                         params.pad;
                                int iw = ow * params.stride + kw -
                                         params.pad;
                                if (ih < 0 || ih >= input.h() || iw < 0 ||
                                    iw >= input.w())
                                    continue;
                                int wcol =
                                    (ic * params.kernel + kh) *
                                        params.kernel +
                                    kw;
                                acc += input.at(n, ic, ih, iw) *
                                       weights.at(oc, wcol);
                            }
                        }
                    }
                    out.at(n, oc, oh, ow) = acc;
                }
            }
        }
    }
    return out;
}

} // namespace dstc
