/**
 * @file
 * NCHW feature-map tensor for the convolution paths.
 */
#ifndef DSTC_TENSOR_TENSOR4D_H
#define DSTC_TENSOR_TENSOR4D_H

#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace dstc {

/** Dense 4-D tensor in NCHW layout (batch, channel, height, width). */
class Tensor4d
{
  public:
    Tensor4d() : n_(0), c_(0), h_(0), w_(0) {}

    Tensor4d(int n, int c, int h, int w)
        : n_(n), c_(c), h_(h), w_(w),
          data_(static_cast<size_t>(n) * c * h * w, 0.0f)
    {
        DSTC_ASSERT(n >= 0 && c >= 0 && h >= 0 && w >= 0);
    }

    int n() const { return n_; }
    int c() const { return c_; }
    int h() const { return h_; }
    int w() const { return w_; }
    size_t size() const { return data_.size(); }

    float &
    at(int n, int c, int h, int w)
    {
        return data_[index(n, c, h, w)];
    }

    const float &
    at(int n, int c, int h, int w) const
    {
        return data_[index(n, c, h, w)];
    }

    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /** Fraction of zero elements in [0, 1]. */
    double
    sparsity() const
    {
        if (data_.empty())
            return 0.0;
        size_t zeros = 0;
        for (float v : data_)
            if (v == 0.0f)
                ++zeros;
        return static_cast<double>(zeros) /
               static_cast<double>(data_.size());
    }

  private:
    size_t
    index(int n, int c, int h, int w) const
    {
        DSTC_ASSERT(n >= 0 && n < n_ && c >= 0 && c < c_ && h >= 0 &&
                        h < h_ && w >= 0 && w < w_,
                    "index (", n, ",", c, ",", h, ",", w, ") of (", n_, ",",
                    c_, ",", h_, ",", w_, ")");
        return ((static_cast<size_t>(n) * c_ + c) * h_ + h) *
                   static_cast<size_t>(w_) +
               w;
    }

    int n_, c_, h_, w_;
    std::vector<float> data_;
};

/** Random NCHW tensor with a uniform Bernoulli zero pattern. */
inline Tensor4d
randomSparseTensor(int n, int c, int h, int w, double sparsity, Rng &rng)
{
    Tensor4d t(n, c, h, w);
    for (float &v : t.data()) {
        if (!rng.bernoulli(sparsity)) {
            float x = rng.uniformFloat(-1.0f, 1.0f);
            v = (x == 0.0f) ? 0.5f : x;
        }
    }
    return t;
}

} // namespace dstc

#endif // DSTC_TENSOR_TENSOR4D_H
