/**
 * @file
 * Binary serialization of the sparse formats, so encoded operands
 * (e.g. pruned checkpoints converted offline) can be stored and
 * reloaded without re-encoding — the workflow a deployment of the
 * bitmap format would use.
 *
 * The container is a small tagged header followed by the dense
 * payload reconstruction data; integrity is checked on load and
 * malformed inputs fail with an error rather than undefined
 * behaviour.
 */
#ifndef DSTC_SPARSE_SERIALIZE_H
#define DSTC_SPARSE_SERIALIZE_H

#include <iosfwd>
#include <optional>
#include <string>

#include "sparse/bitmap.h"
#include "sparse/csr.h"

namespace dstc {

/** Write a bitmap matrix to a binary stream. */
void saveBitmap(const BitmapMatrix &bm, std::ostream &out);

/**
 * Read a bitmap matrix from a binary stream. Returns std::nullopt on
 * malformed input (bad magic, truncated payload, inconsistent
 * counts).
 */
std::optional<BitmapMatrix> loadBitmap(std::istream &in);

/** Write a CSR matrix to a binary stream. */
void saveCsr(const CsrMatrix &csr, std::ostream &out);

/** Read a CSR matrix; std::nullopt on malformed input. */
std::optional<CsrMatrix> loadCsr(std::istream &in);

} // namespace dstc

#endif // DSTC_SPARSE_SERIALIZE_H
