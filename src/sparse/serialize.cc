#include "sparse/serialize.h"

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

namespace dstc {

namespace {

constexpr uint32_t kBitmapMagic = 0x44425431; // "DBT1"
constexpr uint32_t kCsrMagic = 0x44435231;    // "DCR1"

void
writeU32(std::ostream &out, uint32_t value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

bool
readU32(std::istream &in, uint32_t &value)
{
    in.read(reinterpret_cast<char *>(&value), sizeof(value));
    return in.good();
}

void
writeFloats(std::ostream &out, const std::vector<float> &values)
{
    writeU32(out, static_cast<uint32_t>(values.size()));
    out.write(reinterpret_cast<const char *>(values.data()),
              static_cast<std::streamsize>(values.size() *
                                           sizeof(float)));
}

bool
readFloats(std::istream &in, std::vector<float> &values,
           uint32_t sanity_cap)
{
    uint32_t count = 0;
    if (!readU32(in, count) || count > sanity_cap)
        return false;
    values.resize(count);
    in.read(reinterpret_cast<char *>(values.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
    return in.good() || (count == 0 && !in.bad());
}

} // namespace

void
saveBitmap(const BitmapMatrix &bm, std::ostream &out)
{
    // The payload is the decoded triplet stream (row, col, value):
    // simple, versionable, and immune to internal layout changes.
    writeU32(out, kBitmapMagic);
    writeU32(out, static_cast<uint32_t>(bm.rows()));
    writeU32(out, static_cast<uint32_t>(bm.cols()));
    writeU32(out, bm.major() == Major::Col ? 1 : 0);
    writeU32(out, static_cast<uint32_t>(bm.nnz()));
    Matrix<float> dense = bm.decode();
    for (int r = 0; r < dense.rows(); ++r) {
        for (int c = 0; c < dense.cols(); ++c) {
            if (dense.at(r, c) == 0.0f)
                continue;
            writeU32(out, static_cast<uint32_t>(r));
            writeU32(out, static_cast<uint32_t>(c));
            float v = dense.at(r, c);
            out.write(reinterpret_cast<const char *>(&v), sizeof(v));
        }
    }
}

std::optional<BitmapMatrix>
loadBitmap(std::istream &in)
{
    uint32_t magic = 0, rows = 0, cols = 0, major = 0, nnz = 0;
    if (!readU32(in, magic) || magic != kBitmapMagic)
        return std::nullopt;
    if (!readU32(in, rows) || !readU32(in, cols) ||
        !readU32(in, major) || !readU32(in, nnz))
        return std::nullopt;
    if (rows > (1u << 24) || cols > (1u << 24) || major > 1)
        return std::nullopt;
    if (static_cast<uint64_t>(nnz) >
        static_cast<uint64_t>(rows) * cols)
        return std::nullopt;

    Matrix<float> dense(static_cast<int>(rows), static_cast<int>(cols));
    for (uint32_t i = 0; i < nnz; ++i) {
        uint32_t r = 0, c = 0;
        float v = 0.0f;
        if (!readU32(in, r) || !readU32(in, c))
            return std::nullopt;
        in.read(reinterpret_cast<char *>(&v), sizeof(v));
        if (!in.good() || r >= rows || c >= cols || v == 0.0f)
            return std::nullopt;
        dense.at(static_cast<int>(r), static_cast<int>(c)) = v;
    }
    return BitmapMatrix::encode(dense,
                                major == 1 ? Major::Col : Major::Row);
}

void
saveCsr(const CsrMatrix &csr, std::ostream &out)
{
    writeU32(out, kCsrMagic);
    writeU32(out, static_cast<uint32_t>(csr.rows()));
    writeU32(out, static_cast<uint32_t>(csr.cols()));
    writeU32(out, static_cast<uint32_t>(csr.rowPtr().size()));
    for (int p : csr.rowPtr())
        writeU32(out, static_cast<uint32_t>(p));
    writeU32(out, static_cast<uint32_t>(csr.colIdx().size()));
    for (int c : csr.colIdx())
        writeU32(out, static_cast<uint32_t>(c));
    writeFloats(out, csr.values());
}

std::optional<CsrMatrix>
loadCsr(std::istream &in)
{
    uint32_t magic = 0, rows = 0, cols = 0;
    if (!readU32(in, magic) || magic != kCsrMagic)
        return std::nullopt;
    if (!readU32(in, rows) || !readU32(in, cols))
        return std::nullopt;
    if (rows > (1u << 24) || cols > (1u << 24))
        return std::nullopt;

    uint32_t ptr_count = 0;
    if (!readU32(in, ptr_count) || ptr_count != rows + 1)
        return std::nullopt;
    std::vector<uint32_t> row_ptr(ptr_count);
    for (auto &p : row_ptr)
        if (!readU32(in, p))
            return std::nullopt;

    uint32_t idx_count = 0;
    if (!readU32(in, idx_count) || idx_count != row_ptr.back())
        return std::nullopt;
    std::vector<uint32_t> col_idx(idx_count);
    for (auto &c : col_idx)
        if (!readU32(in, c) || c >= cols)
            return std::nullopt;

    std::vector<float> values;
    if (!readFloats(in, values, idx_count) ||
        values.size() != idx_count)
        return std::nullopt;

    // Rebuild through the dense form so internal invariants (sorted
    // columns, consistent prefix sums) are re-established rather
    // than trusted.
    Matrix<float> dense(static_cast<int>(rows), static_cast<int>(cols));
    for (uint32_t r = 0; r < rows; ++r) {
        if (row_ptr[r] > row_ptr[r + 1])
            return std::nullopt;
        for (uint32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i)
            dense.at(static_cast<int>(r),
                     static_cast<int>(col_idx[i])) = values[i];
    }
    return CsrMatrix::encode(dense);
}

} // namespace dstc
