/**
 * @file
 * Two-level bitmap encoding (Fig. 9): a warp-bitmap marking which
 * warp tiles are non-empty, plus a per-tile element bitmap and packed
 * values. Localizing non-zeros inside a tile keeps the outer-product
 * partial matrix inside the Tensor Core's accumulation buffer, and a
 * '0' warp-bit lets the whole tile be skipped.
 */
#ifndef DSTC_SPARSE_TWO_LEVEL_H
#define DSTC_SPARSE_TWO_LEVEL_H

#include <cstdint>
#include <vector>

#include "sparse/bitmap.h"
#include "tensor/matrix.h"

namespace dstc {

/** Two-level (warp-bitmap + element-bitmap) sparse matrix. */
class TwoLevelBitmapMatrix
{
  public:
    TwoLevelBitmapMatrix() = default;

    /**
     * Encode a dense matrix with @p tile_rows x @p tile_cols warp
     * tiles. Partial edge tiles are allowed. Values within each tile
     * are packed in @p major order (Col for the A operand, Row for B).
     * @p spec fills every tile's quantized value lane; integer specs
     * must carry the *matrix-global* scale (tiles of one operand
     * share it), which is why the spec is computed by the caller.
     */
    static TwoLevelBitmapMatrix encode(const Matrix<float> &dense,
                                       int tile_rows, int tile_cols,
                                       Major major,
                                       const QuantSpec &spec = {});

    /**
     * Assemble a two-level matrix from already-encoded warp tiles,
     * in (tile-row major) tileIndex order — one entry per tile,
     * clipped edge tiles included. The warp-bitmap is derived from
     * each tile's nnz. This is the word-parallel construction path:
     * producers that already hold per-tile bitmaps (the implicit
     * im2col) skip the dense staging of encode() entirely. @p spec
     * records the quantization the tiles' value lanes were built
     * with (it is bookkeeping here — the tiles already hold their
     * lane values).
     */
    static TwoLevelBitmapMatrix fromTiles(int rows, int cols,
                                          int tile_rows, int tile_cols,
                                          Major major,
                                          std::vector<BitmapMatrix> tiles,
                                          const QuantSpec &spec = {});

    /** Reconstruct the dense matrix. */
    Matrix<float> decode() const;

    /**
     * Slice: the encoding restricted to @p tile_rows (ascending tile
     * row indices), all tile columns kept. Tiles are shared-copied
     * into a fromTiles assembly — no re-encode, no value pass. For an
     * A operand (tile rows span M) this is exactly the operand view
     * of an M-partitioned class: because tiles are self-contained,
     * slice(encode(A)) is bitwise identical to encode(slice(A)).
     * Only the matrix's (possibly clipped) last tile row may appear
     * in a non-final position — it never can under ascending order.
     */
    TwoLevelBitmapMatrix
    selectTileRows(const std::vector<int> &tile_rows) const;

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int tileRows() const { return tile_rows_; }
    int tileCols() const { return tile_cols_; }
    int numTileRows() const { return n_tile_rows_; }
    int numTileCols() const { return n_tile_cols_; }

    /** The quantization the value lanes were encoded with. */
    const QuantSpec &spec() const { return spec_; }

    /** Warp-bitmap bit: true iff tile (tr, tc) holds any non-zero. */
    bool tileNonEmpty(int tr, int tc) const;

    /** Non-zero count of tile (tr, tc). */
    int tileNnz(int tr, int tc) const;

    /**
     * Element bitmap of tile (tr, tc) as a one-level BitmapMatrix of
     * the tile's actual (possibly clipped) dimensions. Empty tiles
     * return an all-zero bitmap.
     */
    const BitmapMatrix &tile(int tr, int tc) const;

    /** Count of non-empty tiles (POPC of the warp-bitmap). */
    int nonEmptyTiles() const;

    /** Total non-zeros. */
    int nnz() const;

    /**
     * Bytes occupied: warp-bitmap + element bitmaps of non-empty
     * tiles + values at the encoding datatype's lane width (FP16 by
     * default, half that for int8, a quarter for int4). Empty tiles
     * store only their warp-bit, which is how very sparse matrices
     * shrink (paper Sec. VI-D).
     */
    size_t encodedBytes() const;

  private:
    int tileIndex(int tr, int tc) const { return tr * n_tile_cols_ + tc; }

    int rows_ = 0, cols_ = 0;
    int tile_rows_ = 0, tile_cols_ = 0;
    int n_tile_rows_ = 0, n_tile_cols_ = 0;
    Major major_ = Major::Row;
    QuantSpec spec_;
    std::vector<uint64_t> warp_bits_;
    std::vector<BitmapMatrix> tiles_;
};

} // namespace dstc

#endif // DSTC_SPARSE_TWO_LEVEL_H
