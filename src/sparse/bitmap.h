/**
 * @file
 * The paper's bitmap sparse encoding (Fig. 2b): a two-tuple of a
 * bitmap (1 bit per element) and the packed non-zero values.
 *
 * To support the outer product, matrix A is encoded column-major (its
 * packing "lines" are columns) and matrix B row-major (lines are
 * rows). Non-zero values within a line are packed in increasing
 * position order, which is exactly the condensed layout the OTC
 * consumes (Fig. 4c).
 */
#ifndef DSTC_SPARSE_BITMAP_H
#define DSTC_SPARSE_BITMAP_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitutil.h"
#include "common/datatype.h"
#include "tensor/matrix.h"

namespace dstc {

/** Which dimension a bitmap's packing lines run along. */
enum class Major
{
    Row, ///< lines are rows (used for matrix B)
    Col, ///< lines are columns (used for matrix A)
};

/** Bitmap-encoded sparse matrix: bitmap + packed non-zero values. */
class BitmapMatrix
{
  public:
    BitmapMatrix() = default;

    /**
     * Encode a dense matrix. Exact zeros become bitmap zeros; the
     * quantized value lane is filled by @p spec (default: the FP16
     * rounding of the seed pipeline). A non-zero that quantizes to 0
     * keeps its bit, so the bitmap is datatype-invariant.
     */
    static BitmapMatrix encode(const Matrix<float> &dense, Major major,
                               const QuantSpec &spec = {});

    /**
     * Encode a row-major contiguous plane (rows x cols floats) as a
     * Major::Row bitmap — the feature-map plane encoder. Equivalent
     * to encode(Matrix, Major::Row) without staging the Matrix; bits
     * are built 64 elements per output word.
     */
    static BitmapMatrix encodePlane(const float *data, int rows,
                                    int cols,
                                    const QuantSpec &spec = {});

    /**
     * Assemble a bitmap matrix from already-packed parts: per-line
     * bitmap words (wordsPerLine() words per line), values packed in
     * line order, their FP16-rounded mirror, and the per-line prefix
     * offsets (numLines() + 1 entries). This is the word-parallel
     * construction path — callers that already hold bitmap words
     * (e.g. the implicit-im2col tiler) never touch a dense
     * intermediate. The parts must be mutually consistent: offsets
     * deltas equal each line's popcount, values/fp16 sized to the
     * total nnz.
     */
    static BitmapMatrix fromPacked(int rows, int cols, Major major,
                                   std::vector<uint64_t> bits,
                                   std::vector<float> values,
                                   std::vector<float> values_fp16,
                                   std::vector<int> line_offsets);

    /** Reconstruct the dense matrix. */
    Matrix<float> decode() const;

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    Major major() const { return major_; }

    /** Number of packing lines (cols if column-major, else rows). */
    int numLines() const { return major_ == Major::Col ? cols_ : rows_; }

    /** Elements per packing line. */
    int lineLength() const { return major_ == Major::Col ? rows_ : cols_; }

    /** Total number of non-zero values. */
    int nnz() const { return static_cast<int>(values_.size()); }

    /** Fraction of zero elements in [0, 1]. */
    double
    sparsity() const
    {
        size_t total = static_cast<size_t>(rows_) * cols_;
        return total == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(nnz()) /
                               static_cast<double>(total);
    }

    /** Bit at (r, c): true iff the element is non-zero. */
    bool bit(int r, int c) const;

    /** Number of non-zeros in one packing line. Inline: the multiply
     *  loop reads it twice per k-step. */
    int
    lineNnz(int line) const
    {
        DSTC_ASSERT(line >= 0 && line < numLines());
        return line_offsets_[line + 1] - line_offsets_[line];
    }

    /**
     * POPC over positions [lo, hi) of a packing line — the hardware
     * primitive that drives OHMMA predication (Fig. 15). Inline: the
     * im2col window gather issues two per lowered row.
     */
    int
    linePopcount(int line, int lo, int hi) const
    {
        DSTC_ASSERT(line >= 0 && line < numLines());
        DSTC_ASSERT(lo >= 0 && hi <= lineLength() && lo <= hi);
        size_t base = static_cast<size_t>(line) * words_per_line_ * 64;
        return popcountRange(bits_, base + lo, base + hi);
    }

    /** Packed non-zero values of one line, in position order. */
    std::span<const float>
    lineValues(int line) const
    {
        DSTC_ASSERT(line >= 0 && line < numLines());
        return {values_.data() + line_offsets_[line],
                static_cast<size_t>(lineNnz(line))};
    }

    /**
     * The same values pre-quantized through the encode-time
     * QuantSpec — the lane the modeled datapath multiplies
     * (precision-rounded for fp16/bf16, integer codes for int8/int4).
     * Computed once at encode time so the hot multiply loop never
     * re-rounds (an A tile's lines are re-read once per output tile
     * column). Named for the FP16 default; lineValuesQuant is the
     * datatype-general alias.
     */
    std::span<const float>
    lineValuesFp16(int line) const
    {
        DSTC_ASSERT(line >= 0 && line < numLines());
        return {values_fp16_.data() + line_offsets_[line],
                static_cast<size_t>(lineNnz(line))};
    }

    /** The quantized value lane of one line (alias of
     *  lineValuesFp16, which predates the datatype axis). */
    std::span<const float>
    lineValuesQuant(int line) const
    {
        return lineValuesFp16(line);
    }

    /**
     * Values of line positions [lo, hi) as a condensed (packed)
     * vector. The start offset inside the line's value array is the
     * popcount of [0, lo) — the paper's address-offset trick (S3 in
     * Fig. 11b).
     */
    std::vector<float> lineValuesRange(int line, int lo, int hi) const;

    /** The bitmap words of one line (lineLength() bits, LSB-first). */
    std::span<const uint64_t>
    lineBits(int line) const
    {
        DSTC_ASSERT(line >= 0 && line < numLines());
        return {bits_.data() +
                    static_cast<size_t>(line) * words_per_line_,
                static_cast<size_t>(words_per_line_)};
    }

    /** Bytes occupied by this encoding: bitmap + values packed at
     *  @p dtype width (FP16 by default; int4 nibble-packs). */
    size_t encodedBytes(DataType dtype = DataType::Fp16) const;

    /** Non-zero positions of line [lo, hi) (for gather/scatter). */
    std::vector<int> linePositions(int line, int lo, int hi) const;

    /**
     * Non-allocating variant of linePositions: writes the positions
     * of line range [lo, hi) into caller-owned @p out (which must
     * hold at least linePopcount(line, lo, hi) ints) and returns the
     * count. Iterates 64-bit bitmap words via ctz — the software
     * mirror of the hardware's word-parallel bitmap scan.
     */
    int linePositionsInto(int line, int lo, int hi, int *out) const;

    /**
     * Non-allocating variant of lineValuesRange: writes the condensed
     * values of line positions [lo, hi) into caller-owned @p out and
     * returns the count. The start offset inside the line's value
     * array is the popcount of [0, lo) — the paper's address-offset
     * trick (S3 in Fig. 11b).
     */
    int lineValuesRangeInto(int line, int lo, int hi, float *out) const;

    /** Bitmap words per packing line. */
    int wordsPerLine() const { return words_per_line_; }

    /** Value lookup by coordinates; zero if the bit is clear. */
    float valueAt(int r, int c) const;

  private:
    int lineOf(int r, int c) const;
    int posOf(int r, int c) const;

    int rows_ = 0;
    int cols_ = 0;
    Major major_ = Major::Row;
    int words_per_line_ = 0;
    std::vector<uint64_t> bits_;      ///< words_per_line_ words per line
    std::vector<float> values_;       ///< packed non-zeros, line order
    std::vector<float> values_fp16_;  ///< values_ through QuantSpec::apply
    std::vector<int> line_offsets_;   ///< per-line prefix sums into values_
};

/**
 * The shared word-parallel encode primitive: pack a row-major
 * contiguous block of floats into bitmap words (@p words_per_line
 * words per row, LSB-first, built 64 elements at a time via
 * packNonzeroBits) and gather the non-zero values in row-major
 * order, appended to @p values while each row is still
 * cache-resident. When @p row_offsets is non-null (@p rows + 1
 * entries, [0] already 0), entry r+1 receives the value count
 * through row r. Every word-parallel encoder (encodePlane, the
 * dense->two-level builders) routes through this one loop, so the
 * bit/value semantics the equivalence tests pin cannot silently
 * fork.
 */
void packRowsAndGatherValues(const float *data, int rows, int cols,
                             int words_per_line, uint64_t *bits,
                             std::vector<float> &values,
                             int *row_offsets);

/**
 * POPC of the AND of two bitmap-word spans — the hardware's
 * occupancy-bitmap intersection (the S2 step of Fig. 11b, and the
 * per-tile AND that drives k-compaction in Sec. III-B3). Spans may
 * differ in length; missing words are treated as zero.
 */
int andPopcount(std::span<const uint64_t> a, std::span<const uint64_t> b);

/**
 * Positions of the common set bits of two bitmap-word spans,
 * iterated word-at-a-time via ctz over the ANDed words. Writes into
 * caller-owned @p out (sized at least andPopcount(a, b)); returns
 * the count.
 */
int andPositionsInto(std::span<const uint64_t> a,
                     std::span<const uint64_t> b, int *out);

} // namespace dstc

#endif // DSTC_SPARSE_BITMAP_H
