#include "sparse/narrow_tile.h"

namespace dstc {

NarrowTileMatrix
NarrowTileMatrix::encode(const Matrix<float> &dense,
                         const QuantSpec &spec)
{
    const int rows = dense.rows(), cols = dense.cols();
    const int n_strips = ceilDiv(rows, kStripRows);
    const int wps = ceilDiv(cols, 64);

    NarrowTileMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.n_strips_ = n_strips;
    m.words_per_strip_ = wps;
    m.spec_ = spec;
    m.vector_bits_.assign(static_cast<size_t>(n_strips) * wps, 0);
    m.strip_offsets_.assign(static_cast<size_t>(n_strips) + 1, 0);
    m.value_offsets_.push_back(0);

    for (int s = 0; s < n_strips; ++s) {
        const int r0 = s * kStripRows;
        const int span = std::min(kStripRows, rows - r0);
        for (int c = 0; c < cols; ++c) {
            uint8_t mask = 0;
            for (int j = 0; j < span; ++j)
                if (dense(r0 + j, c) != 0.0f)
                    mask |= static_cast<uint8_t>(1u << j);
            if (!mask)
                continue;
            m.vector_bits_[static_cast<size_t>(s) * wps + (c >> 6)] |=
                uint64_t{1} << (c & 63);
            m.masks_.push_back(mask);
            for (int j = 0; j < span; ++j)
                if (mask & (1u << j))
                    m.values_.push_back(dense(r0 + j, c));
            m.value_offsets_.push_back(
                static_cast<int64_t>(m.values_.size()));
        }
        m.strip_offsets_[static_cast<size_t>(s) + 1] =
            static_cast<int64_t>(m.masks_.size());
    }

    m.values_quant_.resize(m.values_.size());
    for (size_t i = 0; i < m.values_.size(); ++i)
        m.values_quant_[i] = spec.apply(m.values_[i]);
    return m;
}

NarrowTileMatrix
NarrowTileMatrix::fromParts(int rows, int cols, const QuantSpec &spec,
                            std::vector<uint64_t> vector_bits,
                            std::vector<int64_t> strip_offsets,
                            std::vector<uint8_t> masks,
                            std::vector<int64_t> value_offsets,
                            std::vector<float> values,
                            std::vector<float> values_quant)
{
    const int n_strips = ceilDiv(rows, kStripRows);
    const int wps = ceilDiv(cols, 64);
    DSTC_ASSERT(vector_bits.size() ==
                static_cast<size_t>(n_strips) * wps);
    DSTC_ASSERT(strip_offsets.size() ==
                static_cast<size_t>(n_strips) + 1);
    DSTC_ASSERT(strip_offsets.back() ==
                static_cast<int64_t>(masks.size()));
    DSTC_ASSERT(value_offsets.size() == masks.size() + 1);
    DSTC_ASSERT(value_offsets.back() ==
                static_cast<int64_t>(values.size()));
    DSTC_ASSERT(values_quant.size() == values.size());

    NarrowTileMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.n_strips_ = n_strips;
    m.words_per_strip_ = wps;
    m.spec_ = spec;
    m.vector_bits_ = std::move(vector_bits);
    m.strip_offsets_ = std::move(strip_offsets);
    m.masks_ = std::move(masks);
    m.value_offsets_ = std::move(value_offsets);
    m.values_ = std::move(values);
    m.values_quant_ = std::move(values_quant);
    return m;
}

Matrix<float>
NarrowTileMatrix::decode() const
{
    Matrix<float> out(rows_, cols_);
    for (int s = 0; s < n_strips_; ++s) {
        const int r0 = s * kStripRows;
        int64_t v = strip_offsets_[s];
        for (int w = 0; w < words_per_strip_; ++w) {
            uint64_t word = stripWord(s, w);
            const int c_base = w << 6;
            while (word) {
                const int c = c_base + std::countr_zero(word);
                word &= word - 1;
                uint8_t mask = masks_[v];
                const float *vals = values_.data() + value_offsets_[v];
                while (mask) {
                    const int j = std::countr_zero(
                        static_cast<uint32_t>(mask));
                    mask = static_cast<uint8_t>(mask & (mask - 1));
                    out(r0 + j, c) = *vals++;
                }
                ++v;
            }
        }
    }
    return out;
}

size_t
NarrowTileMatrix::encodedBytes(DataType dtype) const
{
    return narrowEncodedBytes(rows_, cols_, numVectors(), nnz(),
                              dtype);
}

size_t
NarrowTileMatrix::narrowEncodedBytes(int64_t rows, int64_t cols,
                                     int64_t vectors, int64_t nnz,
                                     DataType dtype)
{
    const int64_t strips = ceilDiv<int64_t>(rows, kStripRows);
    const int64_t wps = ceilDiv<int64_t>(cols, 64);
    size_t bytes = static_cast<size_t>(strips) * wps * 8; // level 1
    bytes += static_cast<size_t>(vectors);                // row masks
    bytes += dataTypePackedBytes(dtype, static_cast<size_t>(nnz));
    bytes += static_cast<size_t>(strips) * 4; // per-strip offsets
    return bytes;
}

} // namespace dstc
