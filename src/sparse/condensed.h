/**
 * @file
 * Condensed operand layout (Fig. 4c): per packing line, the non-zeros
 * pushed to the front and padded with zeros up to the OTC chunk size.
 * This is what the outer-product datapath actually multiplies.
 */
#ifndef DSTC_SPARSE_CONDENSED_H
#define DSTC_SPARSE_CONDENSED_H

#include <vector>

#include "sparse/bitmap.h"

namespace dstc {

/**
 * Condensed form of a bitmap matrix: packed per-line value vectors,
 * zero-padded to a multiple of the OTC chunk length (8 for the A side,
 * 16 for the B side of OHMMA.8161).
 */
class CondensedMatrix
{
  public:
    CondensedMatrix() = default;

    /**
     * Condense a bitmap matrix. @p chunk is the OTC tile dimension on
     * this operand's side; every line is padded to a multiple of it.
     * With @p quantized_lane the condensed vectors carry the
     * encode-time quantized values (the lane the datapath actually
     * multiplies — lineValuesQuant) instead of the raw FP32 mirror.
     */
    static CondensedMatrix fromBitmap(const BitmapMatrix &bm, int chunk,
                                      bool quantized_lane = false);

    int numLines() const { return static_cast<int>(lines_.size()); }
    int chunk() const { return chunk_; }

    /** Padded, condensed values of one line. */
    const std::vector<float> &
    line(int i) const
    {
        return lines_[i];
    }

    /** Non-zero count of one line (before padding). */
    int
    lineNnz(int i) const
    {
        return nnz_[i];
    }

    /** Number of OTC chunks needed for one line: ceil(nnz / chunk). */
    int lineChunks(int i) const;

    /** Total OTC chunks across all lines. */
    int totalChunks() const;

  private:
    int chunk_ = 1;
    std::vector<std::vector<float>> lines_;
    std::vector<int> nnz_;
};

} // namespace dstc

#endif // DSTC_SPARSE_CONDENSED_H
