#include "sparse/two_level.h"

#include <algorithm>

#include "common/bitutil.h"

namespace dstc {

TwoLevelBitmapMatrix
TwoLevelBitmapMatrix::encode(const Matrix<float> &dense, int tile_rows,
                             int tile_cols, Major major,
                             const QuantSpec &spec)
{
    DSTC_ASSERT(tile_rows > 0 && tile_cols > 0);
    TwoLevelBitmapMatrix tl;
    tl.rows_ = dense.rows();
    tl.cols_ = dense.cols();
    tl.tile_rows_ = tile_rows;
    tl.tile_cols_ = tile_cols;
    tl.n_tile_rows_ = ceilDiv(dense.rows(), tile_rows);
    tl.n_tile_cols_ = ceilDiv(dense.cols(), tile_cols);
    tl.major_ = major;
    tl.spec_ = spec;

    int n_tiles = tl.n_tile_rows_ * tl.n_tile_cols_;
    tl.warp_bits_.assign(ceilDiv(n_tiles, 64), 0);
    tl.tiles_.resize(n_tiles);

    for (int tr = 0; tr < tl.n_tile_rows_; ++tr) {
        for (int tc = 0; tc < tl.n_tile_cols_; ++tc) {
            int r0 = tr * tile_rows;
            int c0 = tc * tile_cols;
            int r1 = std::min(r0 + tile_rows, dense.rows());
            int c1 = std::min(c0 + tile_cols, dense.cols());
            Matrix<float> sub(r1 - r0, c1 - c0);
            bool any = false;
            for (int r = r0; r < r1; ++r) {
                for (int c = c0; c < c1; ++c) {
                    float v = dense.at(r, c);
                    sub.at(r - r0, c - c0) = v;
                    any |= (v != 0.0f);
                }
            }
            int ti = tl.tileIndex(tr, tc);
            tl.tiles_[ti] = BitmapMatrix::encode(sub, major, spec);
            if (any)
                setBit(tl.warp_bits_, ti);
        }
    }
    return tl;
}

TwoLevelBitmapMatrix
TwoLevelBitmapMatrix::fromTiles(int rows, int cols, int tile_rows,
                                int tile_cols, Major major,
                                std::vector<BitmapMatrix> tiles,
                                const QuantSpec &spec)
{
    DSTC_ASSERT(tile_rows > 0 && tile_cols > 0);
    TwoLevelBitmapMatrix tl;
    tl.rows_ = rows;
    tl.cols_ = cols;
    tl.tile_rows_ = tile_rows;
    tl.tile_cols_ = tile_cols;
    tl.n_tile_rows_ = ceilDiv(rows, tile_rows);
    tl.n_tile_cols_ = ceilDiv(cols, tile_cols);
    tl.major_ = major;
    tl.spec_ = spec;

    const int n_tiles = tl.n_tile_rows_ * tl.n_tile_cols_;
    DSTC_ASSERT(static_cast<int>(tiles.size()) == n_tiles,
                "fromTiles: got ", tiles.size(), " tiles, expected ",
                n_tiles);
    tl.warp_bits_.assign(ceilDiv(n_tiles, 64), 0);
    tl.tiles_ = std::move(tiles);
    for (int ti = 0; ti < n_tiles; ++ti) {
        DSTC_ASSERT(tl.tiles_[ti].major() == major);
        if (tl.tiles_[ti].nnz() > 0)
            setBit(tl.warp_bits_, ti);
    }
    return tl;
}

TwoLevelBitmapMatrix
TwoLevelBitmapMatrix::selectTileRows(
    const std::vector<int> &tile_rows) const
{
    DSTC_ASSERT(!tile_rows.empty(),
                "selectTileRows needs >= 1 tile row");
    for (size_t i = 0; i < tile_rows.size(); ++i) {
        DSTC_ASSERT(tile_rows[i] >= 0 &&
                    tile_rows[i] < n_tile_rows_);
        DSTC_ASSERT(i == 0 || tile_rows[i - 1] < tile_rows[i],
                    "selectTileRows wants ascending tile rows");
    }
    // Every selected tile row except the last must be full: only the
    // matrix's last tile row can be clipped, and ascending order
    // pins it to the final slot.
    const int last_span =
        std::min(tile_rows_, rows_ - tile_rows.back() * tile_rows_);
    const int sliced_rows =
        static_cast<int>(tile_rows.size() - 1) * tile_rows_ +
        last_span;
    std::vector<BitmapMatrix> tiles;
    tiles.reserve(tile_rows.size() *
                  static_cast<size_t>(n_tile_cols_));
    for (int tr : tile_rows)
        for (int tc = 0; tc < n_tile_cols_; ++tc)
            tiles.push_back(tiles_[tileIndex(tr, tc)]);
    return fromTiles(sliced_rows, cols_, tile_rows_, tile_cols_,
                     major_, std::move(tiles), spec_);
}

Matrix<float>
TwoLevelBitmapMatrix::decode() const
{
    Matrix<float> dense(rows_, cols_);
    for (int tr = 0; tr < n_tile_rows_; ++tr) {
        for (int tc = 0; tc < n_tile_cols_; ++tc) {
            if (!tileNonEmpty(tr, tc))
                continue;
            Matrix<float> sub = tiles_[tileIndex(tr, tc)].decode();
            int r0 = tr * tile_rows_;
            int c0 = tc * tile_cols_;
            for (int r = 0; r < sub.rows(); ++r)
                for (int c = 0; c < sub.cols(); ++c)
                    dense.at(r0 + r, c0 + c) = sub.at(r, c);
        }
    }
    return dense;
}

bool
TwoLevelBitmapMatrix::tileNonEmpty(int tr, int tc) const
{
    DSTC_ASSERT(tr >= 0 && tr < n_tile_rows_ && tc >= 0 &&
                tc < n_tile_cols_);
    return getBit(warp_bits_, tileIndex(tr, tc));
}

int
TwoLevelBitmapMatrix::tileNnz(int tr, int tc) const
{
    return tiles_[tileIndex(tr, tc)].nnz();
}

const BitmapMatrix &
TwoLevelBitmapMatrix::tile(int tr, int tc) const
{
    DSTC_ASSERT(tr >= 0 && tr < n_tile_rows_ && tc >= 0 &&
                tc < n_tile_cols_);
    return tiles_[tileIndex(tr, tc)];
}

int
TwoLevelBitmapMatrix::nonEmptyTiles() const
{
    int count = 0;
    for (uint64_t w : warp_bits_)
        count += popcount64(w);
    return count;
}

int
TwoLevelBitmapMatrix::nnz() const
{
    int total = 0;
    for (const auto &t : tiles_)
        total += t.nnz();
    return total;
}

size_t
TwoLevelBitmapMatrix::encodedBytes() const
{
    size_t bytes = ceilDiv(static_cast<size_t>(tiles_.size()), size_t{8});
    for (int tr = 0; tr < n_tile_rows_; ++tr) {
        for (int tc = 0; tc < n_tile_cols_; ++tc) {
            if (!tileNonEmpty(tr, tc))
                continue;
            const auto &t = tiles_[tileIndex(tr, tc)];
            bytes += ceilDiv(static_cast<size_t>(t.rows()) * t.cols(),
                             size_t{8});
            bytes += dataTypePackedBytes(
                spec_.dtype, static_cast<size_t>(t.nnz()));
        }
    }
    return bytes;
}

} // namespace dstc
