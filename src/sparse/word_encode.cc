#include "sparse/word_encode.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/fp16.h"
#include "common/logging.h"
#include "core/thread_pool.h"

namespace dstc {

namespace {

/** Row-major bitmap words: one branchless pass over the storage. */
std::vector<uint64_t>
rowMajorBits(const Matrix<float> &dense, int wpl)
{
    const int rows = dense.rows(), cols = dense.cols();
    std::vector<uint64_t> bits(static_cast<size_t>(rows) * wpl, 0);
    const float *data = dense.data().data();
    for (int r = 0; r < rows; ++r) {
        const float *row = data + static_cast<size_t>(r) * cols;
        uint64_t *words = bits.data() + static_cast<size_t>(r) * wpl;
        for (int c0 = 0; c0 < cols; c0 += 64)
            words[c0 >> 6] =
                packNonzeroBits(row + c0, std::min(64, cols - c0));
    }
    return bits;
}

/**
 * Column-major bitmap words from the row-major ones via 64x64 block
 * transposes — no per-element column probes anywhere.
 */
std::vector<uint64_t>
transposeBits(const std::vector<uint64_t> &row_bits, int rows,
              int cols, int wpl_row, int wpl_col)
{
    std::vector<uint64_t> bits(static_cast<size_t>(cols) * wpl_col,
                               0);
    uint64_t blk[64];
    for (int r0 = 0; r0 < rows; r0 += 64) {
        const int block_rows = std::min(64, rows - r0);
        for (int cw = 0; cw < wpl_row; ++cw) {
            for (int j = 0; j < block_rows; ++j)
                blk[j] =
                    row_bits[static_cast<size_t>(r0 + j) * wpl_row +
                             cw];
            for (int j = block_rows; j < 64; ++j)
                blk[j] = 0;
            transpose64x64(blk);
            const int span = std::min(64, cols - cw * 64);
            for (int i = 0; i < span; ++i)
                bits[static_cast<size_t>(cw * 64 + i) * wpl_col +
                     (r0 >> 6)] = blk[i];
        }
    }
    return bits;
}

} // namespace

std::vector<uint64_t>
wordEncodeBits(const Matrix<float> &dense, Major major,
               int *words_per_line)
{
    const int line_len =
        major == Major::Col ? dense.rows() : dense.cols();
    const int wpl = ceilDiv(line_len, 64);
    if (words_per_line)
        *words_per_line = wpl;
    const int wpl_row = ceilDiv(dense.cols(), 64);
    if (major == Major::Row)
        return rowMajorBits(dense, wpl_row);
    return transposeBits(rowMajorBits(dense, wpl_row), dense.rows(),
                         dense.cols(), wpl_row, wpl);
}

BitmapMatrix
wordEncodeBitmap(const Matrix<float> &dense, Major major,
                 const QuantSpec &spec)
{
    const int rows = dense.rows(), cols = dense.cols();
    if (major == Major::Row)
        return BitmapMatrix::encodePlane(dense.data().data(), rows,
                                         cols, spec);

    // Pass 1, fused: row bitmap words plus the non-zeros packed in
    // row-major order (packRowsAndGatherValues) — the dense matrix
    // streams through exactly once.
    const int wpl_row = ceilDiv(cols, 64);
    const int wpl = ceilDiv(rows, 64);
    std::vector<uint64_t> row_bits(
        static_cast<size_t>(rows) * wpl_row, 0);
    std::vector<float> rm_values;
    rm_values.reserve(static_cast<size_t>(rows) * cols / 4);
    packRowsAndGatherValues(dense.data().data(), rows, cols, wpl_row,
                            row_bits.data(), rm_values, nullptr);
    std::vector<uint64_t> bits =
        transposeBits(row_bits, rows, cols, wpl_row, wpl);

    // Column-line values are the non-zeros in (col, ascending row)
    // order. Offsets fall out of the column words by POPC; the
    // values then land by counting-sort permutation of the packed
    // row-major array — pass 2 touches only the bitmap words and
    // the condensed arrays (a few percent of the dense bytes), never
    // the dense matrix again.
    std::vector<int> offsets(static_cast<size_t>(cols) + 1, 0);
    for (int c = 0; c < cols; ++c) {
        const uint64_t *words =
            bits.data() + static_cast<size_t>(c) * wpl;
        int cnt = 0;
        for (int w = 0; w < wpl; ++w)
            cnt += popcount64(words[w]);
        offsets[static_cast<size_t>(c) + 1] =
            offsets[static_cast<size_t>(c)] + cnt;
    }
    const int nnz = offsets[static_cast<size_t>(cols)];
    std::vector<float> values(static_cast<size_t>(nnz));
    std::vector<float> fp16(static_cast<size_t>(nnz));
    std::vector<int> cursor(offsets.begin(), offsets.end() - 1);
    size_t src = 0;
    for (int r = 0; r < rows; ++r) {
        const uint64_t *words =
            row_bits.data() + static_cast<size_t>(r) * wpl_row;
        for (int w = 0; w < wpl_row; ++w) {
            uint64_t word = words[w];
            const int base = w << 6;
            while (word) {
                const int c = base + std::countr_zero(word);
                word &= word - 1;
                values[static_cast<size_t>(
                    cursor[static_cast<size_t>(c)]++)] =
                    rm_values[src++];
            }
        }
    }
    // Quantize in one contiguous pass (independent iterations
    // pipeline; the permute loop stays store-bound).
    for (int i = 0; i < nnz; ++i)
        fp16[static_cast<size_t>(i)] =
            spec.apply(values[static_cast<size_t>(i)]);
    return BitmapMatrix::fromPacked(rows, cols, Major::Col,
                                    std::move(bits),
                                    std::move(values), std::move(fp16),
                                    std::move(offsets));
}

namespace {

/**
 * Row-major two-level encode with the production 32-wide tile,
 * built directly from the dense rows: each tile-row group packs its
 * row words (64 compares per word), splits every word into its two
 * 32-bit tile chunks, and gathers each chunk's values straight from
 * the still-cache-resident dense row into the owning tile's arrays.
 * No full-matrix bitmap intermediate, no second value copy — the
 * dense matrix streams through twice (sizing + fill) while the
 * group's rows stay hot.
 */
TwoLevelBitmapMatrix
wordEncodeTwoLevelRow32(const Matrix<float> &dense, int tile_rows,
                        int num_workers, const QuantSpec &spec)
{
    constexpr int kTileCols = 32;
    const int rows = dense.rows(), cols = dense.cols();
    const int n_tile_rows = ceilDiv(rows, tile_rows);
    const int n_tile_cols = ceilDiv(cols, kTileCols);
    const int wpl_row = ceilDiv(cols, 64);
    const float *data = dense.data().data();

    std::vector<BitmapMatrix> tiles(static_cast<size_t>(n_tile_rows) *
                                    n_tile_cols);

    auto run_group = [&](int64_t gl) {
        const int g = static_cast<int>(gl);
        const int r0 = g * tile_rows;
        const int r1 = std::min(rows, r0 + tile_rows);
        const int g_rows = r1 - r0;

        // Sizing pass: build the group's row words once and
        // accumulate each tile column's nnz from the word halves.
        std::vector<uint64_t> words(
            static_cast<size_t>(g_rows) * wpl_row);
        std::vector<int> tile_nnz(
            static_cast<size_t>(n_tile_cols), 0);
        for (int r = r0; r < r1; ++r) {
            const float *row = data + static_cast<size_t>(r) * cols;
            uint64_t *rw = words.data() +
                           static_cast<size_t>(r - r0) * wpl_row;
            for (int c0 = 0; c0 < cols; c0 += 64) {
                const uint64_t word = packNonzeroBits(
                    row + c0, std::min(64, cols - c0));
                rw[c0 >> 6] = word;
                const int p = c0 >> 5;
                tile_nnz[static_cast<size_t>(p)] +=
                    popcount64(word & 0xffffffffu);
                if (p + 1 < n_tile_cols)
                    tile_nnz[static_cast<size_t>(p) + 1] +=
                        popcount64(word >> 32);
            }
        }

        std::vector<std::vector<uint64_t>> t_bits(
            static_cast<size_t>(n_tile_cols));
        std::vector<std::vector<int>> t_offsets(
            static_cast<size_t>(n_tile_cols));
        std::vector<std::vector<float>> t_values(
            static_cast<size_t>(n_tile_cols));
        std::vector<std::vector<float>> t_fp16(
            static_cast<size_t>(n_tile_cols));
        std::vector<int> vi(static_cast<size_t>(n_tile_cols), 0);
        for (int p = 0; p < n_tile_cols; ++p) {
            const size_t nnz = static_cast<size_t>(
                tile_nnz[static_cast<size_t>(p)]);
            t_bits[static_cast<size_t>(p)].resize(
                static_cast<size_t>(g_rows));
            t_offsets[static_cast<size_t>(p)].assign(
                static_cast<size_t>(g_rows) + 1, 0);
            t_values[static_cast<size_t>(p)].resize(nnz);
            t_fp16[static_cast<size_t>(p)].resize(nnz);
        }

        // Fill pass: split each row word into its two tile chunks
        // and gather the chunk's values from the dense row by ctz.
        for (int r = r0; r < r1; ++r) {
            const float *row = data + static_cast<size_t>(r) * cols;
            const uint64_t *rw =
                words.data() +
                static_cast<size_t>(r - r0) * wpl_row;
            for (int p = 0; p < n_tile_cols; ++p) {
                const uint64_t word =
                    rw[static_cast<size_t>(p) >> 1];
                uint64_t chunk = (p & 1) ? word >> 32
                                         : word & 0xffffffffu;
                t_bits[static_cast<size_t>(p)]
                      [static_cast<size_t>(r - r0)] = chunk;
                float *values =
                    t_values[static_cast<size_t>(p)].data();
                int at = vi[static_cast<size_t>(p)];
                const int c_base = p * kTileCols;
                while (chunk) {
                    const int b = std::countr_zero(chunk);
                    chunk &= chunk - 1;
                    values[at++] = row[c_base + b];
                }
                vi[static_cast<size_t>(p)] = at;
                t_offsets[static_cast<size_t>(p)]
                         [static_cast<size_t>(r - r0) + 1] = at;
            }
        }

        // Quantized mirrors in contiguous per-tile passes, then
        // assemble.
        for (int p = 0; p < n_tile_cols; ++p) {
            auto &values = t_values[static_cast<size_t>(p)];
            auto &fp16 = t_fp16[static_cast<size_t>(p)];
            for (size_t i = 0; i < values.size(); ++i)
                fp16[i] = spec.apply(values[i]);
            const int t_cols =
                std::min(kTileCols, cols - p * kTileCols);
            tiles[static_cast<size_t>(g) * n_tile_cols + p] =
                BitmapMatrix::fromPacked(
                    g_rows, t_cols, Major::Row,
                    std::move(t_bits[static_cast<size_t>(p)]),
                    std::move(t_values[static_cast<size_t>(p)]),
                    std::move(t_fp16[static_cast<size_t>(p)]),
                    std::move(t_offsets[static_cast<size_t>(p)]));
        }
    };

    int max_workers = 1;
    ThreadPool *pool = resolveTilePool(num_workers, &max_workers);
    parallelFor(pool, n_tile_rows, max_workers, run_group);

    return TwoLevelBitmapMatrix::fromTiles(rows, cols, tile_rows,
                                           kTileCols, Major::Row,
                                           std::move(tiles), spec);
}

/**
 * Column-major two-level encode with the production 32-row tile,
 * built without the full-matrix bitmap intermediate: one fused pass
 * packs row words and the non-zeros in row-major order, the block
 * transpose yields the column words, and a counting-sort permute
 * then drops every value straight into its owning tile's arrays
 * (cursor per (column, tile-row)) — the second full-matrix value
 * copy of the generic path never happens. Tile rows are
 * independent: each owns its rows' permute span (per-row source
 * offsets from pass 1), its tiles and its cursors, so the group
 * loop partitions over workers with every write disjoint.
 */
TwoLevelBitmapMatrix
wordEncodeTwoLevelCol32(const Matrix<float> &dense, int tile_cols,
                        int num_workers, const QuantSpec &spec)
{
    constexpr int kTileRows = 32;
    const int rows = dense.rows(), cols = dense.cols();
    const int n_tile_rows = ceilDiv(rows, kTileRows);
    const int n_tile_cols = ceilDiv(cols, tile_cols);
    const int wpl_row = ceilDiv(cols, 64);
    const int wpl_col = ceilDiv(rows, 64);
    const float *data = dense.data().data();

    // Fused pass: row words + row-major packed values + per-row
    // source offsets (packRowsAndGatherValues; the dense matrix
    // streams through once).
    std::vector<uint64_t> row_bits(
        static_cast<size_t>(rows) * wpl_row, 0);
    std::vector<float> rm_values;
    rm_values.reserve(static_cast<size_t>(rows) * cols / 4);
    std::vector<int> row_start(static_cast<size_t>(rows) + 1, 0);
    packRowsAndGatherValues(data, rows, cols, wpl_row,
                            row_bits.data(), rm_values,
                            row_start.data());
    const std::vector<uint64_t> col_bits =
        transposeBits(row_bits, rows, cols, wpl_row, wpl_col);

    std::vector<BitmapMatrix> tiles(static_cast<size_t>(n_tile_rows) *
                                    n_tile_cols);

    auto run_group = [&](int64_t trl) {
        const int tr = static_cast<int>(trl);
        const int r0 = tr * kTileRows;
        const int r1 = std::min(rows, r0 + kTileRows);
        const int t_rows = r1 - r0;

        // Per-line counts from the column-word halves, accumulated
        // into per-tile offsets and the permute cursors.
        std::vector<std::vector<uint64_t>> t_bits(
            static_cast<size_t>(n_tile_cols));
        std::vector<std::vector<int>> t_offsets(
            static_cast<size_t>(n_tile_cols));
        std::vector<std::vector<float>> t_values(
            static_cast<size_t>(n_tile_cols));
        std::vector<std::vector<float>> t_fp16(
            static_cast<size_t>(n_tile_cols));
        std::vector<int> cursor(static_cast<size_t>(cols), 0);
        std::vector<float *> values_ptr(
            static_cast<size_t>(n_tile_cols));
        for (int tc = 0; tc < n_tile_cols; ++tc) {
            const int c0 = tc * tile_cols;
            const int c1 = std::min(cols, c0 + tile_cols);
            const int g_cols = c1 - c0;
            auto &bits = t_bits[static_cast<size_t>(tc)];
            auto &offsets = t_offsets[static_cast<size_t>(tc)];
            bits.resize(static_cast<size_t>(g_cols));
            offsets.assign(static_cast<size_t>(g_cols) + 1, 0);
            int nnz = 0;
            for (int c = c0; c < c1; ++c) {
                const uint64_t word =
                    col_bits[static_cast<size_t>(c) * wpl_col +
                             (static_cast<size_t>(tr) >> 1)];
                const uint64_t chunk = (tr & 1)
                                           ? word >> 32
                                           : word & 0xffffffffu;
                bits[static_cast<size_t>(c - c0)] = chunk;
                cursor[static_cast<size_t>(c)] = nnz;
                nnz += popcount64(chunk);
                offsets[static_cast<size_t>(c - c0) + 1] = nnz;
            }
            t_values[static_cast<size_t>(tc)].resize(
                static_cast<size_t>(nnz));
            t_fp16[static_cast<size_t>(tc)].resize(
                static_cast<size_t>(nnz));
            values_ptr[static_cast<size_t>(tc)] =
                t_values[static_cast<size_t>(tc)].data();
        }

        // Permute this tile row's span of the packed values: rows
        // ascending keeps each (column, tile-row) run in source
        // order, which is exactly the tile's line order.
        int src = row_start[static_cast<size_t>(r0)];
        for (int r = r0; r < r1; ++r) {
            const uint64_t *words =
                row_bits.data() + static_cast<size_t>(r) * wpl_row;
            for (int w = 0; w < wpl_row; ++w) {
                uint64_t word = words[w];
                const int base = w << 6;
                while (word) {
                    const int c = base + std::countr_zero(word);
                    word &= word - 1;
                    values_ptr[static_cast<size_t>(c / tile_cols)]
                              [static_cast<size_t>(
                                  cursor[static_cast<size_t>(c)]++)] =
                                  rm_values[static_cast<size_t>(
                                      src++)];
                }
            }
        }
        DSTC_ASSERT(src == row_start[static_cast<size_t>(r1)]);

        for (int tc = 0; tc < n_tile_cols; ++tc) {
            auto &values = t_values[static_cast<size_t>(tc)];
            auto &fp16 = t_fp16[static_cast<size_t>(tc)];
            for (size_t i = 0; i < values.size(); ++i)
                fp16[i] = spec.apply(values[i]);
            const int g_cols =
                std::min(tile_cols, cols - tc * tile_cols);
            tiles[static_cast<size_t>(tr) * n_tile_cols + tc] =
                BitmapMatrix::fromPacked(
                    t_rows, g_cols, Major::Col,
                    std::move(t_bits[static_cast<size_t>(tc)]),
                    std::move(t_values[static_cast<size_t>(tc)]),
                    std::move(t_fp16[static_cast<size_t>(tc)]),
                    std::move(t_offsets[static_cast<size_t>(tc)]));
        }
    };

    int max_workers = 1;
    ThreadPool *pool = resolveTilePool(num_workers, &max_workers);
    parallelFor(pool, n_tile_rows, max_workers, run_group);

    return TwoLevelBitmapMatrix::fromTiles(rows, cols, kTileRows,
                                           tile_cols, Major::Col,
                                           std::move(tiles), spec);
}

} // namespace

TwoLevelBitmapMatrix
wordEncodeTwoLevel(const Matrix<float> &dense, int tile_rows,
                   int tile_cols, Major major, int num_workers,
                   const QuantSpec &spec)
{
    DSTC_ASSERT(tile_rows > 0 && tile_cols > 0);
    const int rows = dense.rows(), cols = dense.cols();
    const int n_tile_rows = ceilDiv(rows, tile_rows);
    const int n_tile_cols = ceilDiv(cols, tile_cols);

    if (major == Major::Row && tile_cols == 32)
        return wordEncodeTwoLevelRow32(dense, tile_rows, num_workers,
                                       spec);
    if (major == Major::Col && tile_rows == 32)
        return wordEncodeTwoLevelCol32(dense, tile_cols, num_workers,
                                       spec);

    const BitmapMatrix full = wordEncodeBitmap(dense, major, spec);

    // The line axis of the tiling: tile columns for Major::Col
    // (lines are matrix columns), tile rows for Major::Row. Each
    // line group fills a disjoint row/column of tiles, so groups
    // partition over workers with every tile written exactly once.
    const bool col = major == Major::Col;
    const int line_groups = col ? n_tile_cols : n_tile_rows;
    const int lines_per_group = col ? tile_cols : tile_rows;
    const int perp_tiles = col ? n_tile_rows : n_tile_cols;
    const int perp_tile = col ? tile_rows : tile_cols;
    const int line_len = full.lineLength();
    const int num_lines = full.numLines();

    std::vector<BitmapMatrix> tiles(static_cast<size_t>(n_tile_rows) *
                                    n_tile_cols);

    // Two passes per group, mirroring LoweredFeatureMap::toTwoLevel:
    // the word-extract pass records every (line, perp-tile) chunk and
    // its popcount, then the fill pass copies each tile's parts into
    // exactly-sized arrays — the condensed values of a chunk are the
    // next `cnt` entries of the line's packed arrays (the
    // prefix-popcount address-offset trick, per tile boundary).
    auto run_group = [&](int64_t gl) {
        const int g = static_cast<int>(gl);
        const int l0 = g * lines_per_group;
        const int l1 = std::min(num_lines, l0 + lines_per_group);
        const int g_lines = l1 - l0;
        const int wpl_t = ceilDiv(perp_tile, 64);

        std::vector<uint64_t> chunks(static_cast<size_t>(g_lines) *
                                         perp_tiles * wpl_t,
                                     0);
        std::vector<int> counts(
            static_cast<size_t>(g_lines) * perp_tiles, 0);
        std::vector<int> src_offsets(
            static_cast<size_t>(g_lines) * perp_tiles, 0);
        std::vector<int64_t> tile_nnz(
            static_cast<size_t>(perp_tiles), 0);
        for (int l = l0; l < l1; ++l) {
            const auto words = full.lineBits(l);
            auto word_at = [&](size_t w) -> uint64_t {
                return w < words.size() ? words[w] : 0;
            };
            const size_t base =
                static_cast<size_t>(l - l0) * perp_tiles;
            int prefix = 0;
            for (int p = 0; p < perp_tiles; ++p) {
                const int e0 = p * perp_tile;
                const int t_len = std::min(perp_tile, line_len - e0);
                int cnt = 0;
                for (int t = 0; t < t_len; t += 64) {
                    const int src = e0 + t;
                    const int off = src & 63;
                    uint64_t chunk = word_at(src >> 6) >> off;
                    if (off != 0)
                        chunk |= word_at((src >> 6) + 1)
                                 << (64 - off);
                    chunk &= lowMask64(std::min(64, t_len - t));
                    chunks[(base + p) * wpl_t + (t >> 6)] = chunk;
                    cnt += popcount64(chunk);
                }
                counts[base + p] = cnt;
                src_offsets[base + p] = prefix;
                tile_nnz[static_cast<size_t>(p)] += cnt;
                prefix += cnt;
            }
            DSTC_ASSERT(prefix == full.lineNnz(l));
        }

        // Fill pass, line-outer: one span fetch per line serves all
        // of the line's tile chunks (fetching per (line, tile) slot
        // would cost more than the handful-of-values copies it
        // feeds). Each tile's parts accumulate behind a cursor.
        std::vector<std::vector<uint64_t>> t_bits(
            static_cast<size_t>(perp_tiles));
        std::vector<std::vector<int>> t_offsets(
            static_cast<size_t>(perp_tiles));
        std::vector<std::vector<float>> t_values(
            static_cast<size_t>(perp_tiles));
        std::vector<std::vector<float>> t_fp16(
            static_cast<size_t>(perp_tiles));
        std::vector<size_t> vi(static_cast<size_t>(perp_tiles), 0);
        std::vector<uint64_t *> bits_ptr(
            static_cast<size_t>(perp_tiles));
        std::vector<float *> values_ptr(
            static_cast<size_t>(perp_tiles));
        std::vector<float *> fp16_ptr(
            static_cast<size_t>(perp_tiles));
        std::vector<int *> offsets_ptr(
            static_cast<size_t>(perp_tiles));
        std::vector<int> t_wpls(static_cast<size_t>(perp_tiles));
        for (int p = 0; p < perp_tiles; ++p) {
            const int t_len =
                std::min(perp_tile, line_len - p * perp_tile);
            const size_t nnz = static_cast<size_t>(
                tile_nnz[static_cast<size_t>(p)]);
            t_bits[static_cast<size_t>(p)].resize(
                static_cast<size_t>(g_lines) * ceilDiv(t_len, 64));
            t_offsets[static_cast<size_t>(p)].assign(
                static_cast<size_t>(g_lines) + 1, 0);
            t_values[static_cast<size_t>(p)].resize(nnz);
            t_fp16[static_cast<size_t>(p)].resize(nnz);
            bits_ptr[static_cast<size_t>(p)] =
                t_bits[static_cast<size_t>(p)].data();
            values_ptr[static_cast<size_t>(p)] =
                t_values[static_cast<size_t>(p)].data();
            fp16_ptr[static_cast<size_t>(p)] =
                t_fp16[static_cast<size_t>(p)].data();
            offsets_ptr[static_cast<size_t>(p)] =
                t_offsets[static_cast<size_t>(p)].data();
            t_wpls[static_cast<size_t>(p)] = ceilDiv(t_len, 64);
        }
        for (int l = l0; l < l1; ++l) {
            const auto vals = full.lineValues(l);
            const auto vals16 = full.lineValuesFp16(l);
            const size_t base =
                static_cast<size_t>(l - l0) * perp_tiles;
            for (int p = 0; p < perp_tiles; ++p) {
                const int t_wpl = t_wpls[static_cast<size_t>(p)];
                const size_t slot = base + p;
                uint64_t *bits =
                    bits_ptr[static_cast<size_t>(p)] +
                    static_cast<size_t>(l - l0) * t_wpl;
                for (int w = 0; w < t_wpl; ++w)
                    bits[w] = chunks[slot * wpl_t + w];
                const int cnt = counts[slot];
                const int src = src_offsets[slot];
                float *values = values_ptr[static_cast<size_t>(p)];
                float *fp16 = fp16_ptr[static_cast<size_t>(p)];
                size_t &at = vi[static_cast<size_t>(p)];
                for (int i = 0; i < cnt; ++i) {
                    values[at + i] = vals[src + i];
                    fp16[at + i] = vals16[src + i];
                }
                at += static_cast<size_t>(cnt);
                offsets_ptr[static_cast<size_t>(p)]
                           [static_cast<size_t>(l - l0) + 1] =
                               static_cast<int>(at);
            }
        }
        for (int p = 0; p < perp_tiles; ++p) {
            const int t_len =
                std::min(perp_tile, line_len - p * perp_tile);
            const int tile_r = col ? p : g;
            const int tile_c = col ? g : p;
            const int t_rows = col ? t_len : g_lines;
            const int t_cols = col ? g_lines : t_len;
            tiles[static_cast<size_t>(tile_r) * n_tile_cols +
                  tile_c] =
                BitmapMatrix::fromPacked(
                    t_rows, t_cols, major,
                    std::move(t_bits[static_cast<size_t>(p)]),
                    std::move(t_values[static_cast<size_t>(p)]),
                    std::move(t_fp16[static_cast<size_t>(p)]),
                    std::move(t_offsets[static_cast<size_t>(p)]));
        }
    };

    int max_workers = 1;
    ThreadPool *pool = resolveTilePool(num_workers, &max_workers);
    parallelFor(pool, line_groups, max_workers, run_group);

    return TwoLevelBitmapMatrix::fromTiles(rows, cols, tile_rows,
                                           tile_cols, major,
                                           std::move(tiles), spec);
}

NarrowTileMatrix
wordEncodeNarrowTile(const Matrix<float> &dense, int num_workers,
                     const QuantSpec &spec)
{
    constexpr int kStrip = NarrowTileMatrix::kStripRows;
    const int rows = dense.rows(), cols = dense.cols();
    const int n_strips = ceilDiv(rows, kStrip);
    const int wps = ceilDiv(cols, 64);
    const float *data = dense.data().data();

    // Sizing pass: per strip, pack the 8 row words per 64-column
    // chunk, OR them into the level-1 word, and count vectors (POPC
    // of the OR) and non-zeros (POPC of each row word).
    std::vector<uint64_t> vector_bits(
        static_cast<size_t>(n_strips) * wps, 0);
    std::vector<int64_t> strip_vectors(
        static_cast<size_t>(n_strips), 0);
    std::vector<int64_t> strip_nnz(static_cast<size_t>(n_strips), 0);

    auto size_strip = [&](int64_t sl) {
        const int s = static_cast<int>(sl);
        const int r0 = s * kStrip;
        const int span = std::min(kStrip, rows - r0);
        uint64_t *level1 =
            vector_bits.data() + static_cast<size_t>(s) * wps;
        int64_t nv = 0, nnz = 0;
        for (int c0 = 0; c0 < cols; c0 += 64) {
            const int chunk = std::min(64, cols - c0);
            uint64_t combined = 0;
            for (int j = 0; j < span; ++j) {
                const uint64_t w = packNonzeroBits(
                    data + static_cast<size_t>(r0 + j) * cols + c0,
                    chunk);
                combined |= w;
                nnz += popcount64(w);
            }
            level1[c0 >> 6] = combined;
            nv += popcount64(combined);
        }
        strip_vectors[static_cast<size_t>(s)] = nv;
        strip_nnz[static_cast<size_t>(s)] = nnz;
    };

    int max_workers = 1;
    ThreadPool *pool = resolveTilePool(num_workers, &max_workers);
    parallelFor(pool, n_strips, max_workers, size_strip);

    // Serial prefix scans give every strip a disjoint slice of the
    // vector and value arrays.
    std::vector<int64_t> strip_offsets(
        static_cast<size_t>(n_strips) + 1, 0);
    std::vector<int64_t> value_base(static_cast<size_t>(n_strips) + 1,
                                    0);
    for (int s = 0; s < n_strips; ++s) {
        strip_offsets[static_cast<size_t>(s) + 1] =
            strip_offsets[static_cast<size_t>(s)] +
            strip_vectors[static_cast<size_t>(s)];
        value_base[static_cast<size_t>(s) + 1] =
            value_base[static_cast<size_t>(s)] +
            strip_nnz[static_cast<size_t>(s)];
    }
    const int64_t total_vectors =
        strip_offsets[static_cast<size_t>(n_strips)];
    const int64_t total_nnz = value_base[static_cast<size_t>(n_strips)];

    std::vector<uint8_t> masks(static_cast<size_t>(total_vectors));
    std::vector<int64_t> value_offsets(
        static_cast<size_t>(total_vectors) + 1, 0);
    std::vector<float> values(static_cast<size_t>(total_nnz));
    std::vector<float> values_quant(static_cast<size_t>(total_nnz));

    // Fill pass: re-pack each strip's row words (still one stream
    // over the dense rows, now cache-warm per strip), walk the
    // level-1 word by ctz in ascending column order, and gather each
    // vector's mask and values ascending row.
    auto fill_strip = [&](int64_t sl) {
        const int s = static_cast<int>(sl);
        const int r0 = s * kStrip;
        const int span = std::min(kStrip, rows - r0);
        int64_t v = strip_offsets[static_cast<size_t>(s)];
        int64_t at = value_base[static_cast<size_t>(s)];
        uint64_t row_words[kStrip];
        for (int c0 = 0; c0 < cols; c0 += 64) {
            const int chunk = std::min(64, cols - c0);
            uint64_t combined = 0;
            for (int j = 0; j < span; ++j) {
                row_words[j] = packNonzeroBits(
                    data + static_cast<size_t>(r0 + j) * cols + c0,
                    chunk);
                combined |= row_words[j];
            }
            while (combined) {
                const int b = std::countr_zero(combined);
                combined &= combined - 1;
                const int c = c0 + b;
                uint8_t mask = 0;
                for (int j = 0; j < span; ++j)
                    if ((row_words[j] >> b) & 1) {
                        mask |= static_cast<uint8_t>(1u << j);
                        values[static_cast<size_t>(at++)] =
                            data[static_cast<size_t>(r0 + j) * cols +
                                 c];
                    }
                masks[static_cast<size_t>(v)] = mask;
                value_offsets[static_cast<size_t>(v) + 1] = at;
                ++v;
            }
        }
        // Quantize this strip's contiguous value slice.
        for (int64_t i = value_base[static_cast<size_t>(s)]; i < at;
             ++i)
            values_quant[static_cast<size_t>(i)] =
                spec.apply(values[static_cast<size_t>(i)]);
    };
    parallelFor(pool, n_strips, max_workers, fill_strip);

    return NarrowTileMatrix::fromParts(
        rows, cols, spec, std::move(vector_bits),
        std::move(strip_offsets), std::move(masks),
        std::move(value_offsets), std::move(values),
        std::move(values_quant));
}

int64_t
wordNnz(const float *data, size_t n)
{
    int64_t count = 0;
    size_t i = 0;
    for (; i + 64 <= n; i += 64)
        count += popcount64(packNonzeroBits(data + i, 64));
    if (i < n)
        count += popcount64(
            packNonzeroBits(data + i, static_cast<int>(n - i)));
    return count;
}

double
wordSparsity(const Matrix<float> &m)
{
    const size_t total = m.size();
    if (total == 0)
        return 0.0;
    return 1.0 -
           static_cast<double>(wordNnz(m.data().data(), total)) /
               static_cast<double>(total);
}

} // namespace dstc
