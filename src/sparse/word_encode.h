/**
 * @file
 * Word-parallel dense-operand encoders: the online encode stage the
 * paper assumes is cheap enough to run on both GEMM sides (Sec. VI).
 *
 * Every function here is bitwise identical to its element-wise
 * counterpart (BitmapMatrix::encode / TwoLevelBitmapMatrix::encode /
 * SparsityProfile::fromMatrix*), which stay as the test references.
 * The difference is purely mechanical: bits are built 64 elements
 * per word with branchless compares, column-major bitmaps come out
 * of 64x64 block transposes instead of per-element probes, values
 * are packed by ctz walks over the words (FP16-rounded once, at
 * encode time), and warp tiles are split off the full-matrix bitmap
 * by pure word extraction + condensed-value slicing — the same
 * machinery the implicit im2col uses (encodePlane / fromPacked).
 */
#ifndef DSTC_SPARSE_WORD_ENCODE_H
#define DSTC_SPARSE_WORD_ENCODE_H

#include <cstdint>
#include <vector>

#include "sparse/bitmap.h"
#include "sparse/narrow_tile.h"
#include "sparse/two_level.h"
#include "tensor/matrix.h"

namespace dstc {

/**
 * Word-parallel BitmapMatrix::encode: bitmap words built 64
 * elements at a time, values packed via ctz walks. Bitwise identical
 * to encode(dense, major, spec) in bits, values, the quantized
 * mirror and the line offsets.
 */
BitmapMatrix wordEncodeBitmap(const Matrix<float> &dense, Major major,
                              const QuantSpec &spec = {});

/**
 * The bitmap words of @p dense alone (no values), in the line-major
 * layout of BitmapMatrix: wordsPerLine() words per packing line,
 * LSB-first. The cheap front half of wordEncodeBitmap, for callers
 * that only need popcounts (profile extraction).
 */
std::vector<uint64_t> wordEncodeBits(const Matrix<float> &dense,
                                     Major major,
                                     int *words_per_line);

/**
 * Word-parallel TwoLevelBitmapMatrix::encode: the full matrix is
 * bitmap-encoded once (64 elements/word), then split into
 * tile_rows x tile_cols warp tiles by word extraction on the line
 * bitmaps and contiguous slices of the packed value arrays (the
 * prefix-popcount address-offset trick, per tile boundary). No dense
 * staging, no per-element probes, no re-rounding — the FP16 mirror
 * is sliced alongside the FP32 values.
 *
 * @param num_workers partitions the independent tile line groups
 *        over the shared pool (SpGemmOptions::num_workers contract:
 *        0 = all hardware threads, 1 = serial in the caller). Tiles
 *        are disjoint, so the result is bitwise identical to the
 *        element-wise encode for every worker count.
 * @param spec fills the quantized value lane (FP16 default). The
 *        spec applies per element, so worker partitioning cannot
 *        change it; integer specs carry the matrix-global scale
 *        computed by the caller (QuantSpec::forValues).
 */
TwoLevelBitmapMatrix wordEncodeTwoLevel(const Matrix<float> &dense,
                                        int tile_rows, int tile_cols,
                                        Major major,
                                        int num_workers = 1,
                                        const QuantSpec &spec = {});

/**
 * Word-parallel NarrowTileMatrix::encode: each 8-row strip packs its
 * row words (64 compares per word), ORs them into the strip's
 * level-1 vector-bitmap words, and gathers vector masks and values
 * by ctz walks while the strip's rows are cache-resident — a sizing
 * pass then a fill pass, like the two-level row builder. Strips are
 * disjoint, so the result is bitwise identical to the scalar
 * NarrowTileMatrix::encode for every worker count (same
 * num_workers contract as wordEncodeTwoLevel).
 */
NarrowTileMatrix wordEncodeNarrowTile(const Matrix<float> &dense,
                                      int num_workers = 1,
                                      const QuantSpec &spec = {});

/**
 * Non-zero count of @p n floats by branchless 64-bit mask build +
 * POPC (no per-element branch to mispredict). Identical to counting
 * `v != 0.0f` element-wise.
 */
int64_t wordNnz(const float *data, size_t n);

/** Matrix::sparsity() via wordNnz — the word-parallel density probe
 *  the plan paths use on concrete operands. */
double wordSparsity(const Matrix<float> &m);

} // namespace dstc

#endif // DSTC_SPARSE_WORD_ENCODE_H
