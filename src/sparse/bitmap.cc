#include "sparse/bitmap.h"

#include <algorithm>
#include <bit>

#include "common/bitutil.h"
#include "common/fp16.h"

namespace dstc {

int
BitmapMatrix::lineOf(int r, int c) const
{
    return major_ == Major::Col ? c : r;
}

int
BitmapMatrix::posOf(int r, int c) const
{
    return major_ == Major::Col ? r : c;
}

BitmapMatrix
BitmapMatrix::encode(const Matrix<float> &dense, Major major,
                     const QuantSpec &spec)
{
    BitmapMatrix bm;
    bm.rows_ = dense.rows();
    bm.cols_ = dense.cols();
    bm.major_ = major;
    const int lines = bm.numLines();
    const int line_len = bm.lineLength();
    bm.words_per_line_ = ceilDiv(line_len, 64);
    bm.bits_.assign(static_cast<size_t>(lines) * bm.words_per_line_, 0);
    bm.line_offsets_.assign(lines + 1, 0);

    for (int line = 0; line < lines; ++line) {
        for (int pos = 0; pos < line_len; ++pos) {
            int r = major == Major::Col ? pos : line;
            int c = major == Major::Col ? line : pos;
            float v = dense.at(r, c);
            if (v != 0.0f) {
                size_t bitpos =
                    static_cast<size_t>(line) * bm.words_per_line_ * 64 +
                    pos;
                setBit(bm.bits_, bitpos);
                bm.values_.push_back(v);
                bm.values_fp16_.push_back(spec.apply(v));
            }
        }
        bm.line_offsets_[line + 1] =
            static_cast<int>(bm.values_.size());
    }
    return bm;
}

BitmapMatrix
BitmapMatrix::encodePlane(const float *data, int rows, int cols,
                          const QuantSpec &spec)
{
    BitmapMatrix bm;
    bm.rows_ = rows;
    bm.cols_ = cols;
    bm.major_ = Major::Row;
    bm.words_per_line_ = ceilDiv(cols, 64);
    bm.bits_.assign(static_cast<size_t>(rows) * bm.words_per_line_, 0);
    bm.line_offsets_.assign(rows + 1, 0);
    // Amortize the value growth (a quarter-dense guess; feature maps
    // past ReLU are sparser than that).
    bm.values_.reserve(static_cast<size_t>(rows) * cols / 4);

    packRowsAndGatherValues(data, rows, cols, bm.words_per_line_,
                            bm.bits_.data(), bm.values_,
                            bm.line_offsets_.data());
    // The quantized mirror rounds in its own contiguous pass, where
    // the independent iterations pipeline instead of serializing
    // behind each ctz step.
    bm.values_fp16_.resize(bm.values_.size());
    for (size_t i = 0; i < bm.values_.size(); ++i)
        bm.values_fp16_[i] = spec.apply(bm.values_[i]);
    return bm;
}

void
packRowsAndGatherValues(const float *data, int rows, int cols,
                        int words_per_line, uint64_t *bits,
                        std::vector<float> &values, int *row_offsets)
{
    // Word build (packNonzeroBits byte-packs the compares so they
    // vectorize) fused with the ctz value walk per row: the row is
    // still cache-resident when its set bits are gathered, so the
    // block streams through exactly once.
    for (int r = 0; r < rows; ++r) {
        const float *row = data + static_cast<size_t>(r) * cols;
        uint64_t *words =
            bits + static_cast<size_t>(r) * words_per_line;
        for (int c0 = 0; c0 < cols; c0 += 64) {
            uint64_t word =
                packNonzeroBits(row + c0, std::min(64, cols - c0));
            words[c0 >> 6] = word;
            while (word) {
                const int b = std::countr_zero(word);
                word &= word - 1;
                values.push_back(row[c0 + b]);
            }
        }
        if (row_offsets)
            row_offsets[r + 1] = static_cast<int>(values.size());
    }
}

BitmapMatrix
BitmapMatrix::fromPacked(int rows, int cols, Major major,
                         std::vector<uint64_t> bits,
                         std::vector<float> values,
                         std::vector<float> values_fp16,
                         std::vector<int> line_offsets)
{
    BitmapMatrix bm;
    bm.rows_ = rows;
    bm.cols_ = cols;
    bm.major_ = major;
    const int lines = bm.numLines();
    bm.words_per_line_ = ceilDiv(bm.lineLength(), 64);
    DSTC_ASSERT(bits.size() ==
                static_cast<size_t>(lines) * bm.words_per_line_);
    DSTC_ASSERT(line_offsets.size() ==
                    static_cast<size_t>(lines) + 1 &&
                line_offsets.front() == 0);
    DSTC_ASSERT(values.size() ==
                    static_cast<size_t>(line_offsets.back()) &&
                values_fp16.size() == values.size());
    bm.bits_ = std::move(bits);
    bm.values_ = std::move(values);
    bm.values_fp16_ = std::move(values_fp16);
    bm.line_offsets_ = std::move(line_offsets);
    return bm;
}

Matrix<float>
BitmapMatrix::decode() const
{
    Matrix<float> dense(rows_, cols_);
    const int lines = numLines();
    const int line_len = lineLength();
    for (int line = 0; line < lines; ++line) {
        int vi = line_offsets_[line];
        for (int pos = 0; pos < line_len; ++pos) {
            size_t bitpos =
                static_cast<size_t>(line) * words_per_line_ * 64 + pos;
            if (getBit(bits_, bitpos)) {
                int r = major_ == Major::Col ? pos : line;
                int c = major_ == Major::Col ? line : pos;
                dense.at(r, c) = values_[vi++];
            }
        }
    }
    return dense;
}

bool
BitmapMatrix::bit(int r, int c) const
{
    DSTC_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    size_t bitpos =
        static_cast<size_t>(lineOf(r, c)) * words_per_line_ * 64 +
        posOf(r, c);
    return getBit(bits_, bitpos);
}

std::vector<float>
BitmapMatrix::lineValuesRange(int line, int lo, int hi) const
{
    // Address offset = POPC of the prefix [0, lo); length = POPC of
    // [lo, hi). This mirrors S3/S4 of the sparse im2col flow.
    int offset = linePopcount(line, 0, lo);
    int count = linePopcount(line, lo, hi);
    auto all = lineValues(line);
    return {all.begin() + offset, all.begin() + offset + count};
}

size_t
BitmapMatrix::encodedBytes(DataType dtype) const
{
    // Bitmap bits (1 per element) + values at the datatype's lane
    // width + per-line offsets (one 32-bit word per line, as the
    // row-offset field in Fig. 11b).
    size_t bitmap_bytes = ceilDiv(
        static_cast<size_t>(rows_) * cols_, size_t{8});
    return bitmap_bytes + dataTypePackedBytes(dtype, values_.size()) +
           static_cast<size_t>(numLines()) * 4;
}

std::vector<int>
BitmapMatrix::linePositions(int line, int lo, int hi) const
{
    DSTC_ASSERT(line >= 0 && line < numLines());
    DSTC_ASSERT(lo >= 0 && hi <= lineLength() && lo <= hi);
    std::vector<int> out;
    size_t base = static_cast<size_t>(line) * words_per_line_ * 64;
    forEachSetBit(bits_, base + lo, base + hi, [&](size_t bitpos) {
        out.push_back(static_cast<int>(bitpos - base));
    });
    return out;
}

int
BitmapMatrix::linePositionsInto(int line, int lo, int hi, int *out) const
{
    DSTC_ASSERT(line >= 0 && line < numLines());
    DSTC_ASSERT(lo >= 0 && hi <= lineLength() && lo <= hi);
    if (hi <= lo)
        return 0;
    const uint64_t *words =
        bits_.data() + static_cast<size_t>(line) * words_per_line_;
    const int w_lo = lo >> 6;
    const int w_hi = (hi - 1) >> 6;
    int count = 0;
    for (int w = w_lo; w <= w_hi; ++w) {
        uint64_t word = words[w];
        if (w == w_lo)
            word &= ~lowMask64(lo & 63);
        const int hi_in_word = hi - (w << 6);
        if (hi_in_word < 64)
            word &= lowMask64(hi_in_word);
        const int base = w << 6;
        while (word) {
            out[count++] = base + std::countr_zero(word);
            word &= word - 1;
        }
    }
    return count;
}

int
BitmapMatrix::lineValuesRangeInto(int line, int lo, int hi,
                                  float *out) const
{
    const int offset = linePopcount(line, 0, lo);
    const int count = linePopcount(line, lo, hi);
    const float *src = values_.data() + line_offsets_[line] + offset;
    std::copy(src, src + count, out);
    return count;
}

int
andPopcount(std::span<const uint64_t> a, std::span<const uint64_t> b)
{
    const size_t words = std::min(a.size(), b.size());
    int count = 0;
    for (size_t w = 0; w < words; ++w)
        count += popcount64(a[w] & b[w]);
    return count;
}

int
andPositionsInto(std::span<const uint64_t> a,
                 std::span<const uint64_t> b, int *out)
{
    const size_t words = std::min(a.size(), b.size());
    int count = 0;
    for (size_t w = 0; w < words; ++w) {
        uint64_t word = a[w] & b[w];
        const int base = static_cast<int>(w) << 6;
        while (word) {
            out[count++] = base + std::countr_zero(word);
            word &= word - 1;
        }
    }
    return count;
}

float
BitmapMatrix::valueAt(int r, int c) const
{
    if (!bit(r, c))
        return 0.0f;
    int line = lineOf(r, c);
    int pos = posOf(r, c);
    int offset = linePopcount(line, 0, pos);
    return lineValues(line)[offset];
}

} // namespace dstc
