/**
 * @file
 * Compressed Sparse Row encoding — the comparison format used by the
 * cuSparse-like baseline and the CSR im2col of Table III.
 */
#ifndef DSTC_SPARSE_CSR_H
#define DSTC_SPARSE_CSR_H

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace dstc {

/** CSR sparse matrix (row_ptr / col_idx / values). */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /** Encode a dense matrix; exact zeros are dropped. */
    static CsrMatrix encode(const Matrix<float> &dense);

    /** Reconstruct the dense matrix. */
    Matrix<float> decode() const;

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int nnz() const { return static_cast<int>(values_.size()); }

    int
    rowNnz(int r) const
    {
        return row_ptr_[r + 1] - row_ptr_[r];
    }

    /**
     * Value at (r, c) found by scanning the row's column indices —
     * the data-dependent lookup that makes CSR im2col expensive.
     * @p probes, when provided, is incremented by the number of
     * column-index memory reads performed.
     */
    float valueAt(int r, int c, int64_t *probes = nullptr) const;

    const std::vector<int> &rowPtr() const { return row_ptr_; }
    const std::vector<int> &colIdx() const { return col_idx_; }
    const std::vector<float> &values() const { return values_; }

    /** Bytes occupied (int32 indices/pointers + FP16 values). */
    size_t encodedBytes() const;

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<int> row_ptr_;
    std::vector<int> col_idx_;
    std::vector<float> values_;
};

} // namespace dstc

#endif // DSTC_SPARSE_CSR_H
