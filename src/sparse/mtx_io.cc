#include "sparse/mtx_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace dstc {

namespace {

enum class MtxField { Real, Integer, Pattern };
enum class MtxSymmetry { General, Symmetric, SkewSymmetric };

std::string
lowered(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/** Compose the "name:line: message" diagnostic. */
bool
fail(std::string *error, const std::string &name, int line,
     const std::string &message)
{
    if (error) {
        std::ostringstream os;
        os << name << ":" << line << ": " << message;
        *error = os.str();
    }
    return false;
}

} // namespace

bool
loadMatrixMarket(std::istream &in, const std::string &name,
                 Matrix<float> *out, std::string *error)
{
    std::string line;
    int lineno = 0;

    // -- banner ------------------------------------------------------
    if (!std::getline(in, line))
        return fail(error, name, 1, "empty file (no MatrixMarket banner)");
    ++lineno;
    std::istringstream banner(line);
    std::string magic, object, format, field_tok, symmetry_tok;
    banner >> magic >> object >> format >> field_tok >> symmetry_tok;
    if (magic != "%%MatrixMarket")
        return fail(error, name, lineno,
                    "not a MatrixMarket file (banner begins '" +
                        magic + "', expected '%%MatrixMarket')");
    if (lowered(object) != "matrix")
        return fail(error, name, lineno,
                    "unsupported object '" + object +
                        "' (only 'matrix')");
    if (lowered(format) != "coordinate")
        return fail(error, name, lineno,
                    "unsupported format '" + format +
                        "' (only 'coordinate'; array/dense input "
                        "defeats the sparse corpus)");
    MtxField field;
    const std::string f = lowered(field_tok);
    if (f == "real")
        field = MtxField::Real;
    else if (f == "integer")
        field = MtxField::Integer;
    else if (f == "pattern")
        field = MtxField::Pattern;
    else
        return fail(error, name, lineno,
                    "unsupported field '" + field_tok +
                        "' (only real/integer/pattern)");
    MtxSymmetry symmetry;
    const std::string s = lowered(symmetry_tok);
    if (s == "general")
        symmetry = MtxSymmetry::General;
    else if (s == "symmetric")
        symmetry = MtxSymmetry::Symmetric;
    else if (s == "skew-symmetric")
        symmetry = MtxSymmetry::SkewSymmetric;
    else
        return fail(error, name, lineno,
                    "unsupported symmetry '" + symmetry_tok +
                        "' (only general/symmetric/skew-symmetric)");

    // -- size line (after comments/blank lines) ----------------------
    long long rows = 0, cols = 0, entries = 0;
    for (;;) {
        if (!std::getline(in, line))
            return fail(error, name, lineno,
                        "unexpected end of file before the size line");
        ++lineno;
        if (line.empty() || line[0] == '%')
            continue;
        std::istringstream sz(line);
        if (!(sz >> rows >> cols >> entries))
            return fail(error, name, lineno,
                        "malformed size line '" + line +
                            "' (expected 'rows cols entries')");
        std::string trailing;
        if (sz >> trailing)
            return fail(error, name, lineno,
                        "trailing token '" + trailing +
                            "' on the size line");
        break;
    }
    if (rows <= 0 || cols <= 0 || entries < 0)
        return fail(error, name, lineno,
                    "invalid dimensions " + std::to_string(rows) +
                        " x " + std::to_string(cols));
    // The dense golden representation bounds what fits; the corpus
    // matrices are a few thousand rows, so the cap is generous.
    constexpr long long kMaxElements = 1LL << 28;
    if (rows * cols > kMaxElements)
        return fail(error, name, lineno,
                    "matrix too large to densify (" +
                        std::to_string(rows) + " x " +
                        std::to_string(cols) + ")");
    if (symmetry != MtxSymmetry::General && rows != cols)
        return fail(error, name, lineno,
                    "symmetric storage requires a square matrix");

    Matrix<float> m(static_cast<int>(rows), static_cast<int>(cols));
    long long seen = 0;
    while (seen < entries) {
        if (!std::getline(in, line))
            return fail(error, name, lineno,
                        "unexpected end of file: " +
                            std::to_string(seen) + " of " +
                            std::to_string(entries) + " entries read");
        ++lineno;
        if (line.empty() || line[0] == '%')
            continue;
        std::istringstream entry(line);
        long long r = 0, c = 0;
        if (!(entry >> r >> c))
            return fail(error, name, lineno,
                        "malformed entry '" + line +
                            "' (expected 'row col [value]')");
        double value = 1.0; // pattern entries carry no value token
        if (field != MtxField::Pattern && !(entry >> value))
            return fail(error, name, lineno,
                        "entry '" + line + "' is missing its value");
        std::string trailing;
        if (entry >> trailing)
            return fail(error, name, lineno,
                        "trailing token '" + trailing +
                            "' on entry line");
        if (r < 1 || r > rows || c < 1 || c > cols)
            return fail(error, name, lineno,
                        "entry (" + std::to_string(r) + ", " +
                            std::to_string(c) +
                            ") outside the declared " +
                            std::to_string(rows) + " x " +
                            std::to_string(cols) + " shape");
        if (symmetry == MtxSymmetry::SkewSymmetric && r == c)
            return fail(error, name, lineno,
                        "skew-symmetric matrices have no diagonal "
                        "entries");
        const int ri = static_cast<int>(r) - 1;
        const int ci = static_cast<int>(c) - 1;
        // Duplicates sum: the Matrix Market assembly convention.
        m.at(ri, ci) += static_cast<float>(value);
        if (ri != ci) {
            if (symmetry == MtxSymmetry::Symmetric)
                m.at(ci, ri) += static_cast<float>(value);
            else if (symmetry == MtxSymmetry::SkewSymmetric)
                m.at(ci, ri) -= static_cast<float>(value);
        }
        ++seen;
    }

    *out = std::move(m);
    return true;
}

bool
loadMatrixMarket(const std::string &path, Matrix<float> *out,
                 std::string *error)
{
    std::ifstream in(path);
    if (!in)
        return fail(error, path, 0, "cannot open file");
    return loadMatrixMarket(in, path, out, error);
}

} // namespace dstc
