#include "sparse/convert.h"

#include "common/bitutil.h"

namespace dstc {

CsrMatrix
bitmapToCsr(const BitmapMatrix &bm)
{
    return CsrMatrix::encode(bm.decode());
}

BitmapMatrix
csrToBitmap(const CsrMatrix &csr, Major major)
{
    return BitmapMatrix::encode(csr.decode(), major);
}

std::vector<int>
lineNnzProfile(const BitmapMatrix &bm)
{
    std::vector<int> profile(bm.numLines());
    for (int i = 0; i < bm.numLines(); ++i)
        profile[i] = bm.lineNnz(i);
    return profile;
}

std::vector<int>
chunkHistogram(const BitmapMatrix &bm, int chunk)
{
    std::vector<int> hist(ceilDiv(bm.lineLength(), chunk) + 1, 0);
    for (int i = 0; i < bm.numLines(); ++i)
        ++hist[ceilDiv(bm.lineNnz(i), chunk)];
    return hist;
}

} // namespace dstc
