/**
 * @file
 * Conversions between sparse formats and sparsity-pattern statistics.
 */
#ifndef DSTC_SPARSE_CONVERT_H
#define DSTC_SPARSE_CONVERT_H

#include <vector>

#include "sparse/bitmap.h"
#include "sparse/csr.h"

namespace dstc {

/** Re-encode a bitmap matrix as CSR (via dense; sizes are modest). */
CsrMatrix bitmapToCsr(const BitmapMatrix &bm);

/** Re-encode a CSR matrix as a bitmap with the given packing order. */
BitmapMatrix csrToBitmap(const CsrMatrix &csr, Major major);

/** Per-line non-zero counts of a bitmap matrix. */
std::vector<int> lineNnzProfile(const BitmapMatrix &bm);

/**
 * Histogram of per-line OTC chunk counts (ceil(nnz/chunk)), which is
 * the quantized sparsity the warp-level skipping sees (Sec. III-B3).
 * Entry i counts lines needing exactly i chunks.
 */
std::vector<int> chunkHistogram(const BitmapMatrix &bm, int chunk);

} // namespace dstc

#endif // DSTC_SPARSE_CONVERT_H
