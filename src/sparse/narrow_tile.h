/**
 * @file
 * Narrow-tile (8x1-granularity) two-level encoding for the
 * ultra-sparse regime. Rows are grouped into 8-row strips; within a
 * strip every column is an 8x1 vector. Level 1 is a per-strip
 * vector-bitmap (one bit per column, packed into 64-bit words): a
 * '0' bit skips the whole 8x1 vector without decode, by the same
 * popcount word scan the wide format uses for warp tiles. Level 2
 * stores, per non-empty vector, an 8-bit row mask plus the packed
 * values (ascending row).
 *
 * At 99%+ sparsity (GNN adjacency, SuiteSparse-style matrices) the
 * 32x32 warp tiles of the wide format are almost all non-empty yet
 * carry only a handful of values each, so their 128-byte element
 * bitmaps dominate the encoded footprint and their fixed per-tile
 * overheads dominate the schedule. The 8x1 vector granularity
 * (FlashSparse) keeps both proportional to the actual non-zeros.
 */
#ifndef DSTC_SPARSE_NARROW_TILE_H
#define DSTC_SPARSE_NARROW_TILE_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitutil.h"
#include "common/datatype.h"
#include "common/logging.h"
#include "tensor/matrix.h"

namespace dstc {

/** Narrow-tile (8-row strip, 8x1 vector) sparse matrix. */
class NarrowTileMatrix
{
  public:
    /** Rows per strip — the narrow vector height. */
    static constexpr int kStripRows = 8;

    NarrowTileMatrix() = default;

    /**
     * Scalar reference encode: per strip, ascending column; the row
     * mask's bit j covers row strip*8 + j; values pack ascending
     * row. The word-parallel builder (wordEncodeNarrowTile) is
     * bitwise-pinned to this. @p spec fills the quantized value lane
     * (matrix-global scale, computed by the caller).
     */
    static NarrowTileMatrix encode(const Matrix<float> &dense,
                                   const QuantSpec &spec = {});

    /**
     * Assemble from already-built parts — the word-parallel
     * construction path. The parts must be mutually consistent:
     * @p strip_offsets (numStrips + 1 entries) are vector-count
     * prefixes, @p value_offsets (numVectors + 1 entries) are
     * absolute nnz prefixes, masks/values sized to the totals.
     */
    static NarrowTileMatrix
    fromParts(int rows, int cols, const QuantSpec &spec,
              std::vector<uint64_t> vector_bits,
              std::vector<int64_t> strip_offsets,
              std::vector<uint8_t> masks,
              std::vector<int64_t> value_offsets,
              std::vector<float> values,
              std::vector<float> values_quant);

    /** Reconstruct the dense matrix. */
    Matrix<float> decode() const;

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int numStrips() const { return n_strips_; }

    /** Level-1 words per strip: ceil(cols / 64). */
    int wordsPerStrip() const { return words_per_strip_; }

    /** Rows actually present in strip @p s (8 except a clipped last
     *  strip). */
    int
    stripSpan(int s) const
    {
        const int lo = s * kStripRows;
        return rows_ - lo < kStripRows ? rows_ - lo : kStripRows;
    }

    /** Level-1 vector-bitmap word @p w of strip @p s: bit c set iff
     *  the 8x1 vector at column s_word_base + c is non-empty. */
    uint64_t
    stripWord(int s, int w) const
    {
        return vector_bits_[static_cast<size_t>(s) * words_per_strip_ +
                            w];
    }

    /** All level-1 words of strip @p s. */
    std::span<const uint64_t>
    stripWords(int s) const
    {
        return {vector_bits_.data() +
                    static_cast<size_t>(s) * words_per_strip_,
                static_cast<size_t>(words_per_strip_)};
    }

    /** Index of strip @p s's first vector in the vector arrays. */
    int64_t stripOffset(int s) const { return strip_offsets_[s]; }

    /** Non-empty 8x1 vectors in strip @p s. */
    int64_t
    stripVectors(int s) const
    {
        return strip_offsets_[static_cast<size_t>(s) + 1] -
               strip_offsets_[s];
    }

    /** Non-zeros in strip @p s. */
    int64_t
    stripNnz(int s) const
    {
        return value_offsets_[static_cast<size_t>(
                   strip_offsets_[static_cast<size_t>(s) + 1])] -
               value_offsets_[static_cast<size_t>(strip_offsets_[s])];
    }

    /** Total non-empty 8x1 vectors. */
    int64_t
    numVectors() const
    {
        return static_cast<int64_t>(masks_.size());
    }

    /** Total non-zeros. */
    int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

    /** Row mask of vector @p v: bit j set iff row (strip*8 + j) is
     *  non-zero at the vector's column. */
    uint8_t vectorMask(int64_t v) const { return masks_[v]; }

    /** Packed values of vector @p v, ascending row. */
    std::span<const float>
    vectorValues(int64_t v) const
    {
        return {values_.data() + value_offsets_[v],
                static_cast<size_t>(value_offsets_[v + 1] -
                                    value_offsets_[v])};
    }

    /** The same values through the encode-time QuantSpec. */
    std::span<const float>
    vectorValuesQuant(int64_t v) const
    {
        return {values_quant_.data() + value_offsets_[v],
                static_cast<size_t>(value_offsets_[v + 1] -
                                    value_offsets_[v])};
    }

    /** The quantization the value lane was encoded with. */
    const QuantSpec &spec() const { return spec_; }

    /**
     * Bytes occupied: level-1 vector-bitmap words + one mask byte
     * per non-empty vector + values at @p dtype lane width + the
     * per-strip vector offsets. Per-vector value offsets are NOT
     * counted — the datapath derives them from mask-popcount
     * prefixes, the same address-offset trick the wide format uses.
     */
    size_t encodedBytes(DataType dtype = DataType::Fp16) const;

    /**
     * The encodedBytes formula from aggregate counts, shared with
     * the profile-side estimate so planned and executed footprints
     * cannot diverge.
     */
    static size_t narrowEncodedBytes(int64_t rows, int64_t cols,
                                     int64_t vectors, int64_t nnz,
                                     DataType dtype = DataType::Fp16);

  private:
    int rows_ = 0, cols_ = 0;
    int n_strips_ = 0;
    int words_per_strip_ = 0;
    QuantSpec spec_;
    std::vector<uint64_t> vector_bits_; ///< words_per_strip_ per strip
    std::vector<int64_t> strip_offsets_; ///< vector-count prefixes
    std::vector<uint8_t> masks_;         ///< row mask per vector
    std::vector<int64_t> value_offsets_; ///< nnz prefixes per vector
    std::vector<float> values_;          ///< packed, ascending row
    std::vector<float> values_quant_;    ///< values_ through spec_
};

} // namespace dstc

#endif // DSTC_SPARSE_NARROW_TILE_H
