#include "sparse/csr.h"

namespace dstc {

CsrMatrix
CsrMatrix::encode(const Matrix<float> &dense)
{
    CsrMatrix csr;
    csr.rows_ = dense.rows();
    csr.cols_ = dense.cols();
    csr.row_ptr_.assign(csr.rows_ + 1, 0);
    for (int r = 0; r < csr.rows_; ++r) {
        for (int c = 0; c < csr.cols_; ++c) {
            float v = dense.at(r, c);
            if (v != 0.0f) {
                csr.col_idx_.push_back(c);
                csr.values_.push_back(v);
            }
        }
        csr.row_ptr_[r + 1] = static_cast<int>(csr.values_.size());
    }
    return csr;
}

Matrix<float>
CsrMatrix::decode() const
{
    Matrix<float> dense(rows_, cols_);
    for (int r = 0; r < rows_; ++r)
        for (int i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
            dense.at(r, col_idx_[i]) = values_[i];
    return dense;
}

float
CsrMatrix::valueAt(int r, int c, int64_t *probes) const
{
    DSTC_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    // Linear scan with early exit; indices are sorted per row. Each
    // iteration is one data-dependent read of col_idx_, which is the
    // overhead CSR im2col pays relative to the bitmap format.
    for (int i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
        if (probes)
            ++*probes;
        if (col_idx_[i] == c)
            return values_[i];
        if (col_idx_[i] > c)
            return 0.0f;
    }
    return 0.0f;
}

size_t
CsrMatrix::encodedBytes() const
{
    return row_ptr_.size() * 4 + col_idx_.size() * 4 +
           values_.size() * 2;
}

} // namespace dstc
