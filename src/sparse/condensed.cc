#include "sparse/condensed.h"

#include "common/bitutil.h"

namespace dstc {

CondensedMatrix
CondensedMatrix::fromBitmap(const BitmapMatrix &bm, int chunk,
                            bool quantized_lane)
{
    DSTC_ASSERT(chunk > 0);
    CondensedMatrix cm;
    cm.chunk_ = chunk;
    cm.lines_.resize(bm.numLines());
    cm.nnz_.resize(bm.numLines());
    for (int i = 0; i < bm.numLines(); ++i) {
        auto vals = quantized_lane ? bm.lineValuesQuant(i)
                                   : bm.lineValues(i);
        cm.nnz_[i] = static_cast<int>(vals.size());
        std::vector<float> padded(vals.begin(), vals.end());
        padded.resize(alignUp(cm.nnz_[i], chunk), 0.0f);
        cm.lines_[i] = std::move(padded);
    }
    return cm;
}

int
CondensedMatrix::lineChunks(int i) const
{
    return ceilDiv(nnz_[i], chunk_);
}

int
CondensedMatrix::totalChunks() const
{
    int total = 0;
    for (int i = 0; i < numLines(); ++i)
        total += lineChunks(i);
    return total;
}

} // namespace dstc
