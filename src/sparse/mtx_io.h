/**
 * @file
 * Matrix Market (.mtx) loader for the real-matrix SpMM workloads
 * (GNN adjacency, SuiteSparse-style inputs). Coordinate format only
 * — the format real sparse collections ship in — with the three
 * value types the corpus uses (real, integer, pattern) and the
 * general / symmetric / skew-symmetric storage symmetries. Array
 * (dense), complex and hermitian headers are rejected up front: the
 * SpMM pipeline has no use for them, and silently densifying would
 * defeat the point of the corpus.
 *
 * Errors never panic: every malformed input yields `false` plus a
 * "file:line: message" diagnostic, so the CLI can exit cleanly (exit
 * code 2) on a bad operand file.
 */
#ifndef DSTC_SPARSE_MTX_IO_H
#define DSTC_SPARSE_MTX_IO_H

#include <iosfwd>
#include <string>

#include "tensor/matrix.h"

namespace dstc {

/**
 * Load a Matrix Market coordinate file into a dense matrix (the
 * library's golden representation; the sparse encoders take it from
 * there).
 *
 * Accepted headers: `%%MatrixMarket matrix coordinate
 * {real|integer|pattern} {general|symmetric|skew-symmetric}`.
 * Entries are 1-based and bounds-checked; duplicate entries sum (the
 * Matrix Market assembly convention); pattern entries load as 1.0;
 * symmetric/skew-symmetric entries mirror across the diagonal (skew
 * negates, and rejects explicit diagonal entries).
 *
 * @param path  file to read
 * @param out   receives the matrix on success (untouched on failure)
 * @param error receives a "path:line: message" diagnostic on failure
 * @return true on success
 */
bool loadMatrixMarket(const std::string &path, Matrix<float> *out,
                      std::string *error);

/** Stream variant (tests and in-memory corpora); @p name labels the
 *  stream in diagnostics the way the path labels a file. */
bool loadMatrixMarket(std::istream &in, const std::string &name,
                      Matrix<float> *out, std::string *error);

} // namespace dstc

#endif // DSTC_SPARSE_MTX_IO_H
