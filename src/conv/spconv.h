/**
 * @file
 * The SpCONV executor: runs a convolution layer under each of the
 * five strategies compared in Fig. 22.
 *
 *  - DenseExplicit        CUTLASS GEMM after an explicit im2col
 *  - DenseImplicit        cuDNN-style fused (implicit) im2col + GEMM
 *  - SingleSparseExplicit Sparse Tensor Core [72] + explicit im2col
 *  - SingleSparseImplicit our bitmap implicit im2col, weight-side
 *                         sparsity only (activations treated dense)
 *  - DualSparseImplicit   the full dual-side sparse Tensor Core
 *
 * All strategies compute the same convolution (given the same
 * weights); they differ only in execution time. Structural pruning
 * required by a baseline (e.g. Zhu's vector-wise 75%) is the
 * caller's responsibility so the numeric semantics stay explicit.
 */
#ifndef DSTC_CONV_SPCONV_H
#define DSTC_CONV_SPCONV_H

#include "gemm/sparsity_profile.h"
#include "im2col/bitmap_im2col.h"
#include "im2col/conv_shape.h"
#include "tensor/matrix.h"
#include "tensor/tensor4d.h"
#include "timing/gpu_config.h"
#include "timing/stats.h"

namespace dstc {

/** Convolution execution strategy (the Fig. 22 legend). */
enum class ConvMethod
{
    DenseExplicit,
    DenseImplicit,
    SingleSparseExplicit,
    SingleSparseImplicit,
    DualSparseImplicit,
};

/** Printable name matching the paper's legend. */
const char *convMethodName(ConvMethod method);

/** Knobs of the functional convolution execution. */
struct ConvOptions
{
    /**
     * Worker threads of the word-parallel pipeline (the lowered-
     * column loop, the A-operand tiling and the SpGEMM output-tile
     * loop), mirroring SpGemmOptions::num_workers: 0 uses the
     * process-shared pool (all hardware threads), 1 runs serially in
     * the caller, N caps the parallelism at N threads. Results and
     * stats are bitwise identical for every setting — per-tile
     * outcomes are reduced in tile order.
     */
    int num_workers = 0;
};

/** Output of a convolution run. */
struct ConvResult
{
    Tensor4d output;   ///< valid when run functionally
    KernelStats stats;
};

/**
 * Encoded operands of a timing-only convolution: the activation /
 * weight popcount profiles plus each side's DRAM footprint under the
 * method's encoding. Building this is the encode stage of a conv
 * ExecutionPlan; it is pure in (shape, method, sparsities, clusters,
 * seed), which makes it cacheable across repeated layers.
 */
struct ConvOperandEncoding
{
    SparsityProfile a; ///< lowered activations (A side)
    SparsityProfile b; ///< flattened weights (B side)
    double input_bytes = 0.0;
    double weight_bytes = 0.0;
};

/**
 * Synthesize the operand encoding of (shape, method) at a sparsity
 * operating point. Deterministic per @p seed; exactly the encoding
 * ConvExecutor::timeOnly uses internally.
 */
ConvOperandEncoding
encodeConvOperands(const ConvShape &shape, ConvMethod method,
                   double weight_sparsity, double act_sparsity,
                   uint64_t seed = 1, double weight_cluster = 1.0,
                   double act_cluster = 1.0);

/** Runs convolution layers on the modeled device. */
class ConvExecutor
{
  public:
    explicit ConvExecutor(const GpuConfig &cfg);

    /**
     * Execute a convolution functionally and return its simulated
     * time. @p weights is (out_c) x (in_c * kernel * kernel).
     *
     * The implicit-sparse methods run the word-parallel pipeline:
     * the bitmap lowering is re-tiled straight into the two-level
     * SpGEMM operand (no dense lowered matrix, no per-pixel decode)
     * and the output-tile loop partitions over
     * ConvOptions::num_workers. Output values and stats are
     * bit-for-bit identical to runScalar for every worker count.
     */
    ConvResult run(const Tensor4d &input, const Matrix<float> &weights,
                   const ConvShape &shape, ConvMethod method,
                   const ConvOptions &options = {}) const;

    /**
     * The pre-word-parallel path, kept verbatim as the reference
     * model: the lowered feature map is decoded to a dense matrix,
     * profiled and re-encoded element-by-element before the GEMM.
     * The equivalence tests assert run() reproduces its outputs and
     * stats bit-for-bit; bench/micro_spconv reports speedup against
     * it. (Its GEMM honors options.num_workers so comparisons
     * isolate the pipeline change from raw thread count.)
     *
     * Defined in the test-only `dstc_reference` library (see
     * reference/scalar_spconv.cc): the shipped library only carries
     * the word-parallel pipeline plus the lowered baseline path the
     * explicit / dense-implicit strategies execute.
     */
    ConvResult runScalar(const Tensor4d &input,
                         const Matrix<float> &weights,
                         const ConvShape &shape, ConvMethod method,
                         const ConvOptions &options = {}) const;

    /**
     * Timing-only path for the model sweeps: synthesizes an input at
     * @p act_sparsity and weights at @p weight_sparsity, then times
     * @p method without computing values. The cluster factors shape
     * the non-zero distribution (>= 1, 1 = uniform Bernoulli; see
     * gemm/sparsity_profile.h). Deterministic for a given @p seed.
     */
    KernelStats timeOnly(const ConvShape &shape, ConvMethod method,
                         double weight_sparsity, double act_sparsity,
                         uint64_t seed = 1, double weight_cluster = 1.0,
                         double act_cluster = 1.0) const;

    /**
     * Execute the timing model over a pre-built operand encoding
     * (see encodeConvOperands). timeOnly == encode + timeEncoded.
     */
    KernelStats timeEncoded(const ConvShape &shape, ConvMethod method,
                            const ConvOperandEncoding &enc) const;

    const GpuConfig &config() const { return cfg_; }

  private:
    /**
     * Shared composition: compute side per method, memory side from
     * the convolution traffic model. @p a_profile / @p b_profile are
     * only consulted by the implicit-sparse methods; @p input_bytes
     * and @p weight_bytes already reflect each method's encoding.
     */
    KernelStats timeGemmPhase(const ConvShape &shape, ConvMethod method,
                              const SparsityProfile *a_profile,
                              const SparsityProfile *b_profile,
                              double input_bytes,
                              double weight_bytes) const;

    /**
     * The lowered baseline path the explicit / dense-implicit
     * strategies execute (dense im2col + FP16 reference GEMM). Also
     * the non-implicit-sparse half of runScalar, so the production
     * delegation and the reference pin share one definition.
     */
    ConvResult runLowered(const Tensor4d &input,
                          const Matrix<float> &weights,
                          const ConvShape &shape, ConvMethod method,
                          const ConvOptions &options) const;

    GpuConfig cfg_;
};

} // namespace dstc

#endif // DSTC_CONV_SPCONV_H
