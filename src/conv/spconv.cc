#include "conv/spconv.h"

#include <algorithm>

#include "baselines/zhu_sparse_tc.h"
#include "common/logging.h"
#include "gemm/dense_gemm.h"
#include "gemm/spgemm_device.h"
#include "im2col/dense_im2col.h"
#include "sparse/word_encode.h"
#include "tensor/reference.h"
#include "timing/memory_model.h"

namespace dstc {

const char *
convMethodName(ConvMethod method)
{
    switch (method) {
      case ConvMethod::DenseExplicit:
        return "Dense Explicit";
      case ConvMethod::DenseImplicit:
        return "Dense Implicit";
      case ConvMethod::SingleSparseExplicit:
        return "Single Sparse Explicit";
      case ConvMethod::SingleSparseImplicit:
        return "Single Sparse Implicit";
      case ConvMethod::DualSparseImplicit:
        return "Dual Sparse Implicit";
    }
    panic("unknown conv method");
}

namespace {

bool
isExplicit(ConvMethod method)
{
    return method == ConvMethod::DenseExplicit ||
           method == ConvMethod::SingleSparseExplicit;
}

bool
isImplicitSparse(ConvMethod method)
{
    return method == ConvMethod::SingleSparseImplicit ||
           method == ConvMethod::DualSparseImplicit;
}

} // namespace

ConvExecutor::ConvExecutor(const GpuConfig &cfg) : cfg_(cfg) {}

KernelStats
ConvExecutor::timeGemmPhase(const ConvShape &shape, ConvMethod method,
                            const SparsityProfile *a_profile,
                            const SparsityProfile *b_profile,
                            double input_bytes,
                            double weight_bytes) const
{
    const int64_t m = shape.loweredRows();
    const int64_t k = shape.loweredCols();
    const int64_t n = shape.out_c;

    KernelStats stats;
    switch (method) {
      case ConvMethod::DenseExplicit:
      case ConvMethod::DenseImplicit: {
        DenseGemmDevice dense(cfg_);
        stats = dense.timeOnly(m, n, k);
        break;
      }
      case ConvMethod::SingleSparseExplicit: {
        // The fixed-rate vector-wise design: weights are pruned to
        // the 75% format whatever their natural sparsity.
        stats = zhuGemm(cfg_, m, n, k, kZhuPruneRatio);
        break;
      }
      case ConvMethod::SingleSparseImplicit:
      case ConvMethod::DualSparseImplicit: {
        DSTC_ASSERT(a_profile && b_profile);
        SpGemmDevice spgemm(cfg_);
        stats = spgemm.timeFromProfiles(*a_profile, *b_profile);
        break;
      }
    }
    stats.name = convMethodName(method);

    // Memory side: convolution traffic replaces the generic GEMM
    // traffic. Explicit methods materialize the lowered matrix in
    // DRAM (write + read); implicit ones read the original layout.
    MemoryModel mem(cfg_);
    const double output_bytes =
        static_cast<double>(shape.outputElems()) * 2.0;
    const double inflation = std::max(1.0, shape.inflation());
    stats.dram_bytes = mem.convTrafficBytes(
        input_bytes, weight_bytes, output_bytes, inflation,
        isExplicit(method));
    stats.memory_us = mem.dramTimeUs(stats.dram_bytes);

    // Explicit methods launch the im2col kernel separately.
    stats.launch_us =
        cfg_.kernel_launch_us * (isExplicit(method) ? 2.0 : 1.0);
    stats.bound = stats.compute_us > stats.memory_us ? Bound::Compute
                                                     : Bound::Memory;
    return stats;
}

ConvResult
ConvExecutor::run(const Tensor4d &input, const Matrix<float> &weights,
                  const ConvShape &shape, ConvMethod method,
                  const ConvOptions &options) const
{
    DSTC_ASSERT(weights.rows() == shape.out_c &&
                weights.cols() == shape.loweredCols(),
                "weights must be out_c x (in_c*k*k)");

    // The explicit / dense-implicit baselines are untouched by the
    // word-parallel rebuild — the lowered scalar path IS their path.
    if (!isImplicitSparse(method))
        return runLowered(input, weights, shape, method, options);

    const Matrix<float> wt = flattenWeightsTransposed(weights);

    // The word-parallel implicit pipeline: bitmap lowering re-tiled
    // straight into the two-level SpGEMM operand — no dense lowered
    // matrix, no per-pixel decode/re-encode — then the pooled
    // output-tile loop accumulating into D.
    SpGemmOptions gemm_opts;
    gemm_opts.functional = true;
    gemm_opts.num_workers = options.num_workers;

    BitmapFeatureMap fmap = BitmapFeatureMap::encode(input);
    LoweredFeatureMap lfm =
        im2colFromBitmap(fmap, shape, true, options.num_workers);
    const double input_bytes =
        static_cast<double>(fmap.encodedBytes());

    TwoLevelBitmapMatrix a_enc = lfm.toTwoLevel(
        gemm_opts.tile_m, gemm_opts.tile_k, options.num_workers);
    TwoLevelBitmapMatrix b_enc =
        wordEncodeTwoLevel(wt, gemm_opts.tile_k, gemm_opts.tile_n,
                           Major::Row, options.num_workers);
    SpGemmDevice spgemm(cfg_);
    Matrix<float> d =
        spgemm.multiplyEncoded(a_enc, b_enc, gemm_opts).d;

    // Timing from the actual data's sparsity: the A profile reads
    // the lowered column bitmaps directly (word popcounts), matching
    // the dense extraction of the scalar path bit for bit.
    SparsityProfile a_profile =
        method == ConvMethod::DualSparseImplicit
            ? SparsityProfile::fromLowered(lfm, 32)
            : SparsityProfile::denseA(shape.loweredRows(),
                                      shape.loweredCols(), 32);
    SparsityProfile b_profile =
        SparsityProfile::fromMatrixBWord(wt, 32);
    const double weight_bytes =
        static_cast<double>(b_profile.encodedBytes(32));

    ConvResult result;
    result.stats = timeGemmPhase(shape, method, &a_profile, &b_profile,
                                 input_bytes, weight_bytes);
    result.output = foldLoweredOutput(d, shape);
    return result;
}

ConvResult
ConvExecutor::runLowered(const Tensor4d &input,
                         const Matrix<float> &weights,
                         const ConvShape &shape, ConvMethod method,
                         const ConvOptions &options) const
{
    DSTC_ASSERT(!isImplicitSparse(method),
                "runLowered serves the explicit / dense-implicit "
                "baselines");
    DSTC_ASSERT(weights.rows() == shape.out_c &&
                weights.cols() == shape.loweredCols(),
                "weights must be out_c x (in_c*k*k)");
    (void)options; // the baselines have no parallel tile loop

    const Matrix<float> wt = flattenWeightsTransposed(weights);

    Matrix<float> lowered = im2colExplicit(input, shape);
    double input_bytes =
        static_cast<double>(shape.inputElems()) * 2.0;
    if (method == ConvMethod::DenseImplicit) {
        // Validate the outer-friendly generation order against the
        // row-major one on the real data.
        DSTC_ASSERT(maxAbsDiff(lowered, im2colOuterFriendly(
                                            input, shape)) == 0.0,
                    "outer-friendly im2col diverged");
    }

    Matrix<float> d = refGemmFp16(lowered, wt);

    // Timing from the actual data's sparsity.
    SparsityProfile a_profile = SparsityProfile::denseA(
        shape.loweredRows(), shape.loweredCols(), 32);
    SparsityProfile b_profile = SparsityProfile::fromMatrixB(wt, 32);

    double weight_bytes;
    switch (method) {
      case ConvMethod::DenseExplicit:
      case ConvMethod::DenseImplicit:
        weight_bytes = static_cast<double>(wt.rows()) * wt.cols() * 2.0;
        break;
      case ConvMethod::SingleSparseExplicit:
        weight_bytes = static_cast<double>(wt.rows()) * wt.cols() *
                       (1.0 - kZhuPruneRatio) * 2.5;
        break;
      default:
        weight_bytes = static_cast<double>(b_profile.encodedBytes(32));
    }
    if (!isExplicit(method)) {
        // Dense implicit reads the raw FP16 layout, not a bitmap.
        input_bytes = static_cast<double>(shape.inputElems()) * 2.0;
    }

    ConvResult result;
    result.stats = timeGemmPhase(shape, method, &a_profile, &b_profile,
                                 input_bytes, weight_bytes);
    result.output = foldLoweredOutput(d, shape);
    return result;
}

ConvOperandEncoding
encodeConvOperands(const ConvShape &shape, ConvMethod method,
                   double weight_sparsity, double act_sparsity,
                   uint64_t seed, double weight_cluster,
                   double act_cluster)
{
    Rng rng(seed);
    const int64_t m = shape.loweredRows();
    const int64_t k = shape.loweredCols();
    const int64_t n = shape.out_c;

    // Activation-side profile. The lowered matrix replicates each
    // input pixel across kernel^2 columns, so its density equals the
    // feature map's; a (possibly clustered) random profile is a good
    // surrogate for the timing (validated against real lowering in
    // the tests).
    SparsityProfile a_profile =
        method == ConvMethod::DualSparseImplicit
            ? SparsityProfile::randomA(m, k, 32, 1.0 - act_sparsity,
                                       act_cluster, rng)
            : SparsityProfile::denseA(m, k, 32);
    SparsityProfile b_profile = SparsityProfile::randomA(
        n, k, 32, 1.0 - weight_sparsity, weight_cluster, rng);

    double input_bytes;
    const double input_elems =
        static_cast<double>(shape.inputElems());
    if (isImplicitSparse(method)) {
        // Bitmap-encoded feature map: 1 bit per element + FP16
        // non-zeros + per-row offsets.
        const double act_density =
            method == ConvMethod::DualSparseImplicit
                ? 1.0 - act_sparsity
                : 1.0;
        input_bytes = input_elems * (1.0 / 8.0) +
                      input_elems * act_density * 2.0 +
                      static_cast<double>(shape.batch) * shape.in_c *
                          shape.in_h * 4.0;
    } else {
        input_bytes = input_elems * 2.0;
    }

    double weight_bytes;
    switch (method) {
      case ConvMethod::DenseExplicit:
      case ConvMethod::DenseImplicit:
        weight_bytes = static_cast<double>(k) * n * 2.0;
        break;
      case ConvMethod::SingleSparseExplicit:
        weight_bytes = static_cast<double>(k) * n *
                       (1.0 - kZhuPruneRatio) * 2.5;
        break;
      default:
        weight_bytes = static_cast<double>(b_profile.encodedBytes(32));
    }

    return ConvOperandEncoding{std::move(a_profile),
                               std::move(b_profile), input_bytes,
                               weight_bytes};
}

KernelStats
ConvExecutor::timeEncoded(const ConvShape &shape, ConvMethod method,
                          const ConvOperandEncoding &enc) const
{
    return timeGemmPhase(shape, method, &enc.a, &enc.b,
                         enc.input_bytes, enc.weight_bytes);
}

KernelStats
ConvExecutor::timeOnly(const ConvShape &shape, ConvMethod method,
                       double weight_sparsity, double act_sparsity,
                       uint64_t seed, double weight_cluster,
                       double act_cluster) const
{
    return timeEncoded(shape, method,
                       encodeConvOperands(shape, method,
                                          weight_sparsity, act_sparsity,
                                          seed, weight_cluster,
                                          act_cluster));
}

} // namespace dstc
