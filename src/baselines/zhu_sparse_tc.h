/**
 * @file
 * Sparse Tensor Core baseline [Zhu et al., MICRO'19] — the "Single
 * Sparse" comparison point of Figs. 21-22.
 *
 * Their design applies *vector-wise* structural pruning to the
 * weight matrix at a fixed 75% ratio and skips the pruned operand
 * lanes in the inner-product unit. Consequences the paper relies on:
 * the speedup over a dense kernel is a fixed ~1.86x (the hardware can
 * only exploit exactly 75%, and format overheads eat part of the 4x),
 * it cannot exploit sparsity beyond 75% even when the weights are
 * 90%+ sparse, and it cannot touch activation sparsity at all.
 */
#ifndef DSTC_BASELINES_ZHU_SPARSE_TC_H
#define DSTC_BASELINES_ZHU_SPARSE_TC_H

#include <cstdint>

#include "common/datatype.h"
#include "tensor/matrix.h"
#include "timing/gpu_config.h"
#include "timing/stats.h"

namespace dstc {

/** Fixed structural pruning ratio of the Sparse Tensor Core design. */
constexpr double kZhuPruneRatio = 0.75;

/** Effective speedup over the dense kernel after format overheads. */
constexpr double kZhuEffectiveSpeedup = 1.86;

/**
 * Timing of the vector-wise sparse GEMM: the dense tensor-core time
 * compressed by the fixed effective speedup on the compute side; the
 * weight operand moves at 25% plus index metadata.
 *
 * @param weight_sparsity actual sparsity of B; only min(s, 0.75) is
 *        exploitable, and anything below 0.75 must be *padded up* by
 *        the pruning scheme (so the speedup stays fixed).
 */
KernelStats zhuGemm(const GpuConfig &cfg, int64_t m, int64_t n,
                    int64_t k, double weight_sparsity,
                    DataType dtype = DataType::Fp16);

/**
 * Functional counterpart: vector-wise prune B to the fixed ratio and
 * multiply densely at the specs' datatype (FP16 default; pruning
 * selects on raw magnitudes). Provided so the baseline's accuracy
 * cost is inspectable; the pruner itself lives in model/pruning.h.
 */
Matrix<float> zhuGemmFunctional(const Matrix<float> &a,
                                const Matrix<float> &b, int vec_len = 16,
                                const QuantSpec &spec_a = {},
                                const QuantSpec &spec_b = {});

} // namespace dstc

#endif // DSTC_BASELINES_ZHU_SPARSE_TC_H
