#include "baselines/cutlass_like.h"

#include "gemm/dense_gemm.h"

namespace dstc {

KernelStats
cutlassGemm(const GpuConfig &cfg, int64_t m, int64_t n, int64_t k,
            DataType dtype)
{
    DenseGemmDevice device(cfg);
    KernelStats stats = device.timeOnly(m, n, k, dtype);
    stats.name = "cutlass";
    return stats;
}

} // namespace dstc
