/**
 * @file
 * Ampere-style 2:4 sparse Tensor Core baseline (Fig. 3b; refs [42],
 * [45] of the paper): the production design the paper positions
 * against.
 *
 * The A100 sparse Tensor Core requires the weight operand pruned to
 * the 2:4 structured pattern (two non-zeros in every four
 * consecutive elements) and doubles the effective math rate on that
 * operand. Like the vector-wise design, it cannot exploit sparsity
 * beyond its fixed 50%, and it cannot touch activation sparsity.
 * Included so the ablation benches can place the dual-side design
 * against both fixed-rate formats.
 */
#ifndef DSTC_BASELINES_AMPERE_SPARSE_TC_H
#define DSTC_BASELINES_AMPERE_SPARSE_TC_H

#include <cstdint>

#include "common/datatype.h"
#include "tensor/matrix.h"
#include "timing/gpu_config.h"
#include "timing/stats.h"

namespace dstc {

/** Fixed structured-pruning ratio of the 2:4 format. */
constexpr double kAmperePruneRatio = 0.5;

/**
 * Effective speedup of the 2:4 sparse path over the dense kernel:
 * the math rate doubles, but metadata handling and the selection
 * network keep the realized gain below 2x on real kernels.
 */
constexpr double kAmpereEffectiveSpeedup = 1.75;

/**
 * Timing of a 2:4 sparse GEMM: dense tensor-core time compressed by
 * the fixed effective speedup; the weight operand moves condensed at
 * 50% of the datatype's lane width plus 2-bit-per-value lane
 * metadata (the A100 format keeps the 2-bit indices at every
 * precision).
 */
KernelStats ampereGemm(const GpuConfig &cfg, int64_t m, int64_t n,
                       int64_t k, double weight_sparsity,
                       DataType dtype = DataType::Fp16);

/**
 * Functional counterpart: 2:4-prune B (keep the two largest of every
 * four) and multiply densely at the specs' datatype (FP16 default).
 * Pruning selects on raw magnitudes, before quantization.
 */
Matrix<float> ampereGemmFunctional(const Matrix<float> &a,
                                   const Matrix<float> &b,
                                   const QuantSpec &spec_a = {},
                                   const QuantSpec &spec_b = {});

} // namespace dstc

#endif // DSTC_BASELINES_AMPERE_SPARSE_TC_H
