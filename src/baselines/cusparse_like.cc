#include "baselines/cusparse_like.h"

#include <cmath>
#include <vector>

#include "common/logging.h"

namespace dstc {

CsrMatrix
csrGemm(const CsrMatrix &a, const CsrMatrix &b,
        const QuantSpec &spec_a, const QuantSpec &spec_b)
{
    DSTC_ASSERT(a.cols() == b.rows());
    // Gustavson: expand each A row through the matching B rows into a
    // dense accumulator, then compress. This is the algorithmic shape
    // of the library's numeric phase. Values quantize through the
    // specs as they are consumed (the CSR encodings stay raw).
    Matrix<float> d(a.rows(), b.cols());
    for (int i = 0; i < a.rows(); ++i) {
        for (int ai = a.rowPtr()[i]; ai < a.rowPtr()[i + 1]; ++ai) {
            const int kk = a.colIdx()[ai];
            const float av = spec_a.apply(a.values()[ai]);
            for (int bi = b.rowPtr()[kk]; bi < b.rowPtr()[kk + 1];
                 ++bi) {
                d.at(i, b.colIdx()[bi]) +=
                    av * spec_b.apply(b.values()[bi]);
            }
        }
    }
    const float out_scale = QuantSpec::outputScale(spec_a, spec_b);
    if (out_scale != 1.0f) {
        for (float &v : d.data())
            v *= out_scale;
    }
    return CsrMatrix::encode(d);
}

namespace {

// Calibrated model constants (see header). kFixedOverheadUs covers
// the symbolic/alloc/numeric kernel sequence; kRowCostUs the
// row-parallel bookkeeping; kProductsPerUs the effective
// irregular-FLOP rate of the CUDA cores (gather + hash-insert per
// product).
constexpr double kFixedOverheadUs = 12.0;
constexpr double kRowCostUs = 0.19;
constexpr double kProductsPerUs = 42500.0;
constexpr double kOutputNnzPerUs = 120000.0;

} // namespace

KernelStats
cusparseGemmTime(const GpuConfig &cfg, int64_t rows, int64_t products,
                 int64_t nnz_d)
{
    (void)cfg; // latency-limited: device BW is not the constraint
    KernelStats stats;
    stats.name = "cusparse";
    stats.compute_us = static_cast<double>(rows) * kRowCostUs +
                       static_cast<double>(products) / kProductsPerUs +
                       static_cast<double>(nnz_d) / kOutputNnzPerUs;
    // The irregular phases are latency- not bandwidth-limited; the
    // compute term above subsumes their memory behaviour.
    stats.memory_us = 0.0;
    stats.launch_us = kFixedOverheadUs;
    stats.bound = Bound::Compute;
    return stats;
}

KernelStats
cusparseGemmTime(const GpuConfig &cfg, const CsrMatrix &a,
                 const CsrMatrix &b)
{
    DSTC_ASSERT(a.cols() == b.rows());
    int64_t products = 0;
    for (int i = 0; i < a.rows(); ++i)
        for (int ai = a.rowPtr()[i]; ai < a.rowPtr()[i + 1]; ++ai)
            products += b.rowNnz(a.colIdx()[ai]);
    const CsrMatrix d = csrGemm(a, b);
    return cusparseGemmTime(cfg, a.rows(), products, d.nnz());
}

Matrix<float>
csrSpmm(const CsrMatrix &a, const Matrix<float> &b,
        const QuantSpec &spec_a, const QuantSpec &spec_b)
{
    DSTC_ASSERT(a.cols() == b.rows());
    const int n = b.cols();
    Matrix<float> d(a.rows(), n);
    for (int i = 0; i < a.rows(); ++i) {
        float *drow = d.data().data() + static_cast<size_t>(i) * n;
        for (int ai = a.rowPtr()[i]; ai < a.rowPtr()[i + 1]; ++ai) {
            const int kk = a.colIdx()[ai];
            const float av = spec_a.apply(a.values()[ai]);
            const float *brow =
                b.data().data() + static_cast<size_t>(kk) * n;
            for (int c = 0; c < n; ++c)
                drow[c] += av * spec_b.apply(brow[c]);
        }
    }
    const float out_scale = QuantSpec::outputScale(spec_a, spec_b);
    if (out_scale != 1.0f) {
        for (float &v : d.data())
            v *= out_scale;
    }
    return d;
}

namespace {

// SpMM model constants: one row-parallel kernel (no symbolic phase),
// so the fixed overhead is a single launch + descriptor setup; rows
// cost only their row-pointer reads; the per-product rate is ~8x the
// SpGEMM rate because the dense-B row gathers are unit-stride and
// the accumulator is a register tile, not a hash table.
constexpr double kSpmmFixedOverheadUs = 9.0;
constexpr double kSpmmRowCostUs = 0.002;
constexpr double kSpmmProductsPerUs = 350000.0;

} // namespace

KernelStats
cusparseSpmmTime(const GpuConfig &cfg, int64_t rows, int64_t products,
                 int64_t out_cells)
{
    (void)cfg; // latency-limited, like the SpGEMM model
    KernelStats stats;
    stats.name = "cusparse_spmm";
    stats.compute_us =
        static_cast<double>(rows) * kSpmmRowCostUs +
        static_cast<double>(products) / kSpmmProductsPerUs +
        static_cast<double>(out_cells) / kOutputNnzPerUs;
    stats.memory_us = 0.0;
    stats.launch_us = kSpmmFixedOverheadUs;
    stats.bound = Bound::Compute;
    return stats;
}

KernelStats
cusparseGemmTimeExpected(const GpuConfig &cfg, int64_t m, int64_t n,
                         int64_t k, double density_a, double density_b)
{
    DSTC_ASSERT(density_a >= 0 && density_a <= 1);
    DSTC_ASSERT(density_b >= 0 && density_b <= 1);
    const double nnz_a = density_a * static_cast<double>(m) * k;
    const double nnz_b_per_row = density_b * static_cast<double>(n);
    const double products = nnz_a * nnz_b_per_row;
    // P(D element non-zero) = 1 - (1 - dA*dB)^k.
    const double p_nz =
        1.0 - std::pow(1.0 - density_a * density_b,
                       static_cast<double>(k));
    const double nnz_d = p_nz * static_cast<double>(m) * n;
    return cusparseGemmTime(cfg, m, static_cast<int64_t>(products),
                            static_cast<int64_t>(nnz_d));
}

} // namespace dstc
