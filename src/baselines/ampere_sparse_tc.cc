#include "baselines/ampere_sparse_tc.h"

#include "gemm/dense_gemm.h"
#include "model/pruning.h"
#include "tensor/reference.h"
#include "timing/memory_model.h"

namespace dstc {

KernelStats
ampereGemm(const GpuConfig &cfg, int64_t m, int64_t n, int64_t k,
           double weight_sparsity)
{
    (void)weight_sparsity; // fixed-rate format, like the vector-wise
                           // design: extra sparsity is not exploitable
    DenseGemmDevice device(cfg);
    KernelStats stats = device.timeOnly(m, n, k);
    stats.name = "ampere_sparse_tc";
    stats.compute_us /= kAmpereEffectiveSpeedup;

    // Weights move condensed at 50% plus 2 bits of lane metadata per
    // kept value; activations and output stay dense.
    MemoryModel mem(cfg);
    const double bytes_a = static_cast<double>(m) * k * 2.0;
    const double bytes_b = static_cast<double>(k) * n *
                           (1.0 - kAmperePruneRatio) * 2.25;
    const double bytes_d = static_cast<double>(m) * n * 2.0;
    stats.dram_bytes =
        mem.gemmTrafficBytes(m, n, bytes_a, bytes_b, bytes_d);
    stats.memory_us = mem.dramTimeUs(stats.dram_bytes);
    stats.bound = stats.compute_us > stats.memory_us ? Bound::Compute
                                                     : Bound::Memory;
    return stats;
}

Matrix<float>
ampereGemmFunctional(const Matrix<float> &a, const Matrix<float> &b)
{
    return refGemmFp16(a, prune2of4(b));
}

} // namespace dstc
