#include "baselines/ampere_sparse_tc.h"

#include "gemm/dense_gemm.h"
#include "model/pruning.h"
#include "tensor/reference.h"
#include "timing/memory_model.h"

namespace dstc {

KernelStats
ampereGemm(const GpuConfig &cfg, int64_t m, int64_t n, int64_t k,
           double weight_sparsity, DataType dtype)
{
    (void)weight_sparsity; // fixed-rate format, like the vector-wise
                           // design: extra sparsity is not exploitable
    DenseGemmDevice device(cfg);
    KernelStats stats = device.timeOnly(m, n, k, dtype);
    stats.name = "ampere_sparse_tc";
    stats.compute_us /= kAmpereEffectiveSpeedup;

    // Weights move condensed at 50% of the lane width plus 2 bits of
    // lane metadata per kept value; activations and output stay
    // dense at their datatype widths.
    MemoryModel mem(cfg);
    const double in_bytes = dataTypeValueBytes(dtype);
    const double bytes_a = static_cast<double>(m) * k * in_bytes;
    const double bytes_b = static_cast<double>(k) * n *
                           (1.0 - kAmperePruneRatio) *
                           (in_bytes + 0.25);
    const double bytes_d =
        static_cast<double>(m) * n * dataTypeOutputBytes(dtype);
    stats.dram_bytes =
        mem.gemmTrafficBytes(m, n, bytes_a, bytes_b, bytes_d);
    stats.memory_us = mem.dramTimeUs(stats.dram_bytes);
    stats.bound = stats.compute_us > stats.memory_us ? Bound::Compute
                                                     : Bound::Memory;
    return stats;
}

Matrix<float>
ampereGemmFunctional(const Matrix<float> &a, const Matrix<float> &b,
                     const QuantSpec &spec_a, const QuantSpec &spec_b)
{
    return refGemmQuant(a, prune2of4(b), spec_a, spec_b);
}

} // namespace dstc
