#include "baselines/zhu_sparse_tc.h"

#include "gemm/dense_gemm.h"
#include "model/pruning.h"
#include "tensor/reference.h"

namespace dstc {

KernelStats
zhuGemm(const GpuConfig &cfg, int64_t m, int64_t n, int64_t k,
        double weight_sparsity, DataType dtype)
{
    (void)weight_sparsity; // fixed-ratio design: actual sparsity is
                           // clamped to the 75% format either way
    DenseGemmDevice device(cfg);
    KernelStats stats = device.timeOnly(m, n, k, dtype);
    stats.name = "zhu_sparse_tc";
    stats.compute_us /= kZhuEffectiveSpeedup;

    // Weight operand moves condensed: 25% of the values at the lane
    // width plus 4-bit per-value lane indices; activations and
    // output stay dense at their datatype widths.
    MemoryModel mem(cfg);
    const double in_bytes = dataTypeValueBytes(dtype);
    const double bytes_a = static_cast<double>(m) * k * in_bytes;
    const double bytes_b = static_cast<double>(k) * n *
                           (1.0 - kZhuPruneRatio) * (in_bytes + 0.5);
    const double bytes_d =
        static_cast<double>(m) * n * dataTypeOutputBytes(dtype);
    stats.dram_bytes =
        mem.gemmTrafficBytes(m, n, bytes_a, bytes_b, bytes_d);
    stats.memory_us = mem.dramTimeUs(stats.dram_bytes);
    stats.bound = stats.compute_us > stats.memory_us ? Bound::Compute
                                                     : Bound::Memory;
    return stats;
}

Matrix<float>
zhuGemmFunctional(const Matrix<float> &a, const Matrix<float> &b,
                  int vec_len, const QuantSpec &spec_a,
                  const QuantSpec &spec_b)
{
    Matrix<float> pruned = vectorWisePrune(b, vec_len, kZhuPruneRatio);
    return refGemmQuant(a, pruned, spec_a, spec_b);
}

} // namespace dstc
