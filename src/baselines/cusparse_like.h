/**
 * @file
 * cuSparse-like CSR SpGEMM baseline.
 *
 * Functional path: Gustavson's row-wise product on CSR operands
 * (what csrgemm computes). Timing path: a CUDA-core cost model with
 * the three characteristic terms of the library implementation —
 * multi-kernel fixed overhead (symbolic + numeric phases), a per-row
 * setup cost, and a per-FLOP cost inflated by the data-dependent
 * gather/hash traffic. The constants are calibrated against the
 * paper's observations for 4096^3 with B at 99% sparsity: ~1.75x
 * *slower* than CUTLASS at A=90%, break-even near A~95%, and only
 * ~1.67x faster at A=99.9% (Sec. VI-C); they are fixed here, not
 * tuned per experiment.
 */
#ifndef DSTC_BASELINES_CUSPARSE_LIKE_H
#define DSTC_BASELINES_CUSPARSE_LIKE_H

#include "common/datatype.h"
#include "sparse/csr.h"
#include "timing/gpu_config.h"
#include "timing/stats.h"

namespace dstc {

/**
 * Functional Gustavson SpGEMM: D = A x B on CSR operands. The CSR
 * encodings carry raw FP32 values (dtype-invariant, so cached CSR
 * operands are shareable across datatypes); the specs quantize each
 * value as it is consumed, and integer specs apply the deferred
 * sa * sb output scale after the numeric phase. The defaults are
 * FP32 — the library's CUDA-core datapath never narrows its
 * operands, unlike the tensor-core engines whose default is FP16.
 */
CsrMatrix csrGemm(const CsrMatrix &a, const CsrMatrix &b,
                  const QuantSpec &spec_a = {DataType::Fp32, 1.0f},
                  const QuantSpec &spec_b = {DataType::Fp32, 1.0f});

/**
 * Timing model of the library SpGEMM.
 *
 * @param rows      rows of A (row-parallel phases scale with this)
 * @param products  total multiply count: sum over a_ik of nnz(B row k)
 * @param nnz_d     non-zeros of the output
 */
KernelStats cusparseGemmTime(const GpuConfig &cfg, int64_t rows,
                             int64_t products, int64_t nnz_d);

/**
 * Convenience: count products and output non-zeros of A x B from the
 * operand patterns, then apply the timing model.
 */
KernelStats cusparseGemmTime(const GpuConfig &cfg, const CsrMatrix &a,
                             const CsrMatrix &b);

/**
 * Expected-value timing for uniformly random patterns, avoiding
 * materialization in big sweeps: products ~ nnzA * nnzB / k, output
 * density from the complement-product formula.
 */
KernelStats cusparseGemmTimeExpected(const GpuConfig &cfg, int64_t m,
                                     int64_t n, int64_t k,
                                     double density_a, double density_b);

/**
 * Functional CSR SpMM: D = A x B with A in CSR and B dense. Row-wise
 * with ascending column indices, so each output cell accumulates its
 * products in ascending-k order from spec-quantized operands — the
 * same order and values as the dual-sparse SpMM paths, hence bitwise
 * identical output (integer specs apply the deferred sa * sb scale
 * after accumulation, also matching).
 */
Matrix<float> csrSpmm(const CsrMatrix &a, const Matrix<float> &b,
                      const QuantSpec &spec_a = {DataType::Fp32, 1.0f},
                      const QuantSpec &spec_b = {DataType::Fp32, 1.0f});

/**
 * Timing model of the library SpMM (cusparseSpMM-style): a single
 * row-parallel CUDA-core kernel — no symbolic phase, no hash
 * bookkeeping — with a per-row setup term, a per-product term (the
 * dense-B gathers vectorize far better than SpGEMM's hash inserts),
 * and a dense m x n output write.
 *
 * @param rows      rows of A
 * @param products  total multiply count: nnz(A) * n
 * @param out_cells m * n dense output elements
 */
KernelStats cusparseSpmmTime(const GpuConfig &cfg, int64_t rows,
                             int64_t products, int64_t out_cells);

} // namespace dstc

#endif // DSTC_BASELINES_CUSPARSE_LIKE_H
