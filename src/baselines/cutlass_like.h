/**
 * @file
 * CUTLASS-like dense GEMM baseline (Sec. VI-A): a tuned dense
 * tensor-core kernel sustaining a fixed fraction of peak. This is
 * the normalization baseline of Fig. 21 and the Dense GEMM cases of
 * Fig. 22.
 */
#ifndef DSTC_BASELINES_CUTLASS_LIKE_H
#define DSTC_BASELINES_CUTLASS_LIKE_H

#include <cstdint>

#include "common/datatype.h"
#include "timing/gpu_config.h"
#include "timing/stats.h"

namespace dstc {

/** Kernel time of a CUTLASS-like dense m x n x k GEMM at the given
 *  datatype (FP16 default; int8/int4 run at the IMMA rates). */
KernelStats cutlassGemm(const GpuConfig &cfg, int64_t m, int64_t n,
                        int64_t k, DataType dtype = DataType::Fp16);

} // namespace dstc

#endif // DSTC_BASELINES_CUTLASS_LIKE_H
