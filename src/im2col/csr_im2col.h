/**
 * @file
 * CSR-encoded im2col — the comparison point of Table III.
 *
 * The input feature map is CSR-encoded per (n, c) plane (rows =
 * image rows). Building the lowered matrix then requires locating
 * (ih, iw) inside a compressed row for every window element: each
 * access costs data-dependent reads of row_ptr and col_idx, which is
 * the overhead the paper measures at 101x dense at 0% sparsity and
 * still 1.2x at 99.9%.
 */
#ifndef DSTC_IM2COL_CSR_IM2COL_H
#define DSTC_IM2COL_CSR_IM2COL_H

#include <cstdint>
#include <vector>

#include "im2col/conv_shape.h"
#include "sparse/csr.h"
#include "tensor/matrix.h"
#include "tensor/tensor4d.h"

namespace dstc {

/** CSR encoding of an NCHW tensor: one CSR (h x w) per (n, c). */
class CsrFeatureMap
{
  public:
    static CsrFeatureMap encode(const Tensor4d &input);

    const CsrMatrix &
    plane(int n, int c) const
    {
        return planes_[static_cast<size_t>(n) * channels_ + c];
    }

    int channels() const { return channels_; }

  private:
    int channels_ = 0;
    std::vector<CsrMatrix> planes_;
};

/**
 * im2col from the CSR feature map to the dense lowered matrix.
 * @p probes, if non-null, accumulates the number of data-dependent
 * col_idx reads performed (the decoding overhead metric).
 */
Matrix<float> im2colFromCsr(const CsrFeatureMap &fmap,
                            const ConvShape &shape,
                            int64_t *probes = nullptr);

} // namespace dstc

#endif // DSTC_IM2COL_CSR_IM2COL_H
