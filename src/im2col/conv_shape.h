/**
 * @file
 * Convolution shape algebra: the lowered-GEMM dimensions of the
 * im2col transformation (Fig. 1) and the data-inflation factor that
 * makes explicit im2col expensive.
 */
#ifndef DSTC_IM2COL_CONV_SHAPE_H
#define DSTC_IM2COL_CONV_SHAPE_H

#include <cstdint>
#include <string>

#include "tensor/reference.h"

namespace dstc {

/** Full description of a convolution layer instance. */
struct ConvShape
{
    int batch = 1;
    int in_c = 1;
    int in_h = 1;
    int in_w = 1;
    int out_c = 1;
    int kernel = 3;
    int stride = 1;
    int pad = 0;

    int outH() const { return convOutDim(in_h, kernel, stride, pad); }
    int outW() const { return convOutDim(in_w, kernel, stride, pad); }

    /** Rows of the lowered feature map: one per output pixel. */
    int64_t
    loweredRows() const
    {
        return static_cast<int64_t>(batch) * outH() * outW();
    }

    /** Cols of the lowered feature map: one per (c, kh, kw). */
    int64_t
    loweredCols() const
    {
        return static_cast<int64_t>(in_c) * kernel * kernel;
    }

    /** Input feature-map elements. */
    int64_t
    inputElems() const
    {
        return static_cast<int64_t>(batch) * in_c * in_h * in_w;
    }

    /** Output feature-map elements. */
    int64_t
    outputElems() const
    {
        return static_cast<int64_t>(batch) * out_c * outH() * outW();
    }

    /** Lowered-matrix size over input size (~kernel^2 for stride 1). */
    double
    inflation() const
    {
        return static_cast<double>(loweredRows()) * loweredCols() /
               static_cast<double>(inputElems());
    }

    /** Direct-convolution parameter view. */
    Conv2dParams
    params() const
    {
        return {in_c, out_c, kernel, stride, pad};
    }

    /** MACs of the convolution = lowered GEMM M*N*K. */
    int64_t
    macs() const
    {
        return loweredRows() * loweredCols() * out_c;
    }

    std::string str() const;
};

} // namespace dstc

#endif // DSTC_IM2COL_CONV_SHAPE_H
