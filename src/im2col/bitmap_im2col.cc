#include "im2col/bitmap_im2col.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/logging.h"
#include "core/thread_pool.h"

namespace dstc {

BitmapFeatureMap
BitmapFeatureMap::encode(const Tensor4d &input)
{
    BitmapFeatureMap fmap;
    fmap.channels_ = input.c();
    fmap.planes_.reserve(static_cast<size_t>(input.n()) * input.c());
    // NCHW planes are contiguous h x w blocks: encode each straight
    // from the tensor storage, 64 elements per bitmap word.
    const size_t plane_elems =
        static_cast<size_t>(input.h()) * input.w();
    const float *data = input.data().data();
    for (int n = 0; n < input.n(); ++n) {
        for (int c = 0; c < input.c(); ++c) {
            const size_t offset =
                (static_cast<size_t>(n) * input.c() + c) * plane_elems;
            fmap.planes_.push_back(BitmapMatrix::encodePlane(
                data + offset, input.h(), input.w()));
        }
    }
    return fmap;
}

size_t
BitmapFeatureMap::encodedBytes() const
{
    size_t bytes = 0;
    for (const auto &p : planes_)
        bytes += p.encodedBytes();
    return bytes;
}

Matrix<float>
LoweredFeatureMap::decode() const
{
    Matrix<float> dense(rows, cols);
    for (int j = 0; j < cols; ++j) {
        const LoweredColumn &col = columns[j];
        size_t vi = 0;
        for (int r = 0; r < rows; ++r) {
            if (getBit(col.bits, r)) {
                DSTC_ASSERT(vi < col.values.size());
                dense.at(r, j) = col.values[vi++];
            }
        }
        DSTC_ASSERT(vi == col.values.size(),
                    "column ", j, " bitmap/value mismatch");
    }
    return dense;
}

int
LoweredFeatureMap::columnNnz(int j) const
{
    return popcountRange(columns[j].bits, 0,
                         static_cast<size_t>(rows));
}

int64_t
LoweredFeatureMap::totalNnz() const
{
    int64_t total = 0;
    for (int j = 0; j < cols; ++j)
        total += columnNnz(j);
    return total;
}

TwoLevelBitmapMatrix
LoweredFeatureMap::toTwoLevel(int tile_m, int tile_k,
                              int num_workers) const
{
    DSTC_ASSERT(tile_m > 0 && tile_k > 0);
    const int tiles_m = ceilDiv(rows, tile_m);
    const int tiles_k = ceilDiv(cols, tile_k);
    std::vector<BitmapMatrix> tiles(static_cast<size_t>(tiles_m) *
                                    tiles_k);

    // Each k-group of tile_k lowered columns fills a disjoint column
    // of tiles, so groups partition over workers with no reduction
    // needed — every tile is written exactly once. Two passes: the
    // word-extract pass records every tile-line chunk and its
    // popcount, then the fill pass copies each tile's parts into
    // exactly-sized arrays (no growth checks in either loop).
    auto run_group = [&](int64_t tkl) {
        const int tk = static_cast<int>(tkl);
        const int j0 = tk * tile_k;
        const int j1 = std::min(cols, j0 + tile_k);
        const int g_cols = j1 - j0;

        // Pass 1: extract the (column, tile-row) chunks. The 32-row
        // warp tile is the production case: two tile slices per
        // 64-bit column word, split without per-slice shift arithmetic;
        // other tile heights fall back to generic word extraction.
        const int wpl = ceilDiv(tile_m, 64); // words per tile line
        std::vector<uint64_t> chunks(
            static_cast<size_t>(g_cols) * tiles_m * wpl, 0);
        std::vector<int> counts(static_cast<size_t>(g_cols) * tiles_m,
                                0);
        std::vector<int> src_offsets(
            static_cast<size_t>(g_cols) * tiles_m, 0);
        std::vector<int64_t> tile_nnz(static_cast<size_t>(tiles_m),
                                      0);
        for (int j = j0; j < j1; ++j) {
            const LoweredColumn &col = columns[j];
            const size_t base = static_cast<size_t>(j - j0) * tiles_m;
            int prefix = 0;
            if (tile_m == 32) {
                // One column word holds two consecutive 32-row
                // slices; the tail tile keeps whatever bits remain
                // (the column bitmap is zero past `rows`).
                for (int ti = 0; ti < tiles_m; ++ti) {
                    const uint64_t word =
                        col.bits[static_cast<size_t>(ti) >> 1];
                    const uint64_t chunk = (ti & 1)
                                               ? word >> 32
                                               : word & 0xffffffffu;
                    chunks[base + ti] = chunk;
                    const int cnt = popcount64(chunk);
                    counts[base + ti] = cnt;
                    src_offsets[base + ti] = prefix;
                    tile_nnz[static_cast<size_t>(ti)] += cnt;
                    prefix += cnt;
                }
            } else {
                auto word_at = [&](size_t w) -> uint64_t {
                    return w < col.bits.size() ? col.bits[w] : 0;
                };
                for (int ti = 0; ti < tiles_m; ++ti) {
                    const int r0 = ti * tile_m;
                    const int t_rows = std::min(tile_m, rows - r0);
                    int cnt = 0;
                    for (int t = 0; t < t_rows; t += 64) {
                        const int src = r0 + t;
                        const int off = src & 63;
                        uint64_t chunk = word_at(src >> 6) >> off;
                        if (off != 0)
                            chunk |= word_at((src >> 6) + 1)
                                     << (64 - off);
                        chunk &= lowMask64(std::min(64, t_rows - t));
                        chunks[(base + ti) * wpl + (t >> 6)] = chunk;
                        cnt += popcount64(chunk);
                    }
                    counts[base + ti] = cnt;
                    src_offsets[base + ti] = prefix;
                    tile_nnz[static_cast<size_t>(ti)] += cnt;
                    prefix += cnt;
                }
            }
            DSTC_ASSERT(prefix == static_cast<int>(col.values.size()),
                        "toTwoLevel requires a value-gathered "
                        "lowering (column ", j, ")");
        }

        // Pass 2: assemble each tile from exactly-sized parts. The
        // condensed values of a (column, tile-row) slice are the
        // next `cnt` entries of the column's packed arrays (the
        // prefix-popcount address-offset trick, per tile boundary).
        for (int ti = 0; ti < tiles_m; ++ti) {
            const int t_rows = std::min(tile_m, rows - ti * tile_m);
            const int t_wpl = ceilDiv(t_rows, 64);
            std::vector<uint64_t> bits(
                static_cast<size_t>(g_cols) * t_wpl);
            std::vector<int> offsets(static_cast<size_t>(g_cols) + 1);
            const size_t nnz =
                static_cast<size_t>(tile_nnz[static_cast<size_t>(ti)]);
            std::vector<float> values(nnz);
            std::vector<float> fp16(nnz);
            size_t vi = 0;
            for (int j = j0; j < j1; ++j) {
                const LoweredColumn &col = columns[j];
                const size_t slot =
                    static_cast<size_t>(j - j0) * tiles_m + ti;
                for (int w = 0; w < t_wpl; ++w)
                    bits[static_cast<size_t>(j - j0) * t_wpl + w] =
                        chunks[slot * wpl + w];
                const int cnt = counts[slot];
                const int src = src_offsets[slot];
                std::copy(col.values.begin() + src,
                          col.values.begin() + src + cnt,
                          values.begin() + vi);
                std::copy(col.values_fp16.begin() + src,
                          col.values_fp16.begin() + src + cnt,
                          fp16.begin() + vi);
                vi += static_cast<size_t>(cnt);
                offsets[static_cast<size_t>(j - j0) + 1] =
                    static_cast<int>(vi);
            }
            tiles[static_cast<size_t>(ti) * tiles_k + tk] =
                BitmapMatrix::fromPacked(
                    t_rows, g_cols, Major::Col, std::move(bits),
                    std::move(values), std::move(fp16),
                    std::move(offsets));
        }
    };

    int max_workers = 1;
    ThreadPool *pool = resolveTilePool(num_workers, &max_workers);
    parallelFor(pool, tiles_k, max_workers, run_group);

    return TwoLevelBitmapMatrix::fromTiles(rows, cols, tile_m, tile_k,
                                           Major::Col,
                                           std::move(tiles));
}

namespace {

/** Appends bit runs into a packed column bitmap. */
class BitWriter
{
  public:
    explicit BitWriter(std::vector<uint64_t> &bits) : bits_(bits) {}

    /** Pre-size the backing store for @p total bits: every append
     *  then writes in place (no reallocation in the row loop). */
    BitWriter(std::vector<uint64_t> &bits, size_t total) : bits_(bits)
    {
        bits_.assign((total >> 6) + 2, 0);
    }

    /** Append the low @p count bits of @p chunk (count <= 64). */
    void
    append(uint64_t chunk, int count)
    {
        DSTC_ASSERT(count >= 0 && count <= 64);
        if (count == 0)
            return;
        chunk &= lowMask64(count);
        size_t word = pos_ >> 6;
        int offset = static_cast<int>(pos_ & 63);
        if (word >= bits_.size())
            bits_.resize(word + 2, 0);
        bits_[word] |= chunk << offset;
        if (offset + count > 64) {
            if (word + 1 >= bits_.size())
                bits_.resize(word + 2, 0);
            bits_[word + 1] |= chunk >> (64 - offset);
        }
        pos_ += count;
    }

    /** Append @p count zero bits. */
    void
    skip(int count)
    {
        pos_ += count;
        size_t need = (pos_ + 63) >> 6;
        if (need > bits_.size())
            bits_.resize(need, 0);
    }

  private:
    std::vector<uint64_t> &bits_;
    size_t pos_ = 0;
};

/**
 * Extract bits [start, start + count) of a row bitmap and append
 * them to @p writer; positions outside [0, row_len) read as zero
 * (padding). Counts the word operations performed into @p ops and
 * returns the popcount of the extracted window — the S4 value count
 * falls out of the gathered words for free. No staging buffer: each
 * word goes straight to the column bitmap.
 */
int
extractRowBitsInto(std::span<const uint64_t> row, int row_len,
                   int start, int count, BitWriter &writer,
                   int64_t &ops)
{
    auto word_at = [&](int w) -> uint64_t {
        if (w < 0 || w >= static_cast<int>(row.size()))
            return 0;
        return row[w];
    };
    int hits = 0;
    for (int t = 0; t < count; t += 64) {
        const int want = std::min(64, count - t);
        const int src = start + t;
        // Gather up to two source words and shift into place: the
        // "shift left / apply mask" steps of Fig. 11b. Out-of-range
        // source words read as zero, which realizes the padding.
        const int w0 = src >= 0 ? src >> 6 : -ceilDiv(-src, 64);
        const int off = src - (w0 << 6);
        uint64_t chunk = word_at(w0) >> off;
        if (off != 0)
            chunk |= word_at(w0 + 1) << (64 - off);
        ops += 3;
        // Clamp to the valid tail of the row.
        if (src + want > row_len) {
            const int valid = row_len - src;
            chunk &= valid <= 0 ? 0 : lowMask64(valid);
            ++ops;
        }
        chunk &= lowMask64(want);
        hits += popcount64(chunk);
        writer.append(chunk, want);
    }
    return hits;
}

/**
 * One source word of a strided window gather: which row word to
 * read, the stride mask selecting the window positions it holds
 * (clipped at the window ends), and the compressor that compacts
 * those bits LSB-first. The same geometry repeats for every
 * feature-map row of a lowered column, so the plan — including the
 * parallel-suffix masks a portable PEXT needs — is built once per
 * column and reused batch * out_h times.
 */
struct StridedWordStep
{
    int w = 0;      ///< source word index (may be out of range)
    Pext64 extract; ///< clipped stride mask + compressor
    int n_out = 0;  ///< window bits this word contributes
};

/** Lay out the per-word steps of a stride-s gather of window
 *  positions iw = start + ow*stride, ow in [0, out_w). */
std::vector<StridedWordStep>
planStridedGather(int start, int stride, int out_w)
{
    auto floor64 = [](int x) {
        return x >= 0 ? x >> 6 : -((-x + 63) >> 6);
    };
    const int last = start + (out_w - 1) * stride;
    const int res = ((start % stride) + stride) % stride;
    std::vector<StridedWordStep> plan;
    plan.reserve(static_cast<size_t>(floor64(last) -
                                     floor64(start) + 1));
    for (int w = floor64(start); w <= floor64(last); ++w) {
        const int64_t wbase = static_cast<int64_t>(w) << 6;
        // First in-word position congruent to the window residue.
        const int phase = static_cast<int>(
            ((res - wbase) % stride + stride) % stride);
        uint64_t mask = strideMask64(phase, stride);
        if (wbase < start)
            mask &= ~lowMask64(static_cast<int>(start - wbase));
        if (wbase + 63 > last)
            mask &= lowMask64(static_cast<int>(last - wbase) + 1);
        plan.push_back(
            {w, Pext64(mask), popcount64(mask)});
    }
    return plan;
}

/**
 * Word-parallel stride-s gather of one feature-map row: each plan
 * step selects the window bits its source word holds via the stride
 * mask and compacts them into consecutive output bits with PEXT —
 * the deinterleave the per-bit probe loop used to do one position
 * at a time. Values ride along by rank: a running popcount of the
 * full row words gives each hit's index into the line's condensed
 * arrays with one POPC per hit, instead of a prefix scan from
 * position zero. Out-of-range source words read as zero, which
 * realizes the padding for free. Bit-for-bit identical to the
 * per-bit gather.
 */
void
gatherStridedRowWord(const BitmapMatrix &plane, int ih, int row_len,
                     const std::vector<StridedWordStep> &plan,
                     bool gather_values, BitWriter &writer,
                     LoweredColumn &out, int64_t &ops)
{
    const auto row = plane.lineBits(ih);
    auto word_at = [&](int w) -> uint64_t {
        return w >= 0 && w < static_cast<int>(row.size()) ? row[w]
                                                          : 0;
    };
    const auto vals = plane.lineValues(ih);
    const auto vals16 = plane.lineValuesFp16(ih);
    // Rank of the row prefix [0, 64w) for the current word w:
    // initialized once at the first word holding a hit, advanced by
    // one full-word POPC per word after that (bits past row_len are
    // zero by construction, so whole words are safe to count).
    int prefix = -1;
    for (const StridedWordStep &step : plan) {
        const uint64_t word = word_at(step.w);
        const uint64_t hits = word & step.extract.mask();
        writer.append(step.extract.apply(hits), step.n_out);
        ops += 3; // AND, PEXT, append
        if (gather_values && step.w >= 0) {
            if (hits != 0) {
                if (prefix < 0)
                    prefix = plane.linePopcount(
                        ih, 0,
                        std::min(row_len, step.w * 64));
                uint64_t h = hits;
                while (h) {
                    const int b = std::countr_zero(h);
                    h &= h - 1;
                    const int idx =
                        prefix + popcount64(word & lowMask64(b));
                    out.values.push_back(vals[idx]);
                    out.values_fp16.push_back(vals16[idx]);
                    ops += 2; // rank POPC + condensed load
                }
            }
            if (prefix >= 0)
                prefix += popcount64(word);
        }
    }
}

/** Lower one (c, kh, kw) column of the feature map. */
void
lowerColumn(const BitmapFeatureMap &fmap, const ConvShape &shape,
            bool gather_values, bool word_strided, int c, int kh,
            int kw, LoweredColumn &out, int64_t &ops)
{
    const int out_h = shape.outH();
    const int out_w = shape.outW();
    BitWriter writer(out.bits,
                     static_cast<size_t>(shape.loweredRows()));
    if (gather_values) {
        // Size the condensed arrays for the expected hit count (the
        // plane density over the column's windows) so the row loop
        // appends without reallocating.
        const size_t expect =
            static_cast<size_t>(shape.loweredRows() / 4 + 16);
        out.values.reserve(expect);
        out.values_fp16.reserve(expect);
    }
    // The strided gather geometry is identical for every feature-map
    // row of this column: plan it (masks + PEXT compressors) once.
    std::vector<StridedWordStep> strided_plan;
    if (shape.stride > 1 && word_strided)
        strided_plan = planStridedGather(kw - shape.pad, shape.stride,
                                         out_w);
    for (int n = 0; n < shape.batch; ++n) {
        const BitmapMatrix &plane = fmap.plane(n, c);
        for (int oh = 0; oh < out_h; ++oh) {
            const int ih = oh * shape.stride + kh - shape.pad;
            if (ih < 0 || ih >= shape.in_h) {
                writer.skip(out_w);
                continue;
            }
            const int start = kw - shape.pad;
            if (shape.stride == 1) {
                // Fast path: the window is a contiguous slice of the
                // row bitmap; its popcount (the S4 value count) falls
                // out of the extraction.
                const int cnt =
                    extractRowBitsInto(plane.lineBits(ih), shape.in_w,
                                       start, out_w, writer, ops);
                // Address offset by popcount of the prefix (S3), then
                // take the masked values in order (S4) — sliced
                // straight from the plane's packed arrays into the
                // column tail, FP32 and the encode-time FP16 mirror
                // together.
                const int lo = std::max(0, start);
                const int hi = std::min(shape.in_w, start + out_w);
                if (gather_values && hi > lo) {
                    ops += 2; // 2x POPC
                    if (cnt > 0) {
                        const int offset =
                            plane.linePopcount(ih, 0, lo);
                        const auto vals = plane.lineValues(ih);
                        const auto vals16 = plane.lineValuesFp16(ih);
                        out.values.insert(
                            out.values.end(), vals.begin() + offset,
                            vals.begin() + offset + cnt);
                        out.values_fp16.insert(
                            out.values_fp16.end(),
                            vals16.begin() + offset,
                            vals16.begin() + offset + cnt);
                    }
                }
            } else if (word_strided) {
                gatherStridedRowWord(plane, ih, shape.in_w,
                                     strided_plan, gather_values,
                                     writer, out, ops);
            } else {
                // The retained per-bit gather: bitmap tests + one
                // prefix popcount per hit. This is the scalar
                // reference runScalar pins against.
                uint64_t chunk = 0;
                int filled = 0;
                for (int ow = 0; ow < out_w; ++ow) {
                    const int iw = ow * shape.stride + start;
                    bool set = iw >= 0 && iw < shape.in_w &&
                               plane.bit(ih, iw);
                    ++ops;
                    if (set) {
                        chunk |= uint64_t{1} << filled;
                        if (gather_values) {
                            const int off =
                                plane.linePopcount(ih, 0, iw);
                            out.values.push_back(
                                plane.lineValues(ih)[off]);
                            out.values_fp16.push_back(
                                plane.lineValuesFp16(ih)[off]);
                        }
                        ++ops;
                    }
                    if (++filled == 64) {
                        writer.append(chunk, 64);
                        chunk = 0;
                        filled = 0;
                    }
                }
                if (filled > 0)
                    writer.append(chunk, filled);
            }
        }
    }
}

} // namespace

LoweredFeatureMap
im2colFromBitmap(const BitmapFeatureMap &fmap, const ConvShape &shape,
                 bool gather_values, int num_workers,
                 bool word_strided)
{
    LoweredFeatureMap lowered;
    lowered.rows = static_cast<int>(shape.loweredRows());
    lowered.cols = static_cast<int>(shape.loweredCols());
    lowered.columns.resize(lowered.cols);

    // Lowered columns are independent: each is produced from the
    // read-only planes into its own slot, so the column loop
    // partitions over workers; the per-column op counters reduce in
    // column order below, keeping the cost metric (like the values)
    // identical for any worker count.
    std::vector<int64_t> column_ops(
        static_cast<size_t>(lowered.cols), 0);
    const int kk = shape.kernel * shape.kernel;
    auto run_column = [&](int64_t col) {
        const int c = static_cast<int>(col) / kk;
        const int kh = (static_cast<int>(col) % kk) / shape.kernel;
        const int kw = static_cast<int>(col) % shape.kernel;
        lowerColumn(fmap, shape, gather_values, word_strided, c, kh,
                    kw, lowered.columns[static_cast<size_t>(col)],
                    column_ops[static_cast<size_t>(col)]);
        // Normalize the bitmap length to cover all M rows.
        lowered.columns[static_cast<size_t>(col)].bits.resize(
            ceilDiv(static_cast<size_t>(lowered.rows), size_t{64}),
            0);
    };

    int max_workers = 1;
    ThreadPool *pool = resolveTilePool(num_workers, &max_workers);
    parallelFor(pool, lowered.cols, max_workers, run_column);

    for (int64_t ops : column_ops)
        lowered.register_ops += ops;
    return lowered;
}

} // namespace dstc
