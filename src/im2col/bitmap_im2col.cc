#include "im2col/bitmap_im2col.h"

#include "common/bitutil.h"
#include "common/logging.h"

namespace dstc {

BitmapFeatureMap
BitmapFeatureMap::encode(const Tensor4d &input)
{
    BitmapFeatureMap fmap;
    fmap.channels_ = input.c();
    fmap.planes_.reserve(static_cast<size_t>(input.n()) * input.c());
    for (int n = 0; n < input.n(); ++n) {
        for (int c = 0; c < input.c(); ++c) {
            Matrix<float> plane(input.h(), input.w());
            for (int h = 0; h < input.h(); ++h)
                for (int w = 0; w < input.w(); ++w)
                    plane.at(h, w) = input.at(n, c, h, w);
            fmap.planes_.push_back(
                BitmapMatrix::encode(plane, Major::Row));
        }
    }
    return fmap;
}

size_t
BitmapFeatureMap::encodedBytes() const
{
    size_t bytes = 0;
    for (const auto &p : planes_)
        bytes += p.encodedBytes();
    return bytes;
}

Matrix<float>
LoweredFeatureMap::decode() const
{
    Matrix<float> dense(rows, cols);
    for (int j = 0; j < cols; ++j) {
        const LoweredColumn &col = columns[j];
        size_t vi = 0;
        for (int r = 0; r < rows; ++r) {
            if (getBit(col.bits, r)) {
                DSTC_ASSERT(vi < col.values.size());
                dense.at(r, j) = col.values[vi++];
            }
        }
        DSTC_ASSERT(vi == col.values.size(),
                    "column ", j, " bitmap/value mismatch");
    }
    return dense;
}

int
LoweredFeatureMap::columnNnz(int j) const
{
    return popcountRange(columns[j].bits, 0,
                         static_cast<size_t>(rows));
}

int64_t
LoweredFeatureMap::totalNnz() const
{
    int64_t total = 0;
    for (int j = 0; j < cols; ++j)
        total += columnNnz(j);
    return total;
}

namespace {

/** Appends bit runs into a packed column bitmap. */
class BitWriter
{
  public:
    explicit BitWriter(std::vector<uint64_t> &bits) : bits_(bits) {}

    /** Append the low @p count bits of @p chunk (count <= 64). */
    void
    append(uint64_t chunk, int count)
    {
        DSTC_ASSERT(count >= 0 && count <= 64);
        if (count == 0)
            return;
        chunk &= lowMask64(count);
        size_t word = pos_ >> 6;
        int offset = static_cast<int>(pos_ & 63);
        if (word >= bits_.size())
            bits_.resize(word + 2, 0);
        bits_[word] |= chunk << offset;
        if (offset + count > 64) {
            if (word + 1 >= bits_.size())
                bits_.resize(word + 2, 0);
            bits_[word + 1] |= chunk >> (64 - offset);
        }
        pos_ += count;
    }

    /** Append @p count zero bits. */
    void
    skip(int count)
    {
        pos_ += count;
        size_t need = (pos_ + 63) >> 6;
        if (need > bits_.size())
            bits_.resize(need, 0);
    }

  private:
    std::vector<uint64_t> &bits_;
    size_t pos_ = 0;
};

/**
 * Extract bits [start, start + count) of a row bitmap into packed
 * words; positions outside [0, row_len) read as zero (padding).
 * Counts the word operations performed into @p ops.
 */
std::vector<uint64_t>
extractRowBits(std::span<const uint64_t> row, int row_len, int start,
               int count, int64_t &ops)
{
    std::vector<uint64_t> out(ceilDiv(count, 64), 0);
    auto word_at = [&](int w) -> uint64_t {
        if (w < 0 || w >= static_cast<int>(row.size()))
            return 0;
        return row[w];
    };
    for (int t = 0; t < count; t += 64) {
        const int want = std::min(64, count - t);
        const int src = start + t;
        // Gather up to two source words and shift into place: the
        // "shift left / apply mask" steps of Fig. 11b. Out-of-range
        // source words read as zero, which realizes the padding.
        const int w0 = src >= 0 ? src >> 6 : -ceilDiv(-src, 64);
        const int off = src - (w0 << 6);
        uint64_t chunk = word_at(w0) >> off;
        if (off != 0)
            chunk |= word_at(w0 + 1) << (64 - off);
        ops += 3;
        // Clamp to the valid tail of the row.
        if (src + want > row_len) {
            const int valid = row_len - src;
            chunk &= valid <= 0 ? 0 : lowMask64(valid);
            ++ops;
        }
        out[t >> 6] = chunk & lowMask64(want);
    }
    return out;
}

} // namespace

LoweredFeatureMap
im2colFromBitmap(const BitmapFeatureMap &fmap, const ConvShape &shape,
                 bool gather_values)
{
    LoweredFeatureMap lowered;
    lowered.rows = static_cast<int>(shape.loweredRows());
    lowered.cols = static_cast<int>(shape.loweredCols());
    lowered.columns.resize(lowered.cols);
    const int out_h = shape.outH();
    const int out_w = shape.outW();

    int col = 0;
    for (int c = 0; c < shape.in_c; ++c) {
        for (int kh = 0; kh < shape.kernel; ++kh) {
            for (int kw = 0; kw < shape.kernel; ++kw, ++col) {
                LoweredColumn &out = lowered.columns[col];
                BitWriter writer(out.bits);
                for (int n = 0; n < shape.batch; ++n) {
                    const BitmapMatrix &plane = fmap.plane(n, c);
                    for (int oh = 0; oh < out_h; ++oh) {
                        const int ih =
                            oh * shape.stride + kh - shape.pad;
                        if (ih < 0 || ih >= shape.in_h) {
                            writer.skip(out_w);
                            continue;
                        }
                        const int start = kw - shape.pad;
                        if (shape.stride == 1) {
                            // Fast path: the window is a contiguous
                            // slice of the row bitmap.
                            auto bits = extractRowBits(
                                plane.lineBits(ih), shape.in_w, start,
                                out_w, lowered.register_ops);
                            for (int t = 0; t < out_w; t += 64)
                                writer.append(bits[t >> 6],
                                              std::min(64, out_w - t));
                            // Address offset by popcount of the
                            // prefix (S3), then take the masked
                            // values in order (S4).
                            const int lo = std::max(0, start);
                            const int hi = std::min(shape.in_w,
                                                    start + out_w);
                            if (gather_values && hi > lo) {
                                auto vals = plane.lineValuesRange(
                                    ih, lo, hi);
                                lowered.register_ops += 2; // 2x POPC
                                out.values.insert(out.values.end(),
                                                  vals.begin(),
                                                  vals.end());
                            }
                        } else {
                            // Strided windows gather bit-by-bit but
                            // still via bitmap tests + one popcount
                            // per hit.
                            uint64_t chunk = 0;
                            int filled = 0;
                            for (int ow = 0; ow < out_w; ++ow) {
                                const int iw =
                                    ow * shape.stride + start;
                                bool set = iw >= 0 &&
                                           iw < shape.in_w &&
                                           plane.bit(ih, iw);
                                ++lowered.register_ops;
                                if (set) {
                                    chunk |= uint64_t{1} << filled;
                                    if (gather_values) {
                                        const int off =
                                            plane.linePopcount(ih, 0,
                                                               iw);
                                        out.values.push_back(
                                            plane.lineValues(ih)[off]);
                                    }
                                    ++lowered.register_ops;
                                }
                                if (++filled == 64) {
                                    writer.append(chunk, 64);
                                    chunk = 0;
                                    filled = 0;
                                }
                            }
                            if (filled > 0)
                                writer.append(chunk, filled);
                        }
                    }
                }
                // Normalize the bitmap length to cover all M rows.
                out.bits.resize(ceilDiv(static_cast<size_t>(lowered.rows),
                                        size_t{64}),
                                0);
            }
        }
    }
    return lowered;
}

} // namespace dstc
