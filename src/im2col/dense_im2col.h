/**
 * @file
 * Dense im2col: the explicit row-major lowering (the baseline of
 * Table III) and the outer-product-friendly column-order generation
 * of Fig. 10b, which produces the same lowered matrix column by
 * column so the GEMM can consume it as outer-product operands.
 */
#ifndef DSTC_IM2COL_DENSE_IM2COL_H
#define DSTC_IM2COL_DENSE_IM2COL_H

#include "im2col/conv_shape.h"
#include "tensor/matrix.h"
#include "tensor/tensor4d.h"

namespace dstc {

/**
 * Explicit dense im2col: lowered (M x K) matrix, row r = output
 * pixel (n, oh, ow), column j = (c, kh, kw). Inner-product friendly
 * (Fig. 10a): generated row by row.
 */
Matrix<float> im2colExplicit(const Tensor4d &input,
                             const ConvShape &shape);

/**
 * Outer-product-friendly dense im2col (Fig. 10b): generates the
 * identical lowered matrix, but column by column — each column is a
 * shifted/strided slice of one input plane, which is the access
 * order the outer-product GEMM consumes. Returned in the same
 * logical (M x K) layout so the two variants are comparable.
 */
Matrix<float> im2colOuterFriendly(const Tensor4d &input,
                                  const ConvShape &shape);

/**
 * Flatten OIHW weights (out_c x in_c*k*k) into the transposed
 * (K x N) operand of the lowered GEMM: D = lowered x weightsT.
 */
Matrix<float> flattenWeightsTransposed(const Matrix<float> &weights);

/** Fold the (M x N) lowered-GEMM output back into an NCHW tensor. */
Tensor4d foldLoweredOutput(const Matrix<float> &d, const ConvShape &shape);

} // namespace dstc

#endif // DSTC_IM2COL_DENSE_IM2COL_H
