#include "im2col/dense_im2col.h"

#include <algorithm>

namespace dstc {

Matrix<float>
im2colExplicit(const Tensor4d &input, const ConvShape &shape)
{
    DSTC_ASSERT(input.n() == shape.batch && input.c() == shape.in_c &&
                input.h() == shape.in_h && input.w() == shape.in_w);
    const int out_h = shape.outH();
    const int out_w = shape.outW();
    Matrix<float> lowered(static_cast<int>(shape.loweredRows()),
                          static_cast<int>(shape.loweredCols()));
    // Column-block order with contiguous row segments: for stride 1,
    // each (c, kh, kw) column is a shifted copy of an input row, so
    // the inner loop is a straight std::copy — this is the tuned
    // dense baseline that Table III normalizes against.
    const int k2 = shape.kernel * shape.kernel;
    for (int n = 0; n < shape.batch; ++n) {
        const int row_base = n * out_h * out_w;
        for (int c = 0; c < shape.in_c; ++c) {
            for (int kh = 0; kh < shape.kernel; ++kh) {
                for (int kw = 0; kw < shape.kernel; ++kw) {
                    const int col = c * k2 + kh * shape.kernel + kw;
                    for (int oh = 0; oh < out_h; ++oh) {
                        const int ih = oh * shape.stride + kh -
                                       shape.pad;
                        if (ih < 0 || ih >= shape.in_h)
                            continue;
                        const int row = row_base + oh * out_w;
                        if (shape.stride == 1) {
                            const int start = kw - shape.pad;
                            const int lo = std::max(0, -start);
                            const int hi = std::min(
                                out_w, shape.in_w - start);
                            if (hi <= lo)
                                continue;
                            const float *src =
                                &input.at(n, c, ih, start + lo);
                            for (int ow = lo; ow < hi; ++ow)
                                lowered.data()[static_cast<size_t>(
                                                   row + ow) *
                                                   lowered.cols() +
                                               col] = *src++;
                        } else {
                            for (int ow = 0; ow < out_w; ++ow) {
                                const int iw = ow * shape.stride +
                                               kw - shape.pad;
                                if (iw < 0 || iw >= shape.in_w)
                                    continue;
                                lowered.at(row + ow, col) =
                                    input.at(n, c, ih, iw);
                            }
                        }
                    }
                }
            }
        }
    }
    return lowered;
}

Matrix<float>
im2colOuterFriendly(const Tensor4d &input, const ConvShape &shape)
{
    DSTC_ASSERT(input.n() == shape.batch && input.c() == shape.in_c &&
                input.h() == shape.in_h && input.w() == shape.in_w);
    const int out_h = shape.outH();
    const int out_w = shape.outW();
    Matrix<float> lowered(static_cast<int>(shape.loweredRows()),
                          static_cast<int>(shape.loweredCols()));
    // Column-by-column: the loop nest of the row-major version with
    // the innermost (column) loop permuted outermost (Sec. IV-A).
    int col = 0;
    for (int c = 0; c < shape.in_c; ++c) {
        for (int kh = 0; kh < shape.kernel; ++kh) {
            for (int kw = 0; kw < shape.kernel; ++kw, ++col) {
                int row = 0;
                for (int n = 0; n < shape.batch; ++n) {
                    for (int oh = 0; oh < out_h; ++oh) {
                        const int ih = oh * shape.stride + kh -
                                       shape.pad;
                        if (ih < 0 || ih >= shape.in_h) {
                            row += out_w;
                            continue;
                        }
                        for (int ow = 0; ow < out_w; ++ow, ++row) {
                            const int iw = ow * shape.stride + kw -
                                           shape.pad;
                            if (iw < 0 || iw >= shape.in_w)
                                continue;
                            lowered.at(row, col) =
                                input.at(n, c, ih, iw);
                        }
                    }
                }
            }
        }
    }
    return lowered;
}

Matrix<float>
flattenWeightsTransposed(const Matrix<float> &weights)
{
    return weights.transpose();
}

Tensor4d
foldLoweredOutput(const Matrix<float> &d, const ConvShape &shape)
{
    DSTC_ASSERT(d.rows() == shape.loweredRows() &&
                d.cols() == shape.out_c);
    const int out_h = shape.outH();
    const int out_w = shape.outW();
    const int out_c = shape.out_c;
    Tensor4d out(shape.batch, out_c, out_h, out_w);
    // Per batch image this is a (pixel, channel) -> (channel, pixel)
    // transpose; walk both sides with raw pointers.
    const int pixels = out_h * out_w;
    const float *src = d.data().data();
    float *dst = out.data().data();
    for (int n = 0; n < shape.batch; ++n) {
        const float *src_n =
            src + static_cast<size_t>(n) * pixels * out_c;
        float *dst_n = dst + static_cast<size_t>(n) * out_c * pixels;
        for (int p = 0; p < pixels; ++p)
            for (int oc = 0; oc < out_c; ++oc)
                dst_n[static_cast<size_t>(oc) * pixels + p] =
                    src_n[static_cast<size_t>(p) * out_c + oc];
    }
    return out;
}

} // namespace dstc
