#include "im2col/conv_shape.h"

#include <sstream>

namespace dstc {

std::string
ConvShape::str() const
{
    std::ostringstream oss;
    oss << batch << "x" << in_c << "x" << in_h << "x" << in_w << " * "
        << out_c << "x" << in_c << "x" << kernel << "x" << kernel
        << " (s=" << stride << ", p=" << pad << ")";
    return oss.str();
}

} // namespace dstc
