#include "im2col/csr_im2col.h"

namespace dstc {

CsrFeatureMap
CsrFeatureMap::encode(const Tensor4d &input)
{
    CsrFeatureMap fmap;
    fmap.channels_ = input.c();
    fmap.planes_.reserve(static_cast<size_t>(input.n()) * input.c());
    for (int n = 0; n < input.n(); ++n) {
        for (int c = 0; c < input.c(); ++c) {
            Matrix<float> plane(input.h(), input.w());
            for (int h = 0; h < input.h(); ++h)
                for (int w = 0; w < input.w(); ++w)
                    plane.at(h, w) = input.at(n, c, h, w);
            fmap.planes_.push_back(CsrMatrix::encode(plane));
        }
    }
    return fmap;
}

Matrix<float>
im2colFromCsr(const CsrFeatureMap &fmap, const ConvShape &shape,
              int64_t *probes)
{
    const int out_h = shape.outH();
    const int out_w = shape.outW();
    Matrix<float> lowered(static_cast<int>(shape.loweredRows()),
                          static_cast<int>(shape.loweredCols()));
    int row = 0;
    for (int n = 0; n < shape.batch; ++n) {
        for (int oh = 0; oh < out_h; ++oh) {
            for (int ow = 0; ow < out_w; ++ow, ++row) {
                int col = 0;
                for (int c = 0; c < shape.in_c; ++c) {
                    const CsrMatrix &plane = fmap.plane(n, c);
                    for (int kh = 0; kh < shape.kernel; ++kh) {
                        for (int kw = 0; kw < shape.kernel;
                             ++kw, ++col) {
                            const int ih = oh * shape.stride + kh -
                                           shape.pad;
                            const int iw = ow * shape.stride + kw -
                                           shape.pad;
                            if (ih < 0 || ih >= shape.in_h || iw < 0 ||
                                iw >= shape.in_w)
                                continue;
                            // The data-dependent scan through the
                            // compressed row is the cost being
                            // measured in Table III.
                            float v = plane.valueAt(ih, iw, probes);
                            if (v != 0.0f)
                                lowered.at(row, col) = v;
                        }
                    }
                }
            }
        }
    }
    return lowered;
}

} // namespace dstc
