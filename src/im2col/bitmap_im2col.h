/**
 * @file
 * Bitmap-based, outer-product-friendly sparse im2col (Sec. IV-B,
 * Fig. 11): the paper's key enabler for dual-side SpCONV.
 *
 * The feature map stays bitmap-encoded (bitmap + packed values +
 * per-row offsets). Each column of the lowered matrix is produced by
 * register-style word operations on the row bitmaps — mask, shift,
 * popcount for the value address offset — and emerges already in the
 * condensed column-major form the outer-product SpGEMM consumes. No
 * per-element data-dependent lookups are needed, which is why it
 * beats CSR im2col by an order of magnitude at moderate sparsity
 * (Table III).
 *
 * The whole pipeline is word-parallel end to end: plane encoding
 * packs 64 elements per bitmap word, value gathers slice the planes'
 * condensed arrays (with the FP16-rounded mirror copied alongside,
 * so the multiply path never re-rounds), independent lowered columns
 * are partitioned over the shared worker pool, and toTwoLevel()
 * re-tiles the lowered columns into the SpGEMM operand format by
 * word extraction — the dense lowered matrix is never materialized.
 */
#ifndef DSTC_IM2COL_BITMAP_IM2COL_H
#define DSTC_IM2COL_BITMAP_IM2COL_H

#include <cstdint>
#include <vector>

#include "im2col/conv_shape.h"
#include "sparse/bitmap.h"
#include "sparse/two_level.h"
#include "tensor/matrix.h"
#include "tensor/tensor4d.h"

namespace dstc {

/** Bitmap encoding of an NCHW tensor: one row-major bitmap per
 *  (n, c) plane — the three-field format of Fig. 11b. */
class BitmapFeatureMap
{
  public:
    static BitmapFeatureMap encode(const Tensor4d &input);

    const BitmapMatrix &
    plane(int n, int c) const
    {
        return planes_[static_cast<size_t>(n) * channels_ + c];
    }

    int channels() const { return channels_; }

    /** Encoded footprint (bitmap + FP16 values + row offsets). */
    size_t encodedBytes() const;

  private:
    int channels_ = 0;
    std::vector<BitmapMatrix> planes_;
};

/** One column of the lowered feature map in condensed form. */
struct LoweredColumn
{
    std::vector<uint64_t> bits; ///< column bitmap, M bits LSB-first
    std::vector<float> values;  ///< condensed non-zero values
    /** The values pre-rounded through FP16, copied from the plane
     *  encodings — the operands the Tensor Core datapath multiplies
     *  (encode-time rounding; the hot loop never re-rounds). */
    std::vector<float> values_fp16;
};

/** The lowered feature map as the outer-product SpGEMM's A operand. */
class LoweredFeatureMap
{
  public:
    int rows = 0; ///< M = batch * outH * outW
    int cols = 0; ///< K = in_c * kernel * kernel
    std::vector<LoweredColumn> columns;

    /** Word-level register operations performed (cost metric). */
    int64_t register_ops = 0;

    /** Reconstruct the dense lowered matrix (validation). */
    Matrix<float> decode() const;

    /** Non-zeros of one column, from its bitmap. */
    int columnNnz(int j) const;

    int64_t totalNnz() const;

    /**
     * Re-tile the lowered columns into the two-level bitmap operand
     * the device-level SpGEMM consumes (tile_m x tile_k warp tiles,
     * column-major lines), purely by word extraction on the column
     * bitmaps and condensed-value slicing — bit-for-bit identical to
     * TwoLevelBitmapMatrix::encode(decode(), ...) without ever
     * materializing the dense lowered matrix. Requires the map to
     * have been lowered with gather_values.
     *
     * @param num_workers partitions the independent tile-column
     *        groups like SpGemmOptions::num_workers (0 = shared
     *        pool, 1 = serial); the result is identical for any
     *        setting.
     */
    TwoLevelBitmapMatrix toTwoLevel(int tile_m, int tile_k,
                                    int num_workers = 1) const;
};

/**
 * The implicit sparse im2col: build the lowered feature map from
 * bitmap planes using only word shifts, masks and popcounts.
 *
 * @param gather_values when false, only the lowered bitmaps are
 *        built (sufficient for the timing sweeps; decode() is then
 *        unavailable).
 * @param num_workers partitions the independent lowered columns over
 *        the shared worker pool (same contract as
 *        SpGemmOptions::num_workers: 0 = all hardware threads, 1 =
 *        serial in the caller). Columns are written to disjoint
 *        slots and the op counters reduced in column order, so the
 *        result is identical for any worker count.
 * @param word_strided stride>1 windows use the word-parallel
 *        deinterleave (per-word stride masks + PEXT compaction,
 *        values sliced by a running-rank popcount). false retains
 *        the per-bit probe gather — the scalar reference the
 *        equivalence tests and ConvExecutor::runScalar pin against.
 *        Column bitmaps and values are bit-for-bit identical either
 *        way (only register_ops, the op-count metric, differs).
 */
LoweredFeatureMap im2colFromBitmap(const BitmapFeatureMap &fmap,
                                   const ConvShape &shape,
                                   bool gather_values = true,
                                   int num_workers = 1,
                                   bool word_strided = true);

} // namespace dstc

#endif // DSTC_IM2COL_BITMAP_IM2COL_H
