#include "isa/program_builder.h"

#include "common/bitutil.h"
#include "common/logging.h"

namespace dstc {

void
buildSpWmmaSet(WarpProgram &prog, int set, int popc_a, int popc_b,
               const SpWmmaShape &shape)
{
    if (popc_a == 0 || popc_b == 0) {
        // Either operand vector is all zero: the k-step is compacted
        // away entirely. The warp finds the non-empty k-steps by
        // ANDing the per-tile occupancy bitmaps once per tile, so an
        // empty step costs no fetch slots at all (Sec. III-B3).
        return;
    }

    Instruction popc{Opcode::POPC, true, static_cast<int16_t>(set), 0, 0};
    prog.append(popc); // POPC on the A-column bitmap
    prog.append(popc); // POPC on the B-row bitmap

    prog.append(
        {Opcode::BOHMMA_32321, true, static_cast<int16_t>(set), 0, 0});

    const int a_need = ceilDiv(popc_a, shape.a_chunk);
    const int b_need = ceilDiv(popc_b, shape.b_chunk);
    // OHMMA index = a_chunk * bChunks() + b_chunk: with 4x2 chunks
    // and (a_need=3, b_need=1) this enables OHMMA 0/2/4 as in Fig. 15.
    for (int a = 0; a < shape.aChunks(); ++a) {
        for (int b = 0; b < shape.bChunks(); ++b) {
            prog.append({Opcode::OHMMA_8161, a < a_need && b < b_need,
                         static_cast<int16_t>(set),
                         static_cast<int8_t>(a), static_cast<int8_t>(b)});
        }
    }
}

WarpProgram
buildSpWmma(const std::vector<std::pair<int, int>> &popcs,
            const SpWmmaShape &shape)
{
    WarpProgram prog;
    for (size_t set = 0; set < popcs.size(); ++set)
        buildSpWmmaSet(prog, static_cast<int>(set), popcs[set].first,
                       popcs[set].second, shape);
    return prog;
}

WarpProgram
buildDenseOwmma(int sets, const SpWmmaShape &shape)
{
    WarpProgram prog;
    for (int set = 0; set < sets; ++set) {
        for (int a = 0; a < shape.aChunks(); ++a)
            for (int b = 0; b < shape.bChunks(); ++b)
                prog.append({Opcode::OHMMA_8161, true,
                             static_cast<int16_t>(set),
                             static_cast<int8_t>(a),
                             static_cast<int8_t>(b)});
    }
    return prog;
}

WarpProgram
buildDenseWmma(int m, int n, int k)
{
    // HMMA.884 covers an 8x8x4 slab; the stream is the full cross
    // product of the three tilings (Fig. 13a).
    WarpProgram prog;
    int64_t count = static_cast<int64_t>(ceilDiv(m, 8)) * ceilDiv(n, 8) *
                    ceilDiv(k, 4);
    for (int64_t i = 0; i < count; ++i)
        prog.append({Opcode::HMMA_884, true, 0, 0, 0});
    return prog;
}

} // namespace dstc
