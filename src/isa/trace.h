/**
 * @file
 * ISA-level tracing: compile a real warp tile into its predicated
 * SpWMMA instruction stream and render an annotated, Fig. 17-style
 * listing. Used by the inspect_isa example and for debugging the
 * predication logic against hand-worked cases.
 */
#ifndef DSTC_ISA_TRACE_H
#define DSTC_ISA_TRACE_H

#include <string>

#include "isa/program_builder.h"
#include "sparse/bitmap.h"

namespace dstc {

/** A compiled warp tile plus its rendered listing. */
struct TileTrace
{
    WarpProgram program;
    InstructionMix mix;
    std::string listing;
};

/**
 * Compile the SpWMMA stream for one warp tile (A column-major,
 * B row-major) and render it with per-set POPC annotations.
 */
TileTrace traceWarpTile(const BitmapMatrix &a_tile,
                        const BitmapMatrix &b_tile,
                        const SpWmmaShape &shape = {});

} // namespace dstc

#endif // DSTC_ISA_TRACE_H
