#include "isa/trace.h"

#include <sstream>

#include "common/logging.h"

namespace dstc {

TileTrace
traceWarpTile(const BitmapMatrix &a_tile, const BitmapMatrix &b_tile,
              const SpWmmaShape &shape)
{
    DSTC_ASSERT(a_tile.major() == Major::Col &&
                b_tile.major() == Major::Row);
    DSTC_ASSERT(a_tile.cols() == b_tile.rows());

    TileTrace trace;
    std::ostringstream oss;
    const int k = a_tile.cols();
    for (int step = 0; step < k; ++step) {
        const int popc_a = a_tile.lineNnz(step);
        const int popc_b = b_tile.lineNnz(step);
        oss << "// set " << step << ": POPC(Av)=" << popc_a
            << " POPC(Bv)=" << popc_b;
        if (popc_a == 0 || popc_b == 0) {
            oss << "  -> compacted away\n";
            buildSpWmmaSet(trace.program, step, popc_a, popc_b, shape);
            continue;
        }
        oss << "  -> " << enabledOhmmas(popc_a, popc_b, shape) << "/"
            << shape.ohmmasPerSet() << " OHMMAs enabled\n";
        WarpProgram set_prog;
        buildSpWmmaSet(set_prog, step, popc_a, popc_b, shape);
        oss << set_prog.disassemble();
        for (const auto &instr : set_prog.instructions())
            trace.program.append(instr);
    }
    trace.mix = trace.program.mix();

    oss << "// totals: " << trace.mix.ohmma_issued << " OHMMA issued, "
        << trace.mix.ohmma_skipped << " squashed, " << trace.mix.bohmma
        << " BOHMMA, " << trace.mix.popc << " POPC; "
        << trace.mix.tensorCycles() << " tensor issue cycles\n";
    trace.listing = oss.str();
    return trace;
}

} // namespace dstc
