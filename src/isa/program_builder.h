/**
 * @file
 * Builders that compile warp-level MMA APIs into machine instruction
 * streams, mirroring how SpWMMA compiles to predicated OHMMAs
 * (Figs. 15-17).
 */
#ifndef DSTC_ISA_PROGRAM_BUILDER_H
#define DSTC_ISA_PROGRAM_BUILDER_H

#include <vector>

#include "common/bitutil.h"
#include "common/logging.h"
#include "isa/isa.h"

namespace dstc {

/** Geometry of the SpWMMA warp tile (Sec. III-B3 / Fig. 15). */
struct SpWmmaShape
{
    int m = 32;        ///< warp-tile rows
    int n = 32;        ///< warp-tile cols
    int a_chunk = 8;   ///< OHMMA rows per A chunk
    int b_chunk = 16;  ///< OHMMA cols per B chunk

    int aChunks() const { return m / a_chunk; } ///< 4 for 32x32
    int bChunks() const { return n / b_chunk; } ///< 2 for 32x32
    int ohmmasPerSet() const { return aChunks() * bChunks(); } ///< 8
};

/**
 * Compile one SpWMMA set (a 32x32x1 outer product) given the POPC
 * results of the A-column and B-row bitmaps. Emits: two POPCs, then
 * (if both operands are non-empty) one BOHMMA and the 8 predicated
 * OHMMAs of which ceil(popc_a/8) x ceil(popc_b/16) are enabled —
 * exactly the Fig. 15 example (popc_a=20, popc_b=12 enables
 * OHMMA 0/2/4).
 */
void buildSpWmmaSet(WarpProgram &prog, int set, int popc_a, int popc_b,
                    const SpWmmaShape &shape = {});

/**
 * Compile a full SpWMMA call: one set per (popc_a, popc_b) pair,
 * i.e. one per k-step of the warp tile.
 */
WarpProgram buildSpWmma(const std::vector<std::pair<int, int>> &popcs,
                        const SpWmmaShape &shape = {});

/** Dense OWMMA: every OHMMA of every set enabled, no bitmap work. */
WarpProgram buildDenseOwmma(int sets, const SpWmmaShape &shape = {});

/**
 * Dense inner-product WMMA over an m x n x k warp tile: the V100
 * baseline instruction stream (16 HMMA.884 per 16x16x16).
 */
WarpProgram buildDenseWmma(int m, int n, int k);

/** Number of enabled OHMMAs for one set: the Fig. 15 arithmetic.
 *  Inline — the device tile loops evaluate it once per k-step. */
inline int
enabledOhmmas(int popc_a, int popc_b, const SpWmmaShape &shape = {})
{
    DSTC_ASSERT(popc_a >= 0 && popc_a <= shape.m);
    DSTC_ASSERT(popc_b >= 0 && popc_b <= shape.n);
    if (popc_a == 0 || popc_b == 0)
        return 0;
    return ceilDiv(popc_a, shape.a_chunk) *
           ceilDiv(popc_b, shape.b_chunk);
}

} // namespace dstc

#endif // DSTC_ISA_PROGRAM_BUILDER_H
