/**
 * @file
 * Instruction-level model of the Tensor Core ISA and the paper's
 * extensions (Sec. V).
 *
 * Machine-level operations modeled:
 *  - HMMA.884      — inner-product 8x8x4 MMA (two Tensor Cores),
 *                    the V100 baseline primitive (Fig. 13a);
 *  - OHMMA.8161    — outer-product 8x16x1 MMA on the OTC pair
 *                    (Fig. 13b / Fig. 14);
 *  - BOHMMA.32321  — 32x32x1 binary (bitmap) outer product, 16x the
 *                    FP16 tile size at the same rate (Fig. 14);
 *  - POPC          — scalar population count used to set OHMMA
 *                    predication bits (Fig. 15).
 *
 * A WarpProgram is the predicated instruction stream a SpWMMA API
 * call compiles to (Fig. 17). Cycle accounting lives here too so the
 * ISA and timing agree by construction: a dense 16x16x16 WMMA and a
 * dense 16x16x16 OWMMA both take 32 issue cycles (Sec. V-A2).
 */
#ifndef DSTC_ISA_ISA_H
#define DSTC_ISA_ISA_H

#include <cstdint>
#include <string>
#include <vector>

namespace dstc {

/** Modeled opcodes. */
enum class Opcode : uint8_t
{
    HMMA_884,     ///< inner-product 8x8x4 MMA
    OHMMA_8161,   ///< outer-product 8x16x1 MMA
    BOHMMA_32321, ///< binary outer product on 32x32x1 bitmaps
    POPC,         ///< population count (scalar pipeline)
};

/** Issue cost of an opcode on the tensor-core pipeline, in cycles. */
int issueCycles(Opcode op);

/** Printable mnemonic. */
const char *mnemonic(Opcode op);

/**
 * One machine instruction. Predication follows Fig. 17: an OHMMA
 * carries a predicate bit that was set from the POPC results; a
 * false predicate squashes the instruction at zero tensor-core cost.
 */
struct Instruction
{
    Opcode op = Opcode::OHMMA_8161;
    bool predicate = true; ///< executes iff true
    int16_t set = 0;       ///< SpWMMA set index (k-step), Fig. 15
    int8_t a_chunk = 0;    ///< A-side 8-row chunk index (0..3)
    int8_t b_chunk = 0;    ///< B-side 16-col chunk index (0..1)

    /** Disassemble in the style of Fig. 17. */
    std::string disassemble() const;
};

/** Per-opcode issue statistics of a warp program. */
struct InstructionMix
{
    int64_t hmma = 0;
    int64_t ohmma_issued = 0;
    int64_t ohmma_skipped = 0; ///< squashed by predication
    int64_t bohmma = 0;
    int64_t popc = 0;

    /** Tensor-core issue cycles (POPC runs on the scalar pipe). */
    int64_t tensorCycles() const;

    InstructionMix &operator+=(const InstructionMix &other);
};

/** A warp's predicated instruction stream. */
class WarpProgram
{
  public:
    void
    append(const Instruction &instr)
    {
        instrs_.push_back(instr);
    }

    size_t size() const { return instrs_.size(); }
    const Instruction &operator[](size_t i) const { return instrs_[i]; }

    const std::vector<Instruction> &instructions() const
    {
        return instrs_;
    }

    /** Aggregate issue statistics. */
    InstructionMix mix() const;

    /** Full disassembly, one instruction per line. */
    std::string disassemble() const;

  private:
    std::vector<Instruction> instrs_;
};

} // namespace dstc

#endif // DSTC_ISA_ISA_H
