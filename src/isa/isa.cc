#include "isa/isa.h"

#include <sstream>

#include "common/logging.h"

namespace dstc {

int
issueCycles(Opcode op)
{
    switch (op) {
      case Opcode::HMMA_884:
        // A 16x16x16 WMMA is 16 HMMA.884 in 32 cycles (Sec. V-A2).
        return 2;
      case Opcode::OHMMA_8161:
        // A 16x16x16 OWMMA is 32 OHMMA.8161 in 32 cycles.
        return 1;
      case Opcode::BOHMMA_32321:
        // Binary operands process a 16x larger tile per cycle.
        return 1;
      case Opcode::POPC:
        // Scalar pipeline; overlapped with tensor-core issue.
        return 0;
    }
    panic("unknown opcode");
}

const char *
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::HMMA_884:
        return "HMMA.884.F32.F32";
      case Opcode::OHMMA_8161:
        return "HMMA.OHMMA.8161.F32.F32";
      case Opcode::BOHMMA_32321:
        return "HMMA.BOHMMA.32321.B32.B32";
      case Opcode::POPC:
        return "POPC";
    }
    panic("unknown opcode");
}

std::string
Instruction::disassemble() const
{
    std::ostringstream oss;
    if (op == Opcode::OHMMA_8161)
        oss << (predicate ? "@p1 " : "@p0 ");
    oss << mnemonic(op);
    if (op == Opcode::OHMMA_8161 || op == Opcode::BOHMMA_32321 ||
        op == Opcode::HMMA_884) {
        oss << " ; set=" << set;
        if (op == Opcode::OHMMA_8161)
            oss << " a_chunk=" << static_cast<int>(a_chunk)
                << " b_chunk=" << static_cast<int>(b_chunk);
    }
    return oss.str();
}

int64_t
InstructionMix::tensorCycles() const
{
    return hmma * issueCycles(Opcode::HMMA_884) +
           ohmma_issued * issueCycles(Opcode::OHMMA_8161) +
           bohmma * issueCycles(Opcode::BOHMMA_32321);
}

InstructionMix &
InstructionMix::operator+=(const InstructionMix &other)
{
    hmma += other.hmma;
    ohmma_issued += other.ohmma_issued;
    ohmma_skipped += other.ohmma_skipped;
    bohmma += other.bohmma;
    popc += other.popc;
    return *this;
}

InstructionMix
WarpProgram::mix() const
{
    InstructionMix m;
    for (const auto &instr : instrs_) {
        switch (instr.op) {
          case Opcode::HMMA_884:
            ++m.hmma;
            break;
          case Opcode::OHMMA_8161:
            if (instr.predicate)
                ++m.ohmma_issued;
            else
                ++m.ohmma_skipped;
            break;
          case Opcode::BOHMMA_32321:
            ++m.bohmma;
            break;
          case Opcode::POPC:
            ++m.popc;
            break;
        }
    }
    return m;
}

std::string
WarpProgram::disassemble() const
{
    std::ostringstream oss;
    for (const auto &instr : instrs_)
        oss << instr.disassemble() << '\n';
    return oss.str();
}

} // namespace dstc
