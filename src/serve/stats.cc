#include "serve/stats.h"

#include <algorithm>
#include <cmath>

namespace dstc {

namespace {

/** Nearest-rank percentile of a sorted sample. */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<size_t>(std::ceil(q * n));
    if (rank == 0)
        rank = 1;
    return sorted[std::min(rank, sorted.size()) - 1];
}

} // namespace

LatencySummary
summarizeLatencies(std::vector<double> latencies)
{
    LatencySummary summary;
    summary.count = static_cast<int64_t>(latencies.size());
    if (latencies.empty())
        return summary;
    std::sort(latencies.begin(), latencies.end());
    double sum = 0.0;
    for (double v : latencies)
        sum += v;
    summary.mean_us = sum / static_cast<double>(latencies.size());
    summary.p50_us = percentile(latencies, 0.50);
    summary.p95_us = percentile(latencies, 0.95);
    summary.p99_us = percentile(latencies, 0.99);
    summary.max_us = latencies.back();
    return summary;
}

bool
statsBitwiseEqual(const KernelStats &a, const KernelStats &b)
{
    return a.compute_us == b.compute_us &&
           a.memory_us == b.memory_us &&
           a.dram_bytes == b.dram_bytes &&
           a.launch_us == b.launch_us && a.bound == b.bound &&
           a.mix.hmma == b.mix.hmma &&
           a.mix.ohmma_issued == b.mix.ohmma_issued &&
           a.mix.ohmma_skipped == b.mix.ohmma_skipped &&
           a.mix.bohmma == b.mix.bohmma && a.mix.popc == b.mix.popc &&
           a.warp_tiles == b.warp_tiles &&
           a.warp_tiles_skipped == b.warp_tiles_skipped &&
           a.merge_cycles == b.merge_cycles;
}

} // namespace dstc
