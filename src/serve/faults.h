/**
 * @file
 * Deterministic fault injection for the serving subsystem.
 *
 * Real heterogeneous fleets degrade and fail; because the
 * ServingEngine is a seeded discrete-event simulation on a virtual
 * clock, faults can be injected *deterministically* and every
 * recovery decision replayed bit for bit. Three fault classes:
 *
 *  - Crash-stop: a device dies at a scripted instant and never
 *    returns. Its queued and in-flight requests are drained and
 *    either re-placed on survivors (failover) or lost.
 *  - Slowdown: a timed window during which a device's simulated
 *    service time is scaled by a factor (thermal throttling, a noisy
 *    neighbor). Placement estimates and the EDF feasibility guard
 *    see the same factor, so the scheduler routes around the slow
 *    device instead of piling work on it.
 *  - Transient: a per-dispatch execution failure drawn from a seeded
 *    hash of (seed, request id, attempt, device) — the same request
 *    fails at the same attempt in every run, for any worker count.
 *
 * Faults come from a FaultSpec — either scripted events parsed from
 * a compact CLI string, or `randcrash:<n>` events drawn by the
 * injector from its seed over the arrival window. Malformed specs
 * are returned as errors with a message (the serialize.h
 * malformed-input contract), never silently defaulted.
 *
 * The HealthTracker is the scoreboard the DeadlineScheduler
 * consults: which devices are alive, what slowdown factor applies at
 * a virtual timestamp, and when each device crashed.
 */
#ifndef DSTC_SERVE_FAULTS_H
#define DSTC_SERVE_FAULTS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dstc {

/** What kind of fault an event injects. */
enum class FaultKind
{
    Crash,    ///< crash-stop: the device dies at time_us forever
    Slowdown, ///< service time scales by factor over a timed window
};

/** One scripted (or drawn) fault on the virtual clock. */
struct FaultEvent
{
    FaultKind kind = FaultKind::Crash;
    size_t device = 0;
    double time_us = 0.0;
    double duration_us = 0.0; ///< Slowdown only: window length
    double factor = 1.0;      ///< Slowdown only: service-time scale
};

/**
 * A parsed fault scenario. The spec string is a `;`-separated list
 * of tokens:
 *
 *   crash@<t_us>:d<idx>             crash-stop device idx at t_us
 *   slow@<t_us>+<dur_us>x<f>:d<idx> scale service time by f over
 *                                   [t_us, t_us + dur_us)
 *   transient:p<prob>               per-dispatch failure probability
 *   randcrash:<n>                   n seeded crash events drawn by
 *                                   the injector over the window
 *
 * e.g. "crash@500:d1;slow@200+400x2.5:d0;transient:p0.05".
 */
struct FaultSpec
{
    std::vector<FaultEvent> events;
    double transient_prob = 0.0;
    int random_crashes = 0;

    bool empty() const
    {
        return events.empty() && transient_prob == 0.0 &&
               random_crashes == 0;
    }

    /**
     * Parse @p spec into @p out. Returns false on any malformed
     * token, with a human-readable message in @p error — the caller
     * owns the exit path (no std::exit, no silent defaults).
     */
    static bool parse(const std::string &spec, FaultSpec *out,
                      std::string *error);
};

/**
 * The seeded fault source of one serving run. Materializes the
 * spec's scripted events plus any `randcrash` draws (uniform over
 * [0, window_us), device uniform over the fleet — a pure function of
 * the seed), sorts them on the virtual clock, and answers the
 * per-dispatch transient-failure draw.
 */
class FaultInjector
{
  public:
    FaultInjector(FaultSpec spec, size_t num_devices,
                  double window_us, uint64_t seed);

    /** All fault events, sorted by (time, device, kind). Events
     *  naming a device outside the fleet are dropped at
     *  construction (scripts are fleet-size agnostic). */
    const std::vector<FaultEvent> &events() const { return events_; }

    double transientProb() const { return spec_.transient_prob; }

    /**
     * Whether attempt @p attempt of request @p id fails transiently
     * on @p device — a seeded hash draw, identical in every run.
     * Hedged arms fold the device in, so the two arms of one attempt
     * draw independently.
     */
    bool transientFails(int64_t id, int attempt,
                        size_t device) const;

  private:
    FaultSpec spec_;
    uint64_t seed_;
    std::vector<FaultEvent> events_;
};

/**
 * Per-device health scoreboard on the virtual clock: the
 * DeadlineScheduler and the dispatch loop consult it for liveness
 * and service-time scaling. Crashes are permanent (crash-stop);
 * slowdown windows may overlap (factors multiply).
 */
class HealthTracker
{
  public:
    explicit HealthTracker(size_t num_devices);

    void markCrashed(size_t device, double time_us);
    void addSlowdown(size_t device, double time_us,
                     double duration_us, double factor);

    bool alive(size_t device) const;
    size_t aliveCount() const { return alive_count_; }
    size_t numDevices() const { return crashed_at_.size(); }

    /** Crash timestamp, or +inf while the device lives. */
    double crashTimeUs(size_t device) const;

    /**
     * The service-time scale of a dispatch starting at @p time_us on
     * @p device: the product of every slowdown window containing
     * that instant (1.0 when none does).
     */
    double slowdownFactor(size_t device, double time_us) const;

  private:
    struct Window
    {
        double begin_us;
        double end_us;
        double factor;
    };

    std::vector<double> crashed_at_; ///< +inf = alive
    std::vector<std::vector<Window>> windows_;
    size_t alive_count_;
};

} // namespace dstc

#endif // DSTC_SERVE_FAULTS_H
