/**
 * @file
 * Deterministic open-loop traffic synthesis for the serving layer.
 *
 * An ArrivalGenerator turns a seed into the request stream a
 * production front end would see: arrival timestamps in simulated
 * microseconds, a per-request deadline class (interactive / standard
 * / batch), and an index into the caller's workload pool (which
 * request shape arrived). Two processes are supported:
 *
 *  - Poisson: memoryless arrivals at a fixed mean rate — the
 *    classical open-loop load model.
 *  - Bursty: a two-state Markov-modulated Poisson process (calm /
 *    burst) whose state-conditional rates are normalized so the
 *    long-run mean equals the requested rate. Bursts are what break
 *    naive least-loaded placement: a queue that looked fine a
 *    millisecond ago is suddenly deep.
 *
 * Everything is a pure function of ArrivalOptions (including the
 * seed): the same options always produce the identical sequence, so
 * serving runs — and their bitwise-replay checks — are reproducible.
 */
#ifndef DSTC_SERVE_ARRIVAL_H
#define DSTC_SERVE_ARRIVAL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dstc {

/** Open-loop arrival process shape. */
enum class TrafficPattern
{
    Poisson, ///< memoryless, fixed mean rate
    Bursty,  ///< two-state Markov-modulated Poisson
};

/** Stable CLI/parse token of a pattern ("poisson", "bursty"). */
const char *trafficPatternToken(TrafficPattern pattern);

/** Parse a CLI token into a pattern; false on unknown token. */
bool parseTrafficPattern(const std::string &token,
                         TrafficPattern *out);

/**
 * Latency expectation attached to a request. The concrete deadline
 * is derived by the serving engine (class multiplier x the request's
 * reference-device estimate + a base slack), so classes stay
 * workload-relative: an interactive BERT layer is not held to the
 * deadline of an interactive 1x1 conv.
 */
enum class DeadlineClass
{
    Interactive = 0, ///< tightest slack (user is waiting)
    Standard = 1,    ///< ordinary online traffic
    Batch = 2,       ///< throughput-oriented, loose deadline
};

constexpr int kNumDeadlineClasses = 3;

/** Human-readable class name ("interactive", ...). */
const char *deadlineClassName(DeadlineClass dclass);

/** One request arrival of the open-loop stream. */
struct Arrival
{
    int64_t id = 0;        ///< submission-sequence position
    double time_us = 0.0;  ///< simulated arrival timestamp
    DeadlineClass deadline_class = DeadlineClass::Standard;
    size_t pool_index = 0; ///< which workload-pool request arrived
};

/** Knobs of the traffic synthesizer. */
struct ArrivalOptions
{
    TrafficPattern pattern = TrafficPattern::Poisson;

    /** Mean arrival rate, requests per simulated millisecond. */
    double rate_rpms = 400.0;

    /** Arrival window in simulated milliseconds (the stream stops
     *  here; the serving engine drains what was admitted). */
    double duration_ms = 2.0;

    uint64_t seed = 1;

    /** Workload-pool size arrivals draw from (uniformly). */
    size_t pool_size = 1;

    /** Class mix; the remainder is Batch. */
    double interactive_fraction = 0.5;
    double standard_fraction = 0.35;

    // Bursty (MMPP-2) shape. The per-arrival stationary probability
    // of the burst state is p_calm_to_burst / (p_calm_to_burst +
    // p_burst_to_calm) (0.25 with the defaults); the generator
    // normalizes the state factors by the pi-weighted harmonic
    // combination so the long-run mean rate equals rate_rpms for
    // any factor/switch-probability choice.
    double calm_rate_factor = 0.4;
    double burst_rate_factor = 2.8;
    double p_calm_to_burst = 0.05; ///< per-arrival switch probability
    double p_burst_to_calm = 0.15;
};

/** Seeded open-loop traffic synthesizer. */
class ArrivalGenerator
{
  public:
    explicit ArrivalGenerator(ArrivalOptions options);

    /** The full arrival sequence — strictly increasing timestamps,
     *  ids 0..n-1 — identical for identical options. */
    std::vector<Arrival> generate() const;

    const ArrivalOptions &options() const { return options_; }

  private:
    ArrivalOptions options_;
};

} // namespace dstc

#endif // DSTC_SERVE_ARRIVAL_H
