#include "serve/serving.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace dstc {

ServingEngine::ServingEngine(ServingOptions options,
                             std::vector<KernelRequest> pool)
    : options_(std::move(options)), pool_(std::move(pool))
{
    DSTC_ASSERT(!pool_.empty(),
                "the serving engine needs a workload pool");
    if (options_.devices.empty())
        options_.devices.push_back(GpuConfig::v100());
    if (options_.microbatch == 0)
        options_.microbatch = 1;
    options_.arrivals.pool_size = pool_.size();

    ClusterOptions copts;
    copts.devices = options_.devices;
    // The cluster's own scheduler is unused (the serving layer
    // places through its DeadlineScheduler); any policy works.
    copts.policy = PlacementPolicy::RoundRobin;
    copts.num_threads = options_.num_threads;
    copts.encode_workers = options_.encode_workers;
    copts.resources = options_.resources;
    cluster_ = std::make_unique<Cluster>(std::move(copts));
}

double
ServingEngine::deadlineFor(DeadlineClass dclass, double arrival_us,
                           double ref_estimate_us) const
{
    double mult = options_.slo_standard_mult;
    if (dclass == DeadlineClass::Interactive)
        mult = options_.slo_interactive_mult;
    else if (dclass == DeadlineClass::Batch)
        mult = options_.slo_batch_mult;
    return arrival_us + mult * ref_estimate_us +
           options_.slo_base_slack_us;
}

namespace {

/** Per-pool-entry serving constants: the per-device plan-stage
 *  estimates and the encoding-compatibility digest. */
struct PoolEntryInfo
{
    std::vector<double> estimate_us; ///< one per device
    uint64_t batch_key = 0;
};

std::vector<PoolEntryInfo>
buildPoolInfo(Cluster &cluster, const std::vector<KernelRequest> &pool)
{
    std::vector<PoolEntryInfo> info(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
        info[i].estimate_us.reserve(cluster.numDevices());
        for (size_t d = 0; d < cluster.numDevices(); ++d)
            info[i].estimate_us.push_back(
                cluster.estimateOn(d, pool[i]));
        // Encoding compatibility = same operand contents (or, for
        // synthetic timing requests, the same structural operating
        // point) — exactly what makes two requests share entries in
        // the EncodingCache.
        info[i].batch_key = requestContentDigest(pool[i])
                                .value_or(requestShardKey(pool[i]));
    }
    return info;
}

} // namespace

double
ServingEngine::estimatedCapacityRpms()
{
    const std::vector<PoolEntryInfo> info =
        buildPoolInfo(*cluster_, pool_);
    double capacity = 0.0;
    for (size_t d = 0; d < cluster_->numDevices(); ++d) {
        double sum_us = 0.0;
        // One dispatch overhead per request — the no-batching worst
        // case, so "1.0x capacity" is a true saturation point even
        // for policies that never form micro-batches. (For this
        // pool's ~2us kernels the overhead is roughly half the
        // effective service time, not a rounding error.)
        for (const PoolEntryInfo &entry : info)
            sum_us +=
                entry.estimate_us[d] + options_.dispatch_overhead_us;
        if (sum_us > 0.0)
            capacity +=
                1e3 * static_cast<double>(pool_.size()) / sum_us;
    }
    return capacity;
}

ServingResult
ServingEngine::run()
{
    const size_t n = cluster_->numDevices();
    const std::vector<PoolEntryInfo> info =
        buildPoolInfo(*cluster_, pool_);
    const std::vector<Arrival> arrivals =
        ArrivalGenerator(options_.arrivals).generate();

    DeadlineScheduler scheduler(options_.policy, n);
    ServingQueue queue(n, options_.queue_depth, options_.admission);
    const bool edf = scheduler.edfOrder();

    std::vector<double> free_at(n, 0.0);
    std::vector<bool> busy(n, false);

    ServingResult result;
    std::vector<int64_t> rejected_per_class(kNumDeadlineClasses, 0);
    std::vector<int64_t> shed_per_class(kNumDeadlineClasses, 0);
    std::vector<int64_t> dropped_per_class(kNumDeadlineClasses, 0);
    int64_t microbatches = 0, microbatched = 0;

    // Dispatch work to an idle device: pop (or steal) a head
    // request, extend it with encoding-compatible batch mates, and
    // execute the batch back to back on the device's Session. The
    // virtual clock charges the dispatch overhead once per batch —
    // the micro-batching amortization — while every report stays the
    // bitwise single-request result.
    auto dispatch = [&](size_t d, double now) {
        if (busy[d])
            return;
        bool stolen = false;
        std::optional<QueuedRequest> head;
        while (true) {
            stolen = false;
            head = queue.pop(d, edf);
            if (!head && scheduler.workStealing()) {
                size_t donor = 0;
                head = queue.steal(d, &donor);
                if (head) {
                    stolen = true;
                    scheduler.recordSteal(donor);
                }
            }
            if (!head)
                return;
            if (!scheduler.dropInfeasible())
                break;
            // EDF overload guard: executing a request that cannot
            // meet its deadline even if started right now converts
            // one miss into a procession of misses (everything
            // behind it slips too). Drop it unexecuted and let the
            // device serve a still-feasible request instead.
            const double est =
                info[head->pool_index].estimate_us[d];
            if (now + options_.dispatch_overhead_us + est <=
                head->deadline_us)
                break;
            ++dropped_per_class[static_cast<int>(
                head->deadline_class)];
        }
        std::vector<QueuedRequest> batch;
        batch.push_back(*head);
        if (options_.microbatch > 1) {
            std::vector<QueuedRequest> mates = queue.popBatchMates(
                d, head->batch_key, options_.microbatch - 1, edf);
            batch.insert(batch.end(), mates.begin(), mates.end());
        }
        if (batch.size() >= 2) {
            ++microbatches;
            microbatched += static_cast<int64_t>(batch.size());
        }
        double t = now + options_.dispatch_overhead_us;
        for (size_t i = 0; i < batch.size(); ++i) {
            const QueuedRequest &member = batch[i];
            ServeOutcome outcome;
            outcome.id = member.id;
            outcome.pool_index = member.pool_index;
            outcome.device = d;
            outcome.deadline_class = member.deadline_class;
            outcome.arrival_us = member.arrival_us;
            outcome.deadline_us = member.deadline_us;
            outcome.stolen = stolen && i == 0;
            outcome.batched_follower = i > 0;
            outcome.start_us = t;
            outcome.report =
                cluster_->device(d).run(pool_[member.pool_index]);
            outcome.report.device = static_cast<int>(d);
            t += outcome.report.timeUs();
            outcome.finish_us = t;
            outcome.met_deadline = t <= member.deadline_us;
            result.outcomes.push_back(std::move(outcome));
            scheduler.completed(d);
        }
        free_at[d] = t;
        busy[d] = true;
    };

    constexpr double kInf = std::numeric_limits<double>::infinity();
    size_t next_arrival = 0;
    while (true) {
        const double arr_t = next_arrival < arrivals.size()
                                 ? arrivals[next_arrival].time_us
                                 : kInf;
        double free_t = kInf;
        for (size_t d = 0; d < n; ++d)
            if (busy[d])
                free_t = std::min(free_t, free_at[d]);
        if (arr_t == kInf && free_t == kInf)
            break;

        if (free_t <= arr_t) {
            // Device-completion event(s): free every device whose
            // batch ends now (ascending index), then refill them.
            const double now = free_t;
            for (size_t d = 0; d < n; ++d)
                if (busy[d] && free_at[d] == now)
                    busy[d] = false;
            for (size_t d = 0; d < n; ++d)
                dispatch(d, now);
            continue;
        }

        // Arrival event: admission control, placement, enqueue.
        const Arrival &arrival = arrivals[next_arrival++];
        const double now = arrival.time_us;
        const PoolEntryInfo &entry = info[arrival.pool_index];
        const double deadline = deadlineFor(
            arrival.deadline_class, now, entry.estimate_us[0]);

        if (queue.totalDepth() >= queue.depthBound() &&
            options_.admission == AdmissionPolicy::Reject) {
            ++rejected_per_class[static_cast<int>(
                arrival.deadline_class)];
            continue;
        }

        std::vector<double> ready(n), backlog(n);
        for (size_t d = 0; d < n; ++d) {
            ready[d] = busy[d] ? free_at[d] : now;
            backlog[d] = edf ? queue.backlogBeforeUs(d, deadline)
                             : queue.backlogUs(d);
        }
        const size_t dev = scheduler.placeArrival(
            options_.policy == ServePolicy::RoundRobin
                ? std::vector<double>{}
                : entry.estimate_us,
            ready, backlog, deadline);

        QueuedRequest qr;
        qr.id = arrival.id;
        qr.pool_index = arrival.pool_index;
        qr.batch_key = entry.batch_key;
        qr.arrival_us = now;
        qr.deadline_us = deadline;
        qr.estimate_us = entry.estimate_us[dev];
        qr.deadline_class = arrival.deadline_class;
        qr.device = dev;
        std::vector<QueuedRequest> shed;
        const ServingQueue::Admit admitted = queue.admit(qr, &shed);
        DSTC_ASSERT(admitted == ServingQueue::Admit::Admitted,
                    "reject-on-overload is handled before placement");
        for (const QueuedRequest &victim : shed)
            ++shed_per_class[static_cast<int>(
                victim.deadline_class)];

        // The newcomer (or a rebalanced queue) may feed an idle
        // device immediately.
        for (size_t d = 0; d < n; ++d)
            dispatch(d, now);
    }

    std::sort(result.outcomes.begin(), result.outcomes.end(),
              [](const ServeOutcome &a, const ServeOutcome &b) {
                  return a.id < b.id;
              });

    // -- assemble the scorecard --------------------------------------
    ServingStats &stats = result.stats;
    stats.offered = static_cast<int64_t>(arrivals.size());
    stats.per_class.assign(kNumDeadlineClasses, ClassStats{});
    for (const Arrival &arrival : arrivals)
        ++stats.per_class[static_cast<int>(arrival.deadline_class)]
              .offered;

    std::vector<double> latencies;
    std::vector<std::vector<double>> class_latencies(
        kNumDeadlineClasses);
    latencies.reserve(result.outcomes.size());
    int64_t met = 0;
    double makespan = 0.0;
    for (const ServeOutcome &outcome : result.outcomes) {
        const double latency = outcome.finish_us - outcome.arrival_us;
        latencies.push_back(latency);
        ClassStats &cls = stats.per_class[static_cast<int>(
            outcome.deadline_class)];
        class_latencies[static_cast<int>(outcome.deadline_class)]
            .push_back(latency);
        ++cls.completed;
        if (outcome.met_deadline)
            ++met;
        else
            ++cls.deadline_misses;
        makespan = std::max(makespan, outcome.finish_us);
    }
    for (int c = 0; c < kNumDeadlineClasses; ++c) {
        stats.per_class[c].rejected = rejected_per_class[c];
        stats.per_class[c].shed = shed_per_class[c];
        stats.per_class[c].dropped = dropped_per_class[c];
        stats.per_class[c].latency =
            summarizeLatencies(std::move(class_latencies[c]));
        stats.rejected += rejected_per_class[c];
        stats.shed += shed_per_class[c];
        stats.dropped += dropped_per_class[c];
        stats.deadline_misses += stats.per_class[c].deadline_misses;
    }
    stats.completed = static_cast<int64_t>(result.outcomes.size());
    stats.admitted = stats.offered - stats.rejected;
    stats.steals = scheduler.steals();
    stats.microbatches = microbatches;
    stats.microbatched = microbatched;
    stats.makespan_us = makespan;
    if (makespan > 0.0) {
        stats.throughput_rpms =
            static_cast<double>(stats.completed) / (makespan / 1e3);
        stats.goodput_rpms =
            static_cast<double>(met) / (makespan / 1e3);
    }
    if (stats.completed > 0)
        stats.deadline_miss_rate =
            static_cast<double>(stats.deadline_misses) /
            static_cast<double>(stats.completed);
    if (stats.offered > 0)
        stats.slo_attainment = static_cast<double>(met) /
                               static_cast<double>(stats.offered);
    stats.latency = summarizeLatencies(std::move(latencies));
    stats.placed_per_device.resize(n);
    stats.completed_per_device.resize(n);
    for (size_t d = 0; d < n; ++d) {
        const DeviceLoad load = scheduler.load(d);
        stats.placed_per_device[d] = load.placed;
        stats.completed_per_device[d] = load.completed;
    }
    return result;
}

bool
ServingEngine::replayMatchesSerial(const ServingResult &result)
{
    // Fresh single-device Sessions — no shared cache, no cluster —
    // replaying the placed sequence in submission order must
    // reproduce every report bit for bit.
    std::vector<std::unique_ptr<Session>> reference;
    reference.reserve(options_.devices.size());
    for (const GpuConfig &cfg : options_.devices)
        reference.push_back(std::make_unique<Session>(cfg));
    for (const ServeOutcome &outcome : result.outcomes) {
        if (outcome.device >= reference.size())
            return false;
        const KernelReport serial =
            reference[outcome.device]->run(pool_[outcome.pool_index]);
        if (!statsBitwiseEqual(outcome.report.stats, serial.stats) ||
            outcome.report.backend != serial.backend ||
            outcome.report.method != serial.method)
            return false;
    }
    return true;
}

} // namespace dstc
