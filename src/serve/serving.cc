#include "serve/serving.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace dstc {

ServingEngine::ServingEngine(ServingOptions options,
                             std::vector<KernelRequest> pool)
    : options_(std::move(options)), pool_(std::move(pool))
{
    DSTC_ASSERT(!pool_.empty(),
                "the serving engine needs a workload pool");
    if (options_.devices.empty())
        options_.devices.push_back(GpuConfig::v100());
    if (options_.microbatch == 0)
        options_.microbatch = 1;
    if (options_.retry_budget < 1)
        options_.retry_budget = 1;
    options_.arrivals.pool_size = pool_.size();

    ClusterOptions copts;
    copts.devices = options_.devices;
    // The cluster's own scheduler is unused (the serving layer
    // places through its DeadlineScheduler); any policy works.
    copts.policy = PlacementPolicy::RoundRobin;
    copts.num_threads = options_.num_threads;
    copts.encode_workers = options_.encode_workers;
    copts.resources = options_.resources;
    cluster_ = std::make_unique<Cluster>(std::move(copts));
}

double
ServingEngine::deadlineFor(DeadlineClass dclass, double arrival_us,
                           double ref_estimate_us) const
{
    double mult = options_.slo_standard_mult;
    if (dclass == DeadlineClass::Interactive)
        mult = options_.slo_interactive_mult;
    else if (dclass == DeadlineClass::Batch)
        mult = options_.slo_batch_mult;
    return arrival_us + mult * ref_estimate_us +
           options_.slo_base_slack_us;
}

namespace {

/** Per-pool-entry serving constants: the per-device plan-stage
 *  estimates and the encoding-compatibility digest. */
struct PoolEntryInfo
{
    std::vector<double> estimate_us; ///< one per device
    uint64_t batch_key = 0;
};

std::vector<PoolEntryInfo>
buildPoolInfo(Cluster &cluster, const std::vector<KernelRequest> &pool)
{
    std::vector<PoolEntryInfo> info(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
        info[i].estimate_us.reserve(cluster.numDevices());
        for (size_t d = 0; d < cluster.numDevices(); ++d)
            info[i].estimate_us.push_back(
                cluster.estimateOn(d, pool[i]));
        // Encoding compatibility = same operand contents (or, for
        // synthetic timing requests, the same structural operating
        // point) — exactly what makes two requests share entries in
        // the EncodingCache.
        info[i].batch_key = requestContentDigest(pool[i])
                                .value_or(requestShardKey(pool[i]));
    }
    return info;
}

/** One dispatched request (or hedge arm) executing on a device. */
struct InFlight
{
    ServeOutcome outcome; ///< start/finish/report already filled
    bool fails = false;   ///< transient failure at its finish
    /** Partner arm's device of a hedged dispatch (SIZE_MAX: not
     *  hedged, or the partner already resolved/was crash-killed). */
    size_t hedge_partner = SIZE_MAX;
    bool hedge_secondary = false; ///< this is the duplicate arm
};

/** A transiently failed request waiting out its backoff. */
struct PendingRetry
{
    QueuedRequest request;
    double ready_us = 0.0;
};

} // namespace

double
ServingEngine::estimatedCapacityRpms()
{
    const std::vector<PoolEntryInfo> info =
        buildPoolInfo(*cluster_, pool_);
    double capacity = 0.0;
    for (size_t d = 0; d < cluster_->numDevices(); ++d) {
        double sum_us = 0.0;
        // One dispatch overhead per request — the no-batching worst
        // case, so "1.0x capacity" is a true saturation point even
        // for policies that never form micro-batches. (For this
        // pool's ~2us kernels the overhead is roughly half the
        // effective service time, not a rounding error.)
        for (const PoolEntryInfo &entry : info)
            sum_us +=
                entry.estimate_us[d] + options_.dispatch_overhead_us;
        if (sum_us > 0.0)
            capacity +=
                1e3 * static_cast<double>(pool_.size()) / sum_us;
    }
    return capacity;
}

ServingResult
ServingEngine::run()
{
    constexpr double kInf = std::numeric_limits<double>::infinity();
    const size_t n = cluster_->numDevices();
    const std::vector<PoolEntryInfo> info =
        buildPoolInfo(*cluster_, pool_);
    const std::vector<Arrival> arrivals =
        ArrivalGenerator(options_.arrivals).generate();

    DeadlineScheduler scheduler(options_.policy, n);
    ServingQueue queue(n, options_.queue_depth, options_.admission);
    const bool edf = scheduler.edfOrder();

    // -- fault state --------------------------------------------------
    const uint64_t fault_seed =
        options_.fault_seed != 0
            ? options_.fault_seed
            : options_.arrivals.seed ^ 0xfa117ull;
    const FaultInjector injector(options_.faults, n,
                                 options_.arrivals.duration_ms * 1e3,
                                 fault_seed);
    HealthTracker health(n);
    FaultRecoveryStats fr;

    // Healthy per-device capacity (requests per simulated ms, the
    // estimatedCapacityRpms summand): the yardstick graceful
    // degradation rescales the admission depth against.
    std::vector<double> device_capacity(n, 0.0);
    double full_capacity = 0.0;
    for (size_t d = 0; d < n; ++d) {
        double sum_us = 0.0;
        for (const PoolEntryInfo &entry : info)
            sum_us +=
                entry.estimate_us[d] + options_.dispatch_overhead_us;
        if (sum_us > 0.0)
            device_capacity[d] =
                1e3 * static_cast<double>(pool_.size()) / sum_us;
        full_capacity += device_capacity[d];
    }
    double surviving_capacity = full_capacity;
    // Feasibility headroom under degradation: with a fraction r of
    // the fleet's capacity surviving, queues drain 1/r times slower,
    // so the EDF guard requires 1/r times the service estimate in
    // deadline headroom before committing a device to a request.
    double degrade_factor = 1.0;

    std::vector<double> free_at(n, 0.0);
    std::vector<bool> busy(n, false);
    std::vector<std::vector<InFlight>> inflight(n);
    std::vector<PendingRetry> retries;

    ServingResult result;
    std::vector<int64_t> rejected_per_class(kNumDeadlineClasses, 0);
    std::vector<int64_t> shed_per_class(kNumDeadlineClasses, 0);
    std::vector<int64_t> dropped_per_class(kNumDeadlineClasses, 0);
    std::vector<int64_t> lost_per_class(kNumDeadlineClasses, 0);
    int64_t microbatches = 0, microbatched = 0;

    auto accountShed = [&](const std::vector<QueuedRequest> &shed) {
        for (const QueuedRequest &victim : shed)
            ++shed_per_class[static_cast<int>(
                victim.deadline_class)];
    };

    auto loseRequest = [&](DeadlineClass dclass) {
        ++fr.lost;
        ++lost_per_class[static_cast<int>(dclass)];
    };

    // The service-time estimate the scheduler and the EDF guard see
    // for device d at virtual time t: the plan-stage estimate scaled
    // by any active slowdown window.
    auto scaledEstimate = [&](size_t pool_index, size_t d, double t) {
        return info[pool_index].estimate_us[d] *
               health.slowdownFactor(d, t);
    };

    // Re-place a drained / retried request on the surviving fleet.
    // Returns false when no device is alive (the caller accounts the
    // loss). Mirrors the arrival placement path, minus admission
    // control: recovery re-placements were admitted once already and
    // re-enter the queue unbounded.
    auto requeue = [&](QueuedRequest qr, double now) {
        if (health.aliveCount() == 0)
            return false;
        std::vector<double> estimates(n, 0.0), ready(n, now),
            backlog(n, 0.0);
        for (size_t d = 0; d < n; ++d) {
            if (!health.alive(d))
                continue;
            estimates[d] = scaledEstimate(qr.pool_index, d, now);
            ready[d] = busy[d] ? free_at[d] : now;
            backlog[d] = edf
                             ? queue.backlogBeforeUs(d, qr.deadline_us)
                             : queue.backlogUs(d);
        }
        const size_t dev = scheduler.placeArrival(
            options_.policy == ServePolicy::RoundRobin
                ? std::vector<double>{}
                : estimates,
            ready, backlog, qr.deadline_us);
        qr.device = dev;
        qr.estimate_us = scaledEstimate(qr.pool_index, dev, now);
        const ServingQueue::Admit admitted =
            queue.admit(qr, nullptr, /*force=*/true);
        DSTC_ASSERT(admitted == ServingQueue::Admit::Admitted,
                    "forced admission cannot be refused");
        return true;
    };

    auto remakeQueued = [&](const ServeOutcome &o) {
        QueuedRequest qr;
        qr.id = o.id;
        qr.pool_index = o.pool_index;
        qr.batch_key = info[o.pool_index].batch_key;
        qr.arrival_us = o.arrival_us;
        qr.deadline_us = o.deadline_us;
        qr.deadline_class = o.deadline_class;
        qr.attempts = o.attempts;
        qr.failed_over = o.failed_over;
        return qr;
    };

    // A dispatch attempt failed transiently on every arm: retry with
    // exponential backoff while the budget lasts, else the request
    // is lost.
    auto resolveFailure = [&](const ServeOutcome &o, double now) {
        if (options_.retry && o.attempts < options_.retry_budget) {
            QueuedRequest qr = remakeQueued(o);
            ++qr.attempts;
            ++fr.retries;
            const double backoff =
                std::ldexp(options_.retry_backoff_us, o.attempts - 1);
            retries.push_back(
                {std::move(qr),
                 std::max(now, o.finish_us + backoff)});
        } else {
            if (options_.retry)
                ++fr.retries_exhausted;
            loseRequest(o.deadline_class);
        }
    };

    // An in-flight arm reached its finish timestamp: completion,
    // transient failure, or hedge resolution. @p now is the event
    // time (== finish, except for the completed prefix of a crashed
    // device's batch, where now is the crash instant).
    auto resolveEntry = [&](InFlight &fl, size_t d, double now) {
        if (fl.fails) {
            ++fr.transient_failures;
            if (fl.hedge_partner != SIZE_MAX) {
                for (const InFlight &partner :
                     inflight[fl.hedge_partner])
                    if (partner.outcome.id == fl.outcome.id)
                        return; // the other arm may still deliver
            }
            resolveFailure(fl.outcome, now);
            return;
        }
        if (fl.hedge_partner != SIZE_MAX) {
            // First successful arm wins; cancel the loser where it
            // runs (its device frees at the winner's completion).
            std::vector<InFlight> &partner_queue =
                inflight[fl.hedge_partner];
            for (size_t i = 0; i < partner_queue.size(); ++i) {
                if (partner_queue[i].outcome.id != fl.outcome.id)
                    continue;
                partner_queue.erase(
                    partner_queue.begin() + static_cast<long>(i));
                free_at[fl.hedge_partner] = now;
                ++fr.hedges_cancelled;
                break;
            }
            if (fl.hedge_secondary)
                ++fr.hedge_wins;
        }
        result.outcomes.push_back(fl.outcome);
        scheduler.completed(d);
    };

    // An in-flight arm was interrupted by its device's crash before
    // finishing: a surviving hedge partner carries the request; else
    // failover re-places it (service restarts) or it is lost.
    auto interruptEntry = [&](const InFlight &fl, double now) {
        if (fl.hedge_partner != SIZE_MAX) {
            for (const InFlight &partner :
                 inflight[fl.hedge_partner])
                if (partner.outcome.id == fl.outcome.id)
                    return; // the surviving arm carries on alone
        }
        if (options_.failover && health.aliveCount() > 0) {
            QueuedRequest qr = remakeQueued(fl.outcome);
            qr.failed_over = true;
            ++fr.failovers;
            if (!requeue(std::move(qr), now))
                loseRequest(fl.outcome.deadline_class);
        } else {
            loseRequest(fl.outcome.deadline_class);
        }
    };

    // Dispatch work to an idle live device: pop (or steal) a head
    // request, extend it with encoding-compatible batch mates (or
    // hedge an interactive head onto a second device), and execute
    // back to back on the device's Session. The virtual clock
    // charges the dispatch overhead once per batch; every report
    // stays the bitwise single-request result.
    auto dispatch = [&](size_t d, double now) {
        if (busy[d] || !health.alive(d))
            return;
        bool stolen = false;
        std::optional<QueuedRequest> head;
        while (true) {
            stolen = false;
            head = queue.pop(d, edf);
            if (!head && scheduler.workStealing()) {
                size_t donor = 0;
                head = queue.steal(d, &donor);
                if (head) {
                    stolen = true;
                    scheduler.recordSteal(donor);
                }
            }
            if (!head)
                return;
            if (!scheduler.dropInfeasible())
                break;
            // EDF overload guard: executing a request that cannot
            // meet its deadline even if started right now converts
            // one miss into a procession of misses (everything
            // behind it slips too). Drop it unexecuted and let the
            // device serve a still-feasible request instead. Under
            // degradation the estimate carries the surviving-
            // capacity headroom factor; slowdown windows scale it
            // on every policy.
            const double est =
                scaledEstimate(head->pool_index, d, now) *
                (options_.degrade ? degrade_factor : 1.0);
            if (now + options_.dispatch_overhead_us + est <=
                head->deadline_us)
                break;
            ++dropped_per_class[static_cast<int>(
                head->deadline_class)];
        }

        // Hedged dispatch: an interactive head is duplicated onto
        // the best other idle live device; the first successful arm
        // wins and cancels the loser. Hedges never batch (the two
        // arms must stay cancellable as a unit).
        size_t hedge_dev = SIZE_MAX;
        if (options_.hedge &&
            head->deadline_class == DeadlineClass::Interactive) {
            double best = kInf;
            for (size_t d2 = 0; d2 < n; ++d2) {
                if (d2 == d || busy[d2] || !health.alive(d2))
                    continue;
                const double est =
                    scaledEstimate(head->pool_index, d2, now);
                if (est < best) {
                    best = est;
                    hedge_dev = d2;
                }
            }
        }
        if (hedge_dev != SIZE_MAX) {
            ++fr.hedges;
            const size_t arms[2] = {d, hedge_dev};
            for (int a = 0; a < 2; ++a) {
                const size_t dev = arms[a];
                ServeOutcome outcome;
                outcome.id = head->id;
                outcome.pool_index = head->pool_index;
                outcome.device = dev;
                outcome.deadline_class = head->deadline_class;
                outcome.arrival_us = head->arrival_us;
                outcome.deadline_us = head->deadline_us;
                outcome.stolen = stolen && a == 0;
                outcome.attempts = head->attempts;
                outcome.failed_over = head->failed_over;
                outcome.hedged = true;
                outcome.start_us =
                    now + options_.dispatch_overhead_us;
                outcome.report = cluster_->device(dev).run(
                    pool_[head->pool_index]);
                outcome.report.device = static_cast<int>(dev);
                outcome.finish_us =
                    outcome.start_us +
                    outcome.report.timeUs() *
                        health.slowdownFactor(dev, outcome.start_us);
                outcome.met_deadline =
                    outcome.finish_us <= head->deadline_us;
                InFlight fl;
                fl.outcome = std::move(outcome);
                fl.fails = injector.transientFails(
                    head->id, head->attempts, dev);
                fl.hedge_partner = arms[1 - a];
                fl.hedge_secondary = a == 1;
                free_at[dev] = fl.outcome.finish_us;
                busy[dev] = true;
                inflight[dev].push_back(std::move(fl));
            }
            return;
        }

        std::vector<QueuedRequest> batch;
        batch.push_back(*head);
        if (options_.microbatch > 1) {
            std::vector<QueuedRequest> mates = queue.popBatchMates(
                d, head->batch_key, options_.microbatch - 1, edf);
            batch.insert(batch.end(), mates.begin(), mates.end());
        }
        if (batch.size() >= 2) {
            ++microbatches;
            microbatched += static_cast<int64_t>(batch.size());
        }
        double t = now + options_.dispatch_overhead_us;
        for (size_t i = 0; i < batch.size(); ++i) {
            const QueuedRequest &member = batch[i];
            ServeOutcome outcome;
            outcome.id = member.id;
            outcome.pool_index = member.pool_index;
            outcome.device = d;
            outcome.deadline_class = member.deadline_class;
            outcome.arrival_us = member.arrival_us;
            outcome.deadline_us = member.deadline_us;
            outcome.stolen = stolen && i == 0;
            outcome.batched_follower = i > 0;
            outcome.attempts = member.attempts;
            outcome.failed_over = member.failed_over;
            outcome.start_us = t;
            outcome.report =
                cluster_->device(d).run(pool_[member.pool_index]);
            outcome.report.device = static_cast<int>(d);
            t += outcome.report.timeUs() *
                 health.slowdownFactor(d, outcome.start_us);
            outcome.finish_us = t;
            outcome.met_deadline = t <= member.deadline_us;
            InFlight fl;
            fl.outcome = std::move(outcome);
            fl.fails = injector.transientFails(member.id,
                                               member.attempts, d);
            inflight[d].push_back(std::move(fl));
        }
        free_at[d] = t;
        busy[d] = true;
    };

    // Crash-stop @p d at @p now: resolve the completed prefix of its
    // in-flight batch, fail over (or lose) the interrupted suffix
    // and the queued backlog, exclude the device from placement and
    // stealing, and rescale the admission bound to the survivors.
    auto applyCrash = [&](size_t d, double now) {
        if (!health.alive(d))
            return; // crash-stop: a second crash is a no-op
        ++fr.crashes;
        health.markCrashed(d, now);
        scheduler.setDeviceAlive(d, false);
        std::vector<InFlight> flight = std::move(inflight[d]);
        inflight[d].clear();
        busy[d] = false;
        for (InFlight &fl : flight) {
            if (fl.outcome.finish_us <= now)
                resolveEntry(fl, d, now);
            else
                interruptEntry(fl, now);
        }
        for (QueuedRequest &qr : queue.drainDevice(d)) {
            const DeadlineClass dclass = qr.deadline_class;
            if (options_.failover && health.aliveCount() > 0) {
                qr.failed_over = true;
                ++fr.failovers;
                if (!requeue(std::move(qr), now))
                    loseRequest(dclass);
            } else {
                loseRequest(dclass);
            }
        }
        if (options_.degrade) {
            surviving_capacity =
                std::max(0.0, surviving_capacity -
                                  device_capacity[d]);
            if (surviving_capacity > 0.0 && full_capacity > 0.0) {
                degrade_factor =
                    full_capacity / surviving_capacity;
                // Under reduced capacity the throughput-oriented
                // class is shed before anything a user waits on.
                queue.setShedBatchFirst(true);
                const double scaled =
                    static_cast<double>(options_.queue_depth) *
                    surviving_capacity / full_capacity;
                queue.setDepthBound(static_cast<size_t>(
                    std::max(1.0, std::floor(scaled + 0.5))));
                std::vector<QueuedRequest> shed;
                queue.shedExcess(&shed);
                accountShed(shed);
            }
        }
    };

    const std::vector<FaultEvent> &fault_events = injector.events();
    size_t next_arrival = 0, next_fault = 0;
    while (true) {
        const double arr_t = next_arrival < arrivals.size()
                                 ? arrivals[next_arrival].time_us
                                 : kInf;
        double free_t = kInf;
        for (size_t d = 0; d < n; ++d)
            if (busy[d])
                free_t = std::min(free_t, free_at[d]);
        double retry_t = kInf;
        for (const PendingRetry &pending : retries)
            retry_t = std::min(retry_t, pending.ready_us);
        const double fault_t = next_fault < fault_events.size()
                                   ? fault_events[next_fault].time_us
                                   : kInf;
        if (arr_t == kInf && free_t == kInf && retry_t == kInf &&
            fault_t == kInf)
            break;

        // Event priority at equal timestamps: faults, then device
        // completions, then retry re-placements, then arrivals — a
        // crash at t kills the batch still in flight at t, and a
        // completion at t frees a device for the arrival at t.
        if (fault_t <= arr_t && fault_t <= free_t &&
            fault_t <= retry_t) {
            const double now = fault_t;
            while (next_fault < fault_events.size() &&
                   fault_events[next_fault].time_us == now) {
                const FaultEvent &event = fault_events[next_fault++];
                if (event.kind == FaultKind::Crash) {
                    applyCrash(event.device, now);
                } else if (health.alive(event.device)) {
                    ++fr.slowdowns;
                    health.addSlowdown(event.device, event.time_us,
                                       event.duration_us,
                                       event.factor);
                }
            }
            for (size_t d = 0; d < n; ++d)
                dispatch(d, now);
            continue;
        }

        if (free_t <= arr_t && free_t <= retry_t) {
            // Device-completion event(s): resolve and free every
            // device whose batch (or cancelled hedge arm) ends now,
            // in ascending index order, then refill them.
            const double now = free_t;
            for (size_t d = 0; d < n; ++d) {
                if (!busy[d] || free_at[d] != now)
                    continue;
                busy[d] = false;
                std::vector<InFlight> flight =
                    std::move(inflight[d]);
                inflight[d].clear();
                for (InFlight &fl : flight)
                    resolveEntry(fl, d, now);
            }
            for (size_t d = 0; d < n; ++d)
                dispatch(d, now);
            continue;
        }

        if (retry_t <= arr_t) {
            // Backoff expiry: re-place every retry that is ready, in
            // (ready, id) order so the schedule stays a pure
            // function of the admitted sequence.
            const double now = retry_t;
            while (true) {
                size_t pick = retries.size();
                for (size_t i = 0; i < retries.size(); ++i) {
                    if (retries[i].ready_us > now)
                        continue;
                    if (pick == retries.size() ||
                        retries[i].ready_us <
                            retries[pick].ready_us ||
                        (retries[i].ready_us ==
                             retries[pick].ready_us &&
                         retries[i].request.id <
                             retries[pick].request.id))
                        pick = i;
                }
                if (pick == retries.size())
                    break;
                QueuedRequest qr = std::move(retries[pick].request);
                retries.erase(retries.begin() +
                              static_cast<long>(pick));
                const DeadlineClass dclass = qr.deadline_class;
                if (!requeue(std::move(qr), now))
                    loseRequest(dclass);
            }
            for (size_t d = 0; d < n; ++d)
                dispatch(d, now);
            continue;
        }

        // Arrival event: admission control, placement, enqueue.
        const Arrival &arrival = arrivals[next_arrival++];
        const double now = arrival.time_us;
        const PoolEntryInfo &entry = info[arrival.pool_index];
        // The SLO stays workload-relative and fault-*independent*:
        // the deadline derives from the healthy reference-device
        // estimate, so a degraded fleet is held to the same bar.
        const double deadline = deadlineFor(
            arrival.deadline_class, now, entry.estimate_us[0]);

        if (health.aliveCount() == 0) {
            // Whole fleet dead: the front door refuses immediately.
            ++rejected_per_class[static_cast<int>(
                arrival.deadline_class)];
            continue;
        }
        if (queue.totalDepth() >= queue.depthBound() &&
            options_.admission == AdmissionPolicy::Reject) {
            ++rejected_per_class[static_cast<int>(
                arrival.deadline_class)];
            continue;
        }

        std::vector<double> estimates(n, 0.0), ready(n, now),
            backlog(n, 0.0);
        for (size_t d = 0; d < n; ++d) {
            if (!health.alive(d))
                continue;
            estimates[d] = scaledEstimate(arrival.pool_index, d, now);
            ready[d] = busy[d] ? free_at[d] : now;
            backlog[d] = edf ? queue.backlogBeforeUs(d, deadline)
                             : queue.backlogUs(d);
        }
        const size_t dev = scheduler.placeArrival(
            options_.policy == ServePolicy::RoundRobin
                ? std::vector<double>{}
                : estimates,
            ready, backlog, deadline);

        QueuedRequest qr;
        qr.id = arrival.id;
        qr.pool_index = arrival.pool_index;
        qr.batch_key = entry.batch_key;
        qr.arrival_us = now;
        qr.deadline_us = deadline;
        qr.estimate_us = scaledEstimate(arrival.pool_index, dev, now);
        qr.deadline_class = arrival.deadline_class;
        qr.device = dev;
        std::vector<QueuedRequest> shed;
        const ServingQueue::Admit admitted = queue.admit(qr, &shed);
        DSTC_ASSERT(admitted == ServingQueue::Admit::Admitted,
                    "reject-on-overload is handled before placement");
        accountShed(shed);

        // The newcomer (or a rebalanced queue) may feed an idle
        // device immediately.
        for (size_t d = 0; d < n; ++d)
            dispatch(d, now);
    }

    std::sort(result.outcomes.begin(), result.outcomes.end(),
              [](const ServeOutcome &a, const ServeOutcome &b) {
                  return a.id < b.id;
              });

    // -- assemble the scorecard --------------------------------------
    ServingStats &stats = result.stats;
    stats.offered = static_cast<int64_t>(arrivals.size());
    stats.per_class.assign(kNumDeadlineClasses, ClassStats{});
    for (const Arrival &arrival : arrivals)
        ++stats.per_class[static_cast<int>(arrival.deadline_class)]
              .offered;

    std::vector<double> latencies;
    std::vector<std::vector<double>> class_latencies(
        kNumDeadlineClasses);
    std::vector<std::vector<double>> class_recovery_latencies(
        kNumDeadlineClasses);
    latencies.reserve(result.outcomes.size());
    int64_t met = 0;
    double makespan = 0.0;
    for (const ServeOutcome &outcome : result.outcomes) {
        const double latency = outcome.finish_us - outcome.arrival_us;
        latencies.push_back(latency);
        const int c = static_cast<int>(outcome.deadline_class);
        ClassStats &cls = stats.per_class[c];
        class_latencies[c].push_back(latency);
        ++cls.completed;
        if (outcome.attempts > 1 || outcome.failed_over) {
            ++cls.recovered;
            class_recovery_latencies[c].push_back(latency);
        }
        if (outcome.met_deadline)
            ++met;
        else
            ++cls.deadline_misses;
        makespan = std::max(makespan, outcome.finish_us);
    }
    for (int c = 0; c < kNumDeadlineClasses; ++c) {
        stats.per_class[c].rejected = rejected_per_class[c];
        stats.per_class[c].shed = shed_per_class[c];
        stats.per_class[c].dropped = dropped_per_class[c];
        stats.per_class[c].lost = lost_per_class[c];
        stats.per_class[c].latency =
            summarizeLatencies(std::move(class_latencies[c]));
        stats.per_class[c].recovery_latency = summarizeLatencies(
            std::move(class_recovery_latencies[c]));
        stats.rejected += rejected_per_class[c];
        stats.shed += shed_per_class[c];
        stats.dropped += dropped_per_class[c];
        stats.deadline_misses += stats.per_class[c].deadline_misses;
    }
    stats.completed = static_cast<int64_t>(result.outcomes.size());
    stats.admitted = stats.offered - stats.rejected;
    stats.steals = scheduler.steals();
    stats.microbatches = microbatches;
    stats.microbatched = microbatched;
    fr.availability =
        stats.completed + fr.lost > 0
            ? static_cast<double>(stats.completed) /
                  static_cast<double>(stats.completed + fr.lost)
            : 1.0;
    stats.faults = fr;
    stats.makespan_us = makespan;
    if (makespan > 0.0) {
        stats.throughput_rpms =
            static_cast<double>(stats.completed) / (makespan / 1e3);
        stats.goodput_rpms =
            static_cast<double>(met) / (makespan / 1e3);
    }
    if (stats.completed > 0)
        stats.deadline_miss_rate =
            static_cast<double>(stats.deadline_misses) /
            static_cast<double>(stats.completed);
    if (stats.offered > 0)
        stats.slo_attainment = static_cast<double>(met) /
                               static_cast<double>(stats.offered);
    stats.latency = summarizeLatencies(std::move(latencies));
    stats.placed_per_device.resize(n);
    stats.completed_per_device.resize(n);
    for (size_t d = 0; d < n; ++d) {
        const DeviceLoad load = scheduler.load(d);
        stats.placed_per_device[d] = load.placed;
        stats.completed_per_device[d] = load.completed;
    }
    return result;
}

bool
ServingEngine::replayMatchesSerial(const ServingResult &result)
{
    // Fresh single-device Sessions — no shared cache, no cluster —
    // replaying the placed sequence in submission order must
    // reproduce every report bit for bit.
    std::vector<std::unique_ptr<Session>> reference;
    reference.reserve(options_.devices.size());
    for (const GpuConfig &cfg : options_.devices)
        reference.push_back(std::make_unique<Session>(cfg));
    for (const ServeOutcome &outcome : result.outcomes) {
        if (outcome.device >= reference.size())
            return false;
        const KernelReport serial =
            reference[outcome.device]->run(pool_[outcome.pool_index]);
        if (!statsBitwiseEqual(outcome.report.stats, serial.stats) ||
            outcome.report.backend != serial.backend ||
            outcome.report.method != serial.method)
            return false;
    }
    return true;
}

} // namespace dstc
