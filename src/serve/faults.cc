#include "serve/faults.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"

namespace dstc {

namespace {

/** splitmix64 finalizer — the transient draw's stateless hash. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

bool
parseDouble(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    *out = value;
    return true;
}

bool
parseDeviceSuffix(const std::string &text, size_t *device)
{
    // ":d<idx>" — a non-negative whole decimal device index.
    if (text.size() < 2 || text[0] != 'd')
        return false;
    for (size_t i = 1; i < text.size(); ++i)
        if (text[i] < '0' || text[i] > '9')
            return false;
    *device = static_cast<size_t>(
        std::strtoull(text.c_str() + 1, nullptr, 10));
    return true;
}

bool
tokenError(const std::string &token, const std::string &expected,
           std::string *error)
{
    if (error)
        *error = "malformed fault token '" + token + "': expected " +
                 expected;
    return false;
}

bool
parseToken(const std::string &token, FaultSpec *out,
           std::string *error)
{
    if (token.rfind("crash@", 0) == 0) {
        const std::string body = token.substr(6);
        const size_t colon = body.find(":");
        if (colon == std::string::npos)
            return tokenError(token, "crash@<t_us>:d<device>", error);
        FaultEvent event;
        event.kind = FaultKind::Crash;
        if (!parseDouble(body.substr(0, colon), &event.time_us) ||
            event.time_us < 0.0 ||
            !parseDeviceSuffix(body.substr(colon + 1), &event.device))
            return tokenError(token, "crash@<t_us>:d<device>", error);
        out->events.push_back(event);
        return true;
    }
    if (token.rfind("slow@", 0) == 0) {
        const std::string usage =
            "slow@<t_us>+<dur_us>x<factor>:d<device>";
        const std::string body = token.substr(5);
        const size_t plus = body.find('+');
        const size_t x = body.find('x', plus == std::string::npos
                                           ? 0
                                           : plus + 1);
        const size_t colon = body.find(':', x == std::string::npos
                                                ? 0
                                                : x + 1);
        if (plus == std::string::npos || x == std::string::npos ||
            colon == std::string::npos)
            return tokenError(token, usage, error);
        FaultEvent event;
        event.kind = FaultKind::Slowdown;
        if (!parseDouble(body.substr(0, plus), &event.time_us) ||
            !parseDouble(body.substr(plus + 1, x - plus - 1),
                         &event.duration_us) ||
            !parseDouble(body.substr(x + 1, colon - x - 1),
                         &event.factor) ||
            event.time_us < 0.0 || event.duration_us <= 0.0 ||
            event.factor < 1.0 ||
            !parseDeviceSuffix(body.substr(colon + 1), &event.device))
            return tokenError(
                token,
                usage + " with t_us >= 0, dur_us > 0, factor >= 1",
                error);
        out->events.push_back(event);
        return true;
    }
    if (token.rfind("transient:p", 0) == 0) {
        double prob = 0.0;
        if (!parseDouble(token.substr(11), &prob) || prob < 0.0 ||
            prob >= 1.0)
            return tokenError(
                token, "transient:p<prob> with prob in [0, 1)",
                error);
        out->transient_prob = prob;
        return true;
    }
    if (token.rfind("randcrash:", 0) == 0) {
        const std::string count = token.substr(10);
        if (count.empty() ||
            count.find_first_not_of("0123456789") !=
                std::string::npos)
            return tokenError(token, "randcrash:<count>", error);
        out->random_crashes +=
            static_cast<int>(std::strtoul(count.c_str(), nullptr, 10));
        return true;
    }
    return tokenError(token,
                      "crash@<t_us>:d<i> | "
                      "slow@<t_us>+<dur_us>x<f>:d<i> | "
                      "transient:p<prob> | randcrash:<n>",
                      error);
}

} // namespace

bool
FaultSpec::parse(const std::string &spec, FaultSpec *out,
                 std::string *error)
{
    FaultSpec parsed;
    if (spec.empty()) {
        if (error)
            *error = "empty fault spec";
        return false;
    }
    size_t begin = 0;
    while (begin <= spec.size()) {
        size_t end = spec.find(';', begin);
        if (end == std::string::npos)
            end = spec.size();
        const std::string token = spec.substr(begin, end - begin);
        if (token.empty()) {
            if (error)
                *error = "empty fault token in spec '" + spec + "'";
            return false;
        }
        if (!parseToken(token, &parsed, error))
            return false;
        begin = end + 1;
        if (end == spec.size())
            break;
    }
    *out = std::move(parsed);
    return true;
}

FaultInjector::FaultInjector(FaultSpec spec, size_t num_devices,
                             double window_us, uint64_t seed)
    : spec_(std::move(spec)), seed_(seed)
{
    for (const FaultEvent &event : spec_.events)
        if (event.device < num_devices)
            events_.push_back(event);
    // Random crashes: a pure function of the seed, uniform over the
    // arrival window and the fleet.
    if (spec_.random_crashes > 0 && num_devices > 0 &&
        window_us > 0.0) {
        Rng rng(mix64(seed_ ^ 0x66756c74ull)); // "fult"
        for (int i = 0; i < spec_.random_crashes; ++i) {
            FaultEvent event;
            event.kind = FaultKind::Crash;
            event.time_us = rng.uniform() * window_us;
            event.device = static_cast<size_t>(
                rng.uniformInt(num_devices));
            events_.push_back(event);
        }
    }
    std::sort(events_.begin(), events_.end(),
              [](const FaultEvent &a, const FaultEvent &b) {
                  if (a.time_us != b.time_us)
                      return a.time_us < b.time_us;
                  if (a.device != b.device)
                      return a.device < b.device;
                  return static_cast<int>(a.kind) <
                         static_cast<int>(b.kind);
              });
}

bool
FaultInjector::transientFails(int64_t id, int attempt,
                              size_t device) const
{
    if (spec_.transient_prob <= 0.0)
        return false;
    uint64_t h = mix64(seed_ ^ 0x7472616e7369ull); // "transi"
    h = mix64(h ^ static_cast<uint64_t>(id));
    h = mix64(h ^ static_cast<uint64_t>(attempt));
    h = mix64(h ^ static_cast<uint64_t>(device));
    const double draw =
        static_cast<double>(h >> 11) * 0x1.0p-53;
    return draw < spec_.transient_prob;
}

HealthTracker::HealthTracker(size_t num_devices)
    : crashed_at_(num_devices,
                  std::numeric_limits<double>::infinity()),
      windows_(num_devices), alive_count_(num_devices)
{
    DSTC_ASSERT(num_devices >= 1, "a fleet needs a device");
}

void
HealthTracker::markCrashed(size_t device, double time_us)
{
    DSTC_ASSERT(device < crashed_at_.size());
    if (crashed_at_[device] !=
        std::numeric_limits<double>::infinity())
        return; // crash-stop: already dead
    crashed_at_[device] = time_us;
    --alive_count_;
}

void
HealthTracker::addSlowdown(size_t device, double time_us,
                           double duration_us, double factor)
{
    DSTC_ASSERT(device < windows_.size());
    windows_[device].push_back(
        {time_us, time_us + duration_us, factor});
}

bool
HealthTracker::alive(size_t device) const
{
    DSTC_ASSERT(device < crashed_at_.size());
    return crashed_at_[device] ==
           std::numeric_limits<double>::infinity();
}

double
HealthTracker::crashTimeUs(size_t device) const
{
    DSTC_ASSERT(device < crashed_at_.size());
    return crashed_at_[device];
}

double
HealthTracker::slowdownFactor(size_t device, double time_us) const
{
    DSTC_ASSERT(device < windows_.size());
    double factor = 1.0;
    for (const Window &window : windows_[device])
        if (window.begin_us <= time_us && time_us < window.end_us)
            factor *= window.factor;
    return factor;
}

} // namespace dstc
