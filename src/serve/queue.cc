#include "serve/queue.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace dstc {

const char *
admissionPolicyToken(AdmissionPolicy policy)
{
    switch (policy) {
    case AdmissionPolicy::Reject:
        return "reject";
    case AdmissionPolicy::ShedOldest:
        return "shed";
    }
    return "?";
}

bool
parseAdmissionPolicy(const std::string &token, AdmissionPolicy *out)
{
    if (token == "reject")
        *out = AdmissionPolicy::Reject;
    else if (token == "shed")
        *out = AdmissionPolicy::ShedOldest;
    else
        return false;
    return true;
}

ServingQueue::ServingQueue(size_t num_devices, size_t depth_bound,
                           AdmissionPolicy policy)
    : depth_bound_(depth_bound == 0 ? 1 : depth_bound),
      policy_(policy), queues_(num_devices)
{
    DSTC_ASSERT(num_devices >= 1, "a queue needs a device");
}

std::optional<std::pair<size_t, size_t>>
ServingQueue::shedVictim() const
{
    // Default: the oldest queued request anywhere (lowest id: ids
    // are the submission order, so "oldest" is well defined and
    // deterministic). Batch-first: the lowest-priority class present
    // loses first (batch, then standard, then interactive), oldest
    // id within it — the graceful-degradation eviction order.
    size_t victim_dev = queues_.size();
    size_t victim_idx = 0;
    for (size_t d = 0; d < queues_.size(); ++d) {
        for (size_t i = 0; i < queues_[d].size(); ++i) {
            const QueuedRequest &q = queues_[d][i];
            if (victim_dev == queues_.size()) {
                victim_dev = d;
                victim_idx = i;
                continue;
            }
            const QueuedRequest &v = queues_[victim_dev][victim_idx];
            bool wins;
            if (shed_batch_first_ &&
                q.deadline_class != v.deadline_class)
                // Higher enum value = lower priority = sheds first.
                wins = static_cast<int>(q.deadline_class) >
                       static_cast<int>(v.deadline_class);
            else
                wins = q.id < v.id;
            if (wins) {
                victim_dev = d;
                victim_idx = i;
            }
        }
    }
    if (victim_dev == queues_.size())
        return std::nullopt;
    return std::make_pair(victim_dev, victim_idx);
}

ServingQueue::Admit
ServingQueue::admit(QueuedRequest request,
                    std::vector<QueuedRequest> *shed, bool force)
{
    DSTC_ASSERT(request.device < queues_.size());
    if (!force && total_ >= depth_bound_) {
        if (policy_ == AdmissionPolicy::Reject)
            return Admit::Rejected;
        const auto victim = shedVictim();
        DSTC_ASSERT(victim.has_value(),
                    "full queue with no entries");
        auto [victim_dev, victim_idx] = *victim;
        if (shed)
            shed->push_back(queues_[victim_dev][victim_idx]);
        queues_[victim_dev].erase(queues_[victim_dev].begin() +
                                  static_cast<long>(victim_idx));
        --total_;
    }
    queues_[request.device].push_back(request);
    ++total_;
    return Admit::Admitted;
}

std::vector<QueuedRequest>
ServingQueue::drainDevice(size_t device)
{
    DSTC_ASSERT(device < queues_.size());
    std::vector<QueuedRequest> drained =
        std::move(queues_[device]);
    queues_[device].clear();
    total_ -= drained.size();
    std::sort(drained.begin(), drained.end(),
              [](const QueuedRequest &a, const QueuedRequest &b) {
                  return a.id < b.id;
              });
    return drained;
}

void
ServingQueue::setDepthBound(size_t bound)
{
    depth_bound_ = bound == 0 ? 1 : bound;
}

void
ServingQueue::shedExcess(std::vector<QueuedRequest> *shed)
{
    while (total_ > depth_bound_) {
        const auto victim = shedVictim();
        DSTC_ASSERT(victim.has_value(),
                    "positive total with no entries");
        auto [victim_dev, victim_idx] = *victim;
        if (shed)
            shed->push_back(queues_[victim_dev][victim_idx]);
        queues_[victim_dev].erase(queues_[victim_dev].begin() +
                                  static_cast<long>(victim_idx));
        --total_;
    }
}

bool
ServingQueue::empty(size_t device) const
{
    return queues_[device].empty();
}

size_t
ServingQueue::depth(size_t device) const
{
    return queues_[device].size();
}

double
ServingQueue::backlogUs(size_t device) const
{
    double sum = 0.0;
    for (const QueuedRequest &q : queues_[device])
        sum += q.estimate_us;
    return sum;
}

double
ServingQueue::backlogBeforeUs(size_t device,
                              double deadline_us) const
{
    double sum = 0.0;
    for (const QueuedRequest &q : queues_[device])
        if (q.deadline_us <= deadline_us)
            sum += q.estimate_us;
    return sum;
}

namespace {

/** Index of the next request to dequeue, or SIZE_MAX when empty. */
size_t
nextIndex(const std::vector<QueuedRequest> &queue, bool edf)
{
    size_t best = SIZE_MAX;
    for (size_t i = 0; i < queue.size(); ++i) {
        if (best == SIZE_MAX) {
            best = i;
            continue;
        }
        const QueuedRequest &q = queue[i];
        const QueuedRequest &b = queue[best];
        const bool wins =
            edf ? (q.deadline_us < b.deadline_us ||
                   (q.deadline_us == b.deadline_us && q.id < b.id))
                : q.id < b.id;
        if (wins)
            best = i;
    }
    return best;
}

} // namespace

std::optional<QueuedRequest>
ServingQueue::pop(size_t device, bool edf)
{
    std::vector<QueuedRequest> &queue = queues_[device];
    const size_t idx = nextIndex(queue, edf);
    if (idx == SIZE_MAX)
        return std::nullopt;
    QueuedRequest request = queue[idx];
    queue.erase(queue.begin() + static_cast<long>(idx));
    --total_;
    return request;
}

std::vector<QueuedRequest>
ServingQueue::popBatchMates(size_t device, uint64_t key,
                            size_t max_extra, bool edf)
{
    std::vector<QueuedRequest> mates;
    while (mates.size() < max_extra) {
        std::vector<QueuedRequest> &queue = queues_[device];
        size_t best = SIZE_MAX;
        for (size_t i = 0; i < queue.size(); ++i) {
            if (queue[i].batch_key != key)
                continue;
            if (best == SIZE_MAX) {
                best = i;
                continue;
            }
            const QueuedRequest &q = queue[i];
            const QueuedRequest &b = queue[best];
            const bool wins =
                edf ? (q.deadline_us < b.deadline_us ||
                       (q.deadline_us == b.deadline_us &&
                        q.id < b.id))
                    : q.id < b.id;
            if (wins)
                best = i;
        }
        if (best == SIZE_MAX)
            break;
        mates.push_back(queue[best]);
        queue.erase(queue.begin() + static_cast<long>(best));
        --total_;
    }
    return mates;
}

std::optional<QueuedRequest>
ServingQueue::steal(size_t thief, size_t *donor_out)
{
    size_t donor = queues_.size();
    for (size_t d = 0; d < queues_.size(); ++d) {
        if (d == thief || queues_[d].empty())
            continue;
        if (donor == queues_.size() ||
            queues_[d].size() > queues_[donor].size())
            donor = d;
    }
    if (donor == queues_.size())
        return std::nullopt;
    if (donor_out)
        *donor_out = donor;
    // The donor's least urgent entry: latest deadline, ties to the
    // highest id (the most recently admitted).
    std::vector<QueuedRequest> &queue = queues_[donor];
    size_t best = 0;
    for (size_t i = 1; i < queue.size(); ++i) {
        const QueuedRequest &q = queue[i];
        const QueuedRequest &b = queue[best];
        if (q.deadline_us > b.deadline_us ||
            (q.deadline_us == b.deadline_us && q.id > b.id))
            best = i;
    }
    QueuedRequest request = queue[best];
    queue.erase(queue.begin() + static_cast<long>(best));
    --total_;
    request.device = thief;
    return request;
}

} // namespace dstc
