/**
 * @file
 * DeadlineScheduler — the serving layer's placement engine, extending
 * the Cluster's ClusterScheduler with deadline- and load-aware
 * placement plus work-stealing accounting.
 *
 * Three serving policies:
 *
 *  - Deadline (default): a request is placed on the device with the
 *    earliest *deadline-aware* estimated finish — device-ready time
 *    plus only the backlog an EDF dequeue would actually run before
 *    this request (entries with earlier deadlines), plus the
 *    request's own per-device estimate. An urgent request therefore
 *    sees through a queue full of lax batch work, which plain
 *    least-loaded placement cannot. Device queues drain EDF, and an
 *    idle device steals the least urgent entry of the deepest queue.
 *  - CostModel: earliest estimated finish over the full FIFO backlog
 *    (the PR 5 Cluster policy, lifted to open-loop queues). No
 *    stealing, FIFO drain.
 *  - RoundRobin: submission-order rotation; estimates never
 *    computed. No stealing, FIFO drain.
 *
 * Like the base class, placement is a pure function of the admitted
 * sequence — never of host execution timing — so a serving run's
 * schedule is bitwise reproducible from (options, seed).
 */
#ifndef DSTC_SERVE_SCHEDULER_H
#define DSTC_SERVE_SCHEDULER_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster.h"

namespace dstc {

/** How the serving layer maps admitted requests to devices. */
enum class ServePolicy
{
    Deadline,   ///< EDF drain + deadline-aware ETF + work stealing
    CostModel,  ///< FIFO drain + earliest-estimated-finish
    RoundRobin, ///< FIFO drain + rotation
};

/** Stable CLI/parse token of a policy ("deadline", "cost", "rr"). */
const char *servePolicyToken(ServePolicy policy);

/** Parse a CLI token into a policy; false on unknown token. */
bool parseServePolicy(const std::string &token, ServePolicy *out);

/** The serving placement engine. */
class DeadlineScheduler : public ClusterScheduler
{
  public:
    DeadlineScheduler(ServePolicy policy, size_t num_devices);

    ServePolicy servePolicy() const { return serve_policy_; }

    /** Whether device queues drain earliest-deadline-first. */
    bool edfOrder() const
    {
        return serve_policy_ == ServePolicy::Deadline;
    }

    /** Whether idle devices steal from backlogged ones. */
    bool workStealing() const
    {
        return serve_policy_ == ServePolicy::Deadline;
    }

    /**
     * Whether the dispatch loop drops dequeued requests whose
     * deadline is already infeasible (start + estimate past the
     * deadline) instead of executing them. This is the classic EDF
     * overload guard: without it, an overloaded EDF queue serves a
     * procession of about-to-miss requests and every one of them
     * finishes late — goodput collapses exactly when it matters.
     */
    bool dropInfeasible() const
    {
        return serve_policy_ == ServePolicy::Deadline;
    }

    /**
     * Pick a device for one admitted request.
     *
     * @param estimates   per-device plan-stage estimates (empty
     *                    under RoundRobin, which never estimates)
     * @param ready_at_us per-device max(busy-until, now)
     * @param backlog_us  per-device queued work the request would
     *                    wait behind: full backlog under CostModel,
     *                    earlier-deadline backlog under Deadline
     * @param deadline_us the request's absolute deadline (unused by
     *                    CostModel/RoundRobin)
     *
     * Ties break toward the lowest device index. Updates the
     * per-device placed/estimated-busy accounting.
     */
    size_t placeArrival(const std::vector<double> &estimates,
                        const std::vector<double> &ready_at_us,
                        const std::vector<double> &backlog_us,
                        double deadline_us);

    /** Record a work-steal of one request from @p donor. */
    void recordSteal(size_t donor);

    int64_t steals() const;

  private:
    ServePolicy serve_policy_;
    int64_t steals_ = 0;
};

} // namespace dstc

#endif // DSTC_SERVE_SCHEDULER_H
