/**
 * @file
 * ServingQueue — bounded admission front between the open-loop
 * arrival stream and the Cluster's devices.
 *
 * Requests are placed onto a per-device queue at admission time (the
 * DeadlineScheduler picks the device); the queue enforces one global
 * depth bound across all devices — the backpressure surface. On
 * overload the admission policy decides who pays:
 *
 *  - Reject: the arriving request is refused (classic load shedding
 *    at the front door; the client sees an immediate error).
 *  - ShedOldest: the oldest queued request anywhere is dropped to
 *    make room (prefer fresh work: the oldest entry has burned the
 *    most of its deadline and is the likeliest goodput loss anyway).
 *
 * Dequeue order is per-policy: EDF (earliest deadline first) for the
 * deadline scheduler, FIFO otherwise. All tie-breaks are on the
 * submission id, so every operation is a pure function of the
 * admitted sequence — the serving determinism contract.
 */
#ifndef DSTC_SERVE_QUEUE_H
#define DSTC_SERVE_QUEUE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/arrival.h"

namespace dstc {

/** What happens to an arriving request when the queue is full. */
enum class AdmissionPolicy
{
    Reject,    ///< refuse the newcomer
    ShedOldest ///< drop the oldest queued request, admit the newcomer
};

/** Stable CLI/parse token of a policy ("reject", "shed"). */
const char *admissionPolicyToken(AdmissionPolicy policy);

/** Parse a CLI token into a policy; false on unknown token. */
bool parseAdmissionPolicy(const std::string &token,
                          AdmissionPolicy *out);

/** One admitted request waiting on a device queue. */
struct QueuedRequest
{
    int64_t id = 0;         ///< submission-sequence position
    size_t pool_index = 0;  ///< workload-pool request to execute
    uint64_t batch_key = 0; ///< encoding-compatibility digest
    double arrival_us = 0.0;
    double deadline_us = 0.0;
    double estimate_us = 0.0; ///< plan-stage estimate on the device
    DeadlineClass deadline_class = DeadlineClass::Standard;
    size_t device = 0; ///< placed device (updated when stolen)

    // Fault-recovery provenance, carried through re-placements.
    int attempts = 1;         ///< dispatch attempts including this one
    bool failed_over = false; ///< re-placed off a crashed device
};

/** Bounded per-device queues with admission control. */
class ServingQueue
{
  public:
    /**
     * @param num_devices one queue per device
     * @param depth_bound global bound across all queues (>= 1)
     * @param policy      overload behavior
     */
    ServingQueue(size_t num_devices, size_t depth_bound,
                 AdmissionPolicy policy);

    enum class Admit
    {
        Admitted,
        Rejected,
    };

    /**
     * Enqueue @p request on its placed device. On overload, either
     * rejects it or sheds the oldest queued request (appended to
     * @p shed, which the caller accounts as a deadline loss). With
     * @p force the depth bound is ignored — the path for fault
     * recovery re-placements (retries, failover), which already
     * passed admission once and must not be double-charged.
     */
    Admit admit(QueuedRequest request,
                std::vector<QueuedRequest> *shed,
                bool force = false);

    bool empty(size_t device) const;
    size_t depth(size_t device) const;
    size_t totalDepth() const { return total_; }
    size_t depthBound() const { return depth_bound_; }

    /** Sum of queued plan-stage estimates on @p device. */
    double backlogUs(size_t device) const;

    /**
     * Sum of queued estimates on @p device that an EDF dequeue would
     * run *before* a request with deadline @p deadline_us — the wait
     * a new arrival of that deadline actually experiences there.
     * (Ties on the deadline count as ahead: equal-deadline entries
     * dequeue by lower id, and the newcomer's id is always higher.)
     */
    double backlogBeforeUs(size_t device, double deadline_us) const;

    /**
     * Dequeue the next request of @p device: earliest deadline when
     * @p edf (ties to the lowest id), else lowest id (FIFO).
     */
    std::optional<QueuedRequest> pop(size_t device, bool edf);

    /**
     * Extract up to @p max_extra further requests with the same
     * batch_key as @p key from @p device's queue, in dequeue order —
     * the continuous micro-batch that amortizes dispatch overhead
     * and hits the shared EncodingCache.
     */
    std::vector<QueuedRequest> popBatchMates(size_t device,
                                             uint64_t key,
                                             size_t max_extra,
                                             bool edf);

    /**
     * Work-stealing: remove one request for idle device @p thief
     * from the deepest other queue (ties to the lowest device
     * index). The donor gives up its *least urgent* entry (latest
     * deadline, ties to the highest id) — the one it was going to
     * serve last anyway. Returns nullopt when every queue is empty.
     * The returned request's `device` is rewritten to @p thief; the
     * donor index is reported through @p donor when non-null.
     */
    std::optional<QueuedRequest> steal(size_t thief,
                                       size_t *donor = nullptr);

    /**
     * Remove and return every request queued on @p device, in id
     * order — the failover drain of a crashed device. The caller
     * re-places (or accounts as lost) each entry.
     */
    std::vector<QueuedRequest> drainDevice(size_t device);

    /**
     * Rescale the global depth bound (graceful degradation: the
     * bound tracks the surviving fleet's capacity). Clamped to >= 1;
     * entries above the new bound stay queued until shedExcess.
     */
    void setDepthBound(size_t bound);

    /**
     * Evict queued requests until the total depth is back within the
     * bound (after a setDepthBound shrink), appending victims to
     * @p shed. Victim order follows the shed policy below.
     */
    void shedExcess(std::vector<QueuedRequest> *shed);

    /**
     * When enabled, overload eviction (admit-on-full under
     * ShedOldest, and shedExcess) picks its victims class-first:
     * batch before standard before interactive, oldest id within the
     * class — under reduced capacity the throughput-oriented work is
     * shed before anything a user is waiting on.
     */
    void setShedBatchFirst(bool enabled)
    {
        shed_batch_first_ = enabled;
    }

  private:
    /** The (device, index) of the next shed victim, or nullopt when
     *  every queue is empty. */
    std::optional<std::pair<size_t, size_t>> shedVictim() const;

    size_t depth_bound_;
    AdmissionPolicy policy_;
    bool shed_batch_first_ = false;
    size_t total_ = 0;
    std::vector<std::vector<QueuedRequest>> queues_;
};

} // namespace dstc

#endif // DSTC_SERVE_QUEUE_H
