/**
 * @file
 * ServingEngine — the online serving subsystem over a Cluster.
 *
 * The engine runs a deterministic discrete-event simulation of an
 * open-loop serving timeline on a virtual microsecond clock:
 *
 *   ArrivalGenerator ──> ServingQueue ──> DeadlineScheduler ──> Cluster
 *      (seeded traffic)   (admission,       (placement, EDF,      (per-device
 *                          backpressure)     work stealing)        Sessions)
 *
 * Each arrival is admitted (or rejected/shed under backpressure),
 * placed on a device queue, and — when its device frees up —
 * dispatched as part of a continuous micro-batch of
 * encoding-compatible requests (same operand digests and shapes,
 * which share entries in the cross-device EncodingCache and
 * amortize the per-dispatch overhead). Service times are the
 * simulated kernel times of the placed device's Session, so the
 * whole timeline — queue waits, completions, tail latencies,
 * deadline misses — is a pure function of (options, seed):
 *
 *  - two runs with the same seed produce identical ServingStats;
 *  - every KernelReport is bitwise identical to replaying the placed
 *    request serially on a fresh single Session with that device's
 *    GpuConfig (the PR 5 cluster contract, kept under open-loop
 *    traffic, EDF reordering, micro-batching and work stealing).
 *
 * Deadlines are workload-relative: each request's deadline is its
 * arrival time plus its class multiplier times the request's
 * plan-stage estimate on the *reference device* (device 0), plus a
 * fixed base slack — so the same traffic is held to the same SLO no
 * matter which policy or device mix serves it.
 *
 * Fault tolerance (see faults.h): a FaultSpec injects deterministic
 * crash-stop, slowdown and transient faults into the timeline; the
 * recovery policies — retry with exponential backoff, failover
 * drain/re-placement off crashed devices, hedged dispatch for the
 * interactive class, and capacity-rescaled graceful degradation —
 * are all pure functions of (options, seed) too, so recovery
 * quality is gated in CI exactly like p99 and goodput.
 */
#ifndef DSTC_SERVE_SERVING_H
#define DSTC_SERVE_SERVING_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cluster.h"
#include "serve/arrival.h"
#include "serve/faults.h"
#include "serve/queue.h"
#include "serve/scheduler.h"
#include "serve/stats.h"

namespace dstc {

/** Construction knobs of a ServingEngine. */
struct ServingOptions
{
    /** One Session per entry; empty = a single V100. Device 0 is the
     *  SLO reference device. */
    std::vector<GpuConfig> devices;

    ServePolicy policy = ServePolicy::Deadline;
    AdmissionPolicy admission = AdmissionPolicy::Reject;

    /** Global queue-depth bound across all device queues (the
     *  backpressure surface). */
    size_t queue_depth = 256;

    /** Maximum requests per dispatch micro-batch (1 = batching
     *  off). Batch mates share one dispatch overhead and hit the
     *  shared EncodingCache back to back. */
    size_t microbatch = 4;

    /** Scheduling/launch overhead charged once per dispatch batch,
     *  in simulated us. */
    double dispatch_overhead_us = 2.0;

    /** Traffic shape (pattern, rate, duration, seed, class mix).
     *  pool_size is overwritten with the workload pool's size. */
    ArrivalOptions arrivals;

    /** SLO model: deadline = arrival + mult(class) * reference
     *  estimate + base slack. */
    double slo_base_slack_us = 25.0;
    double slo_interactive_mult = 4.0;
    double slo_standard_mult = 12.0;
    double slo_batch_mult = 60.0;

    // -- fault injection and recovery ------------------------------
    //
    // All fault decisions live on the virtual clock and seeded
    // hashes, so a faulted run is exactly as deterministic as a
    // healthy one: same options + seed => identical stats, and every
    // *completed* request still replays bitwise on a fresh serial
    // Session.

    /** Fault scenario (empty = healthy fleet). */
    FaultSpec faults;

    /** Seed of the fault injector's random draws and transient
     *  hashes; 0 derives it from arrivals.seed. */
    uint64_t fault_seed = 0;

    /** Retry transiently failed dispatches with exponential backoff
     *  (off: a transient failure loses the request). */
    bool retry = false;

    /** Maximum dispatch attempts per request (first try included);
     *  past it the request is lost and counted retries_exhausted. */
    int retry_budget = 3;

    /** Backoff before retry attempt k (1-based redispatch) is
     *  retry_backoff_us * 2^(k-1) simulated us. */
    double retry_backoff_us = 10.0;

    /** Drain a crashed device's queued and in-flight requests onto
     *  the survivors (off: the no-recovery baseline — a crash loses
     *  everything the device held). */
    bool failover = true;

    /** Hedge interactive dispatches: duplicate onto the best other
     *  idle device, first successful completion wins, the loser is
     *  cancelled on the spot. */
    bool hedge = false;

    /** Graceful degradation: the admission depth bound and the EDF
     *  infeasibility guard rescale to the surviving fleet's
     *  estimatedCapacityRpms, and overload eviction sheds the batch
     *  class first. */
    bool degrade = true;

    /** Shared worker-pool width of the underlying Cluster (serving
     *  stats are identical for every setting). */
    int num_threads = 1;

    /** Deprecated alias of resources.encode_workers (kept for old
     *  call sites; resources wins when set). */
    int encode_workers = 1;

    /** Per-device execution resources (SessionOptions semantics). */
    ExecutionResources resources;
};

/** Per-request outcome of a serving run. */
struct ServeOutcome
{
    int64_t id = 0;
    size_t pool_index = 0;
    size_t device = 0;
    DeadlineClass deadline_class = DeadlineClass::Standard;
    double arrival_us = 0.0;
    double start_us = 0.0;  ///< dispatch time on the virtual clock
    double finish_us = 0.0; ///< completion time on the virtual clock
    double deadline_us = 0.0;
    bool met_deadline = false;
    bool stolen = false;          ///< re-placed by work stealing
    bool batched_follower = false; ///< rode a micro-batch (not head)
    int attempts = 1;      ///< dispatch attempts (1 = first try won)
    bool failed_over = false; ///< survived a crash via re-placement
    bool hedged = false;      ///< dispatch was duplicated (hedging)
    KernelReport report;
};

/** Everything a serving run produced. */
struct ServingResult
{
    ServingStats stats;
    /** Completed requests in submission-id order. */
    std::vector<ServeOutcome> outcomes;
};

/** The open-loop serving front end. */
class ServingEngine
{
  public:
    /**
     * @param options the serving configuration
     * @param pool    workload pool arrivals draw from (each arrival
     *                executes one pool entry; must be non-empty and
     *                must outlive the engine if entries carry
     *                operand pointers)
     */
    ServingEngine(ServingOptions options,
                  std::vector<KernelRequest> pool);

    /** Run the full serving timeline (arrivals then drain). */
    ServingResult run();

    /** The engine's Cluster (device Sessions, shared cache). */
    Cluster &cluster() { return *cluster_; }
    const Cluster &cluster() const { return *cluster_; }

    const ServingOptions &options() const { return options_; }
    const std::vector<KernelRequest> &pool() const { return pool_; }

    /** The absolute deadline the engine assigns an arrival of
     *  @p dclass at @p arrival_us whose reference-device estimate is
     *  @p ref_estimate_us. */
    double deadlineFor(DeadlineClass dclass, double arrival_us,
                       double ref_estimate_us) const;

    /**
     * Aggregate serving capacity of the configured devices, in
     * requests per simulated millisecond, assuming a uniform draw
     * over the pool: sum over devices of pool_size / (sum of the
     * pool's per-device estimates plus one dispatch overhead per
     * request — the no-batching worst case). The natural yardstick
     * for choosing an offered rate ("0.8 x capacity",
     * "2.5 x capacity"); micro-batching policies gain headroom
     * beyond it by amortizing the overhead.
     */
    double estimatedCapacityRpms();

    /**
     * The serving determinism contract's second half: re-run every
     * completed request of @p result serially on a fresh
     * single-device Session with the placed device's config and
     * compare reports bitwise. Returns false on any divergence.
     */
    bool replayMatchesSerial(const ServingResult &result);

  private:
    ServingOptions options_;
    std::vector<KernelRequest> pool_;
    std::unique_ptr<Cluster> cluster_;
};

} // namespace dstc

#endif // DSTC_SERVE_SERVING_H
