#include "serve/arrival.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace dstc {

const char *
trafficPatternToken(TrafficPattern pattern)
{
    switch (pattern) {
    case TrafficPattern::Poisson:
        return "poisson";
    case TrafficPattern::Bursty:
        return "bursty";
    }
    return "?";
}

bool
parseTrafficPattern(const std::string &token, TrafficPattern *out)
{
    if (token == "poisson")
        *out = TrafficPattern::Poisson;
    else if (token == "bursty")
        *out = TrafficPattern::Bursty;
    else
        return false;
    return true;
}

const char *
deadlineClassName(DeadlineClass dclass)
{
    switch (dclass) {
    case DeadlineClass::Interactive:
        return "interactive";
    case DeadlineClass::Standard:
        return "standard";
    case DeadlineClass::Batch:
        return "batch";
    }
    return "?";
}

ArrivalGenerator::ArrivalGenerator(ArrivalOptions options)
    : options_(options)
{
    DSTC_ASSERT(options_.rate_rpms > 0.0,
                "arrival rate must be positive");
    DSTC_ASSERT(options_.duration_ms >= 0.0,
                "arrival window cannot be negative");
    DSTC_ASSERT(options_.pool_size >= 1,
                "arrivals need a workload pool to draw from");
    DSTC_ASSERT(options_.interactive_fraction >= 0.0 &&
                    options_.standard_fraction >= 0.0 &&
                    options_.interactive_fraction +
                            options_.standard_fraction <=
                        1.0,
                "class fractions must be a sub-probability");
}

std::vector<Arrival>
ArrivalGenerator::generate() const
{
    std::vector<Arrival> arrivals;
    Rng rng(options_.seed ^ 0x5e21e1a7ull);
    const double duration_us = options_.duration_ms * 1e3;
    const double mean_gap_us = 1e3 / options_.rate_rpms;

    // Normalize the state factors so the long-run mean rate equals
    // rate_rpms. The chain switches per *arrival*, so the fraction
    // of arrivals in each state is the chain's stationary
    // distribution — but the fraction of *time* is weighted by the
    // state's mean gap, so the expected gap is the pi-weighted
    // harmonic combination of the factors; dividing every gap by it
    // restores E[gap] = 1 / rate.
    double gap_norm = 1.0;
    if (options_.pattern == TrafficPattern::Bursty) {
        const double pi_burst =
            options_.p_calm_to_burst /
            (options_.p_calm_to_burst + options_.p_burst_to_calm);
        gap_norm = (1.0 - pi_burst) / options_.calm_rate_factor +
                   pi_burst / options_.burst_rate_factor;
    }

    bool burst = false; // MMPP starts calm
    double t = 0.0;
    while (true) {
        double gap_scale = 1.0;
        if (options_.pattern == TrafficPattern::Bursty) {
            const double factor = burst ? options_.burst_rate_factor
                                        : options_.calm_rate_factor;
            gap_scale = 1.0 / (factor * gap_norm);
        }
        // Exponential inter-arrival; 1 - u keeps the argument of
        // log() in (0, 1] (uniform() can return exactly 0).
        t += -std::log(1.0 - rng.uniform()) * mean_gap_us * gap_scale;
        if (t >= duration_us)
            break;

        Arrival a;
        a.id = static_cast<int64_t>(arrivals.size());
        a.time_us = t;
        const double u = rng.uniform();
        if (u < options_.interactive_fraction)
            a.deadline_class = DeadlineClass::Interactive;
        else if (u < options_.interactive_fraction +
                         options_.standard_fraction)
            a.deadline_class = DeadlineClass::Standard;
        else
            a.deadline_class = DeadlineClass::Batch;
        a.pool_index = static_cast<size_t>(
            rng.uniformInt(options_.pool_size));
        arrivals.push_back(a);

        if (options_.pattern == TrafficPattern::Bursty) {
            const double p_switch = burst ? options_.p_burst_to_calm
                                          : options_.p_calm_to_burst;
            if (rng.bernoulli(p_switch))
                burst = !burst;
        }
    }
    return arrivals;
}

} // namespace dstc
