#include "serve/scheduler.h"

#include <limits>
#include <mutex>

#include "common/logging.h"

namespace dstc {

const char *
servePolicyToken(ServePolicy policy)
{
    switch (policy) {
    case ServePolicy::Deadline:
        return "deadline";
    case ServePolicy::CostModel:
        return "cost";
    case ServePolicy::RoundRobin:
        return "rr";
    }
    return "?";
}

bool
parseServePolicy(const std::string &token, ServePolicy *out)
{
    if (token == "deadline")
        *out = ServePolicy::Deadline;
    else if (token == "cost")
        *out = ServePolicy::CostModel;
    else if (token == "rr")
        *out = ServePolicy::RoundRobin;
    else
        return false;
    return true;
}

namespace {

/** The base accounting reuses the Cluster policy vocabulary. */
PlacementPolicy
basePolicy(ServePolicy policy)
{
    return policy == ServePolicy::RoundRobin
               ? PlacementPolicy::RoundRobin
               : PlacementPolicy::CostModel;
}

} // namespace

DeadlineScheduler::DeadlineScheduler(ServePolicy policy,
                                     size_t num_devices)
    : ClusterScheduler(basePolicy(policy), num_devices),
      serve_policy_(policy)
{
}

size_t
DeadlineScheduler::placeArrival(
    const std::vector<double> &estimates,
    const std::vector<double> &ready_at_us,
    const std::vector<double> &backlog_us, double deadline_us)
{
    std::lock_guard<std::mutex> lock(mu_);
    const size_t n = loads_.size();
    DSTC_ASSERT(ready_at_us.size() == n && backlog_us.size() == n);
    size_t eligible = 0;
    for (uint8_t a : alive_)
        eligible += a;
    DSTC_ASSERT(eligible >= 1,
                "placement needs at least one live device");
    size_t pick = 0;
    if (serve_policy_ == ServePolicy::RoundRobin) {
        // The k-th live device of the rotation — crashed devices
        // never swallow a slot (the HealthTracker drives the mask).
        for (size_t step = static_cast<size_t>(next_round_robin_++ %
                                               eligible),
                    d = 0;
             d < n; ++d) {
            if (!alive_[d])
                continue;
            if (step == 0) {
                pick = d;
                break;
            }
            --step;
        }
    } else {
        DSTC_ASSERT(estimates.size() == n,
                    "cost/deadline placement needs one estimate per "
                    "device");
        // Earliest estimated finish over the *live* devices; under
        // Deadline the caller's backlog_us only counts
        // earlier-deadline entries, so a feasible device (finish <=
        // deadline) always ranks ahead of an infeasible one and
        // urgent requests see through lax backlog. Ties go to the
        // lower index.
        bool found = false;
        bool best_miss = true;
        double best = std::numeric_limits<double>::infinity();
        for (size_t d = 0; d < n; ++d) {
            if (!alive_[d])
                continue;
            const double finish =
                ready_at_us[d] + backlog_us[d] + estimates[d];
            const bool miss = serve_policy_ == ServePolicy::Deadline
                                  ? finish > deadline_us
                                  : false;
            if (!found || (best_miss && !miss) ||
                (miss == best_miss && finish < best)) {
                found = true;
                best_miss = miss;
                best = finish;
                pick = d;
            }
        }
        loads_[pick].estimated_busy_us += estimates[pick];
    }
    ++loads_[pick].placed;
    return pick;
}

void
DeadlineScheduler::recordSteal(size_t donor)
{
    std::lock_guard<std::mutex> lock(mu_);
    DSTC_ASSERT(donor < loads_.size());
    ++steals_;
}

int64_t
DeadlineScheduler::steals() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return steals_;
}

} // namespace dstc
