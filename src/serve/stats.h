/**
 * @file
 * ServingStats — tail-latency and SLO accounting of a serving run.
 *
 * Latencies are *simulated* microseconds (completion minus arrival
 * on the virtual clock), so every figure here is deterministic — a
 * pure function of the arrival sequence and the machine configs —
 * and two runs with the same seed produce field-for-field identical
 * stats. Percentiles use the nearest-rank definition on the sorted
 * latency list (no interpolation: the reported p99 is a latency some
 * request actually experienced).
 *
 * Vocabulary:
 *  - offered: every request the arrival stream produced
 *  - rejected/shed: refused at admission / dropped under overload
 *  - dropped: dequeued but never executed because its deadline was
 *    already infeasible (the Deadline policy's EDF-overload guard)
 *  - completed: executed to completion (met or missed its deadline)
 *  - lost: destroyed by an injected fault — interrupted by a crash
 *    with failover off, or transient-failed past the retry budget
 *  - deadline miss: completed after its deadline
 *  - SLO attainment: completed-in-deadline / offered
 *  - goodput: completed-in-deadline per simulated millisecond of the
 *    run's makespan — the "useful work under overload" figure
 */
#ifndef DSTC_SERVE_STATS_H
#define DSTC_SERVE_STATS_H

#include <cstdint>
#include <vector>

#include "serve/arrival.h"
#include "timing/stats.h"

namespace dstc {

/** Nearest-rank latency percentiles of one request population. */
struct LatencySummary
{
    int64_t count = 0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;

    bool operator==(const LatencySummary &) const = default;
};

/** Per-deadline-class slice of the run. */
struct ClassStats
{
    int64_t offered = 0;
    int64_t completed = 0;
    int64_t deadline_misses = 0; ///< completed late
    int64_t rejected = 0;
    int64_t shed = 0;
    int64_t dropped = 0; ///< dequeued already-infeasible, not run
    int64_t lost = 0;    ///< destroyed by faults, never completed
    int64_t recovered = 0; ///< completed after a retry or failover
    LatencySummary latency;
    /** Latency of the recovered requests only — what a retry or
     *  failover actually cost this class end to end. */
    LatencySummary recovery_latency;

    bool operator==(const ClassStats &) const = default;
};

/** Fault-injection and recovery counters of a serving run. */
struct FaultRecoveryStats
{
    int64_t crashes = 0;   ///< crash-stop events applied
    int64_t slowdowns = 0; ///< slowdown windows applied
    int64_t transient_failures = 0; ///< failed dispatch attempts

    int64_t retries = 0;   ///< re-dispatches after transient failure
    int64_t retries_exhausted = 0; ///< budget ran out (request lost)
    int64_t failovers = 0; ///< re-placements off a crashed device
    int64_t hedges = 0;    ///< hedged (duplicated) dispatches
    int64_t hedge_wins = 0; ///< the secondary arm finished first
    int64_t hedges_cancelled = 0; ///< loser arms cancelled

    /** Requests destroyed by faults: interrupted by a crash with no
     *  failover, or transient failures past the retry budget. */
    int64_t lost = 0;

    /** completed / (completed + lost): the fraction of executed-or-
     *  destroyed requests that actually finished. 1.0 on a healthy
     *  fleet (policy decisions — reject/shed/drop — do not count
     *  against availability; faults do). */
    double availability = 1.0;

    bool operator==(const FaultRecoveryStats &) const = default;
};

/** The full serving scorecard. */
struct ServingStats
{
    int64_t offered = 0;
    int64_t admitted = 0;
    int64_t rejected = 0;
    int64_t shed = 0;
    int64_t dropped = 0;
    int64_t completed = 0;
    int64_t deadline_misses = 0;

    int64_t steals = 0;        ///< work-stealing re-placements
    int64_t microbatches = 0;  ///< dispatches of >= 2 requests
    int64_t microbatched = 0;  ///< requests riding in those batches

    FaultRecoveryStats faults; ///< injection + recovery scoreboard

    double makespan_us = 0.0;  ///< last completion timestamp
    double throughput_rpms = 0.0; ///< completed per simulated ms
    double goodput_rpms = 0.0; ///< completed-in-deadline per sim ms
    double deadline_miss_rate = 0.0; ///< misses / completed
    double slo_attainment = 0.0;     ///< in-deadline / offered

    LatencySummary latency; ///< all completed requests
    std::vector<ClassStats> per_class; ///< kNumDeadlineClasses slices
    std::vector<int64_t> placed_per_device;
    std::vector<int64_t> completed_per_device;

    bool operator==(const ServingStats &) const = default;
};

/** Nearest-rank summary of @p latencies (unsorted, in us). */
LatencySummary summarizeLatencies(std::vector<double> latencies);

/**
 * Field-for-field bitwise equality of two kernel stats — the serving
 * determinism contract's comparator (shared by the replay tests and
 * micro_serve's self-check).
 */
bool statsBitwiseEqual(const KernelStats &a, const KernelStats &b);

} // namespace dstc

#endif // DSTC_SERVE_STATS_H
