/**
 * @file
 * Analytic cost model for the merge (gather-accumulate-scatter) step.
 *
 * The cycle-accurate AccumBufferSim is exact but too slow to invoke
 * per k-step when sweeping 4096x4096 GEMMs, so the device-level
 * SpGEMM path uses this closed-form approximation instead. The tests
 * validate it against the exact simulator on randomized traces.
 */
#ifndef DSTC_TIMING_MERGE_MODEL_H
#define DSTC_TIMING_MERGE_MODEL_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

namespace dstc {

/** Closed-form accumulation-buffer merge cost. */
class MergeCostModel
{
  public:
    /**
     * @param banks             accumulation-buffer banks
     * @param operand_collector whether the collector overlaps
     *                          accesses across instructions
     */
    MergeCostModel(int banks, bool operand_collector);

    /**
     * Expected cycles for one instruction that scatters @p accesses
     * values (only meaningful without the collector, where each
     * instruction drains serially at its max bank load).
     */
    double perInstrCycles(int accesses) const;

    /**
     * Expected merge cycles of a warp tile whose merge phase issues
     * @p instrs instructions with @p total_accesses scattered
     * accumulations in total.
     *
     * With the collector: banks drain in parallel across in-flight
     * instructions, so throughput approaches one access per bank per
     * cycle — cycles ~ total/banks.
     * Without it: each instruction serializes at its own max bank
     * load; cycles ~ sum of per-instruction max loads.
     */
    double tileCycles(int64_t total_accesses, int64_t instrs) const;

    int banks() const { return banks_; }

    /** Memoized prefix-max Monte-Carlo estimates, one per banks. */
    struct MaxLoadMemo
    {
        std::mutex mu;
        std::map<int, double> prefix_max; ///< bucket -> max load
    };

    /**
     * The process-shared memo registry holds at most this many bank
     * counts; beyond it the oldest slot is evicted (FIFO). Models
     * alive at eviction keep their memo through the shared_ptr, and
     * the values are pure functions of (banks, bucket), so a
     * re-created memo recomputes identical numbers.
     */
    static constexpr size_t kMemoRegistryBound = 8;

    /** Bank counts currently in the shared registry (test hook). */
    static size_t memoRegistryEntries();

  private:
    /**
     * Monte-Carlo estimate (memoized, deterministic) of the expected
     * maximum bank load when @p n accesses land on banks_ banks.
     *
     * The value is a pure function of n (a prefix-max over the
     * per-bucket Monte-Carlo estimates, which enforces monotonicity
     * without depending on query order), so concurrent warp tiles —
     * and 1-vs-N-worker runs — always read identical costs. The
     * memo is shared process-wide per bank count and mutex-guarded.
     */
    double expectedMaxLoad(int n) const;

    int banks_;
    bool operand_collector_;
    std::shared_ptr<MaxLoadMemo> memo_; ///< shared per bank count
};

} // namespace dstc

#endif // DSTC_TIMING_MERGE_MODEL_H
