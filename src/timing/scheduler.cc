#include "timing/scheduler.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace dstc {

int64_t
lptMakespan(std::vector<int64_t> work, int units)
{
    DSTC_ASSERT(units > 0);
    if (work.empty())
        return 0;
    std::sort(work.begin(), work.end(), std::greater<int64_t>());
    std::priority_queue<int64_t, std::vector<int64_t>,
                        std::greater<int64_t>>
        loads;
    for (int i = 0; i < units; ++i)
        loads.push(0);
    for (int64_t w : work) {
        int64_t lightest = loads.top();
        loads.pop();
        loads.push(lightest + w);
    }
    int64_t makespan = 0;
    while (!loads.empty()) {
        makespan = loads.top();
        loads.pop();
    }
    return makespan;
}

int64_t
balancedLoad(const std::vector<int64_t> &work, int units)
{
    DSTC_ASSERT(units > 0);
    int64_t total = 0;
    for (int64_t w : work)
        total += w;
    return (total + units - 1) / units;
}

} // namespace dstc
