/**
 * @file
 * Warp-to-subcore work distribution. The device-level kernel time of
 * a set of independent warp tiles is the makespan of assigning their
 * cycle counts onto the GPU's sub-cores (each sub-core owns one OTC
 * pair). LPT greedy assignment models the hardware's work stealing
 * via oversubscribed thread blocks.
 */
#ifndef DSTC_TIMING_SCHEDULER_H
#define DSTC_TIMING_SCHEDULER_H

#include <cstdint>
#include <vector>

namespace dstc {

/**
 * Longest-processing-time-first makespan of @p work items on
 * @p units identical units, in the work's cycle units.
 */
int64_t lptMakespan(std::vector<int64_t> work, int units);

/**
 * Average-load lower bound (perfect balance): sum(work) / units,
 * rounded up. Useful to report imbalance.
 */
int64_t balancedLoad(const std::vector<int64_t> &work, int units);

} // namespace dstc

#endif // DSTC_TIMING_SCHEDULER_H
