/**
 * @file
 * DRAM traffic and transfer-time model. Kernel time is the maximum of
 * compute time and memory time plus a launch overhead (a roofline
 * composition), which captures the paper's observation that small
 * layers are bound by data movement (Sec. VI-D).
 */
#ifndef DSTC_TIMING_MEMORY_MODEL_H
#define DSTC_TIMING_MEMORY_MODEL_H

#include <cstdint>

#include "timing/gpu_config.h"

namespace dstc {

/** Traffic/time estimates for tiled kernels on the modeled GPU. */
class MemoryModel
{
  public:
    explicit MemoryModel(const GpuConfig &cfg) : cfg_(cfg) {}

    /** Microseconds to move @p bytes at sustained DRAM bandwidth. */
    double dramTimeUs(double bytes) const;

    /**
     * DRAM traffic of a block-tiled GEMM. @p bytes_a / @p bytes_b /
     * @p bytes_d are the *single-copy* footprints of each operand
     * (already reflecting any sparse encoding). Operands are re-read
     * once per opposing block stripe, damped by the L2 hit rate.
     *
     * @param m,n     output dimensions (elements)
     * @param block   thread-block tile edge (128 for CUTLASS-like)
     */
    double gemmTrafficBytes(int64_t m, int64_t n, double bytes_a,
                            double bytes_b, double bytes_d,
                            int block = 128) const;

    /**
     * DRAM traffic of a convolution. With implicit im2col the input
     * is read ~once (sliding-window reuse is caught on chip); with
     * explicit im2col the lowered matrix (inflation x input bytes) is
     * first written then re-read by the GEMM.
     */
    double convTrafficBytes(double input_bytes, double weight_bytes,
                            double output_bytes, double inflation,
                            bool explicit_im2col) const;

    const GpuConfig &config() const { return cfg_; }

  private:
    GpuConfig cfg_;
};

} // namespace dstc

#endif // DSTC_TIMING_MEMORY_MODEL_H
