#include "timing/memory_model.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/logging.h"

namespace dstc {

double
MemoryModel::dramTimeUs(double bytes) const
{
    DSTC_ASSERT(bytes >= 0.0);
    return bytes / cfg_.dramBytesPerUs();
}

double
MemoryModel::gemmTrafficBytes(int64_t m, int64_t n, double bytes_a,
                              double bytes_b, double bytes_d,
                              int block) const
{
    DSTC_ASSERT(m > 0 && n > 0 && block > 0);
    // A's block-row stripe is needed by every block column of D (and
    // vice versa for B). When a stripe fits in its share of the L2
    // it stays resident across the sweep and is read from DRAM only
    // once (plus a small conflict residue); otherwise the re-reads
    // are damped by the L2 hit rate.
    const double stripes_n =
        static_cast<double>(ceilDiv<int64_t>(n, block));
    const double stripes_m =
        static_cast<double>(ceilDiv<int64_t>(m, block));
    const double miss = 1.0 - cfg_.l2_hit_rate;
    const double residency_budget = cfg_.l2_bytes / 3.0;

    auto operand_reads = [&](double bytes, double own_stripes,
                             double sweep_stripes) {
        const double stripe = bytes / std::max(1.0, own_stripes);
        if (stripe <= residency_budget)
            return bytes * 1.15; // resident: one pass + residue
        return bytes * (1.0 + (sweep_stripes - 1.0) * miss);
    };
    return operand_reads(bytes_a, stripes_m, stripes_n) +
           operand_reads(bytes_b, stripes_n, stripes_m) + bytes_d;
}

double
MemoryModel::convTrafficBytes(double input_bytes, double weight_bytes,
                              double output_bytes, double inflation,
                              bool explicit_im2col) const
{
    DSTC_ASSERT(inflation >= 1.0);
    if (explicit_im2col) {
        // im2col kernel: read input, write lowered matrix; GEMM:
        // read lowered matrix and weights, write output.
        double lowered = input_bytes * inflation;
        return input_bytes + 2.0 * lowered + weight_bytes + output_bytes;
    }
    // Implicit: the address transform runs in registers/shared
    // memory; the 1.15 covers halo re-reads that miss in L1.
    return input_bytes * 1.15 + weight_bytes + output_bytes;
}

} // namespace dstc
