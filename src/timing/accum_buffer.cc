#include "timing/accum_buffer.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace dstc {

AccumBufferSim::AccumBufferSim(int banks, bool operand_collector,
                               int window)
    : banks_(banks), operand_collector_(operand_collector),
      window_(window)
{
    DSTC_ASSERT(banks > 0);
    DSTC_ASSERT(window > 0);
}

int64_t
AccumBufferSim::simulateSparse(const MergeTrace &trace) const
{
    if (!operand_collector_) {
        // Strictly in-order: each instruction occupies the buffer
        // until its most-loaded bank drains (Fig. 19a).
        int64_t cycles = 0;
        std::vector<int> load(banks_);
        for (const auto &addrs : trace.instr_addrs) {
            if (addrs.empty())
                continue;
            std::fill(load.begin(), load.end(), 0);
            for (int addr : addrs)
                ++load[addr % banks_];
            cycles += *std::max_element(load.begin(), load.end());
        }
        return cycles;
    }

    // Operand collector: a queue of up to window_ in-flight
    // instructions; per cycle each bank serves the oldest pending
    // access among them (Fig. 19b).
    std::deque<std::vector<int>> in_flight; // per-bank pending counts
    size_t next_instr = 0;
    int64_t cycles = 0;
    auto bank_loads = [&](const std::vector<int> &addrs) {
        std::vector<int> load(banks_, 0);
        for (int addr : addrs)
            ++load[addr % banks_];
        return load;
    };

    while (next_instr < trace.instr_addrs.size() || !in_flight.empty()) {
        while (in_flight.size() < static_cast<size_t>(window_) &&
               next_instr < trace.instr_addrs.size()) {
            const auto &addrs = trace.instr_addrs[next_instr++];
            if (!addrs.empty())
                in_flight.push_back(bank_loads(addrs));
        }
        if (in_flight.empty())
            break;

        // One cycle: each bank serves one access from the oldest
        // instruction that still needs it.
        ++cycles;
        for (int b = 0; b < banks_; ++b) {
            for (auto &pending : in_flight) {
                if (pending[b] > 0) {
                    --pending[b];
                    break;
                }
            }
        }
        while (!in_flight.empty()) {
            const auto &front = in_flight.front();
            bool done = std::all_of(front.begin(), front.end(),
                                    [](int x) { return x == 0; });
            if (!done)
                break;
            in_flight.pop_front();
        }
    }
    return cycles;
}

int64_t
AccumBufferSim::simulateDense(int64_t instructions) const
{
    // Dense mode: per-port wiring, one OHMMA retires per cycle.
    return instructions;
}

} // namespace dstc
