#include "timing/merge_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace dstc {

namespace {

/** Bucket small n so memoization stays bounded during big sweeps. */
int
maxLoadBucket(int n)
{
    return n > 128 ? ((n + 31) / 32) * 32 : n;
}

/** The bucket following @p b in the prefix-max chain: unit steps up
 *  to 128, then the 32-aligned buckets maxLoadBucket produces. */
int
nextBucket(int b)
{
    return b < 128 ? b + 1 : (b == 128 ? 160 : b + 32);
}

/**
 * Deterministic Monte Carlo: bucket balls into banks bins and
 * average the max load. 96 trials keeps estimator noise ~1%.
 */
double
rawMaxLoad(int bucket, int banks)
{
    constexpr int kTrials = 96;
    Rng rng(0xd5f0c0de ^ static_cast<uint64_t>(bucket));
    std::vector<int> load(banks);
    double sum = 0.0;
    for (int t = 0; t < kTrials; ++t) {
        std::fill(load.begin(), load.end(), 0);
        for (int i = 0; i < bucket; ++i)
            ++load[rng.uniformInt(static_cast<uint64_t>(banks))];
        sum += *std::max_element(load.begin(), load.end());
    }
    return sum / kTrials;
}

/**
 * Process-wide memo registry, one slot per bank count, bounded at
 * kMemoRegistryBound entries with FIFO eviction. Eviction only drops
 * the registry's reference: live models keep their memo through the
 * shared_ptr, and the values are pure functions of (banks, bucket),
 * so a re-created memo recomputes identical numbers — the bound
 * trades recomputation for a hard memory ceiling when callers sweep
 * many bank counts.
 */
struct MemoRegistry
{
    std::mutex mu;
    std::map<int, std::shared_ptr<MergeCostModel::MaxLoadMemo>> slots;
    std::vector<int> fifo; ///< insertion order, oldest first
};

MemoRegistry &
memoRegistry()
{
    static MemoRegistry registry;
    return registry;
}

} // namespace

MergeCostModel::MergeCostModel(int banks, bool operand_collector)
    : banks_(banks), operand_collector_(operand_collector)
{
    DSTC_ASSERT(banks > 0);
    // One memo per bank count, shared across every model instance in
    // the process: SpGemmDevice is constructed per plan-run, and
    // re-estimating the bucket chain each run would dominate small
    // kernels.
    MemoRegistry &registry = memoRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.slots.find(banks);
    if (it != registry.slots.end()) {
        memo_ = it->second;
        return;
    }
    while (registry.slots.size() >= kMemoRegistryBound) {
        registry.slots.erase(registry.fifo.front());
        registry.fifo.erase(registry.fifo.begin());
    }
    memo_ = std::make_shared<MaxLoadMemo>();
    registry.slots.emplace(banks, memo_);
    registry.fifo.push_back(banks);
}

size_t
MergeCostModel::memoRegistryEntries()
{
    MemoRegistry &registry = memoRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    return registry.slots.size();
}

double
MergeCostModel::expectedMaxLoad(int n) const
{
    if (n <= 0)
        return 0.0;
    if (n == 1)
        return 1.0;

    // Closed form for large n: mean load + the Gaussian tail of the
    // maximum over banks_ bins.
    if (n > 8 * banks_) {
        const double mean = static_cast<double>(n) / banks_;
        return mean +
               std::sqrt(2.0 * mean *
                         std::log(static_cast<double>(banks_)));
    }

    const int bucket = maxLoadBucket(n);

    // Lock-free warm path: the value is a pure function of (banks,
    // bucket), so a per-thread memo answers repeat queries without
    // touching the shared lock — the analytic merge cost sits inside
    // the parallel tile loop, where a global mutex would serialize
    // the workers.
    thread_local std::unordered_map<uint64_t, double> warm;
    const uint64_t warm_key =
        (static_cast<uint64_t>(banks_) << 32) |
        static_cast<uint32_t>(bucket);
    if (auto it = warm.find(warm_key); it != warm.end())
        return it->second;

    double prefix;
    {
        std::lock_guard<std::mutex> lock(memo_->mu);
        auto it = memo_->prefix_max.find(bucket);
        if (it != memo_->prefix_max.end()) {
            prefix = it->second;
        } else {
            // Monotonicity in n (estimator noise must never invert
            // the cost ordering) via a prefix-max over the whole
            // bucket chain, which makes the value a pure function of
            // the bucket — identical no matter which queries came
            // before, so parallel tile loops stay bitwise
            // deterministic.
            prefix = 1.0; // value of the (uncached) bucket 1
            auto below = memo_->prefix_max.lower_bound(bucket);
            int from = 2;
            if (below != memo_->prefix_max.begin()) {
                --below;
                prefix = below->second;
                from = below->first;
            }
            for (int b = from; b <= bucket; b = nextBucket(b)) {
                auto cached = memo_->prefix_max.find(b);
                if (cached != memo_->prefix_max.end()) {
                    prefix = cached->second;
                    continue;
                }
                prefix = std::max(prefix, rawMaxLoad(b, banks_));
                memo_->prefix_max.emplace(b, prefix);
            }
        }
    }
    warm.emplace(warm_key, prefix);
    return prefix;
}

double
MergeCostModel::perInstrCycles(int accesses) const
{
    return expectedMaxLoad(accesses);
}

double
MergeCostModel::tileCycles(int64_t total_accesses, int64_t instrs) const
{
    if (total_accesses <= 0 || instrs <= 0)
        return 0.0;
    if (operand_collector_) {
        // Banks drain in parallel across the collector window, so
        // the makespan approaches the maximum total bank load; the
        // 1.1 covers finite-window scheduling losses (validated vs
        // the exact simulator in tests/test_merge_model.cc).
        const int capped = static_cast<int>(
            std::min<int64_t>(total_accesses, 1 << 20));
        return expectedMaxLoad(capped) * 1.1;
    }
    const int avg = static_cast<int>(
        std::max<int64_t>(1, total_accesses / instrs));
    return static_cast<double>(instrs) * perInstrCycles(avg);
}

} // namespace dstc
