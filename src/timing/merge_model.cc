#include "timing/merge_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace dstc {

MergeCostModel::MergeCostModel(int banks, bool operand_collector)
    : banks_(banks), operand_collector_(operand_collector)
{
    DSTC_ASSERT(banks > 0);
}

double
MergeCostModel::expectedMaxLoad(int n) const
{
    if (n <= 0)
        return 0.0;
    if (n == 1)
        return 1.0;

    // Closed form for large n: mean load + the Gaussian tail of the
    // maximum over banks_ bins.
    if (n > 8 * banks_) {
        const double mean = static_cast<double>(n) / banks_;
        return mean +
               std::sqrt(2.0 * mean *
                         std::log(static_cast<double>(banks_)));
    }

    // Bucket small n so memoization stays bounded during big sweeps.
    int bucket = n;
    if (n > 128)
        bucket = ((n + 31) / 32) * 32;
    auto it = max_load_cache_.find(bucket);
    if (it != max_load_cache_.end())
        return it->second;

    // Deterministic Monte Carlo: bucket balls into banks_ bins and
    // average the max load. 96 trials keeps estimator noise ~1%.
    constexpr int kTrials = 96;
    Rng rng(0xd5f0c0de ^ static_cast<uint64_t>(bucket));
    std::vector<int> load(banks_);
    double sum = 0.0;
    for (int t = 0; t < kTrials; ++t) {
        std::fill(load.begin(), load.end(), 0);
        for (int i = 0; i < bucket; ++i)
            ++load[rng.uniformInt(static_cast<uint64_t>(banks_))];
        sum += *std::max_element(load.begin(), load.end());
    }
    double result = sum / kTrials;

    // Enforce monotonicity in n against cached smaller buckets so
    // estimator noise can never invert the cost ordering.
    for (const auto &[cached_n, cached_v] : max_load_cache_)
        if (cached_n < bucket)
            result = std::max(result, cached_v);
    max_load_cache_.emplace(bucket, result);
    return result;
}

double
MergeCostModel::perInstrCycles(int accesses) const
{
    return expectedMaxLoad(accesses);
}

double
MergeCostModel::tileCycles(int64_t total_accesses, int64_t instrs) const
{
    if (total_accesses <= 0 || instrs <= 0)
        return 0.0;
    if (operand_collector_) {
        // Banks drain in parallel across the collector window, so
        // the makespan approaches the maximum total bank load; the
        // 1.1 covers finite-window scheduling losses (validated vs
        // the exact simulator in tests/test_merge_model.cc).
        const int capped = static_cast<int>(
            std::min<int64_t>(total_accesses, 1 << 20));
        return expectedMaxLoad(capped) * 1.1;
    }
    const int avg = static_cast<int>(
        std::max<int64_t>(1, total_accesses / instrs));
    return static_cast<double>(instrs) * perInstrCycles(avg);
}

} // namespace dstc
