/**
 * @file
 * Machine description for the timing model. The default preset is the
 * Tesla V100 the paper models on Accel-Sim (Sec. VI-A), extended with
 * the paper's accumulation-buffer parameters (Sec. V-B2).
 */
#ifndef DSTC_TIMING_GPU_CONFIG_H
#define DSTC_TIMING_GPU_CONFIG_H

namespace dstc {

/** GPU machine parameters used across the timing models. */
struct GpuConfig
{
    // -- compute ----------------------------------------------------
    int num_sms = 80;          ///< V100 streaming multiprocessors
    int subcores_per_sm = 4;   ///< sub-cores (warp schedulers) per SM
    double clock_ghz = 1.53;   ///< boost clock
    int ohmma_macs = 128;      ///< MACs per OHMMA.8161 (8x16) per cycle

    /**
     * Fraction of peak a tuned dense tensor-core GEMM achieves
     * (CUTLASS on V100 sustains ~80% of the 125 TFLOPS peak on
     * large square problems).
     */
    double dense_gemm_efficiency = 0.80;

    /**
     * Issue-slot utilization of the SpWMMA kernel: covers scheduling
     * gaps between predicated instructions and tile-boundary bubbles.
     */
    double sparse_issue_efficiency = 0.85;

    // -- memory -----------------------------------------------------
    double dram_bw_gbps = 900.0; ///< HBM2 peak
    double dram_efficiency = 0.78; ///< achievable fraction of peak
    double l2_bytes = 6.0 * 1024 * 1024;
    /** DRAM re-read damping for block-resident operands (L2 hits). */
    double l2_hit_rate = 0.80;

    // -- kernel overheads -------------------------------------------
    /**
     * Host-side launch overhead. The evaluation reports pure kernel
     * cycles (Accel-Sim style), so the default is zero; raise it to
     * model end-to-end host-visible latency.
     */
    double kernel_launch_us = 0.0;

    // -- accumulation buffer (Sec. V-B2) ------------------------------
    /**
     * Single-ported banks backing the 128-way parallel accumulators
     * of Sec. III-B4; sized so a fully dense OHMMA (128 outputs) can
     * retire at issue rate when conflict-free.
     */
    int accum_banks = 128;
    int accum_bytes = 4096;      ///< 32 x 32 x 4 B per warp tile
    bool operand_collector = true;
    int collector_window = 8;    ///< instructions overlapped by the OC

    // -- CUDA-core path (for the cuSparse baseline) -------------------
    double fp32_tflops = 15.7;

    /** The Tesla V100 model used throughout the evaluation. */
    static GpuConfig v100();

    /**
     * An A100-class machine (108 SMs, ~1.9x HBM bandwidth, 40 MB
     * L2): the "future GPU" data point the paper's conclusion
     * gestures at. Tensor throughput per sub-core is kept at the
     * OTC-pair rate so the comparison isolates the memory system.
     */
    static GpuConfig a100Like();

    /**
     * A next-generation preset beyond the A100 class (H100-like SM
     * count and HBM3-class bandwidth, larger L2), for heterogeneous
     * cluster experiments: mixing it with v100() gives the scheduler
     * a real speed gradient to exploit. Same OTC-pair arithmetic per
     * sub-core, like a100Like().
     */
    static GpuConfig futureGpu();

    /** Total OTC-pair issue units (one per sub-core). */
    int totalSubcores() const { return num_sms * subcores_per_sm; }

    /** Peak dense FP16 tensor MACs per cycle across the device. */
    double
    peakMacsPerCycle() const
    {
        return static_cast<double>(totalSubcores()) * ohmma_macs;
    }

    /** Sustained DRAM bandwidth in bytes per microsecond. */
    double
    dramBytesPerUs() const
    {
        return dram_bw_gbps * dram_efficiency * 1e3;
    }
};

} // namespace dstc

#endif // DSTC_TIMING_GPU_CONFIG_H
