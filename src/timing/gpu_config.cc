#include "timing/gpu_config.h"

namespace dstc {

GpuConfig
GpuConfig::v100()
{
    // The defaults are the V100; this factory exists so call sites
    // read as an explicit machine choice and presets can diverge.
    return GpuConfig{};
}

GpuConfig
GpuConfig::a100Like()
{
    GpuConfig cfg;
    cfg.num_sms = 108;
    cfg.clock_ghz = 1.41;
    cfg.dram_bw_gbps = 1555.0;
    cfg.l2_bytes = 40.0 * 1024 * 1024;
    cfg.fp32_tflops = 19.5;
    return cfg;
}

GpuConfig
GpuConfig::futureGpu()
{
    GpuConfig cfg;
    cfg.num_sms = 132;
    cfg.clock_ghz = 1.76;
    cfg.dram_bw_gbps = 3350.0;
    cfg.l2_bytes = 50.0 * 1024 * 1024;
    cfg.fp32_tflops = 60.0;
    return cfg;
}

} // namespace dstc
