/**
 * @file
 * Result record every timed kernel returns: enough breakdown to
 * reconstruct each figure's series and to explain *why* a point is
 * fast or slow (compute vs memory bound, merge overhead, skips).
 */
#ifndef DSTC_TIMING_STATS_H
#define DSTC_TIMING_STATS_H

#include <cstdint>
#include <string>

#include "isa/isa.h"

namespace dstc {

/** What limited the kernel's execution time. */
enum class Bound
{
    Compute,
    Memory,
};

/** Timing and instruction statistics of one simulated kernel. */
struct KernelStats
{
    std::string name;

    // Instruction accounting (aggregated over all warps).
    InstructionMix mix;
    int64_t warp_tiles = 0;
    int64_t warp_tiles_skipped = 0; ///< skipped via the warp-bitmap
    int64_t merge_cycles = 0;       ///< accumulation-buffer writeback

    // Derived times.
    double compute_us = 0.0;
    double memory_us = 0.0;
    double dram_bytes = 0.0;
    double launch_us = 0.0;
    Bound bound = Bound::Compute;

    /** End-to-end kernel time. */
    double
    timeUs() const
    {
        return (compute_us > memory_us ? compute_us : memory_us) +
               launch_us;
    }

    KernelStats &
    operator+=(const KernelStats &other)
    {
        mix += other.mix;
        warp_tiles += other.warp_tiles;
        warp_tiles_skipped += other.warp_tiles_skipped;
        merge_cycles += other.merge_cycles;
        compute_us += other.compute_us;
        memory_us += other.memory_us;
        dram_bytes += other.dram_bytes;
        launch_us += other.launch_us;
        return *this;
    }
};

} // namespace dstc

#endif // DSTC_TIMING_STATS_H
