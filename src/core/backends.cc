/**
 * @file
 * The five primitive backends: dual-side sparse Tensor Core, dense
 * CUTLASS-like, Zhu vector-wise sparse TC, Ampere 2:4 sparse TC and
 * the cuSPARSE-like CSR SpGEMM — each answering the uniform
 * KernelRequest -> plan() -> execute() -> KernelReport protocol.
 * The density-partitioned hybrid composer that routes tile classes
 * across them lives in hybrid.cc.
 *
 * plan() resolves operand encodings through the EncodingCache:
 * two-level bitmap construction for functional dual-sparse GEMM,
 * popcount-profile synthesis for the timing sweeps, CSR encoding for
 * the cuSPARSE baseline and the conv operand encodings of the im2col
 * paths. execute() then runs the timing (or functional) model over
 * the resolved operands.
 */
#include "core/backend.h"

#include "baselines/ampere_sparse_tc.h"
#include "baselines/cusparse_like.h"
#include "baselines/cutlass_like.h"
#include "baselines/zhu_sparse_tc.h"
#include "conv/spconv.h"
#include "core/gemm_operands.h"
#include "core/method_map.h"
#include "gemm/dense_gemm.h"
#include "gemm/spgemm_device.h"
#include "gemm/spmm_device.h"
#include "sparse/word_encode.h"

namespace dstc {

namespace {

/** Per-matrix QuantSpec of one operand at the request datatype
 *  (integer scales are matrix-global: serial fabs-max). */
QuantSpec
specFor(DataType dtype, const Matrix<float> &m)
{
    return QuantSpec::forValues(dtype, m.data().data(),
                                m.data().size());
}

/** The conv pipeline executes FP16 only; quantized datatypes are a
 *  GEMM-path feature for now. */
bool
convDataTypeOk(const KernelRequest &req)
{
    return req.dataType() == DataType::Fp16;
}

CacheKey
convKey(const KernelRequest &req, ConvMethod cm)
{
    CacheKey key("conv-encoding");
    key.i32(static_cast<int32_t>(cm));
    key.i32(req.shape.batch)
        .i32(req.shape.in_c)
        .i32(req.shape.in_h)
        .i32(req.shape.in_w)
        .i32(req.shape.out_c)
        .i32(req.shape.kernel)
        .i32(req.shape.stride)
        .i32(req.shape.pad);
    key.f64(req.b_sparsity)
        .f64(req.a_sparsity)
        .f64(req.b_cluster)
        .f64(req.a_cluster)
        .u64(req.seed);
    return key;
}

// ===================================================================
// Dual-side sparse Tensor Core
// ===================================================================

class DualGemmPlan : public ExecutionPlan
{
  public:
    DualGemmPlan(const char *name, const KernelRequest &req,
                 const PlanContext &ctx)
        : ExecutionPlan(name, Method::DualSparse, req.tag), req_(req),
          cfg_(*ctx.cfg), cache_(ctx.cache),
          encode_workers_(ctx.encode_workers)
    {
    }

  protected:
    KernelReport
    run() override
    {
        SpGemmDevice device(cfg_);
        KernelReport report;
        if (req_.a && req_.b) {
            // Functional path: resolve the two-level encodings the
            // kernel consumes (encode-once across repeated
            // requests). Deferred to execution so a losing Auto
            // candidate never pays for the encode.
            resolveTwoLevel();
            SpGemmResult r = device.multiplyEncoded(
                *a_enc_, *b_enc_, req_.gemm_options);
            report.stats = r.stats;
            if (req_.gemm_options.functional)
                report.d = std::make_shared<const Matrix<float>>(
                    std::move(r.d));
        } else if (req_.a_encoded && req_.b_encoded) {
            SpGemmResult r = device.multiplyEncoded(
                *req_.a_encoded, *req_.b_encoded, req_.gemm_options);
            report.stats = r.stats;
            if (req_.gemm_options.functional)
                report.d = std::make_shared<const Matrix<float>>(
                    std::move(r.d));
        } else {
            const GemmProfilesView &p = profiles();
            report.stats = device.timeFromProfiles(
                *p.a, *p.b, req_.gemm_options);
        }
        return report;
    }

    double
    estimate() override
    {
        // Functional requests estimate from a profile view so Auto
        // dispatch (and cluster cost-model placement) never runs a
        // candidate's kernel just to rank it; the timing-only shapes
        // share the memoized run (never paying twice).
        if (req_.a_encoded && req_.b_encoded)
            return estimateEncoded();
        if (!(req_.a && req_.b))
            return ExecutionPlan::estimate();
        const GemmProfilesView &p = profiles();
        SpGemmDevice device(cfg_);
        return device.timeFromProfiles(*p.a, *p.b, req_.gemm_options)
            .timeUs();
    }

  private:
    /**
     * Estimate a pre-encoded request from profiles read off the
     * encodings (packing-offset reads, no value pass) — running the
     * real kernel here would make cost-ranking as expensive as
     * executing every candidate. The derived counts are exact, so
     * like every dual-sparse estimate this one equals the executed
     * stats. Tilings that disagree with the options fall back to the
     * memoized run (timeFromProfiles asserts the warp-tile edges).
     */
    double
    estimateEncoded()
    {
        SpGemmOptions o = req_.gemm_options;
        const TwoLevelBitmapMatrix &a = *req_.a_encoded;
        const TwoLevelBitmapMatrix &b = *req_.b_encoded;
        if (a.tileRows() != o.tile_m || a.tileCols() != o.tile_k ||
            b.tileRows() != o.tile_k || b.tileCols() != o.tile_n)
            return ExecutionPlan::estimate();
        // Pre-encoded operands carry the authoritative datatype (the
        // run path reads it off their specs); keep the estimate's
        // compute/traffic scaling consistent with execution.
        o.dtype = a.spec().dtype;
        SpGemmDevice device(cfg_);
        return device
            .timeFromProfiles(SparsityProfile::fromEncodedA(a),
                              SparsityProfile::fromEncodedB(b), o)
            .timeUs();
    }

    /**
     * The popcount-profile view of the operands, resolved on first
     * use: the timing path consumes it in run(), while functional
     * plans only need it when Auto dispatch asks for an estimate.
     * Empty for pre-encoded requests (no profile view available).
     */
    const GemmProfilesView &
    profiles()
    {
        if (!profiles_resolved_) {
            profiles_resolved_ = true;
            PlanContext ctx;
            ctx.cfg = &cfg_;
            ctx.cache = cache_;
            bool hit = false;
            profiles_ =
                resolveGemmProfiles(req_, ctx, digests_, &hit);
            cache_hit_ = cache_hit_ || hit;
        }
        return profiles_;
    }

    /**
     * Cache-backed two-level encodings of concrete operands, via the
     * shared resolvers of gemm_operands.h (word-parallel encoder,
     * bitwise identical to the element-wise encode for every worker
     * count; one cache key per operand digest and tiling, shared
     * with the hybrid composer's class slices).
     */
    void
    resolveTwoLevel()
    {
        if (a_enc_)
            return;
        bool hit_a = false, hit_b = false;
        PlanContext ctx;
        ctx.cfg = &cfg_;
        ctx.cache = cache_;
        ctx.encode_workers = encode_workers_;
        a_enc_ = resolveTwoLevelA(req_, ctx, digests_, &hit_a);
        b_enc_ = resolveTwoLevelB(req_, ctx, digests_, &hit_b);
        cache_hit_ = cache_hit_ || hit_a || hit_b;
    }

    KernelRequest req_;
    GpuConfig cfg_;
    EncodingCache *cache_;
    int encode_workers_ = 1;
    OperandDigests digests_;
    bool profiles_resolved_ = false;
    GemmProfilesView profiles_;
    std::shared_ptr<const TwoLevelBitmapMatrix> a_enc_;
    std::shared_ptr<const TwoLevelBitmapMatrix> b_enc_;
};

/**
 * Dual-side sparse SpMM plan: sparse A (narrow 8x1 or wide 32-wide
 * two-level encoding) against a dense streamed B. The format choice
 * is made at plan stage from the request's exact density profiles —
 * both estimates fold the same per-strip counts the executed kernels
 * fold, so the selection compares what execution would actually
 * cost. SpmmFormat::Narrow/Wide override the choice.
 */
class DualSpmmPlan : public ExecutionPlan
{
  public:
    DualSpmmPlan(const char *name, const KernelRequest &req,
                 const PlanContext &ctx)
        : ExecutionPlan(name, Method::DualSparse, req.tag), req_(req),
          cfg_(*ctx.cfg), cache_(ctx.cache),
          encode_workers_(ctx.encode_workers)
    {
    }

  protected:
    KernelReport
    run() override
    {
        SpmmDevice device(cfg_);
        const SpmmFormat format = chosenFormat();
        KernelReport report;
        if (req_.a && req_.b) {
            // Encodes are deferred to execution so a losing Auto
            // candidate (and the unchosen format) never pays for
            // them.
            PlanContext ctx;
            ctx.cfg = &cfg_;
            ctx.cache = cache_;
            ctx.encode_workers = encode_workers_;
            bool hit = false;
            const QuantSpec spec_b =
                specFor(req_.dataType(), *req_.b);
            SpmmResult r =
                format == SpmmFormat::Narrow
                    ? device.multiplyNarrow(
                          *resolveNarrowTileA(req_, ctx, digests_,
                                              &hit),
                          *req_.b, spec_b, req_.gemm_options)
                    : device.multiplyWide(
                          *resolveTwoLevelA(req_, ctx, digests_,
                                            &hit),
                          *req_.b, spec_b, req_.gemm_options);
            cache_hit_ = cache_hit_ || hit;
            report.stats = r.stats;
            if (req_.gemm_options.functional)
                report.d = std::make_shared<const Matrix<float>>(
                    std::move(r.d));
        } else {
            report.stats = formatStats(format);
        }
        return report;
    }

    double
    estimate() override
    {
        // The profile estimate of the chosen format — identical to
        // the executed stats by construction (shared count-folding
        // routine), so Auto ranks this plan at its true cost without
        // encoding anything.
        return formatStats(chosenFormat()).timeUs();
    }

  private:
    SpmmFormat
    chosenFormat()
    {
        if (format_ == SpmmFormat::Auto) {
            if (req_.spmm_format != SpmmFormat::Auto)
                format_ = req_.spmm_format;
            else
                format_ = formatStats(SpmmFormat::Narrow).timeUs() <=
                                  formatStats(SpmmFormat::Wide)
                                      .timeUs()
                              ? SpmmFormat::Narrow
                              : SpmmFormat::Wide;
        }
        return format_;
    }

    KernelStats
    formatStats(SpmmFormat format)
    {
        const SpmmProfilesView &p = profiles();
        SpmmDevice device(cfg_);
        return format == SpmmFormat::Narrow
                   ? device.timeNarrowFromProfile(*p.a8, req_.n,
                                                  req_.gemm_options)
                   : device.timeWideFromProfile(*p.a32, req_.n,
                                                req_.gemm_options);
    }

    const SpmmProfilesView &
    profiles()
    {
        if (!profiles_resolved_) {
            profiles_resolved_ = true;
            PlanContext ctx;
            ctx.cfg = &cfg_;
            ctx.cache = cache_;
            bool hit = false;
            profiles_ =
                resolveSpmmProfiles(req_, ctx, digests_, &hit);
            cache_hit_ = cache_hit_ || hit;
        }
        return profiles_;
    }

    KernelRequest req_;
    GpuConfig cfg_;
    EncodingCache *cache_;
    int encode_workers_ = 1;
    OperandDigests digests_;
    SpmmFormat format_ = SpmmFormat::Auto; ///< Auto = not chosen yet
    bool profiles_resolved_ = false;
    SpmmProfilesView profiles_;
};

// -- shared conv plan (dual / dense / zhu) --------------------------

class ConvPlan : public ExecutionPlan
{
  public:
    ConvPlan(const char *name, Method method, const KernelRequest &req,
             const PlanContext &ctx)
        : ExecutionPlan(name, method, req.tag), req_(req),
          cfg_(*ctx.cfg),
          conv_method_(toConvMethod(method, req.lowering))
    {
        if (!req_.functional()) {
            bool hit = false;
            const KernelRequest r = req_;
            const ConvMethod cm = conv_method_;
            encoding_ = ctx.cache->getOrBuild<ConvOperandEncoding>(
                convKey(req_, cm).value(),
                [r, cm] {
                    return encodeConvOperands(
                        r.shape, cm, r.b_sparsity, r.a_sparsity,
                        r.seed, r.b_cluster, r.a_cluster);
                },
                &hit);
            cache_hit_ = hit;
        }
    }

  protected:
    KernelReport
    run() override
    {
        ConvExecutor executor(cfg_);
        KernelReport report;
        if (req_.functional()) {
            ConvResult r = executor.run(*req_.input, *req_.b,
                                        req_.shape, conv_method_,
                                        req_.conv_options);
            report.stats = r.stats;
            report.output = std::make_shared<const Tensor4d>(
                std::move(r.output));
        } else {
            report.stats = executor.timeEncoded(req_.shape,
                                                conv_method_,
                                                *encoding_);
        }
        return report;
    }

    double
    estimate() override
    {
        // Functional plans estimate from the operands' measured
        // sparsities instead of executing the convolution — Auto
        // dispatch must not run every candidate's functional path.
        if (!req_.functional())
            return ExecutionPlan::estimate();
        ConvExecutor executor(cfg_);
        return executor
            .timeOnly(req_.shape, conv_method_, req_.b->sparsity(),
                      req_.input->sparsity(), req_.seed,
                      req_.b_cluster, req_.a_cluster)
            .timeUs();
    }

  private:
    KernelRequest req_;
    GpuConfig cfg_;
    ConvMethod conv_method_;
    std::shared_ptr<const ConvOperandEncoding> encoding_;
};

class DualSparseBackend : public Backend
{
  public:
    Method method() const override { return Method::DualSparse; }
    const char *name() const override { return "dual-sparse"; }

    bool
    supports(const KernelRequest &req) const override
    {
        switch (req.kind) {
        case KernelRequest::Kind::Gemm:
            // Pre-encoded operands must come as a pair (a
            // half-specified pair has no consistent execution).
            return !req.a_encoded == !req.b_encoded;
        case KernelRequest::Kind::Spmm:
            // SpMM resolves its own A-side encodings (narrow or
            // wide, chosen at plan stage); pre-encoded operands have
            // no entry point.
            return !req.a_encoded && !req.b_encoded;
        case KernelRequest::Kind::Conv:
            // The dual-side design is inherently implicit (the
            // bitmap im2col is part of the datapath, Sec. IV), and
            // the conv pipeline is FP16-only.
            return req.lowering == Lowering::Implicit &&
                   convDataTypeOk(req);
        }
        return false;
    }

    std::unique_ptr<ExecutionPlan>
    plan(const KernelRequest &req,
         const PlanContext &ctx) const override
    {
        if (req.kind == KernelRequest::Kind::Conv)
            return std::make_unique<ConvPlan>(name(), method(), req,
                                              ctx);
        if (req.kind == KernelRequest::Kind::Spmm)
            return std::make_unique<DualSpmmPlan>(name(), req, ctx);
        return std::make_unique<DualGemmPlan>(name(), req, ctx);
    }
};

// ===================================================================
// Dense CUTLASS-like Tensor Core
// ===================================================================

class DenseGemmPlan : public ExecutionPlan
{
  public:
    DenseGemmPlan(const char *name, const KernelRequest &req,
                  const PlanContext &ctx)
        : ExecutionPlan(name, Method::Dense, req.tag), req_(req),
          cfg_(*ctx.cfg)
    {
    }

  protected:
    KernelReport
    run() override
    {
        KernelReport report;
        const DataType dtype = req_.dataType();
        if (req_.a && req_.b && req_.gemm_options.functional) {
            DenseGemmDevice device(cfg_);
            DenseGemmResult r = device.multiply(
                *req_.a, *req_.b, req_.outer_product,
                specFor(dtype, *req_.a), specFor(dtype, *req_.b));
            report.stats = r.stats;
            report.d =
                std::make_shared<const Matrix<float>>(std::move(r.d));
        } else {
            report.stats =
                cutlassGemm(cfg_, req_.m, req_.n, req_.k, dtype);
        }
        return report;
    }

    double
    estimate() override
    {
        // Functional plans estimate analytically so Auto never runs
        // a losing candidate's kernel; timing plans share the
        // memoized run.
        if (req_.a && req_.b)
            return cutlassGemm(cfg_, req_.m, req_.n, req_.k,
                               req_.dataType())
                .timeUs();
        return ExecutionPlan::estimate();
    }

  private:
    KernelRequest req_;
    GpuConfig cfg_;
};

class DenseBackend : public Backend
{
  public:
    Method method() const override { return Method::Dense; }
    const char *name() const override { return "dense-cutlass"; }

    bool
    supports(const KernelRequest &req) const override
    {
        switch (req.kind) {
        case KernelRequest::Kind::Gemm:
        case KernelRequest::Kind::Spmm:
            // Dense GEMM answers SpMM by streaming A as a dense m x k
            // operand (zeros and all) — the format-insensitive
            // floor every sparse path must beat. Pre-encoded
            // two-level operands are only consumable by the
            // dual-sparse kernel.
            return !req.a_encoded;
        case KernelRequest::Kind::Conv:
            // Both conv lowerings, FP16-only conv pipeline.
            return convDataTypeOk(req);
        }
        return false;
    }

    std::unique_ptr<ExecutionPlan>
    plan(const KernelRequest &req,
         const PlanContext &ctx) const override
    {
        if (req.kind == KernelRequest::Kind::Conv)
            return std::make_unique<ConvPlan>(name(), method(), req,
                                              ctx);
        // Kind::Spmm shares the dense GEMM plan: same geometry
        // fields, same kernel (A's sparsity is invisible to a dense
        // datapath).
        return std::make_unique<DenseGemmPlan>(name(), req, ctx);
    }
};

// ===================================================================
// Zhu vector-wise sparse Tensor Core [72]
// ===================================================================

class ZhuGemmPlan : public ExecutionPlan
{
  public:
    ZhuGemmPlan(const char *name, const KernelRequest &req,
                const PlanContext &ctx)
        : ExecutionPlan(name, Method::ZhuSparse, req.tag), req_(req),
          cfg_(*ctx.cfg)
    {
    }

  protected:
    KernelReport
    run() override
    {
        KernelReport report;
        const DataType dtype = req_.dataType();
        report.stats = zhuGemm(cfg_, req_.m, req_.n, req_.k,
                               weightSparsity(req_), dtype);
        if (req_.a && req_.b && req_.gemm_options.functional)
            report.d = std::make_shared<const Matrix<float>>(
                zhuGemmFunctional(*req_.a, *req_.b, 16,
                                  specFor(dtype, *req_.a),
                                  specFor(dtype, *req_.b)));
        return report;
    }

    double
    estimate() override
    {
        if (req_.a && req_.b)
            return zhuGemm(cfg_, req_.m, req_.n, req_.k,
                           weightSparsity(req_), req_.dataType())
                .timeUs();
        return ExecutionPlan::estimate();
    }

  private:
    KernelRequest req_;
    GpuConfig cfg_;
};

class ZhuSparseBackend : public Backend
{
  public:
    Method method() const override { return Method::ZhuSparse; }
    const char *name() const override { return "zhu-vectorwise"; }

    bool
    exact(const KernelRequest &req) const override
    {
        // GEMM prunes B to the fixed 75% format; the explicit conv
        // strategy's timing presumes that prune too. Only the
        // implicit conv path times the weights' actual sparsity.
        return req.kind == KernelRequest::Kind::Conv &&
               req.lowering == Lowering::Implicit;
    }

    bool
    supports(const KernelRequest &req) const override
    {
        switch (req.kind) {
        case KernelRequest::Kind::Gemm:
            return !req.a_encoded; // no two-level consumption path
        case KernelRequest::Kind::Spmm:
            // The vector-wise format prunes B; SpMM's B side is
            // dense by definition, so the design has nothing to
            // exploit (and pruning dense B changes the numerics).
            return false;
        case KernelRequest::Kind::Conv:
            // Both Single Sparse conv lowerings, FP16 only.
            return convDataTypeOk(req);
        }
        return false;
    }

    std::unique_ptr<ExecutionPlan>
    plan(const KernelRequest &req,
         const PlanContext &ctx) const override
    {
        if (req.kind == KernelRequest::Kind::Conv)
            return std::make_unique<ConvPlan>(name(), method(), req,
                                              ctx);
        return std::make_unique<ZhuGemmPlan>(name(), req, ctx);
    }
};

// ===================================================================
// Ampere 2:4 sparse Tensor Core
// ===================================================================

class AmpereGemmPlan : public ExecutionPlan
{
  public:
    AmpereGemmPlan(const char *name, const KernelRequest &req,
                   const PlanContext &ctx)
        : ExecutionPlan(name, Method::AmpereSparse, req.tag),
          req_(req), cfg_(*ctx.cfg)
    {
    }

  protected:
    KernelReport
    run() override
    {
        KernelReport report;
        const DataType dtype = req_.dataType();
        report.stats = ampereGemm(cfg_, req_.m, req_.n, req_.k,
                                  weightSparsity(req_), dtype);
        if (req_.a && req_.b && req_.gemm_options.functional)
            report.d = std::make_shared<const Matrix<float>>(
                ampereGemmFunctional(*req_.a, *req_.b,
                                     specFor(dtype, *req_.a),
                                     specFor(dtype, *req_.b)));
        return report;
    }

    double
    estimate() override
    {
        if (req_.a && req_.b)
            return ampereGemm(cfg_, req_.m, req_.n, req_.k,
                              weightSparsity(req_), req_.dataType())
                .timeUs();
        return ExecutionPlan::estimate();
    }

  private:
    KernelRequest req_;
    GpuConfig cfg_;
};

class AmpereSparseBackend : public Backend
{
  public:
    Method method() const override { return Method::AmpereSparse; }
    const char *name() const override { return "ampere-2to4"; }

    bool
    exact(const KernelRequest &req) const override
    {
        (void)req;
        return false; // 2:4 pruning always changes the numerics
    }

    bool
    supports(const KernelRequest &req) const override
    {
        // GEMM only: the 2:4 production design has no conv strategy
        // in the Fig. 22 comparison, and its 2:4 prune has no handle
        // on SpMM's dense B side.
        return req.kind == KernelRequest::Kind::Gemm &&
               !req.a_encoded;
    }

    std::unique_ptr<ExecutionPlan>
    plan(const KernelRequest &req,
         const PlanContext &ctx) const override
    {
        return std::make_unique<AmpereGemmPlan>(name(), req, ctx);
    }
};

// ===================================================================
// cuSPARSE-like CSR SpGEMM
// ===================================================================

class CusparseGemmPlan : public ExecutionPlan
{
  public:
    CusparseGemmPlan(const char *name, const KernelRequest &req,
                     const PlanContext &ctx)
        : ExecutionPlan(name, Method::CusparseLike, req.tag),
          req_(req), cfg_(*ctx.cfg), cache_(ctx.cache)
    {
    }

  protected:
    KernelReport
    run() override
    {
        KernelReport report;
        if (req_.a && req_.b) {
            // CSR encode is deferred to execution so a losing Auto
            // candidate never pays for it. The CSR encodings stay
            // raw FP32 (dtype-invariant, shareable across request
            // datatypes); quantization happens per value inside the
            // multiply. The latency-limited timing model is
            // insensitive to the lane width.
            resolveCsr();
            const DataType dtype = req_.dataType();
            report.stats = cusparseGemmTime(cfg_, *a_csr_, *b_csr_);
            if (req_.gemm_options.functional)
                report.d = std::make_shared<const Matrix<float>>(
                    csrGemm(*a_csr_, *b_csr_,
                            specFor(dtype, *req_.a),
                            specFor(dtype, *req_.b))
                        .decode());
        } else {
            double da, db;
            operandDensities(req_, &da, &db);
            report.stats = cusparseGemmTimeExpected(
                cfg_, req_.m, req_.n, req_.k, da, db);
        }
        return report;
    }

    double
    estimate() override
    {
        // Functional plans estimate from the expected-value model at
        // the operands' measured densities (operandDensities reads
        // the matrices directly); timing plans share the memoized
        // run.
        if (!(req_.a && req_.b))
            return ExecutionPlan::estimate();
        double da, db;
        operandDensities(req_, &da, &db);
        return cusparseGemmTimeExpected(cfg_, req_.m, req_.n, req_.k,
                                        da, db)
            .timeUs();
    }

  private:
    void
    resolveCsr()
    {
        if (a_csr_)
            return;
        bool hit_a = false, hit_b = false;
        CacheKey ka("csr-a");
        ka.u64(digests_.a(*req_.a));
        const Matrix<float> *a = req_.a;
        a_csr_ = cache_->getOrBuild<CsrMatrix>(
            ka.value(), [a] { return CsrMatrix::encode(*a); },
            &hit_a);
        CacheKey kb("csr-b");
        kb.u64(digests_.b(*req_.b));
        const Matrix<float> *b = req_.b;
        b_csr_ = cache_->getOrBuild<CsrMatrix>(
            kb.value(), [b] { return CsrMatrix::encode(*b); },
            &hit_b);
        cache_hit_ = cache_hit_ || hit_a || hit_b;
    }

    KernelRequest req_;
    GpuConfig cfg_;
    EncodingCache *cache_;
    OperandDigests digests_;
    std::shared_ptr<const CsrMatrix> a_csr_;
    std::shared_ptr<const CsrMatrix> b_csr_;
};

/**
 * Library-style CSR SpMM plan (cusparseSpMM shape): one row-parallel
 * kernel. The functional path accumulates in ascending-k order from
 * spec-quantized operands, so its output is bitwise identical to the
 * dual-sparse SpMM paths — the baseline the gate compares against is
 * numerically the very same computation.
 */
class CusparseSpmmPlan : public ExecutionPlan
{
  public:
    CusparseSpmmPlan(const char *name, const KernelRequest &req,
                     const PlanContext &ctx)
        : ExecutionPlan(name, Method::CusparseLike, req.tag),
          req_(req), cfg_(*ctx.cfg), cache_(ctx.cache)
    {
    }

  protected:
    KernelReport
    run() override
    {
        KernelReport report;
        if (req_.a && req_.b) {
            resolveCsrA();
            const int64_t products =
                static_cast<int64_t>(a_csr_->nnz()) * req_.n;
            report.stats = cusparseSpmmTime(cfg_, req_.m, products,
                                            req_.m * req_.n);
            if (req_.gemm_options.functional) {
                const DataType dtype = req_.dataType();
                report.d = std::make_shared<const Matrix<float>>(
                    csrSpmm(*a_csr_, *req_.b,
                            specFor(dtype, *req_.a),
                            specFor(dtype, *req_.b)));
            }
        } else {
            report.stats = timeFromDensity();
        }
        return report;
    }

    double
    estimate() override
    {
        // The density probe reads the exact non-zero count (word
        // popcounts for concrete A, profile totals otherwise), and
        // the model depends on A only through that count — so this
        // estimate equals the executed stats without paying the CSR
        // encode.
        return timeFromDensity().timeUs();
    }

  private:
    KernelStats
    timeFromDensity()
    {
        double da, db;
        operandDensities(req_, &da, &db);
        const double nnz_a =
            da * static_cast<double>(req_.m) * req_.k;
        return cusparseSpmmTime(
            cfg_, req_.m,
            static_cast<int64_t>(nnz_a) * req_.n,
            req_.m * req_.n);
    }

    void
    resolveCsrA()
    {
        if (a_csr_)
            return;
        bool hit = false;
        CacheKey key("csr-a");
        key.u64(digests_.a(*req_.a));
        const Matrix<float> *a = req_.a;
        a_csr_ = cache_->getOrBuild<CsrMatrix>(
            key.value(), [a] { return CsrMatrix::encode(*a); }, &hit);
        cache_hit_ = cache_hit_ || hit;
    }

    KernelRequest req_;
    GpuConfig cfg_;
    EncodingCache *cache_;
    OperandDigests digests_;
    std::shared_ptr<const CsrMatrix> a_csr_;
};

class CusparseLikeBackend : public Backend
{
  public:
    Method method() const override { return Method::CusparseLike; }
    const char *name() const override { return "cusparse-like"; }

    bool
    supports(const KernelRequest &req) const override
    {
        return (req.kind == KernelRequest::Kind::Gemm ||
                req.kind == KernelRequest::Kind::Spmm) &&
               !req.a_encoded;
    }

    std::unique_ptr<ExecutionPlan>
    plan(const KernelRequest &req,
         const PlanContext &ctx) const override
    {
        if (req.kind == KernelRequest::Kind::Spmm)
            return std::make_unique<CusparseSpmmPlan>(name(), req,
                                                      ctx);
        return std::make_unique<CusparseGemmPlan>(name(), req, ctx);
    }
};

} // namespace

std::unique_ptr<Backend>
makeDualSparseBackend()
{
    return std::make_unique<DualSparseBackend>();
}

std::unique_ptr<Backend>
makeDenseBackend()
{
    return std::make_unique<DenseBackend>();
}

std::unique_ptr<Backend>
makeZhuSparseBackend()
{
    return std::make_unique<ZhuSparseBackend>();
}

std::unique_ptr<Backend>
makeAmpereSparseBackend()
{
    return std::make_unique<AmpereSparseBackend>();
}

std::unique_ptr<Backend>
makeCusparseLikeBackend()
{
    return std::make_unique<CusparseLikeBackend>();
}

} // namespace dstc
