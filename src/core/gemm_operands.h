/**
 * @file
 * Shared operand-resolution helpers of the GEMM plan layer: the
 * cached popcount-profile pair of a request (borrowed, built from
 * matrices, or synthesized per seed), lazily-memoized operand
 * digests, and the density probes the analytic baselines estimate
 * from. Both the primitive backends (backends.cc) and the hybrid
 * composer (hybrid.cc) resolve operands through these — one
 * implementation, one set of cache keys, so a hybrid plan and a
 * dual-sparse plan of the same operands share their cache entries.
 */
#ifndef DSTC_CORE_GEMM_OPERANDS_H
#define DSTC_CORE_GEMM_OPERANDS_H

#include <memory>
#include <optional>

#include "core/backend.h"
#include "gemm/sparsity_profile.h"

namespace dstc {

class NarrowTileMatrix;

/** The profile pair of one synthetic GEMM operating point. Both
 *  sides share one generator stream (A drawn before B), so the pair
 *  is cached as a unit. */
struct GemmProfilePair
{
    SparsityProfile a;
    SparsityProfile b;

    /** Resident footprint, for the cache's byte-aware bound. */
    size_t
    encodedBytes() const
    {
        return (static_cast<size_t>(a.groups()) * a.k() +
                static_cast<size_t>(b.groups()) * b.k()) *
               sizeof(uint16_t);
    }
};

/**
 * Non-owning view of a GEMM request's profile pair. Caller-provided
 * profiles are referenced in place (no per-plan copy on the
 * spgemmTime path); cache-built pairs are kept alive through the
 * aliasing owner.
 */
struct GemmProfilesView
{
    std::shared_ptr<const SparsityProfile> a;
    std::shared_ptr<const SparsityProfile> b;

    explicit operator bool() const { return a && b; }

    static GemmProfilesView
    borrowed(const SparsityProfile *a, const SparsityProfile *b)
    {
        return {std::shared_ptr<const SparsityProfile>(
                    std::shared_ptr<const void>(), a),
                std::shared_ptr<const SparsityProfile>(
                    std::shared_ptr<const void>(), b)};
    }

    static GemmProfilesView
    owned(std::shared_ptr<const GemmProfilePair> pair)
    {
        GemmProfilesView v;
        v.a = std::shared_ptr<const SparsityProfile>(pair, &pair->a);
        v.b = std::shared_ptr<const SparsityProfile>(pair, &pair->b);
        return v;
    }
};

/**
 * Lazily-computed content digests of a request's concrete operands.
 * Hashing a large matrix is a full pass over its bytes, and a plan
 * needs the same operand under several encoding families (profiles,
 * two-level, CSR) — so each operand is digested once and the 64-bit
 * digest is folded into every family key.
 */
class OperandDigests
{
  public:
    uint64_t
    a(const Matrix<float> &m)
    {
        return digest(&m, &a_src_, &a_);
    }

    uint64_t
    b(const Matrix<float> &m)
    {
        return digest(&m, &b_src_, &b_);
    }

  private:
    /** Each slot memoizes exactly one matrix: a later call with a
     *  different object would silently reuse the wrong digest, so
     *  the identity is checked, not assumed. */
    static uint64_t
    digest(const Matrix<float> *m, const Matrix<float> **src,
           std::optional<uint64_t> *slot)
    {
        if (!*slot) {
            *src = m;
            *slot = CacheKey("operand-bytes").matrix(*m).value();
        }
        DSTC_ASSERT(*src == m,
                    "OperandDigests slot reused for a different "
                    "matrix");
        return **slot;
    }

    const Matrix<float> *a_src_ = nullptr;
    const Matrix<float> *b_src_ = nullptr;
    std::optional<uint64_t> a_;
    std::optional<uint64_t> b_;
};

/** Resolve (or synthesize) the popcount profiles of a GEMM request.
 *  Returns an empty view when the request carries pre-encoded
 *  operands only (no profile view available without decoding). */
GemmProfilesView
resolveGemmProfiles(const KernelRequest &req, const PlanContext &ctx,
                    OperandDigests &digests, bool *hit);

/**
 * Cache-backed two-level encoding of a request's concrete A operand
 * (requires req.a), built by the word-parallel encoder at the
 * request's tiling (bitwise identical to the element-wise encode for
 * every ctx.encode_workers setting, so the key carries only the
 * operand digest and tiling). Keyed here, in one place, so a hybrid
 * class slice and a dual-sparse plan of the same operand share one
 * cache entry.
 */
std::shared_ptr<const TwoLevelBitmapMatrix>
resolveTwoLevelA(const KernelRequest &req, const PlanContext &ctx,
                 OperandDigests &digests, bool *hit);

/** B-operand counterpart of resolveTwoLevelA (requires req.b). */
std::shared_ptr<const TwoLevelBitmapMatrix>
resolveTwoLevelB(const KernelRequest &req, const PlanContext &ctx,
                 OperandDigests &digests, bool *hit);

/**
 * The A-side profile pair of one SpMM request: the strip-granular
 * (tile = 8) profile the narrow-format estimate runs on, and its
 * exact warp-tile (tile = 32) aggregation for the wide-format
 * estimate. Derived from one pattern — aggregation sums groups of
 * four strips — so the two format estimates always see the same
 * operand, synthetic points included.
 */
struct SpmmProfilePair
{
    SparsityProfile a8;
    SparsityProfile a32;

    /** Resident footprint, for the cache's byte-aware bound. */
    size_t
    encodedBytes() const
    {
        return (static_cast<size_t>(a8.groups()) * a8.k() +
                static_cast<size_t>(a32.groups()) * a32.k()) *
               sizeof(uint16_t);
    }
};

/** Non-owning view of an SpMM request's A-side profile pair. */
struct SpmmProfilesView
{
    std::shared_ptr<const SparsityProfile> a8;
    std::shared_ptr<const SparsityProfile> a32;

    explicit operator bool() const { return a8 && a32; }
};

/**
 * Exact warp-tile aggregation of a strip-granular A profile: group g
 * of the tile-32 result sums strips 4g .. 4g+3, so
 * aggregateSpmmProfile(fromMatrixAWord(a, 8)) equals
 * fromMatrixAWord(a, 32) count-for-count.
 */
SparsityProfile aggregateSpmmProfile(const SparsityProfile &a8);

/**
 * Resolve (or synthesize) the A-side profiles of an SpMM request:
 * caller-provided strip profiles are referenced in place (their
 * aggregation is built fresh — no digestable identity to cache by);
 * concrete and synthetic operands resolve through the cache.
 */
SpmmProfilesView
resolveSpmmProfiles(const KernelRequest &req, const PlanContext &ctx,
                    OperandDigests &digests, bool *hit);

/**
 * Cache-backed narrow-tile encoding of an SpMM request's concrete A
 * operand (requires req.a), built by the word-parallel encoder
 * (bitwise identical to the scalar NarrowTileMatrix::encode for
 * every ctx.encode_workers setting).
 */
std::shared_ptr<const NarrowTileMatrix>
resolveNarrowTileA(const KernelRequest &req, const PlanContext &ctx,
                   OperandDigests &digests, bool *hit);

/** Non-zero fraction of a profile over its true extent — the same
 *  geometry KernelRequest::gemm(profile, profile) reports as m/n, so
 *  density * m * k recovers the exact nnz for ragged shapes too. */
double profileDensity(const SparsityProfile &p);

/** Effective B-side (weight) sparsity of a GEMM request. Concrete
 *  operands are probed by the branchless word count (zhu / ampere
 *  plans call this in both estimate and run). */
double weightSparsity(const KernelRequest &req);

/** Operand densities of a GEMM request (cuSPARSE baseline). */
void operandDensities(const KernelRequest &req, double *da,
                      double *db);

} // namespace dstc

#endif // DSTC_CORE_GEMM_OPERANDS_H
