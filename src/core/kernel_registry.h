/**
 * @file
 * The KernelRegistry: the enumerable set of execution backends and
 * the Method::Auto dispatcher.
 *
 * Backends register as polymorphic Backend implementations; callers
 * can enumerate them, look one up by Method, or hand the registry a
 * KernelRequest and let it choose. Auto dispatch plans every
 * candidate backend and picks the one whose plan-stage estimate
 * (from the operands' SparsityProfile) is fastest — making backend
 * choice a first-class, data-dependent decision instead of a method
 * call baked into the caller.
 */
#ifndef DSTC_CORE_KERNEL_REGISTRY_H
#define DSTC_CORE_KERNEL_REGISTRY_H

#include <memory>
#include <vector>

#include "core/backend.h"

namespace dstc {

/** Registry of the available execution backends. */
class KernelRegistry
{
  public:
    KernelRegistry() = default;
    KernelRegistry(KernelRegistry &&) = default;
    KernelRegistry &operator=(KernelRegistry &&) = default;

    /** The registry with the five evaluated backends (Fig. 21/22). */
    static KernelRegistry withDefaultBackends();

    /** Add a backend. A later registration of the same Method
     *  replaces the earlier one. */
    void registerBackend(std::unique_ptr<Backend> backend);

    const std::vector<std::unique_ptr<Backend>> &
    backends() const
    {
        return backends_;
    }

    /** Backend implementing @p method, or null. */
    const Backend *find(Method method) const;

    /** Whether some backend can execute @p request (Auto included). */
    bool supports(const KernelRequest &request) const;

    /**
     * The backends Auto dispatch would consider for @p request:
     * those that support it, restricted to exact-GEMM backends for
     * GEMM requests (the structurally pruning baselines change the
     * numerics, so "fastest" must not silently mean "lossier").
     */
    std::vector<const Backend *>
    candidates(const KernelRequest &request) const;

    /**
     * Plan @p request. Non-Auto methods route to their backend
     * (panics if the backend is missing or rejects the request);
     * Method::Auto plans every candidate and returns the plan with
     * the fastest estimate.
     */
    std::unique_ptr<ExecutionPlan>
    plan(const KernelRequest &request, const PlanContext &ctx) const;

  private:
    std::vector<std::unique_ptr<Backend>> backends_;
};

} // namespace dstc

#endif // DSTC_CORE_KERNEL_REGISTRY_H
