/**
 * @file
 * The uniform request/report protocol of the kernel registry.
 *
 * Every execution path of the library — the dual-side sparse Tensor
 * Core SpGEMM/SpCONV and the four baselines it is evaluated against —
 * answers the same shape of question: "run this GEMM or convolution
 * under this method at this operating point". A KernelRequest states
 * the question, a Backend turns it into an ExecutionPlan (encoding
 * the operands, possibly from the EncodingCache), and executing the
 * plan yields a KernelReport.
 *
 * Method::Auto asks the registry to pick the fastest backend from the
 * operands' sparsity profiles (see KernelRegistry::plan).
 */
#ifndef DSTC_CORE_KERNEL_REQUEST_H
#define DSTC_CORE_KERNEL_REQUEST_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/datatype.h"
#include "conv/spconv.h"
#include "gemm/spgemm_device.h"
#include "im2col/conv_shape.h"
#include "tensor/tensor4d.h"
#include "timing/stats.h"

namespace dstc {

/** Execution method at registry granularity. */
enum class Method
{
    Auto,         ///< dispatch to the profiled fastest backend
    DualSparse,   ///< the paper's dual-side sparse Tensor Core
    Dense,        ///< CUTLASS-like dense Tensor Core GEMM
    ZhuSparse,    ///< Sparse TC [72], vector-wise 75% weights
    AmpereSparse, ///< A100-style 2:4 structured weights
    CusparseLike, ///< CSR SpGEMM on the CUDA cores
    Hybrid,       ///< density-partitioned tile routing across backends
};

/** Stable CLI/parse token of a method ("auto", "dual", ...). */
const char *methodToken(Method method);

/** Human-readable method name. */
const char *methodName(Method method);

/** Parse a CLI token into a Method; false on unknown token. */
bool parseMethod(const std::string &token, Method *out);

/**
 * Knobs of Method::Hybrid (GEMM only): partition the A-side tile-row
 * groups of one request by exact per-group density and route each
 * class to its cost-model-fastest backend (dense-ish groups to the
 * dense/WMMA datapath, sparse groups to the dual-sparse outer
 * product, and — when B is exactly 2:4-conformant, so the prune is
 * the identity — the ampere backend). See src/core/hybrid.h.
 */
struct HybridOptions
{
    /**
     * Manual density cut for tests: groups with density >= threshold
     * form the high-density class, the rest the low-density class
     * (per-class backend choice stays with the cost model). Negative
     * (the default) lets the cost model pick the min-total split from
     * a ladder of observed group densities, no-split included.
     */
    double threshold = -1.0;
};

/**
 * Storage format of the sparse A operand of an SpMM request. Auto
 * lets the plan-stage cost model pick per request off the exact
 * density profile; the explicit values pin it (tests, probes).
 */
enum class SpmmFormat
{
    Auto,   ///< cost model picks narrow vs wide per request
    Narrow, ///< 8x1-vector narrow-tile encoding (ultra-sparse)
    Wide,   ///< 32-wide two-level encoding (DNN-style sparsity)
};

/** Stable CLI/parse token of an SpMM format ("auto", "narrow",
 *  "wide"). */
const char *spmmFormatToken(SpmmFormat format);

/** Parse a CLI token into an SpmmFormat; false on unknown token. */
bool parseSpmmFormat(const std::string &token, SpmmFormat *out);

/** Convolution lowering strategy (the Explicit/Implicit split of
 *  Fig. 22's legend). */
enum class Lowering
{
    Implicit, ///< fused im2col (bitmap-based for the sparse methods)
    Explicit, ///< materialize the lowered matrix in DRAM first
};

/**
 * Worker-thread budget of a request or session: the one consolidated
 * axis over the historical per-struct knobs. -1 inherits the next
 * level down, so the resolution order per request is
 *
 *   KernelRequest::resources
 *     -> the legacy per-request fields (SpGemmOptions::num_workers /
 *        ConvOptions::num_workers when set off their defaults)
 *     -> SessionOptions::resources
 *     -> the legacy SessionOptions::encode_workers
 *     -> defaults (compute 0 = shared pool, encode 1 = serial).
 *
 * The legacy fields keep working as deprecated aliases; every worker
 * partitioning in the library is bitwise deterministic, so any
 * setting changes wall-clock only, never results.
 */
struct ExecutionResources
{
    /** Workers of the kernel-internal tile loops (SpGEMM output
     *  tiles, conv lowered columns): 0 = shared pool, 1 = serial,
     *  N = cap, -1 = inherit. */
    int compute_workers = -1;

    /** Workers of the word-parallel operand encoders: same contract,
     *  -1 = inherit. */
    int encode_workers = -1;
};

/**
 * One unit of work for the registry: a GEMM or a convolution at a
 * sparsity operating point, under a chosen (or Auto) method.
 *
 * Operands come in three flavors, checked in this order by the
 * backends:
 *  - pre-encoded (`a_encoded`/`b_encoded`, dual-sparse GEMM only):
 *    the encode-once / multiply-many path;
 *  - concrete (`a`/`b` matrices, `input` tensor): functional
 *    execution with values, timed from the data's actual sparsity;
 *  - synthetic (none of the above): the timing-only path used by the
 *    sweeps; profiles are synthesized from the `*_sparsity`,
 *    `*_cluster` and `seed` fields (deterministic per seed).
 *
 * All operand pointers are non-owning and must outlive plan and
 * execution (batched runs included).
 */
struct KernelRequest
{
    enum class Kind
    {
        Gemm,
        Conv,
        /** Sparse A x dense B (the real-matrix workload): only A is
         *  encoded; B streams through dense. Geometry reuses the
         *  GEMM fields (m, n, k, a_sparsity/a_cluster). */
        Spmm,
    };

    Kind kind = Kind::Gemm;
    Method method = Method::Auto;

    /** Free-form label echoed into the report (e.g. a layer name). */
    std::string tag;

    /** Seed of the synthetic operand patterns. */
    uint64_t seed = 1;

    // -- GEMM geometry (kind == Gemm) ---------------------------------
    int64_t m = 0;
    int64_t n = 0;
    int64_t k = 0;

    /**
     * Operand sparsity operating point. For GEMM, `a` is the left
     * (activation) operand and `b` the right (weight) operand; for
     * convolution, `a_*` describes the activations and `b_*` the
     * weights.
     */
    double a_sparsity = 0.0;
    double b_sparsity = 0.0;
    double a_cluster = 1.0;
    double b_cluster = 1.0;

    /** Dense GEMM only: use the outer-product datapath. */
    bool outer_product = false;

    /**
     * Dual-sparse knobs (tiling, functional, merge model). tile_k
     * (the two-level K-chunk depth) is the tunable knob; the 32x32
     * warp tile (tile_m/tile_n) is fixed by the Tensor Core's
     * accumulation buffer (Sec. III-B) and the machine model
     * rejects other edges.
     */
    SpGemmOptions gemm_options;

    /** Method::Hybrid knobs (ignored by every other method). */
    HybridOptions hybrid_options;

    /** SpMM only: A-operand storage format (Auto = cost model). */
    SpmmFormat spmm_format = SpmmFormat::Auto;

    /** Per-request worker override (see ExecutionResources). */
    ExecutionResources resources;

    // -- convolution geometry (kind == Conv) --------------------------
    ConvShape shape;
    Lowering lowering = Lowering::Implicit;

    /** Functional-conv knobs (worker partitioning of the
     *  word-parallel pipeline); results are identical for every
     *  setting. */
    ConvOptions conv_options;

    // -- optional concrete operands (non-owning) ----------------------
    const Matrix<float> *a = nullptr; ///< GEMM left operand
    const Matrix<float> *b = nullptr; ///< GEMM right operand / weights
    const SparsityProfile *a_profile = nullptr;
    const SparsityProfile *b_profile = nullptr;
    const TwoLevelBitmapMatrix *a_encoded = nullptr;
    const TwoLevelBitmapMatrix *b_encoded = nullptr;
    const Tensor4d *input = nullptr;  ///< conv activations

    // -- factories ----------------------------------------------------

    /** Timing-only GEMM at a synthetic operating point. */
    static KernelRequest
    gemm(int64_t m, int64_t n, int64_t k, double a_sparsity = 0.0,
         double b_sparsity = 0.0)
    {
        KernelRequest r;
        r.kind = Kind::Gemm;
        r.m = m;
        r.n = n;
        r.k = k;
        r.a_sparsity = a_sparsity;
        r.b_sparsity = b_sparsity;
        return r;
    }

    /** Functional GEMM over concrete operands. */
    static KernelRequest
    gemm(const Matrix<float> &a, const Matrix<float> &b)
    {
        KernelRequest r;
        r.kind = Kind::Gemm;
        r.m = a.rows();
        r.n = b.cols();
        r.k = a.cols();
        r.a = &a;
        r.b = &b;
        return r;
    }

    /** Timing-only GEMM from pre-extracted popcount profiles. The
     *  profiles record their true extents, so m/n are the real GEMM
     *  shape, not the tile-padded ceil/32*32 — Auto's dense and
     *  cusparse estimates see the same geometry the caller has. */
    static KernelRequest
    gemm(const SparsityProfile &a, const SparsityProfile &b)
    {
        KernelRequest r;
        r.kind = Kind::Gemm;
        r.m = a.extent();
        r.n = b.extent();
        r.k = a.k();
        r.a_profile = &a;
        r.b_profile = &b;
        return r;
    }

    /** Functional SpMM: sparse A (concrete values) times dense B. */
    static KernelRequest
    spmm(const Matrix<float> &a, const Matrix<float> &b)
    {
        KernelRequest r;
        r.kind = Kind::Spmm;
        r.m = a.rows();
        r.n = b.cols();
        r.k = a.cols();
        r.a = &a;
        r.b = &b;
        return r;
    }

    /** Timing-only SpMM from a pre-extracted A-side popcount profile
     *  at narrow (8-row strip) granularity; B is dense with @p n
     *  columns. */
    static KernelRequest
    spmm(const SparsityProfile &a, int64_t n)
    {
        KernelRequest r;
        r.kind = Kind::Spmm;
        r.m = a.extent();
        r.n = n;
        r.k = a.k();
        r.a_profile = &a;
        return r;
    }

    /** Timing-only SpMM at a synthetic A-sparsity operating point. */
    static KernelRequest
    spmm(int64_t m, int64_t n, int64_t k, double a_sparsity)
    {
        KernelRequest r;
        r.kind = Kind::Spmm;
        r.m = m;
        r.n = n;
        r.k = k;
        r.a_sparsity = a_sparsity;
        return r;
    }

    /** Timing-only convolution at a synthetic operating point. */
    static KernelRequest
    conv(const ConvShape &shape, double weight_sparsity = 0.0,
         double act_sparsity = 0.0)
    {
        KernelRequest r;
        r.kind = Kind::Conv;
        r.shape = shape;
        r.b_sparsity = weight_sparsity;
        r.a_sparsity = act_sparsity;
        return r;
    }

    /** Functional convolution over concrete operands. */
    static KernelRequest
    conv(const Tensor4d &input, const Matrix<float> &weights,
         const ConvShape &shape)
    {
        KernelRequest r;
        r.kind = Kind::Conv;
        r.shape = shape;
        r.input = &input;
        r.b = &weights;
        return r;
    }

    /** True when the request carries concrete operand values. */
    bool
    functional() const
    {
        return (kind == Kind::Gemm &&
                ((a && b) || (a_encoded && b_encoded))) ||
               (kind == Kind::Spmm && a && b) ||
               (kind == Kind::Conv && input && b);
    }

    /**
     * The request's operand/output datatype (the DataType axis).
     * Stored on gemm_options so the device layer and the encoding
     * cache keys read one field; withDataType is the request-level
     * way to set it. Conv requests execute FP16 only.
     */
    DataType dataType() const { return gemm_options.dtype; }

    // -- named builders -----------------------------------------------
    //
    // Chainable setters over the factories above:
    //
    //   auto req = KernelRequest::gemm(a, b)
    //                  .withDataType(DataType::Int8)
    //                  .withMethod(Method::DualSparse)
    //                  .withTag("layer3");
    //
    // Each returns *this, so a chain stays a single expression.

    KernelRequest &
    withMethod(Method value)
    {
        method = value;
        return *this;
    }

    KernelRequest &
    withTag(std::string value)
    {
        tag = std::move(value);
        return *this;
    }

    KernelRequest &
    withSeed(uint64_t value)
    {
        seed = value;
        return *this;
    }

    KernelRequest &
    withDataType(DataType value)
    {
        gemm_options.dtype = value;
        return *this;
    }

    /** Synthetic operating point: (A, B) sparsities. */
    KernelRequest &
    withSparsities(double a_value, double b_value)
    {
        a_sparsity = a_value;
        b_sparsity = b_value;
        return *this;
    }

    /** Synthetic operating point: (A, B) cluster factors. */
    KernelRequest &
    withClusters(double a_value, double b_value)
    {
        a_cluster = a_value;
        b_cluster = b_value;
        return *this;
    }

    /** Two-level K-chunk depth (the tunable dual-sparse tiling). */
    KernelRequest &
    withTileK(int value)
    {
        gemm_options.tile_k = value;
        return *this;
    }

    /** Compute values (true) or only time (false). */
    KernelRequest &
    withFunctional(bool value)
    {
        gemm_options.functional = value;
        return *this;
    }

    KernelRequest &
    withOuterProduct(bool value)
    {
        outer_product = value;
        return *this;
    }

    KernelRequest &
    withLowering(Lowering value)
    {
        lowering = value;
        return *this;
    }

    /** Pin the Method::Hybrid density cut. */
    KernelRequest &
    withHybridThreshold(double value)
    {
        hybrid_options.threshold = value;
        return *this;
    }

    /** Pin the SpMM A-operand format (default Auto = cost model). */
    KernelRequest &
    withSpmmFormat(SpmmFormat value)
    {
        spmm_format = value;
        return *this;
    }

    KernelRequest &
    withResources(ExecutionResources value)
    {
        resources = value;
        return *this;
    }
};

/** Outcome of executing one KernelRequest. */
struct KernelReport
{
    KernelStats stats;

    /** The concrete method that ran (never Auto). */
    Method method = Method::Auto;

    /** Name of the backend that executed the plan. */
    std::string backend;

    /** The request's tag, echoed back. */
    std::string tag;

    /** At least one encoded operand was served from the cache. */
    bool encode_cache_hit = false;

    /**
     * Index of the Cluster device that executed the request (-1 when
     * the request ran on a plain single-device Session). The stats
     * are a pure function of the request plus that device's
     * GpuConfig, so a report is reproducible by re-running the
     * request on a fresh Session with the same config.
     */
    int device = -1;

    /**
     * The plan-stage time estimate that drove Method::Auto dispatch
     * (0 when the estimate was never computed).
     */
    double planned_us = 0.0;

    /** Functional GEMM output (null on timing-only runs). */
    std::shared_ptr<const Matrix<float>> d;

    /** Functional convolution output (null on timing-only runs). */
    std::shared_ptr<const Tensor4d> output;

    double timeUs() const { return stats.timeUs(); }
};

} // namespace dstc

#endif // DSTC_CORE_KERNEL_REQUEST_H
