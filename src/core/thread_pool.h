/**
 * @file
 * Fixed-size worker pool behind Session::submitBatch. Deliberately
 * minimal: a locked queue of type-erased jobs. Determinism of the
 * simulation results does not depend on scheduling — every request
 * is a pure function of its own inputs — so no ordering guarantees
 * are needed beyond future completion.
 */
#ifndef DSTC_CORE_THREAD_POOL_H
#define DSTC_CORE_THREAD_POOL_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dstc {

/** Fixed-size thread pool executing enqueued jobs FIFO. */
class ThreadPool
{
  public:
    explicit ThreadPool(int num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job; it runs on some worker thread. */
    void enqueue(std::function<void()> job);

    int numThreads() const { return static_cast<int>(workers_.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> jobs_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace dstc

#endif // DSTC_CORE_THREAD_POOL_H
