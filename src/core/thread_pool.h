/**
 * @file
 * Fixed-size worker pool behind Session::submitBatch and the
 * device-level SpGEMM tile loop. Deliberately minimal: a locked
 * queue of type-erased jobs. Determinism of the simulation results
 * does not depend on scheduling — every request is a pure function
 * of its own inputs — so no ordering guarantees are needed beyond
 * future completion.
 *
 * parallelFor layers a work-stealing index loop on top: the calling
 * thread always participates, so a parallelFor issued from inside a
 * pool job (e.g. a batched Session request whose kernel parallelizes
 * its own tile loop) makes progress even when every worker is busy.
 */
#ifndef DSTC_CORE_THREAD_POOL_H
#define DSTC_CORE_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dstc {

/** Fixed-size thread pool executing enqueued jobs FIFO. */
class ThreadPool
{
  public:
    explicit ThreadPool(int num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job; it runs on some worker thread. */
    void enqueue(std::function<void()> job);

    int numThreads() const { return static_cast<int>(workers_.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> jobs_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/**
 * The lazily-created process-wide pool (hardware_concurrency
 * workers) shared by the compute kernels. Kernel-internal
 * parallelism routes here rather than spawning per-kernel pools, so
 * a batch of concurrent requests cannot oversubscribe the machine.
 */
ThreadPool &sharedThreadPool();

/**
 * Run @p fn(i) for every i in [0, n), distributing indices over up
 * to @p max_workers threads (the caller plus helpers drawn from
 * @p pool). The caller participates and the call returns only after
 * every index completed. Safe to invoke concurrently from multiple
 * threads, and from inside a job of the same pool.
 *
 * @p pool may be null and @p max_workers <= 1 forces a plain serial
 * loop. Note the iteration order is arbitrary under parallelism:
 * callers needing deterministic aggregation should write per-index
 * results and reduce in index order afterwards.
 */
void parallelFor(ThreadPool *pool, int64_t n, int max_workers,
                 const std::function<void(int64_t)> &fn);

/**
 * Resolve the shared num_workers knob of the kernel-internal loops
 * (SpGemmOptions::num_workers, ConvOptions::num_workers, ...): 1
 * runs serially in the caller (null pool), 0 uses every thread of
 * the process-shared pool, N caps the parallelism at N. Returns the
 * pool to pass to parallelFor and writes the worker cap.
 */
ThreadPool *resolveTilePool(int num_workers, int *max_workers);

} // namespace dstc

#endif // DSTC_CORE_THREAD_POOL_H
