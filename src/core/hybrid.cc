/**
 * @file
 * The Method::Hybrid composer backend (see hybrid.h for the design).
 *
 * Split planning and class execution both route through the ordinary
 * primitive backends — the composer never re-implements a kernel, it
 * only slices operand views (SparsityProfile::selectGroups,
 * TwoLevelBitmapMatrix::selectTileRows, a row gather for the dense
 * matrix classes) and merges the per-class reports. Because every
 * backend computes an output row stripe from that stripe's A rows
 * plus the full B operand, a class's rows are bitwise identical to
 * the same backend's full-request rows — slicing never changes
 * values, only which backend touches which stripe.
 */
#include "core/hybrid.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/gemm_operands.h"
#include "core/kernel_registry.h"
#include "sparse/narrow_tile.h"

namespace dstc {

namespace {

/** Max cost-model thresholds tried per request (beyond no-split).
 *  Ladders longer than this are subsampled deterministically. */
constexpr int kMaxThresholds = 8;

/**
 * Preference margin for not splitting: a split must beat the best
 * single backend's estimate by at least this factor. Splitting costs
 * an extra kernel launch per class, and the margin also absorbs the
 * small expected-vs-actual gap of the cusparse estimate, so the
 * composer never splits on cost-model noise.
 */
constexpr double kSplitMargin = 0.98;

/** Fallback backend instances for plans issued without a registry
 *  (PlanContext::registry is null when a backend is planned
 *  directly). Stateless and shared. */
const Backend *
fallbackBackend(Method method)
{
    static const std::unique_ptr<Backend> dual =
        makeDualSparseBackend();
    static const std::unique_ptr<Backend> dense = makeDenseBackend();
    static const std::unique_ptr<Backend> ampere =
        makeAmpereSparseBackend();
    static const std::unique_ptr<Backend> cusparse =
        makeCusparseLikeBackend();
    switch (method) {
    case Method::DualSparse:
        return dual.get();
    case Method::Dense:
        return dense.get();
    case Method::AmpereSparse:
        return ampere.get();
    case Method::CusparseLike:
        return cusparse.get();
    default:
        panic("hybrid routes no class to ", methodName(method));
    }
}

const Backend *
resolveBackend(const PlanContext &ctx, Method method)
{
    if (ctx.registry)
        if (const Backend *b = ctx.registry->find(method))
            return b;
    return fallbackBackend(method);
}

/**
 * The density view the partition runs on: an A-side profile (group
 * granularity = the partition granularity) and the full B profile
 * for the class estimates. `usable` is false only for pre-encoded
 * operands whose tiling disagrees with the request's gemm_options —
 * there is no profile view the timing model accepts, so the request
 * is delegated wholesale to the dual-sparse backend.
 */
struct OperandView
{
    std::shared_ptr<const SparsityProfile> a;
    std::shared_ptr<const SparsityProfile> b; ///< null for SpMM
    bool usable = false;
    bool cache_hit = false;

    /** Borrowed/owned view of a concrete/synthetic/profile request
     *  (kept so the profile-flavor class slices stay alive). */
    GemmProfilesView profiles;

    /** SpMM flavor: the strip-granular A profile pair (the partition
     *  runs on a8; each class's dual plan re-aggregates its slice
     *  for the wide-format estimate). */
    SpmmProfilesView spmm_profiles;
};

OperandView
resolveOperandView(const KernelRequest &req, const PlanContext &ctx,
                   OperandDigests &digests)
{
    OperandView view;
    if (req.kind == KernelRequest::Kind::Spmm) {
        bool hit = false;
        view.spmm_profiles =
            resolveSpmmProfiles(req, ctx, digests, &hit);
        view.cache_hit = hit;
        view.a = view.spmm_profiles.a8;
        view.usable = true;
        return view;
    }
    if (req.a_encoded && req.b_encoded) {
        const SpGemmOptions &o = req.gemm_options;
        const TwoLevelBitmapMatrix &a = *req.a_encoded;
        const TwoLevelBitmapMatrix &b = *req.b_encoded;
        if (a.tileRows() != o.tile_m || a.tileCols() != o.tile_k ||
            b.tileRows() != o.tile_k || b.tileCols() != o.tile_n)
            return view;
        // Profiles read off the encodings' packing offsets: exact
        // per-group counts, no decode, no value pass.
        view.a = std::make_shared<SparsityProfile>(
            SparsityProfile::fromEncodedA(a));
        view.b = std::make_shared<SparsityProfile>(
            SparsityProfile::fromEncodedB(b));
        view.usable = true;
        return view;
    }
    bool hit = false;
    view.profiles = resolveGemmProfiles(req, ctx, digests, &hit);
    view.cache_hit = hit;
    DSTC_ASSERT(static_cast<bool>(view.profiles),
                "hybrid: no profile view for the request");
    view.a = view.profiles.a;
    view.b = view.profiles.b;
    view.usable = true;
    return view;
}

/**
 * The primitive methods a class of @p req may route to. Zhu is never
 * a candidate (its vector-wise 75% prune is lossy for every GEMM);
 * ampere joins only when the concrete B operand already satisfies
 * the 2:4 pattern, making its forced prune the identity. Pre-encoded
 * operands are consumable by the dual-sparse kernel alone.
 */
std::vector<Method>
candidateMethods(const KernelRequest &req)
{
    if (req.kind == KernelRequest::Kind::Spmm)
        // Zhu and ampere prune B; SpMM's B side is dense by
        // definition, so neither has anything to exploit.
        return {Method::DualSparse, Method::Dense,
                Method::CusparseLike};
    if (req.a_encoded && req.b_encoded)
        return {Method::DualSparse};
    std::vector<Method> methods = {Method::DualSparse, Method::Dense,
                                   Method::CusparseLike};
    if (req.a && req.b && conformant2of4(*req.b))
        methods.push_back(Method::AmpereSparse);
    return methods;
}

/** Plan-stage stats of one class under one method, through the
 *  backend's own cost model on a profile-flavor sub-request (exact
 *  densities, no values computed). Full stats, not a scalar: the
 *  split objective must merge class components the same way
 *  execution does. */
KernelStats
classEstimate(const KernelRequest &req, const PlanContext &ctx,
              const SparsityProfile &a_slice,
              const SparsityProfile *b_full, Method method)
{
    KernelRequest sub =
        req.kind == KernelRequest::Kind::Spmm
            ? KernelRequest::spmm(a_slice, req.n)
            : KernelRequest::gemm(a_slice, *b_full);
    sub.method = method;
    sub.seed = req.seed;
    sub.tag = req.tag;
    sub.outer_product = req.outer_product;
    sub.gemm_options = req.gemm_options;
    sub.gemm_options.functional = false;
    sub.spmm_format = req.spmm_format;
    return resolveBackend(ctx, method)->plan(sub, ctx)->execute().stats;
}

/** The executed hybrid's merged cost of a set of classes: component
 *  sums under the KernelStats rule (max of summed compute and memory
 *  plus every class's launch), NOT the sum of per-class times — a
 *  compute-bound class overlaps a memory-bound one, and the planner
 *  must price splits exactly as run() will report them. */
double
mergedTimeUs(const std::vector<const KernelStats *> &classes)
{
    KernelStats acc = *classes.front();
    for (size_t i = 1; i < classes.size(); ++i)
        acc += *classes[i];
    return acc.timeUs();
}

/** The wholesale-dual split of a request whose pre-encoded tiling
 *  has no profile view (estimate left 0: computing it would run the
 *  kernel once more than execution needs). */
HybridSplit
wholesaleDualSplit(int groups)
{
    HybridSplit split;
    HybridClass cls;
    cls.method = Method::DualSparse;
    cls.groups.resize(groups);
    std::iota(cls.groups.begin(), cls.groups.end(), 0);
    split.classes.push_back(std::move(cls));
    return split;
}

HybridSplit
planSplit(const KernelRequest &req, const PlanContext &ctx,
          const OperandView &view)
{
    if (!view.usable)
        return wholesaleDualSplit(req.a_encoded->numTileRows());

    const SparsityProfile &pa = *view.a;
    const SparsityProfile *pb = view.b.get(); // null for SpMM
    const int groups = pa.groups();
    std::vector<double> density(groups);
    for (int g = 0; g < groups; ++g)
        density[g] = pa.groupDensity(g);

    const std::vector<Method> methods = candidateMethods(req);

    // Per-class routing, memoized across thresholds (the low classes
    // of an ascending ladder nest, so many thresholds share classes).
    // The method choice is greedy per class (min standalone time);
    // the split-level objective below then prices the chosen pair
    // under the exact execution merge rule.
    std::map<std::vector<int>, std::pair<Method, KernelStats>> memo;
    auto routeClass =
        [&](const std::vector<int> &cls_groups)
        -> const std::pair<Method, KernelStats> & {
        auto it = memo.find(cls_groups);
        if (it != memo.end())
            return it->second;
        const SparsityProfile slice = pa.selectGroups(cls_groups);
        Method best_m = methods.front();
        KernelStats best_s;
        double best_e = std::numeric_limits<double>::infinity();
        for (Method m : methods) {
            KernelStats s = classEstimate(req, ctx, slice, pb, m);
            if (s.timeUs() < best_e) {
                best_e = s.timeUs();
                best_m = m;
                best_s = std::move(s);
            }
        }
        return memo
            .emplace(cls_groups,
                     std::make_pair(best_m, std::move(best_s)))
            .first->second;
    };

    std::vector<int> all(groups);
    std::iota(all.begin(), all.end(), 0);
    const auto no_split = routeClass(all);

    // Threshold ladder: every distinct observed density above the
    // minimum yields a distinct (low, high) partition; ladders longer
    // than kMaxThresholds are subsampled at evenly spaced ranks. A
    // pinned HybridOptions::threshold replaces the ladder (and wins
    // over no-split whenever both its classes are non-empty — that is
    // what pinning is for).
    const bool pinned = req.hybrid_options.threshold >= 0.0;
    std::vector<double> ladder;
    if (pinned) {
        ladder.push_back(req.hybrid_options.threshold);
    } else {
        std::vector<double> uniq = density;
        std::sort(uniq.begin(), uniq.end());
        uniq.erase(std::unique(uniq.begin(), uniq.end()),
                   uniq.end());
        for (size_t i = 1; i < uniq.size(); ++i)
            ladder.push_back(uniq[i]);
        if (static_cast<int>(ladder.size()) > kMaxThresholds) {
            std::vector<double> picked;
            for (int i = 0; i < kMaxThresholds; ++i)
                picked.push_back(
                    ladder[i * (ladder.size() - 1) /
                           (kMaxThresholds - 1)]);
            ladder = std::move(picked);
        }
    }

    double best_total = std::numeric_limits<double>::infinity();
    double best_t = -1.0;
    std::vector<int> best_low, best_high;
    std::pair<Method, KernelStats> best_low_r, best_high_r;
    for (double t : ladder) {
        std::vector<int> low, high;
        for (int g = 0; g < groups; ++g)
            (density[g] < t ? low : high).push_back(g);
        if (low.empty() || high.empty())
            continue; // same partition as no-split
        const auto &rl = routeClass(low);
        const auto &rh = routeClass(high);
        const double total = mergedTimeUs({&rl.second, &rh.second});
        if (total < best_total) {
            best_total = total;
            best_t = t;
            best_low = std::move(low);
            best_high = std::move(high);
            best_low_r = rl;
            best_high_r = rh;
        }
    }

    const bool use_split =
        !best_low.empty() &&
        (pinned ||
         best_total < no_split.second.timeUs() * kSplitMargin);

    HybridSplit split;
    if (!use_split) {
        HybridClass cls;
        cls.method = no_split.first;
        cls.groups = std::move(all);
        cls.estimated_us = no_split.second.timeUs();
        split.total_estimated_us = cls.estimated_us;
        split.classes.push_back(std::move(cls));
        return split;
    }
    split.threshold = best_t;
    split.total_estimated_us = best_total;
    HybridClass low;
    low.method = best_low_r.first;
    low.groups = std::move(best_low);
    low.estimated_us = best_low_r.second.timeUs();
    HybridClass high;
    high.method = best_high_r.first;
    high.groups = std::move(best_high);
    high.estimated_us = best_high_r.second.timeUs();
    split.classes.push_back(std::move(low));
    split.classes.push_back(std::move(high));
    return split;
}

/** "hybrid[dense:3+dual:13]"-style merged stats name. */
std::string
hybridName(const HybridSplit &split)
{
    std::string name = "hybrid[";
    for (size_t i = 0; i < split.classes.size(); ++i) {
        if (i)
            name += '+';
        name += methodToken(split.classes[i].method);
        name += ':';
        name += std::to_string(split.classes[i].groups.size());
    }
    name += ']';
    return name;
}

/** Row gather of the A-side groups of one class (dense/ampere/
 *  cusparse classes consume a concrete A slice). */
Matrix<float>
gatherGroupRows(const Matrix<float> &a,
                const std::vector<int> &groups, int tile)
{
    int rows = 0;
    for (int g : groups)
        rows += std::min(tile, a.rows() - g * tile);
    Matrix<float> out(rows, a.cols());
    int dst = 0;
    for (int g : groups) {
        const int r0 = g * tile;
        const int r1 = std::min(a.rows(), r0 + tile);
        for (int r = r0; r < r1; ++r, ++dst)
            for (int c = 0; c < a.cols(); ++c)
                out.at(dst, c) = a.at(r, c);
    }
    return out;
}

class HybridPlan : public ExecutionPlan
{
  public:
    HybridPlan(const char *name, const KernelRequest &req,
               const PlanContext &ctx)
        : ExecutionPlan(name, Method::Hybrid, req.tag), req_(req),
          cfg_(*ctx.cfg), cache_(ctx.cache),
          encode_workers_(ctx.encode_workers),
          registry_(ctx.registry)
    {
    }

  protected:
    double
    estimate() override
    {
        return split().total_estimated_us;
    }

    KernelReport
    run() override
    {
        const HybridSplit &s = split();
        const int tile = partitionTile();
        const bool want_d =
            req_.functional() && req_.gemm_options.functional;
        const PlanContext ctx = planCtx();

        KernelReport merged;
        Matrix<float> d;
        if (want_d && s.split())
            d = Matrix<float>(static_cast<int>(req_.m),
                              static_cast<int>(req_.n));

        // Classes execute sequentially in deterministic (low, high)
        // order; each class's kernel partitions its own tile loop
        // over the shared pool per SpGemmOptions::num_workers, so
        // the merged report is bitwise identical for every worker
        // count and submission path.
        matrix_slices_.reserve(s.classes.size());
        encoded_slices_.reserve(s.classes.size());
        profile_slices_.reserve(s.classes.size());
        bool first = true;
        for (const HybridClass &cls : s.classes) {
            const KernelRequest sub = classRequest(cls);
            KernelReport r = resolveBackend(ctx, cls.method)
                                 ->plan(sub, ctx)
                                 ->execute();
            merged.encode_cache_hit |= r.encode_cache_hit;
            if (first) {
                merged.stats = r.stats;
                first = false;
            } else {
                merged.stats += r.stats;
            }
            if (want_d) {
                if (!s.split()) {
                    merged.d = r.d; // wholesale: share, don't copy
                } else if (r.d) {
                    // Scatter the class rows back to their global
                    // stripes (group g's rows live at g * tile).
                    int src = 0;
                    for (int g : cls.groups) {
                        const int r0 = g * tile;
                        const int r1 =
                            std::min(static_cast<int>(req_.m),
                                     r0 + tile);
                        for (int row = r0; row < r1; ++row, ++src)
                            for (int c = 0; c < r.d->cols(); ++c)
                                d.at(row, c) = r.d->at(src, c);
                    }
                }
            }
        }
        merged.stats.name = hybridName(s);
        merged.stats.bound =
            merged.stats.compute_us > merged.stats.memory_us
                ? Bound::Compute
                : Bound::Memory;
        if (want_d && s.split())
            merged.d = std::make_shared<const Matrix<float>>(
                std::move(d));
        return merged;
    }

  private:
    const HybridSplit &
    split()
    {
        if (!split_resolved_) {
            split_resolved_ = true;
            const PlanContext ctx = planCtx();
            view_ = resolveOperandView(req_, ctx, digests_);
            cache_hit_ = cache_hit_ || view_.cache_hit;
            split_ = planSplit(req_, ctx, view_);
        }
        return split_;
    }

    PlanContext
    planCtx() const
    {
        PlanContext ctx;
        ctx.cfg = &cfg_;
        ctx.cache = cache_;
        ctx.encode_workers = encode_workers_;
        ctx.registry = registry_;
        return ctx;
    }

    /** Tile-row group edge of the partition (the A-side warp-tile
     *  rows: gemm_options.tile_m, or the pre-encoded operand's own
     *  tiling when that is the request flavor; SpMM partitions at
     *  strip granularity so a class boundary never splits a narrow
     *  vector). */
    int
    partitionTile() const
    {
        if (req_.kind == KernelRequest::Kind::Spmm)
            return NarrowTileMatrix::kStripRows;
        return req_.a_encoded ? req_.a_encoded->tileRows()
                              : req_.gemm_options.tile_m;
    }

    /** The sub-request one class executes. Slices are stored on the
     *  plan so the non-owning request pointers stay valid through
     *  the sub-plan's execution. */
    KernelRequest
    classRequest(const HybridClass &cls)
    {
        if (static_cast<int>(cls.groups.size()) ==
            (view_.usable ? view_.a->groups() : partitionGroups())) {
            // Single class covering every group: hand the original
            // request to the routed backend unchanged, so the
            // degenerate (uniform-density) case is bitwise the pure
            // single-backend run — stats, output and cache behavior.
            KernelRequest sub = req_;
            sub.method = cls.method;
            sub.hybrid_options = HybridOptions();
            return sub;
        }
        KernelRequest sub;
        if (req_.kind == KernelRequest::Kind::Spmm) {
            // SpMM classes carry matrix or strip-profile slices; the
            // dual-sparse backend re-chooses its A format per class,
            // so a split can run its dense stripes wide and its
            // ultra-sparse stripes narrow.
            if (req_.a && req_.b) {
                matrix_slices_.push_back(gatherGroupRows(
                    *req_.a, cls.groups, partitionTile()));
                sub = KernelRequest::spmm(matrix_slices_.back(),
                                          *req_.b);
            } else {
                profile_slices_.push_back(
                    view_.a->selectGroups(cls.groups));
                sub = KernelRequest::spmm(profile_slices_.back(),
                                          req_.n);
            }
        } else if (cls.method == Method::DualSparse &&
                   (req_.a_encoded || (req_.a && req_.b))) {
            const TwoLevelBitmapMatrix *full_a = req_.a_encoded;
            const TwoLevelBitmapMatrix *full_b = req_.b_encoded;
            if (!full_a) {
                resolveConcreteTwoLevel();
                full_a = a_enc_.get();
                full_b = b_enc_.get();
            }
            encoded_slices_.push_back(
                full_a->selectTileRows(cls.groups));
            const TwoLevelBitmapMatrix &slice =
                encoded_slices_.back();
            sub.kind = KernelRequest::Kind::Gemm;
            sub.m = slice.rows();
            sub.n = req_.n;
            sub.k = req_.k;
            sub.a_encoded = &slice;
            sub.b_encoded = full_b;
        } else if (req_.a && req_.b) {
            matrix_slices_.push_back(gatherGroupRows(
                *req_.a, cls.groups, partitionTile()));
            sub = KernelRequest::gemm(matrix_slices_.back(),
                                      *req_.b);
        } else {
            profile_slices_.push_back(
                view_.a->selectGroups(cls.groups));
            sub = KernelRequest::gemm(profile_slices_.back(),
                                      *view_.b);
        }
        sub.method = cls.method;
        sub.tag = req_.tag;
        sub.seed = req_.seed;
        sub.outer_product = req_.outer_product;
        sub.gemm_options = req_.gemm_options;
        sub.spmm_format = req_.spmm_format;
        return sub;
    }

    /** Group count when there is no profile view (pre-encoded tiling
     *  mismatch: the encoding's own tile rows). */
    int
    partitionGroups() const
    {
        return req_.a_encoded->numTileRows();
    }

    /** Full two-level encodings of concrete operands, via the shared
     *  resolvers — the same cache entries a plain dual-sparse plan
     *  of this request builds or reuses. */
    void
    resolveConcreteTwoLevel()
    {
        if (a_enc_)
            return;
        bool hit_a = false, hit_b = false;
        const PlanContext ctx = planCtx();
        a_enc_ = resolveTwoLevelA(req_, ctx, digests_, &hit_a);
        b_enc_ = resolveTwoLevelB(req_, ctx, digests_, &hit_b);
        cache_hit_ = cache_hit_ || hit_a || hit_b;
    }

    KernelRequest req_;
    GpuConfig cfg_;
    EncodingCache *cache_;
    int encode_workers_ = 1;
    const KernelRegistry *registry_ = nullptr;
    OperandDigests digests_;
    bool split_resolved_ = false;
    HybridSplit split_;
    OperandView view_;
    std::vector<Matrix<float>> matrix_slices_;
    std::vector<TwoLevelBitmapMatrix> encoded_slices_;
    std::vector<SparsityProfile> profile_slices_;
    std::shared_ptr<const TwoLevelBitmapMatrix> a_enc_;
    std::shared_ptr<const TwoLevelBitmapMatrix> b_enc_;
};

class HybridBackend : public Backend
{
  public:
    Method method() const override { return Method::Hybrid; }
    const char *name() const override { return "hybrid-partition"; }

    bool
    supports(const KernelRequest &req) const override
    {
        // GEMM and SpMM (the conv paths pick their lowering, not a
        // per-tile backend); pre-encoded operands must come as a
        // pair, like the dual-sparse backend they route to.
        // Integer datatypes are excluded: each density class would
        // quantize its operand slice with a per-class scale, so the
        // stitched output would not match any single-backend result.
        if (dataTypeIsInteger(req.gemm_options.dtype))
            return false;
        if (req.kind == KernelRequest::Kind::Spmm)
            return !req.a_encoded && !req.b_encoded;
        return req.kind == KernelRequest::Kind::Gemm &&
               !req.a_encoded == !req.b_encoded;
    }

    // exact() stays true: every class routes to a backend that is
    // exact for that class (ampere is admitted only when its 2:4
    // prune is the identity on the request's B operand).

    std::unique_ptr<ExecutionPlan>
    plan(const KernelRequest &req,
         const PlanContext &ctx) const override
    {
        return std::make_unique<HybridPlan>(name(), req, ctx);
    }
};

} // namespace

bool
conformant2of4(const Matrix<float> &b)
{
    // Conformant iff every complete four-column quad of every row
    // holds at most two non-zeros: prune2of4 zeroes the two
    // smallest-magnitude elements of each complete quad, which is
    // the identity exactly then (the trailing partial quad is never
    // pruned).
    for (int r = 0; r < b.rows(); ++r) {
        for (int v0 = 0; v0 + 4 <= b.cols(); v0 += 4) {
            int nnz = 0;
            for (int i = 0; i < 4; ++i)
                nnz += b.at(r, v0 + i) != 0.0f;
            if (nnz > 2)
                return false;
        }
    }
    return true;
}

HybridSplit
planHybridSplit(const KernelRequest &req, const PlanContext &ctx,
                bool *cache_hit)
{
    DSTC_ASSERT(req.kind == KernelRequest::Kind::Gemm ||
                    req.kind == KernelRequest::Kind::Spmm,
                "hybrid partitions GEMM and SpMM requests only");
    OperandDigests digests;
    const OperandView view = resolveOperandView(req, ctx, digests);
    if (cache_hit)
        *cache_hit = view.cache_hit;
    return planSplit(req, ctx, view);
}

std::unique_ptr<Backend>
makeHybridBackend()
{
    return std::make_unique<HybridBackend>();
}

} // namespace dstc
