#include "core/kernel_registry.h"

#include <algorithm>

#include "common/logging.h"
#include "gemm/sparsity_profile.h"

namespace dstc {

KernelRegistry
KernelRegistry::withDefaultBackends()
{
    KernelRegistry registry;
    registry.registerBackend(makeDualSparseBackend());
    registry.registerBackend(makeDenseBackend());
    registry.registerBackend(makeZhuSparseBackend());
    registry.registerBackend(makeAmpereSparseBackend());
    registry.registerBackend(makeCusparseLikeBackend());
    registry.registerBackend(makeHybridBackend());
    return registry;
}

void
KernelRegistry::registerBackend(std::unique_ptr<Backend> backend)
{
    DSTC_ASSERT(backend);
    DSTC_ASSERT(backend->method() != Method::Auto,
                "Auto is a dispatch mode, not a backend");
    auto it = std::find_if(backends_.begin(), backends_.end(),
                           [&](const auto &b) {
                               return b->method() == backend->method();
                           });
    if (it != backends_.end())
        *it = std::move(backend);
    else
        backends_.push_back(std::move(backend));
}

const Backend *
KernelRegistry::find(Method method) const
{
    for (const auto &backend : backends_)
        if (backend->method() == method)
            return backend.get();
    return nullptr;
}

bool
KernelRegistry::supports(const KernelRequest &request) const
{
    if (request.method == Method::Auto)
        return !candidates(request).empty();
    const Backend *backend = find(request.method);
    return backend && backend->supports(request);
}

std::vector<const Backend *>
KernelRegistry::candidates(const KernelRequest &request) const
{
    std::vector<const Backend *> result;
    for (const auto &backend : backends_) {
        // The hybrid composer is a routing layer over the primitive
        // backends, not an alternative kernel: letting Auto rank it
        // would make Auto's choice recursive (hybrid's no-split
        // candidate is Auto's own answer). Callers opt into hybrid
        // explicitly via Method::Hybrid.
        if (backend->method() == Method::Hybrid)
            continue;
        if (!backend->supports(request) || !backend->exact(request))
            continue;
        result.push_back(backend.get());
    }
    return result;
}

std::unique_ptr<ExecutionPlan>
KernelRegistry::plan(const KernelRequest &request,
                     const PlanContext &ctx) const
{
    DSTC_ASSERT(ctx.cfg && ctx.cache);
    // Composer backends route per-class sub-requests back through
    // the registry that planned them.
    PlanContext routed = ctx;
    routed.registry = this;
    // Operands come in pairs; a half-specified pair would silently
    // fall through to the synthetic-profile path (or null-deref).
    if (request.kind == KernelRequest::Kind::Gemm) {
        DSTC_ASSERT(!request.a == !request.b,
                    "give both GEMM operands or neither");
        DSTC_ASSERT(!request.a_profile == !request.b_profile,
                    "give both operand profiles or neither");
        DSTC_ASSERT(!request.a_encoded == !request.b_encoded,
                    "give both pre-encoded operands or neither");
    } else if (request.kind == KernelRequest::Kind::Spmm) {
        DSTC_ASSERT(!request.a == !request.b,
                    "give both SpMM operands or neither");
        DSTC_ASSERT(!request.b_profile,
                    "SpMM's B side is dense — it has no B profile");
        DSTC_ASSERT(!request.a_profile ||
                        request.a_profile->tile() == 8,
                    "SpMM profile requests carry strip (tile = 8) "
                    "profiles");
        DSTC_ASSERT(!request.a_encoded && !request.b_encoded,
                    "SpMM resolves its own A-side encodings");
    } else {
        DSTC_ASSERT(!request.input == !request.b,
                    "functional conv needs input and weights "
                    "together");
    }
    if (request.method != Method::Auto) {
        const Backend *backend = find(request.method);
        DSTC_ASSERT(backend, "no backend registered for method ",
                    methodName(request.method));
        DSTC_ASSERT(backend->supports(request), "backend ",
                    backend->name(), " cannot execute this request");
        return backend->plan(request, routed);
    }

    std::unique_ptr<ExecutionPlan> best;
    for (const Backend *backend : candidates(request)) {
        auto candidate = backend->plan(request, routed);
        if (!best || candidate->estimatedTimeUs() <
                         best->estimatedTimeUs())
            best = std::move(candidate);
    }
    DSTC_ASSERT(best, "no backend supports this request");
    return best;
}

} // namespace dstc
