#include "core/kernel_request.h"

#include "common/logging.h"

namespace dstc {

const char *
methodToken(Method method)
{
    switch (method) {
      case Method::Auto:
        return "auto";
      case Method::DualSparse:
        return "dual";
      case Method::Dense:
        return "dense";
      case Method::ZhuSparse:
        return "zhu";
      case Method::AmpereSparse:
        return "ampere";
      case Method::CusparseLike:
        return "cusparse";
      case Method::Hybrid:
        return "hybrid";
    }
    panic("unknown method");
}

const char *
methodName(Method method)
{
    switch (method) {
      case Method::Auto:
        return "Auto";
      case Method::DualSparse:
        return "Dual-Side Sparse TC";
      case Method::Dense:
        return "Dense TC (CUTLASS-like)";
      case Method::ZhuSparse:
        return "Sparse TC (vector-wise 75%)";
      case Method::AmpereSparse:
        return "Ampere 2:4 Sparse TC";
      case Method::CusparseLike:
        return "cuSPARSE-like CSR SpGEMM";
      case Method::Hybrid:
        return "Hybrid (density-partitioned)";
    }
    panic("unknown method");
}

const char *
spmmFormatToken(SpmmFormat format)
{
    switch (format) {
      case SpmmFormat::Auto:
        return "auto";
      case SpmmFormat::Narrow:
        return "narrow";
      case SpmmFormat::Wide:
        return "wide";
    }
    panic("unknown spmm format");
}

bool
parseSpmmFormat(const std::string &token, SpmmFormat *out)
{
    for (SpmmFormat f :
         {SpmmFormat::Auto, SpmmFormat::Narrow, SpmmFormat::Wide}) {
        if (token == spmmFormatToken(f)) {
            *out = f;
            return true;
        }
    }
    return false;
}

bool
parseMethod(const std::string &token, Method *out)
{
    for (Method m : {Method::Auto, Method::DualSparse, Method::Dense,
                     Method::ZhuSparse, Method::AmpereSparse,
                     Method::CusparseLike, Method::Hybrid}) {
        if (token == methodToken(m)) {
            *out = m;
            return true;
        }
    }
    return false;
}

} // namespace dstc
