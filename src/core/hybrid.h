/**
 * @file
 * Method::Hybrid: intra-request density-partitioned tile routing.
 *
 * One GEMM request rarely has one density: pruned checkpoints mix
 * near-dense tile rows (attention heads that survived pruning) with
 * near-empty ones. A single backend leaves time on the table at one
 * end or the other — the dense Tensor Core pays full rate for empty
 * tiles, the dual-sparse outer product pays bitmap overhead on dense
 * ones. The hybrid composer splits the A-side tile-row groups of a
 * request into a low/high density class pair by *exact* per-group
 * density — read straight off the operands' popcount profiles
 * (SparsityProfile::fromEncodedA/B for pre-encoded operands: no
 * decode, no extra value pass) — and routes each class to the
 * backend the cost model ranks fastest for it. Per-class partial
 * results and stats merge into one KernelReport whose output rows
 * are bitwise identical to what the chosen backend produces for that
 * class (output row stripes depend only on the A rows of their own
 * class plus the shared B operand, so slicing cannot change them).
 *
 * The cut is chosen per request: every distinct observed group
 * density is a candidate threshold, each candidate's classes are
 * estimated under each applicable backend through the ordinary
 * plan-stage cost model, and the split with the smallest *merged*
 * time wins — class stats combine under the execution merge rule
 * (max of summed compute and memory plus both launches), so a
 * compute-bound class priced against a memory-bound one gets the
 * same overlap credit the executed report will show. No-split is
 * always a candidate, so a uniform request degenerates to a
 * wholesale delegation with unchanged stats.
 * HybridOptions::threshold pins a manual cut for tests.
 */
#ifndef DSTC_CORE_HYBRID_H
#define DSTC_CORE_HYBRID_H

#include <vector>

#include "core/backend.h"

namespace dstc {

/** One density class of a hybrid split: which A-side tile-row groups
 *  it covers and where the cost model routes it. */
struct HybridClass
{
    /** The primitive method this class executes under. */
    Method method = Method::DualSparse;

    /** Ascending A-side tile-row group indices of the class. */
    std::vector<int> groups;

    /** Plan-stage estimate of the class under @p method (us). */
    double estimated_us = 0.0;
};

/** The chosen partition of one request. */
struct HybridSplit
{
    /**
     * Density cut that produced the classes (groups with density >=
     * threshold form the high class). -1 when the request was not
     * split (single class, or pre-encoded tiling mismatch).
     */
    double threshold = -1.0;

    /** Non-empty classes, low-density class first. */
    std::vector<HybridClass> classes;

    /**
     * The split's objective value: the classes' estimated stats
     * merged under the execution rule — max of summed compute and
     * memory time plus every class's launch — NOT the sum of the
     * per-class times. A compute-bound class overlaps a memory-bound
     * one, exactly as the executed hybrid's merged KernelStats will
     * report.
     */
    double total_estimated_us = 0.0;

    bool split() const { return classes.size() > 1; }
};

/**
 * Choose the split for @p req (kind == Gemm): resolve the per-group
 * densities, walk the threshold ladder, estimate every (class,
 * candidate backend) pair through the plan-stage cost model and
 * return the min-total partition with its routing. Deterministic —
 * a pure function of the request content — so replays and re-runs
 * partition identically for any worker count or submission path.
 * ctx.registry supplies the candidate backends when set (the normal
 * KernelRegistry::plan path); otherwise the composer falls back to
 * private default instances. @p cache_hit (optional) reports whether
 * the operands' profile view came from the EncodingCache.
 */
HybridSplit planHybridSplit(const KernelRequest &req,
                            const PlanContext &ctx,
                            bool *cache_hit = nullptr);

/**
 * Whether @p b already satisfies the Ampere 2:4 structured pattern:
 * at most two non-zeros in every complete four-column quad of every
 * row (the trailing partial quad is exempt, matching prune2of4).
 * Exactly then the ampere backend's forced prune is the identity and
 * its functional output is the unpruned FP16 GEMM — the condition
 * under which the hybrid cost model admits the 2:4 backend as an
 * exact routing target.
 */
bool conformant2of4(const Matrix<float> &b);

} // namespace dstc

#endif // DSTC_CORE_HYBRID_H
