/**
 * @file
 * Session — the library's public entry point.
 *
 * A Session owns the machine description, the KernelRegistry of
 * execution backends, the EncodingCache of encoded operands and a
 * worker pool. It answers KernelRequests through the uniform
 * plan/execute protocol, serially or batched:
 *
 * @code
 *   dstc::Session session;                        // V100 model
 *   auto report = session.run(
 *       dstc::KernelRequest::gemm(4096, 4096, 4096, 0.7, 0.8));
 *
 *   // Batched: many layers concurrently, deterministic stats.
 *   auto futures = session.submitBatch(requests);
 *   for (auto &f : futures) use(f.get());
 * @endcode
 *
 * Results are bitwise deterministic: every request is a pure
 * function of its own fields (plus the machine config), so batched
 * and serial execution produce identical stats regardless of thread
 * count or scheduling.
 */
#ifndef DSTC_CORE_SESSION_H
#define DSTC_CORE_SESSION_H

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "core/encoding_cache.h"
#include "core/kernel_registry.h"
#include "timing/gpu_config.h"

namespace dstc {

class ThreadPool;

/** Construction knobs of a Session. */
struct SessionOptions
{
    GpuConfig config = GpuConfig::v100();

    /** Worker threads for submitBatch; 0 = hardware concurrency. */
    int num_threads = 0;

    /**
     * Deprecated alias of resources.encode_workers: worker
     * partitioning of the word-parallel operand encoders (0 = the
     * process-shared pool, 1 = serial in the requesting thread, N
     * caps the parallelism at N; encodings are bitwise identical for
     * every setting). Consulted only when neither the request's nor
     * the session's ExecutionResources sets the encode axis. Default
     * serial: requests batched through submitBatch already saturate
     * the pool, and a lone caller opts in explicitly.
     */
    int encode_workers = 1;

    /**
     * Session-level worker budget (see ExecutionResources in
     * kernel_request.h): the consolidated axis over encode_workers
     * here and the per-request SpGemmOptions::num_workers /
     * ConvOptions::num_workers. A request's own resources field
     * overrides these; -1 axes fall through to the legacy fields.
     */
    ExecutionResources resources;

    /** Encoded-operand cache capacity (entries, LRU eviction). */
    size_t cache_capacity = EncodingCache::kDefaultCapacity;

    /**
     * Optional byte-aware cache bound over the encoded values'
     * reported footprints; 0 = entry-count bound only. For
     * long-running serving, set this to the memory budget the
     * encodings may occupy.
     */
    size_t cache_capacity_bytes = 0;

    /**
     * Non-owning shared worker pool. When set, submit/submitBatch
     * enqueue here instead of a session-private pool (num_threads is
     * ignored) — a Cluster hands every per-device Session the same
     * pool so N devices cannot oversubscribe the host. The pool must
     * outlive the Session.
     */
    ThreadPool *shared_pool = nullptr;

    /**
     * Non-owning shared encoding cache. When set, plans resolve
     * operands here instead of the session-private cache
     * (cache_capacity/_bytes are ignored) — Sessions over different
     * GpuConfigs can share one cache because operand encodings are
     * pure in the operand contents; config-dependent families fold
     * the machine bits into their keys (CacheKey::gpuConfig). Must
     * outlive the Session.
     */
    EncodingCache *shared_cache = nullptr;
};

/** The plan/execute front end over the kernel registry. */
class Session
{
  public:
    Session();
    explicit Session(GpuConfig config);
    explicit Session(SessionOptions options);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Plan @p request (Auto resolves to the fastest candidate).
     * Plans borrow the session's cache and config: the Session must
     * outlive every plan it returns.
     */
    std::unique_ptr<ExecutionPlan> plan(const KernelRequest &request);

    /** Plan and execute @p request synchronously. */
    KernelReport run(const KernelRequest &request);

    /** Enqueue one request on the worker pool. The request is
     *  copied; operands it points to must outlive the future. */
    std::future<KernelReport> submit(KernelRequest request);

    /**
     * Enqueue a batch; futures are index-aligned with @p requests.
     * Stats are identical to running the same requests serially.
     */
    std::vector<std::future<KernelReport>>
    submitBatch(std::vector<KernelRequest> requests);

    /** submitBatch and gather, preserving order. */
    std::vector<KernelReport>
    runBatch(std::vector<KernelRequest> requests);

    /** Requests this Session ran, and how many of them were served
     *  at least one encoded operand from the cache. With a shared
     *  cache these are the per-device contribution to the global
     *  cache counters (the per-device hit rate). */
    struct RequestCounters
    {
        int64_t requests = 0;
        int64_t encode_cache_hits = 0;
    };

    RequestCounters
    requestCounters() const
    {
        return {requests_.load(), encode_cache_hits_.load()};
    }

    KernelRegistry &registry() { return registry_; }
    const KernelRegistry &registry() const { return registry_; }

    /** The cache plans resolve through: the shared cache when the
     *  session was built in shared-cache mode, else its own. */
    EncodingCache &
    encodingCache()
    {
        return options_.shared_cache ? *options_.shared_cache : cache_;
    }

    const EncodingCache &
    encodingCache() const
    {
        return options_.shared_cache ? *options_.shared_cache : cache_;
    }

    const GpuConfig &config() const { return options_.config; }

  private:
    ThreadPool &pool();

    SessionOptions options_;
    KernelRegistry registry_;
    EncodingCache cache_;
    std::once_flag pool_once_;
    std::unique_ptr<ThreadPool> pool_; // created on first submit
    std::atomic<int64_t> requests_{0};
    std::atomic<int64_t> encode_cache_hits_{0};
};

} // namespace dstc

#endif // DSTC_CORE_SESSION_H
