/**
 * @file
 * The polymorphic backend protocol behind the KernelRegistry.
 *
 * A Backend answers KernelRequests for one execution method. The
 * two-phase protocol separates operand encoding from execution:
 *
 *   backend->plan(request, ctx)   // resolve/encode operands
 *          ->execute()            // run, yielding a KernelReport
 *
 * plan() is where two-level bitmap construction, profile synthesis
 * and im2col lowering parameters are resolved — through the
 * EncodingCache, so repeated layers reuse their encodings. plans are
 * also the unit of Auto dispatch: estimatedTimeUs() lets the registry
 * compare candidate backends before committing to one.
 */
#ifndef DSTC_CORE_BACKEND_H
#define DSTC_CORE_BACKEND_H

#include <memory>
#include <optional>

#include "core/encoding_cache.h"
#include "core/kernel_request.h"
#include "timing/gpu_config.h"

namespace dstc {

class KernelRegistry;

/** Everything a backend needs besides the request itself. */
struct PlanContext
{
    const GpuConfig *cfg = nullptr;
    EncodingCache *cache = nullptr;

    /** Worker partitioning of the word-parallel operand encoders
     *  (SessionOptions::encode_workers; the usual num_workers
     *  contract: 0 = shared pool, 1 = serial). Encodings are bitwise
     *  identical for every setting. */
    int encode_workers = 1;

    /**
     * The registry that issued this plan (set by
     * KernelRegistry::plan). Composer backends — Method::Hybrid —
     * route per-class sub-requests back through it; primitive
     * backends ignore it. Null when a backend is planned directly,
     * which primitive backends must tolerate.
     */
    const KernelRegistry *registry = nullptr;
};

/**
 * A planned kernel: operands resolved/encoded, ready to execute.
 * Execution is memoized — execute() and estimatedTimeUs() share one
 * underlying run, so Auto dispatch never pays twice.
 */
class ExecutionPlan
{
  public:
    ExecutionPlan(const char *backend_name, Method method,
                  std::string tag)
        : backend_name_(backend_name), method_(method),
          tag_(std::move(tag))
    {
    }
    virtual ~ExecutionPlan() = default;

    /**
     * Predicted kernel time, used by Method::Auto to rank candidate
     * backends. For the analytic timing paths this *is* the final
     * time; functional plans may answer from the operands' profiles
     * without computing values.
     */
    double
    estimatedTimeUs()
    {
        if (!estimated_)
            estimated_ = estimate();
        return *estimated_;
    }

    /** Execute the plan (idempotent: repeated calls return the same
     *  report). */
    KernelReport
    execute()
    {
        KernelReport r = result();
        r.method = method_;
        r.backend = backend_name_;
        r.tag = tag_;
        r.encode_cache_hit = cache_hit_;
        if (estimated_)
            r.planned_us = *estimated_;
        return r;
    }

    Method method() const { return method_; }
    const char *backendName() const { return backend_name_; }

  protected:
    /** Perform the actual (timing or functional) execution. */
    virtual KernelReport run() = 0;

    /** Default estimate: execute and read the clock. Analytic
     *  backends inherit this; functional plans override it with a
     *  profile-only path. */
    virtual double estimate() { return result().stats.timeUs(); }

    const KernelReport &
    result()
    {
        if (!result_)
            result_ = run();
        return *result_;
    }

    /** Set by subclasses when an encoded operand came from cache. */
    bool cache_hit_ = false;

  private:
    const char *backend_name_;
    Method method_;
    std::string tag_;
    std::optional<double> estimated_;
    std::optional<KernelReport> result_;
};

/** One execution method, as registered with the KernelRegistry. */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** The concrete method this backend implements (never Auto). */
    virtual Method method() const = 0;

    /** Stable backend name ("dual-sparse", "dense-cutlass", ...). */
    virtual const char *name() const = 0;

    /** Whether this backend can execute @p request at all. */
    virtual bool supports(const KernelRequest &request) const = 0;

    /**
     * Whether this backend answers @p request without assuming a
     * lossy transformation of the operands. The structurally
     * pruning baselines (vector-wise 75%, 2:4) drop weights to fit
     * their format — for GEMM that changes the numerics, and the
     * explicit Single Sparse conv strategy's timing presumes the
     * forced 75% prune. Auto only dispatches among exact backends,
     * so "fastest" never silently means "lossier".
     */
    virtual bool
    exact(const KernelRequest &request) const
    {
        (void)request;
        return true;
    }

    /** Resolve operand encodings and produce an executable plan.
     *  Precondition: supports(request). */
    virtual std::unique_ptr<ExecutionPlan>
    plan(const KernelRequest &request, const PlanContext &ctx) const = 0;
};

// The five evaluated backends (Fig. 21/22).
std::unique_ptr<Backend> makeDualSparseBackend();
std::unique_ptr<Backend> makeDenseBackend();
std::unique_ptr<Backend> makeZhuSparseBackend();
std::unique_ptr<Backend> makeAmpereSparseBackend();
std::unique_ptr<Backend> makeCusparseLikeBackend();

// The density-partitioned composer over them (src/core/hybrid.h).
std::unique_ptr<Backend> makeHybridBackend();

} // namespace dstc

#endif // DSTC_CORE_BACKEND_H
