/**
 * @file
 * Cluster — sharded multi-device execution over per-device Sessions.
 *
 * A Cluster owns N Sessions, one per device GpuConfig (heterogeneous
 * mixes allowed: V100s next to A100-class or future-GPU machines),
 * behind the same submit/submitBatch/runBatch surface a single
 * Session exposes. A ClusterScheduler places every KernelRequest on
 * one device:
 *
 *  - PlacementPolicy::CostModel (default): each request is estimated
 *    on every device by the plan-stage time estimate — the same
 *    number Method::Auto ranks backends with — and lands on the
 *    device with the earliest estimated finish time (per-device
 *    estimated-busy accumulators, updated in submission order).
 *  - PlacementPolicy::RoundRobin: devices in submission-order
 *    rotation, estimates never computed.
 *  - PlacementPolicy::StaticShard: a stable structural digest of the
 *    request picks the device, so identical layers always land on
 *    the same device (encoding affinity), independent of submission
 *    order.
 *
 * All devices share one worker pool (the host cannot be
 * oversubscribed by N per-device pools) and one EncodingCache:
 * operand encodings are pure in the operand contents, so a layer
 * encoded for device 0 is a cache hit on device 1 even when their
 * configs differ. Config-dependent cache families — the scheduler's
 * per-device time estimates — fold the machine parameters into their
 * keys (CacheKey::gpuConfig) and never collide across configs.
 *
 * Determinism contract (the PR 2-4 contract, lifted to the cluster):
 * placement is a pure function of the submission sequence — never of
 * execution timing, thread count or policy racing — and every report
 * is bitwise identical to running the same request serially on a
 * fresh single Session with the placed device's GpuConfig. The
 * futures of submitBatch are index-aligned with the requests.
 */
#ifndef DSTC_CORE_CLUSTER_H
#define DSTC_CORE_CLUSTER_H

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/session.h"

namespace dstc {

/** How the ClusterScheduler maps requests to devices. */
enum class PlacementPolicy
{
    CostModel,  ///< earliest estimated finish time (plan-stage cost)
    RoundRobin, ///< submission-order rotation
    StaticShard ///< stable request digest modulo device count
};

/** Stable CLI/parse token of a policy ("cost", "rr", "shard"). */
const char *placementPolicyToken(PlacementPolicy policy);

/** Parse a CLI token into a policy; false on unknown token. */
bool parsePlacementPolicy(const std::string &token,
                          PlacementPolicy *out);

/** Construction knobs of a Cluster. */
struct ClusterOptions
{
    /** One Session per entry; empty = a single V100. */
    std::vector<GpuConfig> devices;

    PlacementPolicy policy = PlacementPolicy::CostModel;

    /** Worker threads of the shared pool; 0 = hardware concurrency.
     *  Reports are bitwise identical for every setting. */
    int num_threads = 0;

    /** Deprecated alias of resources.encode_workers (kept for old
     *  call sites; resources wins when set). */
    int encode_workers = 1;

    /** Per-device execution resources (SessionOptions semantics). */
    ExecutionResources resources;

    /** Shared-cache bounds (SessionOptions semantics). */
    size_t cache_capacity = EncodingCache::kDefaultCapacity;
    size_t cache_capacity_bytes = 0;
};

/** Per-device work accounting of the scheduler. */
struct DeviceLoad
{
    int64_t placed = 0;    ///< requests placed on the device
    int64_t completed = 0; ///< requests finished executing
    /** Sum of the placed requests' plan-stage estimates (the
     *  estimated-finish-time queue; 0 under RoundRobin/StaticShard,
     *  which never estimate). */
    double estimated_busy_us = 0.0;
};

/**
 * Deterministic placement engine of a Cluster. place() mutates the
 * per-device accounting under a mutex, so concurrent submitters are
 * safe — but placement is only reproducible for a deterministic
 * submission sequence (submitBatch places in index order).
 */
class ClusterScheduler
{
  public:
    ClusterScheduler(PlacementPolicy policy, size_t num_devices);
    virtual ~ClusterScheduler() = default;

    /**
     * Pick a device for one request. @p estimates holds the per-
     * device plan-stage estimates (required iff the policy is
     * CostModel); @p shard_key is the request's stable structural
     * digest (consulted only by StaticShard). Ties break toward the
     * lowest device index.
     */
    size_t place(const std::vector<double> &estimates,
                 uint64_t shard_key);

    /** Record that a placed request finished on @p device. */
    void completed(size_t device);

    /**
     * Exclude a device from (or readmit it to) placement: a dead
     * device is never picked by any policy — RoundRobin rotation and
     * StaticShard digests re-map over the survivors, CostModel skips
     * it outright. The serving layer's fault path drives this; at
     * least one device must stay eligible.
     */
    void setDeviceAlive(size_t device, bool alive);
    bool deviceAlive(size_t device) const;
    size_t aliveDevices() const;

    DeviceLoad load(size_t device) const;
    PlacementPolicy policy() const { return policy_; }
    size_t numDevices() const { return loads_.size(); }

  protected:
    // Subclasses (the serving layer's DeadlineScheduler) extend the
    // placement vocabulary but reuse the per-device accounting.
    mutable std::mutex mu_;
    PlacementPolicy policy_;
    std::vector<DeviceLoad> loads_;
    std::vector<uint8_t> alive_; ///< placement eligibility mask
    uint64_t next_round_robin_ = 0;
};

/**
 * Stable structural digest of a request: geometry, method, operating
 * point and options — never operand contents (cheap, and available
 * for every request shape). StaticShard keys on it.
 */
uint64_t requestShardKey(const KernelRequest &request);

/**
 * Full content digest of a request: the shard key plus the concrete
 * operands' bytes. Empty when the request carries caller-owned
 * pointer encodings (profiles / pre-encoded two-level operands)
 * whose contents are not hashable here — estimate caching is skipped
 * for those.
 */
std::optional<uint64_t>
requestContentDigest(const KernelRequest &request);

/** The sharded multi-device front end. */
class Cluster
{
  public:
    /** A single-V100 cluster (same results as a plain Session). */
    Cluster();
    explicit Cluster(ClusterOptions options);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    size_t numDevices() const { return sessions_.size(); }
    Session &device(size_t i) { return *sessions_[i]; }
    const Session &device(size_t i) const { return *sessions_[i]; }

    const GpuConfig &
    deviceConfig(size_t i) const
    {
        return options_.devices[i];
    }

    EncodingCache &encodingCache() { return cache_; }
    const EncodingCache &encodingCache() const { return cache_; }
    const ClusterOptions &options() const { return options_; }
    DeviceLoad load(size_t i) const { return scheduler_.load(i); }

    /**
     * The plan-stage time estimate of @p request on device @p i —
     * the number CostModel placement ranks devices by. Cached in the
     * shared EncodingCache under a key folding the request's content
     * digest and the device's machine parameters, so repeated layers
     * estimate once per device config.
     */
    double estimateOn(size_t i, const KernelRequest &request);

    /**
     * Place one request (mutating the scheduler accounting) and
     * return the chosen device index. submit()/run() call this; it
     * is public so callers can audit placement decisions.
     */
    size_t place(const KernelRequest &request);

    /** Place and execute @p request synchronously. The report's
     *  `device` field records the placement. */
    KernelReport run(const KernelRequest &request);

    /** Place @p request, then enqueue it on the shared pool. */
    std::future<KernelReport> submit(KernelRequest request);

    /**
     * Place every request in index order, then enqueue them all;
     * futures are index-aligned with @p requests. Reports are
     * bitwise identical to running each request serially on a
     * single Session with the placed device's config.
     */
    std::vector<std::future<KernelReport>>
    submitBatch(std::vector<KernelRequest> requests);

    /** submitBatch and gather, preserving order. */
    std::vector<KernelReport>
    runBatch(std::vector<KernelRequest> requests);

  private:
    ThreadPool &pool();

    /** estimateOn with the request's content digest precomputed (one
     *  hash per request, shared across the per-device loop). */
    double estimateOn(size_t i, const KernelRequest &request,
                      const std::optional<uint64_t> &digest);

    ClusterOptions options_;
    EncodingCache cache_;
    std::vector<std::unique_ptr<Session>> sessions_;
    ClusterScheduler scheduler_;
    // Declared last so it is destroyed first: ~ThreadPool drains any
    // still-queued submit() tasks, which touch the sessions and the
    // scheduler — those must outlive the drain.
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace dstc

#endif // DSTC_CORE_CLUSTER_H
