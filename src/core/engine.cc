#include "core/engine.h"

namespace dstc {

DstcEngine::DstcEngine(GpuConfig cfg)
    : cfg_(cfg), spgemm_device_(cfg), dense_device_(cfg),
      conv_executor_(cfg)
{
}

SpGemmResult
DstcEngine::spgemm(const Matrix<float> &a, const Matrix<float> &b,
                   const SpGemmOptions &options) const
{
    return spgemm_device_.multiply(a, b, options);
}

SpGemmResult
DstcEngine::spgemmEncoded(const TwoLevelBitmapMatrix &a,
                          const TwoLevelBitmapMatrix &b,
                          const SpGemmOptions &options) const
{
    return spgemm_device_.multiplyEncoded(a, b, options);
}

KernelStats
DstcEngine::spgemmTime(const SparsityProfile &a, const SparsityProfile &b,
                       const SpGemmOptions &options) const
{
    return spgemm_device_.timeFromProfiles(a, b, options);
}

ConvResult
DstcEngine::conv(const Tensor4d &input, const Matrix<float> &weights,
                 const ConvShape &shape, ConvMethod method) const
{
    return conv_executor_.run(input, weights, shape, method);
}

KernelStats
DstcEngine::convTime(const ConvShape &shape, ConvMethod method,
                     double weight_sparsity, double act_sparsity,
                     uint64_t seed, double weight_cluster,
                     double act_cluster) const
{
    return conv_executor_.timeOnly(shape, method, weight_sparsity,
                                   act_sparsity, seed, weight_cluster,
                                   act_cluster);
}

KernelStats
DstcEngine::denseGemmTime(int64_t m, int64_t n, int64_t k) const
{
    return cutlassGemm(cfg_, m, n, k);
}

DenseGemmResult
DstcEngine::denseGemm(const Matrix<float> &a, const Matrix<float> &b,
                      bool outer_product) const
{
    return dense_device_.multiply(a, b, outer_product);
}

KernelStats
DstcEngine::zhuGemmTime(int64_t m, int64_t n, int64_t k,
                        double weight_sparsity) const
{
    return zhuGemm(cfg_, m, n, k, weight_sparsity);
}

KernelStats
DstcEngine::ampereGemmTime(int64_t m, int64_t n, int64_t k,
                           double weight_sparsity) const
{
    return ampereGemm(cfg_, m, n, k, weight_sparsity);
}

KernelStats
DstcEngine::cusparseTime(int64_t m, int64_t n, int64_t k,
                         double density_a, double density_b) const
{
    return cusparseGemmTimeExpected(cfg_, m, n, k, density_a, density_b);
}

OverheadReport
DstcEngine::hardwareOverhead() const
{
    return estimateOverhead(cfg_);
}

} // namespace dstc
