#include "core/engine.h"

#include "core/method_map.h"

namespace dstc {

DstcEngine::DstcEngine(GpuConfig cfg) : session_(cfg) {}

SpGemmResult
DstcEngine::spgemm(const Matrix<float> &a, const Matrix<float> &b,
                   const SpGemmOptions &options) const
{
    KernelRequest req = KernelRequest::gemm(a, b);
    req.method = Method::DualSparse;
    req.gemm_options = options;
    KernelReport report = session_.run(req);
    SpGemmResult result;
    result.stats = report.stats;
    if (report.d)
        result.d = *report.d;
    return result;
}

SpGemmResult
DstcEngine::spgemmEncoded(const TwoLevelBitmapMatrix &a,
                          const TwoLevelBitmapMatrix &b,
                          const SpGemmOptions &options) const
{
    KernelRequest req;
    req.kind = KernelRequest::Kind::Gemm;
    req.method = Method::DualSparse;
    req.m = a.rows();
    req.n = b.cols();
    req.k = a.cols();
    req.a_encoded = &a;
    req.b_encoded = &b;
    req.gemm_options = options;
    KernelReport report = session_.run(req);
    SpGemmResult result;
    result.stats = report.stats;
    if (report.d)
        result.d = *report.d;
    return result;
}

KernelStats
DstcEngine::spgemmTime(const SparsityProfile &a,
                       const SparsityProfile &b,
                       const SpGemmOptions &options) const
{
    KernelRequest req = KernelRequest::gemm(a, b);
    req.method = Method::DualSparse;
    req.gemm_options = options;
    return session_.run(req).stats;
}

ConvResult
DstcEngine::conv(const Tensor4d &input, const Matrix<float> &weights,
                 const ConvShape &shape, ConvMethod method) const
{
    KernelRequest req = KernelRequest::conv(input, weights, shape);
    splitConvMethod(method, &req.method, &req.lowering);
    KernelReport report = session_.run(req);
    ConvResult result;
    result.stats = report.stats;
    if (report.output)
        result.output = *report.output;
    return result;
}

KernelStats
DstcEngine::convTime(const ConvShape &shape, ConvMethod method,
                     double weight_sparsity, double act_sparsity,
                     uint64_t seed, double weight_cluster,
                     double act_cluster) const
{
    KernelRequest req =
        KernelRequest::conv(shape, weight_sparsity, act_sparsity);
    splitConvMethod(method, &req.method, &req.lowering);
    req.seed = seed;
    req.b_cluster = weight_cluster;
    req.a_cluster = act_cluster;
    return session_.run(req).stats;
}

KernelStats
DstcEngine::denseGemmTime(int64_t m, int64_t n, int64_t k) const
{
    KernelRequest req = KernelRequest::gemm(m, n, k);
    req.method = Method::Dense;
    return session_.run(req).stats;
}

DenseGemmResult
DstcEngine::denseGemm(const Matrix<float> &a, const Matrix<float> &b,
                      bool outer_product) const
{
    KernelRequest req = KernelRequest::gemm(a, b);
    req.method = Method::Dense;
    req.outer_product = outer_product;
    KernelReport report = session_.run(req);
    DenseGemmResult result;
    result.stats = report.stats;
    if (report.d)
        result.d = *report.d;
    return result;
}

KernelStats
DstcEngine::zhuGemmTime(int64_t m, int64_t n, int64_t k,
                        double weight_sparsity) const
{
    KernelRequest req = KernelRequest::gemm(m, n, k, 0.0,
                                            weight_sparsity);
    req.method = Method::ZhuSparse;
    return session_.run(req).stats;
}

KernelStats
DstcEngine::ampereGemmTime(int64_t m, int64_t n, int64_t k,
                           double weight_sparsity) const
{
    KernelRequest req = KernelRequest::gemm(m, n, k, 0.0,
                                            weight_sparsity);
    req.method = Method::AmpereSparse;
    return session_.run(req).stats;
}

KernelStats
DstcEngine::cusparseTime(int64_t m, int64_t n, int64_t k,
                         double density_a, double density_b) const
{
    KernelRequest req = KernelRequest::gemm(
        m, n, k, 1.0 - density_a, 1.0 - density_b);
    req.method = Method::CusparseLike;
    return session_.run(req).stats;
}

OverheadReport
DstcEngine::hardwareOverhead() const
{
    return estimateOverhead(session_.config());
}

} // namespace dstc
