/**
 * @file
 * Content-hash-keyed cache of encoded operands.
 *
 * Encoding a GEMM operand into the two-level bitmap format, or
 * synthesizing the popcount profiles of a model layer's operating
 * point, is pure: the result is a function of the operand contents
 * (or generation parameters) alone. The cache exploits that purity —
 * repeated layers and repeated requests over the same operands skip
 * re-encoding entirely, across serial and batched execution alike.
 *
 * Keys are 64-bit FNV-1a digests built by the call sites from the
 * operand contents / generation parameters plus a kind tag (see
 * CacheKey). Values are immutable and shared: concurrent lookups of
 * the same key build once and everyone holds the same object.
 */
#ifndef DSTC_CORE_ENCODING_CACHE_H
#define DSTC_CORE_ENCODING_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <typeinfo>
#include <unordered_map>

#include "common/logging.h"
#include "tensor/matrix.h"
#include "timing/gpu_config.h"

namespace dstc {

/** Incremental FNV-1a digest used for cache keys. */
class CacheKey
{
  public:
    /** @param kind a distinct tag per encoding family, folded into
     *         the digest so families never collide. */
    explicit CacheKey(const char *kind) { str(kind); }

    CacheKey &
    bytes(const void *data, size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < len; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001b3ull;
        }
        return *this;
    }

    CacheKey &
    str(const char *s)
    {
        while (*s) {
            hash_ ^= static_cast<unsigned char>(*s++);
            hash_ *= 0x100000001b3ull;
        }
        return bytes("\0", 1); // terminator: no concat ambiguity
    }

    CacheKey &u64(uint64_t v) { return bytes(&v, sizeof(v)); }
    CacheKey &i64(int64_t v) { return bytes(&v, sizeof(v)); }
    CacheKey &i32(int32_t v) { return bytes(&v, sizeof(v)); }
    CacheKey &f64(double v) { return bytes(&v, sizeof(v)); }

    /** Fold in a matrix's dimensions and full contents. */
    CacheKey &
    matrix(const Matrix<float> &m)
    {
        i32(m.rows());
        i32(m.cols());
        return bytes(m.data().data(), m.data().size() * sizeof(float));
    }

    /**
     * Fold in every machine parameter of a GpuConfig — the
     * config-dependent bits of cache families whose values embed
     * machine-derived results (e.g. the cluster scheduler's
     * plan-stage time estimates). Operand *encodings* are pure in
     * the operand contents and must NOT fold this in: leaving the
     * config out of their keys is what lets Sessions over different
     * devices share one cache and encode each operand once.
     */
    CacheKey &
    gpuConfig(const GpuConfig &cfg)
    {
        i32(cfg.num_sms).i32(cfg.subcores_per_sm);
        f64(cfg.clock_ghz);
        i32(cfg.ohmma_macs);
        f64(cfg.dense_gemm_efficiency);
        f64(cfg.sparse_issue_efficiency);
        f64(cfg.dram_bw_gbps).f64(cfg.dram_efficiency);
        f64(cfg.l2_bytes).f64(cfg.l2_hit_rate);
        f64(cfg.kernel_launch_us);
        i32(cfg.accum_banks).i32(cfg.accum_bytes);
        i32(cfg.operand_collector ? 1 : 0);
        i32(cfg.collector_window);
        return f64(cfg.fp32_tflops);
    }

    uint64_t value() const { return hash_; }

  private:
    uint64_t hash_ = 0xcbf29ce484222325ull;
};

/**
 * Approximate resident bytes of a cached value, used by the cache's
 * optional byte-aware bound. Encodings report their real footprint
 * through encodedBytes(); anything else is charged its object size.
 */
template <typename T>
size_t
cachedValueBytes(const T &value)
{
    if constexpr (requires { value.encodedBytes(); })
        return static_cast<size_t>(value.encodedBytes());
    else
        return sizeof(T);
}

/**
 * Shared cache of encoded operands, keyed by content hash. Bounded
 * two ways: an entry-count capacity, and an optional byte bound over
 * the values' reported footprints. Eviction is LRU — every hit
 * refreshes the entry — and in-flight users keep evicted values
 * alive through the shared_ptr; only the cache's reference drops.
 */
class EncodingCache
{
  public:
    static constexpr size_t kDefaultCapacity = 1024;

    /**
     * @param capacity       maximum entry count (>= 1)
     * @param capacity_bytes maximum total value bytes; 0 = unbounded.
     *        A single value larger than the bound is still cached
     *        (evicting everything else) — the bound sheds history,
     *        it never refuses work.
     */
    explicit EncodingCache(size_t capacity = kDefaultCapacity,
                           size_t capacity_bytes = 0)
        : capacity_(capacity == 0 ? 1 : capacity),
          capacity_bytes_(capacity_bytes)
    {
    }

    struct Counters
    {
        int64_t hits = 0;
        int64_t misses = 0;
        int64_t evictions = 0;
    };

    /**
     * Return the cached value for @p key, building it with @p build
     * on first use. Thread-safe; concurrent first lookups of one key
     * build once (later arrivals block until the value is ready).
     *
     * @param hit optional out-flag: true iff the entry pre-existed.
     */
    template <typename T, typename BuildFn>
    std::shared_ptr<const T>
    getOrBuild(uint64_t key, BuildFn &&build, bool *hit = nullptr)
    {
        std::shared_ptr<Entry> entry;
        bool existed;
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto &slot = entries_[key];
            existed = slot != nullptr;
            if (!existed) {
                slot = std::make_shared<Entry>();
                lru_order_.push_back(key);
                slot->lru_it = std::prev(lru_order_.end());
                while (entries_.size() > capacity_)
                    evictOldestLocked();
            } else {
                // Refresh recency: move to the back of the LRU list.
                lru_order_.splice(lru_order_.end(), lru_order_,
                                  slot->lru_it);
            }
            entry = slot;
            ++(existed ? counters_.hits : counters_.misses);
        }
        if (hit)
            *hit = existed;
        bool built = false;
        std::call_once(entry->once, [&] {
            entry->value = std::static_pointer_cast<const void>(
                std::make_shared<const T>(build()));
            entry->type = typeid(T).hash_code();
            entry->bytes = cachedValueBytes(
                *std::static_pointer_cast<const T>(entry->value));
            built = true;
        });
        DSTC_ASSERT(entry->type == typeid(T).hash_code(),
                    "EncodingCache key collision across types");
        if (built) {
            // The value's size is only known after the build (which
            // runs outside the lock); charge it now and apply the
            // byte bound. The entry may already have been evicted by
            // a concurrent insert — then there is nothing to charge.
            std::lock_guard<std::mutex> lock(mu_);
            auto it = entries_.find(key);
            if (it != entries_.end() && it->second == entry) {
                entry->charged = true;
                total_bytes_ += entry->bytes;
                if (capacity_bytes_ > 0)
                    while (total_bytes_ > capacity_bytes_ &&
                           entries_.size() > 1) {
                        if (lru_order_.front() == key) {
                            // Never evict the just-built entry: it
                            // can sit at the LRU front when every
                            // other entry was touched after its
                            // insert. Rotate it to the back (it is
                            // the most recent use anyway) and keep
                            // shedding the next-oldest.
                            lru_order_.splice(lru_order_.end(),
                                              lru_order_,
                                              lru_order_.begin());
                            continue;
                        }
                        evictOldestLocked();
                    }
            }
        }
        return std::static_pointer_cast<const T>(entry->value);
    }

    Counters
    counters() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return counters_;
    }

    size_t
    entries() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return entries_.size();
    }

    /** Total reported bytes of the resident (charged) values. */
    size_t
    totalBytes() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return total_bytes_;
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mu_);
        entries_.clear();
        lru_order_.clear();
        total_bytes_ = 0;
        counters_ = Counters{};
    }

    size_t capacity() const { return capacity_; }
    size_t capacityBytes() const { return capacity_bytes_; }

  private:
    struct Entry
    {
        std::once_flag once;
        std::shared_ptr<const void> value;
        size_t type = 0;
        size_t bytes = 0;
        bool charged = false; ///< bytes counted in total_bytes_
        std::list<uint64_t>::iterator lru_it;
    };

    /** Drop the least-recently-used entry. Caller holds mu_. */
    void
    evictOldestLocked()
    {
        const uint64_t victim = lru_order_.front();
        auto it = entries_.find(victim);
        if (it != entries_.end()) {
            if (it->second->charged)
                total_bytes_ -= it->second->bytes;
            entries_.erase(it);
        }
        lru_order_.pop_front();
        ++counters_.evictions;
    }

    mutable std::mutex mu_;
    size_t capacity_;
    size_t capacity_bytes_;
    size_t total_bytes_ = 0;
    std::unordered_map<uint64_t, std::shared_ptr<Entry>> entries_;
    std::list<uint64_t> lru_order_;
    Counters counters_;
};

} // namespace dstc

#endif // DSTC_CORE_ENCODING_CACHE_H
