#include "core/gemm_operands.h"

#include "sparse/word_encode.h"

namespace dstc {

GemmProfilesView
resolveGemmProfiles(const KernelRequest &req, const PlanContext &ctx,
                    OperandDigests &digests, bool *hit)
{
    if (req.a_profile && req.b_profile) {
        // Caller-owned encodings: reference them in place (the
        // caller already holds the encode-once artifact, and request
        // operands must outlive the plan by contract).
        return GemmProfilesView::borrowed(req.a_profile,
                                          req.b_profile);
    }
    // Profile line lengths must match the warp-tile edges the
    // timing model runs at (timeFromProfiles asserts this).
    const int tile_m = req.gemm_options.tile_m;
    const int tile_n = req.gemm_options.tile_n;
    if (req.a && req.b) {
        CacheKey key("gemm-profiles-from-matrices");
        key.u64(digests.a(*req.a))
            .u64(digests.b(*req.b))
            .i32(tile_m)
            .i32(tile_n);
        const Matrix<float> *a = req.a, *b = req.b;
        return GemmProfilesView::owned(
            ctx.cache->getOrBuild<GemmProfilePair>(
                key.value(),
                [a, b, tile_m, tile_n] {
                    // Word-parallel extraction (bitwise identical to
                    // the element-wise fromMatrixA/B references).
                    return GemmProfilePair{
                        SparsityProfile::fromMatrixAWord(*a, tile_m),
                        SparsityProfile::fromMatrixBWord(*b,
                                                         tile_n)};
                },
                hit));
    }
    if (req.a_encoded && req.b_encoded)
        return {};

    CacheKey key("gemm-profiles-synthetic");
    key.i64(req.m).i64(req.n).i64(req.k);
    key.f64(req.a_sparsity)
        .f64(req.b_sparsity)
        .f64(req.a_cluster)
        .f64(req.b_cluster)
        .u64(req.seed)
        .i32(tile_m)
        .i32(tile_n);
    const KernelRequest r = req; // by-value for the builder
    return GemmProfilesView::owned(
        ctx.cache->getOrBuild<GemmProfilePair>(
            key.value(),
            [r, tile_m, tile_n] {
                Rng rng(r.seed);
                SparsityProfile a = SparsityProfile::randomA(
                    r.m, r.k, tile_m, 1.0 - r.a_sparsity, r.a_cluster,
                    rng);
                SparsityProfile b = SparsityProfile::randomA(
                    r.n, r.k, tile_n, 1.0 - r.b_sparsity, r.b_cluster,
                    rng);
                return GemmProfilePair{std::move(a), std::move(b)};
            },
            hit));
}

std::shared_ptr<const TwoLevelBitmapMatrix>
resolveTwoLevelA(const KernelRequest &req, const PlanContext &ctx,
                 OperandDigests &digests, bool *hit)
{
    const SpGemmOptions &o = req.gemm_options;
    // The encoding's value lane is quantized at the request datatype,
    // so the key folds the dtype: two requests sharing a content
    // digest but differing in datatype must never collide.
    CacheKey key("two-level-a");
    key.u64(digests.a(*req.a))
        .i32(o.tile_m)
        .i32(o.tile_k)
        .i32(static_cast<int32_t>(o.dtype));
    const Matrix<float> *a = req.a;
    const int workers = ctx.encode_workers;
    return ctx.cache->getOrBuild<TwoLevelBitmapMatrix>(
        key.value(),
        [a, &o, workers] {
            // Integer scales are matrix-global (serial fabs-max, so
            // the spec is independent of the worker partitioning).
            const QuantSpec spec = QuantSpec::forValues(
                o.dtype, a->data().data(), a->data().size());
            return wordEncodeTwoLevel(*a, o.tile_m, o.tile_k,
                                      Major::Col, workers, spec);
        },
        hit);
}

std::shared_ptr<const TwoLevelBitmapMatrix>
resolveTwoLevelB(const KernelRequest &req, const PlanContext &ctx,
                 OperandDigests &digests, bool *hit)
{
    const SpGemmOptions &o = req.gemm_options;
    CacheKey key("two-level-b");
    key.u64(digests.b(*req.b))
        .i32(o.tile_k)
        .i32(o.tile_n)
        .i32(static_cast<int32_t>(o.dtype));
    const Matrix<float> *b = req.b;
    const int workers = ctx.encode_workers;
    return ctx.cache->getOrBuild<TwoLevelBitmapMatrix>(
        key.value(),
        [b, &o, workers] {
            const QuantSpec spec = QuantSpec::forValues(
                o.dtype, b->data().data(), b->data().size());
            return wordEncodeTwoLevel(*b, o.tile_k, o.tile_n,
                                      Major::Row, workers, spec);
        },
        hit);
}

SparsityProfile
aggregateSpmmProfile(const SparsityProfile &a8)
{
    DSTC_ASSERT(a8.tile() == 8,
                "SpMM strip profiles use tile = 8 granularity");
    const int64_t k = a8.k();
    const int groups32 =
        static_cast<int>(ceilDiv<int64_t>(a8.extent(), 32));
    SparsityProfile a32(groups32, k, 32, a8.extent());
    for (int g = 0; g < groups32; ++g) {
        const int s0 = g * 4;
        const int s1 = std::min(a8.groups(), s0 + 4);
        for (int64_t kk = 0; kk < k; ++kk) {
            int sum = 0;
            for (int s = s0; s < s1; ++s)
                sum += a8.count(s, kk);
            a32.setCount(g, kk, sum);
        }
    }
    return a32;
}

SpmmProfilesView
resolveSpmmProfiles(const KernelRequest &req, const PlanContext &ctx,
                    OperandDigests &digests, bool *hit)
{
    if (req.a_profile) {
        DSTC_ASSERT(req.a_profile->tile() == 8,
                    "SpMM profile requests carry strip (tile = 8) "
                    "profiles");
        // Borrowed strip profile; its aggregation has no digestable
        // identity to cache by, and it is one cheap counts pass.
        SpmmProfilesView v;
        v.a8 = std::shared_ptr<const SparsityProfile>(
            std::shared_ptr<const void>(), req.a_profile);
        v.a32 = std::make_shared<const SparsityProfile>(
            aggregateSpmmProfile(*req.a_profile));
        return v;
    }
    std::shared_ptr<const SpmmProfilePair> pair;
    if (req.a) {
        CacheKey key("spmm-profiles-from-matrix");
        key.u64(digests.a(*req.a));
        const Matrix<float> *a = req.a;
        pair = ctx.cache->getOrBuild<SpmmProfilePair>(
            key.value(),
            [a] {
                SparsityProfile a8 =
                    SparsityProfile::fromMatrixAWord(*a, 8);
                SparsityProfile a32 = aggregateSpmmProfile(a8);
                return SpmmProfilePair{std::move(a8),
                                       std::move(a32)};
            },
            hit);
    } else {
        CacheKey key("spmm-profiles-synthetic");
        key.i64(req.m).i64(req.k);
        key.f64(req.a_sparsity).f64(req.a_cluster).u64(req.seed);
        const KernelRequest r = req;
        pair = ctx.cache->getOrBuild<SpmmProfilePair>(
            key.value(),
            [r] {
                Rng rng(r.seed);
                SparsityProfile a8 = SparsityProfile::randomA(
                    r.m, r.k, 8, 1.0 - r.a_sparsity, r.a_cluster,
                    rng);
                SparsityProfile a32 = aggregateSpmmProfile(a8);
                return SpmmProfilePair{std::move(a8),
                                       std::move(a32)};
            },
            hit);
    }
    SpmmProfilesView v;
    v.a8 = std::shared_ptr<const SparsityProfile>(pair, &pair->a8);
    v.a32 = std::shared_ptr<const SparsityProfile>(pair, &pair->a32);
    return v;
}

std::shared_ptr<const NarrowTileMatrix>
resolveNarrowTileA(const KernelRequest &req, const PlanContext &ctx,
                   OperandDigests &digests, bool *hit)
{
    const SpGemmOptions &o = req.gemm_options;
    CacheKey key("narrow-tile-a");
    key.u64(digests.a(*req.a)).i32(static_cast<int32_t>(o.dtype));
    const Matrix<float> *a = req.a;
    const int workers = ctx.encode_workers;
    return ctx.cache->getOrBuild<NarrowTileMatrix>(
        key.value(),
        [a, &o, workers] {
            const QuantSpec spec = QuantSpec::forValues(
                o.dtype, a->data().data(), a->data().size());
            return wordEncodeNarrowTile(*a, workers, spec);
        },
        hit);
}

double
profileDensity(const SparsityProfile &p)
{
    const double elems = static_cast<double>(p.extent()) *
                         static_cast<double>(p.k());
    return elems > 0 ? p.totalNnz() / elems : 0.0;
}

double
weightSparsity(const KernelRequest &req)
{
    if (req.b)
        return wordSparsity(*req.b);
    if (req.b_profile)
        return 1.0 - profileDensity(*req.b_profile);
    return req.b_sparsity;
}

void
operandDensities(const KernelRequest &req, double *da, double *db)
{
    *da = req.a          ? 1.0 - wordSparsity(*req.a)
          : req.a_profile ? profileDensity(*req.a_profile)
                          : 1.0 - req.a_sparsity;
    *db = req.b          ? 1.0 - wordSparsity(*req.b)
          : req.b_profile ? profileDensity(*req.b_profile)
                          : 1.0 - req.b_sparsity;
}

} // namespace dstc
