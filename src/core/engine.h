/**
 * @file
 * DstcEngine — deprecated method-per-path facade, kept as a thin
 * shim over a Session.
 *
 * New code should use the Session / KernelRegistry API directly
 * (core/session.h): it exposes the same execution paths as uniform
 * KernelRequests, adds Method::Auto dispatch, operand-encoding reuse
 * through the EncodingCache, and batched execution. Every method
 * here simply builds the equivalent KernelRequest and runs it on the
 * engine's Session; results are identical.
 *
 * @code
 *   dstc::DstcEngine engine;                       // V100 model
 *   auto r = engine.spgemm(a, b);                  // functional+timed
 *   auto t = engine.spgemmTime(profile_a, profile_b); // timing-only
 *   // preferred:
 *   dstc::Session &s = engine.session();
 *   auto report = s.run(dstc::KernelRequest::gemm(a, b));
 * @endcode
 */
#ifndef DSTC_CORE_ENGINE_H
#define DSTC_CORE_ENGINE_H

#include "conv/spconv.h"
#include "core/session.h"
#include "gemm/dense_gemm.h"
#include "gemm/spgemm_device.h"
#include "hwmodel/area_power.h"
#include "timing/gpu_config.h"

namespace dstc {

/**
 * Facade over the dual-side sparse Tensor Core model.
 * @deprecated Thin shim over Session; prefer core/session.h.
 */
class DstcEngine
{
  public:
    explicit DstcEngine(GpuConfig cfg = GpuConfig::v100());

    /** The Session the facade delegates to. */
    Session &session() { return session_; }
    const Session &session() const { return session_; }

    // -- the paper's contribution -------------------------------------

    /** Dual-side SpGEMM, functional + timed. */
    SpGemmResult spgemm(const Matrix<float> &a, const Matrix<float> &b,
                        const SpGemmOptions &options = {}) const;

    /** Dual-side SpGEMM over pre-encoded two-level operands. */
    SpGemmResult spgemmEncoded(const TwoLevelBitmapMatrix &a,
                               const TwoLevelBitmapMatrix &b,
                               const SpGemmOptions &options = {}) const;

    /** Dual-side SpGEMM, timing only, from popcount profiles. */
    KernelStats spgemmTime(const SparsityProfile &a,
                           const SparsityProfile &b,
                           const SpGemmOptions &options = {}) const;

    /** Convolution under any of the five Fig. 22 strategies. */
    ConvResult conv(const Tensor4d &input, const Matrix<float> &weights,
                    const ConvShape &shape, ConvMethod method) const;

    /** Convolution timing from shape + sparsity operating point. */
    KernelStats convTime(const ConvShape &shape, ConvMethod method,
                         double weight_sparsity, double act_sparsity,
                         uint64_t seed = 1, double weight_cluster = 1.0,
                         double act_cluster = 1.0) const;

    // -- baselines ----------------------------------------------------

    /** CUTLASS-like dense GEMM time. */
    KernelStats denseGemmTime(int64_t m, int64_t n, int64_t k) const;

    /** Functional dense GEMM on the Tensor Core model. */
    DenseGemmResult denseGemm(const Matrix<float> &a,
                              const Matrix<float> &b,
                              bool outer_product = false) const;

    /** Sparse Tensor Core [72] (vector-wise 75%) GEMM time. */
    KernelStats zhuGemmTime(int64_t m, int64_t n, int64_t k,
                            double weight_sparsity) const;

    /** Ampere-style 2:4 sparse Tensor Core GEMM time. */
    KernelStats ampereGemmTime(int64_t m, int64_t n, int64_t k,
                               double weight_sparsity) const;

    /** cuSparse-like CSR SpGEMM expected time at given densities. */
    KernelStats cusparseTime(int64_t m, int64_t n, int64_t k,
                             double density_a, double density_b) const;

    // -- hardware -----------------------------------------------------

    /** Area/power overhead of the extension (Table IV). */
    OverheadReport hardwareOverhead() const;

    const GpuConfig &config() const { return session_.config(); }

  private:
    mutable Session session_;
};

} // namespace dstc

#endif // DSTC_CORE_ENGINE_H
