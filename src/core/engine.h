/**
 * @file
 * DstcEngine — the library's public facade.
 *
 * One object holds the machine description and exposes every
 * execution path of the evaluation: the dual-side sparse Tensor Core
 * SpGEMM/SpCONV (the paper's contribution) and the dense/sparse
 * baselines it is compared against. Typical use:
 *
 * @code
 *   dstc::DstcEngine engine;                       // V100 model
 *   auto r = engine.spgemm(a, b);                  // functional+timed
 *   auto t = engine.spgemmTime(profile_a, profile_b); // timing-only
 *   auto c = engine.conv(input, weights, shape,
 *                        dstc::ConvMethod::DualSparseImplicit);
 * @endcode
 */
#ifndef DSTC_CORE_ENGINE_H
#define DSTC_CORE_ENGINE_H

#include "baselines/ampere_sparse_tc.h"
#include "baselines/cusparse_like.h"
#include "baselines/cutlass_like.h"
#include "baselines/zhu_sparse_tc.h"
#include "conv/spconv.h"
#include "gemm/dense_gemm.h"
#include "gemm/spgemm_device.h"
#include "hwmodel/area_power.h"
#include "timing/gpu_config.h"

namespace dstc {

/** Facade over the dual-side sparse Tensor Core model. */
class DstcEngine
{
  public:
    explicit DstcEngine(GpuConfig cfg = GpuConfig::v100());

    // -- the paper's contribution -------------------------------------

    /** Dual-side SpGEMM, functional + timed. */
    SpGemmResult spgemm(const Matrix<float> &a, const Matrix<float> &b,
                        const SpGemmOptions &options = {}) const;

    /** Dual-side SpGEMM over pre-encoded two-level operands. */
    SpGemmResult spgemmEncoded(const TwoLevelBitmapMatrix &a,
                               const TwoLevelBitmapMatrix &b,
                               const SpGemmOptions &options = {}) const;

    /** Dual-side SpGEMM, timing only, from popcount profiles. */
    KernelStats spgemmTime(const SparsityProfile &a,
                           const SparsityProfile &b,
                           const SpGemmOptions &options = {}) const;

    /** Convolution under any of the five Fig. 22 strategies. */
    ConvResult conv(const Tensor4d &input, const Matrix<float> &weights,
                    const ConvShape &shape, ConvMethod method) const;

    /** Convolution timing from shape + sparsity operating point. */
    KernelStats convTime(const ConvShape &shape, ConvMethod method,
                         double weight_sparsity, double act_sparsity,
                         uint64_t seed = 1, double weight_cluster = 1.0,
                         double act_cluster = 1.0) const;

    // -- baselines ----------------------------------------------------

    /** CUTLASS-like dense GEMM time. */
    KernelStats denseGemmTime(int64_t m, int64_t n, int64_t k) const;

    /** Functional dense GEMM on the Tensor Core model. */
    DenseGemmResult denseGemm(const Matrix<float> &a,
                              const Matrix<float> &b,
                              bool outer_product = false) const;

    /** Sparse Tensor Core [72] (vector-wise 75%) GEMM time. */
    KernelStats zhuGemmTime(int64_t m, int64_t n, int64_t k,
                            double weight_sparsity) const;

    /** Ampere-style 2:4 sparse Tensor Core GEMM time. */
    KernelStats ampereGemmTime(int64_t m, int64_t n, int64_t k,
                               double weight_sparsity) const;

    /** cuSparse-like CSR SpGEMM expected time at given densities. */
    KernelStats cusparseTime(int64_t m, int64_t n, int64_t k,
                             double density_a, double density_b) const;

    // -- hardware -----------------------------------------------------

    /** Area/power overhead of the extension (Table IV). */
    OverheadReport hardwareOverhead() const;

    const GpuConfig &config() const { return cfg_; }

  private:
    GpuConfig cfg_;
    SpGemmDevice spgemm_device_;
    DenseGemmDevice dense_device_;
    ConvExecutor conv_executor_;
};

} // namespace dstc

#endif // DSTC_CORE_ENGINE_H
