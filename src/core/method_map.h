/**
 * @file
 * The one table tying the three strategy vocabularies together: a
 * convolution strategy (ConvMethod, the Fig. 22 legend) is exactly a
 * registry method plus a lowering choice. Both directions of the
 * mapping read this table — the hand-kept switches that used to live
 * in engine.cc, backends.cc and runner.cc are gone, so adding a
 * strategy means adding one row here.
 */
#ifndef DSTC_CORE_METHOD_MAP_H
#define DSTC_CORE_METHOD_MAP_H

#include <span>

#include "core/kernel_request.h"

namespace dstc {

/** One row of the strategy table. */
struct ConvMethodEntry
{
    ConvMethod conv;
    Method method;
    Lowering lowering;
};

/** All convolution strategies, in ConvMethod declaration order. */
std::span<const ConvMethodEntry> convMethodTable();

/**
 * Conv strategy of a (registry method, lowering) pair. Panics for
 * methods with no convolution strategy (Ampere, cuSPARSE) or pairs
 * the design rules out (dual-sparse is inherently implicit);
 * Backend::supports gates both before planning.
 */
ConvMethod toConvMethod(Method method, Lowering lowering);

/** Registry method + lowering of a conv strategy. */
void splitConvMethod(ConvMethod conv, Method *method,
                     Lowering *lowering);

} // namespace dstc

#endif // DSTC_CORE_METHOD_MAP_H
