#include "core/session.h"

#include <algorithm>

#include "core/thread_pool.h"

namespace dstc {

Session::Session() : Session(SessionOptions{}) {}

Session::Session(GpuConfig config)
    : Session(SessionOptions{config})
{
}

Session::Session(SessionOptions options)
    : options_(options),
      registry_(KernelRegistry::withDefaultBackends()),
      cache_(options.cache_capacity, options.cache_capacity_bytes)
{
}

Session::~Session() = default;

namespace {

/** Resolve the encode-worker axis (see ExecutionResources). */
int
resolveEncodeWorkers(const KernelRequest &request,
                     const SessionOptions &options)
{
    if (request.resources.encode_workers >= 0)
        return request.resources.encode_workers;
    if (options.resources.encode_workers >= 0)
        return options.resources.encode_workers;
    return options.encode_workers; // deprecated alias
}

/**
 * Resolve the compute-worker axis: the request's resources win; the
 * session-level budget applies only when the legacy per-request
 * knobs sit at their defaults (an explicit legacy setting keeps
 * working as a deprecated alias). -1 = nothing to apply.
 */
int
resolveComputeWorkers(const KernelRequest &request,
                      const SessionOptions &options)
{
    if (request.resources.compute_workers >= 0)
        return request.resources.compute_workers;
    if (request.gemm_options.num_workers == 0 &&
        request.conv_options.num_workers == 0 &&
        options.resources.compute_workers >= 0)
        return options.resources.compute_workers;
    return -1;
}

} // namespace

std::unique_ptr<ExecutionPlan>
Session::plan(const KernelRequest &request)
{
    PlanContext ctx;
    ctx.cfg = &options_.config;
    ctx.cache = &encodingCache();
    ctx.encode_workers = resolveEncodeWorkers(request, options_);
    const int compute = resolveComputeWorkers(request, options_);
    if (compute >= 0) {
        KernelRequest resolved = request;
        resolved.gemm_options.num_workers = compute;
        resolved.conv_options.num_workers = compute;
        return registry_.plan(resolved, ctx);
    }
    return registry_.plan(request, ctx);
}

KernelReport
Session::run(const KernelRequest &request)
{
    KernelReport report = plan(request)->execute();
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (report.encode_cache_hit)
        encode_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return report;
}

ThreadPool &
Session::pool()
{
    if (options_.shared_pool)
        return *options_.shared_pool;
    std::call_once(pool_once_, [this] {
        int threads = options_.num_threads;
        if (threads <= 0)
            threads = std::max(
                1u, std::thread::hardware_concurrency());
        pool_ = std::make_unique<ThreadPool>(threads);
    });
    return *pool_;
}

std::future<KernelReport>
Session::submit(KernelRequest request)
{
    auto task = std::make_shared<std::packaged_task<KernelReport()>>(
        [this, request = std::move(request)] { return run(request); });
    std::future<KernelReport> future = task->get_future();
    pool().enqueue([task] { (*task)(); });
    return future;
}

std::vector<std::future<KernelReport>>
Session::submitBatch(std::vector<KernelRequest> requests)
{
    std::vector<std::future<KernelReport>> futures;
    futures.reserve(requests.size());
    for (KernelRequest &request : requests)
        futures.push_back(submit(std::move(request)));
    return futures;
}

std::vector<KernelReport>
Session::runBatch(std::vector<KernelRequest> requests)
{
    auto futures = submitBatch(std::move(requests));
    std::vector<KernelReport> reports;
    reports.reserve(futures.size());
    for (auto &future : futures)
        reports.push_back(future.get());
    return reports;
}

} // namespace dstc
