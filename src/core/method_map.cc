#include "core/method_map.h"

#include "common/logging.h"

namespace dstc {

namespace {

constexpr ConvMethodEntry kTable[] = {
    {ConvMethod::DenseExplicit, Method::Dense, Lowering::Explicit},
    {ConvMethod::DenseImplicit, Method::Dense, Lowering::Implicit},
    {ConvMethod::SingleSparseExplicit, Method::ZhuSparse,
     Lowering::Explicit},
    {ConvMethod::SingleSparseImplicit, Method::ZhuSparse,
     Lowering::Implicit},
    {ConvMethod::DualSparseImplicit, Method::DualSparse,
     Lowering::Implicit},
};

} // namespace

std::span<const ConvMethodEntry>
convMethodTable()
{
    return kTable;
}

ConvMethod
toConvMethod(Method method, Lowering lowering)
{
    for (const ConvMethodEntry &entry : kTable)
        if (entry.method == method && entry.lowering == lowering)
            return entry.conv;
    panic("method has no convolution strategy: ", methodName(method));
}

void
splitConvMethod(ConvMethod conv, Method *method, Lowering *lowering)
{
    for (const ConvMethodEntry &entry : kTable) {
        if (entry.conv == conv) {
            *method = entry.method;
            *lowering = entry.lowering;
            return;
        }
    }
    panic("unknown conv method");
}

} // namespace dstc
