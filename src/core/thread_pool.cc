#include "core/thread_pool.h"

#include "common/logging.h"

namespace dstc {

ThreadPool::ThreadPool(int num_threads)
{
    DSTC_ASSERT(num_threads > 0);
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        DSTC_ASSERT(!stopping_, "enqueue on a stopping pool");
        jobs_.push(std::move(job));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !jobs_.empty(); });
            if (jobs_.empty())
                return; // stopping and drained
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        job();
    }
}

} // namespace dstc
