#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/logging.h"

namespace dstc {

ThreadPool::ThreadPool(int num_threads)
{
    DSTC_ASSERT(num_threads > 0);
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        DSTC_ASSERT(!stopping_, "enqueue on a stopping pool");
        jobs_.push(std::move(job));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !jobs_.empty(); });
            if (jobs_.empty())
                return; // stopping and drained
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        job();
    }
}

ThreadPool &
sharedThreadPool()
{
    static ThreadPool pool(static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency())));
    return pool;
}

ThreadPool *
resolveTilePool(int num_workers, int *max_workers)
{
    if (num_workers == 1) {
        *max_workers = 1;
        return nullptr;
    }
    ThreadPool &pool = sharedThreadPool();
    *max_workers = num_workers > 0 ? num_workers : pool.numThreads();
    return &pool;
}

void
parallelFor(ThreadPool *pool, int64_t n, int max_workers,
            const std::function<void(int64_t)> &fn)
{
    if (n <= 0)
        return;
    int helpers = 0;
    if (pool && max_workers > 1) {
        helpers = pool->numThreads();
        helpers = static_cast<int>(
            std::min<int64_t>(helpers, n - 1));
        helpers = std::min(helpers, max_workers - 1);
    }
    if (helpers <= 0) {
        for (int64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Helpers hold the state through a shared_ptr: one may still be
    // sitting in the queue after the loop drained and the caller
    // returned, so the state cannot live on the caller's stack alone.
    struct State
    {
        std::atomic<int64_t> next{0};
        std::atomic<int64_t> done{0};
        int64_t n = 0;
        const std::function<void(int64_t)> *fn = nullptr;
        std::mutex mu;
        std::condition_variable cv;
    };
    auto state = std::make_shared<State>();
    state->n = n;
    state->fn = &fn; // caller outlives every index (it waits below)

    auto drain = [](const std::shared_ptr<State> &st) {
        for (;;) {
            const int64_t i =
                st->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= st->n)
                return;
            (*st->fn)(i);
            if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                st->n) {
                std::lock_guard<std::mutex> lock(st->mu);
                st->cv.notify_all();
            }
        }
    };

    for (int h = 0; h < helpers; ++h)
        pool->enqueue([state, drain] { drain(state); });
    drain(state);

    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&state] {
        return state->done.load(std::memory_order_acquire) == state->n;
    });
}

} // namespace dstc
