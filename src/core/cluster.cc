#include "core/cluster.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "core/thread_pool.h"

namespace dstc {

const char *
placementPolicyToken(PlacementPolicy policy)
{
    switch (policy) {
    case PlacementPolicy::CostModel:
        return "cost";
    case PlacementPolicy::RoundRobin:
        return "rr";
    case PlacementPolicy::StaticShard:
        return "shard";
    }
    return "?";
}

bool
parsePlacementPolicy(const std::string &token, PlacementPolicy *out)
{
    if (token == "cost")
        *out = PlacementPolicy::CostModel;
    else if (token == "rr")
        *out = PlacementPolicy::RoundRobin;
    else if (token == "shard")
        *out = PlacementPolicy::StaticShard;
    else
        return false;
    return true;
}

// ===================================================================
// ClusterScheduler
// ===================================================================

ClusterScheduler::ClusterScheduler(PlacementPolicy policy,
                                   size_t num_devices)
    : policy_(policy), loads_(num_devices),
      alive_(num_devices, uint8_t{1})
{
    DSTC_ASSERT(num_devices >= 1, "a cluster needs a device");
}

size_t
ClusterScheduler::place(const std::vector<double> &estimates,
                        uint64_t shard_key)
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t eligible = 0;
    for (uint8_t a : alive_)
        eligible += a;
    DSTC_ASSERT(eligible >= 1,
                "placement needs at least one live device");
    size_t pick = 0;
    switch (policy_) {
    case PlacementPolicy::RoundRobin:
        // Rotate over the *live* devices only: the k-th live device
        // of the rotation, so a dead device never swallows a slot.
        for (size_t step = static_cast<size_t>(next_round_robin_++ %
                                               eligible),
                    d = 0;
             d < loads_.size(); ++d) {
            if (!alive_[d])
                continue;
            if (step == 0) {
                pick = d;
                break;
            }
            --step;
        }
        break;
    case PlacementPolicy::StaticShard:
        // Digest modulo the live count, mapped to the k-th live
        // device: identical layers still co-locate, re-mapped onto
        // the survivors when the fleet shrinks.
        for (size_t step = static_cast<size_t>(shard_key % eligible),
                    d = 0;
             d < loads_.size(); ++d) {
            if (!alive_[d])
                continue;
            if (step == 0) {
                pick = d;
                break;
            }
            --step;
        }
        break;
    case PlacementPolicy::CostModel: {
        DSTC_ASSERT(estimates.size() == loads_.size(),
                    "CostModel placement needs one estimate per "
                    "device");
        double best = std::numeric_limits<double>::infinity();
        for (size_t d = 0; d < loads_.size(); ++d) {
            if (!alive_[d])
                continue;
            const double finish =
                loads_[d].estimated_busy_us + estimates[d];
            if (finish < best) { // strict: ties go to the lower index
                best = finish;
                pick = d;
            }
        }
        loads_[pick].estimated_busy_us += estimates[pick];
        break;
    }
    }
    ++loads_[pick].placed;
    return pick;
}

void
ClusterScheduler::setDeviceAlive(size_t device, bool alive)
{
    std::lock_guard<std::mutex> lock(mu_);
    DSTC_ASSERT(device < alive_.size());
    alive_[device] = alive ? 1 : 0;
}

bool
ClusterScheduler::deviceAlive(size_t device) const
{
    std::lock_guard<std::mutex> lock(mu_);
    DSTC_ASSERT(device < alive_.size());
    return alive_[device] != 0;
}

size_t
ClusterScheduler::aliveDevices() const
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t count = 0;
    for (uint8_t a : alive_)
        count += a;
    return count;
}

void
ClusterScheduler::completed(size_t device)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++loads_[device].completed;
}

DeviceLoad
ClusterScheduler::load(size_t device) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return loads_[device];
}

// ===================================================================
// Request digests
// ===================================================================

namespace {

/** Everything that determines a request's simulated outcome except
 *  the operand contents. */
CacheKey
structuralKey(const KernelRequest &r)
{
    CacheKey key("cluster-request");
    key.i32(static_cast<int32_t>(r.kind));
    key.i32(static_cast<int32_t>(r.method));
    key.i32(static_cast<int32_t>(r.lowering));
    key.u64(r.seed);
    key.i64(r.m).i64(r.n).i64(r.k);
    key.f64(r.a_sparsity).f64(r.b_sparsity);
    key.f64(r.a_cluster).f64(r.b_cluster);
    key.i32(r.outer_product ? 1 : 0);
    const SpGemmOptions &g = r.gemm_options;
    key.i32(g.tile_m).i32(g.tile_n).i32(g.tile_k);
    key.i32(g.two_level ? 1 : 0)
        .i32(g.functional ? 1 : 0)
        .i32(g.detailed_merge ? 1 : 0)
        .i32(g.sparse_output ? 1 : 0);
    // A pinned hybrid cut changes the partition (and so the stats)
    // even at identical geometry.
    key.f64(r.hybrid_options.threshold);
    const ConvShape &s = r.shape;
    key.i32(s.batch)
        .i32(s.in_c)
        .i32(s.in_h)
        .i32(s.in_w)
        .i32(s.out_c)
        .i32(s.kernel)
        .i32(s.stride)
        .i32(s.pad);
    // Operand flavor: a synthetic point and a functional request of
    // the same geometry are different work.
    key.i32((r.a ? 1 : 0) | (r.b ? 2 : 0) | (r.input ? 4 : 0) |
            (r.a_profile ? 8 : 0) | (r.a_encoded ? 16 : 0) |
            (r.b_profile ? 32 : 0) | (r.b_encoded ? 64 : 0));
    return key;
}

} // namespace

uint64_t
requestShardKey(const KernelRequest &request)
{
    return structuralKey(request).value();
}

std::optional<uint64_t>
requestContentDigest(const KernelRequest &request)
{
    // Caller-owned pointer encodings are opaque here: hashing the
    // pointer would alias recycled addresses, so those requests are
    // never estimate-cached.
    if (request.a_profile || request.b_profile ||
        request.a_encoded || request.b_encoded)
        return std::nullopt;
    CacheKey key = structuralKey(request);
    if (request.a)
        key.matrix(*request.a);
    if (request.b)
        key.matrix(*request.b);
    if (request.input) {
        const Tensor4d &t = *request.input;
        key.i32(t.n()).i32(t.c()).i32(t.h()).i32(t.w());
        key.bytes(t.data().data(),
                  t.data().size() * sizeof(float));
    }
    return key.value();
}

// ===================================================================
// Cluster
// ===================================================================

Cluster::Cluster() : Cluster(ClusterOptions{}) {}

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_capacity_bytes),
      scheduler_(options_.policy,
                 options_.devices.empty() ? 1
                                          : options_.devices.size())
{
    if (options_.devices.empty())
        options_.devices.push_back(GpuConfig::v100());
    int threads = options_.num_threads;
    if (threads <= 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    // The pool exists before the Sessions: they hold its pointer.
    pool_ = std::make_unique<ThreadPool>(threads);
    sessions_.reserve(options_.devices.size());
    for (const GpuConfig &cfg : options_.devices) {
        SessionOptions so;
        so.config = cfg;
        so.encode_workers = options_.encode_workers;
        so.resources = options_.resources;
        so.shared_pool = pool_.get();
        so.shared_cache = &cache_;
        sessions_.push_back(std::make_unique<Session>(so));
    }
}

Cluster::~Cluster() = default;

ThreadPool &
Cluster::pool()
{
    return *pool_;
}

double
Cluster::estimateOn(size_t i, const KernelRequest &request)
{
    return estimateOn(i, request, requestContentDigest(request));
}

double
Cluster::estimateOn(size_t i, const KernelRequest &request,
                    const std::optional<uint64_t> &digest)
{
    DSTC_ASSERT(i < sessions_.size());
    if (!digest)
        return sessions_[i]->plan(request)->estimatedTimeUs();
    CacheKey key("cluster-estimate");
    key.u64(*digest).gpuConfig(options_.devices[i]);
    Session *session = sessions_[i].get();
    return *cache_.getOrBuild<double>(key.value(), [session,
                                                    &request] {
        return session->plan(request)->estimatedTimeUs();
    });
}

size_t
Cluster::place(const KernelRequest &request)
{
    std::vector<double> estimates;
    if (options_.policy == PlacementPolicy::CostModel) {
        // One content digest per request, not per device: hashing
        // large operands sits on the serial submission path.
        const std::optional<uint64_t> digest =
            requestContentDigest(request);
        estimates.reserve(sessions_.size());
        for (size_t d = 0; d < sessions_.size(); ++d)
            estimates.push_back(estimateOn(d, request, digest));
    }
    const uint64_t shard_key =
        options_.policy == PlacementPolicy::StaticShard
            ? requestShardKey(request)
            : 0;
    return scheduler_.place(estimates, shard_key);
}

KernelReport
Cluster::run(const KernelRequest &request)
{
    const size_t d = place(request);
    KernelReport report = sessions_[d]->run(request);
    report.device = static_cast<int>(d);
    scheduler_.completed(d);
    return report;
}

std::future<KernelReport>
Cluster::submit(KernelRequest request)
{
    const size_t d = place(request);
    auto task = std::make_shared<std::packaged_task<KernelReport()>>(
        [this, d, request = std::move(request)] {
            KernelReport report = sessions_[d]->run(request);
            report.device = static_cast<int>(d);
            scheduler_.completed(d);
            return report;
        });
    std::future<KernelReport> future = task->get_future();
    pool().enqueue([task] { (*task)(); });
    return future;
}

std::vector<std::future<KernelReport>>
Cluster::submitBatch(std::vector<KernelRequest> requests)
{
    // Placement happens in the caller, in index order; execution may
    // already overlap it on the pool, but the scheduler never reads
    // execution state, so the schedule stays a pure function of the
    // submission sequence.
    std::vector<std::future<KernelReport>> futures;
    futures.reserve(requests.size());
    for (KernelRequest &request : requests)
        futures.push_back(submit(std::move(request)));
    return futures;
}

std::vector<KernelReport>
Cluster::runBatch(std::vector<KernelRequest> requests)
{
    auto futures = submitBatch(std::move(requests));
    std::vector<KernelReport> reports;
    reports.reserve(futures.size());
    for (auto &future : futures)
        reports.push_back(future.get());
    return reports;
}

} // namespace dstc
