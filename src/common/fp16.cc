#include "common/fp16.h"

#include <bit>
#include <cstring>

namespace dstc {

uint16_t
floatToHalfBits(float value)
{
    uint32_t f = std::bit_cast<uint32_t>(value);
    uint32_t sign = (f >> 16) & 0x8000u;
    int32_t exp = static_cast<int32_t>((f >> 23) & 0xff) - 127 + 15;
    uint32_t mant = f & 0x007fffffu;

    if (((f >> 23) & 0xff) == 0xff) {
        // Inf or NaN. Preserve a NaN payload bit so NaN stays NaN.
        return static_cast<uint16_t>(sign | 0x7c00u | (mant ? 0x200u : 0));
    }

    if (exp >= 0x1f) {
        // Overflow to infinity.
        return static_cast<uint16_t>(sign | 0x7c00u);
    }

    if (exp <= 0) {
        // Subnormal half (or zero). The implicit leading 1 becomes
        // explicit, then the mantissa is shifted right with rounding.
        if (exp < -10)
            return static_cast<uint16_t>(sign);
        mant |= 0x00800000u;
        int shift = 14 - exp; // total right shift from 23-bit mantissa
        uint32_t half_mant = mant >> shift;
        uint32_t remainder = mant & ((1u << shift) - 1);
        uint32_t halfway = 1u << (shift - 1);
        if (remainder > halfway ||
            (remainder == halfway && (half_mant & 1))) {
            ++half_mant; // may carry into the exponent; that is correct
        }
        return static_cast<uint16_t>(sign | half_mant);
    }

    // Normal half with round-to-nearest-even on the dropped 13 bits.
    uint32_t half_mant = mant >> 13;
    uint32_t remainder = mant & 0x1fffu;
    uint16_t result = static_cast<uint16_t>(
        sign | (static_cast<uint32_t>(exp) << 10) | half_mant);
    if (remainder > 0x1000u || (remainder == 0x1000u && (result & 1)))
        ++result; // carry propagates into exponent correctly
    return result;
}

float
halfBitsToFloat(uint16_t bits)
{
    uint32_t sign = static_cast<uint32_t>(bits & 0x8000u) << 16;
    uint32_t exp = (bits >> 10) & 0x1f;
    uint32_t mant = bits & 0x3ffu;

    uint32_t f;
    if (exp == 0) {
        if (mant == 0) {
            f = sign; // signed zero
        } else {
            // Subnormal: normalize by shifting the mantissa up.
            int e = -1;
            do {
                ++e;
                mant <<= 1;
            } while ((mant & 0x400u) == 0);
            mant &= 0x3ffu;
            f = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) |
                (mant << 13);
        }
    } else if (exp == 0x1f) {
        f = sign | 0x7f800000u | (mant << 13); // Inf / NaN
    } else {
        f = sign | ((exp - 15 + 127) << 23) | (mant << 13);
    }
    return std::bit_cast<float>(f);
}

} // namespace dstc
