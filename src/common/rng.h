/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All experiments are seeded so benchmark tables are reproducible
 * run-to-run. The generator is xoshiro256**, which is fast enough to
 * synthesize the 4096x4096 operands of Fig. 21 in negligible time.
 */
#ifndef DSTC_COMMON_RNG_H
#define DSTC_COMMON_RNG_H

#include <cstdint>

namespace dstc {

/** xoshiro256** pseudo-random generator with convenience draws. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    uint64_t uniformInt(uint64_t bound);

    /** Bernoulli draw: true with probability @p p. */
    bool bernoulli(double p) { return uniform() < p; }

    /** Standard normal draw (Box-Muller). */
    double normal();

    /** Uniform float in [lo, hi). */
    float
    uniformFloat(float lo, float hi)
    {
        return lo + static_cast<float>(uniform()) * (hi - lo);
    }

  private:
    uint64_t state_[4];
    bool have_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

} // namespace dstc

#endif // DSTC_COMMON_RNG_H
