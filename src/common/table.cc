#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dstc {

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    // Column widths over header and all rows.
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            oss << row[i];
            if (i + 1 < row.size())
                oss << std::string(widths[i] - row[i].size() + 2, ' ');
        }
        oss << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        oss << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    return oss.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
fmtDouble(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
fmtSpeedup(double value, int digits)
{
    return fmtDouble(value, digits) + "x";
}

} // namespace dstc
