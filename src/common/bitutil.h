/**
 * @file
 * Small bit-manipulation helpers shared by the bitmap formats, the
 * POPC-based predication logic, and the accumulation-buffer model.
 */
#ifndef DSTC_COMMON_BITUTIL_H
#define DSTC_COMMON_BITUTIL_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

namespace dstc {

/** Number of set bits in a 64-bit word (the hardware POPC primitive). */
inline int
popcount64(uint64_t word)
{
    return std::popcount(word);
}

/** Integer ceiling division; the OHMMA-chunk arithmetic of Fig. 15. */
template <typename T>
constexpr T
ceilDiv(T value, T divisor)
{
    return (value + divisor - 1) / divisor;
}

/** Round @p value up to the next multiple of @p align. */
template <typename T>
constexpr T
alignUp(T value, T align)
{
    return ceilDiv(value, align) * align;
}

/** Mask with the low @p n bits set (n in [0, 64]). */
inline uint64_t
lowMask64(int n)
{
    return n >= 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
}

/**
 * Parallel bit extract with a fixed mask (the BMI2 PEXT primitive):
 * apply() compacts the bits of a word at the mask's set positions
 * LSB-first. This is the word-parallel deinterleave behind the
 * strided im2col gather — every stride-s window bit of a 64-bit
 * source word drops into place in one operation. Hardware PEXT when
 * available; the portable path precomputes the parallel-suffix move
 * masks (Hacker's Delight 7-4) at construction, so a compressor
 * built once per (phase, stride) costs six shift-or rounds per
 * word, independent of the mask's population.
 */
class Pext64
{
  public:
    Pext64() = default;

    explicit Pext64(uint64_t mask) : mask_(mask)
    {
#if !defined(__BMI2__)
        uint64_t m = mask;
        uint64_t mk = ~m << 1; // bits to the left of each 0 in m
        for (int i = 0; i < 6; ++i) {
            uint64_t mp = mk ^ (mk << 1); // parallel suffix of mk
            mp ^= mp << 2;
            mp ^= mp << 4;
            mp ^= mp << 8;
            mp ^= mp << 16;
            mp ^= mp << 32;
            const uint64_t mv = mp & m; // bits to move this round
            mv_[i] = mv;
            m = (m ^ mv) | (mv >> (1 << i));
            mk &= ~mp;
        }
#endif
    }

    uint64_t
    apply(uint64_t value) const
    {
#if defined(__BMI2__)
        return _pext_u64(value, mask_);
#else
        uint64_t x = value & mask_;
        for (int i = 0; i < 6; ++i) {
            const uint64_t t = x & mv_[i];
            x = (x ^ t) | (t >> (1 << i));
        }
        return x;
#endif
    }

    uint64_t mask() const { return mask_; }

  private:
    uint64_t mask_ = 0;
#if !defined(__BMI2__)
    uint64_t mv_[6] = {};
#endif
};

/** One-shot parallel bit extract; prefer a reused Pext64 when the
 *  mask is applied to many words. */
inline uint64_t
pext64(uint64_t value, uint64_t mask)
{
    return Pext64(mask).apply(value);
}

/**
 * Bitmap word of 64 contiguous floats: bit b set iff p[b] != 0
 * (±0 and only ±0 have an all-zero significand+exponent, so the
 * test runs on the integer view). Byte-packed in eight groups of
 * eight so the compiler vectorizes the compares — this is the inner
 * primitive of every word-parallel encoder.
 */
inline uint64_t
packNonzeroBits64(const float *p)
{
    uint32_t iv[64];
    static_assert(sizeof(iv) == 64 * sizeof(float));
    __builtin_memcpy(iv, p, sizeof(iv));
    uint64_t word = 0;
    for (int g = 0; g < 8; ++g) {
        uint64_t byte = 0;
        for (int b = 0; b < 8; ++b)
            byte |= static_cast<uint64_t>(
                        (iv[g * 8 + b] & 0x7fffffffu) != 0)
                    << b;
        word |= byte << (g * 8);
    }
    return word;
}

/** packNonzeroBits64 for a partial word of @p span < 64 floats. */
inline uint64_t
packNonzeroBits(const float *p, int span)
{
    if (span == 64)
        return packNonzeroBits64(p);
    uint64_t word = 0;
    for (int b = 0; b < span; ++b)
        word |= static_cast<uint64_t>(p[b] != 0.0f) << b;
    return word;
}

/**
 * Mask with bits set at positions phase, phase + stride,
 * phase + 2*stride, ... below 64 — the per-word selection pattern of
 * a stride-s gather (phase in [0, 64), stride >= 1).
 */
inline uint64_t
strideMask64(int phase, int stride)
{
    if (stride == 1)
        return ~uint64_t{0} << phase;
    uint64_t mask = 0;
    for (int b = phase; b < 64; b += stride)
        mask |= uint64_t{1} << b;
    return mask;
}

/**
 * In-place transpose of a 64x64 bit matrix held as 64 words, LSB
 * first: bit c of word r moves to bit r of word c. The block step of
 * the word-parallel column-major bitmap encode (a row-major scan
 * yields row words; the transpose turns them into column words
 * without per-bit probes). Hacker's Delight 7-3, mask-and-swap in
 * log2(64) rounds.
 */
inline void
transpose64x64(uint64_t a[64])
{
    uint64_t m = 0x00000000ffffffffull;
    for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
        for (int k = 0; k < 64; k = ((k | j) + 1) & ~j) {
            const uint64_t t = (a[k] ^ (a[k | j] << j)) & (m << j);
            a[k] ^= t;
            a[k | j] ^= t >> j;
        }
    }
}

/** Read bit @p pos from a packed bit vector. */
inline bool
getBit(const std::vector<uint64_t> &bits, size_t pos)
{
    return (bits[pos >> 6] >> (pos & 63)) & 1;
}

/** Set bit @p pos in a packed bit vector. */
inline void
setBit(std::vector<uint64_t> &bits, size_t pos)
{
    bits[pos >> 6] |= uint64_t{1} << (pos & 63);
}

/** Clear bit @p pos in a packed bit vector. */
inline void
clearBit(std::vector<uint64_t> &bits, size_t pos)
{
    bits[pos >> 6] &= ~(uint64_t{1} << (pos & 63));
}

/**
 * Count set bits in the half-open bit range [lo, hi) of a packed bit
 * vector. This is the hardware POPC over a k-step chunk of a bitmap
 * line.
 */
int popcountRange(const std::vector<uint64_t> &bits, size_t lo, size_t hi);

/**
 * Invoke @p fn(bit_index) for every set bit in the half-open range
 * [lo, hi) of a packed bit vector, in increasing index order.
 */
template <typename Fn>
void
forEachSetBit(const std::vector<uint64_t> &bits, size_t lo, size_t hi,
              Fn &&fn)
{
    for (size_t w = lo >> 6; w <= (hi ? (hi - 1) >> 6 : 0); ++w) {
        if (w >= bits.size())
            break;
        uint64_t word = bits[w];
        if (w == (lo >> 6))
            word &= ~lowMask64(static_cast<int>(lo & 63));
        size_t hi_in_word = hi - (w << 6);
        if (hi_in_word < 64)
            word &= lowMask64(static_cast<int>(hi_in_word));
        while (word) {
            int b = std::countr_zero(word);
            fn((w << 6) + b);
            word &= word - 1;
        }
    }
}

inline int
popcountRange(const std::vector<uint64_t> &bits, size_t lo, size_t hi)
{
    if (hi <= lo)
        return 0;
    size_t w_lo = lo >> 6;
    size_t w_hi = (hi - 1) >> 6;
    int count = 0;
    for (size_t w = w_lo; w <= w_hi && w < bits.size(); ++w) {
        uint64_t word = bits[w];
        if (w == w_lo)
            word &= ~lowMask64(static_cast<int>(lo & 63));
        size_t hi_in_word = hi - (w << 6);
        if (hi_in_word < 64)
            word &= lowMask64(static_cast<int>(hi_in_word));
        count += std::popcount(word);
    }
    return count;
}

} // namespace dstc

#endif // DSTC_COMMON_BITUTIL_H
