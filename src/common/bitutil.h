/**
 * @file
 * Small bit-manipulation helpers shared by the bitmap formats, the
 * POPC-based predication logic, and the accumulation-buffer model.
 */
#ifndef DSTC_COMMON_BITUTIL_H
#define DSTC_COMMON_BITUTIL_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dstc {

/** Number of set bits in a 64-bit word (the hardware POPC primitive). */
inline int
popcount64(uint64_t word)
{
    return std::popcount(word);
}

/** Integer ceiling division; the OHMMA-chunk arithmetic of Fig. 15. */
template <typename T>
constexpr T
ceilDiv(T value, T divisor)
{
    return (value + divisor - 1) / divisor;
}

/** Round @p value up to the next multiple of @p align. */
template <typename T>
constexpr T
alignUp(T value, T align)
{
    return ceilDiv(value, align) * align;
}

/** Mask with the low @p n bits set (n in [0, 64]). */
inline uint64_t
lowMask64(int n)
{
    return n >= 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
}

/** Read bit @p pos from a packed bit vector. */
inline bool
getBit(const std::vector<uint64_t> &bits, size_t pos)
{
    return (bits[pos >> 6] >> (pos & 63)) & 1;
}

/** Set bit @p pos in a packed bit vector. */
inline void
setBit(std::vector<uint64_t> &bits, size_t pos)
{
    bits[pos >> 6] |= uint64_t{1} << (pos & 63);
}

/** Clear bit @p pos in a packed bit vector. */
inline void
clearBit(std::vector<uint64_t> &bits, size_t pos)
{
    bits[pos >> 6] &= ~(uint64_t{1} << (pos & 63));
}

/**
 * Count set bits in the half-open bit range [lo, hi) of a packed bit
 * vector. This is the hardware POPC over a k-step chunk of a bitmap
 * line.
 */
int popcountRange(const std::vector<uint64_t> &bits, size_t lo, size_t hi);

/**
 * Invoke @p fn(bit_index) for every set bit in the half-open range
 * [lo, hi) of a packed bit vector, in increasing index order.
 */
template <typename Fn>
void
forEachSetBit(const std::vector<uint64_t> &bits, size_t lo, size_t hi,
              Fn &&fn)
{
    for (size_t w = lo >> 6; w <= (hi ? (hi - 1) >> 6 : 0); ++w) {
        if (w >= bits.size())
            break;
        uint64_t word = bits[w];
        if (w == (lo >> 6))
            word &= ~lowMask64(static_cast<int>(lo & 63));
        size_t hi_in_word = hi - (w << 6);
        if (hi_in_word < 64)
            word &= lowMask64(static_cast<int>(hi_in_word));
        while (word) {
            int b = std::countr_zero(word);
            fn((w << 6) + b);
            word &= word - 1;
        }
    }
}

inline int
popcountRange(const std::vector<uint64_t> &bits, size_t lo, size_t hi)
{
    if (hi <= lo)
        return 0;
    size_t w_lo = lo >> 6;
    size_t w_hi = (hi - 1) >> 6;
    int count = 0;
    for (size_t w = w_lo; w <= w_hi && w < bits.size(); ++w) {
        uint64_t word = bits[w];
        if (w == w_lo)
            word &= ~lowMask64(static_cast<int>(lo & 63));
        size_t hi_in_word = hi - (w << 6);
        if (hi_in_word < 64)
            word &= lowMask64(static_cast<int>(hi_in_word));
        count += std::popcount(word);
    }
    return count;
}

} // namespace dstc

#endif // DSTC_COMMON_BITUTIL_H
