#include "common/rng.h"

#include <cmath>

namespace dstc {

namespace {

uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    // Seed the four state words from splitmix64, as the xoshiro
    // authors recommend; guards against the all-zero state.
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
        state_[0] = 1;
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t
Rng::uniformInt(uint64_t bound)
{
    // Rejection-free modulo is fine here: bounds are tiny relative to
    // 2^64, so the bias is far below anything an experiment can see.
    return next() % bound;
}

double
Rng::normal()
{
    if (have_cached_normal_) {
        have_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    have_cached_normal_ = true;
    return r * std::cos(theta);
}

} // namespace dstc
