#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace dstc {
namespace detail {

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    if (file)
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    else
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    if (file)
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    else
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace dstc
